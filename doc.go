// Package suu is a Go implementation of "Improved Approximations for
// Multiprocessor Scheduling Under Uncertainty" (Crutchfield, Dzunic,
// Fineman, Karger, Scott — SPAA 2008).
//
// The SUU problem: n unit-step jobs must be completed by m machines; job j
// fails on machine i in any given step with probability q_ij,
// independently; precedence constraints form a DAG; several machines may
// work the same job in one step. The objective is the expected makespan.
//
// The package exposes:
//
//   - the problem model (Instance) and instance generators (Generate),
//   - the paper's algorithms: SEM — the O(log log min{m,n})-approximation
//     for independent jobs, OBL — the oblivious O(log n)-approximation,
//     Chains (SUU-C) for disjoint-chain precedence, Forest (SUU-T) for
//     directed forests, and Layered for MapReduce-style layered DAGs,
//   - baselines (Greedy, Sequential, EligibleSplit),
//   - the SUU* simulator (NewWorld, MonteCarlo) built on the paper's
//     deferred-decision reformulation (Appendix A),
//   - the exact optimum for small instances (ExactOptimal), and
//   - the experiment harness that regenerates the paper's Table 1
//     (Experiments, RunExperiment).
//
// Quickstart:
//
//	ins, _ := suu.Generate(suu.Spec{Family: "uniform", M: 8, N: 32, Seed: 1})
//	res, _ := suu.Estimate(ins, suu.NewSEM(), 100, 1)
//	fmt.Println(res.Summary) // estimated expected makespan
//
// # Performance
//
// The Monte Carlo engine runs an allocation-free hot path: each estimator
// worker owns one simulation World and one SplitMix64 random stream
// (internal/rng), both recycled across trials. Rewinding for trial i is a
// single-word reseed plus a buffer-reusing World.Reset — no per-trial
// world, RNG table, or per-step map allocations. Trial i always runs on
// the stream seeded with seed+i, so estimates are identical for any
// worker count.
//
// The pooling contract for Policy implementations: the World passed to
// Run may be recycled for another trial as soon as Run returns. Policies
// must not retain the World, its Rng, or any slice obtained from it
// (completion lists from Step/StepMulti are additionally invalidated by
// the next step). Policies that loop over steps should use the
// World.AppendRemaining/AppendEligible variants with a caller-owned
// buffer to stay allocation-free themselves.
//
// The LP layer mirrors the simulator's pooling: each Monte Carlo worker's
// trial stream runs on one rounding.Workspace, which owns a sparse
// revised-simplex solver — compressed-column constraint storage, an
// LU-factorized basis with product-form eta updates, and candidate-list
// partial pricing (internal/lp; the dense tableau survives as
// lp.Solver{Dense: true}, the differential-testing reference and numerical
// fallback) — plus the warm-start chains that seed SEM's round k+1 LP from
// round k's optimal basis and SUU-T's decomposition block k+1 from block
// k's machine rows. The rounding path (roundByFlow's group sums, flow
// network, and edge lists) runs on workspace scratch too, so steady-state
// trials allocate only their escaping results. The sparse engine turned
// the n=128/m=32 full-set LP1 from ~250 ms (dense) into single-digit
// milliseconds and opened the n=256/m=64 Table-1 cells (t1-xlarge).
//
// # Service
//
// internal/service + cmd/suud turn the library into an online planning
// service: POST /v1/plan returns the LP-rounded oblivious schedule for an
// instance (LP1 for independent jobs, LP2 for chains), POST /v1/estimate
// returns a Monte Carlo makespan estimate (NDJSON progress streaming with
// "stream": true), /healthz and /metrics expose liveness and counters.
// Requests are admission-controlled (bounded queue, fast 429s), coalesced
// (duplicate in-flight requests share one computation via a singleflight
// keyed on sched.Fingerprint, a canonical content hash of (m, n, q,
// prec)), and cached in a sharded LRU under the same content-addressed
// keys. Computations run on the same pooled rounding.Workspace / policy
// machinery the Monte Carlo engine uses (race-tested for concurrent
// sharing); policy LP caches are request-scoped, so cross-request reuse
// is the content-addressed cache's job and finished computations retain
// nothing. cmd/suuload is the fabbench-style open-loop
// load harness (Poisson or fixed-rate arrivals, per-op latency in a
// log-scale stats.Histogram, BENCH-compatible JSON reports);
// examples/service runs the whole loop in one process.
//
// Benchmarks: `go test -bench . -benchmem` runs reduced-scale experiment
// benchmarks (bench_test.go) plus engine micro-benchmarks in
// internal/sim, internal/lp, and internal/rounding. The committed
// BENCH_*.json records track measured performance PR over PR; regenerate
// with
//
//	go run ./cmd/suubench -run t1-indep -scale-large -json -note "..." > BENCH_<tag>.json
package suu
