// Package suu is a Go implementation of "Improved Approximations for
// Multiprocessor Scheduling Under Uncertainty" (Crutchfield, Dzunic,
// Fineman, Karger, Scott — SPAA 2008).
//
// The SUU problem: n unit-step jobs must be completed by m machines; job j
// fails on machine i in any given step with probability q_ij,
// independently; precedence constraints form a DAG; several machines may
// work the same job in one step. The objective is the expected makespan.
//
// The package exposes:
//
//   - the problem model (Instance) and instance generators (Generate),
//   - the paper's algorithms: SEM — the O(log log min{m,n})-approximation
//     for independent jobs, OBL — the oblivious O(log n)-approximation,
//     Chains (SUU-C) for disjoint-chain precedence, Forest (SUU-T) for
//     directed forests, and Layered for MapReduce-style layered DAGs,
//   - baselines (Greedy, Sequential, EligibleSplit),
//   - the SUU* simulator (NewWorld, MonteCarlo) built on the paper's
//     deferred-decision reformulation (Appendix A),
//   - the exact optimum for small instances (ExactOptimal), and
//   - the experiment harness that regenerates the paper's Table 1
//     (Experiments, RunExperiment).
//
// Quickstart:
//
//	ins, _ := suu.Generate(suu.Spec{Family: "uniform", M: 8, N: 32, Seed: 1})
//	res, _ := suu.Estimate(ins, suu.NewSEM(), 100, 1)
//	fmt.Println(res.Summary) // estimated expected makespan
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// reproductions of the paper's results.
package suu
