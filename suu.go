package suu

import (
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Core problem types.
type (
	// Instance is one SUU problem: n jobs, m machines, failure
	// probabilities q_ij, and an optional precedence DAG.
	Instance = model.Instance
	// DAG is a precedence graph over jobs.
	DAG = dag.DAG
	// World is one execution of an instance under the SUU* simulator.
	World = sim.World
	// Policy is a scheduling algorithm driving a World to completion.
	Policy = sim.Policy
	// MCResult is a Monte Carlo makespan estimate.
	MCResult = sim.MCResult
	// Summary holds sample statistics of the makespan distribution.
	Summary = stats.Summary
	// Spec declares a generated problem instance.
	Spec = workload.Spec
	// Experiment is one registered reproduction experiment.
	Experiment = bench.Experiment
	// ExperimentConfig controls experiment runs.
	ExperimentConfig = bench.Config
	// ResultTable is a formatted experiment result.
	ResultTable = bench.Table
)

// NewInstance validates and builds an instance from failure probabilities
// q (indexed q[machine][job]) and an optional precedence DAG (nil for
// independent jobs).
func NewInstance(m, n int, q [][]float64, prec *DAG) (*Instance, error) {
	return model.New(m, n, q, prec)
}

// NewDAG returns an empty precedence graph on n jobs; add edges with
// AddEdge(before, after).
func NewDAG(n int) *DAG { return dag.New(n) }

// Generate builds an instance from a declarative Spec. Families: uniform,
// skill, specialist, volunteer, chains, chains-skewed, chains-hard,
// forest, in-forest, mapreduce.
func Generate(spec Spec) (*Instance, error) { return workload.Generate(spec) }

// NewSEM returns the paper's semioblivious O(log log min{m,n})-
// approximation for independent jobs (SUU-I-SEM, Section 3), with LP
// caching enabled.
func NewSEM() Policy { return &core.SEM{Cache: rounding.NewCache()} }

// NewOBL returns the oblivious O(log n)-approximation for independent jobs
// (SUU-I-OBL, Section 3), with LP caching enabled.
func NewOBL() Policy { return &core.OBL{Cache: rounding.NewCache()} }

// NewChains returns the O(log(n+m)·log log min{m,n})-approximation for
// precedence constraints forming disjoint chains (SUU-C, Section 4).
func NewChains() Policy {
	return &core.Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
}

// NewForest returns the approximation for directed-forest precedence
// (SUU-T, Appendix B): heavy-path decomposition into chain blocks, SUU-C
// per block.
func NewForest() Policy {
	return &core.Forest{Engine: &core.Chains{
		LP1Cache: rounding.NewCache(),
		LP2Cache: rounding.NewLP2Cache(),
	}}
}

// NewLayered returns the layer-by-layer scheduler for general layered DAGs
// (MapReduce-style phases), running SEM per layer.
func NewLayered() Policy {
	return &core.Layered{Inner: &core.SEM{Cache: rounding.NewCache()}}
}

// NewGreedy returns the Lin–Rajaraman-style greedy baseline for
// independent jobs.
func NewGreedy() Policy { return baseline.Greedy{} }

// NewGreedyPrec returns the precedence-aware greedy heuristic (the
// conclusion's open-question subject): mass-leveling over eligible jobs,
// valid for any DAG, no proven guarantee.
func NewGreedyPrec() Policy { return baseline.GreedyPrec{} }

// NewSequential returns the one-job-at-a-time O(n)-approximation baseline.
func NewSequential() Policy { return baseline.Sequential{} }

// NewEligibleSplit returns the machines-split-evenly heuristic baseline.
func NewEligibleSplit() Policy { return baseline.EligibleSplit{} }

// Estimate runs trials independent executions of the policy and returns
// the makespan sample and summary. Trials run on a goroutine pool; results
// are deterministic in (instance, policy, trials, seed).
func Estimate(ins *Instance, p Policy, trials int, seed int64) (*MCResult, error) {
	return sim.MonteCarlo(ins, p, trials, seed, 0)
}

// Run executes a single trial with the given seed and returns the
// makespan.
func Run(ins *Instance, p Policy, seed int64) (int64, error) {
	w := sim.NewWorld(ins, newRand(seed))
	if err := p.Run(w); err != nil {
		return 0, err
	}
	return w.Makespan()
}

// LowerBound returns the Lemma 1 lower bound on the optimal expected
// makespan: max(t*_LP1(J,1/2)/2, 1). Measured-makespan / LowerBound upper
// bounds the true approximation ratio.
func LowerBound(ins *Instance) (float64, error) {
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	_, tstar, err := rounding.SolveLP1(ins, jobs, 0.5)
	if err != nil {
		return 0, err
	}
	if tstar < 2 {
		return 1, nil
	}
	return tstar / 2, nil
}

// ExactOptimal computes the true optimal expected makespan by dynamic
// programming. Exponential in n; intended for small instances (n ≤ ~12,
// small machine counts or narrow DAGs).
func ExactOptimal(ins *Instance) (float64, error) { return exact.Optimal(ins) }

// Experiments lists the registered reproduction experiments (Table 1 rows
// and validation figures).
func Experiments() []Experiment { return bench.All() }

// RunExperiment runs one experiment by id (see Experiments).
func RunExperiment(id string, cfg ExperimentConfig) (*ResultTable, error) {
	e, ok := bench.Lookup(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(cfg)
}
