// Volunteer computing: a SETI@home-style pool — a few fast, reliable hosts
// and a long tail of slow ones — processing a batch of work units of
// varying difficulty. This is the paper's core motivation for allowing
// several machines on one job: replication absorbs machine unreliability,
// but naive replication wastes throughput. The example contrasts SEM's
// LP-routed replication with uniform splitting and full replication.
//
//	go run ./examples/volunteer
package main

import (
	"fmt"
	"log"
	"math"

	suu "repro"
)

func main() {
	const (
		hosts  = 20
		units  = 60
		trials = 100
	)
	ins, err := suu.Generate(suu.Spec{Family: "volunteer", M: hosts, N: units, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Pool statistics: per-host success rate on an average work unit.
	fmt.Printf("volunteer pool: %d hosts, %d work units\n", hosts, units)
	var best, worst float64 = 0, math.Inf(1)
	for i := 0; i < ins.M; i++ {
		rate := 0.0
		for j := 0; j < ins.N; j++ {
			rate += ins.L[i][j]
		}
		rate /= float64(ins.N)
		if rate > best {
			best = rate
		}
		if rate < worst {
			worst = rate
		}
	}
	fmt.Printf("host work rates (log-mass/step, averaged over units): best %.2f, worst %.3f\n\n", best, worst)

	lb, err := suu.LowerBound(ins)
	if err != nil {
		log.Fatal(err)
	}

	type arm struct {
		label string
		p     suu.Policy
	}
	for _, a := range []arm{
		{"SEM (LP-routed replication)", suu.NewSEM()},
		{"greedy mass-leveling", suu.NewGreedy()},
		{"uniform split", suu.NewEligibleSplit()},
		{"full replication, 1 unit at a time", suu.NewSequential()},
	} {
		res, err := suu.Estimate(ins, a.p, trials, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s E[T] ≈ %6.1f ±%.1f  (ratio ≤ %.1f)\n",
			a.label, res.Summary.Mean, res.Summary.CI95(), res.Summary.Mean/lb)
	}

	fmt.Printf("\nLP lower bound: %.1f steps. SEM decides, per unit, which hosts\n", lb)
	fmt.Println("replicate it and for how long — the (LP1) covering/packing tradeoff —")
	fmt.Println("then escalates only the unlucky stragglers (doubling mass targets).")
}
