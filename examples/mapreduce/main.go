// MapReduce: the paper's introduction motivates SUU with Google's
// MapReduce, whose dependencies form a complete bipartite graph — every
// reduce job waits on every map job, i.e. two phases of independent jobs.
// This example schedules a map/reduce workload on an unreliable volunteer
// pool with the Layered scheduler (SEM per phase) and compares against
// running jobs one at a time.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"

	suu "repro"
)

func main() {
	const (
		mappers  = 24
		reducers = 8
		machines = 12
		trials   = 100
	)
	ins, err := suu.Generate(suu.Spec{
		Family: "mapreduce",
		M:      machines,
		N:      mappers + reducers,
		NMap:   mappers,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MapReduce job: %d map + %d reduce tasks on %d volunteer machines\n",
		mappers, reducers, machines)
	fmt.Printf("dependency class: %v (%d edges — complete bipartite)\n\n",
		ins.Class(), ins.Prec.Edges())

	layered, err := suu.Estimate(ins, suu.NewLayered(), trials, 1)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := suu.Estimate(ins, suu.NewSequential(), trials, 1)
	if err != nil {
		log.Fatal(err)
	}
	split, err := suu.Estimate(ins, suu.NewEligibleSplit(), trials, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("layered+SEM (phase-by-phase): E[T] ≈ %6.1f ±%.1f  — tail-robust, proven bound\n",
		layered.Summary.Mean, layered.Summary.CI95())
	fmt.Printf("eligible-split heuristic:     E[T] ≈ %6.1f ±%.1f  — fast here, no guarantee\n",
		split.Summary.Mean, split.Summary.CI95())
	fmt.Printf("one job at a time:            E[T] ≈ %6.1f ±%.1f  — the O(n) fallback\n",
		seq.Summary.Mean, seq.Summary.CI95())

	fmt.Println("\nEach phase is an independent-jobs SUU-I instance, so SEM's")
	fmt.Println("O(log log min{m,n}) guarantee applies phase by phase — including on")
	fmt.Println("adversarial pools where the heuristics degrade (see the specialist")
	fmt.Println("rows of the t1-indep experiment). The constants SEM pays here")
	fmt.Println("are the LP-rounding factor 6 of Lemma 2.")
}
