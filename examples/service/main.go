// Service: run the suud planner in-process, hit it over real HTTP with
// the suuload open-loop harness — single requests first, then batch mode
// at the same offered item rate, then shaped traffic (a switching rate
// curve with zipf popularity) recorded to a binary trace and replayed at
// 2× — and print what the service measured.
// Then the resilience layer: a second, deliberately tiny server under
// fault injection and overload, driven through the retrying client, shows
// brownout fallbacks, retries, and the readiness lifecycle.
// In between, the durable plan store: compute against a disk-backed
// store, tear the whole stack down, rebuild it on the same directory,
// and replay the workload warm with zero recomputation.
// The one-file version of:
//
//	go run ./cmd/suud &
//	go run ./cmd/suuload -rate 200 -duration 3s -m 8 -n 32
//	go run ./cmd/suuload -op plan-batch -item-rate 200 -batch-size 8 -duration 3s -m 8 -n 32
//	go run ./cmd/suud -store-dir /var/lib/suud &   # kill -9 it; restart serves from the log
//	go run ./cmd/suud -degraded-policy independent -chaos &
//	go run ./cmd/suuload -retries 3 ...
//
// Run it:
//
//	go run ./examples/service
//
// See README.md here for the failure-mode contract the demo exercises.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	// The planner is the service core: bounded workers, content-addressed
	// response cache, request coalescing, admission control.
	planner := service.NewPlanner(service.Config{Workers: 4, QueueDepth: 32})
	srv := &http.Server{Handler: service.NewServer(planner)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("suud serving on %s\n", base)

	// Open-loop load: 200 plan requests/second, Poisson arrivals, cycling
	// two n=32/m=8 instances so the second sight of each is a cache hit.
	rep, err := service.RunLoad(context.Background(), service.LoadConfig{
		BaseURL:  base,
		Mode:     "open",
		Arrival:  "poisson",
		Rate:     200,
		Duration: 3 * time.Second,
		Op:       "plan",
		Specs: []workload.Spec{
			{Family: "uniform", M: 8, N: 32, Seed: 1},
			{Family: "uniform", M: 8, N: 32, Seed: 2},
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient: %d done, %d errors, %.1f req/s\n", rep.Done, rep.Errors, rep.Throughput)
	fmt.Printf("latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.LatP50*1e3, rep.LatP95*1e3, rep.LatP99*1e3)
	if sm := rep.ServerMetrics; sm != nil {
		fmt.Printf("server: %v\n", *sm)
	}

	// Batch walkthrough, request by request: one POST to /v1/plan/batch
	// carries several items — including an intra-batch duplicate and a
	// deliberately invalid item — and comes back with per-item status.
	// Payloads are the canonical plans; the envelope's "source" says how
	// each was served (cached / computed / coalesced).
	fresh, err := workload.Generate(workload.Spec{Family: "uniform", M: 8, N: 32, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	repeat, err := workload.Generate(workload.Spec{Family: "uniform", M: 8, N: 32, Seed: 1}) // seed 1 is warm from the load run
	if err != nil {
		log.Fatal(err)
	}
	batchBody, _ := json.Marshal(&service.BatchPlanRequest{Items: []service.PlanRequest{
		{Instance: fresh},
		{Instance: fresh}, // duplicate: deduped inside the batch, one compute
		{Instance: repeat},
		{}, // invalid: fails alone, not the batch
	}})
	// internal/client is the resilient way in: per-attempt timeouts,
	// backoff with jitter, 429/503 and connection errors retried.
	suu := client.New(client.Config{Seed: 1})
	res, err := suu.Do(context.Background(), base+"/v1/plan/batch", batchBody)
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != http.StatusOK {
		log.Fatalf("batch rejected: %d %s", res.Status, res.Body)
	}
	var batch service.BatchPlanResponse
	if err := json.Unmarshal(res.Body, &batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch: %d items → %d ok (%d cached, %d computed, %d coalesced), %d errors, %d cost units\n",
		batch.Size, batch.OK, batch.Cached, batch.Computed, batch.Coalesced, batch.Errors, batch.CostUnits)
	for i, item := range batch.Items {
		if item.Status == "ok" {
			fmt.Printf("  item %d: %-9s t*=%.3f length=%d\n", i, item.Source, item.Plan.TStar, item.Plan.Length)
		} else {
			fmt.Printf("  item %d: error: %s\n", i, item.Error)
		}
	}

	// The same comparison at load: batch mode at the identical offered
	// ITEM rate amortizes per-request HTTP/JSON cost into one round trip
	// per batch.
	brep, err := service.RunLoad(context.Background(), service.LoadConfig{
		BaseURL:   base,
		Mode:      "open",
		Arrival:   "poisson",
		ItemRate:  200, // = the single-run request rate, in items/s
		BatchSize: 8,
		Duration:  3 * time.Second,
		Op:        "plan-batch",
		Specs: []workload.Spec{
			{Family: "uniform", M: 8, N: 32, Seed: 1},
			{Family: "uniform", M: 8, N: 32, Seed: 2},
		},
		Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch load: %d batches, %d items, %d item errors, %.1f items/s (offered %.0f)\n",
		brep.Done, brep.ItemsDone, brep.ItemsErrors, brep.ItemThroughput, brep.OfferedItemRate)
	fmt.Printf("per-batch latency: p50=%.2fms p99=%.2fms\n", brep.LatP50*1e3, brep.LatP99*1e3)

	// Traffic shaping and record/replay: a switching (on/off square wave)
	// rate curve with zipf-skewed spec popularity over a 16-spec catalog,
	// recorded to a binary trace — then the exact same arrival sequence
	// replayed at 2× speed. The replay rebuilds every request body from the
	// trace header alone; the shape flags are ignored.
	traceDir, err := os.MkdirTemp("", "suud-trace-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(traceDir)
	tracePath := traceDir + "/run.trace"
	srep, err := service.RunLoad(context.Background(), service.LoadConfig{
		BaseURL:    base,
		Mode:       "open",
		Arrival:    "poisson",
		Curve:      "switching:300:60:1s", // 300 req/s half the time, 60 the other half
		Popularity: "zipf:0.9",            // a few hot specs, a long cold tail
		Duration:   3 * time.Second,
		Op:         "plan",
		Specs:      workload.Catalog("uniform", 8, 32, 16, 50),
		Seed:       3,
		RecordPath: tracePath,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshaped load (%s, %s): issued=%d done=%d over %.1fs issuing + %.2fs drain; recorded %d requests\n",
		srep.Curve, srep.Popularity, srep.Issued, srep.Done, srep.DurationS, srep.DrainS, srep.Recorded)
	rrep, err := service.RunLoad(context.Background(), service.LoadConfig{
		BaseURL:     base,
		ReplayPath:  tracePath,
		ReplaySpeed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay at 2x: issued=%d (same sequence) in %.1fs — measured rate %.0f req/s vs %.0f recorded\n",
		rrep.Issued, rrep.DurationS, rrep.OfferedRate, srep.OfferedRate)

	// Durability: the same planner core over a disk-backed plan store.
	// Plans computed once survive a full restart — close the planner and
	// the store, reopen the same directory, replay the same workload, and
	// every answer comes off the recovered log with zero recomputation.
	storeDir, err := os.MkdirTemp("", "suud-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	durReqs := make([]*service.PlanRequest, 6)
	for i := range durReqs {
		ins, err := workload.Generate(workload.Spec{Family: "uniform", M: 8, N: 32, Seed: 200 + int64(i)})
		if err != nil {
			log.Fatal(err)
		}
		durReqs[i] = &service.PlanRequest{Instance: ins}
	}
	st1, err := store.Open(storeDir, store.DiskConfig{Fsync: store.FsyncAlways})
	if err != nil {
		log.Fatal(err)
	}
	dp1 := service.NewPlanner(service.Config{Workers: 2, QueueDepth: 16, Store: st1})
	for _, req := range durReqs {
		if _, err := dp1.Plan(context.Background(), req); err != nil {
			log.Fatal(err)
		}
	}
	dm1 := dp1.Metrics()
	fmt.Printf("\ndurable store, cold run: %d plans computed, %d records on disk\n",
		dm1.PlansComputed, dm1.StoreEntries)
	dp1.Close()
	if err := st1.Close(); err != nil {
		log.Fatal(err)
	}

	// The "restart": a fresh store over the same directory, a fresh
	// planner with an empty LRU. Warmup gates readiness on store recovery.
	st2, err := store.Open(storeDir, store.DiskConfig{})
	if err != nil {
		log.Fatal(err)
	}
	dp2 := service.NewPlanner(service.Config{Workers: 2, QueueDepth: 16, Store: st2})
	if err := dp2.Warmup(); err != nil {
		log.Fatal(err)
	}
	for _, req := range durReqs {
		if _, err := dp2.Plan(context.Background(), req); err != nil {
			log.Fatal(err)
		}
	}
	dm2 := dp2.Metrics()
	fmt.Printf("durable store, after restart: %d plans computed, %d disk hits, %d corrupt records dropped\n",
		dm2.PlansComputed, dm2.StoreDiskHits, dm2.StoreCorrupt)
	dp2.Close()
	if err := st2.Close(); err != nil {
		log.Fatal(err)
	}

	// Resilience demo: a deliberately tiny planner (one worker, short
	// queue) under injected 503s, with brownout fallbacks enabled. The
	// retrying client absorbs the injected errors; overload past the
	// brownout threshold is answered with degraded greedy plans instead of
	// 429s.
	tiny := service.NewPlanner(service.Config{
		Workers:           1,
		QueueDepth:        4,
		DegradedPolicy:    service.DegradeIndependent,
		BrownoutThreshold: 0.5,
	})
	inj := faults.New(faults.Config{Seed: 7, ErrorP: 0.3, HTTPMethod: http.MethodPost})
	tsrv := &http.Server{Handler: inj.Wrap(service.NewServer(tiny))}
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go tsrv.Serve(tln)
	tbase := "http://" + tln.Addr().String()

	// /readyz is the lifecycle endpoint: 503 until Warmup, 200 while
	// serving, 503 again the moment drain begins (before the listener
	// closes). /healthz stays 200 throughout — liveness, not readiness.
	fmt.Printf("\nreadyz before warmup: %d\n", getStatus(tbase+"/readyz"))
	if err := tiny.Warmup(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("readyz after warmup:  %d\n", getStatus(tbase+"/readyz"))

	rsuu := client.New(client.Config{
		MaxAttempts: 4,
		BaseBackoff: 5 * time.Millisecond,
		Seed:        9,
	})
	var (
		wg                          sync.WaitGroup
		mu                          sync.Mutex
		okFull, okDegraded, retried int
	)
	for i := 0; i < 16; i++ {
		ins, err := workload.Generate(workload.Spec{Family: "uniform", M: 24, N: 192, Seed: 100 + int64(i)})
		if err != nil {
			log.Fatal(err)
		}
		body, _ := json.Marshal(&service.PlanRequest{Instance: ins, DeadlineMS: 5000})
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := rsuu.Do(context.Background(), tbase+"/v1/plan", body)
			if err != nil || r.Status != http.StatusOK {
				return
			}
			var plan service.PlanResponse
			if json.Unmarshal(r.Body, &plan) != nil {
				return
			}
			mu.Lock()
			if plan.Degraded {
				okDegraded++
			} else {
				okFull++
			}
			if r.Attempts > 1 {
				retried++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	cm := rsuu.Snapshot()
	fmt.Printf("\nchaos burst: 16 cold plans → %d ok (%d full, %d degraded fallbacks); %d calls retried (%d retries total)\n",
		okFull+okDegraded, okFull, okDegraded, retried, cm.Retries)
	fmt.Printf("injected by the chaos middleware: %+v\n", inj.Snapshot())

	tiny.BeginDrain()
	fmt.Printf("readyz during drain:  %d\n", getStatus(tbase+"/readyz"))
	tln.Close()
	tiny.Close()

	// Graceful shutdown: stop accepting, drain in-flight work.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	planner.Close()
	fmt.Println("\ndrained cleanly")
}

func getStatus(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}
