// Service: run the suud planner in-process, hit it over real HTTP with
// the suuload open-loop harness, and print what the service measured —
// the one-file version of:
//
//	go run ./cmd/suud &
//	go run ./cmd/suuload -rate 200 -duration 3s -m 8 -n 32
//
// Run it:
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	// The planner is the service core: bounded workers, content-addressed
	// response cache, request coalescing, admission control.
	planner := service.NewPlanner(service.Config{Workers: 4, QueueDepth: 32})
	srv := &http.Server{Handler: service.NewServer(planner)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("suud serving on %s\n", base)

	// Open-loop load: 200 plan requests/second, Poisson arrivals, cycling
	// two n=32/m=8 instances so the second sight of each is a cache hit.
	rep, err := service.RunLoad(context.Background(), service.LoadConfig{
		BaseURL:  base,
		Mode:     "open",
		Arrival:  "poisson",
		Rate:     200,
		Duration: 3 * time.Second,
		Op:       "plan",
		Specs: []workload.Spec{
			{Family: "uniform", M: 8, N: 32, Seed: 1},
			{Family: "uniform", M: 8, N: 32, Seed: 2},
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient: %d done, %d errors, %.1f req/s\n", rep.Done, rep.Errors, rep.Throughput)
	fmt.Printf("latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.LatP50*1e3, rep.LatP95*1e3, rep.LatP99*1e3)
	if sm := rep.ServerMetrics; sm != nil {
		fmt.Printf("server: %v\n", *sm)
	}

	// Graceful shutdown: stop accepting, drain in-flight work.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	planner.Close()
	fmt.Println("\ndrained cleanly")
}
