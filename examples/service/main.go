// Service: run the suud planner in-process, hit it over real HTTP with
// the suuload open-loop harness — single requests first, then batch mode
// at the same offered item rate — and print what the service measured.
// The one-file version of:
//
//	go run ./cmd/suud &
//	go run ./cmd/suuload -rate 200 -duration 3s -m 8 -n 32
//	go run ./cmd/suuload -op plan-batch -item-rate 200 -batch-size 8 -duration 3s -m 8 -n 32
//
// Run it:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	// The planner is the service core: bounded workers, content-addressed
	// response cache, request coalescing, admission control.
	planner := service.NewPlanner(service.Config{Workers: 4, QueueDepth: 32})
	srv := &http.Server{Handler: service.NewServer(planner)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("suud serving on %s\n", base)

	// Open-loop load: 200 plan requests/second, Poisson arrivals, cycling
	// two n=32/m=8 instances so the second sight of each is a cache hit.
	rep, err := service.RunLoad(context.Background(), service.LoadConfig{
		BaseURL:  base,
		Mode:     "open",
		Arrival:  "poisson",
		Rate:     200,
		Duration: 3 * time.Second,
		Op:       "plan",
		Specs: []workload.Spec{
			{Family: "uniform", M: 8, N: 32, Seed: 1},
			{Family: "uniform", M: 8, N: 32, Seed: 2},
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient: %d done, %d errors, %.1f req/s\n", rep.Done, rep.Errors, rep.Throughput)
	fmt.Printf("latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.LatP50*1e3, rep.LatP95*1e3, rep.LatP99*1e3)
	if sm := rep.ServerMetrics; sm != nil {
		fmt.Printf("server: %v\n", *sm)
	}

	// Batch walkthrough, request by request: one POST to /v1/plan/batch
	// carries several items — including an intra-batch duplicate and a
	// deliberately invalid item — and comes back with per-item status.
	// Payloads are the canonical plans; the envelope's "source" says how
	// each was served (cached / computed / coalesced).
	fresh, err := workload.Generate(workload.Spec{Family: "uniform", M: 8, N: 32, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	repeat, err := workload.Generate(workload.Spec{Family: "uniform", M: 8, N: 32, Seed: 1}) // seed 1 is warm from the load run
	if err != nil {
		log.Fatal(err)
	}
	batchBody, _ := json.Marshal(&service.BatchPlanRequest{Items: []service.PlanRequest{
		{Instance: fresh},
		{Instance: fresh}, // duplicate: deduped inside the batch, one compute
		{Instance: repeat},
		{}, // invalid: fails alone, not the batch
	}})
	httpResp, err := http.Post(base+"/v1/plan/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		log.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(httpResp.Body)
		log.Fatalf("batch rejected: %d %s", httpResp.StatusCode, body)
	}
	var batch service.BatchPlanResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	httpResp.Body.Close()
	fmt.Printf("\nbatch: %d items → %d ok (%d cached, %d computed, %d coalesced), %d errors, %d cost units\n",
		batch.Size, batch.OK, batch.Cached, batch.Computed, batch.Coalesced, batch.Errors, batch.CostUnits)
	for i, item := range batch.Items {
		if item.Status == "ok" {
			fmt.Printf("  item %d: %-9s t*=%.3f length=%d\n", i, item.Source, item.Plan.TStar, item.Plan.Length)
		} else {
			fmt.Printf("  item %d: error: %s\n", i, item.Error)
		}
	}

	// The same comparison at load: batch mode at the identical offered
	// ITEM rate amortizes per-request HTTP/JSON cost into one round trip
	// per batch.
	brep, err := service.RunLoad(context.Background(), service.LoadConfig{
		BaseURL:   base,
		Mode:      "open",
		Arrival:   "poisson",
		ItemRate:  200, // = the single-run request rate, in items/s
		BatchSize: 8,
		Duration:  3 * time.Second,
		Op:        "plan-batch",
		Specs: []workload.Spec{
			{Family: "uniform", M: 8, N: 32, Seed: 1},
			{Family: "uniform", M: 8, N: 32, Seed: 2},
		},
		Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch load: %d batches, %d items, %d item errors, %.1f items/s (offered %.0f)\n",
		brep.Done, brep.ItemsDone, brep.ItemsErrors, brep.ItemThroughput, brep.OfferedItemRate)
	fmt.Printf("per-batch latency: p50=%.2fms p99=%.2fms\n", brep.LatP50*1e3, brep.LatP99*1e3)

	// Graceful shutdown: stop accepting, drain in-flight work.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	planner.Close()
	fmt.Println("\ndrained cleanly")
}
