// Quickstart: build an SUU instance, run the paper's flagship algorithm
// (SUU-I-SEM), and compare the estimated expected makespan against the LP
// lower bound and the trivial baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	suu "repro"
)

func main() {
	// 32 independent unit jobs on 8 unreliable machines; failure
	// probabilities drawn uniformly from [0.1, 0.9].
	ins, err := suu.Generate(suu.Spec{Family: "uniform", M: 8, N: 32, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d jobs on %d machines (%v precedence)\n\n",
		ins.N, ins.M, ins.Class())

	lb, err := suu.LowerBound(ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP lower bound on E[T_OPT]: %.2f steps\n\n", lb)

	const trials = 200
	for _, p := range []suu.Policy{
		suu.NewSEM(),        // ours: O(log log min{m,n})-approximation
		suu.NewOBL(),        // oblivious O(log n)-approximation
		suu.NewGreedy(),     // Lin–Rajaraman-style greedy
		suu.NewSequential(), // trivial O(n)-approximation
	} {
		res, err := suu.Estimate(ins, p, trials, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s E[T] ≈ %6.1f ±%.1f   (ratio ≤ %.1f)\n",
			p.Name(), res.Summary.Mean, res.Summary.CI95(), res.Summary.Mean/lb)
	}

	fmt.Println("\nThe 'ratio' column upper-bounds each algorithm's approximation")
	fmt.Println("factor; Table 1 of the paper proves SEM's stays O(log log min{m,n}).")
}
