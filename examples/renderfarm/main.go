// Render farm: video post-production pipelines are chains — per shot:
// decode → simulate → render → composite → encode — executed on flaky
// spot instances. Precedence forming disjoint chains is exactly SUU-C
// territory (Section 4): LP2 assigns machines, random delays spread the
// chains to bound congestion, and the occasional pathological frame (a
// "long job") is batched through SUU-I-SEM at segment boundaries.
//
//	go run ./examples/renderfarm
package main

import (
	"fmt"
	"log"

	suu "repro"
)

func main() {
	const (
		shots    = 12 // chains
		stages   = 4  // jobs per chain
		machines = 8
		trials   = 60
	)
	ins, err := suu.Generate(suu.Spec{
		Family: "chains-hard", // some frames are pathological for most nodes
		M:      machines,
		N:      shots * stages,
		Z:      shots,
		Seed:   23,
	})
	if err != nil {
		log.Fatal(err)
	}
	chains, err := ins.Chains()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("render farm: %d shots × %d pipeline stages = %d tasks on %d spot nodes\n",
		len(chains), stages, ins.N, ins.M)
	fmt.Printf("precedence class: %v\n\n", ins.Class())

	for _, a := range []struct {
		label string
		p     suu.Policy
	}{
		{"SUU-C (paper §4)", suu.NewChains()},
		{"eligible-split heuristic", suu.NewEligibleSplit()},
		{"one task at a time", suu.NewSequential()},
	} {
		res, err := suu.Estimate(ins, a.p, trials, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s E[T] ≈ %6.1f ±%.1f   (p90 %.0f, max %.0f)\n",
			a.label, res.Summary.Mean, res.Summary.CI95(),
			res.Summary.P90, res.Summary.Max)
	}

	fmt.Println("\nSUU-C pays constant-factor overheads (LP rounding, chain delays)")
	fmt.Println("for a guarantee that holds on adversarial instances; the heuristics")
	fmt.Println("are faster here but have no bound — see suubench -run t1-chains")
	fmt.Println("for the scaling comparison and f-batch for where the paper's")
	fmt.Println("long-job machinery overtakes the alternatives.")
}
