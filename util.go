package suu

import (
	"fmt"
	"math/rand"

	"repro/internal/rng"
)

// newRand builds the same per-seed stream the Monte Carlo estimator uses
// (a SplitMix64 source behind *rand.Rand), so Run(ins, p, seed+i) replays
// exactly trial i of Estimate(ins, p, trials, seed).
func newRand(seed int64) *rand.Rand { return rand.New(rng.New(seed)) }

func errUnknownExperiment(id string) error {
	return fmt.Errorf("suu: unknown experiment %q; see Experiments()", id)
}
