package suu_test

import (
	"math"
	"testing"

	suu "repro"
)

// TestQuickstart is the README's quickstart, verified.
func TestQuickstart(t *testing.T) {
	ins, err := suu.Generate(suu.Spec{Family: "uniform", M: 8, N: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := suu.Estimate(ins, suu.NewSEM(), 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := suu.LowerBound(ins)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Mean < lb {
		t.Fatalf("mean %.2f below lower bound %.2f", res.Summary.Mean, lb)
	}
}

// TestAllConstructorsOnMatchingClasses runs every public policy on an
// instance of its precedence class.
func TestAllConstructorsOnMatchingClasses(t *testing.T) {
	cases := []struct {
		name string
		p    suu.Policy
		spec suu.Spec
	}{
		{"sem", suu.NewSEM(), suu.Spec{Family: "uniform", M: 4, N: 10, Seed: 2}},
		{"obl", suu.NewOBL(), suu.Spec{Family: "skill", M: 4, N: 10, Seed: 3}},
		{"greedy", suu.NewGreedy(), suu.Spec{Family: "uniform", M: 4, N: 10, Seed: 4}},
		{"chains", suu.NewChains(), suu.Spec{Family: "chains", M: 4, N: 12, Z: 3, Seed: 5}},
		{"forest", suu.NewForest(), suu.Spec{Family: "forest", M: 4, N: 12, Seed: 6}},
		{"layered", suu.NewLayered(), suu.Spec{Family: "mapreduce", M: 4, N: 10, NMap: 6, Seed: 7}},
		{"sequential", suu.NewSequential(), suu.Spec{Family: "in-forest", M: 4, N: 10, Seed: 8}},
		{"split", suu.NewEligibleSplit(), suu.Spec{Family: "chains", M: 4, N: 10, Z: 2, Seed: 9}},
		{"greedy-prec", suu.NewGreedyPrec(), suu.Spec{Family: "forest", M: 4, N: 10, Seed: 10}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ins, err := suu.Generate(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := suu.Run(ins, c.p, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ms <= 0 {
				t.Fatalf("makespan %d", ms)
			}
		})
	}
}

func TestManualInstanceAndDAG(t *testing.T) {
	g := suu.NewDAG(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	ins, err := suu.NewInstance(2, 3, [][]float64{
		{0.5, 0.3, 0.4},
		{0.2, 0.6, 0.5},
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := suu.Run(ins, suu.NewChains(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if ms < 3 {
		t.Fatalf("3-chain needs ≥ 3 steps, got %d", ms)
	}
}

func TestExactOptimalFacade(t *testing.T) {
	ins, err := suu.NewInstance(1, 1, [][]float64{{0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := suu.ExactOptimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-2) > 1e-9 {
		t.Fatalf("optimal %g, want 2", opt)
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	exps := suu.Experiments()
	if len(exps) < 9 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	if _, err := suu.RunExperiment("definitely-not-real", suu.ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
	tb, err := suu.RunExperiment("f-batch", suu.ExperimentConfig{Scale: 0.2, Trials: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
}

// TestRunReplaysEstimateTrial: Run(ins, p, seed+i) must reproduce trial i
// of Estimate(ins, p, trials, seed) exactly — the standalone replay used
// to debug individual Monte Carlo trials.
func TestRunReplaysEstimateTrial(t *testing.T) {
	ins, err := suu.Generate(suu.Spec{Family: "uniform", M: 4, N: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := suu.NewSequential()
	const trials, seed = 10, 42
	res, err := suu.Estimate(ins, p, trials, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		ms, err := suu.Run(ins, p, seed+int64(i))
		if err != nil {
			t.Fatalf("replay of trial %d: %v", i, err)
		}
		if float64(ms) != res.Makespans[i] {
			t.Fatalf("trial %d: Estimate saw makespan %v, Run replays %d", i, res.Makespans[i], ms)
		}
	}
}
