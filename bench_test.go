// Benchmarks regenerating the paper's evaluation, one per table row and
// validation figure (run `suubench -list` for the experiment index). Each
// benchmark iteration runs the corresponding experiment at reduced scale;
// cmd/suubench runs the full sweeps, and its -json flag records measured
// results in the committed BENCH_*.json files.
package suu_test

import (
	"testing"

	suu "repro"
)

// benchScale keeps -bench=. runs fast while still executing the real
// pipeline (LP solve → rounding → simulation) end to end.
const benchScale = 0.3

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := suu.RunExperiment(id, suu.ExperimentConfig{
			Scale:  benchScale,
			Trials: 8,
			Seed:   int64(i + 1),
		})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// BenchmarkTable1Independent regenerates Table 1 row 1 (independent jobs):
// SEM (ours) vs OBL/greedy baselines, ratio to the LP lower bound.
func BenchmarkTable1Independent(b *testing.B) { runExperiment(b, "t1-indep") }

// BenchmarkTable1Chains regenerates Table 1 row 2 (disjoint chains):
// SUU-C vs the Lin–Rajaraman-style variant, ratio to the LP2 bound.
func BenchmarkTable1Chains(b *testing.B) { runExperiment(b, "t1-chains") }

// BenchmarkTable1Forest regenerates Table 1 row 3 (directed forests):
// SUU-T via heavy-path chain decomposition.
func BenchmarkTable1Forest(b *testing.B) { runExperiment(b, "t1-forest") }

// BenchmarkFigRounds validates Theorem 4: SEM uses ~2–3 of its K rounds.
func BenchmarkFigRounds(b *testing.B) { runExperiment(b, "f-rounds") }

// BenchmarkFigDelay validates Theorem 7: random delays bound congestion.
func BenchmarkFigDelay(b *testing.B) { runExperiment(b, "f-delay") }

// BenchmarkFigBatch isolates the long-job batch component: the log k vs
// log log k separation between OBL and SEM, with its crossover near k≈m.
func BenchmarkFigBatch(b *testing.B) { runExperiment(b, "f-batch") }

// BenchmarkFigExactRatio measures true approximation ratios against the
// exact DP optimum on small instances.
func BenchmarkFigExactRatio(b *testing.B) { runExperiment(b, "f-exact") }

// BenchmarkFigStoch regenerates the Appendix C stochastic-scheduling
// comparison (STC-I vs sequential-fastest).
func BenchmarkFigStoch(b *testing.B) { runExperiment(b, "f-stoch") }

// BenchmarkAblRounding is the Lemma 2 ablation: flow rounding vs naive
// per-entry ceilings.
func BenchmarkAblRounding(b *testing.B) { runExperiment(b, "a-rounding") }

// BenchmarkAblEquivalence is the Theorem 10 check: coin-flip SUU vs
// threshold SUU* agree in distribution.
func BenchmarkAblEquivalence(b *testing.B) { runExperiment(b, "a-equiv") }

// BenchmarkTable1IndependentLarge regenerates the large-instance cells
// (n=64/m=16, n=128/m=32) on the workspace + warm-start LP engine;
// BENCH_pr2.json records the full-scale run of this and its cold-engine
// baseline arm (t1-large-cold).
func BenchmarkTable1IndependentLarge(b *testing.B) { runExperiment(b, "t1-large") }

// BenchmarkSEMTrial measures one full SEM Monte Carlo trial on the
// n=64/m=16 large cell: after the first iteration warms the round-1 cache,
// steady-state cost is the warm-started round re-solves, rounding, and
// fast-forward execution — the per-trial hot path of every large estimate.
func BenchmarkSEMTrial(b *testing.B) {
	ins, err := suu.Generate(suu.Spec{Family: "uniform", M: 16, N: 64, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	p := suu.NewSEM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := suu.Run(ins, p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSEM measures raw simulator throughput for the flagship
// algorithm on a mid-size instance (LP solves cached after the first
// iteration, so steady-state cost is rounding + fast-forward execution).
func BenchmarkSimulateSEM(b *testing.B) {
	ins, err := suu.Generate(suu.Spec{Family: "uniform", M: 16, N: 64, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	p := suu.NewSEM()
	for i := 0; i < b.N; i++ {
		if _, err := suu.Run(ins, p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateChains measures SUU-C end to end on a chains instance.
func BenchmarkSimulateChains(b *testing.B) {
	ins, err := suu.Generate(suu.Spec{Family: "chains", M: 8, N: 32, Z: 4, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	p := suu.NewChains()
	for i := 0; i < b.N; i++ {
		if _, err := suu.Run(ins, p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
