package suu_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	suu "repro"
	"repro/internal/exact"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestNoPolicyBeatsExactOptimum is the repository's global soundness
// check: on random small instances, every policy's Monte Carlo mean must
// be at least the DP-exact optimal expected makespan (within sampling
// slack). A policy beating the optimum would mean either the DP or the
// simulator is wrong.
func TestNoPolicyBeatsExactOptimum(t *testing.T) {
	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"sem", func() sim.Policy { return suu.NewSEM() }},
		{"obl", func() sim.Policy { return suu.NewOBL() }},
		{"greedy", func() sim.Policy { return suu.NewGreedy() }},
		{"greedy-prec", func() sim.Policy { return suu.NewGreedyPrec() }},
		{"sequential", func() sim.Policy { return suu.NewSequential() }},
		{"split", func() sim.Policy { return suu.NewEligibleSplit() }},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		ins, err := workload.IndependentUniform(rng, m, n, 0.15, 0.85)
		if err != nil {
			return false
		}
		opt, err := exact.Optimal(ins)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		const trials = 800
		for _, p := range policies {
			res, err := sim.MonteCarlo(ins, p.mk(), trials, seed, 0)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, p.name, err)
				return false
			}
			if res.Summary.Mean < opt-4*res.Summary.Sem-0.02 {
				t.Logf("seed %d: %s mean %.4f beats exact optimum %.4f",
					seed, p.name, res.Summary.Mean, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestChainsPoliciesRespectOptimum does the same for chain instances and
// the chain-capable policies, exercising the DP's precedence handling.
func TestChainsPoliciesRespectOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := 1 + rng.Intn(2)
		n := z * (2 + rng.Intn(3))
		m := 1 + rng.Intn(2)
		ins, err := workload.Chains(rng, m, n, z, 0.2, 0.8)
		if err != nil {
			return false
		}
		opt, err := exact.Optimal(ins)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		const trials = 600
		for _, p := range []sim.Policy{suu.NewChains(), suu.NewForest(), suu.NewSequential()} {
			res, err := sim.MonteCarlo(ins, p, trials, seed, 0)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, p.Name(), err)
				return false
			}
			if res.Summary.Mean < opt-4*res.Summary.Sem-0.02 {
				t.Logf("seed %d: %s mean %.4f beats exact optimum %.4f",
					seed, p.Name(), res.Summary.Mean, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestLowerBoundBelowExactOptimum: the LP lower bound used throughout the
// experiments must actually sit below the true optimum.
func TestLowerBoundBelowExactOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		ins, err := workload.IndependentUniform(rng, m, n, 0.15, 0.9)
		if err != nil {
			return false
		}
		opt, err := exact.Optimal(ins)
		if err != nil {
			return false
		}
		lb, err := suu.LowerBound(ins)
		if err != nil {
			return false
		}
		if lb > opt+1e-9 {
			t.Logf("seed %d: LB %.4f above exact optimum %.4f", seed, lb, opt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
