// Suugen generates SUU problem instances as JSON, for use with suusim or
// external tooling.
//
// Usage:
//
//	suugen -family chains -n 32 -m 8 -z 4 -seed 7 > instance.json
//	suugen -families                     # list families
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	var (
		families = flag.Bool("families", false, "list instance families and exit")
		family   = flag.String("family", "uniform", "instance family")
		n        = flag.Int("n", 16, "number of jobs")
		m        = flag.Int("m", 4, "number of machines")
		seed     = flag.Int64("seed", 1, "random seed")
		qlo      = flag.Float64("qlo", 0.1, "uniform families: min failure probability")
		qhi      = flag.Float64("qhi", 0.9, "uniform families: max failure probability")
		z        = flag.Int("z", 0, "chains: number of chains (0 = default)")
		groups   = flag.Int("groups", 0, "specialist: machine/job groups (0 = default)")
		branch   = flag.Int("branch", 0, "forest: max branching (0 = default)")
		nmap     = flag.Int("nmap", 0, "mapreduce: number of map jobs (0 = n/2)")
	)
	flag.Parse()

	if *families {
		fmt.Println("families: uniform skill specialist volunteer chains chains-skewed chains-hard forest in-forest mapreduce")
		return
	}
	ins, err := workload.Generate(workload.Spec{
		Family: *family, M: *m, N: *n, Seed: *seed,
		QLo: *qlo, QHi: *qhi, Z: *z, Groups: *groups, Branch: *branch, NMap: *nmap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "suugen: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ins); err != nil {
		fmt.Fprintf(os.Stderr, "suugen: %v\n", err)
		os.Exit(1)
	}
}
