// Suutrace summarizes a binary request trace recorded by `suuload
// -record`: run totals by outcome, source, and op, a latency CDF, and a
// per-window timeseries (rate, error counts, hit ratio, p50/p99) that
// shows how the run evolved under its rate curve. Output is one JSON
// document on stdout, ready for jq or a plotting script.
//
// Usage:
//
//	suutrace run.trace
//	suutrace -window 500ms run.trace | jq .windows
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/stats"
	"repro/internal/traffic"
)

// Summary is the document suutrace emits. Latencies are seconds; window
// boundaries are seconds from the run start.
type Summary struct {
	Path       string `json:"path,omitempty"`
	Op         string `json:"op"`
	Curve      string `json:"curve,omitempty"`
	Popularity string `json:"popularity,omitempty"`
	Seed       int64  `json:"seed"`
	Specs      int    `json:"specs"`
	StartUnix  int64  `json:"start_unix_ns,omitempty"`

	Requests  uint64  `json:"requests"`
	Items     uint64  `json:"items,omitempty"`
	Skipped   int     `json:"skipped_frames,omitempty"`
	DurationS float64 `json:"duration_s"`
	RateRPS   float64 `json:"rate_rps"`

	ByOutcome map[string]uint64 `json:"by_outcome"`
	BySource  map[string]uint64 `json:"by_source,omitempty"`
	ByOp      map[string]uint64 `json:"by_op,omitempty"`
	// HitRatio is (cached + coalesced) / traced completions — the share
	// of requests the fleet answered without a fresh solve.
	HitRatio float64 `json:"hit_ratio,omitempty"`

	LatencyCDF []CDFPoint `json:"latency_cdf"`
	LatMeanS   float64    `json:"lat_mean_s"`
	LatMaxS    float64    `json:"lat_max_s"`

	WindowS float64  `json:"window_s"`
	Windows []Window `json:"windows"`
}

// CDFPoint is one quantile of the completed-request latency distribution.
type CDFPoint struct {
	Q    float64 `json:"q"`
	LatS float64 `json:"lat_s"`
}

// Window aggregates the requests issued in one [StartS, StartS+window)
// slice of the run.
type Window struct {
	StartS   float64 `json:"start_s"`
	Requests uint64  `json:"requests"`
	RateRPS  float64 `json:"rate_rps"`
	Errors   uint64  `json:"errors,omitempty"`
	Rejected uint64  `json:"rejected,omitempty"`
	HitRatio float64 `json:"hit_ratio,omitempty"`
	LatP50S  float64 `json:"lat_p50_s,omitempty"`
	LatP99S  float64 `json:"lat_p99_s,omitempty"`
}

// cdfGrid is the quantile grid every summary reports; dense at the tail
// because that is where serving regressions hide.
var cdfGrid = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}

// summarize folds a decoded trace into the report document.
func summarize(tr *traffic.Trace, window time.Duration) *Summary {
	s := &Summary{
		Op:         tr.Header.Op,
		Curve:      tr.Header.Curve,
		Popularity: tr.Header.Popularity,
		Seed:       tr.Header.Seed,
		Specs:      len(tr.Header.Specs),
		StartUnix:  tr.Header.StartUnixNS,
		Skipped:    tr.Skipped,
		ByOutcome:  map[string]uint64{},
		BySource:   map[string]uint64{},
		ByOp:       map[string]uint64{},
		WindowS:    window.Seconds(),
	}
	lat := stats.NewLatencyHistogram()
	var traced, hits uint64
	nWindows := 0
	if d := tr.Duration(); d > 0 {
		nWindows = int(d/window) + 1
	} else if len(tr.Requests) > 0 {
		nWindows = 1
	}
	wins := make([]Window, nWindows)
	winLat := make([]*stats.Histogram, nWindows)
	winTraced := make([]uint64, nWindows)
	winHits := make([]uint64, nWindows)
	for i := range tr.Requests {
		r := &tr.Requests[i]
		s.Requests++
		s.Items += uint64(r.Items)
		s.ByOutcome[r.Outcome]++
		s.ByOp[r.Op]++
		if r.Source != "" {
			s.BySource[r.Source]++
			traced++
			if r.Source == "cached" || r.Source == "coalesced" {
				hits++
			}
		}
		if r.Outcome == "ok" {
			lat.Observe(r.Latency.Seconds())
		}
		w := int(r.Rel / window)
		if w < 0 || w >= nWindows {
			continue // defensive: a corrupt Rel must not panic the report
		}
		win := &wins[w]
		win.Requests++
		switch r.Outcome {
		case "error":
			win.Errors++
		case "rejected":
			win.Rejected++
		case "ok":
			if winLat[w] == nil {
				winLat[w] = stats.NewLatencyHistogram()
			}
			winLat[w].Observe(r.Latency.Seconds())
		}
		if r.Source != "" {
			winTraced[w]++
			if r.Source == "cached" || r.Source == "coalesced" {
				winHits[w]++
			}
		}
	}
	s.DurationS = tr.Duration().Seconds()
	if s.DurationS > 0 {
		s.RateRPS = float64(s.Requests) / s.DurationS
	}
	if traced > 0 {
		s.HitRatio = float64(hits) / float64(traced)
	}
	if lat.N() > 0 {
		s.LatMeanS = lat.Mean()
		s.LatMaxS = lat.Max()
		for _, q := range cdfGrid {
			s.LatencyCDF = append(s.LatencyCDF, CDFPoint{Q: q, LatS: lat.Quantile(q)})
		}
	}
	for w := range wins {
		wins[w].StartS = float64(w) * window.Seconds()
		wins[w].RateRPS = float64(wins[w].Requests) / window.Seconds()
		if winTraced[w] > 0 {
			wins[w].HitRatio = float64(winHits[w]) / float64(winTraced[w])
		}
		if h := winLat[w]; h != nil && h.N() > 0 {
			wins[w].LatP50S = h.Quantile(0.50)
			wins[w].LatP99S = h.Quantile(0.99)
		}
	}
	s.Windows = wins
	return s
}

func main() {
	window := flag.Duration("window", time.Second, "timeseries bucket width")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: suutrace [-window 1s] <trace>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *window <= 0 {
		fmt.Fprintln(os.Stderr, "suutrace: -window must be positive")
		os.Exit(2)
	}
	path := flag.Arg(0)
	tr, err := traffic.OpenTrace(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "suutrace: %v\n", err)
		os.Exit(1)
	}
	s := summarize(tr, *window)
	s.Path = path
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fmt.Fprintf(os.Stderr, "suutrace: %v\n", err)
		os.Exit(1)
	}
}
