package main

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/traffic"
	"repro/internal/workload"
)

// buildTrace records a synthetic 3-second run in memory: 2 requests/s in
// windows 0 and 2, a burst of 6 in window 1, with a known outcome and
// source mix.
func buildTrace(t *testing.T) *traffic.Trace {
	t.Helper()
	var buf bytes.Buffer
	rec, err := traffic.NewRecorder(&buf, traffic.Header{
		Op:         "plan",
		Specs:      workload.Catalog("uniform", 3, 8, 4, 1),
		Seed:       1,
		Curve:      "switching:6:2:2s",
		Popularity: "zipf:0.9",
	})
	if err != nil {
		t.Fatal(err)
	}
	add := func(relMS int, outcome, source string, latMS int) {
		rec.Append(&traffic.Request{
			Rel:     time.Duration(relMS) * time.Millisecond,
			Latency: time.Duration(latMS) * time.Millisecond,
			Op:      "plan",
			Outcome: outcome,
			Source:  source,
			Spec:    uint32(relMS % 4),
			Items:   1,
		})
	}
	// Window 0: two oks, one cached.
	add(100, "ok", "cached", 2)
	add(600, "ok", "computed", 20)
	// Window 1: burst of six — four ok (three cached), one error, one rejected.
	add(1100, "ok", "cached", 2)
	add(1200, "ok", "cached", 2)
	add(1300, "ok", "coalesced", 3)
	add(1400, "ok", "computed", 30)
	add(1500, "error", "", 1)
	add(1600, "rejected", "", 1)
	// Window 2: two oks.
	add(2200, "ok", "cached", 2)
	add(2800, "ok", "computed", 25)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSummarize(t *testing.T) {
	tr := buildTrace(t)
	s := summarize(tr, time.Second)

	if s.Requests != 10 || s.Items != 10 {
		t.Fatalf("totals: %+v", s)
	}
	if s.Op != "plan" || s.Curve != "switching:6:2:2s" || s.Popularity != "zipf:0.9" || s.Specs != 4 {
		t.Fatalf("header labels: %+v", s)
	}
	if s.ByOutcome["ok"] != 8 || s.ByOutcome["error"] != 1 || s.ByOutcome["rejected"] != 1 {
		t.Fatalf("by_outcome: %v", s.ByOutcome)
	}
	if s.BySource["cached"] != 4 || s.BySource["computed"] != 3 || s.BySource["coalesced"] != 1 {
		t.Fatalf("by_source: %v", s.BySource)
	}
	// 5 hits (4 cached + 1 coalesced) over 8 traced completions.
	if math.Abs(s.HitRatio-5.0/8.0) > 1e-9 {
		t.Fatalf("hit_ratio = %g", s.HitRatio)
	}
	if s.DurationS != 2.8 || s.RateRPS <= 0 {
		t.Fatalf("duration=%g rate=%g", s.DurationS, s.RateRPS)
	}

	if len(s.LatencyCDF) != len(cdfGrid) {
		t.Fatalf("cdf has %d points", len(s.LatencyCDF))
	}
	for i := 1; i < len(s.LatencyCDF); i++ {
		if s.LatencyCDF[i].LatS < s.LatencyCDF[i-1].LatS {
			t.Fatalf("cdf not monotone: %+v", s.LatencyCDF)
		}
	}
	// p99 must land near the slowest completion (30ms) within histogram
	// resolution, and the failed requests' latencies must stay out of it.
	p99 := s.LatencyCDF[len(s.LatencyCDF)-2]
	if p99.Q != 0.99 || p99.LatS < 0.02 || p99.LatS > 0.04 {
		t.Fatalf("p99 = %+v", p99)
	}

	if len(s.Windows) != 3 {
		t.Fatalf("windows: %d", len(s.Windows))
	}
	w0, w1, w2 := s.Windows[0], s.Windows[1], s.Windows[2]
	if w0.Requests != 2 || w1.Requests != 6 || w2.Requests != 2 {
		t.Fatalf("window counts: %d %d %d", w0.Requests, w1.Requests, w2.Requests)
	}
	if w1.RateRPS != 6 || w0.RateRPS != 2 {
		t.Fatalf("window rates: %g %g", w0.RateRPS, w1.RateRPS)
	}
	if w1.Errors != 1 || w1.Rejected != 1 || w0.Errors != 0 {
		t.Fatalf("window errors: %+v", w1)
	}
	if math.Abs(w0.HitRatio-0.5) > 1e-9 || math.Abs(w1.HitRatio-0.75) > 1e-9 {
		t.Fatalf("window hit ratios: %g %g", w0.HitRatio, w1.HitRatio)
	}
	if w1.StartS != 1 || w2.StartS != 2 {
		t.Fatalf("window starts: %g %g", w1.StartS, w2.StartS)
	}
	if w0.LatP50S <= 0 || w0.LatP99S < w0.LatP50S {
		t.Fatalf("window latency quantiles: %+v", w0)
	}
}

func TestSummarizeEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	rec, err := traffic.NewRecorder(&buf, traffic.Header{Op: "plan", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(tr, time.Second)
	if s.Requests != 0 || len(s.Windows) != 0 || len(s.LatencyCDF) != 0 {
		t.Fatalf("empty trace summary: %+v", s)
	}
}
