// Command suud serves the SUU planner over HTTP/JSON: POST /v1/plan
// (LP-rounded oblivious schedules), POST /v1/plan/batch (many plan items
// per request with per-item status, intra-batch dedupe, and cost-weighted
// admission), POST /v1/estimate (Monte Carlo makespan estimates, NDJSON
// streaming with "stream": true), GET /healthz, GET /metrics. Requests are
// admission-controlled, coalesced, and cached content-addressed — see
// internal/service.
//
// Run it:
//
//	suud -addr 127.0.0.1:8650 -workers 8 -queue 64
//
// and drive it with cmd/suuload. SIGINT/SIGTERM shut down gracefully:
// /readyz flips to 503 first, the listener closes, in-flight requests
// drain, and the planner's detached work is awaited.
//
// Overload behavior is configurable: -degraded-policy picks between
// rejecting with 429 (reject), serving uncertified greedy fallback plans
// for independent-job requests (independent), or for everything (all)
// once admission pressure crosses -brownout-threshold. -chaos enables
// the fault-injection harness (internal/faults) for resilience drills.
//
// -store-dir adds a crash-safe durable plan store (internal/store) under
// the response cache: computed plans persist to an append-only checksummed
// log and survive restarts, so a warm replica recomputes nothing. -peers
// (with -self) replicates the store across a static fleet: local misses
// fall through to the key's ring owners, writes fan out asynchronously,
// and a restarted replica pulls what it missed before /readyz goes green.
// -fsync picks the durability point (always | interval | never); the
// -chaos-disk-* and -chaos-peer-error-p flags inject storage and
// replication faults for drills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8650", "listen address")
		workers      = flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "queue depth before 429s (0 = 4x workers)")
		cacheCap     = flag.Int("cache-cap", 4096, "cached responses across shards")
		cacheShards  = flag.Int("cache-shards", 16, "cache shard count")
		maxTrials    = flag.Int("max-trials", 10000, "per-request Monte Carlo budget")
		maxBatch     = flag.Int("max-batch", 256, "items per /v1/plan/batch request")
		maxItemCost  = flag.Int("max-item-cost", 64, "per-item admission cost budget, in n·m/1024 units")
		trialWorkers = flag.Int("trial-workers", 2, "Monte Carlo workers per estimate")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")

		degradedPolicy = flag.String("degraded-policy", service.DegradeNever,
			"overload response: reject (429s), independent (greedy fallback plans for independent-job requests), or all")
		brownout = flag.Float64("brownout-threshold", 0.75,
			"queue-pressure fraction (0..1] at which degraded fallbacks kick in")

		storeDir      = flag.String("store-dir", "", "durable plan store directory (empty = no disk tier)")
		storeMemBytes = flag.Int64("store-mem-bytes", 64<<20, "in-memory store tier budget in bytes (0 = no mem tier)")
		fsyncMode     = flag.String("fsync", "interval", "disk store durability: always, interval, or never")
		fsyncEvery    = flag.Duration("fsync-interval", 100*time.Millisecond, "sync period for -fsync interval")
		compactBytes  = flag.Int64("store-compact-bytes", 256<<20, "auto-compact the log once it exceeds this and most bytes are dead (0 = off)")
		self          = flag.String("self", "", "this replica's base URL as peers reach it (required with -peers)")
		peers         = flag.String("peers", "", "comma-separated replica base URLs, self included; enables the replicated store")
		replication   = flag.Int("replication", 2, "ring owners per key in the replicated store")

		chaos        = flag.Bool("chaos", false, "enable fault injection (the -chaos-* rates)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "fault-stream seed (same seed, same arrival order => same faults)")
		chaosLatP    = flag.Float64("chaos-latency-p", 0.10, "P(injected request latency)")
		chaosLat     = flag.Duration("chaos-latency", 50*time.Millisecond, "injected latency magnitude (±50% jitter)")
		chaosErrP    = flag.Float64("chaos-error-p", 0.05, "P(injected 503 response)")
		chaosPanicP  = flag.Float64("chaos-panic-p", 0.02, "P(injected handler panic; kills the connection)")
		chaosStallP  = flag.Float64("chaos-stall-p", 0, "P(injected slow-solve stall at a compute checkpoint)")
		chaosStall   = flag.Duration("chaos-stall", 100*time.Millisecond, "stall magnitude (±50% jitter)")
		chaosCErrP   = flag.Float64("chaos-compute-error-p", 0, "P(injected compute error at a checkpoint)")
		chaosCPanicP = flag.Float64("chaos-compute-panic-p", 0, "P(injected compute panic at a checkpoint)")

		traceSample = flag.Float64("trace-sample", 0.01, "request-trace sampling probability in [0,1]; errors, degraded serves, and the slowest requests are always kept")
		traceRing   = flag.Int("trace-ring", 512, "kept traces retained for /debug/traces (0 disables the recorder)")
		traceSlow   = flag.Int("trace-slow", 32, "slowest traces pinned in /debug/traces regardless of age")
		traceLog    = flag.String("trace-log", "", "append kept traces to this binary CRC-framed log file")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")

		chaosPeerErrP   = flag.Float64("chaos-peer-error-p", 0, "P(injected 503 on /v1/store/* peer traffic only; independent of -chaos)")
		chaosBitFlipP   = flag.Float64("chaos-disk-bitflip-p", 0, "P(flipping one random bit of a disk record on read; needs -chaos)")
		chaosShortReadP = flag.Float64("chaos-disk-shortread-p", 0, "P(zeroing a random tail of a disk record on read; needs -chaos)")
		chaosENOSPC     = flag.Int64("chaos-disk-enospc-after", 0, "fail disk appends with ENOSPC after this many bytes (0 = off; needs -chaos)")
	)
	flag.Parse()

	if lv, ok := trace.LevelFromString(*logLevel); ok {
		trace.SetLevel(lv)
	} else {
		trace.Fatal("bad -log-level", "got", *logLevel, "want", "debug|info|warn|error")
	}

	switch *degradedPolicy {
	case service.DegradeNever, service.DegradeIndependent, service.DegradeAll:
	default:
		trace.Fatal("bad -degraded-policy",
			"got", *degradedPolicy,
			"want", fmt.Sprintf("%s|%s|%s", service.DegradeNever, service.DegradeIndependent, service.DegradeAll))
	}

	var traceLogWriter *trace.LogWriter
	if *traceLog != "" {
		lw, err := trace.OpenLog(*traceLog)
		if err != nil {
			trace.Fatal("opening trace log", "path", *traceLog, "err", err)
		}
		traceLogWriter = lw
	}

	var inj *faults.Injector
	if *chaos {
		inj = faults.New(faults.Config{
			Seed:         *chaosSeed,
			LatencyP:     *chaosLatP,
			Latency:      *chaosLat,
			ErrorP:       *chaosErrP,
			PanicP:       *chaosPanicP,
			HTTPMethod:   http.MethodPost, // keep /healthz, /readyz, /metrics probes clean
			StallP:       *chaosStallP,
			Stall:        *chaosStall,
			ComputeErrP:  *chaosCErrP,
			ComputePanic: *chaosCPanicP,
		})
		if inj == nil {
			trace.Warn("-chaos set but every rate is zero; injecting nothing")
		}
	}

	// Compose the plan store bottom-up: mem LRU over the disk log, the
	// replication layer over both. The planner reads through whatever stack
	// comes out; a nil store means compute-and-LRU only, exactly the old
	// behavior.
	var planStore store.PlanStore
	{
		var tiers []store.PlanStore
		if *storeMemBytes > 0 {
			tiers = append(tiers, store.NewMem(*storeMemBytes, 0))
		}
		if *storeDir != "" {
			pol, err := store.ParseFsyncPolicy(*fsyncMode)
			if err != nil {
				trace.Fatal("bad -fsync", "err", err)
			}
			dcfg := store.DiskConfig{
				Fsync:         pol,
				FsyncInterval: *fsyncEvery,
				CompactBytes:  *compactBytes,
			}
			if *chaos {
				if dinj := faults.NewDiskInjector(faults.DiskConfig{
					Seed:             *chaosSeed,
					BitFlipP:         *chaosBitFlipP,
					ShortReadP:       *chaosShortReadP,
					ENOSPC:           *chaosENOSPC > 0,
					ENOSPCAfterBytes: *chaosENOSPC,
				}); dinj != nil {
					dcfg.WriteFault = dinj.WriteFault()
					dcfg.ReadFault = dinj.ReadFault()
				}
			}
			disk, err := store.Open(*storeDir, dcfg)
			if err != nil {
				trace.Fatal("opening store", "dir", *storeDir, "err", err)
			}
			tiers = append(tiers, disk)
		}
		switch len(tiers) {
		case 0:
		case 1:
			planStore = tiers[0]
		default:
			planStore = store.NewTiered(tiers...)
		}
		if *peers != "" {
			var peerList []string
			for _, p := range strings.Split(*peers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					peerList = append(peerList, p)
				}
			}
			if *self == "" {
				trace.Fatal("-peers needs -self (this replica's URL in the peer list)")
			}
			if planStore == nil {
				trace.Fatal("-peers needs a local store tier (-store-dir and/or -store-mem-bytes)")
			}
			rep, err := store.NewReplicated(planStore, store.ReplicatedConfig{
				Self:        *self,
				Peers:       peerList,
				Replication: *replication,
				HandoffDir:  *storeDir, // hints persist next to the log; empty keeps them in memory
			})
			if err != nil {
				trace.Fatal("replicated store", "err", err)
			}
			planStore = rep
		}
	}

	planner := service.NewPlanner(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheCap:          *cacheCap,
		CacheShards:       *cacheShards,
		MaxTrials:         *maxTrials,
		MaxBatchItems:     *maxBatch,
		MaxItemCost:       *maxItemCost,
		TrialWorkers:      *trialWorkers,
		DegradedPolicy:    *degradedPolicy,
		BrownoutThreshold: *brownout,
		ComputeHook:       inj.ComputeHook(),
		Store:             planStore,
		TraceSample:       *traceSample,
		TraceRing:         *traceRing,
		TraceSlowN:        *traceSlow,
		TraceLog:          traceLogWriter,
	})
	var handler http.Handler = service.NewServer(planner)
	if *chaosPeerErrP > 0 {
		// Peer-fault mode: a second injector scoped to the store's peer
		// protocol, so replication traffic degrades while client traffic
		// stays clean — the failover/handoff drill.
		handler = faults.New(faults.Config{
			Seed:           *chaosSeed + 1,
			ErrorP:         *chaosPeerErrP,
			HTTPMethod:     http.MethodPost,
			HTTPPathPrefix: "/v1/store/",
		}).Wrap(handler)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           inj.Wrap(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := planner.Warmup(); err != nil {
		trace.Fatal("warmup failed", "err", err)
	}

	if *debugAddr != "" {
		// pprof on its own listener so profiling endpoints never share the
		// service port (or its chaos middleware) with production traffic.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				trace.Warn("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		defer dsrv.Close()
		trace.Info("pprof listening", "addr", *debugAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cfg := planner.Config()
	storeName := "none"
	if planStore != nil {
		storeName = planStore.Name()
	}
	trace.Info("serving",
		"addr", *addr, "workers", cfg.Workers, "queue", cfg.QueueDepth,
		"cache", fmt.Sprintf("%d/%d", cfg.CacheCap, cfg.CacheShards),
		"policy", cfg.DegradedPolicy, "brownout", cfg.BrownoutThreshold,
		"store", storeName, "chaos", inj != nil,
		"trace_sample", *traceSample, "trace_ring", *traceRing)

	select {
	case err := <-errCh:
		trace.Fatal("listener failed", "err", err)
	case <-ctx.Done():
	}
	trace.Info("shutting down", "drain_budget", *drainWait)
	// Flip /readyz before closing the listener so load balancers stop
	// sending new work while in-flight requests drain.
	planner.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		trace.Warn("shutdown", "err", err)
	}
	planner.Close()
	// The planner is done issuing puts; now the store can flush and close.
	if planStore != nil {
		if err := planStore.Close(); err != nil {
			trace.Warn("closing store", "err", err)
		}
	}
	if traceLogWriter != nil {
		if err := traceLogWriter.Close(); err != nil {
			trace.Warn("closing trace log", "err", err)
		}
	}
	if inj != nil {
		trace.Info("chaos ledger", "snapshot", fmt.Sprintf("%+v", inj.Snapshot()))
	}
	trace.Info("drained", "final", planner.Metrics())
}
