// Command suud serves the SUU planner over HTTP/JSON: POST /v1/plan
// (LP-rounded oblivious schedules), POST /v1/plan/batch (many plan items
// per request with per-item status, intra-batch dedupe, and cost-weighted
// admission), POST /v1/estimate (Monte Carlo makespan estimates, NDJSON
// streaming with "stream": true), GET /healthz, GET /metrics. Requests are
// admission-controlled, coalesced, and cached content-addressed — see
// internal/service.
//
// Run it:
//
//	suud -addr 127.0.0.1:8650 -workers 8 -queue 64
//
// and drive it with cmd/suuload. SIGINT/SIGTERM shut down gracefully:
// /readyz flips to 503 first, the listener closes, in-flight requests
// drain, and the planner's detached work is awaited.
//
// Overload behavior is configurable: -degraded-policy picks between
// rejecting with 429 (reject), serving uncertified greedy fallback plans
// for independent-job requests (independent), or for everything (all)
// once admission pressure crosses -brownout-threshold. -chaos enables
// the fault-injection harness (internal/faults) for resilience drills.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8650", "listen address")
		workers      = flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "queue depth before 429s (0 = 4x workers)")
		cacheCap     = flag.Int("cache-cap", 4096, "cached responses across shards")
		cacheShards  = flag.Int("cache-shards", 16, "cache shard count")
		maxTrials    = flag.Int("max-trials", 10000, "per-request Monte Carlo budget")
		maxBatch     = flag.Int("max-batch", 256, "items per /v1/plan/batch request")
		maxItemCost  = flag.Int("max-item-cost", 64, "per-item admission cost budget, in n·m/1024 units")
		trialWorkers = flag.Int("trial-workers", 2, "Monte Carlo workers per estimate")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")

		degradedPolicy = flag.String("degraded-policy", service.DegradeNever,
			"overload response: reject (429s), independent (greedy fallback plans for independent-job requests), or all")
		brownout = flag.Float64("brownout-threshold", 0.75,
			"queue-pressure fraction (0..1] at which degraded fallbacks kick in")

		chaos        = flag.Bool("chaos", false, "enable fault injection (the -chaos-* rates)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "fault-stream seed (same seed, same arrival order => same faults)")
		chaosLatP    = flag.Float64("chaos-latency-p", 0.10, "P(injected request latency)")
		chaosLat     = flag.Duration("chaos-latency", 50*time.Millisecond, "injected latency magnitude (±50% jitter)")
		chaosErrP    = flag.Float64("chaos-error-p", 0.05, "P(injected 503 response)")
		chaosPanicP  = flag.Float64("chaos-panic-p", 0.02, "P(injected handler panic; kills the connection)")
		chaosStallP  = flag.Float64("chaos-stall-p", 0, "P(injected slow-solve stall at a compute checkpoint)")
		chaosStall   = flag.Duration("chaos-stall", 100*time.Millisecond, "stall magnitude (±50% jitter)")
		chaosCErrP   = flag.Float64("chaos-compute-error-p", 0, "P(injected compute error at a checkpoint)")
		chaosCPanicP = flag.Float64("chaos-compute-panic-p", 0, "P(injected compute panic at a checkpoint)")
	)
	flag.Parse()

	switch *degradedPolicy {
	case service.DegradeNever, service.DegradeIndependent, service.DegradeAll:
	default:
		log.Fatalf("suud: -degraded-policy must be %q, %q, or %q (got %q)",
			service.DegradeNever, service.DegradeIndependent, service.DegradeAll, *degradedPolicy)
	}

	var inj *faults.Injector
	if *chaos {
		inj = faults.New(faults.Config{
			Seed:         *chaosSeed,
			LatencyP:     *chaosLatP,
			Latency:      *chaosLat,
			ErrorP:       *chaosErrP,
			PanicP:       *chaosPanicP,
			HTTPMethod:   http.MethodPost, // keep /healthz, /readyz, /metrics probes clean
			StallP:       *chaosStallP,
			Stall:        *chaosStall,
			ComputeErrP:  *chaosCErrP,
			ComputePanic: *chaosCPanicP,
		})
		if inj == nil {
			log.Printf("suud: -chaos set but every rate is zero; injecting nothing")
		}
	}

	planner := service.NewPlanner(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheCap:          *cacheCap,
		CacheShards:       *cacheShards,
		MaxTrials:         *maxTrials,
		MaxBatchItems:     *maxBatch,
		MaxItemCost:       *maxItemCost,
		TrialWorkers:      *trialWorkers,
		DegradedPolicy:    *degradedPolicy,
		BrownoutThreshold: *brownout,
		ComputeHook:       inj.ComputeHook(),
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           inj.Wrap(service.NewServer(planner)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := planner.Warmup(); err != nil {
		log.Fatalf("suud: warmup: %v", err)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cfg := planner.Config()
	log.Printf("suud: serving on %s (workers=%d queue=%d cache=%d/%d shards policy=%s brownout=%.2f chaos=%v)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.CacheCap, cfg.CacheShards,
		cfg.DegradedPolicy, cfg.BrownoutThreshold, inj != nil)

	select {
	case err := <-errCh:
		log.Fatalf("suud: %v", err)
	case <-ctx.Done():
	}
	log.Printf("suud: shutting down, draining up to %v", *drainWait)
	// Flip /readyz before closing the listener so load balancers stop
	// sending new work while in-flight requests drain.
	planner.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("suud: shutdown: %v", err)
	}
	planner.Close()
	if inj != nil {
		log.Printf("suud: chaos ledger %+v", inj.Snapshot())
	}
	log.Printf("suud: drained; final %v", planner.Metrics())
}
