// Command suud serves the SUU planner over HTTP/JSON: POST /v1/plan
// (LP-rounded oblivious schedules), POST /v1/plan/batch (many plan items
// per request with per-item status, intra-batch dedupe, and cost-weighted
// admission), POST /v1/estimate (Monte Carlo makespan estimates, NDJSON
// streaming with "stream": true), GET /healthz, GET /metrics. Requests are
// admission-controlled, coalesced, and cached content-addressed — see
// internal/service.
//
// Run it:
//
//	suud -addr 127.0.0.1:8650 -workers 8 -queue 64
//
// and drive it with cmd/suuload. SIGINT/SIGTERM shut down gracefully:
// the listener closes immediately, in-flight requests drain.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8650", "listen address")
		workers      = flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "queue depth before 429s (0 = 4x workers)")
		cacheCap     = flag.Int("cache-cap", 4096, "cached responses across shards")
		cacheShards  = flag.Int("cache-shards", 16, "cache shard count")
		maxTrials    = flag.Int("max-trials", 10000, "per-request Monte Carlo budget")
		maxBatch     = flag.Int("max-batch", 256, "items per /v1/plan/batch request")
		maxItemCost  = flag.Int("max-item-cost", 64, "per-item admission cost budget, in n·m/1024 units")
		trialWorkers = flag.Int("trial-workers", 2, "Monte Carlo workers per estimate")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	planner := service.NewPlanner(service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheCap:      *cacheCap,
		CacheShards:   *cacheShards,
		MaxTrials:     *maxTrials,
		MaxBatchItems: *maxBatch,
		MaxItemCost:   *maxItemCost,
		TrialWorkers:  *trialWorkers,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(planner),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cfg := planner.Config()
	log.Printf("suud: serving on %s (workers=%d queue=%d cache=%d/%d shards)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.CacheCap, cfg.CacheShards)

	select {
	case err := <-errCh:
		log.Fatalf("suud: %v", err)
	case <-ctx.Done():
	}
	log.Printf("suud: shutting down, draining up to %v", *drainWait)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("suud: shutdown: %v", err)
	}
	planner.Close()
	log.Printf("suud: drained; final %v", planner.Metrics())
}
