// Command suuload is the open-loop load harness for cmd/suud, in the
// fabbench tradition: arrivals are paced by a Poisson or fixed-rate
// process independent of completions (open mode), so queueing delay shows
// up in the measured latencies instead of being hidden by client
// self-throttling; a closed mode (N workers back-to-back) exists for
// comparison. Per-op latencies land in a log-scale stats.Histogram and
// the run emits a human summary on stderr plus, with -json, a
// BENCH_*.json-compatible bench.Report on stdout.
//
// Example against a local suud:
//
//	suud &
//	suuload -url http://127.0.0.1:8650 -rate 300 -duration 10s \
//	        -family uniform -m 16 -n 64 -instances 4 -json > load.json
//
// With -smoke the process exits nonzero unless the run completed requests
// with zero errors — the CI contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8650", "suud base URL")
		mode        = flag.String("mode", "open", "open (paced arrivals) or closed (back-to-back workers)")
		arrival     = flag.String("arrival", "poisson", "open-mode arrival process: poisson or fixed")
		rate        = flag.Float64("rate", 100, "open-mode offered load, requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "issuing window")
		concurrency = flag.Int("concurrency", 64, "closed-mode workers / open-mode in-flight cap")
		op          = flag.String("op", "plan", "request type: plan or estimate")
		family      = flag.String("family", "uniform", "instance family (see workload.Spec)")
		m           = flag.Int("m", 16, "machines per instance")
		n           = flag.Int("n", 64, "jobs per instance")
		instances   = flag.Int("instances", 4, "distinct instances cycled round-robin (repeats exercise the plan cache)")
		trials      = flag.Int("trials", 0, "estimate-op Monte Carlo trials (0 = server default)")
		seed        = flag.Int64("seed", 1, "seed for instance generation and arrivals")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		jsonOut     = flag.Bool("json", false, "emit a bench.Report JSON document on stdout")
		note        = flag.String("note", "", "free-form note recorded in the JSON report")
		smoke       = flag.Bool("smoke", false, "exit nonzero unless done > 0 and errors == 0")
	)
	flag.Parse()

	if *instances < 1 {
		*instances = 1
	}
	specs := make([]workload.Spec, *instances)
	for i := range specs {
		specs[i] = workload.Spec{Family: *family, M: *m, N: *n, Seed: *seed + int64(i)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := service.RunLoad(ctx, service.LoadConfig{
		BaseURL:     *url,
		Mode:        *mode,
		Arrival:     *arrival,
		Rate:        *rate,
		Concurrency: *concurrency,
		Duration:    *duration,
		Op:          *op,
		Specs:       specs,
		Trials:      *trials,
		Seed:        *seed,
		Timeout:     *timeout,
	})
	if err != nil {
		log.Fatalf("suuload: %v", err)
	}

	fmt.Fprintf(os.Stderr,
		"suuload: %s %s %.1fs: issued=%d done=%d errors=%d rejected=%d dropped=%d\n"+
			"suuload: throughput=%.1f req/s lat p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		rep.Mode, rep.Op, rep.DurationS, rep.Issued, rep.Done, rep.Errors, rep.Rejected, rep.Dropped,
		rep.Throughput, rep.LatP50*1e3, rep.LatP95*1e3, rep.LatP99*1e3, rep.LatMax*1e3)
	if sm := rep.ServerMetrics; sm != nil {
		fmt.Fprintf(os.Stderr, "suuload: server %v\n", *sm)
	}

	if *jsonOut {
		report := bench.NewReport(bench.Config{Seed: *seed})
		if *note != "" {
			report.Notes = append(report.Notes, *note)
		}
		report.Notes = append(report.Notes,
			fmt.Sprintf("suuload %s/%s against %s: %d×%s m=%d n=%d", *mode, *arrival, *url, *instances, *family, *m, *n))
		rec := bench.Record{
			Experiment: "suuload-" + *op,
			NsPerOp:    int64(rep.LatMean * 1e9),
			Header: []string{"mode", "offered_rps", "throughput_rps", "done", "errors",
				"p50_ms", "p95_ms", "p99_ms", "hit_rate"},
			Rows: [][]string{{
				rep.Mode,
				fmt.Sprintf("%.1f", rep.OfferedRate),
				fmt.Sprintf("%.1f", rep.Throughput),
				fmt.Sprintf("%d", rep.Done),
				fmt.Sprintf("%d", rep.Errors),
				fmt.Sprintf("%.3f", rep.LatP50*1e3),
				fmt.Sprintf("%.3f", rep.LatP95*1e3),
				fmt.Sprintf("%.3f", rep.LatP99*1e3),
				hitRateCell(rep),
			}},
			Extra: map[string]float64{
				"throughput_rps": rep.Throughput,
				"lat_p50_s":      rep.LatP50,
				"lat_p95_s":      rep.LatP95,
				"lat_p99_s":      rep.LatP99,
				"errors":         float64(rep.Errors),
				"done":           float64(rep.Done),
				"issued":         float64(rep.Issued),
				// Arrivals shed at the client's in-flight cap: nonzero
				// means the harness self-throttled and the offered rate
				// was NOT what -rate claims — exactly the silent
				// closed-loop degradation open-loop reports must expose.
				"dropped": float64(rep.Dropped),
			},
		}
		if sm := rep.ServerMetrics; sm != nil {
			rec.Extra["cache_hit_rate"] = sm.CacheHitRate
			rec.Extra["coalesced"] = float64(sm.Coalesced)
			rec.Extra["rejected_429"] = float64(sm.Rejected)
		}
		report.Records = append(report.Records, rec)
		if err := report.Write(os.Stdout); err != nil {
			log.Fatalf("suuload: writing report: %v", err)
		}
	}

	if *smoke && (rep.Done == 0 || rep.Errors != 0) {
		log.Fatalf("suuload: smoke failed: done=%d errors=%d", rep.Done, rep.Errors)
	}
}

func hitRateCell(rep *service.LoadReport) string {
	if rep.ServerMetrics == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", rep.ServerMetrics.CacheHitRate)
}
