// Command suuload is the open-loop load harness for cmd/suud, in the
// fabbench tradition: arrivals are paced by a Poisson or fixed-rate
// process independent of completions (open mode), so queueing delay shows
// up in the measured latencies instead of being hidden by client
// self-throttling; a closed mode (N workers back-to-back) exists for
// comparison. Per-op latencies land in a log-scale stats.Histogram and
// the run emits a human summary on stderr plus, with -json, a
// BENCH_*.json-compatible bench.Report on stdout.
//
// Example against a local suud:
//
//	suud &
//	suuload -url http://127.0.0.1:8650 -rate 300 -duration 10s \
//	        -family uniform -m 16 -n 64 -instances 4 -json > load.json
//
// Batch mode (-op plan-batch) issues /v1/plan/batch requests whose sizes
// follow -batch-dist around -batch-size; -item-rate offers load in
// items/second (request rate = item-rate / batch-size), which is how batch
// and single runs are compared at equal offered item rate. The report adds
// an item-level ledger (items_issued = items_done + items_errors) next to
// the request ledger.
//
// Traffic shaping: -curve ramps or switches the offered rate over the run
// (constant:<rps>, linstep:<from>:<to>:<ramp>, switching:<hi>:<lo>:<period>)
// and -pop skews which spec each arrival requests (roundrobin, zipf:<s>).
// -record <path> writes a framed binary trace of every issued request;
// -replay <path> re-issues a recorded trace at -speed × the original
// schedule, rebuilding the exact request bodies from the trace header (the
// shape flags are ignored on replay). Summarize a trace with cmd/suutrace.
//
// With -smoke the process exits nonzero unless the run completed requests
// with zero request and item errors — the CI contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8650", "suud base URL")
		urls        = flag.String("urls", "", "comma-separated replica base URLs; enables fleet mode (per-request rotation with failover; overrides -url)")
		mode        = flag.String("mode", "open", "open (paced arrivals) or closed (back-to-back workers)")
		arrival     = flag.String("arrival", "poisson", "open-mode arrival process: poisson or fixed")
		rate        = flag.Float64("rate", 100, "open-mode offered load, requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "issuing window")
		concurrency = flag.Int("concurrency", 64, "closed-mode workers / open-mode in-flight cap")
		op          = flag.String("op", "plan", "request type: plan, estimate, or plan-batch")
		batchSize   = flag.Int("batch-size", 0, "plan-batch mean items per request (default 8)")
		batchDist   = flag.String("batch-dist", "", "plan-batch size distribution: fixed or uniform (default fixed)")
		itemRate    = flag.Float64("item-rate", 0, "plan-batch open-mode offered load in items/second (overrides -rate; request rate becomes item-rate/batch-size)")
		family      = flag.String("family", "uniform", "instance family (see workload.Spec)")
		m           = flag.Int("m", 16, "machines per instance")
		n           = flag.Int("n", 64, "jobs per instance")
		instances   = flag.Int("instances", 4, "distinct instances cycled round-robin (repeats exercise the plan cache)")
		trials      = flag.Int("trials", 0, "estimate-op Monte Carlo trials (0 = server default)")
		seed        = flag.Int64("seed", 1, "seed for instance generation and arrivals")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-attempt client timeout")
		retries     = flag.Int("retries", 0, "extra attempts per request beyond the first (conn errors and 429/503 retry with backoff)")
		curve       = flag.String("curve", "", "open-mode rate curve: constant[:rps], linstep:from:to:ramp, or switching:hi:lo:period (default constant at -rate)")
		pop         = flag.String("pop", "", "spec popularity: roundrobin (default) or zipf:s")
		record      = flag.String("record", "", "write a binary trace of every issued request to this path")
		replay      = flag.String("replay", "", "re-issue a recorded trace instead of generating load (shape flags are ignored)")
		speed       = flag.Float64("speed", 1, "replay schedule scale: 2 replays twice as fast")
		jsonOut     = flag.Bool("json", false, "emit a bench.Report JSON document on stdout")
		note        = flag.String("note", "", "free-form note recorded in the JSON report")
		smoke       = flag.Bool("smoke", false, "exit nonzero unless done > 0 and errors == 0")
	)
	flag.Parse()

	// On replay the spec catalog comes from the recording's header.
	var specs []workload.Spec
	if *replay == "" {
		specs = workload.Catalog(*family, *m, *n, *instances, *seed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	baseURL := *url
	var baseURLs []string
	if *urls != "" {
		// Fleet mode: -urls replaces -url entirely so the default value of
		// -url does not sneak a phantom fourth replica into the rotation.
		baseURL = ""
		for _, u := range strings.Split(*urls, ",") {
			if u = strings.TrimSpace(u); u != "" {
				baseURLs = append(baseURLs, strings.TrimRight(u, "/"))
			}
		}
	}

	rep, err := service.RunLoad(ctx, service.LoadConfig{
		BaseURL:     baseURL,
		BaseURLs:    baseURLs,
		Mode:        *mode,
		Arrival:     *arrival,
		Rate:        *rate,
		Concurrency: *concurrency,
		Duration:    *duration,
		Op:          *op,
		BatchSize:   *batchSize,
		BatchDist:   *batchDist,
		ItemRate:    *itemRate,
		Specs:       specs,
		Trials:      *trials,
		Seed:        *seed,
		Timeout:     *timeout,
		MaxAttempts: *retries + 1,
		Curve:       *curve,
		Popularity:  *pop,
		RecordPath:  *record,
		ReplayPath:  *replay,
		ReplaySpeed: *speed,
	})
	if err != nil {
		trace.Fatal("load run failed", "err", err)
	}

	fmt.Fprintf(os.Stderr,
		"suuload: %s %s %.1fs: issued=%d done=%d errors=%d rejected=%d dropped=%d\n"+
			"suuload: throughput=%.1f req/s lat p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		rep.Mode, rep.Op, rep.DurationS, rep.Issued, rep.Done, rep.Errors, rep.Rejected, rep.Dropped,
		rep.Throughput, rep.LatP50*1e3, rep.LatP95*1e3, rep.LatP99*1e3, rep.LatMax*1e3)
	fmt.Fprintf(os.Stderr,
		"suuload: wire: read=%d bytes (%.1f KB/s) — payload cost per delivered item: %.0f bytes\n",
		rep.BytesRead, rep.BytesPerSec/1e3, perItemBytes(rep))
	if rep.Curve != "" || rep.Popularity != "" || rep.Recorded > 0 || *replay != "" {
		fmt.Fprintf(os.Stderr, "suuload: traffic: curve=%s pop=%s drain=%.2fs", rep.Curve, rep.Popularity, rep.DrainS)
		if rep.Recorded > 0 {
			fmt.Fprintf(os.Stderr, " recorded=%d->%s", rep.Recorded, *record)
			if rep.RecordErrors > 0 {
				fmt.Fprintf(os.Stderr, " RECORD_ERRORS=%d", rep.RecordErrors)
			}
		}
		if *replay != "" {
			fmt.Fprintf(os.Stderr, " replayed=%s@%gx", *replay, rep.ReplaySpeed)
		}
		fmt.Fprintln(os.Stderr)
	}
	if rep.Op == "plan-batch" {
		fmt.Fprintf(os.Stderr,
			"suuload: items(%s size %d): issued=%d done=%d errors=%d item-throughput=%.1f items/s\n",
			rep.BatchDist, rep.BatchSize, rep.ItemsIssued, rep.ItemsDone, rep.ItemsErrors, rep.ItemThroughput)
	}
	if rep.Degraded != 0 || rep.ItemsDegraded != 0 || rep.InjectedErrors != 0 ||
		rep.OrganicServerErrors != 0 || rep.Retries != 0 || rep.ConnErrors != 0 || rep.BreakerOpens != 0 {
		fmt.Fprintf(os.Stderr,
			"suuload: resilience: degraded=%d items_degraded=%d injected_errors=%d organic_5xx=%d retries=%d conn_errors=%d breaker_opens=%d\n",
			rep.Degraded, rep.ItemsDegraded, rep.InjectedErrors, rep.OrganicServerErrors,
			rep.Retries, rep.ConnErrors, rep.BreakerOpens)
	}
	if vi := rep.ServerVersion; vi != nil {
		fmt.Fprintf(os.Stderr, "suuload: server build: %s %s (%s %s/%s, gomaxprocs=%d)\n",
			vi.Module, vi.Version, vi.GoVersion, vi.OS, vi.Arch, vi.GOMAXPROCS)
	}
	if rep.TracedResponses > 0 {
		// Per-source server-side attribution: where the server says each
		// class of request spent its time, from parsed X-Suu-Trace headers.
		fmt.Fprintf(os.Stderr, "suuload: traced %d/%d responses; server-side attribution:\n",
			rep.TracedResponses, rep.Done)
		srcs := make([]string, 0, len(rep.TracedBySource))
		for src := range rep.TracedBySource {
			srcs = append(srcs, src)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			n := rep.TracedBySource[src]
			fmt.Fprintf(os.Stderr, "suuload:   %-9s n=%-6d server=%.1fms%s\n",
				src, n, rep.ServerTotalSeconds[src]*1e3/float64(n), stageCells(rep.ServerStageSeconds[src], n))
		}
	}
	if sm := rep.ServerMetrics; sm != nil {
		fmt.Fprintf(os.Stderr, "suuload: server %v\n", *sm)
	}
	if len(rep.Fleet) > 0 {
		up := 0
		for _, sn := range rep.Fleet {
			if sn != nil {
				up++
			}
		}
		fmt.Fprintf(os.Stderr,
			"suuload: fleet: replicas=%d up=%d hit_rate=%.3f store_hits=%d plans_computed=%d\n",
			len(rep.Fleet), up, rep.FleetHitRate, rep.FleetStoreHits, rep.FleetPlansComputed)
		for i, sn := range rep.Fleet {
			if sn == nil {
				fmt.Fprintf(os.Stderr, "suuload: fleet[%d] %s: unreachable\n", i, baseURLs[i])
				continue
			}
			fmt.Fprintf(os.Stderr,
				"suuload: fleet[%d] %s: plans=%d computed=%d hits=%d coalesced=%d disk_hits=%d peer_hits=%d\n",
				i, baseURLs[i], sn.Plans, sn.PlansComputed, sn.CacheHits, sn.Coalesced, sn.StoreDiskHits, sn.StorePeerHits)
		}
	}

	if *jsonOut {
		report := bench.NewReport(bench.Config{Seed: *seed})
		if *note != "" {
			report.Notes = append(report.Notes, *note)
		}
		target := *url
		if len(baseURLs) > 0 {
			target = strings.Join(baseURLs, ",")
		}
		report.Notes = append(report.Notes,
			fmt.Sprintf("suuload %s/%s against %s: %d×%s m=%d n=%d", rep.Mode, rep.Arrival, target, *instances, *family, *m, *n))
		if rep.Curve != "" || rep.Popularity != "" {
			report.Notes = append(report.Notes,
				fmt.Sprintf("traffic: curve=%s pop=%s", rep.Curve, rep.Popularity))
		}
		if *replay != "" {
			report.Notes = append(report.Notes,
				fmt.Sprintf("replay of %s at %gx", *replay, rep.ReplaySpeed))
		}
		rec := bench.Record{
			Experiment: "suuload-" + *op,
			NsPerOp:    int64(rep.LatMean * 1e9),
			Header: []string{"mode", "offered_rps", "throughput_rps", "done", "errors",
				"p50_ms", "p95_ms", "p99_ms", "hit_rate"},
			Rows: [][]string{{
				rep.Mode,
				fmt.Sprintf("%.1f", rep.OfferedRate),
				fmt.Sprintf("%.1f", rep.Throughput),
				fmt.Sprintf("%d", rep.Done),
				fmt.Sprintf("%d", rep.Errors),
				fmt.Sprintf("%.3f", rep.LatP50*1e3),
				fmt.Sprintf("%.3f", rep.LatP95*1e3),
				fmt.Sprintf("%.3f", rep.LatP99*1e3),
				hitRateCell(rep),
			}},
			Extra: map[string]float64{
				"throughput_rps": rep.Throughput,
				"lat_p50_s":      rep.LatP50,
				"lat_p95_s":      rep.LatP95,
				"lat_p99_s":      rep.LatP99,
				"errors":         float64(rep.Errors),
				"done":           float64(rep.Done),
				"issued":         float64(rep.Issued),
				// Item-level ledger: for single ops these mirror the
				// request counts, so batch and single runs compare at
				// equal offered item rate.
				"items_rps":             rep.ItemThroughput,
				"items_issued":          float64(rep.ItemsIssued),
				"items_done":            float64(rep.ItemsDone),
				"items_errors":          float64(rep.ItemsErrors),
				"offered_item_rate_rps": rep.OfferedItemRate,
				// Wire-cost ledger: response bytes read (and discarded)
				// per second next to items/s, so a serving change that
				// fattens payloads shows up even when item throughput
				// holds.
				"bytes_rps":  rep.BytesPerSec,
				"bytes_read": float64(rep.BytesRead),
				// Arrivals shed at the client's in-flight cap: nonzero
				// means the harness self-throttled and the offered rate
				// was NOT what -rate claims — exactly the silent
				// closed-loop degradation open-loop reports must expose.
				"dropped": float64(rep.Dropped),
				// Resilience ledger: uncertified fallback serves, the
				// injected/organic split of 5xx, and the retry machinery's
				// own counters. injected + organic partitions the 5xx seen.
				"degraded":        float64(rep.Degraded),
				"items_degraded":  float64(rep.ItemsDegraded),
				"injected_errors": float64(rep.InjectedErrors),
				"organic_5xx":     float64(rep.OrganicServerErrors),
				"retries":         float64(rep.Retries),
				"conn_errors":     float64(rep.ConnErrors),
				"breaker_opens":   float64(rep.BreakerOpens),
				// Traffic ledger: throughput divides by the issuing window
				// only; drain_s is the extra wait for in-flight requests
				// after the last arrival.
				"duration_s":       rep.DurationS,
				"drain_s":          rep.DrainS,
				"offered_rate_rps": rep.OfferedRate,
			},
		}
		if rep.Recorded > 0 || rep.RecordErrors > 0 {
			rec.Extra["recorded"] = float64(rep.Recorded)
			rec.Extra["record_errors"] = float64(rep.RecordErrors)
		}
		if rep.ReplaySpeed != 0 {
			rec.Extra["replay_speed"] = rep.ReplaySpeed
		}
		if rep.Op == "plan-batch" {
			rec.Extra["batch_size"] = float64(rep.BatchSize)
		}
		if rep.TracedResponses > 0 {
			rec.Extra["traced_responses"] = float64(rep.TracedResponses)
			for src, secs := range rep.ServerTotalSeconds {
				rec.Extra["server_total_s_"+src] = secs
			}
			for src, stages := range rep.ServerStageSeconds {
				for stage, secs := range stages {
					rec.Extra["server_stage_s_"+src+"_"+strings.ReplaceAll(stage, ".", "_")] = secs
				}
			}
		}
		if len(rep.Fleet) > 0 {
			up := 0
			for _, sn := range rep.Fleet {
				if sn != nil {
					up++
				}
			}
			rec.Extra["fleet_replicas"] = float64(len(rep.Fleet))
			rec.Extra["fleet_up"] = float64(up)
			rec.Extra["fleet_hit_rate"] = rep.FleetHitRate
			rec.Extra["fleet_store_hits"] = float64(rep.FleetStoreHits)
			rec.Extra["fleet_plans_computed"] = float64(rep.FleetPlansComputed)
		}
		if sm := rep.ServerMetrics; sm != nil {
			rec.Extra["cache_hit_rate"] = sm.CacheHitRate
			rec.Extra["coalesced"] = float64(sm.Coalesced)
			rec.Extra["rejected_429"] = float64(sm.Rejected)
			rec.Extra["server_degraded"] = float64(sm.Degraded)
			rec.Extra["server_deadline_abandoned"] = float64(sm.Abandoned)
			rec.Extra["server_retries_observed"] = float64(sm.RetriesSeen)
			if rep.Op == "plan-batch" {
				// Server-side per-batch p99 and mean batch size, to pair
				// with the client-side batch latencies.
				rec.Extra["server_batch_p99_s"] = sm.BatchLatency.P99
				rec.Extra["server_batch_size_mean"] = sm.BatchSizes.Mean
			}
		}
		report.Records = append(report.Records, rec)
		if err := report.Write(os.Stdout); err != nil {
			trace.Fatal("writing report", "err", err)
		}
	}

	if *smoke && (rep.Done == 0 || rep.Errors != 0 || rep.ItemsErrors != 0) {
		trace.Fatal("smoke failed",
			"done", rep.Done, "errors", rep.Errors, "item_errors", rep.ItemsErrors)
	}
}

// stageCells renders one source's per-request mean stage milliseconds,
// heaviest first, for the attribution table.
func stageCells(stages map[string]float64, n uint64) string {
	if len(stages) == 0 || n == 0 {
		return ""
	}
	type cell struct {
		name string
		ms   float64
	}
	cells := make([]cell, 0, len(stages))
	for name, secs := range stages {
		cells = append(cells, cell{name, secs * 1e3 / float64(n)})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].ms != cells[j].ms {
			return cells[i].ms > cells[j].ms
		}
		return cells[i].name < cells[j].name
	})
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, " %s=%.2fms", c.name, c.ms)
	}
	return b.String()
}

func hitRateCell(rep *service.LoadReport) string {
	if rep.ServerMetrics == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", rep.ServerMetrics.CacheHitRate)
}

// perItemBytes is the mean response bytes paid per delivered item.
func perItemBytes(rep *service.LoadReport) float64 {
	if rep.ItemsDone == 0 {
		return 0
	}
	return float64(rep.BytesRead) / float64(rep.ItemsDone)
}
