// Suusim runs one scheduling algorithm on one SUU instance (JSON from
// suugen or handwritten) and reports the estimated expected makespan with
// a 95% confidence interval, alongside the LP lower bound.
//
// Usage:
//
//	suugen -family chains -n 32 -m 8 | suusim -alg suu-c -trials 100
//	suusim -i instance.json -alg suu-i-sem
//	suusim -algs    # list algorithms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	exactpkg "repro/internal/exact"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/rounding"
	"repro/internal/sim"
)

// newPolicy builds the named algorithm with fresh caches.
func newPolicy(name string) (sim.Policy, bool) {
	lp1 := rounding.NewCache()
	lp2 := rounding.NewLP2Cache()
	switch name {
	case "suu-i-sem":
		return &core.SEM{Cache: lp1}, true
	case "suu-i-obl":
		return &core.OBL{Cache: lp1}, true
	case "suu-c":
		return &core.Chains{LP1Cache: lp1, LP2Cache: lp2}, true
	case "suu-c-lr":
		return &core.Chains{LP1Cache: lp1, LP2Cache: lp2, LongJobs: &core.OBL{Cache: lp1}}, true
	case "suu-t":
		return &core.Forest{Engine: &core.Chains{LP1Cache: lp1, LP2Cache: lp2}}, true
	case "layered":
		return &core.Layered{Inner: &core.SEM{Cache: lp1}}, true
	case "greedy":
		return baseline.Greedy{}, true
	case "greedy-prec":
		return baseline.GreedyPrec{}, true
	case "sequential":
		return baseline.Sequential{}, true
	case "split":
		return baseline.EligibleSplit{}, true
	}
	return nil, false
}

const algList = "suu-i-sem suu-i-obl suu-c suu-c-lr suu-t layered greedy greedy-prec sequential split"

func main() {
	var (
		algs   = flag.Bool("algs", false, "list algorithms and exit")
		input  = flag.String("i", "-", "instance JSON file (- = stdin)")
		alg    = flag.String("alg", "suu-i-sem", "algorithm to run")
		trials = flag.Int("trials", 100, "Monte Carlo trials")
		seed   = flag.Int64("seed", 1, "random seed")
		trace  = flag.Bool("trace", false, "run one trial and print an ASCII Gantt chart")
		width  = flag.Int("width", 120, "Gantt chart width (with -trace)")
		exact  = flag.Bool("exact", false, "also compute the exact optimum by DP (small instances only)")
	)
	flag.Parse()
	if *algs {
		fmt.Println("algorithms:", algList)
		return
	}

	var data []byte
	var err error
	if *input == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*input)
	}
	if err != nil {
		fatal(err)
	}
	var ins model.Instance
	if err := json.Unmarshal(data, &ins); err != nil {
		fatal(err)
	}

	p, ok := newPolicy(*alg)
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q (have: %s)", *alg, algList))
	}

	if *trace {
		// Same per-seed stream as MonteCarlo trial 0 with this seed, so a
		// traced run replays what the estimator simulated.
		w := sim.NewWorld(&ins, rand.New(rng.New(*seed)))
		tr := &sim.Trace{}
		w.SetTracer(tr)
		if err := p.Run(w); err != nil {
			fatal(err)
		}
		ms, err := w.Makespan()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("one trial of %s on n=%d m=%d (seed %d): makespan %d\n",
			p.Name(), ins.N, ins.M, *seed, ms)
		fmt.Print(tr.Gantt(*width))
		return
	}

	res, err := sim.MonteCarlo(&ins, p, *trials, *seed, 0)
	if err != nil {
		fatal(err)
	}

	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	_, tstar, err := rounding.SolveLP1(&ins, jobs, 0.5)
	if err != nil {
		fatal(err)
	}
	lb := math.Max(tstar/2, 1)

	fmt.Printf("instance: n=%d m=%d class=%v\n", ins.N, ins.M, ins.Class())
	fmt.Printf("algorithm: %s (%d trials)\n", p.Name(), *trials)
	fmt.Printf("E[makespan] ≈ %.2f ±%.2f (median %.0f, p90 %.0f, max %.0f)\n",
		res.Summary.Mean, res.Summary.CI95(), res.Summary.Median, res.Summary.P90, res.Summary.Max)
	fmt.Printf("LP lower bound on E[T_OPT]: %.2f  =>  ratio ≤ %.2f\n", lb, res.Summary.Mean/lb)

	if *exact {
		opt, err := exactpkg.Optimal(&ins)
		if err != nil {
			fmt.Printf("exact optimum: unavailable (%v)\n", err)
			return
		}
		fmt.Printf("exact E[T_OPT] = %.4f  =>  true ratio %.2f\n", opt, res.Summary.Mean/opt)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "suusim: %v\n", err)
	os.Exit(1)
}
