// Suubench runs the experiment suite that regenerates the paper's Table 1
// and the validation figures. `suubench -list` prints the experiment
// index; bench_test.go at the repo root wires the same experiments to
// `go test -bench` benchmarks at reduced scale.
//
// Usage:
//
//	suubench -list
//	suubench -run t1-indep [-trials 40] [-seed 1] [-scale 1.0] [-csv]
//	suubench -run all
//	suubench -run t1-indep -json [-note "..."] > BENCH_pr1.json
//	suubench -run t1-indep -scale-large -json > BENCH_pr2.json
//
// The -json flag wraps each run in a wall-time + allocation measurement
// and emits a bench.Report document; committing its output as
// BENCH_<tag>.json records the performance trajectory PR over PR.
//
// The -scale-large flag adds the large-instance cells to the run set:
// t1-large and its cold-LP-engine baseline arm (n=64/m=16, n=128/m=32)
// plus t1-xlarge (n=256/m=64, sparse-engine only — the dense tableau
// cannot turn those cells around). "-run all" skips these heavy
// experiments unless the flag is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "", "experiment id to run, or \"all\"")
		trials  = flag.Int("trials", 0, "override trials per cell (0 = experiment default)")
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "sweep scale in (0,1]")
		workers = flag.Int("workers", 0, "Monte Carlo workers (0 = GOMAXPROCS)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut = flag.Bool("json", false, "emit a measured bench.Report JSON document")
		note    = flag.String("note", "", "free-form note embedded in the -json report (e.g. the baseline compared against)")
		large   = flag.Bool("scale-large", false, "also run the large-instance cells (t1-large + t1-large-cold)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.What)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun with: suubench -run <id> | all")
		}
		return
	}

	cfg := bench.Config{Trials: *trials, Seed: *seed, Workers: *workers, Scale: *scale}
	var exps []bench.Experiment
	if *run == "all" {
		for _, e := range bench.All() {
			if e.Heavy && !*large {
				continue
			}
			exps = append(exps, e)
		}
	} else {
		e, ok := bench.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "suubench: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	if *large && *run != "all" {
		have := map[string]bool{}
		for _, e := range exps {
			have[e.ID] = true
		}
		for _, id := range []string{"t1-large", "t1-large-cold", "t1-xlarge"} {
			if e, ok := bench.Lookup(id); ok && !have[id] {
				exps = append(exps, e)
			}
		}
	}

	if *jsonOut {
		report := bench.NewReport(cfg)
		if *note != "" {
			report.Notes = append(report.Notes, *note)
		}
		for _, e := range exps {
			rec, err := bench.Measure(e, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "suubench: %v\n", err)
				os.Exit(1)
			}
			report.Records = append(report.Records, *rec)
		}
		if err := report.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "suubench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, e := range exps {
		start := time.Now()
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "suubench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Format())
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
