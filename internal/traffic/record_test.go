package traffic

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/workload"
)

func sampleHeader() Header {
	return Header{
		Op: "plan",
		Specs: []workload.Spec{
			{Family: "uniform", M: 4, N: 16, Seed: 1},
			{Family: "uniform", M: 4, N: 16, Seed: 2},
		},
		Seed:        9,
		Curve:       "switching:200:50:1s",
		Popularity:  "zipf:0.9",
		StartUnixNS: 1754600000000000000,
	}
}

func sampleRequests() []Request {
	return []Request{
		{Rel: 1 * time.Millisecond, Latency: 900 * time.Microsecond, Op: "plan", Outcome: "ok", Source: "computed", Spec: 0, Items: 1},
		{Rel: 3 * time.Millisecond, Latency: 120 * time.Microsecond, Op: "plan", Outcome: "ok", Source: "cached", Spec: 1, Items: 1},
		{Rel: 5 * time.Millisecond, Latency: 40 * time.Microsecond, Op: "plan", Outcome: "rejected", Source: "", Spec: 0, Items: 1},
		{Rel: 9 * time.Millisecond, Latency: 2 * time.Millisecond, Op: "plan", Outcome: "error", Source: "", Spec: 1, Items: 1},
	}
}

// record writes a full trace into memory and returns its bytes.
func record(t *testing.T, hdr Header, reqs []Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		rec.Append(&reqs[i])
	}
	if n, errs := rec.Stats(); n != uint64(len(reqs)) || errs != 0 {
		t.Fatalf("recorder stats: %d records, %d errors", n, errs)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceRoundTrip: write → read recovers the header and every request,
// and re-encoding what was read reproduces the file byte-identically —
// the round-trip loses nothing.
func TestTraceRoundTrip(t *testing.T) {
	hdr, reqs := sampleHeader(), sampleRequests()
	raw := record(t, hdr, reqs)

	tr, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Skipped != 0 {
		t.Fatalf("skipped %d records in a clean file", tr.Skipped)
	}
	if tr.Header.Op != hdr.Op || tr.Header.Seed != hdr.Seed ||
		tr.Header.Curve != hdr.Curve || tr.Header.Popularity != hdr.Popularity ||
		len(tr.Header.Specs) != len(hdr.Specs) || tr.Header.Specs[1] != hdr.Specs[1] {
		t.Fatalf("header round-trip: %+v != %+v", tr.Header, hdr)
	}
	if len(tr.Requests) != len(reqs) {
		t.Fatalf("read %d requests, wrote %d", len(tr.Requests), len(reqs))
	}
	for i := range reqs {
		if tr.Requests[i] != reqs[i] {
			t.Fatalf("request %d: %+v != %+v", i, tr.Requests[i], reqs[i])
		}
	}
	if tr.Duration() != reqs[len(reqs)-1].Rel {
		t.Fatalf("duration %s, want %s", tr.Duration(), reqs[len(reqs)-1].Rel)
	}

	// Byte-identical re-encode: requests were written in Rel order, so the
	// sorted read-back serializes to the same bytes.
	again := record(t, tr.Header, tr.Requests)
	if !bytes.Equal(raw, again) {
		t.Fatalf("re-encoded trace differs: %d vs %d bytes", len(raw), len(again))
	}
}

// TestTraceSortsBySchedule: records land on disk in completion order, but
// the replay schedule must come back sorted by issue time.
func TestTraceSortsBySchedule(t *testing.T) {
	reqs := sampleRequests()
	shuffled := []Request{reqs[2], reqs[0], reqs[3], reqs[1]}
	raw := record(t, sampleHeader(), shuffled)
	tr, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Rel < tr.Requests[i-1].Rel {
			t.Fatalf("requests not sorted by Rel: %v", tr.Requests)
		}
	}
}

// TestTraceTornTail: truncating the file at EVERY byte boundary past the
// header yields a clean prefix — never an error, never a partial record.
func TestTraceTornTail(t *testing.T) {
	hdr, reqs := sampleHeader(), sampleRequests()
	raw := record(t, hdr, reqs)
	headerLen := len(record(t, hdr, nil))
	frame := 8 + requestPayloadLen
	for cut := headerLen; cut < len(raw); cut++ {
		tr, err := ReadTrace(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantComplete := (cut - headerLen) / frame
		if len(tr.Requests) != wantComplete {
			t.Fatalf("cut at %d: %d requests, want %d", cut, len(tr.Requests), wantComplete)
		}
		if tr.Skipped != 0 {
			t.Fatalf("cut at %d: torn tail counted as corruption", cut)
		}
	}
	// A file torn inside the header has no schedule to replay: that is an
	// error, not an empty trace.
	for _, cut := range []int{0, 4, headerLen - 1} {
		if _, err := ReadTrace(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("cut at %d inside the header accepted", cut)
		}
	}
}

// TestTraceCorruptRecord: a flipped byte inside one record drops exactly
// that record, counted, with every other record intact.
func TestTraceCorruptRecord(t *testing.T) {
	hdr, reqs := sampleHeader(), sampleRequests()
	raw := record(t, hdr, reqs)
	headerLen := len(record(t, hdr, nil))
	frame := 8 + requestPayloadLen
	corrupt := append([]byte(nil), raw...)
	corrupt[headerLen+frame+8+3] ^= 0xff // inside the second record's payload
	tr, err := ReadTrace(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", tr.Skipped)
	}
	if len(tr.Requests) != len(reqs)-1 {
		t.Fatalf("%d requests survive, want %d", len(tr.Requests), len(reqs)-1)
	}
	for _, got := range tr.Requests {
		if got == reqs[1] {
			t.Fatalf("corrupted record served: %+v", got)
		}
	}
}

// TestTraceFile: the file-backed path (Create/OpenTrace) round-trips.
func TestTraceFile(t *testing.T) {
	path := t.TempDir() + "/run.trace"
	rec, err := Create(path, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	reqs := sampleRequests()
	for i := range reqs {
		rec.Append(&reqs[i])
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != len(reqs) || tr.Header.Op != "plan" {
		t.Fatalf("file round-trip: %d requests, header %+v", len(tr.Requests), tr.Header)
	}
}
