// Package traffic models realistic load for the suud harness: seed-
// deterministic arrival shapes (time-varying rate curves), popularity
// distributions over a catalog of instance specs, and a compact binary
// record/replay trace format, in the fabbench intgen/recorders tradition.
//
// The three pieces compose: a RateCurve decides *when* arrivals happen,
// a Popularity decides *which* spec each arrival requests, and a Recorder
// writes what actually happened so a later run can replay the exact
// sequence at scaled speed against any target.
package traffic

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// RateCurve is a deterministic offered-rate profile r(t) ≥ 0, in
// requests/second, over elapsed run time. Implementations must be safe
// for concurrent readers (they are immutable after construction).
//
// The open-loop dispatcher does not sample r(t) directly: it advances an
// absolute-deadline schedule by inverting the cumulative rate, so the
// arrival count over any interval matches the curve's integral exactly
// (±1) instead of drifting with dispatch latency or discretization.
type RateCurve interface {
	// Rate reports the instantaneous rate at elapsed time t.
	Rate(t time.Duration) float64
	// Advance returns the elapsed time t' > t at which `units` more
	// expected arrivals have accumulated: the solution of
	// ∫ₜ^t' r(s) ds = units. For a fixed-period process units is 1;
	// for Poisson it is an Exp(1) draw — that is the standard
	// time-change construction of an inhomogeneous Poisson process.
	Advance(t time.Duration, units float64) time.Duration
	// String names the curve with its parameters, parseable by ParseCurve.
	String() string
}

// seconds/duration helpers: curves integrate in float64 seconds and
// convert at the boundary, so the quadratic solves stay readable.
func secs(d time.Duration) float64 { return float64(d) / float64(time.Second) }
func dur(s float64) time.Duration  { return time.Duration(s * float64(time.Second)) }

// Constant is the stationary curve: r(t) = Rate.
type Constant struct{ RPS float64 }

// Rate implements RateCurve.
func (c Constant) Rate(time.Duration) float64 { return c.RPS }

// Advance implements RateCurve.
func (c Constant) Advance(t time.Duration, units float64) time.Duration {
	return t + dur(units/c.RPS)
}

func (c Constant) String() string { return fmt.Sprintf("constant:%g", c.RPS) }

// Linstep ramps linearly from From to To over Ramp, then holds To — the
// step-load / warmup pattern (fabbench's linstep).
type Linstep struct {
	From, To float64
	Ramp     time.Duration
}

// Rate implements RateCurve.
func (c Linstep) Rate(t time.Duration) float64 {
	if t >= c.Ramp {
		return c.To
	}
	return c.From + (c.To-c.From)*secs(t)/secs(c.Ramp)
}

// Advance implements RateCurve.
func (c Linstep) Advance(t time.Duration, units float64) time.Duration {
	ts, ramp := secs(t), secs(c.Ramp)
	if ts < ramp {
		// On the ramp the cumulative rate is quadratic:
		// F(x) = From·x + k·x²/2 with k = (To−From)/Ramp. Solve
		// F(t′) = F(t) + units for t′ and take it if it stays on the ramp.
		k := (c.To - c.From) / ramp
		target := c.From*ts + k*ts*ts/2 + units
		var tp float64
		if k == 0 {
			tp = target / c.From
		} else {
			// Positive root of k/2·x² + From·x − target = 0; the
			// discriminant is nonnegative whenever the ramp can
			// accumulate `target` units (checked below via tp > ramp).
			disc := c.From*c.From + 2*k*target
			if disc < 0 {
				tp = ramp + 1 // ramp can never accumulate this much (decreasing to ~0)
			} else {
				tp = (-c.From + math.Sqrt(disc)) / k
			}
		}
		if tp <= ramp {
			return dur(tp)
		}
		// Spill the leftover units into the constant tail.
		units = target - (c.From*ramp + k*ramp*ramp/2)
		ts = ramp
	}
	return dur(ts + units/c.To)
}

func (c Linstep) String() string {
	return fmt.Sprintf("linstep:%g:%g:%s", c.From, c.To, c.Ramp)
}

// Switching is the high/low square wave: each Period spends its first
// half at Hi and its second half at Lo, repeating — the on/off and
// diurnal-burst pattern (fabbench's switching generator). Lo may be 0:
// arrivals simply stop for that half period.
type Switching struct {
	Hi, Lo float64
	Period time.Duration
}

// Rate implements RateCurve.
func (c Switching) Rate(t time.Duration) float64 {
	if t < 0 {
		return c.Hi
	}
	phase := t % c.Period
	if phase < c.Period/2 {
		return c.Hi
	}
	return c.Lo
}

// Advance implements RateCurve.
func (c Switching) Advance(t time.Duration, units float64) time.Duration {
	// Walk the piecewise-constant segments from t, consuming capacity
	// (rate × length) until the remaining units land inside one. The walk
	// is indexed by period number k, not by recomputing floor(ts/period)
	// after each hop: rounding can make a recomputed boundary equal ts
	// while the phase test still points at the segment before it, and the
	// walk would stop making progress. k increments unconditionally, and
	// every period has positive capacity (Hi > 0), so this terminates.
	period := secs(c.Period)
	half := period / 2
	ts := secs(t)
	for k := math.Floor(ts / period); ; k++ {
		hiEnd := k*period + half
		if ts < hiEnd && c.Hi > 0 {
			avail := c.Hi * (hiEnd - ts)
			if units <= avail {
				return dur(ts + units/c.Hi)
			}
			units -= avail
		}
		if ts < hiEnd {
			ts = hiEnd
		}
		loEnd := (k + 1) * period
		if ts < loEnd && c.Lo > 0 {
			avail := c.Lo * (loEnd - ts)
			if units <= avail {
				return dur(ts + units/c.Lo)
			}
			units -= avail
		}
		if ts < loEnd {
			ts = loEnd
		}
	}
}

func (c Switching) String() string {
	return fmt.Sprintf("switching:%g:%g:%s", c.Hi, c.Lo, c.Period)
}

// ParseCurve builds a rate curve from its flag spelling. The empty string
// and "constant" use fallbackRPS (the harness's -rate); otherwise:
//
//	constant:<rps>
//	linstep:<from>:<to>:<ramp>      e.g. linstep:50:400:10s
//	switching:<hi>:<lo>:<period>    e.g. switching:400:50:4s
func ParseCurve(spec string, fallbackRPS float64) (RateCurve, error) {
	parts := strings.Split(spec, ":")
	bad := func(why string) error {
		return fmt.Errorf("traffic: curve %q: %s", spec, why)
	}
	switch parts[0] {
	case "", "constant":
		rps := fallbackRPS
		if len(parts) == 2 {
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, bad("bad rate")
			}
			rps = v
		} else if len(parts) > 2 {
			return nil, bad("want constant[:rps]")
		}
		if rps <= 0 {
			return nil, bad("rate must be positive")
		}
		return Constant{RPS: rps}, nil
	case "linstep":
		if len(parts) != 4 {
			return nil, bad("want linstep:from:to:ramp")
		}
		from, err1 := strconv.ParseFloat(parts[1], 64)
		to, err2 := strconv.ParseFloat(parts[2], 64)
		ramp, err3 := time.ParseDuration(parts[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, bad("bad numbers")
		}
		// A ramp from 0 is fine (the quadratic inversion handles it);
		// a ramp *to* 0 would strand the schedule in the flat tail.
		if from < 0 || to <= 0 || ramp <= 0 {
			return nil, bad("want from ≥ 0, to > 0, ramp > 0")
		}
		return Linstep{From: from, To: to, Ramp: ramp}, nil
	case "switching":
		if len(parts) != 4 {
			return nil, bad("want switching:hi:lo:period")
		}
		hi, err1 := strconv.ParseFloat(parts[1], 64)
		lo, err2 := strconv.ParseFloat(parts[2], 64)
		period, err3 := time.ParseDuration(parts[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, bad("bad numbers")
		}
		if hi <= 0 || lo < 0 || period <= 0 {
			return nil, bad("want hi > 0, lo ≥ 0, period > 0")
		}
		return Switching{Hi: hi, Lo: lo, Period: period}, nil
	default:
		return nil, bad("unknown curve (want constant, linstep, or switching)")
	}
}

// Integral is the expected arrival count ∫₀^d r(s) ds, computed by
// stepping Advance one unit at a time would be O(count); instead each
// curve's closed form is recovered by differencing Advance's inverse —
// here done numerically only for reporting, exactly for the built-ins.
func Integral(c RateCurve, d time.Duration) float64 {
	switch cv := c.(type) {
	case Constant:
		return cv.RPS * secs(d)
	case Linstep:
		ds, ramp := secs(d), secs(cv.Ramp)
		if ds <= ramp {
			k := (cv.To - cv.From) / ramp
			return cv.From*ds + k*ds*ds/2
		}
		return (cv.From+cv.To)/2*ramp + cv.To*(ds-ramp)
	case Switching:
		period := secs(cv.Period)
		half := period / 2
		ds := secs(d)
		full := math.Floor(ds / period)
		rem := ds - full*period
		total := full * (cv.Hi + cv.Lo) * half
		total += cv.Hi * math.Min(rem, half)
		if rem > half {
			total += cv.Lo * (rem - half)
		}
		return total
	default:
		// Trapezoid fallback for curves this package did not define.
		const steps = 10000
		h := secs(d) / steps
		sum := (c.Rate(0) + c.Rate(d)) / 2
		for i := 1; i < steps; i++ {
			sum += c.Rate(dur(float64(i) * h))
		}
		return sum * h
	}
}
