package traffic

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Popularity draws which catalog entry each arrival requests. Next is
// safe for concurrent use; given a fixed draw order the sequence is
// deterministic in the seed.
type Popularity interface {
	// Next returns an index in [0, catalog size).
	Next() int
	// String names the distribution, parseable by ParsePopularity.
	String() string
}

// RoundRobin cycles the catalog 0,1,…,n−1,0,… — every entry equally hot,
// perfectly periodic. This is the harness's historical behavior and the
// default.
type RoundRobin struct {
	n   int
	ctr atomic.Uint64
}

// NewRoundRobin cycles a catalog of n entries.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{n: n} }

// Next implements Popularity.
func (r *RoundRobin) Next() int { return int((r.ctr.Add(1) - 1) % uint64(r.n)) }

func (r *RoundRobin) String() string { return "roundrobin" }

// Zipfian draws rank k ∈ {1..n} with probability k^−s / H_{n,s} and
// returns catalog index k−1, so entry 0 is the hottest. s = 0 is uniform;
// s ≈ 1 is the classic web/cache skew; s > 1 concentrates most arrivals
// on a handful of entries. Sampling is inverse-CDF over a precomputed
// cumulative table (the catalog is small), and the random stream is a
// counter-mode SplitMix64 so draws are lock-free and seed-deterministic.
type Zipfian struct {
	s    float64
	cum  []float64 // cum[k] = P(rank ≤ k+1); cum[n-1] == 1
	seed uint64
	ctr  atomic.Uint64
}

// NewZipfian builds the distribution over a catalog of n entries with
// exponent s ≥ 0.
func NewZipfian(s float64, n int, seed int64) (*Zipfian, error) {
	if n < 1 {
		return nil, fmt.Errorf("traffic: zipf catalog size %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("traffic: zipf exponent %g (want s ≥ 0)", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1 // pin the tail against rounding
	z := &Zipfian{s: s, cum: cum, seed: uint64(seed)}
	if z.seed == 0 {
		z.seed = 1
	}
	return z, nil
}

// PMF returns the analytic probability of each catalog index — the
// reference the χ² property test checks empirical frequencies against.
func (z *Zipfian) PMF() []float64 {
	p := make([]float64, len(z.cum))
	prev := 0.0
	for k, c := range z.cum {
		p[k] = c - prev
		prev = c
	}
	return p
}

// Next implements Popularity.
func (z *Zipfian) Next() int {
	// Counter-mode SplitMix64: each draw mixes seed + i·φ, so concurrent
	// callers never contend and a single-threaded dispatcher replays the
	// identical sequence for a seed.
	x := z.seed + z.ctr.Add(1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53)
	return sort.SearchFloat64s(z.cum, u)
}

func (z *Zipfian) String() string { return fmt.Sprintf("zipf:%g", z.s) }

// ParsePopularity builds a popularity distribution over a catalog of n
// entries from its flag spelling:
//
//	roundrobin          (or "") — cycle the catalog in order
//	zipf:<s>            e.g. zipf:0.9; zipf:0 is uniform-random
func ParsePopularity(spec string, n int, seed int64) (Popularity, error) {
	if n < 1 {
		return nil, fmt.Errorf("traffic: popularity needs a catalog, got %d entries", n)
	}
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "", "roundrobin":
		if len(parts) > 1 {
			return nil, fmt.Errorf("traffic: popularity %q: roundrobin takes no parameters", spec)
		}
		return NewRoundRobin(n), nil
	case "zipf", "zipfian":
		if len(parts) != 2 {
			return nil, fmt.Errorf("traffic: popularity %q: want zipf:s", spec)
		}
		s, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: popularity %q: bad exponent", spec)
		}
		return NewZipfian(s, n, seed)
	default:
		return nil, fmt.Errorf("traffic: unknown popularity %q (want roundrobin or zipf:s)", spec)
	}
}
