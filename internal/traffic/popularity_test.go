package traffic

import (
	"math"
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin(5)
	for i := 0; i < 23; i++ {
		if got := p.Next(); got != i%5 {
			t.Fatalf("draw %d = %d, want %d", i, got, i%5)
		}
	}
}

// TestZipfianChiSquared is the satellite property: empirical frequencies
// over a fixed-seed run must match the analytic pmf under a χ² bound.
// With n=64 bins (63 degrees of freedom) the 99.99th percentile of χ² is
// ≈ 117; the seed is fixed, so the test is deterministic and the bound
// only needs to catch a broken sampler, not statistical noise.
func TestZipfianChiSquared(t *testing.T) {
	for _, s := range []float64{0, 0.9, 1.2} {
		const n, draws = 64, 200000
		z, err := NewZipfian(s, n, 42)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		pmf := z.PMF()
		chi2 := 0.0
		for k := 0; k < n; k++ {
			exp := pmf[k] * draws
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
		}
		if chi2 > 120 {
			t.Fatalf("s=%g: χ² = %.1f over %d bins (bound 120); head counts %v",
				s, chi2, n, counts[:4])
		}
	}
}

// TestZipfianShape pins the distribution's gross shape: the pmf is a
// proper, monotone-decreasing distribution; s=0 is uniform; larger s
// concentrates more mass on the hottest entry.
func TestZipfianShape(t *testing.T) {
	uniform, _ := NewZipfian(0, 16, 1)
	for _, p := range uniform.PMF() {
		if math.Abs(p-1.0/16) > 1e-12 {
			t.Fatalf("s=0 pmf not uniform: %v", uniform.PMF())
		}
	}
	prevHead := 0.0
	for _, s := range []float64{0, 0.5, 0.9, 1.2, 2} {
		z, err := NewZipfian(s, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		pmf := z.PMF()
		sum := 0.0
		for k, p := range pmf {
			sum += p
			if k > 0 && p > pmf[k-1]+1e-15 {
				t.Fatalf("s=%g: pmf not monotone at rank %d: %v", s, k, pmf)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%g: pmf sums to %g", s, sum)
		}
		if pmf[0] <= prevHead {
			t.Fatalf("s=%g: head mass %g not above smaller exponent's %g", s, pmf[0], prevHead)
		}
		prevHead = pmf[0]
	}
}

// TestZipfianDeterminism: same seed, same sequence; different seed,
// different sequence (overwhelmingly).
func TestZipfianDeterminism(t *testing.T) {
	a, _ := NewZipfian(0.9, 32, 7)
	b, _ := NewZipfian(0.9, 32, 7)
	c, _ := NewZipfian(0.9, 32, 8)
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			same = false
		}
		if av != cv {
			diff = true
		}
	}
	if !same {
		t.Fatal("identical seeds diverged")
	}
	if !diff {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestParsePopularity(t *testing.T) {
	for spec, want := range map[string]string{
		"":           "roundrobin",
		"roundrobin": "roundrobin",
		"zipf:0.9":   "zipf:0.9",
		"zipfian:0":  "zipf:0",
	} {
		p, err := ParsePopularity(spec, 8, 1)
		if err != nil {
			t.Fatalf("ParsePopularity(%q): %v", spec, err)
		}
		if p.String() != want {
			t.Fatalf("ParsePopularity(%q) = %s, want %s", spec, p, want)
		}
	}
	for _, spec := range []string{"zipf", "zipf:x", "zipf:-1", "zipf:1:2", "roundrobin:3", "pareto:1"} {
		if _, err := ParsePopularity(spec, 8, 1); err == nil {
			t.Fatalf("ParsePopularity(%q) accepted", spec)
		}
	}
	if _, err := ParsePopularity("zipf:1", 0, 1); err == nil {
		t.Fatal("empty catalog accepted")
	}
}
