package traffic

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/workload"
)

// Binary request trace: the record half of record/replay. Framing matches
// the trace log and the durable store's segment discipline —
//
//	[4B little-endian payload length][4B CRC32C of payload][payload]
//
// — so a torn tail (crash or kill mid-write) truncates cleanly and a
// corrupt record is detected, skipped, and counted rather than replayed.
//
// The first frame is a header whose payload is
//
//	u8 version, u8 recType=0, then the Header as JSON
//
// (JSON because the header is one-per-file and wants extensibility more
// than compactness). Every following frame is one request:
//
//	u8  version   u8 recType=1
//	u8  op code   u8 outcome code   u8 source code
//	u32 spec (body index)           u32 items (batch size)
//	u64 rel issue timestamp ns      u64 latency ns
//
// The header carries everything needed to rebuild the identical request
// bodies — the spec catalog, op, batch shape, and seed — so `suuload
// -replay <path>` needs nothing but the file.

const traceVersion = 1

const (
	recTypeHeader  = 0
	recTypeRequest = 1
)

// maxTraceRecord bounds a single frame; longer means corrupt. The header
// embeds the whole spec catalog as JSON, so it gets generous room.
const maxTraceRecord = 1 << 20

var traceCRC = crc32.MakeTable(crc32.Castagnoli)

// Closed code tables keep request records compact; unknown strings map to
// 0 ("?") rather than failing.
var (
	traceOps      = []string{"?", "plan", "estimate", "plan-batch"}
	traceOutcomes = []string{"?", "ok", "error", "rejected"}
	traceSources  = []string{"", "cached", "computed", "coalesced", "degraded", "batch"}
)

func traceCode(table []string, s string) uint8 {
	for i, v := range table {
		if v == s {
			return uint8(i)
		}
	}
	return 0
}

func traceDecode(table []string, c uint8) string {
	if int(c) < len(table) {
		return table[c]
	}
	return table[0]
}

// Header describes a recorded run: enough to regenerate the exact bodies
// the requests index into, plus the shape labels a summarizer reports.
type Header struct {
	Op          string          `json:"op"`
	Specs       []workload.Spec `json:"specs"`
	BatchSize   int             `json:"batch_size,omitempty"`
	BatchDist   string          `json:"batch_dist,omitempty"`
	Seed        int64           `json:"seed"`
	Curve       string          `json:"curve,omitempty"`
	Popularity  string          `json:"popularity,omitempty"`
	StartUnixNS int64           `json:"start_unix_ns"`
}

// Request is one recorded arrival. Rel is the issue time relative to the
// run start — the replay schedule — and Spec indexes the pre-built body
// pool the Header regenerates (for single ops, the spec catalog itself).
type Request struct {
	Rel     time.Duration
	Latency time.Duration
	Op      string
	Outcome string // ok | error | rejected
	Source  string // serving source from the trace header, "" if untraced
	Spec    uint32
	Items   uint32
}

const requestPayloadLen = 1 + 1 + 3 + 4 + 4 + 8 + 8

// appendRequest encodes one request frame payload.
func appendRequest(b []byte, r *Request) []byte {
	b = append(b, traceVersion, recTypeRequest,
		traceCode(traceOps, r.Op),
		traceCode(traceOutcomes, r.Outcome),
		traceCode(traceSources, r.Source))
	b = binary.LittleEndian.AppendUint32(b, r.Spec)
	b = binary.LittleEndian.AppendUint32(b, r.Items)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Rel))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Latency))
	return b
}

func decodeRequest(b []byte) (Request, bool) {
	var r Request
	if len(b) != requestPayloadLen || b[0] != traceVersion || b[1] != recTypeRequest {
		return r, false
	}
	r.Op = traceDecode(traceOps, b[2])
	r.Outcome = traceDecode(traceOutcomes, b[3])
	r.Source = traceDecode(traceSources, b[4])
	r.Spec = binary.LittleEndian.Uint32(b[5:])
	r.Items = binary.LittleEndian.Uint32(b[9:])
	r.Rel = time.Duration(binary.LittleEndian.Uint64(b[13:]))
	r.Latency = time.Duration(binary.LittleEndian.Uint64(b[21:]))
	return r, true
}

// Recorder appends framed records to a file (or any writer) behind a
// mutex. Append never fails the caller: write errors are counted and
// surfaced by Stats, matching the trace log's "recording must never fail
// a request" contract.
type Recorder struct {
	mu   sync.Mutex
	w    *bufio.Writer
	c    io.Closer
	buf  []byte
	recs uint64
	errs uint64
}

// NewRecorder frames records onto w, writing the header frame first. If w
// is an io.Closer, Close closes it.
func NewRecorder(w io.Writer, hdr Header) (*Recorder, error) {
	rec := &Recorder{w: bufio.NewWriterSize(w, 1<<15)}
	if c, ok := w.(io.Closer); ok {
		rec.c = c
	}
	hj, err := json.Marshal(&hdr)
	if err != nil {
		return nil, fmt.Errorf("traffic: encoding trace header: %w", err)
	}
	payload := append([]byte{traceVersion, recTypeHeader}, hj...)
	if err := rec.writeFrame(payload); err != nil {
		return nil, err
	}
	return rec, nil
}

// Create opens (truncating) a trace file and writes its header.
func Create(path string, hdr Header) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: creating trace: %w", err)
	}
	rec, err := NewRecorder(f, hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	return rec, nil
}

func (rec *Recorder) writeFrame(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, traceCRC))
	if _, err := rec.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := rec.w.Write(payload)
	return err
}

// Append records one request.
func (rec *Recorder) Append(r *Request) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.buf = appendRequest(rec.buf[:0], r)
	err := rec.writeFrame(rec.buf)
	if err != nil {
		rec.errs++
	} else {
		rec.recs++
	}
	rec.mu.Unlock()
}

// Stats reports records appended and write errors swallowed.
func (rec *Recorder) Stats() (records, errs uint64) {
	if rec == nil {
		return 0, 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.recs, rec.errs
}

// Close flushes and closes the underlying writer if it is closable.
func (rec *Recorder) Close() error {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	err := rec.w.Flush()
	if rec.c != nil {
		if cerr := rec.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Trace is a decoded recording: the header plus every intact request,
// sorted by issue time (records land in completion order on disk; the
// replay schedule wants arrival order).
type Trace struct {
	Header   Header
	Requests []Request
	// Skipped counts complete-but-corrupt frames dropped by the reader;
	// a torn tail is not counted (it is the expected crash artifact).
	Skipped int
}

// ReadTrace decodes a recording. A torn tail ends the scan cleanly; a
// frame with a bad CRC or malformed payload is skipped and counted. The
// first frame must be an intact header — without it the bodies cannot be
// rebuilt and replay would be meaningless.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	tr := &Trace{}
	sawHeader := false
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn tail or clean end
			}
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxTraceRecord {
			// Garbage length: no way to resync framing, stop here.
			tr.Skipped++
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn tail
			}
			return nil, err
		}
		if crc32.Checksum(payload, traceCRC) != want {
			tr.Skipped++
			continue
		}
		if len(payload) < 2 || payload[0] != traceVersion {
			tr.Skipped++
			continue
		}
		switch payload[1] {
		case recTypeHeader:
			if sawHeader {
				tr.Skipped++ // duplicate header: keep the first
				continue
			}
			if err := json.Unmarshal(payload[2:], &tr.Header); err != nil {
				return nil, fmt.Errorf("traffic: decoding trace header: %w", err)
			}
			sawHeader = true
		case recTypeRequest:
			req, ok := decodeRequest(payload)
			if !ok {
				tr.Skipped++
				continue
			}
			tr.Requests = append(tr.Requests, req)
		default:
			tr.Skipped++
		}
	}
	if !sawHeader {
		return nil, errors.New("traffic: trace has no intact header")
	}
	sort.SliceStable(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Rel < tr.Requests[j].Rel
	})
	return tr, nil
}

// OpenTrace reads a trace file.
func OpenTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: opening trace: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// Duration is the recording's issuing window: the last issue timestamp.
func (t *Trace) Duration() time.Duration {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Rel
}
