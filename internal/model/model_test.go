package model

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dag"
)

func TestNewValid(t *testing.T) {
	q := [][]float64{
		{0.5, 0.25},
		{1.0, 0.0},
	}
	ins, err := New(2, 2, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ins.L[0][0] != 1 || ins.L[0][1] != 2 {
		t.Fatalf("L row 0 = %v", ins.L[0])
	}
	if ins.L[1][0] != 0 {
		t.Fatalf("q=1 should give l=0, got %v", ins.L[1][0])
	}
	if ins.L[1][1] != LogFailCap {
		t.Fatalf("q=0 should clamp to cap, got %v", ins.L[1][1])
	}
	if ins.Class() != dag.ClassIndependent {
		t.Fatalf("class %v", ins.Class())
	}
}

func TestNewErrors(t *testing.T) {
	good := [][]float64{{0.5}}
	cases := []struct {
		name string
		m, n int
		q    [][]float64
		prec *dag.DAG
	}{
		{"zero m", 0, 1, nil, nil},
		{"row count", 2, 1, good, nil},
		{"col count", 1, 2, good, nil},
		{"q out of range", 1, 1, [][]float64{{1.5}}, nil},
		{"q NaN", 1, 1, [][]float64{{math.NaN()}}, nil},
		{"hopeless job", 1, 1, [][]float64{{1.0}}, nil},
		{"prec size", 1, 1, good, dag.New(2)},
	}
	for _, c := range cases {
		if _, err := New(c.m, c.n, c.q, c.prec); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	cyc := dag.New(2)
	cyc.MustEdge(0, 1)
	cyc.MustEdge(1, 0)
	if _, err := New(1, 2, [][]float64{{0.5, 0.5}}, cyc); err == nil {
		t.Error("cyclic prec: want error")
	}
}

func TestLogFailure(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{1, 0},
		{0.5, 1},
		{0.25, 2},
		{0, LogFailCap},
		{1e-30, LogFailCap}, // would be ~99.6, clamped
	}
	for _, c := range cases {
		if got := LogFailure(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LogFailure(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestBestMachineAndTotalRate(t *testing.T) {
	q := [][]float64{
		{0.5, 0.9},
		{0.25, 0.99},
	}
	ins, err := New(2, 2, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ins.BestMachine(0) != 1 {
		t.Fatalf("best machine for job 0 = %d", ins.BestMachine(0))
	}
	want := ins.L[0][0] + ins.L[1][0]
	if math.Abs(ins.TotalRate(0)-want) > 1e-12 {
		t.Fatalf("TotalRate = %g, want %g", ins.TotalRate(0), want)
	}
	if ins.MinMN() != 2 {
		t.Fatalf("MinMN = %d", ins.MinMN())
	}
}

func TestChainsIndependent(t *testing.T) {
	ins, err := New(1, 3, [][]float64{{0.5, 0.5, 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	chains, err := ins.Chains()
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 3 {
		t.Fatalf("got %d chains", len(chains))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := dag.New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	ins, err := New(2, 3, [][]float64{{0.5, 0.6, 0.7}, {0.1, 0.2, 0.3}}, g)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(ins)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.M != 2 || back.N != 3 {
		t.Fatalf("dims %dx%d", back.M, back.N)
	}
	for i := range ins.Q {
		for j := range ins.Q[i] {
			if ins.Q[i][j] != back.Q[i][j] {
				t.Fatalf("Q[%d][%d] mismatch", i, j)
			}
		}
	}
	if back.Prec == nil || back.Prec.Edges() != 2 {
		t.Fatal("precedence lost in round trip")
	}
	if back.Class() != dag.ClassChains {
		t.Fatalf("class %v", back.Class())
	}
}

func TestJSONInvalid(t *testing.T) {
	var ins Instance
	if err := json.Unmarshal([]byte(`{"m":1,"n":1,"q":[[2.0]]}`), &ins); err == nil {
		t.Fatal("want validation error")
	}
	if err := json.Unmarshal([]byte(`{bad`), &ins); err == nil {
		t.Fatal("want syntax error")
	}
	if err := json.Unmarshal([]byte(`{"m":1,"n":2,"q":[[0.5,0.5]],"edges":[[0,5]]}`), &ins); err == nil {
		t.Fatal("want edge range error")
	}
}

func TestSubsetView(t *testing.T) {
	ins, err := New(1, 4, [][]float64{{0.5, 0.5, 0.5, 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSubsetView(ins, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSubsetView(ins, []int{0, 0}); err == nil {
		t.Fatal("duplicate should error")
	}
	if _, err := NewSubsetView(ins, []int{4}); err == nil {
		t.Fatal("out of range should error")
	}
}
