package model

import (
	"encoding/json"
	"fmt"

	"repro/internal/dag"
)

// jsonInstance is the wire form of an Instance: probabilities plus an edge
// list. Log failures are derived, not stored.
type jsonInstance struct {
	M     int         `json:"m"`
	N     int         `json:"n"`
	Q     [][]float64 `json:"q"`
	Edges [][2]int    `json:"edges,omitempty"`
}

// MarshalJSON encodes the instance (probabilities and precedence edges).
func (ins *Instance) MarshalJSON() ([]byte, error) {
	ji := jsonInstance{M: ins.M, N: ins.N, Q: ins.Q}
	if ins.Prec != nil {
		for u := 0; u < ins.Prec.N(); u++ {
			for _, v := range ins.Prec.Succs(u) {
				ji.Edges = append(ji.Edges, [2]int{u, v})
			}
		}
	}
	return json.Marshal(ji)
}

// UnmarshalJSON decodes and validates an instance.
func (ins *Instance) UnmarshalJSON(data []byte) error {
	var ji jsonInstance
	if err := json.Unmarshal(data, &ji); err != nil {
		return fmt.Errorf("model: decoding instance: %w", err)
	}
	var prec *dag.DAG
	if len(ji.Edges) > 0 {
		prec = dag.New(ji.N)
		for _, e := range ji.Edges {
			if err := prec.AddEdge(e[0], e[1]); err != nil {
				return fmt.Errorf("model: decoding instance: %w", err)
			}
		}
	}
	built, err := New(ji.M, ji.N, ji.Q, prec)
	if err != nil {
		return err
	}
	*ins = *built
	return nil
}
