// Package model defines the SUU problem instance (Section 2 of the paper):
// n unit-step jobs, m machines, failure probabilities q_ij, and a precedence
// DAG. It also carries the log-failure view ℓ_ij = −log₂ q_ij that the
// SUU* reformulation (Appendix A) and all of the algorithms work with.
package model

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

// LogFailCap bounds the log failure ℓ_ij = −log₂ q_ij (equivalently,
// q_ij is clamped to at least 2⁻⁶⁴). A job whose threshold −log₂ r_j
// exceeds 64 occurs with probability below 2⁻⁶⁴ per job, so the clamp is
// statistically unobservable; it keeps every quantity finite even when a
// generator hands us q_ij = 0.
const LogFailCap = 64.0

// Instance is one SUU problem instance. All fields are read-only after
// construction; instances are safe to share across goroutines.
type Instance struct {
	M int // number of machines
	N int // number of jobs

	// Q[i][j] is the probability that job j does NOT complete when run on
	// machine i for one step. Values lie in [0, 1].
	Q [][]float64

	// L[i][j] = min(−log₂ Q[i][j], LogFailCap) is the log failure, the
	// "work per step" of machine i on job j in the SUU* view.
	L [][]float64

	// Prec is the precedence DAG over jobs, or nil when jobs are
	// independent.
	Prec *dag.DAG
}

// New validates and builds an instance from failure probabilities.
// prec may be nil for independent jobs. Requirements: every q_ij ∈ [0,1];
// every job has at least one machine with q_ij < 1; prec (if present) is an
// acyclic graph on exactly n vertices.
func New(m, n int, q [][]float64, prec *dag.DAG) (*Instance, error) {
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("model: need m>0 and n>0, got m=%d n=%d", m, n)
	}
	if len(q) != m {
		return nil, fmt.Errorf("model: q has %d rows, want m=%d", len(q), m)
	}
	ell := make([][]float64, m)
	for i := range q {
		if len(q[i]) != n {
			return nil, fmt.Errorf("model: q row %d has %d entries, want n=%d", i, len(q[i]), n)
		}
		ell[i] = make([]float64, n)
		for j, qij := range q[i] {
			if math.IsNaN(qij) || qij < 0 || qij > 1 {
				return nil, fmt.Errorf("model: q[%d][%d] = %v outside [0,1]", i, j, qij)
			}
			ell[i][j] = LogFailure(qij)
		}
	}
	for j := 0; j < n; j++ {
		ok := false
		for i := 0; i < m; i++ {
			if q[i][j] < 1 {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("model: job %d fails on every machine (all q=1)", j)
		}
	}
	if prec != nil {
		if prec.N() != n {
			return nil, fmt.Errorf("model: precedence graph has %d vertices, want n=%d", prec.N(), n)
		}
		if err := prec.Validate(); err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
	}
	return &Instance{M: m, N: n, Q: q, L: ell, Prec: prec}, nil
}

// LogFailure converts a failure probability to a clamped log failure.
func LogFailure(q float64) float64 {
	if q <= 0 {
		return LogFailCap
	}
	if q >= 1 {
		return 0
	}
	l := -math.Log2(q)
	if l > LogFailCap {
		return LogFailCap
	}
	return l
}

// Class returns the precedence class of the instance.
func (ins *Instance) Class() dag.Class {
	if ins.Prec == nil {
		return dag.ClassIndependent
	}
	return ins.Prec.Classify()
}

// BestMachine returns the machine with the largest log failure for job j
// (the single most effective machine).
func (ins *Instance) BestMachine(j int) int {
	best, bestL := 0, -1.0
	for i := 0; i < ins.M; i++ {
		if ins.L[i][j] > bestL {
			best, bestL = i, ins.L[i][j]
		}
	}
	return best
}

// TotalRate returns Σ_i ℓ_ij, the log mass all machines together give job j
// in one step. It is positive for every valid instance.
func (ins *Instance) TotalRate(j int) float64 {
	s := 0.0
	for i := 0; i < ins.M; i++ {
		s += ins.L[i][j]
	}
	return s
}

// MinMN returns min(m, n), the quantity inside the paper's
// O(log log min{m,n}) bound.
func (ins *Instance) MinMN() int {
	if ins.M < ins.N {
		return ins.M
	}
	return ins.N
}

// Chains returns the chain decomposition of the precedence graph
// (length-1 chains for independent jobs).
func (ins *Instance) Chains() ([]dag.Chain, error) {
	if ins.Prec == nil {
		chains := make([]dag.Chain, ins.N)
		for j := 0; j < ins.N; j++ {
			chains[j] = dag.Chain{j}
		}
		return chains, nil
	}
	return ins.Prec.Chains()
}

// SubsetView helps algorithms work on a subset of jobs: it maps subset
// positions to original job ids.
type SubsetView struct {
	Jobs []int // original job ids, in subset order
}

// NewSubsetView validates the job ids and returns a view.
func NewSubsetView(ins *Instance, jobs []int) (*SubsetView, error) {
	seen := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if j < 0 || j >= ins.N {
			return nil, fmt.Errorf("model: job %d out of range [0,%d)", j, ins.N)
		}
		if seen[j] {
			return nil, fmt.Errorf("model: job %d repeated in subset", j)
		}
		seen[j] = true
	}
	return &SubsetView{Jobs: append([]int(nil), jobs...)}, nil
}
