package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectMatching(t *testing.T) {
	b := NewBipartite(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	b.AddEdge(2, 2)
	match, size := b.MaxMatching()
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if match[0] != 0 || match[1] != 1 || match[2] != 2 {
		t.Fatalf("match = %v", match)
	}
}

func TestNoEdges(t *testing.T) {
	b := NewBipartite(2, 2)
	match, size := b.MaxMatching()
	if size != 0 || match[0] != -1 || match[1] != -1 {
		t.Fatalf("size=%d match=%v", size, match)
	}
}

func TestAugmentingPathNeeded(t *testing.T) {
	// Greedy matching would match 0-0 and strand 1; Hopcroft-Karp must
	// find the augmenting path.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	_, size := b.MaxMatching()
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b := NewBipartite(1, 1)
	b.AddEdge(0, 5)
}

// hungarianSize computes the maximum matching size by simple augmenting
// search, as an independent reference.
func hungarianSize(nl, nr int, adj [][]int) int {
	matchR := make([]int, nr)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchR[v] = u
				return true
			}
		}
		return false
	}
	size := 0
	for u := 0; u < nl; u++ {
		if try(u, make([]bool, nr)) {
			size++
		}
	}
	return size
}

func TestAgainstAugmentingSearch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(10), 1+rng.Intn(10)
		b := NewBipartite(nl, nr)
		adj := make([][]int, nl)
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(u, v)
					adj[u] = append(adj[u], v)
				}
			}
		}
		match, size := b.MaxMatching()
		want := hungarianSize(nl, nr, adj)
		if size != want {
			t.Logf("seed %d: size %d, want %d", seed, size, want)
			return false
		}
		// Matching must be consistent: distinct partners, real edges.
		used := make(map[int]bool)
		count := 0
		for u, v := range match {
			if v == -1 {
				continue
			}
			count++
			if used[v] {
				t.Logf("seed %d: right vertex %d matched twice", seed, v)
				return false
			}
			used[v] = true
			ok := false
			for _, w := range adj[u] {
				if w == v {
					ok = true
				}
			}
			if !ok {
				t.Logf("seed %d: matched pair (%d,%d) is not an edge", seed, u, v)
				return false
			}
		}
		return count == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
