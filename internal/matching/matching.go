// Package matching implements Hopcroft–Karp maximum bipartite matching.
// It powers the Birkhoff–von Neumann timetable decomposition used by the
// stochastic-scheduling extension (Appendix C): each decomposition step needs
// a perfect matching on the positive entries of a doubly balanced matrix.
package matching

// Bipartite is a bipartite graph with nLeft left and nRight right vertices.
type Bipartite struct {
	nLeft, nRight int
	adj           [][]int32
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite(nLeft, nRight int) *Bipartite {
	return &Bipartite{nLeft: nLeft, nRight: nRight, adj: make([][]int32, nLeft)}
}

// AddEdge connects left vertex u to right vertex v. Out-of-range endpoints
// are ignored silently only in the sense that they panic — callers construct
// graphs programmatically and bad indices are bugs.
func (b *Bipartite) AddEdge(u, v int) {
	if u < 0 || u >= b.nLeft || v < 0 || v >= b.nRight {
		panic("matching: edge out of range")
	}
	b.adj[u] = append(b.adj[u], int32(v))
}

const unmatched = int32(-1)

// MaxMatching computes a maximum matching with Hopcroft–Karp in
// O(E·√V) time. It returns matchL (for each left vertex, its right partner
// or -1) and the matching size.
func (b *Bipartite) MaxMatching() ([]int, int) {
	matchL := make([]int32, b.nLeft)
	matchR := make([]int32, b.nRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	dist := make([]int32, b.nLeft)
	queue := make([]int32, 0, b.nLeft)

	bfs := func() bool {
		queue = queue[:0]
		const inf = int32(1 << 30)
		found := false
		for u := range dist {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, int32(u))
			} else {
				dist[u] = inf
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range b.adj[u] {
				w := matchR[v]
				if w == unmatched {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}
	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		for _, v := range b.adj[u] {
			w := matchR[v]
			if w == unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = int32(1 << 30)
		return false
	}

	size := 0
	for bfs() {
		for u := int32(0); int(u) < b.nLeft; u++ {
			if matchL[u] == unmatched && dfs(u) {
				size++
			}
		}
	}
	out := make([]int, b.nLeft)
	for i, v := range matchL {
		out[i] = int(v)
	}
	return out, size
}
