package rcmax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApproxSingleMachine(t *testing.T) {
	p := [][]float64{{1, 2, 3}}
	assign, span, err := Approx(p, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if span != 6 {
		t.Fatalf("span %g, want 6", span)
	}
	for j, i := range assign {
		if i != 0 {
			t.Fatalf("job %d on machine %d", j, i)
		}
	}
}

func TestApproxIdenticalMachines(t *testing.T) {
	// 2 machines, 4 unit jobs: optimum 2, LST guarantees ≤ 4.
	p := [][]float64{{1, 1, 1, 1}, {1, 1, 1, 1}}
	_, span, err := Approx(p, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if span > 4+1e-9 {
		t.Fatalf("span %g exceeds 2·OPT = 4", span)
	}
	if span < 2-1e-9 {
		t.Fatalf("span %g below OPT = 2", span)
	}
}

func TestApproxSpecialists(t *testing.T) {
	// Each job only runnable (finite) on its own machine.
	inf := math.Inf(1)
	p := [][]float64{
		{2, inf, inf},
		{inf, 3, inf},
		{inf, inf, 4},
	}
	assign, span, err := Approx(p, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for j := range want {
		if assign[j] != want[j] {
			t.Fatalf("assign %v", assign)
		}
	}
	if span != 4 {
		t.Fatalf("span %g, want 4", span)
	}
}

func TestApproxErrors(t *testing.T) {
	if _, _, err := Approx(nil, 0.01); err == nil {
		t.Fatal("no machines must error")
	}
	if _, _, err := Approx([][]float64{{}}, 0.01); err == nil {
		t.Fatal("no jobs must error")
	}
	inf := math.Inf(1)
	if _, _, err := Approx([][]float64{{inf}}, 0.01); err == nil {
		t.Fatal("unprocessable job must error")
	}
	if _, _, err := Approx([][]float64{{1, 2}, {1}}, 0.01); err == nil {
		t.Fatal("ragged matrix must error")
	}
}

// bruteOPT computes the true R||Cmax optimum for tiny instances.
func bruteOPT(p [][]float64, n int) float64 {
	m := len(p)
	best := math.Inf(1)
	assign := make([]int, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			loads := make([]float64, m)
			for jj, i := range assign {
				loads[i] += p[i][jj]
			}
			span := 0.0
			for _, l := range loads {
				if l > span {
					span = l
				}
			}
			if span < best {
				best = span
			}
			return
		}
		for i := 0; i < m; i++ {
			if !math.IsInf(p[i][j], 1) {
				assign[j] = i
				rec(j + 1)
			}
		}
	}
	rec(0)
	return best
}

// TestApproxWithinTwiceOPT is the LST guarantee on random instances.
func TestApproxWithinTwiceOPT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(2), 2+rng.Intn(5)
		p := make([][]float64, m)
		for i := range p {
			p[i] = make([]float64, n)
			for j := range p[i] {
				p[i][j] = 0.5 + 4*rng.Float64()
			}
		}
		assign, span, err := Approx(p, 0.01)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// The assignment must be valid and span consistent.
		if got := makespanOf(p, assign); math.Abs(got-span) > 1e-9 {
			t.Logf("seed %d: span mismatch %g vs %g", seed, got, span)
			return false
		}
		opt := bruteOPT(p, n)
		if span > 2*opt*(1+0.02)+1e-9 {
			t.Logf("seed %d: span %g > 2·OPT = %g", seed, span, 2*opt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxZeroTimes(t *testing.T) {
	p := [][]float64{{0, 0}, {0, 0}}
	_, span, err := Approx(p, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if span != 0 {
		t.Fatalf("span %g, want 0", span)
	}
}
