// Package rcmax implements the Lenstra–Shmoys–Tardos 2-approximation for
// scheduling on unrelated parallel machines without preemption (R||C_max,
// the paper's reference [10]). Appendix C uses it in place of the
// Lawler–Labetoulle preemptive schedule to handle the restart model
// R|restart, p~exp|E[C_max], where a job must execute entirely on one
// machine.
//
// The algorithm binary-searches the makespan T. For each T it solves the
// deadline LP — assign each job fractionally to machines that can finish
// it within T, with machine loads ≤ T — and rounds a vertex solution: the
// fractionally split jobs form a forest in the job–machine bipartite
// support graph, so they can be matched to distinct machines, adding at
// most one extra job (≤ T) per machine. Total makespan ≤ 2T.
package rcmax

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/matching"
)

// Approx returns an assignment job→machine with makespan at most
// 2·(1+eps)·OPT, along with its actual makespan. p[i][j] is the processing
// time of job j on machine i; +Inf marks an impossible pair. Every job
// needs at least one finite entry.
func Approx(p [][]float64, eps float64) ([]int, float64, error) {
	m := len(p)
	if m == 0 {
		return nil, 0, fmt.Errorf("rcmax: no machines")
	}
	n := len(p[0])
	if n == 0 {
		return nil, 0, fmt.Errorf("rcmax: no jobs")
	}
	if eps <= 0 {
		eps = 0.01
	}
	// Bracket T: lo = max over jobs of the fastest machine's time (and the
	// average-load bound); hi = greedy assignment to fastest machines.
	lo, hi := 0.0, 0.0
	loads := make([]float64, m)
	for j := 0; j < n; j++ {
		best, bestT := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if len(p[i]) != n {
				return nil, 0, fmt.Errorf("rcmax: ragged matrix")
			}
			if p[i][j] < bestT {
				best, bestT = i, p[i][j]
			}
		}
		if best < 0 || math.IsInf(bestT, 1) {
			return nil, 0, fmt.Errorf("rcmax: job %d unprocessable", j)
		}
		if bestT > lo {
			lo = bestT
		}
		loads[best] += bestT
	}
	for _, l := range loads {
		if l > hi {
			hi = l
		}
	}
	if hi < lo {
		hi = lo
	}
	if hi == 0 {
		return make([]int, n), 0, nil
	}

	var bestAssign []int
	bestSpan := math.Inf(1)
	for iter := 0; iter < 60 && hi > lo*(1+eps); iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection behaves on wide brackets
		assign, ok, err := tryDeadline(p, mid)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			if span := makespanOf(p, assign); span < bestSpan {
				bestAssign, bestSpan = assign, span
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	if bestAssign == nil {
		assign, ok, err := tryDeadline(p, hi)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, fmt.Errorf("rcmax: deadline %g infeasible at bracket top", hi)
		}
		bestAssign, bestSpan = assign, makespanOf(p, assign)
	}
	return bestAssign, bestSpan, nil
}

// makespanOf computes the makespan of an integral assignment.
func makespanOf(p [][]float64, assign []int) float64 {
	loads := make([]float64, len(p))
	for j, i := range assign {
		loads[i] += p[i][j]
	}
	span := 0.0
	for _, l := range loads {
		if l > span {
			span = l
		}
	}
	return span
}

// tryDeadline solves the deadline-T LP and rounds it; ok=false means the
// LP is infeasible (T below the fractional optimum).
func tryDeadline(p [][]float64, T float64) ([]int, bool, error) {
	m, n := len(p), len(p[0])
	// Variables x_ij for allowed pairs only.
	type pair struct{ i, j int }
	var vars []pair
	idx := make(map[pair]int)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if p[i][j] <= T {
				idx[pair{i, j}] = len(vars)
				vars = append(vars, pair{i, j})
			}
		}
	}
	prob := lp.NewProblem(len(vars))
	perJob := make([][]lp.Term, n)
	perMachine := make([][]lp.Term, m)
	for v, pr := range vars {
		perJob[pr.j] = append(perJob[pr.j], lp.Term{Var: v, Coef: 1})
		perMachine[pr.i] = append(perMachine[pr.i], lp.Term{Var: v, Coef: p[pr.i][pr.j]})
	}
	for j := 0; j < n; j++ {
		if len(perJob[j]) == 0 {
			return nil, false, nil // no machine can meet the deadline
		}
		prob.AddConstraint(perJob[j], lp.EQ, 1)
	}
	for i := 0; i < m; i++ {
		if len(perMachine[i]) > 0 {
			prob.AddConstraint(perMachine[i], lp.LE, T)
		}
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, false, nil
	}
	// Round: integral part stays; fractional jobs are matched to distinct
	// machines among their fractional supports (possible for vertex
	// solutions by the LST forest argument).
	const tol = 1e-7
	assign := make([]int, n)
	for j := range assign {
		assign[j] = -1
	}
	var fractional []int
	fracIndex := make(map[int]int)
	for v, x := range sol.X {
		if x > 1-tol {
			assign[vars[v].j] = vars[v].i
		}
	}
	for j := 0; j < n; j++ {
		if assign[j] < 0 {
			fracIndex[j] = len(fractional)
			fractional = append(fractional, j)
		}
	}
	if len(fractional) == 0 {
		return assign, true, nil
	}
	bg := matching.NewBipartite(len(fractional), m)
	for v, x := range sol.X {
		if x > tol && x < 1-tol {
			if fi, ok := fracIndex[vars[v].j]; ok {
				bg.AddEdge(fi, vars[v].i)
			}
		}
	}
	match, size := bg.MaxMatching()
	if size < len(fractional) {
		// Vertex-solution degeneracy can in principle leave an unmatched
		// job; fall back to each unmatched job's fastest allowed machine.
		for fi, j := range fractional {
			if match[fi] >= 0 {
				continue
			}
			best, bestT := -1, math.Inf(1)
			for i := 0; i < m; i++ {
				if p[i][j] <= T && p[i][j] < bestT {
					best, bestT = i, p[i][j]
				}
			}
			if best < 0 {
				return nil, false, fmt.Errorf("rcmax: job %d lost all machines", j)
			}
			match[fi] = best
		}
	}
	for fi, j := range fractional {
		assign[j] = match[fi]
	}
	return assign, true, nil
}
