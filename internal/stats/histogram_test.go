package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 8); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewHistogram(2, 1, 8); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := NewHistogram(1, 2, 0); err == nil {
		t.Error("perOctave=0 accepted")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.N() != 0 {
		t.Fatalf("N = %d", h.N())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Errorf("Quantile(%g) = %g on empty histogram, want NaN", q, h.Quantile(q))
		}
	}
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Min()) || !math.IsNaN(h.Max()) {
		t.Error("empty histogram moments not NaN")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.0123)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.0123 {
			t.Errorf("Quantile(%g) = %g, want exactly 0.0123 (min=max clamp)", q, got)
		}
	}
	if h.Mean() != 0.0123 {
		t.Errorf("Mean = %g", h.Mean())
	}
}

// TestHistogramQuantileAccuracy checks the advertised relative error bound
// against exact order statistics on log-uniform and heavy-tailed samples.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := map[string]func() float64{
		"loguniform": func() float64 { return math.Pow(10, -5+4*rng.Float64()) },
		"heavytail":  func() float64 { return 1e-4 * math.Pow(1/(1-rng.Float64()), 1.5) },
	}
	for name, draw := range samples {
		h := NewLatencyHistogram()
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = draw()
			h.Observe(xs[i])
		}
		sort.Float64s(xs)
		relErr := h.RelativeError()
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
			exact := xs[int(math.Ceil(q*float64(len(xs))))-1]
			got := h.Quantile(q)
			if rel := math.Abs(got-exact) / exact; rel > relErr+1e-12 {
				t.Errorf("%s: Quantile(%g) = %g, exact %g, rel err %.4f > bound %.4f",
					name, q, got, exact, rel, relErr)
			}
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h, err := NewHistogram(1e-3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(1e-9) // underflow bucket
	h.Observe(1e9)  // overflow bucket
	h.Observe(-1)   // ignored
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))  // ignored: would poison Sum and overflow log2
	h.Observe(math.Inf(-1)) // ignored
	if h.N() != 2 {
		t.Fatalf("N = %d, want 2 (negative, NaN, and Inf ignored)", h.N())
	}
	if math.IsInf(h.Sum(), 0) || math.IsInf(h.Max(), 0) {
		t.Fatalf("Inf leaked into moments: sum=%g max=%g", h.Sum(), h.Max())
	}
	// Exact min/max survive even though the values were clamped to edge
	// buckets.
	if h.Min() != 1e-9 || h.Max() != 1e9 {
		t.Errorf("min/max = %g/%g", h.Min(), h.Max())
	}
	if got := h.Quantile(0.01); got != 1e-9 {
		t.Errorf("low quantile = %g, want clamp to observed min", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewLatencyHistogram()
	parts := []*Histogram{NewLatencyHistogram(), NewLatencyHistogram(), NewLatencyHistogram()}
	for i := 0; i < 9999; i++ {
		v := math.Pow(10, -5+3*rng.Float64())
		whole.Observe(v)
		parts[i%3].Observe(v)
	}
	merged := NewLatencyHistogram()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merged moments differ from whole-sample moments")
	}
	// Sum is float addition in a different order: equal up to rounding.
	if rel := math.Abs(merged.Sum()-whole.Sum()) / whole.Sum(); rel > 1e-12 {
		t.Fatalf("merged sum off by %g relative", rel)
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("Quantile(%g): merged %g vs whole %g", q, merged.Quantile(q), whole.Quantile(q))
		}
	}

	other, err := NewHistogram(1e-6, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	other.Observe(1)
	if err := merged.Merge(other); err == nil {
		t.Error("merge of incompatible shapes accepted")
	}
	if err := merged.Merge(nil); err != nil {
		t.Errorf("merge of nil: %v", err)
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.5)
	c := h.Clone()
	c.Observe(0.25)
	if h.N() != 1 || c.N() != 2 {
		t.Fatalf("clone not independent: h.N=%d c.N=%d", h.N(), c.N())
	}
}
