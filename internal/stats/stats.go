// Package stats provides the small statistical toolkit the benchmark
// harness uses to summarize Monte Carlo makespan samples and to compare
// growth rates (the log n vs log log n separation in Table 1 of the paper).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual moments and quantiles of a sample.
type Summary struct {
	N              int
	Mean, Std, Sem float64 // Sem is the standard error of the mean
	Min, Max       float64
	Median, P90    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sum := 0.0
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.Sem = s.Std / math.Sqrt(float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 { return 1.96 * s.Sem }

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3f ±%.3f (n=%d, med=%.3f, p90=%.3f)",
		s.Mean, s.CI95(), s.N, s.Median, s.P90)
}

// Mean is a convenience over Summarize for code that needs only the mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive samples (NaN otherwise).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Fit holds a least-squares line y = A + B*x with its residual error.
type Fit struct {
	A, B float64
	RMSE float64
}

// LinearFit fits y ≈ A + B·x by ordinary least squares.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return Fit{}, fmt.Errorf("stats: degenerate x values")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	var ss float64
	for i := range xs {
		r := ys[i] - (a + b*xs[i])
		ss += r * r
	}
	return Fit{A: a, B: b, RMSE: math.Sqrt(ss / n)}, nil
}

// GrowthComparison fits a measured ratio curve against log₂(n) and
// log₂(log₂(n)) predictors and reports which explains it better.
// It is the quantitative form of "our curve grows like loglog, the
// baseline like log" reported by the t1-* experiments.
type GrowthComparison struct {
	LogFit    Fit // ratio ≈ A + B·log₂ n
	LogLogFit Fit // ratio ≈ A + B·log₂ log₂ n
}

// CompareGrowth fits both predictors to (n, ratio) points.
func CompareGrowth(ns []int, ratios []float64) (GrowthComparison, error) {
	if len(ns) != len(ratios) {
		return GrowthComparison{}, fmt.Errorf("stats: length mismatch")
	}
	logs := make([]float64, len(ns))
	loglogs := make([]float64, len(ns))
	for i, n := range ns {
		if n < 4 {
			return GrowthComparison{}, fmt.Errorf("stats: n=%d too small for loglog fit", n)
		}
		logs[i] = math.Log2(float64(n))
		loglogs[i] = math.Log2(math.Log2(float64(n)))
	}
	lf, err := LinearFit(logs, ratios)
	if err != nil {
		return GrowthComparison{}, err
	}
	llf, err := LinearFit(loglogs, ratios)
	if err != nil {
		return GrowthComparison{}, err
	}
	return GrowthComparison{LogFit: lf, LogLogFit: llf}, nil
}
