package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket log-scale histogram. Bucket i covers the
// half-open value range [lo·2^(i/perOctave), lo·2^((i+1)/perOctave)), so
// the relative quantile error is bounded by 2^(1/perOctave)−1 regardless
// of how skewed the sample is — the property that makes it the right
// shape for service latencies, whose p99 sits orders of magnitude above
// the median. Observations below lo land in bucket 0 and observations at
// or above hi land in the last bucket; exact min/max/sum are tracked on
// the side so the tails of Quantile stay exact.
//
// Two histograms built with the same (lo, hi, perOctave) are mergeable,
// which is how per-worker recorders combine into one report (suuload) and
// how a snapshot is taken without copying bucket-by-bucket under a lock.
//
// A Histogram is not safe for concurrent use; wrap it in a mutex (as
// service.Metrics does) or keep one per goroutine and Merge.
type Histogram struct {
	lo        float64
	perOctave int
	counts    []uint64
	n         uint64
	sum       float64
	min, max  float64
}

// NewHistogram returns a histogram covering [lo, hi) with perOctave
// buckets per doubling. lo and hi must be positive with lo < hi;
// perOctave must be at least 1.
func NewHistogram(lo, hi float64, perOctave int) (*Histogram, error) {
	if !(lo > 0) || !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs 0 < lo < hi, got [%g, %g)", lo, hi)
	}
	if perOctave < 1 {
		return nil, fmt.Errorf("stats: histogram needs perOctave ≥ 1, got %d", perOctave)
	}
	nb := int(math.Ceil(math.Log2(hi/lo) * float64(perOctave)))
	if nb < 1 {
		nb = 1
	}
	return &Histogram{
		lo:        lo,
		perOctave: perOctave,
		counts:    make([]uint64, nb),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}, nil
}

// NewLatencyHistogram returns the histogram shape both suuload and the
// service's /metrics use for request latencies in seconds: 1µs to 100s at
// 16 buckets per octave (≤ 4.4% relative quantile error).
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(1e-6, 100, 16)
	if err != nil {
		panic(err) // constants are valid
	}
	return h
}

// bucket maps a value to its bucket index, clamping under- and overflow
// into the edge buckets.
func (h *Histogram) bucket(v float64) int {
	if v < h.lo {
		return 0
	}
	i := int(math.Log2(v/h.lo) * float64(h.perOctave))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Observe records one value. Non-finite and negative values are ignored:
// a latency can be zero on a coarse clock, never negative, and a single
// ±Inf would poison Sum/Mean forever (and log2-overflow into the wrong
// bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	h.counts[h.bucket(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// Min returns the exact smallest observation (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the exact largest observation (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1): the
// geometric midpoint of the bucket holding the rank-⌈q·n⌉ observation,
// clamped to the exact observed [min, max]. Empty histograms return NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Out-of-range observations are clamped into the edge buckets,
			// where the midpoint could be off by orders of magnitude; report
			// the exact observed extreme instead (conservative in the
			// direction that matters: low quantiles never inflated, high
			// quantiles never understated).
			if i == 0 && h.min < h.lo {
				return h.min
			}
			top := h.lo * math.Pow(2, float64(len(h.counts))/float64(h.perOctave))
			if i == len(h.counts)-1 && h.max >= top {
				return h.max
			}
			v := h.lo * math.Pow(2, (float64(i)+0.5)/float64(h.perOctave))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds o's observations into h. The histograms must have been built
// with identical (lo, hi, perOctave).
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if h.lo != o.lo || h.perOctave != o.perOctave || len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: merging incompatible histograms (lo %g/%g, perOctave %d/%d, buckets %d/%d)",
			h.lo, o.lo, h.perOctave, o.perOctave, len(h.counts), len(o.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	return nil
}

// Clone returns an independent copy (the snapshot primitive: clone under
// the owner's lock, read quantiles outside it).
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// RelativeError returns the worst-case relative quantile error implied by
// the bucket width, 2^(1/perOctave)−1.
func (h *Histogram) RelativeError() float64 {
	return math.Pow(2, 1/float64(h.perOctave)) - 1
}
