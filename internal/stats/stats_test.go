package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %g", s.Std)
	}
	if math.Abs(s.Sem-s.Std/math.Sqrt(5)) > 1e-12 {
		t.Fatalf("sem = %g", s.Sem)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 1}, {0.5, 2}, {0.75, 3}, {1, 4}, {0.125, 0.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean")
	}
	if math.Abs(GeoMean([]float64{1, 4})-2) > 1e-12 {
		t.Fatal("geomean")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("geomean of negative should be NaN")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty should be NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.A-1) > 1e-9 || math.Abs(f.B-2) > 1e-9 || f.RMSE > 1e-9 {
		t.Fatalf("fit %+v", f)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should error")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate xs should error")
	}
}

func TestLinearFitRecoversNoisyLine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*10 - 5
		b := rng.Float64()*4 - 2
		var xs, ys []float64
		for i := 0; i < 50; i++ {
			x := float64(i)
			xs = append(xs, x)
			ys = append(ys, a+b*x+rng.NormFloat64()*0.01)
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.A-a) < 0.05 && math.Abs(fit.B-b) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareGrowthSeparatesLogFromLogLog(t *testing.T) {
	ns := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	logCurve := make([]float64, len(ns))
	loglogCurve := make([]float64, len(ns))
	for i, n := range ns {
		logCurve[i] = 2 * math.Log2(float64(n))
		loglogCurve[i] = 2 * math.Log2(math.Log2(float64(n)))
	}
	gc1, err := CompareGrowth(ns, logCurve)
	if err != nil {
		t.Fatal(err)
	}
	if gc1.LogFit.RMSE > gc1.LogLogFit.RMSE {
		t.Fatalf("log curve should fit log predictor better: %g vs %g",
			gc1.LogFit.RMSE, gc1.LogLogFit.RMSE)
	}
	gc2, err := CompareGrowth(ns, loglogCurve)
	if err != nil {
		t.Fatal(err)
	}
	if gc2.LogLogFit.RMSE > gc2.LogFit.RMSE {
		t.Fatalf("loglog curve should fit loglog predictor better: %g vs %g",
			gc2.LogLogFit.RMSE, gc2.LogFit.RMSE)
	}
}

func TestCompareGrowthErrors(t *testing.T) {
	if _, err := CompareGrowth([]int{2, 8}, []float64{1, 2}); err == nil {
		t.Fatal("n<4 should error")
	}
	if _, err := CompareGrowth([]int{8}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("empty string")
	}
}
