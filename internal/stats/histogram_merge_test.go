package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistogramMergeQuantileBound is the property behind suuload's
// per-worker recorders: split a sample across many histograms, merge
// them, and every interior quantile of the merged histogram stays
// within the documented RelativeError() = 2^(1/perOctave)−1 bound of
// the exact sample quantile — the same guarantee a single histogram
// gives, i.e. merging loses nothing.
func TestHistogramMergeQuantileBound(t *testing.T) {
	quantiles := []float64{0.05, 0.25, 0.5, 0.9, 0.95, 0.99}
	for _, tc := range []struct {
		name    string
		workers int
		n       int
		draw    func(*rand.Rand) float64
	}{
		{"uniform-log", 4, 20000, func(r *rand.Rand) float64 {
			return math.Pow(10, -5+3*r.Float64())
		}},
		{"bimodal", 8, 20000, func(r *rand.Rand) float64 {
			// Cache hits near 100µs, cold solves near 50ms — the shape
			// suud actually produces.
			if r.Float64() < 0.9 {
				return 1e-4 * (1 + 0.2*r.Float64())
			}
			return 5e-2 * (1 + 0.5*r.Float64())
		}},
		{"heavy-tail", 3, 20000, func(r *rand.Rand) float64 {
			// Pareto-ish: p99 orders of magnitude above the median.
			return 1e-4 / math.Pow(r.Float64()+1e-9, 1.5)
		}},
		{"skewed-split", 5, 20000, func(r *rand.Rand) float64 {
			return math.Exp(r.NormFloat64() - 7)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(tc.name))))
			parts := make([]*Histogram, tc.workers)
			for i := range parts {
				parts[i] = NewLatencyHistogram()
			}
			exact := make([]float64, 0, tc.n)
			for i := 0; i < tc.n; i++ {
				v := tc.draw(rng)
				exact = append(exact, v)
				// Uneven split: worker 0 sees half the traffic, mirroring
				// a load generator whose first worker starts early.
				w := 0
				if i%2 == 1 {
					w = 1 + rng.Intn(tc.workers-1)
				}
				parts[w].Observe(v)
			}
			merged := NewLatencyHistogram()
			for _, p := range parts {
				if err := merged.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			if merged.N() != uint64(tc.n) {
				t.Fatalf("merged N = %d, want %d", merged.N(), tc.n)
			}
			sort.Float64s(exact)
			bound := merged.RelativeError()
			for _, q := range quantiles {
				want := Quantile(exact, q)
				got := merged.Quantile(q)
				if want <= 0 {
					continue
				}
				if rel := math.Abs(got-want) / want; rel > bound+1e-12 {
					t.Errorf("Quantile(%g) = %g, exact %g: relative error %.4f exceeds bound %.4f",
						q, got, want, rel, bound)
				}
			}
		})
	}
}

// TestHistogramConcurrentSnapshot exercises the documented concurrency
// discipline under -race: a Histogram is not safe for concurrent use,
// so owners guard it with a mutex and snapshot by Clone-under-lock
// (service.Metrics) or keep one per goroutine and Merge after joining
// (suuload). Both patterns run here against racing readers.
func TestHistogramConcurrentSnapshot(t *testing.T) {
	var mu sync.Mutex
	shared := NewLatencyHistogram()
	const (
		writers   = 4
		perWriter = 5000
	)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for s := 0; s < 2; s++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				snap := shared.Clone()
				mu.Unlock()
				// Reads on the clone need no lock.
				if snap.N() > 0 && !(snap.Quantile(0.5) > 0) {
					t.Error("snapshot median not positive")
					return
				}
			}
		}()
	}

	locals := make([]*Histogram, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		locals[w] = NewLatencyHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				v := math.Pow(10, -5+3*rng.Float64())
				mu.Lock()
				shared.Observe(v)
				mu.Unlock()
				locals[w].Observe(v) // per-goroutine: no lock needed
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// The per-goroutine histograms merge (after the join) into the same
	// distribution the mutex-guarded shared histogram accumulated.
	merged := NewLatencyHistogram()
	for _, l := range locals {
		if err := merged.Merge(l); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != writers*perWriter {
		t.Fatalf("merged N = %d, want %d", merged.N(), writers*perWriter)
	}
	if shared.N() != merged.N() {
		t.Fatalf("shared N = %d, merged N = %d", shared.N(), merged.N())
	}
	if shared.Min() != merged.Min() || shared.Max() != merged.Max() {
		t.Fatal("shared and merged extremes differ")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if shared.Quantile(q) != merged.Quantile(q) {
			t.Fatalf("Quantile(%g): shared %g vs merged %g", q, shared.Quantile(q), merged.Quantile(q))
		}
	}
}
