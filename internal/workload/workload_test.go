package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestGenerateAllFamilies(t *testing.T) {
	families := []struct {
		spec workload
		cls  []dag.Class
	}{
		{workload{Family: "uniform", M: 3, N: 10}, []dag.Class{dag.ClassIndependent}},
		{workload{Family: "skill", M: 3, N: 10}, []dag.Class{dag.ClassIndependent}},
		{workload{Family: "specialist", M: 4, N: 12, Groups: 2}, []dag.Class{dag.ClassIndependent}},
		{workload{Family: "volunteer", M: 5, N: 10}, []dag.Class{dag.ClassIndependent}},
		{workload{Family: "chains", M: 3, N: 12, Z: 3}, []dag.Class{dag.ClassChains}},
		{workload{Family: "chains-skewed", M: 3, N: 12}, []dag.Class{dag.ClassChains, dag.ClassIndependent}},
		{workload{Family: "forest", M: 3, N: 12}, []dag.Class{dag.ClassOutForest, dag.ClassChains, dag.ClassIndependent, dag.ClassMixedForest}},
		{workload{Family: "in-forest", M: 3, N: 12}, []dag.Class{dag.ClassInForest, dag.ClassChains, dag.ClassIndependent, dag.ClassMixedForest}},
		{workload{Family: "mapreduce", M: 3, N: 10, NMap: 6}, []dag.Class{dag.ClassGeneral, dag.ClassOutForest, dag.ClassInForest}},
	}
	for _, f := range families {
		for seed := int64(0); seed < 5; seed++ {
			f.spec.Seed = seed
			ins, err := Generate(Spec(f.spec))
			if err != nil {
				t.Fatalf("%s seed %d: %v", f.spec.Family, seed, err)
			}
			if ins.M != f.spec.M || ins.N != f.spec.N {
				t.Fatalf("%s: got %dx%d", f.spec.Family, ins.M, ins.N)
			}
			got := ins.Class()
			ok := false
			for _, c := range f.cls {
				if got == c {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s seed %d: class %v not in %v", f.spec.Family, seed, got, f.cls)
			}
		}
	}
}

// workload mirrors Spec for readable table literals.
type workload = Spec

func TestCatalog(t *testing.T) {
	specs := Catalog("uniform", 4, 16, 64, 100)
	if len(specs) != 64 {
		t.Fatalf("len = %d", len(specs))
	}
	seen := map[int64]bool{}
	for i, s := range specs {
		if s.Family != "uniform" || s.M != 4 || s.N != 16 {
			t.Fatalf("spec %d: %+v", i, s)
		}
		if s.Seed != 100+int64(i) {
			t.Fatalf("spec %d seed %d, want %d", i, s.Seed, 100+int64(i))
		}
		if seen[s.Seed] {
			t.Fatalf("duplicate seed %d", s.Seed)
		}
		seen[s.Seed] = true
	}
	// Degenerate counts clamp to a single spec.
	if got := Catalog("skill", 2, 4, 0, 7); len(got) != 1 || got[0].Seed != 7 {
		t.Fatalf("count 0: %+v", got)
	}
	// Same flags, same catalog — the instances are byte-identical too.
	again := Catalog("uniform", 4, 16, 64, 100)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatalf("catalog not deterministic at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Spec{Family: "volunteer", M: 4, N: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{Family: "volunteer", M: 4, N: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Q {
		for j := range a.Q[i] {
			if a.Q[i][j] != b.Q[i][j] {
				t.Fatal("same seed must give identical instances")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []Spec{
		{Family: "nope", M: 2, N: 2},
		{Family: "mapreduce", M: 2, N: 4, NMap: 4},
		{Family: "chains", M: 2, N: 4, Z: 9},
		{Family: "specialist", M: 2, N: 4, Groups: -1},
	}
	for _, s := range cases {
		if _, err := Generate(s); err == nil {
			t.Errorf("%+v: want error", s)
		}
	}
}

func TestMapReduceStructure(t *testing.T) {
	ins, err := MapReduce(rand.New(rand.NewSource(1)), 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	layers, err := ins.Prec.Layers()
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 2 || len(layers[0]) != 3 || len(layers[1]) != 2 {
		t.Fatalf("layers %v", layers)
	}
	if ins.Prec.Edges() != 6 {
		t.Fatalf("edges %d, want 6 (complete bipartite)", ins.Prec.Edges())
	}
}

func TestForestRespectsbranching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins, err := Forest(rng, 2, 20, 2, true, 0.2, 0.8)
		if err != nil {
			return false
		}
		for v := 0; v < ins.N; v++ {
			if ins.Prec.OutDegree(v) > 2 {
				// The generator retries but may rarely exceed; it must
				// still be a forest.
				if ins.Prec.InDegree(v) > 1 {
					return false
				}
			}
			if ins.Prec.InDegree(v) > 1 {
				t.Logf("seed %d: vertex %d has indegree %d", seed, v, ins.Prec.InDegree(v))
				return false
			}
		}
		return ins.Class().IsForest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClampQ(t *testing.T) {
	if clampQ(-1) < 1e-7 || clampQ(2) > 0.9991 {
		t.Fatal("clamp out of range")
	}
	if clampQ(0.5) != 0.5 {
		t.Fatal("clamp should pass through interior values")
	}
}

func TestChainsSkewedCoversAllJobs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ins, err := ChainsSkewed(rand.New(rand.NewSource(seed)), 3, 17)
		if err != nil {
			t.Fatal(err)
		}
		chains, err := ins.Chains()
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, c := range chains {
			count += len(c)
		}
		if count != 17 {
			t.Fatalf("chains cover %d of 17 jobs", count)
		}
	}
}
