// Package workload generates the SUU instance families the experiments
// run on. The families mirror the paper's motivating settings: uniform
// unreliable machines (volunteer computing à la SETI@home), machine
// skill × job hardness products, specialist machines (where LP routing
// matters most), disjoint chains, random directed forests, and MapReduce's
// complete-bipartite two-phase structure. All generators are deterministic
// given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/model"
)

// clampQ keeps failure probabilities inside a numerically comfortable range:
// q=1 would make a machine useless for a job (allowed, used by specialists),
// q too close to 0 is clamped by the model anyway.
func clampQ(q float64) float64 {
	if q < 1e-6 {
		return 1e-6
	}
	if q > 0.999 {
		return 0.999
	}
	return q
}

// IndependentUniform draws every q_ij uniformly from [qlo, qhi].
func IndependentUniform(rng *rand.Rand, m, n int, qlo, qhi float64) (*model.Instance, error) {
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = clampQ(qlo + (qhi-qlo)*rng.Float64())
		}
	}
	return model.New(m, n, q, nil)
}

// IndependentSkill gives machine i a power p_i and job j a hardness h_j,
// with ℓ_ij = p_i/h_j (so q_ij = 2^(−p_i/h_j)): a product structure where
// both machine choice and job difficulty matter. Powers are log-uniform in
// [0.25, 4], hardness log-uniform in [0.5, 8].
func IndependentSkill(rng *rand.Rand, m, n int) (*model.Instance, error) {
	p := make([]float64, m)
	for i := range p {
		p[i] = math.Pow(2, rng.Float64()*4-2) // 0.25 .. 4
	}
	h := make([]float64, n)
	for j := range h {
		h[j] = math.Pow(2, rng.Float64()*4-1) // 0.5 .. 8
	}
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = clampQ(math.Pow(2, -p[i]/h[j]))
		}
	}
	return model.New(m, n, q, nil)
}

// IndependentSpecialist partitions machines and jobs into groups; a machine
// is effective (ℓ ≈ 1..2) on its own group's jobs and nearly useless
// (q = 0.98) elsewhere. This is the family where LP-based routing beats
// oblivious spreading by the widest margin.
func IndependentSpecialist(rng *rand.Rand, m, n, groups int) (*model.Instance, error) {
	if groups < 1 {
		return nil, fmt.Errorf("workload: groups = %d", groups)
	}
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		gi := i % groups
		for j := range q[i] {
			if j%groups == gi {
				q[i][j] = clampQ(math.Pow(2, -(1 + rng.Float64()))) // ℓ in [1,2]
			} else {
				q[i][j] = 0.98
			}
		}
	}
	return model.New(m, n, q, nil)
}

// IndependentSpecialistDegenerate is the specialist family with exactly
// tied rates: a machine processes its own group's jobs at precisely ℓ = 1
// (q = 1/2) and everything else at q = 0.98. Every efficient (machine, job)
// pair is interchangeable, so LP1's optimal face is high-dimensional and
// simplex bases are massively degenerate — the stress test for ratio-test
// tie-breaking, candidate pricing, warm starts, and LU refactorization
// (ties mean near-singular pivot choices are always one misstep away).
func IndependentSpecialistDegenerate(m, n, groups int) (*model.Instance, error) {
	if groups < 1 {
		return nil, fmt.Errorf("workload: groups = %d", groups)
	}
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		gi := i % groups
		for j := range q[i] {
			if j%groups == gi {
				q[i][j] = 0.5 // ℓ = exactly 1
			} else {
				q[i][j] = 0.98
			}
		}
	}
	return model.New(m, n, q, nil)
}

// Volunteer models a volunteer pool: machine powers are heavy-tailed (a few
// fast hosts, many slow ones), job difficulties moderate; ℓ_ij = p_i/h_j.
func Volunteer(rng *rand.Rand, m, n int) (*model.Instance, error) {
	p := make([]float64, m)
	for i := range p {
		// Pareto-ish: p = 0.3 / U^0.7, capped.
		u := rng.Float64()
		if u < 1e-3 {
			u = 1e-3
		}
		p[i] = math.Min(0.3/math.Pow(u, 0.7), 8)
	}
	h := make([]float64, n)
	for j := range h {
		h[j] = 0.5 + 2.5*rng.Float64()
	}
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = clampQ(math.Pow(2, -p[i]/h[j]))
		}
	}
	return model.New(m, n, q, nil)
}

// Chains builds z disjoint chains over n jobs (lengths as even as possible)
// with uniform q in [qlo, qhi].
func Chains(rng *rand.Rand, m, n, z int, qlo, qhi float64) (*model.Instance, error) {
	if z < 1 || z > n {
		return nil, fmt.Errorf("workload: %d chains for %d jobs", z, n)
	}
	g := dag.New(n)
	// Deal jobs round-robin into chains, then link consecutive members.
	members := make([][]int, z)
	for j := 0; j < n; j++ {
		members[j%z] = append(members[j%z], j)
	}
	for _, ch := range members {
		for k := 1; k < len(ch); k++ {
			g.MustEdge(ch[k-1], ch[k])
		}
	}
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = clampQ(qlo + (qhi-qlo)*rng.Float64())
		}
	}
	return model.New(m, n, q, g)
}

// ChainsSkewed builds chains with geometric length skew (a few long chains,
// many short ones) and skill-structured probabilities — the adversarial
// case for congestion.
func ChainsSkewed(rng *rand.Rand, m, n int) (*model.Instance, error) {
	g := dag.New(n)
	j := 0
	prev := -1
	chainLen := 0
	target := 1
	for j < n {
		if chainLen >= target {
			prev = -1
			chainLen = 0
			target = 1 + int(rng.ExpFloat64()*float64(n)/8)
		}
		if prev >= 0 {
			g.MustEdge(prev, j)
		}
		prev = j
		chainLen++
		j++
	}
	skill, err := IndependentSkill(rng, m, n)
	if err != nil {
		return nil, err
	}
	return model.New(m, n, skill.Q, g)
}

// ChainsHard builds z chains whose head jobs are specialist-hard:
// processable at a useful rate on a single random machine (ℓ ∈ [0.06,
// 0.12]) and nearly unprocessable elsewhere (q = 0.995), while the rest
// are easy everywhere (ℓ ∈ [0.7, 1.5]). Hard jobs have LP2 lengths
// d_j ≈ 1/ℓ ≫ γ, so SUU-C classifies them long; because they sit at chain
// heads, they all pause in the first segment and form one large long-job
// batch — the regime where the choice of long-job subroutine (SEM vs OBL)
// decides the approximation factor.
func ChainsHard(rng *rand.Rand, m, n, z int, hardFrac float64) (*model.Instance, error) {
	base, err := Chains(rng, m, n, z, 0.3, 0.7)
	if err != nil {
		return nil, err
	}
	chains, err := base.Chains()
	if err != nil {
		return nil, err
	}
	budget := int(hardFrac*float64(n) + 0.5)
	hard := make([]bool, n)
	// Heads first, then second positions, until the budget is spent.
	for pos := 0; budget > 0; pos++ {
		placed := false
		for _, c := range chains {
			if pos < len(c) && budget > 0 {
				hard[c[pos]] = true
				budget--
				placed = true
			}
		}
		if !placed {
			break
		}
	}
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		if hard[j] {
			fast := rng.Intn(m)
			l := 0.06 + 0.06*rng.Float64()
			for i := 0; i < m; i++ {
				if i == fast {
					q[i][j] = math.Pow(2, -l)
				} else {
					q[i][j] = 0.995
				}
			}
		} else {
			for i := 0; i < m; i++ {
				l := 0.7 + 0.8*rng.Float64()
				q[i][j] = math.Pow(2, -l)
			}
		}
	}
	return model.New(m, n, q, base.Prec)
}

// Forest builds a random directed forest: trees of random sizes with
// branching factor up to branch; orientation is out-trees when out is true,
// in-trees otherwise. Probabilities are uniform in [qlo, qhi].
func Forest(rng *rand.Rand, m, n, branch int, out bool, qlo, qhi float64) (*model.Instance, error) {
	if branch < 1 {
		return nil, fmt.Errorf("workload: branch = %d", branch)
	}
	g := dag.New(n)
	start := 0
	for start < n {
		size := 1 + rng.Intn(n-start)
		// Attach vertex v to a random earlier vertex in the same tree with
		// fewer than branch children.
		for v := start + 1; v < start+size; v++ {
			parent := start + rng.Intn(v-start)
			tries := 0
			for g.OutDegree(parent) >= branch && tries < 2*size {
				parent = start + rng.Intn(v-start)
				tries++
			}
			if out {
				g.MustEdge(parent, v)
			} else {
				g.MustEdge(v, parent)
			}
		}
		start += size
	}
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = clampQ(qlo + (qhi-qlo)*rng.Float64())
		}
	}
	return model.New(m, n, q, g)
}

// MapReduce builds the paper's introduction example: nMap map jobs, every
// one preceding every one of nReduce reduce jobs (a complete bipartite
// DAG — two phases of independent jobs). Probabilities come from the
// volunteer model.
func MapReduce(rng *rand.Rand, m, nMap, nReduce int) (*model.Instance, error) {
	n := nMap + nReduce
	g := dag.New(n)
	for a := 0; a < nMap; a++ {
		for b := 0; b < nReduce; b++ {
			g.MustEdge(a, nMap+b)
		}
	}
	vol, err := Volunteer(rng, m, n)
	if err != nil {
		return nil, err
	}
	return model.New(m, n, vol.Q, g)
}

// Table1LargeCells returns the large-instance Table-1 cells — n=64/m=16
// and n=128/m=32 — where the LP layer dominates the profile (the full-set
// LP1 has m·n+1 ≈ 1k–4k variables). They extend the paper's n≤16-scale
// evaluation to the sizes the reusable-workspace/warm-start LP engine is
// built for; the t1-large experiments and the suubench -scale-large flag
// run them. Callers fill in Seed.
func Table1LargeCells() []Spec {
	return []Spec{
		{Family: "uniform", M: 16, N: 64},
		{Family: "uniform", M: 32, N: 128},
	}
}

// Table1XLargeCells returns the n=256/m=64 frontier the sparse revised
// simplex LP engine opened: the full-set LP1 has m·n+1 ≈ 16k variables,
// far past what the dense tableau could turn around. The degenerate
// specialist cell's exactly-tied rates produce the worst-case degenerate
// bases, stress-testing warm starts and LU refactorization at scale. Run
// by the t1-xlarge experiment (suubench -scale-large). Callers fill in
// Seed.
func Table1XLargeCells() []Spec {
	return []Spec{
		{Family: "uniform", M: 64, N: 256},
		{Family: "specialist-degen", M: 64, N: 256, Groups: 8},
	}
}

// Catalog builds a deterministic catalog of count specs for one family
// and size: spec i is seeded seed+i, so two runs with the same flags
// request byte-identical instances. The load harness's popularity
// distribution picks over this catalog by index, which makes the
// catalog order part of the workload contract.
func Catalog(family string, m, n, count int, seed int64) []Spec {
	if count < 1 {
		count = 1
	}
	specs := make([]Spec, count)
	for i := range specs {
		specs[i] = Spec{Family: family, M: m, N: n, Seed: seed + int64(i)}
	}
	return specs
}

// Spec is a declarative instance request, used by the CLI tools and the
// benchmark harness.
type Spec struct {
	Family string `json:"family"` // uniform | skill | specialist | specialist-degen | volunteer | chains | chains-skewed | forest | in-forest | mapreduce
	M      int    `json:"m"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`
	// Family-specific knobs (zero values get sensible defaults).
	QLo    float64 `json:"qlo,omitempty"`
	QHi    float64 `json:"qhi,omitempty"`
	Groups int     `json:"groups,omitempty"` // specialist
	Z      int     `json:"z,omitempty"`      // chains
	Branch int     `json:"branch,omitempty"` // forest
	NMap   int     `json:"nmap,omitempty"`   // mapreduce
}

// Generate builds the instance described by the spec.
func Generate(spec Spec) (*model.Instance, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	qlo, qhi := spec.QLo, spec.QHi
	if qlo == 0 && qhi == 0 {
		qlo, qhi = 0.1, 0.9
	}
	switch spec.Family {
	case "uniform", "":
		return IndependentUniform(rng, spec.M, spec.N, qlo, qhi)
	case "skill":
		return IndependentSkill(rng, spec.M, spec.N)
	case "specialist":
		groups := spec.Groups
		if groups == 0 {
			groups = 4
		}
		return IndependentSpecialist(rng, spec.M, spec.N, groups)
	case "specialist-degen":
		groups := spec.Groups
		if groups == 0 {
			groups = 4
		}
		return IndependentSpecialistDegenerate(spec.M, spec.N, groups)
	case "volunteer":
		return Volunteer(rng, spec.M, spec.N)
	case "chains":
		z := spec.Z
		if z == 0 {
			z = (spec.N + 3) / 4
		}
		return Chains(rng, spec.M, spec.N, z, qlo, qhi)
	case "chains-skewed":
		return ChainsSkewed(rng, spec.M, spec.N)
	case "chains-hard":
		z := spec.Z
		if z == 0 {
			z = (spec.N + 5) / 6
		}
		return ChainsHard(rng, spec.M, spec.N, z, 0.15)
	case "forest":
		branch := spec.Branch
		if branch == 0 {
			branch = 3
		}
		return Forest(rng, spec.M, spec.N, branch, true, qlo, qhi)
	case "in-forest":
		branch := spec.Branch
		if branch == 0 {
			branch = 3
		}
		return Forest(rng, spec.M, spec.N, branch, false, qlo, qhi)
	case "mapreduce":
		nMap := spec.NMap
		if nMap == 0 {
			nMap = spec.N / 2
		}
		if nMap <= 0 || nMap >= spec.N {
			return nil, fmt.Errorf("workload: mapreduce needs 0 < nmap < n, got %d of %d", nMap, spec.N)
		}
		return MapReduce(rng, spec.M, nMap, spec.N-nMap)
	default:
		return nil, fmt.Errorf("workload: unknown family %q", spec.Family)
	}
}
