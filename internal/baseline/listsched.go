package baseline

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/sched"
)

// maxListSteps bounds one job's run in a list schedule. The smallest
// positive log failure a float64 q < 1 can produce is ~1.6e-16, so a 0.5
// mass target needs at most ~3.2e15 steps — comfortably inside the bound;
// the clamp only guards arithmetic against future looser inputs.
const maxListSteps = int64(1) << 55

// ListSchedule builds an LP-free static assignment by greedy list
// scheduling over q: each job is placed wholly on one machine, jobs in
// descending order of their best-machine work requirement (LPT), each on
// the machine that finishes it earliest (current load plus the steps this
// machine needs to push the job's log mass to target). It is the cheap
// fallback the planning service serves under brownout — O(n·m) with one
// sort, no LP, no workspace — and it keeps the invariants the paper's
// schedules are stated in: every job is assigned at least one step and
// reaches the target log mass on its single machine (so one full pass
// completes each job with probability ≥ 1 − 2^−target). It carries no
// optimality certificate: the LP-rounded plan can be a factor m shorter.
//
// target must be positive; the service passes LP1's default 1/2.
func ListSchedule(ins *model.Instance, target float64) *sched.Assignment {
	asn := sched.NewAssignment(ins.M, ins.N)
	// steps[j] is the job's requirement on its best machine — the LPT
	// ordering key; order is the job permutation, longest first, ties by
	// index so the schedule is deterministic.
	best := make([]int64, ins.N)
	order := make([]int, ins.N)
	for j := 0; j < ins.N; j++ {
		order[j] = j
		best[j] = stepsFor(ins.L[ins.BestMachine(j)][j], target)
	}
	sort.SliceStable(order, func(a, b int) bool { return best[order[a]] > best[order[b]] })

	load := make([]int64, ins.M)
	for _, j := range order {
		pick, pickSteps, pickDone := -1, int64(0), int64(math.MaxInt64)
		for i := 0; i < ins.M; i++ {
			if ins.L[i][j] <= 0 {
				continue // this machine never completes job j
			}
			s := stepsFor(ins.L[i][j], target)
			if done := load[i] + s; done < pickDone || (done == pickDone && s < pickSteps) {
				pick, pickSteps, pickDone = i, s, done
			}
		}
		// model.New guarantees every job one machine with q < 1, so pick
		// is always set.
		asn.X[pick][j] = pickSteps
		load[pick] += pickSteps
	}
	return asn
}

// stepsFor returns the steps needed on a machine with log failure ell to
// accumulate the target log mass: ⌈target/ell⌉, at least 1.
func stepsFor(ell, target float64) int64 {
	s := int64(math.Ceil(target / ell))
	if s < 1 {
		return 1
	}
	if s > maxListSteps {
		return maxListSteps
	}
	return s
}
