// Package baseline implements the comparison schedulers for the paper's
// Table 1 experiments:
//
//   - Greedy: a Lin–Rajaraman-style greedy that levels assigned log mass
//     across remaining jobs each step — the O(log n)-approximation family
//     the paper improves on for independent jobs,
//   - Sequential: every machine on one job at a time — the trivial
//     O(n)-approximation the paper uses as an endgame,
//   - EligibleSplit: machines split evenly across currently eligible jobs —
//     a natural work-conserving heuristic for any precedence class.
//
// All baselines observe only completions (never hidden thresholds), exactly
// like the paper's schedules.
package baseline

import (
	"fmt"

	"repro/internal/sim"
)

// maxSteps bounds step-driven baselines; hitting it indicates a stalled
// policy (bug), not bad luck.
const maxSteps = 50_000_000

// Greedy is the Lin–Rajaraman-style greedy for independent jobs: at every
// step each machine works on the remaining job with the smallest log mass
// assigned so far (among jobs it can help), leveling the minimum mass —
// the strategy behind their O(log n)-approximation. Since schedules cannot
// see accrued thresholds, the deficit bookkeeping uses assigned mass, which
// the policy knows exactly.
type Greedy struct{}

// Name implements sim.Policy.
func (Greedy) Name() string { return "lr-greedy" }

// Run completes all jobs of an independent-jobs instance.
func (g Greedy) Run(w *sim.World) error {
	ins := w.Instance()
	if ins.Prec != nil && ins.Prec.Edges() > 0 {
		return fmt.Errorf("baseline: %s requires independent jobs", g.Name())
	}
	deficit := make([]float64, ins.N)
	assign := make([]int, ins.M)
	rem := make([]int, 0, ins.N)
	for steps := 0; !w.AllDone(); steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("baseline: %s stalled after %d steps", g.Name(), steps)
		}
		rem = w.AppendRemaining(rem[:0])
		for i := 0; i < ins.M; i++ {
			best, bestDeficit := -1, 0.0
			for _, j := range rem {
				if ins.L[i][j] <= 0 {
					continue
				}
				if best < 0 || deficit[j] < bestDeficit {
					best, bestDeficit = j, deficit[j]
				}
			}
			assign[i] = best
			if best >= 0 {
				deficit[best] += ins.L[i][best]
			}
		}
		if _, err := w.Step(assign); err != nil {
			return err
		}
	}
	return nil
}

// Sequential runs eligible jobs one at a time with every machine — the
// trivial O(n)-approximation. It handles any precedence class.
type Sequential struct{}

// Name implements sim.Policy.
func (Sequential) Name() string { return "sequential" }

// Run completes all jobs one at a time in eligibility order.
func (s Sequential) Run(w *sim.World) error {
	elig := make([]int, 0, w.Instance().N)
	for steps := 0; !w.AllDone(); steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("baseline: %s stalled", s.Name())
		}
		elig = w.AppendEligible(elig[:0])
		if len(elig) == 0 {
			return fmt.Errorf("baseline: %s: no eligible jobs with %d remaining",
				s.Name(), w.NumRemaining())
		}
		for _, j := range elig {
			if _, err := w.SoloAll(j); err != nil {
				return err
			}
		}
	}
	return nil
}

// GreedyPrec generalizes Greedy to arbitrary precedence constraints: each
// step every machine works the *eligible* job with the least log mass
// assigned since it became eligible. The paper's conclusion asks whether
// such a greedy heuristic can match the proven bounds; this policy is the
// experimental answer's subject (no guarantee is known, and adversarial
// instances exist, but it is strong on benign ones).
type GreedyPrec struct{}

// Name implements sim.Policy.
func (GreedyPrec) Name() string { return "greedy-prec" }

// Run completes all jobs of any acyclic instance.
func (g GreedyPrec) Run(w *sim.World) error {
	ins := w.Instance()
	deficit := make([]float64, ins.N)
	assign := make([]int, ins.M)
	elig := make([]int, 0, ins.N)
	for steps := 0; !w.AllDone(); steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("baseline: %s stalled after %d steps", g.Name(), steps)
		}
		elig = w.AppendEligible(elig[:0])
		if len(elig) == 0 {
			return fmt.Errorf("baseline: %s: no eligible jobs with %d remaining",
				g.Name(), w.NumRemaining())
		}
		for i := 0; i < ins.M; i++ {
			best, bestDeficit := -1, 0.0
			for _, j := range elig {
				if ins.L[i][j] <= 0 {
					continue
				}
				if best < 0 || deficit[j] < bestDeficit {
					best, bestDeficit = j, deficit[j]
				}
			}
			assign[i] = best
			if best >= 0 {
				deficit[best] += ins.L[i][best]
			}
		}
		if _, err := w.Step(assign); err != nil {
			return err
		}
	}
	return nil
}

// EligibleSplit splits the machines evenly across the currently eligible
// jobs every step, rotating the pairing so every machine eventually touches
// every job (progress is guaranteed even when some machine is useless for
// some job). It is the natural work-conserving heuristic for any DAG and
// the "eager" chains baseline.
type EligibleSplit struct{}

// Name implements sim.Policy.
func (EligibleSplit) Name() string { return "eligible-split" }

// Run completes all jobs, one unit step at a time.
func (e EligibleSplit) Run(w *sim.World) error {
	ins := w.Instance()
	assign := make([]int, ins.M)
	elig := make([]int, 0, ins.N)
	for steps := 0; !w.AllDone(); steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("baseline: %s stalled", e.Name())
		}
		elig = w.AppendEligible(elig[:0])
		if len(elig) == 0 {
			return fmt.Errorf("baseline: %s: no eligible jobs with %d remaining",
				e.Name(), w.NumRemaining())
		}
		for i := 0; i < ins.M; i++ {
			assign[i] = elig[(i+steps)%len(elig)]
		}
		if _, err := w.Step(assign); err != nil {
			return err
		}
	}
	return nil
}
