package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestGreedyCompletes(t *testing.T) {
	ins, err := workload.IndependentUniform(rand.New(rand.NewSource(1)), 4, 12, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.MonteCarlo(ins, Greedy{}, 10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Mean <= 0 {
		t.Fatal("nonpositive makespan")
	}
}

func TestGreedyRejectsPrecedence(t *testing.T) {
	ins, err := workload.Chains(rand.New(rand.NewSource(2)), 2, 6, 2, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.NewWorld(ins, rand.New(rand.NewSource(1)))
	if err := (Greedy{}).Run(w); err == nil {
		t.Fatal("greedy must reject precedence")
	}
}

func TestGreedySkipsUselessMachines(t *testing.T) {
	// Machine 1 is useless for job 1 (q=1): greedy must still finish by
	// routing machine 0 there eventually.
	q := [][]float64{
		{0.5, 0.5},
		{0.5, 1.0},
	}
	ins, err := model.New(2, 2, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.MonteCarlo(ins, Greedy{}, 50, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Summary.Mean) {
		t.Fatal("NaN mean")
	}
}

func TestSequentialWorksOnAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	specs := []workload.Spec{
		{Family: "uniform", M: 3, N: 8, Seed: 1},
		{Family: "chains", M: 3, N: 9, Z: 3, Seed: 2},
		{Family: "forest", M: 3, N: 10, Seed: 3},
		{Family: "mapreduce", M: 3, N: 8, NMap: 5, Seed: 4},
	}
	_ = rng
	for _, spec := range specs {
		ins, err := workload.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Family, err)
		}
		for _, p := range []sim.Policy{Sequential{}, EligibleSplit{}} {
			res, err := sim.MonteCarlo(ins, p, 5, 11, 0)
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), spec.Family, err)
			}
			if res.Summary.Mean < 1 {
				t.Fatalf("%s on %s: mean %g", p.Name(), spec.Family, res.Summary.Mean)
			}
		}
	}
}

func TestNames(t *testing.T) {
	if (Greedy{}).Name() == "" || (Sequential{}).Name() == "" || (EligibleSplit{}).Name() == "" {
		t.Fatal("names must be nonempty")
	}
}

func TestGreedyPrecAllClasses(t *testing.T) {
	specs := []workload.Spec{
		{Family: "uniform", M: 3, N: 8, Seed: 21},
		{Family: "chains", M: 3, N: 9, Z: 3, Seed: 22},
		{Family: "forest", M: 3, N: 10, Seed: 23},
		{Family: "mapreduce", M: 3, N: 8, NMap: 5, Seed: 24},
	}
	for _, spec := range specs {
		ins, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.MonteCarlo(ins, GreedyPrec{}, 10, 5, 0)
		if err != nil {
			t.Fatalf("%s: %v", spec.Family, err)
		}
		if res.Summary.Mean < 1 {
			t.Fatalf("%s: mean %g", spec.Family, res.Summary.Mean)
		}
	}
}

// TestGreedyPrecMatchesGreedyOnIndependent: with no precedence the two
// greedies are the same algorithm and must produce identical runs.
func TestGreedyPrecMatchesGreedyOnIndependent(t *testing.T) {
	ins, err := workload.IndependentUniform(rand.New(rand.NewSource(31)), 3, 9, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.MonteCarlo(ins, Greedy{}, 20, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.MonteCarlo(ins, GreedyPrec{}, 20, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Makespans {
		if a.Makespans[i] != b.Makespans[i] {
			t.Fatalf("trial %d: %g vs %g", i, a.Makespans[i], b.Makespans[i])
		}
	}
}
