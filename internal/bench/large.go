package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "t1-large",
		What:  "large independent cells (n=64/m=16, n=128/m=32): SEM on the workspace + warm-start LP engine; ratio to LP lower bound",
		Heavy: true,
		Run:   func(cfg Config) (*Table, error) { return tableLarge(cfg, false) },
	})
	register(Experiment{
		ID:    "t1-large-cold",
		What:  "baseline arm of t1-large: identical cells and trials on the cold dense LP stack — fresh tableau per solve, no warm starts, no workspaces, no cross-trial memoization",
		Heavy: true,
		Run:   func(cfg Config) (*Table, error) { return tableLarge(cfg, true) },
	})
}

// tableLarge runs SEM over the large Table-1 cells. The cold arm strips
// the whole structure-aware LP engine back to what a naive pipeline does:
// every LP1 is solved cold on a freshly allocated dense tableau, every
// trial re-solves its round 1 from scratch (Cache nil), and nothing is
// warm-started. Comparing the arms' measured records (suubench -json)
// prices the engine — workspace reuse + memoized round 1 + warm-started
// round re-solves — on the cells where the LP dominates.
func tableLarge(cfg Config, cold bool) (*Table, error) {
	engine := "workspace+warm"
	if cold {
		engine = "cold dense"
	}
	t := &Table{
		ID:     "t1-large",
		Title:  fmt.Sprintf("large independent cells, %s LP engine: E[T]/LB, lower is better", engine),
		Header: []string{"family", "n", "m", "LB", "sem(ours)"},
	}
	if cold {
		t.ID = "t1-large-cold"
	}
	trials := cfg.trials(20)
	cells := workload.Table1LargeCells()
	cellIdx := make([]int, len(cells))
	for i := range cellIdx {
		cellIdx[i] = i
	}
	for _, ci := range cfg.sizes(cellIdx) {
		spec := cells[ci]
		spec.Seed = cfg.Seed + int64(spec.N)
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		lb, err := lowerBoundIndep(ins)
		if err != nil {
			return nil, err
		}
		sem := &core.SEM{ColdLP: cold}
		if !cold {
			sem.Cache = rounding.NewCache()
		}
		res, err := sim.MonteCarlo(ins, sem, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("sem (%s) on n=%d: %w", engine, spec.N, err)
		}
		t.Rows = append(t.Rows, []string{
			spec.Family, fmt.Sprint(spec.N), fmt.Sprint(spec.M), f1(lb),
			ratioCell(res.Summary.Mean, res.Summary.CI95(), lb),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("LP engine: %s; %d trials per cell", engine, trials),
		"both arms run identical trials — compare the records' ns/allocs to isolate the LP engine")
	return t, nil
}
