package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "t1-large",
		What:  "large independent cells (n=64/m=16, n=128/m=32): SEM on the workspace + warm-start LP engine; ratio to LP lower bound",
		Heavy: true,
		Run:   func(cfg Config) (*Table, error) { return tableLarge(cfg, false) },
	})
	register(Experiment{
		ID:    "t1-large-cold",
		What:  "baseline arm of t1-large: identical cells and trials on the cold LP stack — fresh solve every time, no warm starts, no workspaces, no cross-trial memoization",
		Heavy: true,
		Run:   func(cfg Config) (*Table, error) { return tableLarge(cfg, true) },
	})
	register(Experiment{
		ID:    "t1-xlarge",
		What:  "n=256/m=64 cells (uniform + degenerate specialist): the frontier the sparse revised simplex opened — the full-set LP1 has ~16k variables, beyond the dense tableau",
		Heavy: true,
		Run:   tableXLarge,
	})
}

// tableXLarge runs SEM over the n=256/m=64 cells on the full sparse LP
// stack (workspaces, warm chains, memoization). There is no cold-dense
// baseline arm at this scale: the dense tableau for the full-set LP1 is
// 320 rows × ~17k columns and a cold solve takes minutes, which is exactly
// the wall the sparse engine removes. The degenerate specialist cell's
// exactly-tied rates produce the worst-case degenerate bases — the stress
// test for candidate pricing, warm starts, and LU refactorization.
func tableXLarge(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "t1-xlarge",
		Title:  "xlarge independent cells (n=256/m=64), sparse revised simplex LP engine: E[T]/LB, lower is better",
		Header: []string{"family", "n", "m", "LB", "sem(ours)"},
	}
	trials := cfg.trials(10)
	cells := workload.Table1XLargeCells()
	cellIdx := make([]int, len(cells))
	for i := range cellIdx {
		cellIdx[i] = i
	}
	for _, ci := range cfg.sizes(cellIdx) {
		spec := cells[ci]
		spec.Seed = cfg.Seed + int64(spec.N) + int64(ci)
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		lb, err := lowerBoundIndep(ins)
		if err != nil {
			return nil, err
		}
		sem := &core.SEM{Cache: rounding.NewCache()}
		res, err := sim.MonteCarlo(ins, sem, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("sem (%s) on n=%d: %w", spec.Family, spec.N, err)
		}
		t.Rows = append(t.Rows, []string{
			spec.Family, fmt.Sprint(spec.N), fmt.Sprint(spec.M), f1(lb),
			ratioCell(res.Summary.Mean, res.Summary.CI95(), lb),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per cell; sparse revised simplex LP engine (LU basis, candidate pricing, warm chains)", trials))
	return t, nil
}

// tableLarge runs SEM over the large Table-1 cells. The cold arm strips
// the structure-aware layers off the LP engine back to what a naive
// pipeline does: every LP1 is solved cold on a fresh workspace, every
// trial re-solves its round 1 from scratch (Cache nil), and nothing is
// warm-started. Comparing the arms' measured records (suubench -json)
// prices those layers — workspace reuse + memoized round 1 + warm-started
// round re-solves — on the cells where the LP dominates; both arms run
// the same (sparse revised simplex) solver, so the engines themselves are
// priced separately by BenchmarkLP1Solve's differential arms.
func tableLarge(cfg Config, cold bool) (*Table, error) {
	engine := "workspace+warm"
	if cold {
		engine = "cold"
	}
	t := &Table{
		ID:     "t1-large",
		Title:  fmt.Sprintf("large independent cells, %s LP engine: E[T]/LB, lower is better", engine),
		Header: []string{"family", "n", "m", "LB", "sem(ours)"},
	}
	if cold {
		t.ID = "t1-large-cold"
	}
	trials := cfg.trials(20)
	cells := workload.Table1LargeCells()
	cellIdx := make([]int, len(cells))
	for i := range cellIdx {
		cellIdx[i] = i
	}
	for _, ci := range cfg.sizes(cellIdx) {
		spec := cells[ci]
		spec.Seed = cfg.Seed + int64(spec.N)
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		lb, err := lowerBoundIndep(ins)
		if err != nil {
			return nil, err
		}
		sem := &core.SEM{ColdLP: cold}
		if !cold {
			sem.Cache = rounding.NewCache()
		}
		res, err := sim.MonteCarlo(ins, sem, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("sem (%s) on n=%d: %w", engine, spec.N, err)
		}
		t.Rows = append(t.Rows, []string{
			spec.Family, fmt.Sprint(spec.N), fmt.Sprint(spec.M), f1(lb),
			ratioCell(res.Summary.Mean, res.Summary.CI95(), lb),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("LP engine: %s; %d trials per cell", engine, trials),
		"both arms run identical trials — compare the records' ns/allocs to isolate the LP engine")
	return t, nil
}
