package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/stoch"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:   "f-exact",
		What: "true approximation ratios vs exact DP optimum on small instances (Malewicz-style ground truth)",
		Run:  figExact,
	})
	register(Experiment{
		ID:   "a-equiv",
		What: "Theorem 10 validation: SUU (per-step coin flips) vs SUU* (thresholds) makespan distributions agree",
		Run:  ablEquivalence,
	})
	register(Experiment{
		ID:   "f-stoch",
		What: "Appendix C: STC-I vs fastest-machine-sequential on R|pmtn,p~exp|E[Cmax]; ratio to LL lower bound",
		Run:  figStoch,
	})
	register(Experiment{
		ID:   "f-batch",
		What: "long-job batch component: SEM vs OBL on specialist batches of growing size — the log/loglog separation SUU-C inherits, with its crossover",
		Run:  figBatch,
	})
	register(Experiment{
		ID:   "a-solver",
		What: "substrate ablation: exact simplex vs (1+eps) multiplicative-weights solver for the LP1 covering program (value and wall time)",
		Run:  ablSolver,
	})
}

// ablSolver compares the two LP engines on LP1-shaped covering programs:
// the exact dense simplex the pipeline uses, and the width-free MWU
// approximation. The MWU value is certified feasible at (1+eps) load, so
// values within that band mean either engine could drive the rounding.
func ablSolver(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "a-solver",
		Title:  "LP engines on LP1 covering programs (eps = 0.1)",
		Header: []string{"n", "m", "t* simplex", "t mwu", "mwu/t*", "simplex ms", "mwu ms"},
	}
	for _, n := range cfg.sizes([]int{32, 64, 128, 192}) {
		// m fixed: the simplex's dense tableau scales with n·m columns and
		// n+m rows, and beyond ~128×32 a single exact solve takes minutes —
		// that cliff is exactly the point of this ablation, shown once at
		// the largest size rather than repeated.
		m := 16
		ins, err := workload.Generate(workload.Spec{Family: "skill", M: m, N: n, Seed: cfg.Seed + int64(n)})
		if err != nil {
			return nil, err
		}
		jobs := make([]int, n)
		cover := &lp.CoverInstance{M: m, N: n, Rates: make([][]float64, m), Demands: make([]float64, n)}
		for i := 0; i < m; i++ {
			cover.Rates[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				cover.Rates[i][j] = math.Min(ins.L[i][j], 0.5)
			}
		}
		for j := range jobs {
			jobs[j] = j
			cover.Demands[j] = 0.5
		}
		t0 := time.Now()
		_, tstar, err := rounding.SolveLP1(ins, jobs, 0.5)
		if err != nil {
			return nil, err
		}
		simplexMS := time.Since(t0)
		t1 := time.Now()
		_, tMWU, err := lp.SolveCoverMWU(cover, 0.1)
		if err != nil {
			return nil, err
		}
		mwuMS := time.Since(t1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(m), f2(tstar), f2(tMWU), f2(tMWU / tstar),
			fmt.Sprintf("%.1f", float64(simplexMS.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(mwuMS.Microseconds())/1000),
		})
	}
	t.Notes = append(t.Notes,
		"the pipeline uses the exact simplex (constants matter in the rounding); MWU is the scale-out path — same covering program, certified (1+eps) feasibility")
	return t, nil
}

// figBatch isolates the long-job subroutine: a batch of k specialist jobs
// (one useful machine each) on m fixed machines, exactly what a SUU-C
// segment hands to its long-job runner. OBL repeats one schedule
// Θ(log k) times in expectation; SEM pays ~constant rounds of doubling
// length. The crossover sits near k ≈ m; past it SEM pulls away — this is
// the component that separates the chains bound from Lin–Rajaraman's.
func figBatch(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "f-batch",
		Title:  "long-job batches (m=6 specialists): E[T]/LB by batch size k",
		Header: []string{"k", "LB", "sem(ours)", "obl(lr)", "sem/obl"},
	}
	trials := cfg.trials(120)
	for _, k := range cfg.sizes([]int{4, 8, 16, 32, 64}) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		const m = 6
		q := make([][]float64, m)
		for i := range q {
			q[i] = make([]float64, k)
			for j := range q[i] {
				q[i][j] = 0.995
			}
		}
		for j := 0; j < k; j++ {
			l := 0.06 + 0.06*rng.Float64()
			q[rng.Intn(m)][j] = math.Pow(2, -l)
		}
		ins, err := model.New(m, k, q, nil)
		if err != nil {
			return nil, err
		}
		lb, err := lowerBoundIndep(ins)
		if err != nil {
			return nil, err
		}
		cache := rounding.NewCache()
		sem, err := sim.MonteCarlo(ins, &core.SEM{Cache: cache}, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		obl, err := sim.MonteCarlo(ins, &core.OBL{Cache: cache}, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), f1(lb),
			ratioCell(sem.Summary.Mean, sem.Summary.CI95(), lb),
			ratioCell(obl.Summary.Mean, obl.Summary.CI95(), lb),
			f2(sem.Summary.Mean / obl.Summary.Mean),
		})
	}
	t.Notes = append(t.Notes,
		"each row is one segment batch in isolation: k long jobs, each processable on one machine of 6",
		"expect sem/obl < 1 beyond k ≈ m and shrinking as k grows (log k vs loglog k)",
		fmt.Sprintf("%d trials per cell", trials))
	return t, nil
}

func figExact(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "f-exact",
		Title: "true ratios E[T_alg]/E[T_OPT] on small instances (DP-exact optimum)",
		Header: []string{"family", "n", "m", "E[T_OPT]",
			"sem", "obl", "greedy", "sequential"},
	}
	trials := cfg.trials(4000)
	cases := []struct {
		family string
		n, m   int
	}{
		{"uniform", 4, 2},
		{"uniform", 6, 2},
		{"uniform", 6, 3},
		{"specialist", 6, 2},
		{"skill", 6, 3},
	}
	k := int(float64(len(cases))*cfg.scale() + 0.5)
	if k < 1 {
		k = 1
	}
	for _, c := range cases[:k] {
		spec := workload.Spec{Family: c.family, M: c.m, N: c.n, Seed: cfg.Seed + int64(c.n*10+c.m), Groups: 2}
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		opt, err := exact.Optimal(ins)
		if err != nil {
			return nil, err
		}
		cache := rounding.NewCache()
		policies := []sim.Policy{
			&core.SEM{Cache: cache},
			&core.OBL{Cache: cache},
			baseline.Greedy{},
			baseline.Sequential{},
		}
		row := []string{c.family, fmt.Sprint(c.n), fmt.Sprint(c.m), f2(opt)}
		for pi, p := range policies {
			res, err := sim.MonteCarlo(ins, p, trials, cfg.Seed+int64(100*pi), cfg.Workers)
			if err != nil {
				return nil, err
			}
			row = append(row, ratioCell(res.Summary.Mean, res.Summary.CI95(), opt))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"E[T_OPT] is exact (subset DP over successor-closed states); ratios here are true approximation factors, not LP-bound upper estimates",
		fmt.Sprintf("%d trials per cell", trials))
	return t, nil
}

func ablEquivalence(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "a-equiv",
		Title: "SUU vs SUU* (Theorem 10): same policy, two simulators",
		Header: []string{"family", "n", "m", "policy",
			"E[T] threshold", "E[T] coin", "|z|"},
	}
	trials := cfg.trials(3000)
	cases := []workload.Spec{
		{Family: "uniform", M: 2, N: 5},
		{Family: "chains", M: 2, N: 6, Z: 2},
		{Family: "forest", M: 2, N: 6},
	}
	k := int(float64(len(cases))*cfg.scale() + 0.5)
	if k < 1 {
		k = 1
	}
	for _, spec := range cases[:k] {
		spec.Seed = cfg.Seed + int64(spec.N)
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		var p sim.Policy = baseline.Sequential{}
		a, err := sim.MonteCarlo(ins, p, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		b, err := sim.MonteCarloCoin(ins, p, trials, cfg.Seed+999, cfg.Workers)
		if err != nil {
			return nil, err
		}
		z := math.Abs(a.Summary.Mean-b.Summary.Mean) /
			math.Sqrt(a.Summary.Sem*a.Summary.Sem+b.Summary.Sem*b.Summary.Sem)
		t.Rows = append(t.Rows, []string{
			spec.Family, fmt.Sprint(spec.N), fmt.Sprint(spec.M), p.Name(),
			fmt.Sprintf("%.3f ±%.3f", a.Summary.Mean, a.Summary.CI95()),
			fmt.Sprintf("%.3f ±%.3f", b.Summary.Mean, b.Summary.CI95()),
			f2(z),
		})
	}
	t.Notes = append(t.Notes,
		"|z| is the two-sample z-score of the mean difference; Theorem 10 predicts agreement (|z| small, no systematic drift)",
		fmt.Sprintf("%d trials per simulator", trials))
	return t, nil
}

func figStoch(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "f-stoch",
		Title:  "stochastic scheduling (Appendix C): E[Cmax]/LB (LB = max(LL(median/2)/2, solo))",
		Header: []string{"n", "m", "LB", "stc-i(ours)", "stc-r(restart)", "sequential-fastest"},
	}
	trials := cfg.trials(40)
	for _, n := range cfg.sizes([]int{8, 16, 32, 64}) {
		m := n / 4
		if m < 2 {
			m = 2
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		lambda := make([]float64, n)
		for j := range lambda {
			lambda[j] = 0.5 + 2*rng.Float64()
		}
		v := make([][]float64, m)
		for i := range v {
			v[i] = make([]float64, n)
			for j := range v[i] {
				v[i][j] = 0.1 + 2*rng.Float64()
			}
		}
		ins, err := stoch.NewInstance(lambda, v)
		if err != nil {
			return nil, err
		}
		lb, err := stoch.LowerBound(ins)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(n), fmt.Sprint(m), f1(lb)}
		for _, p := range []stoch.Policy{stoch.STC{}, stoch.STCRestart{}, stoch.SequentialFastest{}} {
			sum, err := stoch.MonteCarlo(ins, p, trials, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, ratioCell(sum.Mean, sum.CI95(), lb))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"first approximation algorithms for unrelated-machine stochastic scheduling with E[Cmax] objective (Theorem 13): expect stc-i to win and stay O(loglog n)",
		"stc-r is the R|restart| variant: jobs run contiguously on one machine (LST R||Cmax rounds instead of Lawler–Labetoulle)",
		fmt.Sprintf("%d trials per cell", trials))
	return t, nil
}
