package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"a-equiv", "a-quantize", "a-rounding", "a-solver", "f-batch", "f-delay", "f-exact", "f-rounds",
		"f-stoch", "t1-chains", "t1-forest", "t1-indep", "t1-large", "t1-large-cold", "t1-xlarge",
		"x-greedy",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.What == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := Lookup("t1-indep"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("lookup of unknown id must fail")
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tb := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := tb.Format()
	for _, want := range []string{"demo", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Fatalf("CSV wrong:\n%s", csv)
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.5}
	if got := c.sizes([]int{1, 2, 3, 4}); len(got) != 2 {
		t.Fatalf("sizes %v", got)
	}
	if got := c.trials(40); got != 20 {
		t.Fatalf("trials %d", got)
	}
	c = Config{}
	if got := c.sizes([]int{1, 2}); len(got) != 2 {
		t.Fatalf("full scale sizes %v", got)
	}
	c = Config{Scale: 0.01}
	if got := c.trials(40); got != 5 {
		t.Fatalf("floor trials %d", got)
	}
}

// TestExperimentsSmoke runs every experiment at tiny scale: the harness
// must produce well-formed tables with consistent row widths.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test runs every experiment")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := e.Run(Config{Scale: 0.25, Trials: 5, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: no rows", e.ID)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Fatalf("%s: row width %d != header %d", e.ID, len(row), len(tb.Header))
				}
			}
			if tb.Format() == "" || tb.CSV() == "" {
				t.Fatalf("%s: empty rendering", e.ID)
			}
		})
	}
}
