package bench

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:   "t1-indep",
		What: "Table 1 row 1: independent jobs — SEM (ours, O(loglog)) vs OBL/greedy (O(log)) vs naive; ratio to LP lower bound vs n",
		Run:  table1Independent,
	})
	register(Experiment{
		ID:   "f-rounds",
		What: "Theorem 4 validation: SEM rounds actually used and survivors per round vs the budget K",
		Run:  figRounds,
	})
	register(Experiment{
		ID:   "a-rounding",
		What: "Lemma 2 ablation: flow-based rounding vs naive per-entry ceiling (schedule length and makespan)",
		Run:  ablRounding,
	})
}

// lowerBoundIndep returns the Lemma 1 lower bound max(t*_LP1(J,1/2)/2, 1).
func lowerBoundIndep(ins *model.Instance) (float64, error) {
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	_, tstar, err := rounding.SolveLP1(ins, jobs, 0.5)
	if err != nil {
		return 0, err
	}
	return math.Max(tstar/2, 1), nil
}

func table1Independent(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "t1-indep",
		Title: "independent jobs: E[T]/LB, lower is better (LB = t*_LP1/2)",
		Header: []string{"family", "n", "m", "LB",
			"sem(ours)", "obl", "greedy", "split", "sequential"},
	}
	trials := cfg.trials(40)
	var semRatios, oblRatios []float64
	var ns []int
	for _, family := range []string{"uniform", "skill", "specialist"} {
		for _, n := range cfg.sizes([]int{8, 16, 32, 64, 128}) {
			m := n / 2
			if m < 2 {
				m = 2
			}
			ins, err := workload.Generate(workload.Spec{Family: family, M: m, N: n, Seed: cfg.Seed + int64(n), Groups: 4})
			if err != nil {
				return nil, err
			}
			lb, err := lowerBoundIndep(ins)
			if err != nil {
				return nil, err
			}
			cache := rounding.NewCache()
			policies := []sim.Policy{
				&core.SEM{Cache: cache},
				&core.OBL{Cache: cache},
				baseline.Greedy{},
				baseline.EligibleSplit{},
				baseline.Sequential{},
			}
			row := []string{family, fmt.Sprint(n), fmt.Sprint(m), f1(lb)}
			for pi, p := range policies {
				res, err := sim.MonteCarlo(ins, p, trials, cfg.Seed+int64(1000*pi), cfg.Workers)
				if err != nil {
					return nil, fmt.Errorf("%s on %s n=%d: %w", p.Name(), family, n, err)
				}
				row = append(row, ratioCell(res.Summary.Mean, res.Summary.CI95(), lb))
				if family == "uniform" {
					switch pi {
					case 0:
						semRatios = append(semRatios, res.Summary.Mean/lb)
						ns = append(ns, n)
					case 1:
						oblRatios = append(oblRatios, res.Summary.Mean/lb)
					}
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	if len(ns) >= 3 {
		if gc, err := stats.CompareGrowth(ns, semRatios); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"sem growth fits (uniform): vs log2(n) slope %.3f rmse %.3f | vs loglog slope %.3f rmse %.3f",
				gc.LogFit.B, gc.LogFit.RMSE, gc.LogLogFit.B, gc.LogLogFit.RMSE))
		}
		if gc, err := stats.CompareGrowth(ns, oblRatios); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"obl growth fits (uniform): vs log2(n) slope %.3f rmse %.3f | vs loglog slope %.3f rmse %.3f",
				gc.LogFit.B, gc.LogFit.RMSE, gc.LogLogFit.B, gc.LogLogFit.RMSE))
		}
	}
	t.Notes = append(t.Notes,
		"paper: SEM is O(loglog min{m,n}), OBL/greedy are O(log n); expect the sem column to stay nearly flat while obl/greedy drift upward",
		fmt.Sprintf("%d trials per cell", trials))
	return t, nil
}

func figRounds(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "f-rounds",
		Title:  "SEM semioblivious rounds: budget K vs rounds used (mean over trials)",
		Header: []string{"n", "m", "K", "mean rounds used", "mean survivors@2", "mean survivors@3", "p(endgame)"},
	}
	trials := cfg.trials(60)
	for _, n := range cfg.sizes([]int{16, 32, 64, 96, 128}) {
		m := n / 2
		ins, err := workload.Generate(workload.Spec{Family: "uniform", M: m, N: n, Seed: cfg.Seed + int64(n)})
		if err != nil {
			return nil, err
		}
		k := core.Rounds(m, n)
		var mu sync.Mutex
		surv := make(map[int][]int) // round -> survivor counts
		sem := &core.SEM{Cache: rounding.NewCache()}
		var usedSum, endgames, samples float64
		sem.OnRound = func(round, remaining int) {
			mu.Lock()
			defer mu.Unlock()
			if round <= k && remaining > 0 {
				surv[round] = append(surv[round], remaining)
			}
			if round == k+1 {
				samples++
				if remaining > 0 {
					endgames++
				}
			}
		}
		if _, err := sim.MonteCarlo(ins, sem, trials, cfg.Seed, cfg.Workers); err != nil {
			return nil, err
		}
		mu.Lock()
		for round := 1; round <= k; round++ {
			usedSum += float64(len(surv[round]))
		}
		meanUsed := usedSum / samples
		s2 := meanOfInts(surv[2])
		s3 := meanOfInts(surv[3])
		pEnd := endgames / samples
		mu.Unlock()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(m), fmt.Sprint(k),
			f2(meanUsed), f1(s2), f1(s3), f2(pEnd),
		})
	}
	t.Notes = append(t.Notes,
		"survivors@k = jobs still uncompleted entering round k (when any); p(endgame) = fraction of trials reaching the post-K fallback",
		"Theorem 4: survivors shrink doubly exponentially, so rounds used ≈ 2–3 regardless of K")
	return t, nil
}

func meanOfInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// replayOBL repeats a precomputed oblivious schedule until done — it lets
// the rounding ablation compare schedule qualities without re-solving the
// LP in every Monte Carlo trial.
type replayOBL struct {
	name string
	o    *sched.Oblivious
}

func (p replayOBL) Name() string { return p.name }
func (p replayOBL) Run(w *sim.World) error {
	_, err := w.RepeatOblivious(p.o, 1<<30)
	return err
}

func ablRounding(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "a-rounding",
		Title:  "Lemma 2 flow rounding vs naive ceilings on spread-out (MWU) fractional solutions",
		Header: []string{"n", "m", "t", "len(flow)", "len(naive)", "E[T] flow-obl", "E[T] naive-obl"},
	}
	trials := cfg.trials(30)
	for _, n := range cfg.sizes([]int{16, 32, 64, 128}) {
		m := n / 2
		ins, err := workload.Generate(workload.Spec{Family: "uniform", M: m, N: n, Seed: cfg.Seed + int64(n), QLo: 0.6, QHi: 0.95})
		if err != nil {
			return nil, err
		}
		jobs := make([]int, n)
		// The exact simplex returns vertex solutions with ≤ n+m positive
		// entries, which even naive ceilings round harmlessly. The MWU
		// engine's solutions spread mass across many machines per job —
		// the regime Lemma 2's flow rounding exists for.
		cover := &lp.CoverInstance{M: m, N: n, Rates: make([][]float64, m), Demands: make([]float64, n)}
		for i := 0; i < m; i++ {
			cover.Rates[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				cover.Rates[i][j] = math.Min(ins.L[i][j], 0.5)
			}
		}
		for j := range jobs {
			jobs[j] = j
			cover.Demands[j] = 0.5
		}
		xfrac, tfrac, err := lp.SolveCoverMWU(cover, 0.1)
		if err != nil {
			return nil, err
		}
		flow, err := rounding.RoundFractional(ins, jobs, 0.5, xfrac, tfrac*1.1)
		if err != nil {
			return nil, err
		}
		naive, err := rounding.RoundFractionalNaive(ins, jobs, 0.5, xfrac, tfrac*1.1)
		if err != nil {
			return nil, err
		}
		resFlow, err := sim.MonteCarlo(ins,
			replayOBL{"obl-flow", flow.Assignment.Serialize()}, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		resNaive, err := sim.MonteCarlo(ins,
			replayOBL{"obl-naive", naive.Assignment.Serialize()}, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(m), f1(flow.TFrac),
			fmt.Sprint(flow.Length), fmt.Sprint(naive.Length),
			fmt.Sprintf("%.1f ±%.1f", resFlow.Summary.Mean, resFlow.Summary.CI95()),
			fmt.Sprintf("%.1f ±%.1f", resNaive.Summary.Mean, resNaive.Summary.CI95()),
		})
	}
	t.Notes = append(t.Notes,
		"both arms round the SAME MWU fractional solution (eps=0.1); t is its certified load bound",
		"len = serialized schedule length (max machine load); Lemma 2 guarantees len(flow) ≤ ⌈6t⌉, the naive arm has no such bound")
	return t, nil
}
