package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// evenChains links n jobs into chains of length per (the last may be
// shorter), returning the DAG and its chain list.
func evenChains(n, per int) (*dag.DAG, []dag.Chain) {
	g := dag.New(n)
	var chains []dag.Chain
	for s := 0; s < n; s += per {
		var c dag.Chain
		for j := s; j < s+per && j < n; j++ {
			if j > s {
				g.MustEdge(j-1, j)
			}
			c = append(c, j)
		}
		chains = append(chains, c)
	}
	return g, chains
}

func init() {
	register(Experiment{
		ID:   "t1-chains",
		What: "Table 1 row 2: disjoint chains — SUU-C with SEM long jobs (ours) vs OBL long jobs (LR-style) vs naive; ratio to LP2 lower bound",
		Run:  table1Chains,
	})
	register(Experiment{
		ID:   "t1-forest",
		What: "Table 1 row 3: directed forests — SUU-T vs LR-style vs naive; ratio to LP1+critical-path lower bound",
		Run:  table1Forest,
	})
	register(Experiment{
		ID:   "f-delay",
		What: "Theorem 7 validation: random chain delays vs none — max congestion and makespan",
		Run:  figDelay,
	})
	register(Experiment{
		ID:   "a-quantize",
		What: "Section 4 quantization trick ablation: SUU-C with assignments rounded to multiples of t*/(nm) + reinserted steps, vs plain",
		Run:  ablQuantize,
	})
	register(Experiment{
		ID:   "x-greedy",
		What: "the conclusion's open question: can a greedy heuristic match the proven bounds? greedy-prec vs the guaranteed algorithms per class",
		Run:  exploreGreedy,
	})
}

// exploreGreedy addresses the paper's closing question ("It would also be
// interesting if a greedy heuristic could achieve the same bounds"):
// measure the precedence-aware mass-leveling greedy against the guaranteed
// algorithm of each class, on both benign and adversarial (specialist)
// instances.
func exploreGreedy(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "x-greedy",
		Title:  "greedy heuristic vs guaranteed algorithms (conclusion's open question)",
		Header: []string{"class", "family", "n", "m", "LB", "greedy-prec", "guaranteed", "alg"},
	}
	trials := cfg.trials(30)
	type arm struct {
		class  string
		family string
		n, m   int
		mk     func() sim.Policy
		name   string
	}
	lp1 := func() *rounding.Cache { return rounding.NewCache() }
	arms := []arm{
		{"independent", "uniform", 64, 32,
			func() sim.Policy { return &core.SEM{Cache: lp1()} }, "sem"},
		{"independent", "specialist", 64, 32,
			func() sim.Policy { return &core.SEM{Cache: lp1()} }, "sem"},
		{"chains", "chains-hard", 48, 6,
			func() sim.Policy {
				return &core.Chains{LP1Cache: lp1(), LP2Cache: rounding.NewLP2Cache()}
			}, "suu-c"},
		{"forest", "forest", 32, 8,
			func() sim.Policy {
				return &core.Forest{Engine: &core.Chains{LP1Cache: lp1(), LP2Cache: rounding.NewLP2Cache()}}
			}, "suu-t"},
	}
	k := int(float64(len(arms))*cfg.scale() + 0.5)
	if k < 1 {
		k = 1
	}
	for _, a := range arms[:k] {
		ins, err := workload.Generate(workload.Spec{
			Family: a.family, M: a.m, N: a.n, Seed: cfg.Seed + int64(a.n), Groups: 4, Z: a.n / 4,
		})
		if err != nil {
			return nil, err
		}
		lb, err := lowerBoundDAG(ins)
		if err != nil {
			return nil, err
		}
		gr, err := sim.MonteCarlo(ins, baseline.GreedyPrec{}, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		gu, err := sim.MonteCarlo(ins, a.mk(), trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			a.class, a.family, fmt.Sprint(a.n), fmt.Sprint(a.m), f1(lb),
			ratioCell(gr.Summary.Mean, gr.Summary.CI95(), lb),
			ratioCell(gu.Summary.Mean, gu.Summary.CI95(), lb),
			a.name,
		})
	}
	t.Notes = append(t.Notes,
		"greedy-prec levels assigned log mass over eligible jobs each step; no approximation guarantee is known for it",
		"the open question remains open: greedy wins on these families by constants, but nothing rules out adversarial instances where it loses its lead",
		fmt.Sprintf("%d trials per cell", trials))
	return t, nil
}

// ablQuantize exercises the paper's nonpolynomial-t device: quantizing
// assignments to multiples of t*/(nm) and reinserting the lost steps. In
// simulation the quantum is usually < 1 step (no-op); the experiment
// scales ℓ down to force multi-hundred-step assignments where the quantum
// engages, and confirms the makespan overhead is the predicted O(t*).
func ablQuantize(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "a-quantize",
		Title:  "SUU-C quantization (Section 4): plain vs quantized assignments",
		Header: []string{"n", "m", "t*", "quantum", "E[T] plain", "E[T] quantized", "overhead"},
	}
	trials := cfg.trials(20)
	for _, n := range cfg.sizes([]int{8, 12, 16}) {
		const m = 2
		// Tiny ℓ everywhere makes LP assignments hundreds of steps long,
		// so the quantum t*/(nm) exceeds 1 and the trick engages.
		rng := newDetRand(cfg.Seed + int64(n))
		q := make([][]float64, m)
		for i := range q {
			q[i] = make([]float64, n)
			for j := range q[i] {
				q[i][j] = 0.985 + 0.01*rng.Float64() // ℓ ≈ 0.007..0.022
			}
		}
		g, chains := evenChains(n, 4)
		ins, err := model.New(m, n, q, g)
		if err != nil {
			return nil, err
		}
		lp2, err := rounding.RoundLP2(ins, chains)
		if err != nil {
			return nil, err
		}
		quantum := int64(lp2.TFrac) / int64(n*m)
		lp2c := rounding.NewLP2Cache()
		lp1c := rounding.NewCache()
		plain, err := sim.MonteCarlo(ins,
			&core.Chains{LP1Cache: lp1c, LP2Cache: lp2c}, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		quant, err := sim.MonteCarlo(ins,
			&core.Chains{LP1Cache: lp1c, LP2Cache: lp2c, Quantize: true}, trials, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(m), f1(lp2.TFrac), fmt.Sprint(quantum),
			fmt.Sprintf("%.0f ±%.0f", plain.Summary.Mean, plain.Summary.CI95()),
			fmt.Sprintf("%.0f ±%.0f", quant.Summary.Mean, quant.Summary.CI95()),
			f2(quant.Summary.Mean / plain.Summary.Mean),
		})
	}
	t.Notes = append(t.Notes,
		"quantum = ⌊t*⌋/(nm); rows with quantum ≥ 2 actually exercise the rounding-down + reinsertion path",
		"the paper predicts expected reinserted steps ≤ 2t*, i.e. overhead bounded by a small constant factor")
	return t, nil
}

// lowerBoundChains is max(t*_LP2/2, critical path, 1); Lemma 5 justifies
// the LP2 term, and every chain needs one step per job regardless.
func lowerBoundChains(ins *model.Instance) (float64, error) {
	chains, err := ins.Chains()
	if err != nil {
		return 0, err
	}
	_, _, _, tstar, err := rounding.SolveLP2(ins, chains)
	if err != nil {
		return 0, err
	}
	longest := 0
	for _, c := range chains {
		if len(c) > longest {
			longest = len(c)
		}
	}
	return math.Max(math.Max(tstar/2, float64(longest)), 1), nil
}

// lowerBoundDAG works for any precedence class: the precedence-free LP1
// bound and the critical path length.
func lowerBoundDAG(ins *model.Instance) (float64, error) {
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	_, tstar, err := rounding.SolveLP1(ins, jobs, 0.5)
	if err != nil {
		return 0, err
	}
	depth := 1
	if ins.Prec != nil {
		layers, err := ins.Prec.Layers()
		if err != nil {
			return 0, err
		}
		depth = len(layers)
	}
	return math.Max(math.Max(tstar/2, float64(depth)), 1), nil
}

func table1Chains(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "t1-chains",
		Title: "disjoint chains: E[T]/LB (LB = max(t*_LP2/2, longest chain))",
		Header: []string{"family", "n", "m", "LB",
			"suu-c(ours)", "suu-c-lr(obl)", "split", "sequential"},
	}
	trials := cfg.trials(30)
	for _, family := range []string{"chains", "chains-hard"} {
		for _, n := range cfg.sizes([]int{16, 32, 48, 64, 96}) {
			m := n / 4
			z := n / 8
			if family == "chains-hard" {
				// Few machines keep LP2 small; chains of 4 give batches
				// of up to n/4 long jobs in the first segment.
				m = 6
				z = n / 4
			}
			if m < 2 {
				m = 2
			}
			spec := workload.Spec{Family: family, M: m, N: n, Seed: cfg.Seed + int64(n), Z: z}
			if spec.Z < 1 {
				spec.Z = 1
			}
			ins, err := workload.Generate(spec)
			if err != nil {
				return nil, err
			}
			lb, err := lowerBoundChains(ins)
			if err != nil {
				return nil, err
			}
			lp1c, lp2c := rounding.NewCache(), rounding.NewLP2Cache()
			policies := []sim.Policy{
				&core.Chains{LP1Cache: lp1c, LP2Cache: lp2c},
				&core.Chains{LP1Cache: lp1c, LP2Cache: lp2c, LongJobs: &core.OBL{Cache: lp1c}},
				baseline.EligibleSplit{},
				baseline.Sequential{},
			}
			row := []string{family, fmt.Sprint(n), fmt.Sprint(m), f1(lb)}
			for pi, p := range policies {
				res, err := sim.MonteCarlo(ins, p, trials, cfg.Seed+int64(1000*pi), cfg.Workers)
				if err != nil {
					return nil, fmt.Errorf("%s on %s n=%d: %w", p.Name(), family, n, err)
				}
				row = append(row, ratioCell(res.Summary.Mean, res.Summary.CI95(), lb))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"suu-c-lr replaces the long-job SEM batches with OBL — the O(log n) component that costs Lin–Rajaraman their extra factor",
		fmt.Sprintf("%d trials per cell", trials))
	return t, nil
}

func table1Forest(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "t1-forest",
		Title: "directed forests: E[T]/LB (LB = max(t*_LP1/2, critical path))",
		Header: []string{"family", "n", "m", "LB",
			"suu-t(ours)", "suu-t-lr(obl)", "split", "sequential"},
	}
	trials := cfg.trials(25)
	for _, family := range []string{"forest", "in-forest"} {
		for _, n := range cfg.sizes([]int{16, 32, 48}) {
			m := n / 4
			if m < 2 {
				m = 2
			}
			ins, err := workload.Generate(workload.Spec{Family: family, M: m, N: n, Seed: cfg.Seed + int64(n)})
			if err != nil {
				return nil, err
			}
			lb, err := lowerBoundDAG(ins)
			if err != nil {
				return nil, err
			}
			lp1c, lp2c := rounding.NewCache(), rounding.NewLP2Cache()
			policies := []sim.Policy{
				&core.Forest{Engine: &core.Chains{LP1Cache: lp1c, LP2Cache: lp2c}},
				&core.Forest{Engine: &core.Chains{LP1Cache: lp1c, LP2Cache: lp2c, LongJobs: &core.OBL{Cache: lp1c}}},
				baseline.EligibleSplit{},
				baseline.Sequential{},
			}
			row := []string{family, fmt.Sprint(n), fmt.Sprint(m), f1(lb)}
			for pi, p := range policies {
				res, err := sim.MonteCarlo(ins, p, trials, cfg.Seed+int64(1000*pi), cfg.Workers)
				if err != nil {
					return nil, fmt.Errorf("%s on %s n=%d: %w", p.Name(), family, n, err)
				}
				row = append(row, ratioCell(res.Summary.Mean, res.Summary.CI95(), lb))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"SUU-T = heavy-path decomposition into ≤⌈log n⌉+1 blocks of chains, SUU-C per block (Appendix B)",
		fmt.Sprintf("%d trials per cell", trials))
	return t, nil
}

func figDelay(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "f-delay",
		Title: "random delays (Theorem 7): congestion and makespan, with vs without",
		Header: []string{"n", "m", "bound log(n+m)/loglog(n+m)",
			"maxcong delay", "maxcong none", "E[T] delay", "E[T] none"},
	}
	trials := cfg.trials(30)
	for _, n := range cfg.sizes([]int{24, 48, 96}) {
		// Few machines and many short chains: the regime where chains
		// collide on machines and the delays earn their keep.
		m := 4
		z := n / 3
		ins, err := workload.Generate(workload.Spec{Family: "chains", M: m, N: n, Z: z, Seed: cfg.Seed + int64(n)})
		if err != nil {
			return nil, err
		}
		bound := math.Log2(float64(n+m)) / math.Log2(math.Log2(float64(n+m)))
		row := []string{fmt.Sprint(n), fmt.Sprint(m), f1(bound)}
		congs := make([]float64, 2)
		makes := make([]string, 2)
		for vi, noDelay := range []bool{false, true} {
			var mu sync.Mutex
			var maxCong int64
			p := &core.Chains{
				LP1Cache: rounding.NewCache(),
				LP2Cache: rounding.NewLP2Cache(),
				NoDelay:  noDelay,
				OnStats: func(s core.ChainsStats) {
					mu.Lock()
					if s.MaxCongestion > maxCong {
						maxCong = s.MaxCongestion
					}
					mu.Unlock()
				},
			}
			res, err := sim.MonteCarlo(ins, p, trials, cfg.Seed, cfg.Workers)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			congs[vi] = float64(maxCong)
			mu.Unlock()
			makes[vi] = fmt.Sprintf("%.1f ±%.1f", res.Summary.Mean, res.Summary.CI95())
		}
		row = append(row, f1(congs[0]), f1(congs[1]), makes[0], makes[1])
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"maxcong = worst per-machine congestion in any superstep across all trials",
		"Theorem 7: with delays congestion stays O(log(n+m)/loglog(n+m)); without, it can grow with the number of chains")
	return t, nil
}
