// Package bench is the experiment harness that regenerates the paper's
// evaluation. The paper is theoretical — its only exhibit is Table 1
// (approximation ratios per precedence class) — so each experiment measures
// the empirical counterpart: expected makespan over a lower bound on
// E[T_OPT], ours vs baselines, as instance size scales, plus validation
// experiments for the internal theorems the bounds rest on (SEM round
// counts, random-delay congestion, rounding quality, SUU ≡ SUU*, exact
// ratios on small instances, and the stochastic Appendix C extension).
//
// Every experiment is registered by ID; cmd/suubench runs them by name and
// bench_test.go wires each to a testing.B benchmark.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls an experiment run.
type Config struct {
	// Trials per (instance, algorithm) pair; 0 means the experiment's
	// default.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Workers for Monte Carlo parallelism; 0 = GOMAXPROCS.
	Workers int
	// Scale in (0,1] shrinks the size sweep and trial counts
	// proportionally; 0 means 1 (full sweep). Benchmarks use small scales
	// to stay fast.
	Scale float64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 || c.Scale > 1 {
		return 1
	}
	return c.Scale
}

// sizes returns a Scale-proportional prefix of the experiment's sweep.
func (c Config) sizes(all []int) []int {
	k := int(float64(len(all))*c.scale() + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// trials scales the default trial count, with a floor to keep CIs sane.
func (c Config) trials(def int) int {
	t := c.Trials
	if t == 0 {
		t = int(float64(def) * c.scale())
	}
	if t < 5 {
		t = 5
	}
	return t
}

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes-free cells by
// construction).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a runnable experiment with metadata.
type Experiment struct {
	ID   string
	What string
	Run  func(Config) (*Table, error)
	// Heavy marks large-instance experiments that "run all" sweeps skip
	// unless explicitly requested (suubench -scale-large).
	Heavy bool
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// ratioCell formats "ratio ±ci".
func ratioCell(mean, ci, lower float64) string {
	return fmt.Sprintf("%.2f ±%.2f", mean/lower, ci/lower)
}
