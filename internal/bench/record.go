package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Record is one measured experiment run: the experiment's result table
// plus wall-time and allocation cost, in the shape cmd/suubench's -json
// flag emits. Committed BENCH_*.json files hold these records so the
// repo's performance trajectory is tracked PR over PR.
type Record struct {
	Experiment  string     `json:"experiment"`
	NsPerOp     int64      `json:"ns_per_op"`
	AllocsPerOp uint64     `json:"allocs_per_op"`
	BytesPerOp  uint64     `json:"bytes_per_op"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
	// Extra carries machine-readable scalar metrics that have no natural
	// place in the formatted table — cmd/suuload records throughput and
	// latency quantiles here so load reports diff numerically PR over PR.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level JSON document: environment stamp, run
// configuration, free-form notes (e.g. the baseline being compared
// against), and one record per experiment run.
type Report struct {
	Schema  string   `json:"schema"`
	Go      string   `json:"go"`
	Arch    string   `json:"arch"`
	Config  Config   `json:"config"`
	Notes   []string `json:"notes,omitempty"`
	Records []Record `json:"records"`
}

// NewReport returns an empty report stamped with the toolchain and cfg.
func NewReport(cfg Config) *Report {
	return &Report{
		Schema: "suu-bench/v1",
		Go:     runtime.Version(),
		Arch:   runtime.GOOS + "/" + runtime.GOARCH,
		Config: cfg,
	}
}

// Write emits the report as indented JSON.
func (r *Report) Write(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Measure runs experiment e once under cfg and records its wall time and
// allocation deltas (runtime.MemStats before/after, so the numbers are
// comparable to `go test -benchmem` at -benchtime 1x). The measured run
// is the one whose table lands in the record.
func Measure(e Experiment, cfg Config) (*Record, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	t, err := e.Run(cfg)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", e.ID, err)
	}
	return &Record{
		Experiment:  e.ID,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: m1.Mallocs - m0.Mallocs,
		BytesPerOp:  m1.TotalAlloc - m0.TotalAlloc,
		Header:      t.Header,
		Rows:        t.Rows,
		Notes:       t.Notes,
	}, nil
}
