package core

// Cross-request concurrency audit (PR 4). A planner service shares ONE
// policy value — and through it one rounding.Cache / LP2Cache, one
// WorkspacePool, and one lazily-built default subrunner — across many
// concurrent Estimate calls, a sharing pattern the per-experiment harness
// never produced (it ran one MonteCarlo at a time, sharing the policy
// only among that run's workers). The audit findings these tests pin:
//
//   - rounding.Cache / LP2Cache: all state behind one mutex; misses
//     compute outside the lock (duplicated work allowed, results are pure
//     functions of keys) — safe.
//   - rounding.WorkspacePool: sync.Pool of exclusively-held workspaces;
//     SEM's Begin() and Forest's BeginLP2() reset chain state on
//     acquisition, so no trial observes another's warm chain — safe.
//   - SEM/OBL/Chains/Forest/Layered: configuration is read-only after
//     construction; per-trial state lives in locals and the World; lazy
//     defaults (defLong, defEngine, defInner) are built under sync.Once —
//     safe.
//
// Each test runs several concurrent MonteCarlo estimates against one
// shared policy value under -race and asserts the samples match a
// serial reference run exactly (sharing must never change results).

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/workload"
)

// concurrentEstimates runs rounds×Estimate concurrently on one shared
// policy and compares every sample to the serial reference.
func concurrentEstimates(t *testing.T, shared sim.Policy, fresh func() sim.Policy, ins *model.Instance) {
	t.Helper()
	const (
		rounds = 4
		trials = 10
	)
	ref, err := sim.MonteCarlo(ins, fresh(), trials, 1, 1)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, rounds)
	results := make([]*sim.MCResult, rounds)
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res, err := sim.MonteCarlo(ins, shared, trials, 1, 2)
			if err != nil {
				errCh <- err
				return
			}
			results[r] = res
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for r, res := range results {
		for i, ms := range res.Makespans {
			if ms != ref.Makespans[i] {
				t.Fatalf("round %d trial %d: makespan %v, serial reference %v — sharing changed results",
					r, i, ms, ref.Makespans[i])
			}
		}
	}
}

func TestConcurrentEstimateSharedSEM(t *testing.T) {
	ins := uniformInstance(t, 41, 4, 12)
	shared := &SEM{Cache: rounding.NewCache()}
	concurrentEstimates(t, shared, func() sim.Policy { return &SEM{Cache: rounding.NewCache()} }, ins)
}

func TestConcurrentEstimateSharedOBL(t *testing.T) {
	ins := uniformInstance(t, 42, 4, 12)
	shared := &OBL{Cache: rounding.NewCache()}
	concurrentEstimates(t, shared, func() sim.Policy { return &OBL{Cache: rounding.NewCache()} }, ins)
}

func TestConcurrentEstimateSharedChains(t *testing.T) {
	ins, err := workload.Chains(rand.New(rand.NewSource(43)), 4, 12, 4, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sim.Policy {
		return &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
	}
	concurrentEstimates(t, mk(), mk, ins)
}

func TestConcurrentEstimateSharedForest(t *testing.T) {
	ins, err := workload.Forest(rand.New(rand.NewSource(44)), 4, 14, 3, true, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Engine nil: the default Chains engine is built lazily under
	// sync.Once, with every concurrent trial racing to be first.
	mk := func() sim.Policy { return &Forest{} }
	concurrentEstimates(t, mk(), mk, ins)
}

func TestConcurrentEstimateSharedLayered(t *testing.T) {
	ins, err := workload.MapReduce(rand.New(rand.NewSource(45)), 4, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Inner nil: same lazy-default race as Forest.
	mk := func() sim.Policy { return &Layered{} }
	concurrentEstimates(t, mk(), mk, ins)
}

// TestConcurrentSharedCacheAcrossPolicies drives one rounding.Cache from
// two policy values at once (the service shares caches per policy, but
// nothing in the Cache contract forbids wider sharing) plus direct
// concurrent RoundLP1 calls racing the same keys.
func TestConcurrentSharedCacheAcrossPolicies(t *testing.T) {
	ins := uniformInstance(t, 46, 4, 10)
	cache := rounding.NewCache()
	a := &SEM{Cache: cache}
	b := &OBL{Cache: cache}
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sim.MonteCarlo(ins, a, 8, 1, 2); err != nil {
				errCh <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sim.MonteCarlo(ins, b, 8, 1, 2); err != nil {
				errCh <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := cache.RoundLP1(ins, jobs, 0.5); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
