package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestChainsDeterministicGivenThresholdsAndSeed: with fixed thresholds and
// a fixed world RNG (which drives the chain delays), SUU-C must be fully
// deterministic.
func TestChainsDeterministicGivenThresholdsAndSeed(t *testing.T) {
	ins := chainsInstance(t, 31, 3, 12, 3)
	thr := make([]float64, 12)
	rng := rand.New(rand.NewSource(2))
	for j := range thr {
		thr[j] = 0.2 + 3*rng.Float64()
	}
	p := &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
	var first int64
	for rep := 0; rep < 3; rep++ {
		w, err := sim.NewWorldWithThresholds(ins, thr)
		if err != nil {
			t.Fatal(err)
		}
		// Same delay randomness each repetition.
		*w.Rng() = *rand.New(rand.NewSource(77))
		if err := p.Run(w); err != nil {
			t.Fatal(err)
		}
		ms, err := w.Makespan()
		if err != nil {
			t.Fatal(err)
		}
		if rep == 0 {
			first = ms
		} else if ms != first {
			t.Fatalf("rep %d: makespan %d != %d", rep, ms, first)
		}
	}
}

// TestChainsRandomInstances: SUU-C completes random chain instances of
// every shape without errors; the world enforces legality throughout.
func TestChainsRandomInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		z := 1 + rng.Intn(5)
		n := z * (1 + rng.Intn(4))
		ins, err := workload.Chains(rng, m, n, z, 0.1, 0.95)
		if err != nil {
			t.Logf("seed %d: gen: %v", seed, err)
			return false
		}
		p := &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
		w := sim.NewWorld(ins, rand.New(rand.NewSource(seed+1)))
		if err := p.Run(w); err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		ms, err := w.Makespan()
		if err != nil || ms < int64(n/z) {
			t.Logf("seed %d: makespan %d err %v", seed, ms, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChainsStatsAccounting: the reported flattened timeline length
// (SumCongestion) plus batch time must match the world clock.
func TestChainsStatsAccounting(t *testing.T) {
	ins := chainsInstance(t, 33, 3, 12, 3)
	var mu sync.Mutex
	var sumCong int64
	p := &Chains{
		LP1Cache: rounding.NewCache(),
		LP2Cache: rounding.NewLP2Cache(),
		OnStats: func(s ChainsStats) {
			mu.Lock()
			sumCong += s.SumCongestion
			mu.Unlock()
		},
	}
	w := sim.NewWorld(ins, rand.New(rand.NewSource(3)))
	if err := p.Run(w); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// The clock includes batch time (SEM on long jobs), so it can only be
	// at least the flattened pseudoschedule length — but the final
	// makespan can be below the clock only via early stop, never above.
	if w.Clock() < sumCong {
		t.Fatalf("clock %d < flattened supersteps %d", w.Clock(), sumCong)
	}
	ms, _ := w.Makespan()
	if ms > w.Clock() {
		t.Fatalf("makespan %d beyond clock %d", ms, w.Clock())
	}
}

// TestForestMixedOrientation: a forest mixing in- and out-trees must
// schedule correctly through the per-component decomposition.
func TestForestMixedOrientation(t *testing.T) {
	g := dag.New(8)
	// Out-tree: 0 -> {1, 2}, 2 -> 3.
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	g.MustEdge(2, 3)
	// In-tree: {5, 6} -> 4, 7 -> 6.
	g.MustEdge(5, 4)
	g.MustEdge(6, 4)
	g.MustEdge(7, 6)
	q := make([][]float64, 2)
	for i := range q {
		q[i] = make([]float64, 8)
		for j := range q[i] {
			q[i][j] = 0.4
		}
	}
	ins, err := model.New(2, 8, q, g)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Class() != dag.ClassMixedForest {
		t.Fatalf("class %v", ins.Class())
	}
	p := &Forest{Engine: &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}}
	for seed := int64(0); seed < 5; seed++ {
		runPolicy(t, p, ins, seed)
	}
}

// TestChainsSingleJobChains: n singleton chains with extreme probability
// spread — stress for the grouping ranges in the rounding.
func TestChainsSingleJobChains(t *testing.T) {
	m, n := 3, 6
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			switch (i + j) % 3 {
			case 0:
				q[i][j] = 0.999 // ℓ ≈ 0.0014
			case 1:
				q[i][j] = 0.5
			default:
				q[i][j] = 0.01 // ℓ ≈ 6.6
			}
		}
	}
	ins, err := model.New(m, n, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
	runPolicy(t, p, ins, 9)
}
