package core

import (
	"fmt"
	"sync"

	"repro/internal/dag"
	"repro/internal/sim"
)

// Forest is SUU-T (Appendix B): precedence constraints forming a directed
// forest are decomposed into O(log n) blocks of vertex-disjoint chains by
// heavy-path decomposition (the technique of Kumar et al.), and SUU-C runs
// once per block in order. Every block's jobs depend only on earlier blocks
// and on chain-internal predecessors, so each block is a legitimate SUU-C
// sub-instance; the approximation picks up the O(log n) block count:
// O(log n · log(n+m) · loglog min{m,n}).
type Forest struct {
	// Engine is the chain scheduler run per block; nil means a default
	// Chains (the paper's algorithm).
	Engine *Chains

	defOnce   sync.Once
	defEngine *Chains
}

// Name implements sim.Policy.
func (f *Forest) Name() string {
	if f.Engine != nil {
		return "suu-t[" + f.Engine.Name() + "]"
	}
	return "suu-t"
}

// Run completes an instance whose precedence class is a directed forest
// (chains and independent instances are degenerate cases).
func (f *Forest) Run(w *sim.World) error {
	ins := w.Instance()
	engine := f.Engine
	if engine == nil {
		// Built once, not per trial, so the default engine's caches and
		// solver workspaces are shared across the whole Monte Carlo run.
		f.defOnce.Do(func() { f.defEngine = &Chains{} })
		engine = f.defEngine
	}
	if ins.Prec == nil {
		chains, err := ins.Chains()
		if err != nil {
			return err
		}
		return engine.RunChains(w, chains)
	}
	blocks, err := ins.Prec.DecomposeForest()
	if err != nil {
		return fmt.Errorf("core: %s: %w", f.Name(), err)
	}
	// One workspace spans the whole block sequence, so each block's LP2
	// warm-starts from the previous block's basis (the LP2 cross-block
	// chain); the chain reset keeps trials independent — every trial
	// replays the same block sequence, so cache keys (which include the
	// chain history) stay deterministic across workers.
	ws := engine.pool.Get()
	defer engine.pool.Put(ws)
	ws.BeginLP2()
	for bi, block := range blocks {
		if err := engine.runChains(w, []dag.Chain(block), ws); err != nil {
			return fmt.Errorf("core: %s block %d: %w", f.Name(), bi, err)
		}
	}
	if !w.AllDone() {
		return fmt.Errorf("core: %s left %d jobs uncompleted", f.Name(), w.NumRemaining())
	}
	return nil
}
