package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/workload"
)

func uniformInstance(t testing.TB, seed int64, m, n int) *model.Instance {
	t.Helper()
	ins, err := workload.IndependentUniform(rand.New(rand.NewSource(seed)), m, n, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func runPolicy(t testing.TB, p sim.Policy, ins *model.Instance, seed int64) int64 {
	t.Helper()
	w := sim.NewWorld(ins, rand.New(rand.NewSource(seed)))
	if err := p.Run(w); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	ms, err := w.Makespan()
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return ms
}

func TestRounds(t *testing.T) {
	cases := []struct {
		m, n, want int
	}{
		{1, 100, 3},   // min=1 < 4: floor
		{3, 3, 3},     // min=3 < 4: floor
		{4, 100, 4},   // loglog 4 = 1
		{16, 100, 5},  // loglog 16 = 2
		{100, 256, 6}, // loglog 256 = 3
		{100, 100, 6}, // loglog 100 ≈ 2.73 → ⌈⌉=3
		{65536, 70000, 7},
	}
	for _, c := range cases {
		if got := Rounds(c.m, c.n); got != c.want {
			t.Errorf("Rounds(%d,%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestOBLCompletes(t *testing.T) {
	ins := uniformInstance(t, 1, 4, 12)
	p := &OBL{Cache: rounding.NewCache()}
	for seed := int64(0); seed < 5; seed++ {
		ms := runPolicy(t, p, ins, seed)
		if ms <= 0 {
			t.Fatalf("makespan %d", ms)
		}
	}
}

func TestOBLRejectsPrecedence(t *testing.T) {
	g := dag.New(2)
	g.MustEdge(0, 1)
	ins, err := model.New(1, 2, [][]float64{{0.5, 0.5}}, g)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.NewWorld(ins, rand.New(rand.NewSource(1)))
	if err := (&OBL{}).Run(w); err == nil {
		t.Fatal("OBL must reject precedence instances")
	}
	if err := (&SEM{}).Run(w); err == nil {
		t.Fatal("SEM must reject precedence instances")
	}
}

func TestSEMCompletes(t *testing.T) {
	ins := uniformInstance(t, 2, 4, 12)
	p := &SEM{Cache: rounding.NewCache()}
	for seed := int64(0); seed < 5; seed++ {
		ms := runPolicy(t, p, ins, seed)
		if ms <= 0 {
			t.Fatalf("makespan %d", ms)
		}
	}
}

// TestSEMEndgameNLessM forces the endgame with huge thresholds: with n ≤ m
// the stragglers must be run one at a time on all machines.
func TestSEMEndgameNLessM(t *testing.T) {
	ins := uniformInstance(t, 3, 6, 4) // m=6 > n=4
	thr := []float64{60, 60, 60, 60}
	w, err := sim.NewWorldWithThresholds(ins, thr)
	if err != nil {
		t.Fatal(err)
	}
	p := &SEM{Cache: rounding.NewCache()}
	if err := p.Run(w); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatal("jobs remain")
	}
}

// TestSEMEndgameMLessN forces the m < n endgame: repeat the round-K
// schedule.
func TestSEMEndgameMLessN(t *testing.T) {
	ins := uniformInstance(t, 5, 3, 8) // m=3 < n=8
	thr := make([]float64, 8)
	for j := range thr {
		thr[j] = 55
	}
	w, err := sim.NewWorldWithThresholds(ins, thr)
	if err != nil {
		t.Fatal(err)
	}
	p := &SEM{Cache: rounding.NewCache()}
	if err := p.Run(w); err != nil {
		t.Fatal(err)
	}
	if !w.AllDone() {
		t.Fatal("jobs remain")
	}
}

func TestSEMSubsetLeavesOthersAlone(t *testing.T) {
	ins := uniformInstance(t, 6, 3, 6)
	w := sim.NewWorld(ins, rand.New(rand.NewSource(2)))
	p := &SEM{Cache: rounding.NewCache()}
	if err := p.RunOnSubset(w, []int{0, 2, 4}); err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 2, 4} {
		if !w.Done(j) {
			t.Fatalf("job %d should be done", j)
		}
	}
	for _, j := range []int{1, 3, 5} {
		if w.Done(j) {
			t.Fatalf("job %d should be untouched", j)
		}
	}
}

func chainsInstance(t testing.TB, seed int64, m, n, z int) *model.Instance {
	t.Helper()
	ins, err := workload.Chains(rand.New(rand.NewSource(seed)), m, n, z, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestChainsCompletes(t *testing.T) {
	ins := chainsInstance(t, 7, 4, 16, 4)
	p := &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
	for seed := int64(0); seed < 4; seed++ {
		ms := runPolicy(t, p, ins, seed)
		if ms < 4 {
			t.Fatalf("makespan %d below chain length", ms)
		}
	}
}

func TestChainsVariants(t *testing.T) {
	ins := chainsInstance(t, 8, 3, 12, 3)
	variants := []*Chains{
		{NoDelay: true},
		{Quantize: true},
		{LongJobs: &OBL{}},
		{LongJobs: &OBL{}, NoDelay: true, Quantize: true},
	}
	for _, p := range variants {
		p.LP1Cache = rounding.NewCache()
		p.LP2Cache = rounding.NewLP2Cache()
		ms := runPolicy(t, p, ins, 1)
		if ms <= 0 {
			t.Fatalf("%s: makespan %d", p.Name(), ms)
		}
	}
}

func TestChainsOnIndependent(t *testing.T) {
	// Independent jobs are a degenerate chains instance.
	ins := uniformInstance(t, 9, 3, 8)
	p := &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
	runPolicy(t, p, ins, 3)
}

func TestChainsRejectsTrees(t *testing.T) {
	g := dag.New(3)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	ins, err := model.New(2, 3, [][]float64{{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}, g)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.NewWorld(ins, rand.New(rand.NewSource(1)))
	p := &Chains{}
	if err := p.Run(w); err == nil {
		t.Fatal("Chains must reject tree precedence")
	}
}

// TestChainsLongJobBatching builds an instance with a guaranteed long job:
// one job needs many steps (tiny ℓ everywhere), others are quick.
func TestChainsLongJobBatching(t *testing.T) {
	m, n := 2, 6
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = 0.3
		}
	}
	// Job 2 is brutal: q = 0.97 on both machines (ℓ ≈ 0.044), so its LP2
	// length d_2 ≈ 23 while t*/log(n+m) stays small.
	q[0][2], q[1][2] = 0.97, 0.97
	g := dag.New(n)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(4, 5)
	ins, err := model.New(m, n, q, g)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var total ChainsStats
	p := &Chains{
		LP1Cache: rounding.NewCache(),
		LP2Cache: rounding.NewLP2Cache(),
		OnStats: func(s ChainsStats) {
			mu.Lock()
			total.LongJobs += s.LongJobs
			total.Batches += s.Batches
			mu.Unlock()
		},
	}
	for seed := int64(0); seed < 4; seed++ {
		runPolicy(t, p, ins, seed)
	}
	if total.LongJobs == 0 || total.Batches == 0 {
		t.Fatalf("long-job path not exercised: %+v (make job 2 harder)", total)
	}
}

func forestInstance(t testing.TB, seed int64, m, n int, out bool) *model.Instance {
	t.Helper()
	ins, err := workload.Forest(rand.New(rand.NewSource(seed)), m, n, 3, out, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestForestCompletes(t *testing.T) {
	for _, out := range []bool{true, false} {
		ins := forestInstance(t, 11, 3, 14, out)
		p := &Forest{Engine: &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}}
		ms := runPolicy(t, p, ins, 2)
		if ms <= 0 {
			t.Fatalf("makespan %d", ms)
		}
	}
}

func TestForestOnChainsAndIndependent(t *testing.T) {
	p := &Forest{Engine: &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}}
	runPolicy(t, p, chainsInstance(t, 12, 3, 10, 2), 1)
	runPolicy(t, p, uniformInstance(t, 13, 3, 8), 1)
}

func TestLayeredMapReduce(t *testing.T) {
	ins, err := workload.MapReduce(rand.New(rand.NewSource(14)), 4, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := &Layered{Inner: &SEM{Cache: rounding.NewCache()}}
	ms := runPolicy(t, p, ins, 3)
	if ms < 2 {
		t.Fatalf("two phases need ≥ 2 steps, got %d", ms)
	}
	if p.Name() == "" {
		t.Fatal("name empty")
	}
}

func TestLayeredIndependentFallback(t *testing.T) {
	ins := uniformInstance(t, 15, 3, 6)
	runPolicy(t, &Layered{}, ins, 1)
}

// TestSEMBeatsSequentialAtScale is the Table-1 sanity check in miniature:
// on a larger independent instance SEM's mean makespan must beat the
// trivial sequential baseline by a wide margin.
func TestSEMBeatsSequentialAtScale(t *testing.T) {
	ins := uniformInstance(t, 16, 16, 48)
	sem := &SEM{Cache: rounding.NewCache()}
	res, err := sim.MonteCarlo(ins, sem, 20, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0.0
	for s := int64(0); s < 20; s++ {
		w := sim.NewWorld(ins, rand.New(rand.NewSource(100+s)))
		for _, j := range w.Remaining() {
			if _, err := w.SoloAll(j); err != nil {
				t.Fatal(err)
			}
		}
		ms, _ := w.Makespan()
		seq += float64(ms) / 20
	}
	if res.Summary.Mean >= seq {
		t.Fatalf("SEM mean %.1f should beat sequential %.1f", res.Summary.Mean, seq)
	}
}

// TestChainsCoinMode runs SUU-C under the per-step Bernoulli simulator:
// the policies must be oblivious to which simulator drives them
// (Theorem 10's interface contract).
func TestChainsCoinMode(t *testing.T) {
	ins := chainsInstance(t, 17, 2, 6, 2)
	p := &Chains{LP1Cache: rounding.NewCache(), LP2Cache: rounding.NewLP2Cache()}
	w := sim.NewCoinWorld(ins, rand.New(rand.NewSource(4)))
	if err := p.Run(w); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Makespan(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]sim.Policy{
		"suu-i-obl": &OBL{},
		"suu-i-sem": &SEM{},
		"suu-c":     &Chains{},
		"suu-t":     &Forest{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
	c := &Chains{LongJobs: &OBL{}, NoDelay: true, Quantize: true}
	if c.Name() != "suu-c+suu-i-obl-nodelay-quantized" {
		t.Errorf("chains variant name %q", c.Name())
	}
	f := &Forest{Engine: c}
	if f.Name() == "suu-t" {
		t.Error("forest with engine should include engine name")
	}
}

// TestSEMRatioTracksLowerBound: the measured makespan over the LP lower
// bound must stay modest (single digits) on mid-size instances — the
// quantitative heart of the reproduction.
func TestSEMRatioTracksLowerBound(t *testing.T) {
	ins := uniformInstance(t, 18, 8, 32)
	lb, err := rounding.RoundLP1(ins, seqInts(32), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 1: E[T_OPT] ≥ t*/2.
	lower := math.Max(lb.TFrac/2, 1)
	sem := &SEM{Cache: rounding.NewCache()}
	res, err := sim.MonteCarlo(ins, sem, 30, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Summary.Mean / lower
	if ratio > 40 {
		t.Fatalf("SEM ratio %.1f implausibly large (mean %.1f, lower %.1f)",
			ratio, res.Summary.Mean, lower)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
