package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Chains is SUU-C (Section 4), the O(log(n+m)·loglog min{m,n})-approximation
// for precedence constraints forming disjoint chains. The construction:
//
//  1. Round (LP2) (Lemma 6) into an integral assignment {x̂_ij} whose load
//     and chain lengths are O(t*) = O(E[T_OPT]), with job lengths
//     d_j = max_i x̂_ij.
//  2. Call a job long if d_j > γ = t*/log₂(n+m), short otherwise. Each
//     chain becomes an adaptive schedule Σ_k: run the next uncompleted
//     short job's assignment as an oblivious block of d_j supersteps,
//     retrying the block until the job completes; replace each long job by
//     a pause of γ supersteps.
//  3. Run all Σ_k in parallel as a pseudoschedule, delaying each chain's
//     start uniformly from {0,…,H} (H = load) — the random-delay technique
//     of Theorem 7 keeps congestion O(log(n+m)/loglog(n+m)) whp.
//  4. Flatten each superstep at cost equal to its congestion (StepMulti).
//  5. Split the timeline into segments of γ supersteps; after each
//     segment, suspend the chains and finish that segment's paused long
//     jobs with one SUU-I-SEM batch (they are mutually independent).
//
// Plugging OBL in as the long-job runner instead of SEM yields the
// Lin–Rajaraman-style baseline with an extra Θ(log n / loglog n) factor.
type Chains struct {
	// LP1Cache memoizes the LP1 roundings of the long-job batches.
	LP1Cache *rounding.Cache
	// LP2Cache memoizes the (deterministic, per-instance) LP2 rounding.
	LP2Cache *rounding.LP2Cache
	// LongJobs finishes each segment's long-job batch; nil means SEM
	// (the paper's choice).
	LongJobs SubsetRunner
	// NoDelay disables the random chain delays (Theorem 7 ablation).
	NoDelay bool
	// Quantize enables the nonpolynomial-t trick from Section 4: block
	// assignments are rounded down to multiples of t*/(nm) and the lost
	// steps are reinserted as solo steps. Off by default — the simulator
	// draws delays directly, so polynomiality of the delay range is not
	// needed; the option exists to exercise the paper's construction.
	Quantize bool
	// MaxSupersteps guards against runaway executions (0 = default cap).
	MaxSupersteps int64
	// OnStats, if set, receives execution statistics after every
	// RunChains call. It must be safe for concurrent use (Monte Carlo
	// trials share the policy value).
	OnStats func(ChainsStats)

	// pool hands each concurrent RunChains a solver workspace for the
	// (cached, once-per-instance) LP2 rounding.
	pool rounding.WorkspacePool
	// defLong is the lazily-built default long-job runner; sharing one SEM
	// across trials keeps its cache and solver workspaces warm.
	defOnce sync.Once
	defLong *SEM
}

// ChainsStats describes one RunChains execution; the congestion figures
// quantify Theorem 7 (random delays keep congestion low).
type ChainsStats struct {
	Supersteps    int64 // pseudoschedule supersteps executed
	MaxCongestion int64 // max jobs per machine in any superstep
	SumCongestion int64 // Σ max(1, congestion): flattened timeline length
	LongJobs      int   // jobs classified long (d_j > γ)
	Batches       int   // long-job batches run
	Gamma         int64 // the long/short threshold γ
	Load          int64 // H, the rounded assignment's load
}

// Name implements sim.Policy.
func (c *Chains) Name() string {
	n := "suu-c"
	if c.LongJobs != nil {
		n += "+" + c.LongJobs.Name()
	}
	if c.NoDelay {
		n += "-nodelay"
	}
	if c.Quantize {
		n += "-quantized"
	}
	return n
}

// Run completes an instance whose precedence class is chains (or
// independent, which is a degenerate chain instance).
func (c *Chains) Run(w *sim.World) error {
	chains, err := w.Instance().Chains()
	if err != nil {
		return fmt.Errorf("core: %s: %w", c.Name(), err)
	}
	return c.RunChains(w, chains)
}

// chain execution modes.
const (
	modeNone = iota // between jobs; needs a decision
	modeBlock
	modePause
	modeChainDone
)

// chainState is one Σ_k's progress through its chain.
type chainState struct {
	jobs        []int
	pos         int
	delay       int64
	mode        int
	job         int
	off, length int64
}

// RunChains runs the SUU-C machinery over an explicit set of disjoint
// chains. All chain jobs must be uncompleted and their outside-chain
// predecessors complete. The LP2 warm chain starts fresh: standalone SUU-C
// solves one (LP2), so there is no previous block to seed from (SUU-T
// instead threads one workspace through all its blocks via runChains).
func (c *Chains) RunChains(w *sim.World, chains []dag.Chain) error {
	ws := c.pool.Get()
	defer c.pool.Put(ws)
	ws.BeginLP2()
	return c.runChains(w, chains, ws)
}

// runChains is RunChains on an explicit workspace, whose LP2 warm chain
// seeds this block's solve from the blocks the caller already ran through
// it (SUU-T calls this once per decomposition block with one per-trial
// workspace, so block k+1's machine rows warm-start from block k the way
// SEM's round re-solves warm-start from the previous round).
func (c *Chains) runChains(w *sim.World, chains []dag.Chain, ws *rounding.Workspace) error {
	if len(chains) == 0 {
		return nil
	}
	ins := w.Instance()
	r, err := c.LP2Cache.RoundLP2Ws(ws, ins, chains)
	if err != nil {
		return err
	}
	longRunner := c.LongJobs
	if longRunner == nil {
		c.defOnce.Do(func() { c.defLong = &SEM{Cache: c.LP1Cache} })
		longRunner = c.defLong
	}

	// γ = t̂/log₂(n+m) (at least 1); jobs with rounded length d̂_j > γ are
	// long. The scale t̂ is the rounded schedule's, max(⌈6t*⌉, load):
	// rounded job lengths carry Lemma 6's 6× inflation, so comparing them
	// against the fractional t* would misclassify nearly everything as
	// long and starve the chain machinery.
	that := int64(math.Ceil(6 * r.TFrac))
	if r.Load > that {
		that = r.Load
	}
	gamma := that / int64(math.Ceil(math.Log2(float64(ins.N+ins.M))))
	if gamma < 1 {
		gamma = 1
	}
	x, lost := c.quantized(ins, r)
	var st8s ChainsStats
	st8s.Gamma = gamma
	st8s.Load = r.Load
	dHat := make([]int64, ins.N)
	long := make([]bool, ins.N)
	for _, ch := range chains {
		for _, j := range ch {
			dHat[j] = x.JobLength(j)
			if dHat[j] < 1 {
				dHat[j] = 1
			}
			long[j] = r.JobLength[j] > gamma
			if long[j] {
				st8s.LongJobs++
			}
		}
	}

	// Random chain delays from {0,…,H} (Theorem 7).
	h := r.Load
	states := make([]chainState, len(chains))
	for k, ch := range chains {
		states[k] = chainState{jobs: ch, job: -1}
		if !c.NoDelay && h > 0 {
			states[k].delay = w.Rng().Int63n(h + 1)
		}
	}

	maxSS := c.MaxSupersteps
	if maxSS <= 0 {
		maxSS = 20_000_000
	}
	pending := make(map[int64][]int) // segment -> long jobs paused in it
	assign := make([][]int, ins.M)
	for superstep := int64(0); ; superstep++ {
		if superstep > maxSS {
			return fmt.Errorf("core: %s exceeded %d supersteps", c.Name(), maxSS)
		}
		anyActive := false
		for k := range states {
			if err := c.resolve(w, &states[k], dHat, long, lost, gamma, pending, superstep); err != nil {
				return err
			}
			if states[k].mode != modeChainDone {
				anyActive = true
			}
		}
		if !anyActive {
			break
		}
		// Collect the pseudoschedule's superstep: machine i works every
		// in-block job whose assignment still covers this offset.
		for i := range assign {
			assign[i] = assign[i][:0]
		}
		for k := range states {
			st := &states[k]
			if st.delay > 0 || st.mode != modeBlock || w.Done(st.job) {
				continue
			}
			for i := 0; i < ins.M; i++ {
				if x.X[i][st.job] > st.off {
					assign[i] = append(assign[i], st.job)
				}
			}
		}
		cong := int64(0)
		for i := range assign {
			if int64(len(assign[i])) > cong {
				cong = int64(len(assign[i]))
			}
		}
		if cong > st8s.MaxCongestion {
			st8s.MaxCongestion = cong
		}
		if cong < 1 {
			cong = 1
		}
		st8s.SumCongestion += cong
		st8s.Supersteps++
		if _, err := w.StepMulti(assign); err != nil {
			return err
		}
		for k := range states {
			st := &states[k]
			switch {
			case st.mode == modeChainDone:
			case st.delay > 0:
				st.delay--
			case st.mode == modeBlock || st.mode == modePause:
				st.off++
			}
		}
		// Segment boundary: batch-complete the long jobs whose pauses
		// started in the segment that just ended.
		if (superstep+1)%gamma == 0 {
			seg := superstep / gamma
			if batch := remainingOf(w, pending[seg]); len(batch) > 0 {
				st8s.Batches++
				if err := longRunner.RunOnSubset(w, batch); err != nil {
					return err
				}
			}
			delete(pending, seg)
		}
	}
	if c.OnStats != nil {
		c.OnStats(st8s)
	}
	return nil
}

// resolve advances a chain's state machine through any finished blocks and
// pauses, starting the next block or pause as needed. Pauses are recorded
// in pending under the segment in which they start.
func (c *Chains) resolve(w *sim.World, st *chainState, dHat []int64, long []bool, lost *sched.Assignment, gamma int64, pending map[int64][]int, superstep int64) error {
	if st.mode == modeChainDone || st.delay > 0 {
		return nil
	}
	for {
		switch st.mode {
		case modeBlock:
			if st.off < st.length {
				return nil
			}
			// Block finished. Reinsert quantization-lost steps (solo),
			// then retry the same job if it still failed.
			if !w.Done(st.job) && lost != nil {
				if err := c.reinsert(w, st.job, lost); err != nil {
					return err
				}
			}
			if !w.Done(st.job) {
				st.off = 0
				return nil
			}
			st.pos++
			st.mode = modeNone
		case modePause:
			if st.off < st.length {
				return nil
			}
			if !w.Done(st.job) {
				return fmt.Errorf("core: long job %d not completed when its pause ended", st.job)
			}
			st.pos++
			st.mode = modeNone
		case modeNone:
			for st.pos < len(st.jobs) && w.Done(st.jobs[st.pos]) {
				st.pos++
			}
			if st.pos >= len(st.jobs) {
				st.mode = modeChainDone
				return nil
			}
			j := st.jobs[st.pos]
			if long[j] {
				st.mode, st.job, st.off, st.length = modePause, j, 0, gamma
				seg := superstep / gamma
				pending[seg] = append(pending[seg], j)
			} else {
				st.mode, st.job, st.off, st.length = modeBlock, j, 0, dHat[j]
			}
			return nil
		default:
			return fmt.Errorf("core: invalid chain mode %d", st.mode)
		}
	}
}

// quantized applies the Section 4 nonpolynomial-t trick when enabled:
// assignments are rounded down to multiples of q = t*/(nm) and the
// remainder is reinserted as solo steps after each block. It returns the
// assignment to execute and the per-pair lost steps (nil when disabled or
// when the quantum is below 1 step).
func (c *Chains) quantized(ins *model.Instance, r *rounding.LP2Result) (*sched.Assignment, *sched.Assignment) {
	if !c.Quantize {
		return r.Assignment, nil
	}
	m, n := ins.M, ins.N
	q := int64(r.TFrac) / int64(n*m)
	if q <= 1 {
		return r.Assignment, nil
	}
	x := sched.NewAssignment(m, n)
	lost := sched.NewAssignment(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := r.Assignment.X[i][j]
			x.X[i][j] = v / q * q
			lost.X[i][j] = v - x.X[i][j]
		}
	}
	return x, lost
}

// reinsert executes the quantization-lost steps of job j as solo
// supersteps: every other chain is suspended while only j runs, exactly
// the paper's "reinsert steps executing only job j".
func (c *Chains) reinsert(w *sim.World, j int, lost *sched.Assignment) error {
	maxLost := int64(0)
	for i := 0; i < lost.M; i++ {
		if lost.X[i][j] > maxLost {
			maxLost = lost.X[i][j]
		}
	}
	assign := make([][]int, lost.M)
	for s := int64(0); s < maxLost && !w.Done(j); s++ {
		for i := range assign {
			assign[i] = nil
			if lost.X[i][j] > s {
				assign[i] = []int{j}
			}
		}
		if _, err := w.StepMulti(assign); err != nil {
			return err
		}
	}
	return nil
}
