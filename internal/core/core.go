// Package core implements the paper's scheduling algorithms — its primary
// contribution:
//
//   - OBL: the oblivious O(log n)-approximation for independent jobs
//     (Section 3, SUU-I-OBL),
//   - SEM: the semioblivious O(log log min{m,n})-approximation for
//     independent jobs (Section 3, SUU-I-SEM),
//   - Chains: the O(log(n+m)·loglog min{m,n})-approximation for disjoint
//     chains (Section 4, SUU-C),
//   - Forest: the O(log n · log(n+m) · loglog min{m,n})-approximation for
//     directed forests (Appendix B, SUU-T),
//   - Layered: a level-by-level extension for general layered DAGs such as
//     MapReduce's bipartite phases (motivated by the paper's introduction).
//
// Every algorithm implements sim.Policy, driving a sim.World (the SUU*
// engine) to completion; randomized choices draw from the world's RNG so
// trials stay reproducible.
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/rounding"
	"repro/internal/sim"
)

// maxPasses bounds schedule repetitions; in threshold mode ≈130 passes
// suffice for any job (threshold ≤ 64, mass ≥ 1/2 per pass), so hitting
// this limit means a bug rather than bad luck.
const maxPasses = 1 << 30

// SubsetRunner is a policy component that completes a given set of
// mutually-independent eligible jobs. SUU-C uses one to finish each
// segment's batch of long jobs: plugging in SEM gives the paper's
// algorithm; plugging in OBL gives the Lin–Rajaraman-style baseline with
// the extra log factor.
type SubsetRunner interface {
	Name() string
	RunOnSubset(w *sim.World, jobs []int) error
}

// remainingOf filters jobs down to those not yet completed.
func remainingOf(w *sim.World, jobs []int) []int {
	var out []int
	for _, j := range jobs {
		if !w.Done(j) {
			out = append(out, j)
		}
	}
	return out
}

// requireIndependent rejects worlds whose instances have precedence
// constraints; OBL and SEM are defined for SUU-I.
func requireIndependent(w *sim.World, name string) error {
	ins := w.Instance()
	if ins.Prec != nil && ins.Prec.Edges() > 0 {
		return fmt.Errorf("core: %s requires independent jobs, instance has precedence class %v",
			name, ins.Class())
	}
	return nil
}

// OBL is SUU-I-OBL (Section 3): round LP1(J, 1/2) into a finite oblivious
// schedule of length O(E[T_OPT]) that gives every job failure probability
// at most 1/√2 per pass, then repeat the schedule until all jobs complete.
// Expected makespan O(E[T_OPT]·log n).
type OBL struct {
	// Cache, if set, memoizes the LP rounding across Monte Carlo trials.
	Cache *rounding.Cache
	// pool hands each concurrent Run a reusable LP solver workspace, so
	// cache-miss solves reuse one tableau per worker.
	pool rounding.WorkspacePool
}

// Name implements sim.Policy.
func (o *OBL) Name() string { return "suu-i-obl" }

// Run completes all jobs of an independent-jobs instance.
func (o *OBL) Run(w *sim.World) error {
	if err := requireIndependent(w, o.Name()); err != nil {
		return err
	}
	return o.RunOnSubset(w, w.Remaining())
}

// RunOnSubset completes the given eligible jobs by repeating their
// LP1(jobs, 1/2) schedule.
func (o *OBL) RunOnSubset(w *sim.World, jobs []int) error {
	jobs = remainingOf(w, jobs)
	if len(jobs) == 0 {
		return nil
	}
	ws := o.pool.Get()
	r, err := o.Cache.RoundLP1Ws(ws, w.Instance(), jobs, 0.5)
	o.pool.Put(ws)
	if err != nil {
		return err
	}
	_, err = w.RepeatOblivious(r.Assignment.Serialize(), maxPasses)
	return err
}

// SEM is SUU-I-SEM (Section 3): K = ⌈log₂log₂ min{m,n}⌉ + 3 rounds with
// doubling mass targets L_k = 2^(k−2), each an oblivious LP1 schedule over
// the still-uncompleted jobs; stragglers after round K run one at a time on
// all machines (n ≤ m) or under a repeated round-K schedule (m < n).
// Expected makespan O(E[T_OPT]·log log min{m,n}).
type SEM struct {
	// Cache, if set, memoizes LP roundings across Monte Carlo trials
	// (round 1 is identical in every trial).
	Cache *rounding.Cache
	// ColdLP disables the per-worker solver workspace and warm-started
	// round re-solves, solving every round's LP1 cold on a fresh
	// workspace. It exists as the baseline arm of the LP-engine
	// benchmarks (t1-large-cold); leave it false everywhere else.
	ColdLP bool
	// OnRound, if set, observes (round, jobs still uncompleted) at the
	// start of every round, and (K+1, stragglers) when the endgame fires.
	// It must be safe for concurrent use.
	OnRound func(round, remaining int)
	// pool hands each concurrent Run a workspace that carries one solver
	// tableau plus the round-over-round warm-start chain.
	pool rounding.WorkspacePool
}

// Name implements sim.Policy.
func (s *SEM) Name() string { return "suu-i-sem" }

// Rounds returns the round budget K for a subproblem with nJobs jobs:
// ⌈log₂ log₂ min{m, nJobs}⌉ + 3, with the degenerate min{m,n} < 4 cases
// getting the constant floor of 3.
func Rounds(m, nJobs int) int {
	minMN := m
	if nJobs < minMN {
		minMN = nJobs
	}
	k := 3
	if minMN >= 4 {
		k += int(math.Ceil(math.Log2(math.Log2(float64(minMN))) - 1e-12))
	}
	return k
}

// Run completes all jobs of an independent-jobs instance.
func (s *SEM) Run(w *sim.World) error {
	if err := requireIndependent(w, s.Name()); err != nil {
		return err
	}
	return s.RunOnSubset(w, w.Remaining())
}

// RunOnSubset completes the given eligible jobs; it is the long-job
// subroutine of SUU-C and the per-layer engine of Layered.
//
// Rounds re-solve LP1 on the warm-start chain: round k+1's job set is a
// subset of round k's with a doubled target, so the previous basis seeds
// the solve (see rounding.Workspace). The chain is reset per call and the
// cache key of each link includes the chain history, so every trial's
// makespan stays a deterministic function of its seed — byte-identical
// across worker counts — even though warm and cold solves may land on
// different (equally optimal) vertices.
func (s *SEM) RunOnSubset(w *sim.World, jobs []int) error {
	ins := w.Instance()
	jobs = remainingOf(w, jobs)
	if len(jobs) == 0 {
		return nil
	}
	var ws *rounding.Workspace
	if !s.ColdLP {
		ws = s.pool.Get()
		defer s.pool.Put(ws)
		ws.Begin()
	}
	k := Rounds(ins.M, len(jobs))
	var lastRound *rounding.LP1Result
	for round := 1; round <= k; round++ {
		rem := remainingOf(w, jobs)
		if len(rem) == 0 {
			// Completed inside the round budget; still report the endgame
			// observation so OnRound sees every execution exactly once.
			if s.OnRound != nil {
				s.OnRound(k+1, 0)
			}
			return nil
		}
		if s.OnRound != nil {
			s.OnRound(round, len(rem))
		}
		target := math.Pow(2, float64(round-2)) // L_k = 2^(k−2), L_1 = 1/2
		var r *rounding.LP1Result
		var err error
		if ws != nil {
			r, err = s.Cache.RoundLP1Chained(ws, ins, rem, target)
		} else {
			r, err = s.Cache.RoundLP1(ins, rem, target)
		}
		if err != nil {
			return err
		}
		lastRound = r
		if err := w.RunOblivious(r.Assignment.Serialize()); err != nil {
			return err
		}
	}
	rem := remainingOf(w, jobs)
	if s.OnRound != nil {
		s.OnRound(k+1, len(rem))
	}
	if len(rem) == 0 {
		return nil
	}
	// Endgame (Theorem 4): by now every straggler's threshold is huge
	// (probability ≤ 1/min{m,n} that any exists).
	if len(jobs) <= ins.M {
		// n ≤ m: run stragglers one at a time on all machines.
		for _, j := range rem {
			if _, err := w.SoloAll(j); err != nil {
				return err
			}
		}
		return nil
	}
	// m < n: repeat the round-K schedule until the stragglers finish.
	// Every straggler is covered: it was uncompleted when round K was
	// built, so the round-K assignment gives it mass ≥ L_K per pass.
	_, err := w.RepeatOblivious(lastRound.Assignment.Serialize(), maxPasses)
	return err
}

// Layered schedules a general layered DAG level by level: each layer of the
// longest-path layering is a set of independent jobs (no edges inside a
// layer), eligible as soon as all earlier layers finish. MapReduce's
// complete-bipartite dependencies (paper introduction) are the canonical
// two-layer case. The approximation factor multiplies SEM's by the number
// of layers.
type Layered struct {
	// Inner completes each layer; defaults to SEM with a fresh cache.
	Inner SubsetRunner

	defOnce  sync.Once
	defInner *SEM
}

// Name implements sim.Policy.
func (l *Layered) Name() string {
	if l.Inner != nil {
		return "layered+" + l.Inner.Name()
	}
	return "layered+suu-i-sem"
}

// Run completes all jobs layer by layer.
func (l *Layered) Run(w *sim.World) error {
	inner := l.Inner
	if inner == nil {
		// Built once, not per trial, so the default SEM's cache and solver
		// workspaces are shared across the whole Monte Carlo run.
		l.defOnce.Do(func() { l.defInner = &SEM{Cache: rounding.NewCache()} })
		inner = l.defInner
	}
	ins := w.Instance()
	if ins.Prec == nil {
		return inner.RunOnSubset(w, w.Remaining())
	}
	layers, err := ins.Prec.Layers()
	if err != nil {
		return err
	}
	for _, layer := range layers {
		if err := inner.RunOnSubset(w, layer); err != nil {
			return err
		}
	}
	if !w.AllDone() {
		return fmt.Errorf("core: layered left %d jobs uncompleted", w.NumRemaining())
	}
	return nil
}
