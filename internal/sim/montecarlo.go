package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/model"
	"repro/internal/stats"
)

// Policy is a scheduling algorithm: given a fresh world, it must drive every
// job to completion. Implementations must be safe for concurrent use by
// multiple goroutines (configuration only — per-trial state lives in local
// variables and in the World, including its Rng).
type Policy interface {
	Name() string
	Run(w *World) error
}

// MCResult is the outcome of a Monte Carlo estimate.
type MCResult struct {
	Makespans []float64
	Summary   stats.Summary
}

// MonteCarlo estimates the expected makespan of policy p on ins over the
// given number of independent trials. Trials are distributed over a fixed
// worker pool; trial i uses its own RNG seeded with seed+i, so results are
// identical regardless of worker count or interleaving.
func MonteCarlo(ins *model.Instance, p Policy, trials int, seed int64, workers int) (*MCResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials = %d", trials)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	makespans := make([]float64, trials)
	idx := make(chan int, trials)
	for i := 0; i < trials; i++ {
		idx <- i
	}
	close(idx)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					return
				}
				ms, err := oneTrial(ins, p, seed+int64(i))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sim: trial %d of %s: %w", i, p.Name(), err)
					}
					mu.Unlock()
					return
				}
				makespans[i] = float64(ms)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &MCResult{Makespans: makespans, Summary: stats.Summarize(makespans)}, nil
}

func oneTrial(ins *model.Instance, p Policy, seed int64) (int64, error) {
	w := NewWorld(ins, rand.New(rand.NewSource(seed)))
	if err := p.Run(w); err != nil {
		return 0, err
	}
	return w.Makespan()
}

// MonteCarloCoin is MonteCarlo on the per-step Bernoulli simulator. It is
// slower (no fast-forwarding) and exists to validate the SUU ≡ SUU*
// equivalence of Theorem 10 on small instances.
func MonteCarloCoin(ins *model.Instance, p Policy, trials int, seed int64, workers int) (*MCResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials = %d", trials)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	makespans := make([]float64, trials)
	idx := make(chan int, trials)
	for i := 0; i < trials; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				w := NewCoinWorld(ins, rand.New(rand.NewSource(seed+int64(i))))
				err := p.Run(w)
				var ms int64
				if err == nil {
					ms, err = w.Makespan()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sim: coin trial %d of %s: %w", i, p.Name(), err)
					}
					mu.Unlock()
					return
				}
				makespans[i] = float64(ms)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &MCResult{Makespans: makespans, Summary: stats.Summarize(makespans)}, nil
}
