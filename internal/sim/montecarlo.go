package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Policy is a scheduling algorithm: given a fresh world, it must drive every
// job to completion. Implementations must be safe for concurrent use by
// multiple goroutines (configuration only — per-trial state lives in local
// variables and in the World, including its Rng). A Policy must not retain
// the World, its Rng, or slices returned by World methods after Run
// returns: Monte Carlo workers recycle the same World for the next trial.
type Policy interface {
	Name() string
	Run(w *World) error
}

// MCResult is the outcome of a Monte Carlo estimate.
type MCResult struct {
	Makespans []float64
	Summary   stats.Summary
}

// MonteCarlo estimates the expected makespan of policy p on ins over the
// given number of independent trials. Trials are distributed over a fixed
// worker pool; trial i always runs with a SplitMix64 stream seeded with
// seed+i, so results are identical regardless of worker count or
// interleaving. Each worker owns one World and one RNG, recycled across
// trials via Reset/Seed — the steady-state trial loop does not allocate.
func MonteCarlo(ins *model.Instance, p Policy, trials int, seed int64, workers int) (*MCResult, error) {
	return monteCarlo(ins, p, trials, seed, workers, Threshold)
}

// MonteCarloCoin is MonteCarlo on the per-step Bernoulli simulator. It is
// slower (no fast-forwarding) and exists to validate the SUU ≡ SUU*
// equivalence of Theorem 10 on small instances.
func MonteCarloCoin(ins *model.Instance, p Policy, trials int, seed int64, workers int) (*MCResult, error) {
	return monteCarlo(ins, p, trials, seed, workers, Coin)
}

// monteCarlo is the shared worker-pool body behind both estimators. Error
// propagation is allocation- and lock-free on the happy path: workers poll
// an atomic.Bool and the first failure is recorded under a sync.Once.
func monteCarlo(ins *model.Instance, p Policy, trials int, seed int64, workers int, mode Mode) (*MCResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials = %d", trials)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	label := ""
	if mode == Coin {
		label = "coin "
	}
	makespans := make([]float64, trials)
	var next atomic.Int64
	var failed atomic.Bool
	var errOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := rng.New(0)
			r := rand.New(src)
			w := newWorld(ins, mode)
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				src.Seed(seed + int64(i))
				w.Reset(r)
				err := p.Run(w)
				var ms int64
				if err == nil {
					ms, err = w.Makespan()
				}
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sim: %strial %d of %s: %w", label, i, p.Name(), err)
					})
					failed.Store(true)
					return
				}
				makespans[i] = float64(ms)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &MCResult{Makespans: makespans, Summary: stats.Summarize(makespans)}, nil
}
