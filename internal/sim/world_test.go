package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/sched"
)

func mustInstance(t testing.TB, m, n int, q [][]float64, g *dag.DAG) *model.Instance {
	t.Helper()
	ins, err := model.New(m, n, q, g)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestStepCompletesAtThreshold(t *testing.T) {
	// One machine, one job, q = 0.5 so ℓ = 1. Threshold 2.5 ⇒ completes
	// at the end of step 3.
	ins := mustInstance(t, 1, 1, [][]float64{{0.5}}, nil)
	w, err := NewWorldWithThresholds(ins, []float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 3; s++ {
		completed, err := w.Step([]int{0})
		if err != nil {
			t.Fatal(err)
		}
		if s < 3 && len(completed) != 0 {
			t.Fatalf("completed early at step %d", s)
		}
		if s == 3 && (len(completed) != 1 || completed[0] != 0) {
			t.Fatalf("step 3 completions = %v", completed)
		}
	}
	ms, err := w.Makespan()
	if err != nil || ms != 3 {
		t.Fatalf("makespan = %d, %v", ms, err)
	}
}

func TestMakespanBeforeDone(t *testing.T) {
	ins := mustInstance(t, 1, 1, [][]float64{{0.5}}, nil)
	w := NewWorld(ins, rand.New(rand.NewSource(1)))
	if _, err := w.Makespan(); err == nil {
		t.Fatal("want error before completion")
	}
}

func TestEligibilityEnforced(t *testing.T) {
	g := dag.New(2)
	g.MustEdge(0, 1)
	ins := mustInstance(t, 1, 2, [][]float64{{0.5, 0.5}}, g)
	w, err := NewWorldWithThresholds(ins, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if w.Eligible(1) {
		t.Fatal("job 1 should be ineligible")
	}
	if _, err := w.Step([]int{1}); err == nil {
		t.Fatal("scheduling ineligible job must error")
	}
	if _, err := w.Step([]int{0}); err != nil {
		t.Fatal(err)
	}
	if !w.Done(0) || !w.Eligible(1) {
		t.Fatal("job 0 done should unlock job 1")
	}
	if _, err := w.Step([]int{1}); err != nil {
		t.Fatal(err)
	}
	ms, err := w.Makespan()
	if err != nil || ms != 2 {
		t.Fatalf("makespan = %d, %v", ms, err)
	}
}

func TestIdleAndCompletedAssignments(t *testing.T) {
	ins := mustInstance(t, 2, 2, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, nil)
	w, err := NewWorldWithThresholds(ins, []float64{0.5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step([]int{0, -1}); err != nil {
		t.Fatal(err)
	}
	if !w.Done(0) {
		t.Fatal("job 0 should be done")
	}
	// Assigning a machine to a completed job is legal idling.
	if _, err := w.Step([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if w.NumRemaining() != 1 || w.Remaining()[0] != 1 {
		t.Fatalf("remaining = %v", w.Remaining())
	}
}

func TestStepErrors(t *testing.T) {
	ins := mustInstance(t, 1, 1, [][]float64{{0.5}}, nil)
	w := NewWorld(ins, rand.New(rand.NewSource(1)))
	if _, err := w.Step([]int{0, 1}); err == nil {
		t.Fatal("wrong assignment width must error")
	}
	if _, err := w.Step([]int{7}); err == nil {
		t.Fatal("out-of-range job must error")
	}
}

func TestSoloAllAnalytic(t *testing.T) {
	ins := mustInstance(t, 2, 1, [][]float64{{0.5}, {0.25}}, nil)
	// Total rate = 1 + 2 = 3; threshold 7 ⇒ ceil(7/3) = 3 steps.
	w, err := NewWorldWithThresholds(ins, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := w.SoloAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
	ms, _ := w.Makespan()
	if ms != 3 {
		t.Fatalf("makespan = %d", ms)
	}
	// SoloAll on a done job is free.
	steps, err = w.SoloAll(0)
	if err != nil || steps != 0 {
		t.Fatalf("solo on done job: %d, %v", steps, err)
	}
}

func TestStepMultiCongestionCost(t *testing.T) {
	ins := mustInstance(t, 2, 3, [][]float64{{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}, nil)
	w, err := NewWorldWithThresholds(ins, []float64{50, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	// Machine 0 runs jobs 0,1,2 (congestion 3); machine 1 runs job 0.
	if _, err := w.StepMulti([][]int{{0, 1, 2}, {0}}); err != nil {
		t.Fatal(err)
	}
	if w.Clock() != 3 {
		t.Fatalf("clock = %d, want congestion cost 3", w.Clock())
	}
	// Empty superstep still costs 1.
	if _, err := w.StepMulti([][]int{nil, nil}); err != nil {
		t.Fatal(err)
	}
	if w.Clock() != 4 {
		t.Fatalf("clock = %d, want 4", w.Clock())
	}
}

func randomInstance(rng *rand.Rand, m, n int) *model.Instance {
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = 0.05 + 0.9*rng.Float64()
		}
	}
	ins, err := model.New(m, n, q, nil)
	if err != nil {
		panic(err)
	}
	return ins
}

func randomOblivious(rng *rand.Rand, m, n int) *sched.Oblivious {
	a := sched.NewAssignment(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				a.X[i][j] = int64(rng.Intn(4))
			}
		}
	}
	return a.Serialize()
}

// TestRunObliviousMatchesSteps is the core fast-forward property: analytic
// execution of an oblivious pass must agree exactly with step-by-step
// execution for the same thresholds.
func TestRunObliviousMatchesSteps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(4), 1+rng.Intn(6)
		ins := randomInstance(rng, m, n)
		o := randomOblivious(rng, m, n)
		thr := make([]float64, n)
		for j := range thr {
			thr[j] = drawThreshold(rng) * (0.2 + 2*rng.Float64())
		}
		wa, err := NewWorldWithThresholds(ins, thr)
		if err != nil {
			return false
		}
		wb, err := NewWorldWithThresholds(ins, thr)
		if err != nil {
			return false
		}
		if err := wa.RunOblivious(o); err != nil {
			t.Logf("seed %d: RunOblivious: %v", seed, err)
			return false
		}
		for _, assign := range o.StepAssignments() {
			if _, err := wb.Step(assign); err != nil {
				t.Logf("seed %d: Step: %v", seed, err)
				return false
			}
			if wb.AllDone() {
				break
			}
		}
		for j := 0; j < n; j++ {
			if wa.Done(j) != wb.Done(j) {
				t.Logf("seed %d: job %d done mismatch (%v vs %v)", seed, j, wa.Done(j), wb.Done(j))
				return false
			}
			if !wa.Done(j) && math.Abs(wa.acc[j]-wb.acc[j]) > 1e-6 {
				t.Logf("seed %d: job %d acc %g vs %g", seed, j, wa.acc[j], wb.acc[j])
				return false
			}
		}
		if wa.LastCompletion() != wb.LastCompletion() {
			t.Logf("seed %d: last completion %d vs %d", seed, wa.LastCompletion(), wb.LastCompletion())
			return false
		}
		if wa.AllDone() {
			ma, _ := wa.Makespan()
			mb, _ := wb.Makespan()
			if ma != mb {
				t.Logf("seed %d: makespan %d vs %d", seed, ma, mb)
				return false
			}
		} else if wa.Clock() != o.Length {
			t.Logf("seed %d: clock %d, want full length %d", seed, wa.Clock(), o.Length)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatObliviousMatchesManualRepeat checks analytic repetition against
// repeated single passes.
func TestRepeatObliviousMatchesManualRepeat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(3), 1+rng.Intn(4)
		ins := randomInstance(rng, m, n)
		// Ensure every job is covered: give each job one step on a
		// random machine plus the random extras.
		a := sched.NewAssignment(m, n)
		for j := 0; j < n; j++ {
			a.X[rng.Intn(m)][j] = 1 + int64(rng.Intn(3))
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					a.X[i][j] += int64(rng.Intn(3))
				}
			}
		}
		o := a.Serialize()
		thr := make([]float64, n)
		for j := range thr {
			thr[j] = 0.1 + 8*rng.Float64()
		}
		wa, _ := NewWorldWithThresholds(ins, thr)
		wb, _ := NewWorldWithThresholds(ins, thr)
		if _, err := wa.RepeatOblivious(o, 1<<40); err != nil {
			t.Logf("seed %d: RepeatOblivious: %v", seed, err)
			return false
		}
		for !wb.AllDone() {
			if err := wb.RunOblivious(o); err != nil {
				t.Logf("seed %d: RunOblivious: %v", seed, err)
				return false
			}
		}
		ma, _ := wa.Makespan()
		mb, _ := wb.Makespan()
		if ma != mb {
			t.Logf("seed %d: makespan %d vs %d", seed, ma, mb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatObliviousSubsetSemantics(t *testing.T) {
	// Job 1 is not in the schedule: RepeatOblivious completes job 0 only.
	ins := mustInstance(t, 1, 2, [][]float64{{0.5, 0.5}}, nil)
	a := sched.NewAssignment(1, 2)
	a.X[0][0] = 1
	w, _ := NewWorldWithThresholds(ins, []float64{1.5, 1})
	passes, err := w.RepeatOblivious(a.Serialize(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 2 || !w.Done(0) || w.Done(1) {
		t.Fatalf("passes=%d done=(%v,%v)", passes, w.Done(0), w.Done(1))
	}
	if w.Clock() != 2 {
		t.Fatalf("clock = %d, want 2", w.Clock())
	}
}

func TestRepeatObliviousZeroMassScheduledJob(t *testing.T) {
	// Job scheduled on a machine that gives it no mass (q=1): must error
	// rather than loop forever.
	ins := mustInstance(t, 2, 1, [][]float64{{1.0}, {0.5}}, nil)
	a := sched.NewAssignment(2, 1)
	a.X[0][0] = 3 // only the useless machine
	w, _ := NewWorldWithThresholds(ins, []float64{1})
	if _, err := w.RepeatOblivious(a.Serialize(), 100); err == nil {
		t.Fatal("zero-mass scheduled job must error")
	}
}

// seqPolicy completes jobs one at a time in topological order; it is the
// trivial test policy.
type seqPolicy struct{}

func (seqPolicy) Name() string { return "seq-test" }
func (seqPolicy) Run(w *World) error {
	for !w.AllDone() {
		for _, j := range w.EligibleJobs() {
			if _, err := w.SoloAll(j); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestGeometricClosedForm(t *testing.T) {
	// Single job, single machine with q: E[T] = 1/(1-q) in both modes.
	const q = 0.5
	ins := mustInstance(t, 1, 1, [][]float64{{q}}, nil)
	const trials = 40000
	res, err := MonteCarlo(ins, seqPolicy{}, trials, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	resCoin, err := MonteCarloCoin(ins, seqPolicy{}, trials, 1042, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - q)
	if math.Abs(res.Summary.Mean-want) > 0.05 {
		t.Fatalf("threshold mean = %g, want %g", res.Summary.Mean, want)
	}
	if math.Abs(resCoin.Summary.Mean-want) > 0.05 {
		t.Fatalf("coin mean = %g, want %g", resCoin.Summary.Mean, want)
	}
	// Theorem 10: the two modes agree in distribution.
	if math.Abs(res.Summary.Mean-resCoin.Summary.Mean) > 0.08 {
		t.Fatalf("modes disagree: %g vs %g", res.Summary.Mean, resCoin.Summary.Mean)
	}
}

func TestParallelMachinesClosedForm(t *testing.T) {
	// One job on two machines with q1, q2 every step:
	// E[T] = 1/(1-q1·q2).
	ins := mustInstance(t, 2, 1, [][]float64{{0.6}, {0.5}}, nil)
	res, err := MonteCarlo(ins, seqPolicy{}, 40000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.3)
	if math.Abs(res.Summary.Mean-want) > 0.05 {
		t.Fatalf("mean = %g, want %g", res.Summary.Mean, want)
	}
}

func TestChainAdditivity(t *testing.T) {
	// Chain of two jobs, one machine, q = 0.5 each: E[T] = 2 + 2 = 4.
	g := dag.New(2)
	g.MustEdge(0, 1)
	ins := mustInstance(t, 1, 2, [][]float64{{0.5, 0.5}}, g)
	res, err := MonteCarlo(ins, seqPolicy{}, 40000, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Summary.Mean-4) > 0.1 {
		t.Fatalf("mean = %g, want 4", res.Summary.Mean)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(3)), 3, 5)
	a, err := MonteCarlo(ins, seqPolicy{}, 50, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(ins, seqPolicy{}, 50, 99, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Makespans {
		if a.Makespans[i] != b.Makespans[i] {
			t.Fatalf("trial %d differs across worker counts: %g vs %g",
				i, a.Makespans[i], b.Makespans[i])
		}
	}
}

func TestMonteCarloErrors(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(3)), 2, 2)
	if _, err := MonteCarlo(ins, seqPolicy{}, 0, 1, 1); err == nil {
		t.Fatal("zero trials must error")
	}
	if _, err := MonteCarloCoin(ins, seqPolicy{}, 0, 1, 1); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestNewWorldWithThresholdErrors(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(3)), 1, 2)
	if _, err := NewWorldWithThresholds(ins, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewWorldWithThresholds(ins, []float64{1, -2}); err == nil {
		t.Fatal("negative threshold must error")
	}
}

func TestDrawThresholdDistribution(t *testing.T) {
	// P(thr > x) = 2^-x; check the empirical mean 1/ln2 ≈ 1.4427.
	rng := rand.New(rand.NewSource(5))
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += drawThreshold(rng)
	}
	mean := sum / n
	if math.Abs(mean-1/math.Ln2) > 0.02 {
		t.Fatalf("threshold mean = %g, want %g", mean, 1/math.Ln2)
	}
}
