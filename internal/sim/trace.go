package sim

import (
	"fmt"
	"strings"
)

// Trace records a step-resolution timeline of one execution: which job
// each machine worked at every timestep. Attaching a tracer switches the
// world's fast-forwarding off (oblivious schedules are expanded step by
// step so the timeline is complete), so tracing is meant for small
// instances, debugging, and the suusim -trace view — not for Monte Carlo.
type Trace struct {
	// MaxSteps caps recording; once exceeded the trace marks itself
	// truncated and stops growing (execution continues). 0 means 100000.
	MaxSteps int64

	steps     [][]int32 // per timestep, per machine: job or -1
	truncated bool
}

// Steps returns the number of recorded timesteps.
func (tr *Trace) Steps() int { return len(tr.steps) }

// Truncated reports whether the execution outran MaxSteps.
func (tr *Trace) Truncated() bool { return tr.truncated }

// At returns the job machine i worked at recorded step t, or -1.
func (tr *Trace) At(t int64, i int) int {
	return int(tr.steps[t][i])
}

func (tr *Trace) record(assign []int32) {
	limit := tr.MaxSteps
	if limit <= 0 {
		limit = 100000
	}
	if int64(len(tr.steps)) >= limit {
		tr.truncated = true
		return
	}
	tr.steps = append(tr.steps, assign)
}

// jobGlyph maps job ids to a compact display alphabet.
func jobGlyph(j int) byte {
	const alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if j < 0 {
		return '.'
	}
	return alphabet[j%len(alphabet)]
}

// Gantt renders the trace as an ASCII chart: one row per machine, one
// column per timestep (up to width columns; longer traces are sampled).
// Idle steps print '.', and jobs print as base-62 glyphs (job mod 62).
func (tr *Trace) Gantt(width int) string {
	if len(tr.steps) == 0 {
		return "(empty trace)\n"
	}
	if width <= 0 {
		width = 120
	}
	total := len(tr.steps)
	cols := total
	if cols > width {
		cols = width
	}
	m := len(tr.steps[0])
	var b strings.Builder
	fmt.Fprintf(&b, "time 0..%d (%d steps", total-1, total)
	if cols < total {
		fmt.Fprintf(&b, ", sampled to %d columns", cols)
	}
	if tr.truncated {
		b.WriteString(", TRUNCATED")
	}
	b.WriteString(")\n")
	for i := 0; i < m; i++ {
		fmt.Fprintf(&b, "m%-3d |", i)
		for c := 0; c < cols; c++ {
			t := c * total / cols
			b.WriteByte(jobGlyph(int(tr.steps[t][i])))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// SetTracer attaches a trace recorder to the world. Must be called before
// execution starts.
func (w *World) SetTracer(tr *Trace) { w.tracer = tr }

// traceStep records one executed timestep (assign indexed by machine).
func (w *World) traceStep(assign []int) {
	if w.tracer == nil {
		return
	}
	row := make([]int32, len(assign))
	for i, j := range assign {
		// Record idling for completed jobs, matching what the machine
		// actually did.
		if j >= 0 && w.done[j] {
			j = -1
		}
		row[i] = int32(j)
	}
	w.tracer.record(row)
}

// traceMulti records a flattened superstep: machine i works its k-th
// assigned (uncompleted) job during expanded step k, idling afterwards.
func (w *World) traceMulti(assign [][]int, cost int64) {
	if w.tracer == nil {
		return
	}
	for s := int64(0); s < cost; s++ {
		row := make([]int32, len(assign))
		for i := range assign {
			row[i] = -1
			// The s-th uncompleted job of machine i's list, if any.
			var seen int64
			for _, j := range assign[i] {
				if w.done[j] {
					continue
				}
				if seen == s {
					row[i] = int32(j)
					break
				}
				seen++
			}
		}
		w.tracer.record(row)
	}
}

// expandForTrace reports whether oblivious fast-forwarding must be
// disabled so the tracer sees every step.
func (w *World) expandForTrace() bool { return w.tracer != nil }
