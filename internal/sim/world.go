// Package sim is the SUU execution engine. It implements the SUU*
// reformulation of Appendix A: each job j owns a hidden threshold
// −log₂ r_j with r_j ~ U(0,1), and completes at the first step where its
// accrued log mass reaches the threshold. Theorem 10 proves this induces
// exactly the same distribution over execution histories as per-step
// Bernoulli failures, so policies simulated here have exactly the expected
// makespan of the original SUU process. A per-step coin-flip mode is also
// provided as an independent reference for equivalence tests.
//
// The engine exposes step-level execution (Step, StepMulti for flattened
// supersteps) plus analytic fast-forwarding of oblivious schedules
// (RunOblivious, RepeatOblivious), which lets Monte Carlo runs skip the
// step loops entirely in threshold mode.
//
// # Performance
//
// The step loop is the hot path of every number the repo produces, so the
// World is built to execute with zero steady-state allocations:
//
//   - All per-execution state (thresholds, accruals, completion flags,
//     indegree counters) and all per-step scratch (the touched-job list,
//     coin-mode survival products, interval buffers for oblivious passes)
//     are buffers owned by the World and reused across steps.
//   - Reset rewinds a World to the start of a fresh execution without
//     reallocating anything, so Monte Carlo workers keep one World each
//     and recycle it across trials (see MonteCarlo).
//   - The Monte Carlo RNG is internal/rng's SplitMix64: reseeding it for
//     trial i is a single word write, replacing the per-trial
//     rand.NewSource (~4.9 KB each) the engine used to allocate.
//
// The pooling contract: a World handed to Policy.Run may be recycled for
// a later trial the moment Run returns. Policies must not retain the World,
// its Rng, or any slice returned by its methods (Step/StepMulti completion
// lists, Remaining, EligibleJobs) beyond the Run call; slices returned by
// Step and StepMulti are additionally invalidated by the next step. The
// allocation-free variants AppendRemaining/AppendEligible let step-loop
// policies reuse their own buffers too.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/model"
)

// Mode selects how job completions are decided.
type Mode int

const (
	// Threshold is the SUU* view: hidden thresholds, deterministic
	// completion once accrued mass crosses them.
	Threshold Mode = iota
	// Coin is the original SUU view: an independent Bernoulli failure per
	// job per step. Slower (no fast-forward); used for cross-validation.
	Coin
)

// completion tolerance: accrued mass within this of the threshold counts as
// crossed. Thresholds are ≤ 64 and rates ≤ 64, so absolute tolerance is safe.
const massEps = 1e-9

// World is one execution of an SUU instance. It tracks hidden completion
// state, the clock, precedence eligibility, and the makespan (time of the
// last completion). A World is not safe for concurrent use; Monte Carlo
// runs use one World per goroutine, recycled across trials via Reset.
type World struct {
	ins  *model.Instance
	mode Mode
	rng  *rand.Rand

	thr       []float64 // threshold mode: −log₂ r_j (clamped to LogFailCap)
	acc       []float64 // accrued log mass
	done      []bool
	remaining int
	predsLeft []int

	clock    int64
	lastDone int64

	// Per-step scratch, reused across steps. touched lists the jobs worked
	// this step; touchEpoch[j] == epoch marks membership without clearing
	// an array per step. survival[j] is the coin-mode product of q_ij over
	// the machines working j this step.
	touched    []int
	touchEpoch []uint32
	epoch      uint32
	survival   []float64
	completed  []int

	// Oblivious fast-forward scratch: per-job interval buffers plus the
	// list of jobs holding intervals this pass, and the event-sweep buffer.
	jobIvs [][]interval
	ivJobs []int
	events []rateEvent

	soloAssign []int // SoloAll's expanded-step assignment buffer

	tracer *Trace // optional step-resolution recorder (disables fast-forward)
}

// NewWorld returns a threshold-mode world with thresholds drawn from rng.
func NewWorld(ins *model.Instance, rng *rand.Rand) *World {
	w := newWorld(ins, Threshold)
	w.Reset(rng)
	return w
}

// NewCoinWorld returns a coin-flip-mode world (per-step Bernoulli failures).
func NewCoinWorld(ins *model.Instance, rng *rand.Rand) *World {
	w := newWorld(ins, Coin)
	w.Reset(rng)
	return w
}

// NewWorldWithThresholds returns a threshold-mode world with the given
// −log₂ r_j values; it makes executions fully deterministic for tests.
func NewWorldWithThresholds(ins *model.Instance, thr []float64) (*World, error) {
	if len(thr) != ins.N {
		return nil, fmt.Errorf("sim: %d thresholds for %d jobs", len(thr), ins.N)
	}
	for j, v := range thr {
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("sim: threshold[%d] = %v must be positive", j, v)
		}
	}
	w := newWorld(ins, Threshold)
	w.Reset(rand.New(rand.NewSource(0)))
	copy(w.thr, thr)
	return w, nil
}

// newWorld allocates a world shell with every buffer sized for ins. The
// shell is not runnable until Reset draws its thresholds and zeroes state.
func newWorld(ins *model.Instance, mode Mode) *World {
	w := &World{
		ins:        ins,
		mode:       mode,
		acc:        make([]float64, ins.N),
		done:       make([]bool, ins.N),
		remaining:  ins.N,
		predsLeft:  make([]int, ins.N),
		touched:    make([]int, 0, ins.N),
		touchEpoch: make([]uint32, ins.N),
		completed:  make([]int, 0, ins.N),
	}
	switch mode {
	case Threshold:
		w.thr = make([]float64, ins.N)
	case Coin:
		w.survival = make([]float64, ins.N)
	}
	return w
}

// Reset rewinds w to the start of a fresh execution driven by rng, reusing
// every internal buffer: it zeroes the clock, accruals, and completion
// state, restores precedence indegrees, redraws thresholds from rng
// (threshold mode), and detaches any tracer. A Reset world is
// indistinguishable from a newly constructed one, which is what lets
// Monte Carlo workers recycle a single World across trials.
func (w *World) Reset(rng *rand.Rand) {
	w.rng = rng
	for j := range w.acc {
		w.acc[j] = 0
		w.done[j] = false
	}
	w.remaining = w.ins.N
	if w.ins.Prec != nil {
		for j := 0; j < w.ins.N; j++ {
			w.predsLeft[j] = w.ins.Prec.InDegree(j)
		}
	} else {
		for j := range w.predsLeft {
			w.predsLeft[j] = 0
		}
	}
	w.clock, w.lastDone = 0, 0
	if w.mode == Threshold {
		for j := range w.thr {
			w.thr[j] = drawThreshold(rng)
		}
	}
	w.tracer = nil
}

// drawThreshold samples −log₂ U clamped to the model cap. The clamp fires
// with probability 2^−64 and keeps the simulation finite.
func drawThreshold(rng *rand.Rand) float64 {
	u := rng.Float64()
	if u == 0 {
		return model.LogFailCap
	}
	t := -math.Log2(u)
	if t > model.LogFailCap {
		return model.LogFailCap
	}
	return t
}

// Instance returns the instance being executed.
func (w *World) Instance() *model.Instance { return w.ins }

// Rng returns the world's random source; policies use it for their own
// random choices (e.g. SUU-C's chain delays) so trials stay reproducible.
func (w *World) Rng() *rand.Rand { return w.rng }

// Clock returns the current time (steps executed so far).
func (w *World) Clock() int64 { return w.clock }

// AllDone reports whether every job has completed.
func (w *World) AllDone() bool { return w.remaining == 0 }

// NumRemaining returns the number of uncompleted jobs.
func (w *World) NumRemaining() int { return w.remaining }

// Done reports whether job j has completed.
func (w *World) Done(j int) bool { return w.done[j] }

// Eligible reports whether job j may be executed now: uncompleted with all
// predecessors complete.
func (w *World) Eligible(j int) bool { return !w.done[j] && w.predsLeft[j] == 0 }

// Remaining returns the uncompleted job ids in ascending order.
func (w *World) Remaining() []int {
	return w.AppendRemaining(make([]int, 0, w.remaining))
}

// AppendRemaining appends the uncompleted job ids in ascending order to
// buf and returns it; step-loop policies use it to avoid a per-step
// allocation.
func (w *World) AppendRemaining(buf []int) []int {
	for j := 0; j < w.ins.N; j++ {
		if !w.done[j] {
			buf = append(buf, j)
		}
	}
	return buf
}

// EligibleJobs returns the uncompleted jobs whose predecessors are all
// complete.
func (w *World) EligibleJobs() []int {
	return w.AppendEligible(nil)
}

// AppendEligible appends the eligible job ids in ascending order to buf
// and returns it.
func (w *World) AppendEligible(buf []int) []int {
	for j := 0; j < w.ins.N; j++ {
		if w.Eligible(j) {
			buf = append(buf, j)
		}
	}
	return buf
}

// LastCompletion returns the time of the most recent completion so far
// (0 if nothing has completed). Diagnostic; the makespan of a finished
// execution comes from Makespan.
func (w *World) LastCompletion() int64 { return w.lastDone }

// Makespan returns the completion time of the last job. It errors if jobs
// remain, since the makespan is then undefined.
func (w *World) Makespan() (int64, error) {
	if !w.AllDone() {
		return 0, fmt.Errorf("sim: makespan requested with %d jobs remaining", w.remaining)
	}
	return w.lastDone, nil
}

// markDone records job j completing at time t.
func (w *World) markDone(j int, t int64) {
	if w.done[j] {
		return
	}
	w.done[j] = true
	w.remaining--
	if t > w.lastDone {
		w.lastDone = t
	}
	if w.ins.Prec != nil {
		for _, s := range w.ins.Prec.Succs(j) {
			w.predsLeft[s]--
		}
	}
}

// checkRunnable errors unless job j may legally receive work now.
// Machines assigned to completed jobs idle (allowed by the schedule
// definition in Section 2); uncompleted jobs must be eligible.
func (w *World) checkRunnable(j int) error {
	if j < 0 || j >= w.ins.N {
		return fmt.Errorf("sim: job %d out of range [0,%d)", j, w.ins.N)
	}
	if !w.done[j] && w.predsLeft[j] > 0 {
		return fmt.Errorf("sim: job %d scheduled before its %d predecessors completed", j, w.predsLeft[j])
	}
	return nil
}

// beginStep starts a fresh touched-job set by bumping the epoch stamp;
// membership tests are then one array compare, with no per-step clearing.
func (w *World) beginStep() {
	w.epoch++
	if w.epoch == 0 { // stamp wrap after 2³²−1 steps: clear and restart
		for k := range w.touchEpoch {
			w.touchEpoch[k] = 0
		}
		w.epoch = 1
	}
	w.touched = w.touched[:0]
}

// touch records one machine-step of work on uncompleted job j: rate ell in
// threshold mode, survival factor q in coin mode.
func (w *World) touch(j int, ell, q float64) {
	if w.touchEpoch[j] != w.epoch {
		w.touchEpoch[j] = w.epoch
		w.touched = append(w.touched, j)
		if w.mode == Coin {
			w.survival[j] = 1
		}
	}
	switch w.mode {
	case Threshold:
		w.acc[j] += ell
	case Coin:
		w.survival[j] *= q
	}
}

// Step executes one timestep: assign[i] is the job machine i works on, or
// -1 to idle. It returns the jobs that completed during the step; the
// returned slice is scratch, valid only until the next step or Reset.
func (w *World) Step(assign []int) ([]int, error) {
	if len(assign) != w.ins.M {
		return nil, fmt.Errorf("sim: assignment for %d machines, want %d", len(assign), w.ins.M)
	}
	w.beginStep()
	for i, j := range assign {
		if j < 0 {
			continue
		}
		if err := w.checkRunnable(j); err != nil {
			return nil, err
		}
		if w.done[j] {
			continue
		}
		w.touch(j, w.ins.L[i][j], w.ins.Q[i][j])
	}
	w.traceStep(assign)
	w.clock++
	return w.settle(), nil
}

// StepMulti executes one flattened superstep of a pseudoschedule
// (Section 4): assign[i] lists the jobs machine i works on, one unit step
// each; the superstep costs max(1, max_i len(assign[i])) timesteps — its
// congestion. Completions are recorded at the end of the superstep. The
// returned slice is scratch, valid only until the next step or Reset.
func (w *World) StepMulti(assign [][]int) ([]int, error) {
	if len(assign) != w.ins.M {
		return nil, fmt.Errorf("sim: assignment for %d machines, want %d", len(assign), w.ins.M)
	}
	cost := int64(1)
	w.beginStep()
	for i, jobs := range assign {
		active := int64(0)
		for _, j := range jobs {
			if err := w.checkRunnable(j); err != nil {
				return nil, err
			}
			if w.done[j] {
				continue
			}
			active++
			w.touch(j, w.ins.L[i][j], w.ins.Q[i][j])
		}
		if active > cost {
			cost = active
		}
	}
	w.traceMulti(assign, cost)
	w.clock += cost
	return w.settle(), nil
}

// settle resolves completions among the touched jobs at the current clock.
// Jobs are settled in ascending id order, so coin-mode executions consume
// RNG draws in a canonical order and are reproducible for a fixed seed
// (the previous map-based scratch iterated in randomized map order).
func (w *World) settle() []int {
	slices.Sort(w.touched) // allocation-free on every supported toolchain
	completed := w.completed[:0]
	for _, j := range w.touched {
		switch w.mode {
		case Threshold:
			if w.acc[j]+massEps >= w.thr[j] {
				completed = append(completed, j)
			}
		case Coin:
			if w.rng.Float64() >= w.survival[j] {
				completed = append(completed, j)
			}
		}
	}
	for _, j := range completed {
		w.markDone(j, w.clock)
	}
	w.completed = completed
	return completed
}

// SoloAll runs every machine on job j until it completes and returns the
// number of steps used. It is the endgame of SUU-I-SEM when n ≤ m and the
// Sequential baseline's primitive.
func (w *World) SoloAll(j int) (int64, error) {
	if err := w.checkRunnable(j); err != nil {
		return 0, err
	}
	if w.done[j] {
		return 0, nil
	}
	rate := w.ins.TotalRate(j)
	if rate <= 0 {
		return 0, fmt.Errorf("sim: job %d has zero total rate", j)
	}
	if w.mode == Threshold && !w.expandForTrace() {
		need := w.thr[j] - w.acc[j]
		k := int64(math.Ceil((need - massEps) / rate))
		if k < 1 {
			k = 1
		}
		w.acc[j] = w.thr[j]
		w.clock += k
		w.markDone(j, w.clock)
		return k, nil
	}
	if w.soloAssign == nil {
		w.soloAssign = make([]int, w.ins.M)
	}
	assign := w.soloAssign
	for i := range assign {
		assign[i] = j
	}
	var steps int64
	for !w.done[j] {
		if _, err := w.Step(assign); err != nil {
			return steps, err
		}
		steps++
	}
	return steps, nil
}
