// Package sim is the SUU execution engine. It implements the SUU*
// reformulation of Appendix A: each job j owns a hidden threshold
// −log₂ r_j with r_j ~ U(0,1), and completes at the first step where its
// accrued log mass reaches the threshold. Theorem 10 proves this induces
// exactly the same distribution over execution histories as per-step
// Bernoulli failures, so policies simulated here have exactly the expected
// makespan of the original SUU process. A per-step coin-flip mode is also
// provided as an independent reference for equivalence tests.
//
// The engine exposes step-level execution (Step, StepMulti for flattened
// supersteps) plus analytic fast-forwarding of oblivious schedules
// (RunOblivious, RepeatOblivious), which lets Monte Carlo runs skip the
// step loops entirely in threshold mode.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// Mode selects how job completions are decided.
type Mode int

const (
	// Threshold is the SUU* view: hidden thresholds, deterministic
	// completion once accrued mass crosses them.
	Threshold Mode = iota
	// Coin is the original SUU view: an independent Bernoulli failure per
	// job per step. Slower (no fast-forward); used for cross-validation.
	Coin
)

// completion tolerance: accrued mass within this of the threshold counts as
// crossed. Thresholds are ≤ 64 and rates ≤ 64, so absolute tolerance is safe.
const massEps = 1e-9

// World is one execution of an SUU instance. It tracks hidden completion
// state, the clock, precedence eligibility, and the makespan (time of the
// last completion). A World is not safe for concurrent use; Monte Carlo
// runs use one World per goroutine.
type World struct {
	ins  *model.Instance
	mode Mode
	rng  *rand.Rand

	thr       []float64 // threshold mode: −log₂ r_j (clamped to LogFailCap)
	acc       []float64 // accrued log mass
	done      []bool
	remaining int
	predsLeft []int

	clock    int64
	lastDone int64

	tracer *Trace // optional step-resolution recorder (disables fast-forward)
}

// NewWorld returns a threshold-mode world with thresholds drawn from rng.
func NewWorld(ins *model.Instance, rng *rand.Rand) *World {
	thr := make([]float64, ins.N)
	for j := range thr {
		thr[j] = drawThreshold(rng)
	}
	w := newWorld(ins, Threshold, rng)
	w.thr = thr
	return w
}

// NewCoinWorld returns a coin-flip-mode world (per-step Bernoulli failures).
func NewCoinWorld(ins *model.Instance, rng *rand.Rand) *World {
	return newWorld(ins, Coin, rng)
}

// NewWorldWithThresholds returns a threshold-mode world with the given
// −log₂ r_j values; it makes executions fully deterministic for tests.
func NewWorldWithThresholds(ins *model.Instance, thr []float64) (*World, error) {
	if len(thr) != ins.N {
		return nil, fmt.Errorf("sim: %d thresholds for %d jobs", len(thr), ins.N)
	}
	for j, v := range thr {
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("sim: threshold[%d] = %v must be positive", j, v)
		}
	}
	w := newWorld(ins, Threshold, rand.New(rand.NewSource(0)))
	w.thr = append([]float64(nil), thr...)
	return w, nil
}

func newWorld(ins *model.Instance, mode Mode, rng *rand.Rand) *World {
	w := &World{
		ins:       ins,
		mode:      mode,
		rng:       rng,
		acc:       make([]float64, ins.N),
		done:      make([]bool, ins.N),
		remaining: ins.N,
		predsLeft: make([]int, ins.N),
	}
	if ins.Prec != nil {
		for j := 0; j < ins.N; j++ {
			w.predsLeft[j] = ins.Prec.InDegree(j)
		}
	}
	return w
}

// drawThreshold samples −log₂ U clamped to the model cap. The clamp fires
// with probability 2^−64 and keeps the simulation finite.
func drawThreshold(rng *rand.Rand) float64 {
	u := rng.Float64()
	if u == 0 {
		return model.LogFailCap
	}
	t := -math.Log2(u)
	if t > model.LogFailCap {
		return model.LogFailCap
	}
	return t
}

// Instance returns the instance being executed.
func (w *World) Instance() *model.Instance { return w.ins }

// Rng returns the world's random source; policies use it for their own
// random choices (e.g. SUU-C's chain delays) so trials stay reproducible.
func (w *World) Rng() *rand.Rand { return w.rng }

// Clock returns the current time (steps executed so far).
func (w *World) Clock() int64 { return w.clock }

// AllDone reports whether every job has completed.
func (w *World) AllDone() bool { return w.remaining == 0 }

// NumRemaining returns the number of uncompleted jobs.
func (w *World) NumRemaining() int { return w.remaining }

// Done reports whether job j has completed.
func (w *World) Done(j int) bool { return w.done[j] }

// Eligible reports whether job j may be executed now: uncompleted with all
// predecessors complete.
func (w *World) Eligible(j int) bool { return !w.done[j] && w.predsLeft[j] == 0 }

// Remaining returns the uncompleted job ids in ascending order.
func (w *World) Remaining() []int {
	out := make([]int, 0, w.remaining)
	for j := 0; j < w.ins.N; j++ {
		if !w.done[j] {
			out = append(out, j)
		}
	}
	return out
}

// EligibleJobs returns the uncompleted jobs whose predecessors are all
// complete.
func (w *World) EligibleJobs() []int {
	var out []int
	for j := 0; j < w.ins.N; j++ {
		if w.Eligible(j) {
			out = append(out, j)
		}
	}
	return out
}

// LastCompletion returns the time of the most recent completion so far
// (0 if nothing has completed). Diagnostic; the makespan of a finished
// execution comes from Makespan.
func (w *World) LastCompletion() int64 { return w.lastDone }

// Makespan returns the completion time of the last job. It errors if jobs
// remain, since the makespan is then undefined.
func (w *World) Makespan() (int64, error) {
	if !w.AllDone() {
		return 0, fmt.Errorf("sim: makespan requested with %d jobs remaining", w.remaining)
	}
	return w.lastDone, nil
}

// markDone records job j completing at time t.
func (w *World) markDone(j int, t int64) {
	if w.done[j] {
		return
	}
	w.done[j] = true
	w.remaining--
	if t > w.lastDone {
		w.lastDone = t
	}
	if w.ins.Prec != nil {
		for _, s := range w.ins.Prec.Succs(j) {
			w.predsLeft[s]--
		}
	}
}

// checkRunnable errors unless job j may legally receive work now.
// Machines assigned to completed jobs idle (allowed by the schedule
// definition in Section 2); uncompleted jobs must be eligible.
func (w *World) checkRunnable(j int) error {
	if j < 0 || j >= w.ins.N {
		return fmt.Errorf("sim: job %d out of range [0,%d)", j, w.ins.N)
	}
	if !w.done[j] && w.predsLeft[j] > 0 {
		return fmt.Errorf("sim: job %d scheduled before its %d predecessors completed", j, w.predsLeft[j])
	}
	return nil
}

// Step executes one timestep: assign[i] is the job machine i works on, or
// -1 to idle. It returns the jobs that completed during the step.
func (w *World) Step(assign []int) ([]int, error) {
	if len(assign) != w.ins.M {
		return nil, fmt.Errorf("sim: assignment for %d machines, want %d", len(assign), w.ins.M)
	}
	touched := make(map[int]float64) // job -> survival probability (coin mode)
	for i, j := range assign {
		if j < 0 {
			continue
		}
		if err := w.checkRunnable(j); err != nil {
			return nil, err
		}
		if w.done[j] {
			continue
		}
		switch w.mode {
		case Threshold:
			w.acc[j] += w.ins.L[i][j]
			touched[j] = 0
		case Coin:
			q, ok := touched[j]
			if !ok {
				q = 1
			}
			touched[j] = q * w.ins.Q[i][j]
		}
	}
	w.traceStep(assign)
	w.clock++
	return w.settle(touched), nil
}

// StepMulti executes one flattened superstep of a pseudoschedule
// (Section 4): assign[i] lists the jobs machine i works on, one unit step
// each; the superstep costs max(1, max_i len(assign[i])) timesteps — its
// congestion. Completions are recorded at the end of the superstep.
func (w *World) StepMulti(assign [][]int) ([]int, error) {
	if len(assign) != w.ins.M {
		return nil, fmt.Errorf("sim: assignment for %d machines, want %d", len(assign), w.ins.M)
	}
	cost := int64(1)
	touched := make(map[int]float64)
	for i, jobs := range assign {
		active := int64(0)
		for _, j := range jobs {
			if err := w.checkRunnable(j); err != nil {
				return nil, err
			}
			if w.done[j] {
				continue
			}
			active++
			switch w.mode {
			case Threshold:
				w.acc[j] += w.ins.L[i][j]
				touched[j] = 0
			case Coin:
				q, ok := touched[j]
				if !ok {
					q = 1
				}
				touched[j] = q * w.ins.Q[i][j]
			}
		}
		if active > cost {
			cost = active
		}
	}
	w.traceMulti(assign, cost)
	w.clock += cost
	return w.settle(touched), nil
}

// settle resolves completions among the touched jobs at the current clock.
func (w *World) settle(touched map[int]float64) []int {
	var completed []int
	for j, q := range touched {
		switch w.mode {
		case Threshold:
			if w.acc[j]+massEps >= w.thr[j] {
				completed = append(completed, j)
			}
		case Coin:
			if w.rng.Float64() >= q {
				completed = append(completed, j)
			}
		}
	}
	sort.Ints(completed)
	for _, j := range completed {
		w.markDone(j, w.clock)
	}
	return completed
}

// SoloAll runs every machine on job j until it completes and returns the
// number of steps used. It is the endgame of SUU-I-SEM when n ≤ m and the
// Sequential baseline's primitive.
func (w *World) SoloAll(j int) (int64, error) {
	if err := w.checkRunnable(j); err != nil {
		return 0, err
	}
	if w.done[j] {
		return 0, nil
	}
	rate := w.ins.TotalRate(j)
	if rate <= 0 {
		return 0, fmt.Errorf("sim: job %d has zero total rate", j)
	}
	if w.mode == Threshold && !w.expandForTrace() {
		need := w.thr[j] - w.acc[j]
		k := int64(math.Ceil((need - massEps) / rate))
		if k < 1 {
			k = 1
		}
		w.acc[j] = w.thr[j]
		w.clock += k
		w.markDone(j, w.clock)
		return k, nil
	}
	assign := make([]int, w.ins.M)
	for i := range assign {
		assign[i] = j
	}
	var steps int64
	for !w.done[j] {
		if _, err := w.Step(assign); err != nil {
			return steps, err
		}
		steps++
	}
	return steps, nil
}
