package sim

import (
	"math/rand"
	"testing"

	"repro/internal/rng"
)

// The micro-benchmarks below pin the zero-allocation engine: Step, the
// oblivious fast-forward, and the Monte Carlo trial loop must not allocate
// in steady state (run with -benchmem; allocs/op should be ~0 for
// BenchmarkStep/BenchmarkRunOblivious and O(workers) per call for
// BenchmarkMonteCarlo).

// BenchmarkStep measures the unit-step hot path in threshold mode: 16
// machines spread over 64 jobs, world recycled via Reset when it drains.
func BenchmarkStep(b *testing.B) {
	benchmarkStep(b, Threshold)
}

// BenchmarkStepCoin is BenchmarkStep on the Bernoulli simulator, which
// additionally consumes one RNG draw per touched job per step.
func BenchmarkStepCoin(b *testing.B) {
	benchmarkStep(b, Coin)
}

func benchmarkStep(b *testing.B, mode Mode) {
	ins := randomInstance(rand.New(rand.NewSource(1)), 16, 64)
	assign := make([]int, ins.M)
	for i := range assign {
		assign[i] = i % ins.N
	}
	src := rng.New(1)
	r := rand.New(src)
	w := newWorld(ins, mode)
	w.Reset(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Step(assign); err != nil {
			b.Fatal(err)
		}
		if w.AllDone() {
			src.Seed(int64(i))
			w.Reset(r)
		}
	}
}

// BenchmarkRunOblivious measures one analytic fast-forward pass of a
// random oblivious schedule, the primitive behind OBL rounds and SEM's
// endgame, including the per-pass interval collection.
func BenchmarkRunOblivious(b *testing.B) {
	setup := rand.New(rand.NewSource(2))
	ins := randomInstance(setup, 16, 64)
	o := randomOblivious(setup, 16, 64)
	src := rng.New(1)
	r := rand.New(src)
	w := newWorld(ins, Threshold)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
		w.Reset(r)
		if err := w.RunOblivious(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures the full estimator loop — pooled worlds,
// per-trial reseeding, result collection — with a cheap sequential policy
// so the harness itself dominates.
func BenchmarkMonteCarlo(b *testing.B) {
	ins := randomInstance(rand.New(rand.NewSource(3)), 8, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarlo(ins, soloPolicy{}, 64, int64(i), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// soloPolicy completes jobs one at a time via SoloAll — the cheapest legal
// policy, so Monte Carlo harness overhead dominates the benchmark.
type soloPolicy struct{}

func (soloPolicy) Name() string { return "bench-solo" }

func (soloPolicy) Run(w *World) error {
	for j := 0; j < w.Instance().N; j++ {
		if _, err := w.SoloAll(j); err != nil {
			return err
		}
	}
	return nil
}
