package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestTraceRecordsSteps(t *testing.T) {
	ins := mustInstance(t, 2, 2, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, nil)
	w, err := NewWorldWithThresholds(ins, []float64{1.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	w.SetTracer(tr)
	if _, err := w.Step([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 2 {
		t.Fatalf("recorded %d steps, want 2", tr.Steps())
	}
	if tr.At(0, 0) != 0 || tr.At(0, 1) != 1 {
		t.Fatalf("step 0 = (%d,%d)", tr.At(0, 0), tr.At(0, 1))
	}
	// Job 0 completed at step 2 (mass 2 ≥ 1.5): further assignment to it
	// records as idle.
	if !w.Done(0) {
		t.Fatal("job 0 should be done")
	}
	if _, err := w.Step([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if tr.At(2, 0) != -1 {
		t.Fatalf("completed job should trace as idle, got %d", tr.At(2, 0))
	}
}

// TestTracedExecutionMatchesFastForward: the same thresholds must produce
// the same makespan whether fast-forwarded or traced step by step.
func TestTracedExecutionMatchesFastForward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ins := randomInstance(rng, 3, 6)
	a := sched.NewAssignment(3, 6)
	for j := 0; j < 6; j++ {
		a.X[rng.Intn(3)][j] = 1 + int64(rng.Intn(3))
	}
	o := a.Serialize()
	thr := make([]float64, 6)
	for j := range thr {
		thr[j] = 0.2 + 4*rng.Float64()
	}
	fast, _ := NewWorldWithThresholds(ins, thr)
	if _, err := fast.RepeatOblivious(o, 1<<30); err != nil {
		t.Fatal(err)
	}
	traced, _ := NewWorldWithThresholds(ins, thr)
	tr := &Trace{}
	traced.SetTracer(tr)
	if _, err := traced.RepeatOblivious(o, 1<<30); err != nil {
		t.Fatal(err)
	}
	mf, _ := fast.Makespan()
	mt, _ := traced.Makespan()
	if mf != mt {
		t.Fatalf("fast-forward makespan %d != traced %d", mf, mt)
	}
	if int64(tr.Steps()) < mt {
		t.Fatalf("trace has %d steps for makespan %d", tr.Steps(), mt)
	}
}

func TestTraceGantt(t *testing.T) {
	ins := mustInstance(t, 2, 2, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, nil)
	w, _ := NewWorldWithThresholds(ins, []float64{2.5, 2.5})
	tr := &Trace{}
	w.SetTracer(tr)
	for s := 0; s < 3; s++ {
		if _, err := w.Step([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	out := tr.Gantt(80)
	if !strings.Contains(out, "m0") || !strings.Contains(out, "m1") {
		t.Fatalf("gantt missing machine rows:\n%s", out)
	}
	if !strings.Contains(out, "000") || !strings.Contains(out, "111") {
		t.Fatalf("gantt missing job glyphs:\n%s", out)
	}
	if (&Trace{}).Gantt(10) == "" {
		t.Fatal("empty trace should render a placeholder")
	}
}

func TestTraceTruncation(t *testing.T) {
	ins := mustInstance(t, 1, 1, [][]float64{{0.9}}, nil)
	w, _ := NewWorldWithThresholds(ins, []float64{60})
	tr := &Trace{MaxSteps: 5}
	w.SetTracer(tr)
	if _, err := w.SoloAll(0); err != nil {
		t.Fatal(err)
	}
	if !tr.Truncated() {
		t.Fatal("trace should be truncated")
	}
	if tr.Steps() != 5 {
		t.Fatalf("recorded %d steps, want cap 5", tr.Steps())
	}
	if !strings.Contains(tr.Gantt(40), "TRUNCATED") {
		t.Fatal("gantt should flag truncation")
	}
}

func TestTraceMultiExpansion(t *testing.T) {
	ins := mustInstance(t, 2, 3, [][]float64{{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}, nil)
	w, _ := NewWorldWithThresholds(ins, []float64{50, 50, 50})
	tr := &Trace{}
	w.SetTracer(tr)
	// Machine 0 runs jobs 0,1; machine 1 runs job 2. Congestion 2 ⇒ two
	// recorded steps: m0 works 0 then 1; m1 works 2 then idles.
	if _, err := w.StepMulti([][]int{{0, 1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 2 {
		t.Fatalf("recorded %d steps, want 2", tr.Steps())
	}
	if tr.At(0, 0) != 0 || tr.At(1, 0) != 1 {
		t.Fatalf("machine 0 timeline: %d,%d", tr.At(0, 0), tr.At(1, 0))
	}
	if tr.At(0, 1) != 2 || tr.At(1, 1) != -1 {
		t.Fatalf("machine 1 timeline: %d,%d", tr.At(0, 1), tr.At(1, 1))
	}
}
