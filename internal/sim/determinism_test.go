package sim

import (
	"math/rand"
	"runtime"
	"testing"
)

// randomEligible is a deliberately RNG-hungry test policy: every step each
// machine picks a uniformly random eligible job. It exercises both the
// policy-visible Rng() stream and (in coin mode) the settle draws, so any
// cross-worker RNG sharing or ordering bug shows up as diverging makespans.
type randomEligible struct{}

func (randomEligible) Name() string { return "random-eligible" }

func (randomEligible) Run(w *World) error {
	ins := w.Instance()
	assign := make([]int, ins.M)
	elig := make([]int, 0, ins.N)
	for !w.AllDone() {
		elig = w.AppendEligible(elig[:0])
		for i := range assign {
			assign[i] = elig[w.Rng().Intn(len(elig))]
		}
		if _, err := w.Step(assign); err != nil {
			return err
		}
	}
	return nil
}

// TestMonteCarloDeterministicAcrossWorkers: for a fixed seed, the makespan
// vector must be byte-identical no matter how trials are spread over
// workers — trial i always runs on the stream seeded with seed+i. Checked
// in both threshold and coin mode.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(17)), 4, 12)
	const trials, seed = 64, 99

	runs := []struct {
		name string
		fn   func(workers int) (*MCResult, error)
	}{
		{"threshold", func(workers int) (*MCResult, error) {
			return MonteCarlo(ins, randomEligible{}, trials, seed, workers)
		}},
		{"coin", func(workers int) (*MCResult, error) {
			return MonteCarloCoin(ins, randomEligible{}, trials, seed, workers)
		}},
	}
	workerCounts := []int{1, 8, runtime.GOMAXPROCS(0)}
	for _, mode := range runs {
		var ref *MCResult
		for _, workers := range workerCounts {
			res, err := mode.fn(workers)
			if err != nil {
				t.Fatalf("%s mode, %d workers: %v", mode.name, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			for i := range ref.Makespans {
				if res.Makespans[i] != ref.Makespans[i] {
					t.Fatalf("%s mode: trial %d makespan %v with %d workers, %v with %d",
						mode.name, i, res.Makespans[i], workers, ref.Makespans[i], workerCounts[0])
				}
			}
		}
	}
}

// TestMonteCarloRepeatable: running the same estimate twice must reproduce
// the same vector exactly (coin mode used to consume settle draws in
// randomized map order, which broke this).
func TestMonteCarloRepeatable(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(23)), 3, 9)
	for name, fn := range map[string]func() (*MCResult, error){
		"threshold": func() (*MCResult, error) { return MonteCarlo(ins, randomEligible{}, 32, 5, 4) },
		"coin":      func() (*MCResult, error) { return MonteCarloCoin(ins, randomEligible{}, 32, 5, 4) },
	} {
		a, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range a.Makespans {
			if a.Makespans[i] != b.Makespans[i] {
				t.Fatalf("%s: trial %d differs between identical runs: %v vs %v",
					name, i, a.Makespans[i], b.Makespans[i])
			}
		}
	}
}

// TestResetMatchesFresh: a recycled world must behave exactly like a newly
// constructed one — the pooling contract MonteCarlo relies on.
func TestResetMatchesFresh(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(31)), 3, 8)
	for _, mode := range []Mode{Threshold, Coin} {
		// Dirty a pooled world with one full run, then Reset and compare
		// against a fresh world driven by an identically seeded RNG.
		pooled := newWorld(ins, mode)
		pooled.Reset(rand.New(rand.NewSource(1)))
		if err := (randomEligible{}).Run(pooled); err != nil {
			t.Fatal(err)
		}
		pooled.Reset(rand.New(rand.NewSource(2)))

		fresh := newWorld(ins, mode)
		fresh.Reset(rand.New(rand.NewSource(2)))

		if err := (randomEligible{}).Run(pooled); err != nil {
			t.Fatal(err)
		}
		if err := (randomEligible{}).Run(fresh); err != nil {
			t.Fatal(err)
		}
		mp, err := pooled.Makespan()
		if err != nil {
			t.Fatal(err)
		}
		mf, err := fresh.Makespan()
		if err != nil {
			t.Fatal(err)
		}
		if mp != mf {
			t.Fatalf("mode %v: recycled world makespan %d, fresh world %d", mode, mp, mf)
		}
	}
}
