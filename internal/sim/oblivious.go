package sim

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// interval is one machine-run's contribution to a job: rate ℓ_ij over
// schedule-relative steps [start, end).
type interval struct {
	start, end int64
	rate       float64
}

// RunOblivious executes one pass of a finite oblivious schedule. In
// threshold mode it fast-forwards analytically (no step loop): each job's
// mass-accrual curve is a piecewise-linear function of time, and the
// completion step is the first integer crossing of the hidden threshold.
// In coin mode it expands to steps.
//
// Every uncompleted job appearing in the schedule must be eligible when the
// pass starts (true for all the paper's uses: independent-job rounds and
// per-job chain blocks). If all jobs in the world complete during the pass
// the clock stops at the last completion; otherwise it advances by the full
// schedule length, matching a scheduler that only reacts at round ends.
func (w *World) RunOblivious(o *sched.Oblivious) error {
	if o.M != w.ins.M {
		return fmt.Errorf("sim: schedule has %d machines, instance has %d", o.M, w.ins.M)
	}
	if w.mode == Coin || w.expandForTrace() {
		return w.runObliviousSteps(o)
	}
	if err := w.collectIntervals(o); err != nil {
		return err
	}
	start := w.clock
	var maxDone int64 = -1
	// Jobs in one pass are mutually precedence-independent (all were
	// eligible at the pass start), so completions can be marked inline.
	for _, j := range w.ivJobs {
		list := w.jobIvs[j]
		off, crossed, mass := w.crossingTime(list, w.thr[j]-w.acc[j])
		if crossed {
			w.acc[j] = w.thr[j]
			w.markDone(j, start+off)
			if start+off > maxDone {
				maxDone = start + off
			}
		} else {
			w.acc[j] += mass
		}
	}
	if w.AllDone() && maxDone >= 0 {
		w.clock = maxDone
	} else {
		w.clock = start + o.Length
	}
	return nil
}

// collectIntervals gathers, per uncompleted job, the (start, end, rate)
// contributions of every machine run, checking eligibility. Results land
// in w.jobIvs (per-job buffers reused across passes); w.ivJobs lists the
// jobs that received intervals, in machine-major discovery order.
func (w *World) collectIntervals(o *sched.Oblivious) error {
	if w.jobIvs == nil {
		w.jobIvs = make([][]interval, w.ins.N)
	}
	for _, j := range w.ivJobs {
		w.jobIvs[j] = w.jobIvs[j][:0]
	}
	w.ivJobs = w.ivJobs[:0]
	for i, runs := range o.Runs {
		var t int64
		for _, r := range runs {
			if err := w.checkRunnable(r.Job); err != nil {
				return err
			}
			if !w.done[r.Job] && w.ins.L[i][r.Job] > 0 && r.Steps > 0 {
				if len(w.jobIvs[r.Job]) == 0 {
					w.ivJobs = append(w.ivJobs, r.Job)
				}
				w.jobIvs[r.Job] = append(w.jobIvs[r.Job], interval{t, t + r.Steps, w.ins.L[i][r.Job]})
			}
			t += r.Steps
		}
	}
	return nil
}

// crossingTime finds the first integer step at which the total mass of the
// (possibly overlapping) intervals reaches need. It returns the crossing
// step, whether it crossed, and the total mass of all intervals (used to
// update accrual when the job does not finish). The event sweep runs on
// w.events, reused across calls.
func (w *World) crossingTime(ivs []interval, need float64) (int64, bool, float64) {
	total := 0.0
	for _, iv := range ivs {
		total += iv.rate * float64(iv.end-iv.start)
	}
	if need <= massEps {
		// Already at threshold; completes at the end of the first step
		// that touches it (step boundary 1 at the earliest interval).
		first := ivs[0].start
		for _, iv := range ivs[1:] {
			if iv.start < first {
				first = iv.start
			}
		}
		return first + 1, true, total
	}
	if total+massEps < need {
		return 0, false, total
	}
	// Event sweep over piecewise-constant total rate.
	events := w.events[:0]
	for _, iv := range ivs {
		events = append(events, rateEvent{iv.start, iv.rate}, rateEvent{iv.end, -iv.rate})
	}
	w.events = events
	sortEvents(events)
	acc := 0.0
	rate := 0.0
	var prev int64
	for k := 0; k < len(events); {
		t := events[k].t
		if t > prev && rate > 0 {
			segMass := rate * float64(t-prev)
			if acc+segMass+massEps >= need {
				steps := int64(math.Ceil((need - acc - massEps) / rate))
				if steps < 1 {
					steps = 1
				}
				if steps > t-prev {
					steps = t - prev
				}
				return prev + steps, true, total
			}
			acc += segMass
		}
		if t > prev {
			prev = t
		}
		for k < len(events) && events[k].t == t {
			rate += events[k].dr
			k++
		}
	}
	// Numerically we said total ≥ need but the sweep missed; complete at
	// the final event (defensive against float drift).
	return prev, true, total
}

// rateEvent is a change of total accrual rate at schedule-relative time t.
type rateEvent struct {
	t  int64
	dr float64
}

// sortEvents orders rate events by time. Lists are short (two per machine
// run touching the job), so insertion sort wins over sort.Slice here.
func sortEvents(events []rateEvent) {
	for i := 1; i < len(events); i++ {
		for k := i; k > 0 && events[k].t < events[k-1].t; k-- {
			events[k], events[k-1] = events[k-1], events[k]
		}
	}
}

// runObliviousSteps expands the schedule into unit steps (coin mode).
func (w *World) runObliviousSteps(o *sched.Oblivious) error {
	steps := o.StepAssignments()
	for _, assign := range steps {
		if _, err := w.Step(assign); err != nil {
			return err
		}
		if w.AllDone() {
			return nil
		}
	}
	return nil
}

// RepeatOblivious repeats a finite oblivious schedule until every
// uncompleted job appearing in it completes, as SUU-I-OBL, the m<n endgame
// of SUU-I-SEM, and SUU-C's long-job batches do. Jobs not in the schedule
// are untouched. Threshold mode computes the number of passes analytically
// per job: each pass adds a fixed mass, so the completing pass is
// ⌈need/massPerPass⌉ and the within-pass offset is a crossing search.
// Returns the number of passes the longest-running job needed.
func (w *World) RepeatOblivious(o *sched.Oblivious, maxPasses int64) (int64, error) {
	if maxPasses <= 0 {
		return 0, fmt.Errorf("sim: maxPasses = %d", maxPasses)
	}
	if w.mode == Coin || w.expandForTrace() {
		var p int64
		for {
			left := false
			for _, j := range o.Jobs() {
				if !w.done[j] {
					left = true
					break
				}
			}
			if !left {
				return p, nil
			}
			if p >= maxPasses {
				return p, fmt.Errorf("sim: %d passes without completing scheduled jobs", p)
			}
			if err := w.runObliviousSteps(o); err != nil {
				return p, err
			}
			p++
		}
	}
	if err := w.collectIntervals(o); err != nil {
		return 0, err
	}
	// Every uncompleted scheduled job must receive positive mass per pass,
	// or the repetition would never terminate.
	for _, j := range o.Jobs() {
		if !w.done[j] && len(w.jobIvs[j]) == 0 {
			return 0, fmt.Errorf("sim: schedule gives no mass to uncompleted job %d", j)
		}
	}
	start := w.clock
	var maxOffset, passes int64
	for _, j := range w.ivJobs {
		list := w.jobIvs[j]
		perPass := 0.0
		for _, iv := range list {
			perPass += iv.rate * float64(iv.end-iv.start)
		}
		need := w.thr[j] - w.acc[j]
		if need <= massEps {
			need = massEps // completes in the first touching step
		}
		p := int64(math.Ceil((need - massEps) / perPass))
		if p < 1 {
			p = 1
		}
		if p > maxPasses {
			return p, fmt.Errorf("sim: job %d needs %d passes, cap %d", j, p, maxPasses)
		}
		residual := need - float64(p-1)*perPass
		off, crossed, _ := w.crossingTime(list, residual)
		if !crossed {
			// Float drift at the pass boundary: finish at pass end.
			off = o.Length
		}
		at := start + (p-1)*o.Length + off
		w.acc[j] = w.thr[j]
		w.markDone(j, at)
		if at-start > maxOffset {
			maxOffset = at - start
		}
		if p > passes {
			passes = p
		}
	}
	w.clock = start + maxOffset
	return passes, nil
}
