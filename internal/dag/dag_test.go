package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	cases := []struct {
		u, v int
		name string
	}{
		{0, 1, "duplicate"},
		{1, 1, "self-loop"},
		{-1, 0, "negative"},
		{0, 3, "out of range"},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v); err == nil {
			t.Errorf("AddEdge(%d,%d) (%s): want error", c.u, c.v, c.name)
		}
	}
	if g.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", g.Edges())
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := New(6)
	g.MustEdge(0, 2)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(2, 4)
	g.MustEdge(4, 5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	checkTopo(t, g, order)
}

func checkTopo(t *testing.T, g *DAG, order []int) {
	t.Helper()
	if len(order) != g.N() {
		t.Fatalf("order length %d, want %d", len(order), g.N())
	}
	pos := make([]int, g.N())
	seen := make([]bool, g.N())
	for i, v := range order {
		if v < 0 || v >= g.N() || seen[v] {
			t.Fatalf("bad or repeated vertex %d in order", v)
		}
		seen[v] = true
		pos[v] = i
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succs(u) {
			if pos[u] >= pos[v] {
				t.Fatalf("edge (%d,%d) violates topo order", u, v)
			}
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("got %v, want ErrCycle", err)
	}
	if g.Validate() != ErrCycle {
		t.Fatal("Validate should report the cycle")
	}
}

func TestClassify(t *testing.T) {
	indep := New(4)

	chains := New(5)
	chains.MustEdge(0, 1)
	chains.MustEdge(1, 2)
	chains.MustEdge(3, 4)

	outF := New(4)
	outF.MustEdge(0, 1)
	outF.MustEdge(0, 2)
	outF.MustEdge(2, 3)

	inF := New(4)
	inF.MustEdge(1, 0)
	inF.MustEdge(2, 0)
	inF.MustEdge(3, 2)

	mixed := New(6)
	mixed.MustEdge(0, 1) // out-tree 0->{1,2}
	mixed.MustEdge(0, 2)
	mixed.MustEdge(4, 3) // in-tree {4,5}->3
	mixed.MustEdge(5, 3)

	diamond := New(4)
	diamond.MustEdge(0, 1)
	diamond.MustEdge(0, 2)
	diamond.MustEdge(1, 3)
	diamond.MustEdge(2, 3)

	cases := []struct {
		name string
		g    *DAG
		want Class
	}{
		{"independent", indep, ClassIndependent},
		{"chains", chains, ClassChains},
		{"out-forest", outF, ClassOutForest},
		{"in-forest", inF, ClassInForest},
		{"mixed-forest", mixed, ClassMixedForest},
		{"general", diamond, ClassGeneral},
	}
	for _, c := range cases {
		if got := c.g.Classify(); got != c.want {
			t.Errorf("%s: Classify() = %v, want %v", c.name, got, c.want)
		}
	}
	if ClassGeneral.IsForest() {
		t.Error("general class must not count as forest")
	}
	for _, c := range []Class{ClassIndependent, ClassChains, ClassOutForest, ClassInForest, ClassMixedForest} {
		if !c.IsForest() {
			t.Errorf("%v should be forest-schedulable", c)
		}
	}
}

func TestChainsExtraction(t *testing.T) {
	g := New(6)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(3, 4)
	chains, err := g.Chains()
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 3 {
		t.Fatalf("got %d chains, want 3", len(chains))
	}
	seen := make(map[int]bool)
	for _, c := range chains {
		for i, v := range c {
			if seen[v] {
				t.Fatalf("vertex %d in two chains", v)
			}
			seen[v] = true
			if i > 0 {
				if got := g.Preds(v); len(got) != 1 || got[0] != c[i-1] {
					t.Fatalf("chain order broken at %d", v)
				}
			}
		}
	}
	if len(seen) != 6 {
		t.Fatalf("chains cover %d vertices, want 6", len(seen))
	}
	bad := New(3)
	bad.MustEdge(0, 1)
	bad.MustEdge(0, 2)
	if _, err := bad.Chains(); err == nil {
		t.Fatal("Chains on out-tree should error")
	}
}

func TestLayers(t *testing.T) {
	g := New(5)
	g.MustEdge(0, 2)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(1, 4)
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 4}, {3}}
	if len(layers) != len(want) {
		t.Fatalf("got %d layers, want %d", len(layers), len(want))
	}
	for i := range want {
		if len(layers[i]) != len(want[i]) {
			t.Fatalf("layer %d = %v, want %v", i, layers[i], want[i])
		}
		got := make(map[int]bool)
		for _, v := range layers[i] {
			got[v] = true
		}
		for _, v := range want[i] {
			if !got[v] {
				t.Fatalf("layer %d = %v, want %v", i, layers[i], want[i])
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := New(4)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(3, 2)
	reach, err := g.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	wantTrue := [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 2}}
	for _, p := range wantTrue {
		if !reach[p[0]][p[1]] {
			t.Errorf("reach[%d][%d] = false, want true", p[0], p[1])
		}
	}
	wantFalse := [][2]int{{1, 0}, {2, 0}, {0, 3}, {3, 0}, {0, 0}}
	for _, p := range wantFalse {
		if reach[p[0]][p[1]] {
			t.Errorf("reach[%d][%d] = true, want false", p[0], p[1])
		}
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	r := g.Reverse()
	if r.Edges() != 2 || len(r.Succs(2)) != 1 || r.Succs(2)[0] != 1 {
		t.Fatal("Reverse wrong")
	}
}

// randomForest builds a random forest with both orientations on n vertices.
func randomForest(n int, rng *rand.Rand) *DAG {
	g := New(n)
	// Partition vertices into trees; orient each randomly.
	perm := rng.Perm(n)
	for start := 0; start < n; {
		size := 1 + rng.Intn(n-start)
		vs := perm[start : start+size]
		out := rng.Intn(2) == 0
		for i := 1; i < len(vs); i++ {
			parent := vs[rng.Intn(i)]
			if out {
				g.MustEdge(parent, vs[i])
			} else {
				g.MustEdge(vs[i], parent)
			}
		}
		start += size
	}
	return g
}

func TestDecomposeForestProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomForest(n, rng)
		blocks, err := g.DecomposeForest()
		if err != nil {
			t.Logf("DecomposeForest: %v (class %v)", err, g.Classify())
			return false
		}
		return checkDecomposition(t, g, blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// checkDecomposition verifies the three decomposition invariants:
// partition, chain-internal precedence, and cross-block precedence.
func checkDecomposition(t *testing.T, g *DAG, blocks []Block) bool {
	t.Helper()
	n := g.N()
	blockOf := make([]int, n)
	posInChain := make([]int, n)
	chainID := make([]int, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	cid := 0
	for bi, b := range blocks {
		for _, c := range b {
			for pi, v := range c {
				if v < 0 || v >= n || blockOf[v] != -1 {
					t.Logf("vertex %d repeated or out of range", v)
					return false
				}
				blockOf[v] = bi
				posInChain[v] = pi
				chainID[v] = cid
			}
			cid++
		}
	}
	for v := 0; v < n; v++ {
		if blockOf[v] == -1 {
			t.Logf("vertex %d missing from decomposition", v)
			return false
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Succs(u) {
			switch {
			case chainID[u] == chainID[v]:
				if posInChain[u] >= posInChain[v] {
					t.Logf("edge (%d,%d) backwards within chain", u, v)
					return false
				}
			case blockOf[u] >= blockOf[v]:
				t.Logf("edge (%d,%d): block %d !< %d", u, v, blockOf[u], blockOf[v])
				return false
			}
		}
	}
	return true
}

func TestDecomposeForestBlockCount(t *testing.T) {
	// A full binary out-tree on 63 vertices has light-depth ≤ log2(63) ≈ 5,
	// so at most 6 blocks.
	g := New(63)
	for v := 1; v < 63; v++ {
		g.MustEdge((v-1)/2, v)
	}
	blocks, err := g.DecomposeForest()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) > 6 {
		t.Fatalf("binary tree decomposed into %d blocks, want ≤ 6", len(blocks))
	}
	if !checkDecomposition(t, g, blocks) {
		t.Fatal("invalid decomposition")
	}
}

func TestDecomposeChainSingleBlock(t *testing.T) {
	g := New(10)
	for v := 0; v+1 < 10; v++ {
		g.MustEdge(v, v+1)
	}
	blocks, err := g.DecomposeForest()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || len(blocks[0]) != 1 || len(blocks[0][0]) != 10 {
		t.Fatalf("chain should decompose into one block with one chain, got %v", blocks)
	}
}

func TestDecomposeIndependent(t *testing.T) {
	g := New(5)
	blocks, err := g.DecomposeForest()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || len(blocks[0]) != 5 {
		t.Fatalf("independent: got %d blocks, first with %d chains", len(blocks), len(blocks[0]))
	}
}

func TestDecomposeInTree(t *testing.T) {
	// In-tree: 15-vertex full binary tree with edges child->parent.
	g := New(15)
	for v := 1; v < 15; v++ {
		g.MustEdge(v, (v-1)/2)
	}
	blocks, err := g.DecomposeForest()
	if err != nil {
		t.Fatal(err)
	}
	if !checkDecomposition(t, g, blocks) {
		t.Fatal("invalid in-tree decomposition")
	}
	// Root (vertex 0) must be in the last block's chain end.
	last := blocks[len(blocks)-1]
	found := false
	for _, c := range last {
		if c[len(c)-1] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("in-tree root should complete last")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.MustEdge(0, 1)
	c := g.Clone()
	c.MustEdge(1, 2)
	if g.Edges() != 1 || c.Edges() != 2 {
		t.Fatalf("clone not independent: %d, %d", g.Edges(), c.Edges())
	}
}

func TestWidth(t *testing.T) {
	// Independent: width n.
	indep := New(5)
	if w, err := indep.Width(); err != nil || w != 5 {
		t.Fatalf("independent width %d, %v", w, err)
	}
	// Chain: width 1.
	chain := New(6)
	for v := 0; v+1 < 6; v++ {
		chain.MustEdge(v, v+1)
	}
	if w, err := chain.Width(); err != nil || w != 1 {
		t.Fatalf("chain width %d, %v", w, err)
	}
	// Diamond 0->{1,2}->3: width 2.
	d := New(4)
	d.MustEdge(0, 1)
	d.MustEdge(0, 2)
	d.MustEdge(1, 3)
	d.MustEdge(2, 3)
	if w, err := d.Width(); err != nil || w != 2 {
		t.Fatalf("diamond width %d, %v", w, err)
	}
	// Two disjoint chains of 3: width 2.
	two := New(6)
	two.MustEdge(0, 1)
	two.MustEdge(1, 2)
	two.MustEdge(3, 4)
	two.MustEdge(4, 5)
	if w, err := two.Width(); err != nil || w != 2 {
		t.Fatalf("two-chain width %d, %v", w, err)
	}
	// Empty graph.
	if w, err := New(0).Width(); err != nil || w != 0 {
		t.Fatalf("empty width %d, %v", w, err)
	}
	// Cycle errors.
	cyc := New(2)
	cyc.MustEdge(0, 1)
	cyc.MustEdge(1, 0)
	if _, err := cyc.Width(); err == nil {
		t.Fatal("cycle must error")
	}
}

// TestWidthMatchesBruteForce cross-checks Dilworth against explicit
// antichain enumeration on random small DAGs.
func TestWidthMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.MustEdge(u, v)
				}
			}
		}
		got, err := g.Width()
		if err != nil {
			return false
		}
		reach, err := g.TransitiveClosure()
		if err != nil {
			return false
		}
		best := 0
		for mask := 0; mask < 1<<uint(n); mask++ {
			ok := true
			size := 0
			for u := 0; u < n && ok; u++ {
				if mask&(1<<uint(u)) == 0 {
					continue
				}
				size++
				for v := 0; v < n; v++ {
					if v != u && mask&(1<<uint(v)) != 0 && (reach[u][v] || reach[v][u]) {
						ok = false
						break
					}
				}
			}
			if ok && size > best {
				best = size
			}
		}
		if got != best {
			t.Logf("seed %d: width %d, brute force %d", seed, got, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
