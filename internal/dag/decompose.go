package dag

import "fmt"

// Chain is a sequence of vertices in precedence order: each vertex must
// complete before the next may start.
type Chain []int

// Block is a set of vertex-disjoint chains that can be scheduled together
// as one disjoint-chains sub-instance: once all earlier blocks are complete,
// the only remaining precedence among a block's vertices is chain-internal.
type Block []Chain

// DecomposeForest splits a directed forest into an ordered list of blocks
// using heavy-path decomposition (the chain-decomposition technique of
// Kumar et al. used by the paper's SUU-T algorithm, Appendix B).
//
// Every vertex appears in exactly one chain of exactly one block. Processing
// blocks in order respects all precedence constraints: for any edge (u, v),
// either u and v share a chain with u earlier, or u's block strictly
// precedes v's. The number of blocks is at most ⌊log₂ n⌋ + 1 per tree
// because each extra block crosses a light edge, which at least halves the
// subtree size.
//
// Out-trees are decomposed on the forward graph; in-trees on the reverse
// graph with block order and chain direction flipped. Mixed forests are
// handled per component; an in-tree component's blocks are appended after
// the out-tree blocks it is independent of (disjoint components have no
// cross edges, so any interleaving is valid — we merge positionally).
func (g *DAG) DecomposeForest() ([]Block, error) {
	cls := g.Classify()
	if !cls.IsForest() {
		return nil, fmt.Errorf("dag: DecomposeForest on class %v", cls)
	}
	if cls == ClassIndependent {
		b := make(Block, g.n)
		for v := 0; v < g.n; v++ {
			b[v] = Chain{v}
		}
		return []Block{b}, nil
	}
	rev := g.Reverse()
	var all [][]Block // one ordered block list per component
	for _, vs := range g.components() {
		out := true
		for _, v := range vs {
			if len(g.preds[v]) > 1 {
				out = false
				break
			}
		}
		if out {
			all = append(all, heavyPathBlocks(g, vs, false))
		} else {
			// In-tree: decompose the reversed component (an out-tree),
			// then flip chain direction and block order.
			blocks := heavyPathBlocks(rev, vs, true)
			all = append(all, blocks)
		}
	}
	// Merge positionally: global block i is the union of every component's
	// i-th block. Components are disjoint, so chains remain vertex-disjoint
	// and precedence is preserved.
	maxLen := 0
	for _, bs := range all {
		if len(bs) > maxLen {
			maxLen = len(bs)
		}
	}
	merged := make([]Block, maxLen)
	for _, bs := range all {
		for i, b := range bs {
			merged[i] = append(merged[i], b...)
		}
	}
	return merged, nil
}

// heavyPathBlocks decomposes one out-tree component (vertices vs of g, where
// every vertex has at most one predecessor within the component) into blocks
// of heavy paths grouped by light-depth. If flip is set, the graph g is the
// reverse of the real precedence graph (an in-tree being processed as an
// out-tree): chains are reversed and blocks are emitted deepest-first so that
// real precedence still runs from earlier blocks to later ones.
func heavyPathBlocks(g *DAG, vs []int, flip bool) []Block {
	inComp := make(map[int]bool, len(vs))
	for _, v := range vs {
		inComp[v] = true
	}
	// Find the root: the unique vertex with no predecessor in the component.
	root := -1
	for _, v := range vs {
		hasPred := false
		for _, u := range g.preds[v] {
			if inComp[u] {
				hasPred = true
				break
			}
		}
		if !hasPred {
			root = v
			break
		}
	}
	if root < 0 {
		// Cannot happen for an acyclic component; guard anyway.
		return nil
	}
	// Subtree sizes by iterative post-order.
	size := make(map[int]int, len(vs))
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := g.succs[f.v]
		if f.next < len(ss) {
			child := ss[f.next]
			f.next++
			if inComp[child] {
				stack = append(stack, frame{child, 0})
			}
			continue
		}
		sz := 1
		for _, c := range ss {
			if inComp[c] {
				sz += size[c]
			}
		}
		size[f.v] = sz
		stack = stack[:len(stack)-1]
	}
	// Walk heavy paths: a path head is the root or a vertex reached by a
	// light edge; lightDepth(head) counts light edges from the root.
	type headInfo struct {
		v     int
		depth int
	}
	heads := []headInfo{{root, 0}}
	var blocks []Block
	ensure := func(d int) {
		for len(blocks) <= d {
			blocks = append(blocks, nil)
		}
	}
	for len(heads) > 0 {
		h := heads[len(heads)-1]
		heads = heads[:len(heads)-1]
		var chain Chain
		v := h.v
		for {
			chain = append(chain, v)
			// Pick the heavy child; queue the light ones as new heads.
			heavy, heavySize := -1, -1
			for _, c := range g.succs[v] {
				if inComp[c] && size[c] > heavySize {
					heavy, heavySize = c, size[c]
				}
			}
			for _, c := range g.succs[v] {
				if inComp[c] && c != heavy {
					heads = append(heads, headInfo{c, h.depth + 1})
				}
			}
			if heavy < 0 {
				break
			}
			v = heavy
		}
		if flip {
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
		}
		ensure(h.depth)
		blocks[h.depth] = append(blocks[h.depth], chain)
	}
	if flip {
		for i, j := 0, len(blocks)-1; i < j; i, j = i+1, j-1 {
			blocks[i], blocks[j] = blocks[j], blocks[i]
		}
	}
	return blocks
}
