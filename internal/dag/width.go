package dag

import "repro/internal/matching"

// Width returns the width of the DAG: the size of its largest antichain
// (set of mutually incomparable jobs). Width is the quantity Malewicz's
// polynomial-time exact algorithm is parameterized by (the paper's
// reference [12]: SUU is in P for constant machines and constant width),
// and it bounds how many jobs can ever be eligible simultaneously —
// which is what makes the exact DP tractable on narrow DAGs.
//
// By Dilworth's theorem the width equals the minimum number of chains
// covering the DAG under the *transitive* order, computed as
// n − maxmatching on the comparability bipartite graph. Quadratic memory
// (transitive closure); intended for the small instances the exact DP
// accepts.
func (g *DAG) Width() (int, error) {
	if g.n == 0 {
		return 0, nil
	}
	reach, err := g.TransitiveClosure()
	if err != nil {
		return 0, err
	}
	b := matching.NewBipartite(g.n, g.n)
	for u := 0; u < g.n; u++ {
		for v := 0; v < g.n; v++ {
			if reach[u][v] {
				b.AddEdge(u, v)
			}
		}
	}
	_, size := b.MaxMatching()
	return g.n - size, nil
}
