// Package dag provides the directed-acyclic-graph machinery that underlies
// SUU precedence constraints: construction and validation, topological
// ordering, classification into the precedence classes studied by the paper
// (independent, disjoint chains, directed forests), chain extraction, and the
// heavy-path chain decomposition of forests into O(log n) blocks used by the
// SUU-T algorithm (Appendix B, after Kumar et al.).
package dag

import (
	"errors"
	"fmt"
)

// DAG is a directed graph on vertices 0..n-1 intended to be acyclic.
// Vertices are jobs; an edge (u, v) means u must complete before v starts.
// The zero value is unusable; construct with New.
type DAG struct {
	n     int
	edges int
	succs [][]int
	preds [][]int
}

// New returns an empty DAG on n vertices.
func New(n int) *DAG {
	if n < 0 {
		n = 0
	}
	return &DAG{
		n:     n,
		succs: make([][]int, n),
		preds: make([][]int, n),
	}
}

// N returns the number of vertices.
func (g *DAG) N() int { return g.n }

// Edges returns the number of edges.
func (g *DAG) Edges() int { return g.edges }

// AddEdge adds the precedence edge u -> v. It rejects out-of-range vertices,
// self-loops, and duplicate edges. It does not check acyclicity; call
// TopoOrder (or Validate) after construction.
func (g *DAG) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("dag: self-loop on vertex %d", u)
	}
	for _, w := range g.succs[u] {
		if w == v {
			return fmt.Errorf("dag: duplicate edge (%d,%d)", u, v)
		}
	}
	g.succs[u] = append(g.succs[u], v)
	g.preds[v] = append(g.preds[v], u)
	g.edges++
	return nil
}

// MustEdge is AddEdge that panics on error; it is a convenience for tests
// and generators building graphs known to be well formed.
func (g *DAG) MustEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Succs returns the successors of v. The returned slice is owned by the DAG
// and must not be modified.
func (g *DAG) Succs(v int) []int { return g.succs[v] }

// Preds returns the predecessors of v. The returned slice is owned by the
// DAG and must not be modified.
func (g *DAG) Preds(v int) []int { return g.preds[v] }

// InDegree returns the number of predecessors of v.
func (g *DAG) InDegree(v int) int { return len(g.preds[v]) }

// OutDegree returns the number of successors of v.
func (g *DAG) OutDegree(v int) int { return len(g.succs[v]) }

// Clone returns a deep copy of the DAG.
func (g *DAG) Clone() *DAG {
	c := New(g.n)
	for u, ss := range g.succs {
		for _, v := range ss {
			c.succs[u] = append(c.succs[u], v)
			c.preds[v] = append(c.preds[v], u)
		}
	}
	c.edges = g.edges
	return c
}

// Reverse returns a new DAG with every edge direction flipped.
func (g *DAG) Reverse() *DAG {
	r := New(g.n)
	for u, ss := range g.succs {
		for _, v := range ss {
			r.succs[v] = append(r.succs[v], u)
			r.preds[u] = append(r.preds[u], v)
		}
	}
	r.edges = g.edges
	return r
}

// ErrCycle is returned when a supposed DAG contains a directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoOrder returns a topological order of the vertices (Kahn's algorithm),
// or ErrCycle if the graph has a directed cycle.
func (g *DAG) TopoOrder() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.preds[v])
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.succs[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks that the graph is acyclic.
func (g *DAG) Validate() error {
	_, err := g.TopoOrder()
	return err
}

// Layers partitions vertices by longest-path depth: layer 0 holds sources,
// and a vertex's layer is 1 + max layer over its predecessors. Jobs within a
// layer are mutually independent given all earlier layers are complete, which
// is the structure exploited by the layered (MapReduce-style) scheduler.
func (g *DAG) Layers() ([][]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.n)
	maxDepth := 0
	for _, v := range order {
		for _, u := range g.preds[v] {
			if depth[u]+1 > depth[v] {
				depth[v] = depth[u] + 1
			}
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	layers := make([][]int, maxDepth+1)
	for v := 0; v < g.n; v++ {
		layers[depth[v]] = append(layers[depth[v]], v)
	}
	return layers, nil
}

// TransitiveClosure returns reach[u][v] = true iff there is a directed path
// from u to v (u ≠ v). Quadratic memory; intended for small instances
// (exact DP, validation).
func (g *DAG) TransitiveClosure() ([][]bool, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	reach := make([][]bool, g.n)
	for v := range reach {
		reach[v] = make([]bool, g.n)
	}
	// Process in reverse topological order so successors are complete.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, v := range g.succs[u] {
			reach[u][v] = true
			for w := 0; w < g.n; w++ {
				if reach[v][w] {
					reach[u][w] = true
				}
			}
		}
	}
	return reach, nil
}
