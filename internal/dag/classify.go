package dag

import "fmt"

// Class identifies which precedence-constraint family a DAG belongs to.
// The paper gives separate algorithms per class; Classify picks the most
// specific one that applies.
type Class int

const (
	// ClassIndependent means the DAG has no edges (SUU-I).
	ClassIndependent Class = iota
	// ClassChains means every vertex has at most one predecessor and at
	// most one successor: a disjoint union of simple paths (SUU-C).
	ClassChains
	// ClassOutForest means every vertex has at most one predecessor:
	// a forest of out-trees (edges point away from roots).
	ClassOutForest
	// ClassInForest means every vertex has at most one successor:
	// a forest of in-trees (edges point toward roots).
	ClassInForest
	// ClassMixedForest means every weakly-connected component is an
	// out-tree or an in-tree, but the forest mixes both orientations.
	ClassMixedForest
	// ClassGeneral is everything else.
	ClassGeneral
)

// String returns a human-readable class name.
func (c Class) String() string {
	switch c {
	case ClassIndependent:
		return "independent"
	case ClassChains:
		return "chains"
	case ClassOutForest:
		return "out-forest"
	case ClassInForest:
		return "in-forest"
	case ClassMixedForest:
		return "mixed-forest"
	case ClassGeneral:
		return "general"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IsForest reports whether the class is schedulable by SUU-T
// (chains count: a chain is a degenerate tree).
func (c Class) IsForest() bool {
	switch c {
	case ClassIndependent, ClassChains, ClassOutForest, ClassInForest, ClassMixedForest:
		return true
	}
	return false
}

// Classify returns the most specific precedence class of g.
// The graph must be acyclic; Classify returns ClassGeneral for cyclic
// graphs (Validate reports cycles separately).
func (g *DAG) Classify() Class {
	if g.Validate() != nil {
		return ClassGeneral
	}
	if g.edges == 0 {
		return ClassIndependent
	}
	chains, outOK, inOK := true, true, true
	for v := 0; v < g.n; v++ {
		if len(g.preds[v]) > 1 {
			chains, outOK = false, false
		}
		if len(g.succs[v]) > 1 {
			chains, inOK = false, false
		}
	}
	switch {
	case chains:
		return ClassChains
	case outOK:
		return ClassOutForest
	case inOK:
		return ClassInForest
	}
	// Check per-component orientation for a mixed forest.
	comp := g.components()
	mixed := true
	for _, vs := range comp {
		out, in := true, true
		for _, v := range vs {
			if len(g.preds[v]) > 1 {
				out = false
			}
			if len(g.succs[v]) > 1 {
				in = false
			}
		}
		if !out && !in {
			mixed = false
			break
		}
	}
	if mixed {
		return ClassMixedForest
	}
	return ClassGeneral
}

// components returns the weakly-connected components as vertex lists.
func (g *DAG) components() [][]int {
	id := make([]int, g.n)
	for i := range id {
		id[i] = -1
	}
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if id[s] >= 0 {
			continue
		}
		c := len(comps)
		stack := []int{s}
		id[s] = c
		var vs []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			vs = append(vs, v)
			for _, w := range g.succs[v] {
				if id[w] < 0 {
					id[w] = c
					stack = append(stack, w)
				}
			}
			for _, w := range g.preds[v] {
				if id[w] < 0 {
					id[w] = c
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, vs)
	}
	return comps
}

// Chains extracts the disjoint chains of a DAG whose class is
// ClassIndependent or ClassChains. Each chain lists its vertices in
// precedence order; isolated vertices become length-1 chains.
func (g *DAG) Chains() ([]Chain, error) {
	switch g.Classify() {
	case ClassIndependent, ClassChains:
	default:
		return nil, fmt.Errorf("dag: Chains on class %v", g.Classify())
	}
	seen := make([]bool, g.n)
	var chains []Chain
	for v := 0; v < g.n; v++ {
		if seen[v] || len(g.preds[v]) != 0 {
			continue
		}
		var c Chain
		for u := v; ; {
			c = append(c, u)
			seen[u] = true
			if len(g.succs[u]) == 0 {
				break
			}
			u = g.succs[u][0]
		}
		chains = append(chains, c)
	}
	return chains, nil
}
