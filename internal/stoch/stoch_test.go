package stoch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/openshop"
)

func uniformStoch(t testing.TB, seed int64, m, n int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	lambda := make([]float64, n)
	for j := range lambda {
		lambda[j] = 0.5 + 2*rng.Float64()
	}
	v := make([][]float64, m)
	for i := range v {
		v[i] = make([]float64, n)
		for j := range v[i] {
			v[i][j] = 0.2 + 2*rng.Float64()
		}
	}
	ins, err := NewInstance(lambda, v)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestNewInstanceErrors(t *testing.T) {
	if _, err := NewInstance(nil, nil); err == nil {
		t.Fatal("empty must error")
	}
	if _, err := NewInstance([]float64{0}, [][]float64{{1}}); err == nil {
		t.Fatal("zero rate must error")
	}
	if _, err := NewInstance([]float64{1}, [][]float64{{-1}}); err == nil {
		t.Fatal("negative speed must error")
	}
	if _, err := NewInstance([]float64{1, 1}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged must error")
	}
	if _, err := NewInstance([]float64{1, 1}, [][]float64{{1, 0}}); err == nil {
		t.Fatal("unprocessable job must error")
	}
}

func TestSoloFastestClosedForm(t *testing.T) {
	// One job, length 3, fastest machine speed 2: completes at t=1.5.
	ins, err := NewInstance([]float64{1}, [][]float64{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorldWithLengths(ins, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SoloFastest(0); err != nil {
		t.Fatal(err)
	}
	ms, err := w.Makespan()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-1.5) > 1e-12 {
		t.Fatalf("makespan %g, want 1.5", ms)
	}
}

func TestSolveLLTwoMachines(t *testing.T) {
	// Two machines speed 1, two jobs needing 1 unit each: t* = 1.
	ins, err := NewInstance([]float64{1, 1}, [][]float64{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, tstar, err := SolveLL(ins, []int{0, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tstar-1) > 1e-6 {
		t.Fatalf("t* = %g, want 1", tstar)
	}
	// One job needing 2 units: no-parallelism forces t* = 2 even with two
	// machines (Σ_i x_ij ≤ t binds).
	_, tstar, err = SolveLL(ins, []int{0}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tstar-2) > 1e-6 {
		t.Fatalf("t* = %g, want 2 (single-machine-at-a-time constraint)", tstar)
	}
}

func TestRunSegmentsDetectsMidSegmentCompletion(t *testing.T) {
	ins, err := NewInstance([]float64{1}, [][]float64{{2}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorldWithLengths(ins, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	segs := []openshop.Segment{{Duration: 5, JobOf: []int{0}}}
	if err := w.RunSegments(segs); err != nil {
		t.Fatal(err)
	}
	ms, err := w.Makespan()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-0.5) > 1e-12 {
		t.Fatalf("makespan %g, want 0.5", ms)
	}
}

func TestSTCCompletes(t *testing.T) {
	ins := uniformStoch(t, 1, 3, 10)
	sum, err := MonteCarlo(ins, STC{}, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean <= 0 || math.IsNaN(sum.Mean) {
		t.Fatalf("mean %g", sum.Mean)
	}
}

func TestSTCBeatsSequentialAtScale(t *testing.T) {
	ins := uniformStoch(t, 2, 6, 24)
	stc, err := MonteCarlo(ins, STC{}, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := MonteCarlo(ins, SequentialFastest{}, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stc.Mean >= seq.Mean {
		t.Fatalf("STC mean %.2f should beat sequential %.2f with 6 machines", stc.Mean, seq.Mean)
	}
}

func TestLowerBoundBelowMeasured(t *testing.T) {
	ins := uniformStoch(t, 4, 3, 9)
	lb, err := LowerBound(ins)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("lower bound %g", lb)
	}
	stc, err := MonteCarlo(ins, STC{}, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if stc.Mean < lb/4 {
		t.Fatalf("measured %.3f suspiciously below lower bound %.3f", stc.Mean, lb)
	}
}

func TestExponentialSampling(t *testing.T) {
	ins := uniformStoch(t, 5, 2, 1)
	rng := rand.New(rand.NewSource(9))
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		w := NewWorld(ins, rng)
		sum += w.p[0]
	}
	mean := sum / trials
	want := 1 / ins.Lambda[0]
	if math.Abs(mean-want) > 0.03*want {
		t.Fatalf("sampled mean %g, want %g", mean, want)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	ins := uniformStoch(t, 6, 2, 2)
	if _, err := MonteCarlo(ins, STC{}, 0, 1); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestMakespanBeforeDone(t *testing.T) {
	ins := uniformStoch(t, 7, 2, 2)
	w := NewWorld(ins, rand.New(rand.NewSource(1)))
	if _, err := w.Makespan(); err == nil {
		t.Fatal("makespan before completion must error")
	}
}
