package stoch

import (
	"fmt"
	"math"

	"repro/internal/rcmax"
)

// STCRestart is the paper's R|restart, p~exp|E[C_max] algorithm: identical
// to STC-I, but a job must run to completion on a single machine — partial
// work does not carry across machines or attempts. Each round therefore
// substitutes the Lenstra–Shmoys–Tardos R||C_max approximation for the
// Lawler–Labetoulle preemptive schedule (Appendix C, "the only necessary
// change"): round k gives every remaining job a contiguous slot of
// 2^(k−2)/(λ_j·v_ij) on its assigned machine, which completes the job
// exactly when its hidden length is at most 2^(k−2)/λ_j.
type STCRestart struct{}

// Name implements Policy.
func (STCRestart) Name() string { return "stc-r" }

// Run completes all jobs under restart semantics. It uses the same World
// as STC-I; because each slot is a fresh contiguous run on one machine,
// completion within a slot depends only on the hidden length, which
// RunRestartRound implements directly.
func (STCRestart) Run(w *World) error {
	ins := w.Instance()
	k := 3
	if ins.N >= 4 {
		k += int(math.Ceil(math.Log2(math.Log2(float64(ins.N))) - 1e-12))
	}
	for round := 1; round <= k; round++ {
		rem := w.Remaining()
		if len(rem) == 0 {
			return nil
		}
		target := math.Pow(2, float64(round-2))
		// Processing time of job j on machine i for this round's slot.
		p := make([][]float64, ins.M)
		for i := range p {
			p[i] = make([]float64, len(rem))
			for pos, j := range rem {
				if ins.V[i][j] > 0 {
					p[i][pos] = target / (ins.Lambda[j] * ins.V[i][j])
				} else {
					p[i][pos] = math.Inf(1)
				}
			}
		}
		assign, _, err := rcmax.Approx(p, 0.02)
		if err != nil {
			return fmt.Errorf("stoch: stc-r round %d: %w", round, err)
		}
		if err := w.RunRestartRound(rem, assign, target); err != nil {
			return err
		}
	}
	for _, j := range w.Remaining() {
		if err := w.SoloRestart(j); err != nil {
			return err
		}
	}
	return nil
}

// RunRestartRound executes one STC-R round: each remaining job rem[pos]
// runs contiguously on machine assign[pos] for a slot sized to complete it
// iff p_j ≤ target/λ_j. Machines process their assigned jobs back to back;
// the round ends when the longest machine finishes (its makespan is the
// max machine load). Partial work is discarded (restart semantics).
func (w *World) RunRestartRound(rem []int, assign []int, target float64) error {
	if len(assign) != len(rem) {
		return fmt.Errorf("stoch: %d assignments for %d jobs", len(assign), len(rem))
	}
	m := w.ins.M
	machineClock := make([]float64, m)
	for pos, j := range rem {
		i := assign[pos]
		if i < 0 || i >= m {
			return fmt.Errorf("stoch: job %d assigned to machine %d", j, i)
		}
		v := w.ins.V[i][j]
		if v <= 0 {
			return fmt.Errorf("stoch: job %d assigned to zero-speed machine %d", j, i)
		}
		if w.done[j] {
			continue
		}
		slot := target / (w.ins.Lambda[j] * v)
		// The job completes within the slot iff its hidden length fits;
		// it then occupies only p_j/v of the slot.
		if w.p[j] <= target/w.ins.Lambda[j]+tinyWork {
			machineClock[i] += w.p[j] / v
			w.markDone(j, w.clock+machineClock[i])
		} else {
			machineClock[i] += slot
			// Restart semantics: no carried progress.
		}
	}
	span := 0.0
	for _, c := range machineClock {
		if c > span {
			span = c
		}
	}
	w.clock += span
	if w.AllDone() {
		w.clock = w.lastDone
	}
	return nil
}

// SoloRestart finishes job j with a single contiguous run on its fastest
// machine (no partial credit from earlier attempts).
func (w *World) SoloRestart(j int) error {
	if j < 0 || j >= w.ins.N {
		return fmt.Errorf("stoch: job %d out of range", j)
	}
	if w.done[j] {
		return nil
	}
	i := w.ins.FastestMachine(j)
	v := w.ins.V[i][j]
	if v <= 0 {
		return fmt.Errorf("stoch: job %d unprocessable", j)
	}
	w.clock += w.p[j] / v
	w.markDone(j, w.clock)
	return nil
}
