// Package stoch implements the paper's Appendix C: stochastic scheduling
// R|pmtn, p_j~exp(λ_j)|E[C_max] on unrelated machines. Job j's length p_j
// is exponential with known rate λ_j and is revealed only by completion;
// machine i processes job j at speed v_ij; a job may not run on two
// machines at the same moment (the binding constraint that distinguishes
// this setting from SUU). STC-I mirrors SUU-I-SEM: K = ⌈log₂log₂ n⌉ + 3
// rounds, round k solving the deterministic R|pmtn|C_max relaxation with
// lengths 2^(k−2)/λ_j via the Lawler–Labetoulle LP and executing its
// open-shop timetable; stragglers finish on their fastest machines.
package stoch

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/lp"
	"repro/internal/openshop"
	"repro/internal/stats"
)

// Instance is one stochastic scheduling instance.
type Instance struct {
	M, N   int
	Lambda []float64   // job rates: E[p_j] = 1/λ_j
	V      [][]float64 // V[i][j] ≥ 0: speed of machine i on job j
}

// NewInstance validates and builds an instance.
func NewInstance(lambda []float64, v [][]float64) (*Instance, error) {
	n := len(lambda)
	m := len(v)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("stoch: need jobs and machines (n=%d m=%d)", n, m)
	}
	for j, l := range lambda {
		if l <= 0 || math.IsNaN(l) {
			return nil, fmt.Errorf("stoch: lambda[%d] = %v", j, l)
		}
	}
	for i := range v {
		if len(v[i]) != n {
			return nil, fmt.Errorf("stoch: v row %d has %d entries, want %d", i, len(v[i]), n)
		}
		for j, s := range v[i] {
			if s < 0 || math.IsNaN(s) {
				return nil, fmt.Errorf("stoch: v[%d][%d] = %v", i, j, s)
			}
		}
	}
	for j := 0; j < n; j++ {
		ok := false
		for i := 0; i < m; i++ {
			if v[i][j] > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("stoch: job %d has zero speed on every machine", j)
		}
	}
	return &Instance{M: m, N: n, Lambda: lambda, V: v}, nil
}

// FastestMachine returns the machine with the highest speed for job j.
func (ins *Instance) FastestMachine(j int) int {
	best, bestV := 0, -1.0
	for i := 0; i < ins.M; i++ {
		if ins.V[i][j] > bestV {
			best, bestV = i, ins.V[i][j]
		}
	}
	return best
}

// World is one continuous-time execution with hidden exponential lengths.
type World struct {
	ins      *Instance
	p        []float64 // hidden lengths
	acc      []float64 // work done so far
	done     []bool
	left     int
	clock    float64
	lastDone float64
}

// NewWorld draws hidden job lengths from rng.
func NewWorld(ins *Instance, rng *rand.Rand) *World {
	p := make([]float64, ins.N)
	for j := range p {
		p[j] = rng.ExpFloat64() / ins.Lambda[j]
	}
	w, _ := NewWorldWithLengths(ins, p)
	return w
}

// NewWorldWithLengths builds a world with explicit lengths (tests).
func NewWorldWithLengths(ins *Instance, p []float64) (*World, error) {
	if len(p) != ins.N {
		return nil, fmt.Errorf("stoch: %d lengths for %d jobs", len(p), ins.N)
	}
	return &World{
		ins:  ins,
		p:    append([]float64(nil), p...),
		acc:  make([]float64, ins.N),
		done: make([]bool, ins.N),
		left: ins.N,
	}, nil
}

// Instance returns the instance being executed.
func (w *World) Instance() *Instance { return w.ins }

// AllDone reports whether every job has completed.
func (w *World) AllDone() bool { return w.left == 0 }

// Done reports whether job j has completed.
func (w *World) Done(j int) bool { return w.done[j] }

// Remaining returns uncompleted job ids in ascending order.
func (w *World) Remaining() []int {
	out := make([]int, 0, w.left)
	for j, d := range w.done {
		if !d {
			out = append(out, j)
		}
	}
	return out
}

// Clock returns the current time.
func (w *World) Clock() float64 { return w.clock }

// Makespan returns the last completion time; it errors when jobs remain.
func (w *World) Makespan() (float64, error) {
	if !w.AllDone() {
		return 0, fmt.Errorf("stoch: %d jobs remaining", w.left)
	}
	return w.lastDone, nil
}

const tinyWork = 1e-12

// RunSegments executes an open-shop timetable. Completions are detected
// mid-segment (the moment accrued work crosses the hidden length); the
// machine idles for the rest of its segment share, as a preemptive
// schedule built ahead of completions would. If everything finishes
// mid-timetable the clock stops at the last completion.
func (w *World) RunSegments(segments []openshop.Segment) error {
	for _, seg := range segments {
		if len(seg.JobOf) != w.ins.M {
			return fmt.Errorf("stoch: segment has %d machines, want %d", len(seg.JobOf), w.ins.M)
		}
		for i, j := range seg.JobOf {
			if j < 0 {
				continue
			}
			if j >= w.ins.N {
				return fmt.Errorf("stoch: segment schedules job %d", j)
			}
			if w.done[j] {
				continue
			}
			v := w.ins.V[i][j]
			if v <= 0 {
				continue
			}
			need := w.p[j] - w.acc[j]
			gain := v * seg.Duration
			if gain+tinyWork >= need {
				w.markDone(j, w.clock+need/v)
			} else {
				w.acc[j] += gain
			}
		}
		w.clock += seg.Duration
		if w.AllDone() {
			w.clock = w.lastDone
			return nil
		}
	}
	return nil
}

func (w *World) markDone(j int, at float64) {
	if w.done[j] {
		return
	}
	w.done[j] = true
	w.acc[j] = w.p[j]
	w.left--
	if at > w.lastDone {
		w.lastDone = at
	}
}

// SoloFastest finishes job j on its fastest machine (the endgame and the
// Sequential baseline's primitive).
func (w *World) SoloFastest(j int) error {
	if j < 0 || j >= w.ins.N {
		return fmt.Errorf("stoch: job %d out of range", j)
	}
	if w.done[j] {
		return nil
	}
	i := w.ins.FastestMachine(j)
	v := w.ins.V[i][j]
	if v <= 0 {
		return fmt.Errorf("stoch: job %d unprocessable", j)
	}
	dt := (w.p[j] - w.acc[j]) / v
	if dt < 0 {
		dt = 0
	}
	w.clock += dt
	w.markDone(j, w.clock)
	return nil
}

// Policy is a stochastic-scheduling algorithm.
type Policy interface {
	Name() string
	Run(w *World) error
}

// SolveLL solves the Lawler–Labetoulle LP for R|pmtn|C_max with
// deterministic processing requirements req over the given jobs:
//
//	min t  s.t.  Σ_i v_ij·x_ij ≥ req_j,  Σ_j x_ij ≤ t,  Σ_i x_ij ≤ t,
//
// returning the machine-time matrix x (m × len(jobs)) and the makespan t.
// LL prove the fractional optimum is achievable by a preemptive schedule;
// openshop.Decompose constructs it.
func SolveLL(ins *Instance, jobs []int, req []float64) ([][]float64, float64, error) {
	k := len(jobs)
	if k == 0 {
		return make([][]float64, ins.M), 0, nil
	}
	if len(req) != k {
		return nil, 0, fmt.Errorf("stoch: %d requirements for %d jobs", len(req), k)
	}
	m := ins.M
	p := lp.NewProblem(m*k + 1)
	tv := m * k
	p.C[tv] = 1
	for pos, j := range jobs {
		var terms []lp.Term
		for i := 0; i < m; i++ {
			if ins.V[i][j] > 0 {
				terms = append(terms, lp.Term{Var: i*k + pos, Coef: ins.V[i][j]})
			}
		}
		if len(terms) == 0 {
			return nil, 0, fmt.Errorf("stoch: job %d unprocessable", j)
		}
		p.AddConstraint(terms, lp.GE, req[pos])
	}
	for i := 0; i < m; i++ {
		terms := make([]lp.Term, 0, k+1)
		for pos := 0; pos < k; pos++ {
			terms = append(terms, lp.Term{Var: i*k + pos, Coef: 1})
		}
		terms = append(terms, lp.Term{Var: tv, Coef: -1})
		p.AddConstraint(terms, lp.LE, 0)
	}
	for pos := 0; pos < k; pos++ {
		terms := make([]lp.Term, 0, m+1)
		for i := 0; i < m; i++ {
			terms = append(terms, lp.Term{Var: i*k + pos, Coef: 1})
		}
		terms = append(terms, lp.Term{Var: tv, Coef: -1})
		p.AddConstraint(terms, lp.LE, 0)
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return nil, 0, fmt.Errorf("stoch: LL solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("stoch: LL status %v", sol.Status)
	}
	x := make([][]float64, m)
	for i := 0; i < m; i++ {
		x[i] = sol.X[i*k : (i+1)*k]
	}
	return x, sol.Obj, nil
}

// STC is STC-I: the semioblivious doubling-rounds algorithm for
// exponential job lengths (Theorem 13): expected makespan
// O(E[T_OPT]·log log n).
type STC struct{}

// Name implements Policy.
func (STC) Name() string { return "stc-i" }

// Run completes all jobs.
func (STC) Run(w *World) error {
	ins := w.Instance()
	k := 3
	if ins.N >= 4 {
		k += int(math.Ceil(math.Log2(math.Log2(float64(ins.N))) - 1e-12))
	}
	for round := 1; round <= k; round++ {
		rem := w.Remaining()
		if len(rem) == 0 {
			return nil
		}
		req := make([]float64, len(rem))
		for pos, j := range rem {
			req[pos] = math.Pow(2, float64(round-2)) / ins.Lambda[j]
		}
		x, t, err := SolveLL(ins, rem, req)
		if err != nil {
			return err
		}
		if t <= 0 {
			return fmt.Errorf("stoch: degenerate round %d makespan %g", round, t)
		}
		// Expand x (indexed by position) to the full job space for the
		// timetable.
		u := make([][]float64, ins.M)
		for i := range u {
			u[i] = make([]float64, ins.N)
			for pos, j := range rem {
				u[i][j] = x[i][pos]
			}
		}
		segs, err := openshop.Decompose(u, t)
		if err != nil {
			return err
		}
		if err := w.RunSegments(segs); err != nil {
			return err
		}
	}
	for _, j := range w.Remaining() {
		if err := w.SoloFastest(j); err != nil {
			return err
		}
	}
	return nil
}

// SequentialFastest is the trivial baseline: jobs one at a time, each on
// its fastest machine.
type SequentialFastest struct{}

// Name implements Policy.
func (SequentialFastest) Name() string { return "sequential-fastest" }

// Run completes all jobs.
func (SequentialFastest) Run(w *World) error {
	for _, j := range w.Remaining() {
		if err := w.SoloFastest(j); err != nil {
			return err
		}
	}
	return nil
}

// MonteCarlo estimates a policy's expected makespan over independent
// trials (sequential; stochastic runs are cheap and the LP dominates).
func MonteCarlo(ins *Instance, p Policy, trials int, seed int64) (stats.Summary, error) {
	if trials <= 0 {
		return stats.Summary{}, fmt.Errorf("stoch: trials = %d", trials)
	}
	makespans := make([]float64, trials)
	for i := range makespans {
		w := NewWorld(ins, rand.New(rand.NewSource(seed+int64(i))))
		if err := p.Run(w); err != nil {
			return stats.Summary{}, fmt.Errorf("stoch: trial %d of %s: %w", i, p.Name(), err)
		}
		ms, err := w.Makespan()
		if err != nil {
			return stats.Summary{}, err
		}
		makespans[i] = ms
	}
	return stats.Summarize(makespans), nil
}

// LowerBound bounds E[T_OPT] from below by the max of two terms:
//
//   - the stochastic analog of Lemma 1 — half the LL optimum with per-job
//     requirements median/2 = ln2/(2λ_j) (each job independently needs
//     that much work with probability ≥ 2^(−1/2), the same uniform-subset
//     argument as the SUU case), and
//   - the solo-job term: job j alone takes expected time
//     1/(λ_j · max_i v_ij) even on its best machine, and no job may use
//     two machines at once.
//
// Used to normalize measured ratios.
func LowerBound(ins *Instance) (float64, error) {
	jobs := make([]int, ins.N)
	req := make([]float64, ins.N)
	solo := 0.0
	for j := range jobs {
		jobs[j] = j
		req[j] = math.Ln2 / (2 * ins.Lambda[j])
		if s := 1 / (ins.Lambda[j] * ins.V[ins.FastestMachine(j)][j]); s > solo {
			solo = s
		}
	}
	_, t, err := SolveLL(ins, jobs, req)
	if err != nil {
		return 0, err
	}
	return math.Max(t/2, solo), nil
}
