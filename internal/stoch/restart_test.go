package stoch

import (
	"math"
	"testing"
)

func TestSTCRestartCompletes(t *testing.T) {
	ins := uniformStoch(t, 21, 4, 12)
	sum, err := MonteCarlo(ins, STCRestart{}, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean <= 0 || math.IsNaN(sum.Mean) {
		t.Fatalf("mean %g", sum.Mean)
	}
}

func TestSTCRestartRoundSemantics(t *testing.T) {
	// Two jobs, one machine, speeds 1. Lengths 0.4 and 10. Round 1 target
	// 1/2 with λ=1: slots of 1/2 each. Job 0 (length 0.4 ≤ 0.5) completes
	// at its own length 0.4... measured on the machine timeline.
	ins, err := NewInstance([]float64{1, 1}, [][]float64{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorldWithLengths(ins, []float64{0.4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunRestartRound([]int{0, 1}, []int{0, 0}, 0.5); err != nil {
		t.Fatal(err)
	}
	if !w.Done(0) || w.Done(1) {
		t.Fatalf("done = (%v,%v), want (true,false)", w.Done(0), w.Done(1))
	}
	// Machine timeline: job 0 finishes at 0.4, then job 1's failed slot of
	// 0.5 ⇒ round span 0.9.
	if math.Abs(w.Clock()-0.9) > 1e-12 {
		t.Fatalf("clock %g, want 0.9", w.Clock())
	}
	// Restart semantics: job 1 retains no progress.
	if w.acc[1] != 0 {
		t.Fatalf("job 1 accrued %g, want 0 (restart)", w.acc[1])
	}
}

func TestSTCRestartNoPartialCredit(t *testing.T) {
	// A job of length 3 with λ=1 fails rounds with targets 1/2, 1, 2 and
	// completes in the round with target 4 — or the endgame. Either way
	// the policy must finish it with a full contiguous run.
	ins, err := NewInstance([]float64{1}, [][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorldWithLengths(ins, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := (STCRestart{}).Run(w); err != nil {
		t.Fatal(err)
	}
	ms, err := w.Makespan()
	if err != nil {
		t.Fatal(err)
	}
	// Failed slots: 0.5 + 1 + 2 = 3.5 (n=1 ⇒ K=3 rounds), then the
	// endgame's contiguous run of 3 ⇒ makespan 6.5.
	if math.Abs(ms-6.5) > 1e-9 {
		t.Fatalf("makespan %g, want 6.5", ms)
	}
}

func TestSTCRestartVsSTCPreemptive(t *testing.T) {
	// Restart is a strictly weaker model; on the same instances STC-R's
	// expected makespan should be within a small constant of STC-I's and
	// both must beat sequential at scale.
	ins := uniformStoch(t, 22, 6, 24)
	r, err := MonteCarlo(ins, STCRestart{}, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	i, err := MonteCarlo(ins, STC{}, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean > 6*i.Mean {
		t.Fatalf("restart %.2f implausibly worse than preemptive %.2f", r.Mean, i.Mean)
	}
	seq, err := MonteCarlo(ins, SequentialFastest{}, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean >= seq.Mean {
		t.Fatalf("stc-r %.2f should beat sequential %.2f with 6 machines", r.Mean, seq.Mean)
	}
}

func TestSoloRestart(t *testing.T) {
	ins, err := NewInstance([]float64{1}, [][]float64{{2}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorldWithLengths(ins, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SoloRestart(0); err != nil {
		t.Fatal(err)
	}
	ms, _ := w.Makespan()
	if ms != 2 {
		t.Fatalf("makespan %g, want 2 (8 work at speed 4)", ms)
	}
	if err := w.SoloRestart(0); err != nil {
		t.Fatal("solo on done job should be a no-op")
	}
}

func TestRunRestartRoundErrors(t *testing.T) {
	ins, err := NewInstance([]float64{1}, [][]float64{{1}}) // 1 machine
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := NewWorldWithLengths(ins, []float64{1})
	if err := w2.RunRestartRound([]int{0}, []int{0, 1}, 1); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := w2.RunRestartRound([]int{0}, []int{5}, 1); err == nil {
		t.Fatal("bad machine must error")
	}
}
