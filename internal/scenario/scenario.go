// Package scenario generates randomized SUU instances for property-based
// and fuzz testing. Where internal/workload builds the paper's named
// experiment families (well-conditioned by design), scenario deliberately
// wanders the edges of the input space the hand-written tests never reach:
// degenerate failure probabilities (exactly 0, exactly 1, and 1−ε, the
// values that hit the LogFailCap clamp and the ℓ=0 no-mass path), duplicate
// job columns (identical LP columns force degenerate ties), m ≫ n and
// n ≫ m aspect ratios, and every precedence shape the service routes on
// (independent, chains, forest, layered).
//
// Generation is deterministic in the seed: a Gen built from the same seed
// emits the same instance sequence on every run and platform (it draws from
// internal/rng's SplitMix64), so a property-test failure reproduces from
// its logged seed alone. Instances are built through model.New and are
// always valid — the generator's job is to be adversarial within the
// contract, not to produce garbage (the fuzz targets own the garbage).
package scenario

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/rng"
)

// Shape selects the precedence structure of generated instances.
type Shape string

// The four generated shapes. Independent and Chains are plannable
// (/v1/plan supports them); Forest and Layered exercise the estimate
// policies and the service's per-item rejection paths.
const (
	Independent Shape = "independent"
	Chains      Shape = "chains"
	Forest      Shape = "forest"
	Layered     Shape = "layered"
)

// Shapes lists every generated shape, in a fixed order property suites can
// range over.
var Shapes = []Shape{Independent, Chains, Forest, Layered}

// Gen is a deterministic instance generator. Not safe for concurrent use;
// give each goroutine its own (seeds are cheap).
type Gen struct {
	src *rng.SplitMix64

	// MaxJobs and MaxMachines bound the common-case sampled sizes. The
	// skewed aspect-ratio draws (m ≫ n, n ≫ m) may exceed one of them by
	// design, up to 4×. Zero values default to 16 jobs / 8 machines —
	// small enough that a 200-scenario property sweep stays in seconds.
	MaxJobs     int
	MaxMachines int
}

// New returns a generator for the given seed.
func New(seed int64) *Gen { return &Gen{src: rng.New(seed)} }

func (g *Gen) f64() float64 { return g.src.Float64() }

// intn returns a uniform int in [0, n). n must be positive.
func (g *Gen) intn(n int) int { return int(g.src.Uint64() % uint64(n)) }

// Instance draws one random instance of the given shape.
func (g *Gen) Instance(shape Shape) (*model.Instance, error) {
	maxN, maxM := g.MaxJobs, g.MaxMachines
	if maxN <= 0 {
		maxN = 16
	}
	if maxM <= 0 {
		maxM = 8
	}
	var m, n int
	switch r := g.f64(); {
	case r < 0.10: // m ≫ n: more machines than jobs, the matching-heavy corner
		n = 1 + g.intn(3)
		m = 2*maxM + g.intn(2*maxM)
	case r < 0.20: // n ≫ m: long schedules, machine rows are the bottleneck
		n = 2*maxN + g.intn(2*maxN)
		m = 1 + g.intn(2)
	default:
		n = 1 + g.intn(maxN)
		m = 1 + g.intn(maxM)
	}
	q := g.qMatrix(m, n)
	prec, err := g.prec(shape, n)
	if err != nil {
		return nil, err
	}
	ins, err := model.New(m, n, q, prec)
	if err != nil {
		return nil, fmt.Errorf("scenario: generated an invalid %s instance (m=%d n=%d): %w", shape, m, n, err)
	}
	return ins, nil
}

// qMatrix fills an m×n failure matrix with adversarial values: point
// masses at 0 (instant success, ℓ clamped to LogFailCap), 1 (useless
// machine, ℓ=0), and 1−ε (ℓ barely positive — the numerically nastiest
// rate), plus duplicated job columns. Every job is guaranteed at least one
// machine with q < 1, the model invariant.
func (g *Gen) qMatrix(m, n int) [][]float64 {
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			switch r := g.f64(); {
			case r < 0.08:
				q[i][j] = 0 // certain completion: ℓ hits the LogFailCap clamp
			case r < 0.20:
				q[i][j] = 1 // machine contributes nothing to this job
			case r < 0.25:
				q[i][j] = math.Nextafter(1, 0) // 1−ε: smallest positive ℓ
			case r < 0.30:
				q[i][j] = math.Exp2(-float64(40 + g.intn(40))) // deep tail, near/below the clamp
			default:
				q[i][j] = 0.02 + 0.96*g.f64()
			}
		}
	}
	// Duplicate jobs: copy whole columns so the LP sees identical columns
	// (exactly tied reduced costs, the degenerate-pivot stressor).
	if n >= 2 && g.f64() < 0.35 {
		for k := 0; k < 1+n/4; k++ {
			src, dst := g.intn(n), g.intn(n)
			for i := 0; i < m; i++ {
				q[i][dst] = q[i][src]
			}
		}
	}
	// Repair: every job needs one machine with q < 1 (the model invariant)
	// — and one with q bounded away from 1. A job carried only by ℓ ≈ 1e-16
	// machines needs x ~ 10¹⁵ in LP1's cover row, which no float simplex
	// can be expected to solve; 1−ε entries still appear everywhere as
	// degenerate columns, they just never carry a job alone.
	for j := 0; j < n; j++ {
		ok := false
		for i := 0; i < m; i++ {
			if q[i][j] <= 0.99 {
				ok = true
				break
			}
		}
		if !ok {
			q[g.intn(m)][j] = 0.25 + 0.5*g.f64()
		}
	}
	return q
}

// prec builds the precedence DAG for the shape (nil for most independent
// draws; occasionally a zero-edge DAG, which must behave identically).
func (g *Gen) prec(shape Shape, n int) (*dag.DAG, error) {
	switch shape {
	case Independent:
		if g.f64() < 0.2 {
			// A non-nil zero-edge graph describes the same problem as nil;
			// emitting both forms keeps the fingerprint equivalence honest.
			return dag.New(n), nil
		}
		return nil, nil
	case Chains:
		d := dag.New(n)
		if n < 2 {
			return d, nil
		}
		// Sequential partition into z < n chains: at least one chain has
		// length ≥ 2, so the instance classifies as chains, not independent.
		z := 1 + g.intn(n-1)
		bounds := make([]bool, n) // bounds[j]: a new chain starts at j
		bounds[0] = true
		for k := 1; k < z; k++ {
			bounds[1+g.intn(n-1)] = true
		}
		for j := 1; j < n; j++ {
			if !bounds[j] {
				d.MustEdge(j-1, j)
			}
		}
		return d, nil
	case Forest:
		d := dag.New(n)
		if n < 2 {
			return d, nil
		}
		edges := 0
		for v := 1; v < n; v++ {
			if g.f64() < 0.6 {
				d.MustEdge(g.intn(v), v) // in-degree ≤ 1: an out-forest
				edges++
			}
		}
		if edges == 0 {
			d.MustEdge(0, 1)
		}
		return d, nil
	case Layered:
		d := dag.New(n)
		if n < 2 {
			return d, nil
		}
		layers := 2 + g.intn(3)
		if layers > n {
			layers = n
		}
		// Sequential layer partition, complete bipartite between
		// consecutive layers (mapreduce-style; in-degrees ≥ 2 whenever the
		// previous layer has ≥ 2 jobs, so the class is general, not forest).
		starts := []int{0}
		for k := 1; k < layers; k++ {
			starts = append(starts, starts[k-1]+1+(n-starts[k-1]-(layers-k))/2)
		}
		starts = append(starts, n)
		for k := 0; k+2 < len(starts); k++ {
			for u := starts[k]; u < starts[k+1]; u++ {
				for v := starts[k+1]; v < starts[k+2]; v++ {
					d.MustEdge(u, v)
				}
			}
		}
		return d, nil
	default:
		return nil, fmt.Errorf("scenario: unknown shape %q", shape)
	}
}
