package scenario

import (
	"encoding/json"
	"testing"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/sched"
)

// TestGeneratorDeterministic pins the reproducibility contract: the same
// seed yields the same instance sequence (by content fingerprint).
func TestGeneratorDeterministic(t *testing.T) {
	for _, shape := range Shapes {
		a, b := New(42), New(42)
		for i := 0; i < 50; i++ {
			ia, err := a.Instance(shape)
			if err != nil {
				t.Fatal(err)
			}
			ib, err := b.Instance(shape)
			if err != nil {
				t.Fatal(err)
			}
			if sched.FingerprintInstance(ia) != sched.FingerprintInstance(ib) {
				t.Fatalf("%s instance %d differs across generators with one seed", shape, i)
			}
		}
	}
}

// TestGeneratorShapesAndEdges checks that each shape actually produces its
// precedence class (for sizes where that is possible), that degenerate q
// values and skewed aspect ratios occur, and that every instance survives
// a JSON round trip with its fingerprint intact.
func TestGeneratorShapesAndEdges(t *testing.T) {
	for _, shape := range Shapes {
		g := New(7)
		var sawClass, sawZero, sawOne, sawNearOne, sawMBig, sawNBig, sawDup bool
		for i := 0; i < 200; i++ {
			ins, err := g.Instance(shape)
			if err != nil {
				t.Fatal(err)
			}
			class := ins.Class()
			switch shape {
			case Independent:
				if class != dag.ClassIndependent {
					t.Fatalf("independent draw classified %v", class)
				}
				sawClass = true
			case Chains:
				if ins.N >= 2 && class != dag.ClassChains {
					t.Fatalf("chains draw (n=%d) classified %v", ins.N, class)
				}
				sawClass = sawClass || class == dag.ClassChains
			case Forest:
				if ins.N >= 2 && !class.IsForest() {
					t.Fatalf("forest draw (n=%d) classified %v", ins.N, class)
				}
				sawClass = sawClass || class.IsForest() && class != dag.ClassIndependent && class != dag.ClassChains
			case Layered:
				sawClass = sawClass || (!class.IsForest() && class != dag.ClassChains)
			}
			for i2 := range ins.Q {
				for j := range ins.Q[i2] {
					switch q := ins.Q[i2][j]; {
					case q == 0:
						sawZero = true
					case q == 1:
						sawOne = true
					case q > 0.999999999999:
						sawNearOne = true
					}
				}
			}
			if ins.M > 4*ins.N {
				sawMBig = true
			}
			if ins.N > 8*ins.M {
				sawNBig = true
			}
			// Duplicate job columns: any two identical columns count.
			for a := 0; a < ins.N && !sawDup; a++ {
				for b := a + 1; b < ins.N && !sawDup; b++ {
					same := true
					for i2 := 0; i2 < ins.M; i2++ {
						if ins.Q[i2][a] != ins.Q[i2][b] {
							same = false
							break
						}
					}
					sawDup = same
				}
			}

			data, err := json.Marshal(ins)
			if err != nil {
				t.Fatal(err)
			}
			var back model.Instance
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("%s instance %d does not survive a JSON round trip: %v", shape, i, err)
			}
			if sched.FingerprintInstance(ins) != sched.FingerprintInstance(&back) {
				t.Fatalf("%s instance %d changes fingerprint across a JSON round trip", shape, i)
			}
		}
		if !sawClass {
			t.Errorf("%s: no draw realized its class in 200 instances", shape)
		}
		if !sawZero || !sawOne || !sawNearOne {
			t.Errorf("%s: degenerate q coverage zero=%v one=%v near-one=%v", shape, sawZero, sawOne, sawNearOne)
		}
		if !sawMBig || !sawNBig {
			t.Errorf("%s: aspect-ratio coverage m>>n=%v n>>m=%v", shape, sawMBig, sawNBig)
		}
		if !sawDup {
			t.Errorf("%s: no duplicate job columns in 200 instances", shape)
		}
	}
}
