// Command gencorpus regenerates the committed Go fuzz corpora from the
// scenario generator, seeding the fuzz targets with structured instances
// the mutator would take a long time to discover from scratch:
//
//	go run ./internal/scenario/gencorpus
//
// writes (deterministically — same seed, same files):
//
//	internal/sched/testdata/fuzz/FuzzFingerprint/           instance documents
//	internal/service/testdata/fuzz/FuzzPlanRequestDecode/   plan and batch request bodies
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/scenario"
)

func main() {
	root := flag.String("root", ".", "repository root to write testdata under")
	perShape := flag.Int("per-shape", 3, "corpus entries per scenario shape")
	flag.Parse()

	fpDir := filepath.Join(*root, "internal", "sched", "testdata", "fuzz", "FuzzFingerprint")
	reqDir := filepath.Join(*root, "internal", "service", "testdata", "fuzz", "FuzzPlanRequestDecode")
	for _, d := range []string{fpDir, reqDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	for _, shape := range scenario.Shapes {
		g := scenario.New(90125)
		g.MaxJobs, g.MaxMachines = 8, 4 // corpus entries stay small; the mutator grows them
		for i := 0; i < *perShape; i++ {
			ins, err := g.Instance(shape)
			if err != nil {
				log.Fatal(err)
			}
			insJSON, err := json.Marshal(ins)
			if err != nil {
				log.Fatal(err)
			}
			write(filepath.Join(fpDir, fmt.Sprintf("scenario-%s-%d", shape, i)), insJSON)
			write(filepath.Join(reqDir, fmt.Sprintf("scenario-%s-%d", shape, i)),
				[]byte(fmt.Sprintf(`{"instance":%s}`, insJSON)))
			if i == 0 {
				// One batch body per shape: the instance, a duplicate of
				// it, and an invalid item — the per-item paths in one seed.
				write(filepath.Join(reqDir, fmt.Sprintf("scenario-%s-batch", shape)),
					[]byte(fmt.Sprintf(`{"items":[{"instance":%s},{"instance":%s,"target":0.25},{}],"deadline_ms":50}`, insJSON, insJSON)))
			}
		}
	}
}

// write emits one corpus entry in the `go test fuzz v1` encoding.
func write(path string, data []byte) {
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
