package exact

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/sim"
)

// Policy plays the exact optimal adaptive strategy computed by the subset
// DP: at every step it looks up the remaining-jobs state and applies the
// machine→job assignment that minimizes the expected remaining makespan.
// It implements sim.Policy, so the optimum can be *simulated* and compared
// against Optimal's closed-form expectation — a strong end-to-end check of
// both the DP and the simulator.
type Policy struct {
	ins    *model.Instance
	action map[uint32][]int // state -> assignment (per machine, job id)
	value  float64
}

// OptimalPolicy computes the optimal adaptive policy. Costs are identical
// to Optimal (exponential in n); the same work-budget guard applies.
func OptimalPolicy(ins *model.Instance) (*Policy, error) {
	n, m := ins.N, ins.M
	if n > 30 {
		return nil, fmt.Errorf("exact: n = %d too large (max 30)", n)
	}
	preds := make([]uint32, n)
	if ins.Prec != nil {
		for u := 0; u < n; u++ {
			for _, v := range ins.Prec.Succs(u) {
				preds[v] |= 1 << uint(u)
			}
		}
	}
	full := uint32(1)<<uint(n) - 1
	width, err := widthOf(ins)
	if err != nil {
		return nil, err
	}
	est := stateBound(ins) * math.Pow(float64(max(width, 1)), float64(m)) * math.Pow(2, float64(width))
	if est > workBudget {
		return nil, fmt.Errorf("exact: estimated work %.3g exceeds budget %d", est, int64(workBudget))
	}

	p := &Policy{ins: ins, action: make(map[uint32][]int)}
	memo := map[uint32]float64{0: 0}
	var solve func(s uint32) (float64, error)
	solve = func(s uint32) (float64, error) {
		if v, ok := memo[s]; ok {
			return v, nil
		}
		elig := eligibleSet(s, preds)
		if elig == 0 {
			return 0, fmt.Errorf("exact: state %b has no eligible jobs", s)
		}
		var eligJobs []int
		for j := 0; j < n; j++ {
			if elig&(1<<uint(j)) != 0 {
				eligJobs = append(eligJobs, j)
			}
		}
		k := len(eligJobs)
		assign := make([]int, m)
		fail := make([]float64, k)
		best := math.Inf(1)
		bestAssign := make([]int, m)
		for {
			for t := range fail {
				fail[t] = 1
			}
			for i, ai := range assign {
				fail[ai] *= ins.Q[i][eligJobs[ai]]
			}
			val, err := actionValue(s, eligJobs, fail, solve)
			if err != nil {
				return 0, err
			}
			if val < best {
				best = val
				for i, ai := range assign {
					bestAssign[i] = eligJobs[ai]
				}
			}
			i := 0
			for ; i < m; i++ {
				assign[i]++
				if assign[i] < k {
					break
				}
				assign[i] = 0
			}
			if i == m {
				break
			}
		}
		memo[s] = best
		p.action[s] = append([]int(nil), bestAssign...)
		return best, nil
	}
	v, err := solve(full)
	if err != nil {
		return nil, err
	}
	p.value = v
	return p, nil
}

// Value returns E[T_OPT], the policy's expected makespan.
func (p *Policy) Value() float64 { return p.value }

// Name implements sim.Policy.
func (p *Policy) Name() string { return "exact-optimal" }

// Run implements sim.Policy by replaying the precomputed optimal actions.
func (p *Policy) Run(w *sim.World) error {
	if w.Instance() != p.ins {
		return fmt.Errorf("exact: policy bound to a different instance")
	}
	for !w.AllDone() {
		var state uint32
		for j := 0; j < p.ins.N; j++ {
			if !w.Done(j) {
				state |= 1 << uint(j)
			}
		}
		assign, ok := p.action[state]
		if !ok {
			return fmt.Errorf("exact: unreachable state %b", state)
		}
		if _, err := w.Step(assign); err != nil {
			return err
		}
	}
	return nil
}
