package exact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// TestSimulatedOptimalMatchesDPValue is the strongest cross-check in the
// repository: simulating the DP-optimal policy must reproduce the DP's
// closed-form expected makespan, in BOTH simulators (threshold SUU* and
// coin-flip SUU). A pass ties together the DP, the Theorem 10
// equivalence, and the step engine.
func TestSimulatedOptimalMatchesDPValue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := make([][]float64, 2)
	for i := range q {
		q[i] = make([]float64, 5)
		for j := range q[i] {
			q[i][j] = 0.2 + 0.6*rng.Float64()
		}
	}
	ins, err := model.New(2, 5, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := OptimalPolicy(ins)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 60000
	res, err := sim.MonteCarlo(ins, p, trials, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Summary.Mean-p.Value()) > 4*res.Summary.Sem+0.01 {
		t.Fatalf("threshold sim mean %.4f vs DP value %.4f (sem %.4f)",
			res.Summary.Mean, p.Value(), res.Summary.Sem)
	}
	resCoin, err := sim.MonteCarloCoin(ins, p, trials, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resCoin.Summary.Mean-p.Value()) > 4*resCoin.Summary.Sem+0.01 {
		t.Fatalf("coin sim mean %.4f vs DP value %.4f (sem %.4f)",
			resCoin.Summary.Mean, p.Value(), resCoin.Summary.Sem)
	}
}

func TestOptimalPolicyValueMatchesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		q := make([][]float64, 2)
		for i := range q {
			q[i] = make([]float64, n)
			for j := range q[i] {
				q[i][j] = 0.1 + 0.8*rng.Float64()
			}
		}
		ins, err := model.New(2, n, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Optimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		p, err := OptimalPolicy(ins)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Value()-want) > 1e-9 {
			t.Fatalf("trial %d: policy value %g != Optimal %g", trial, p.Value(), want)
		}
	}
}

func TestOptimalPolicyWrongInstance(t *testing.T) {
	a, err := model.New(1, 2, [][]float64{{0.5, 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.New(1, 2, [][]float64{{0.5, 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := OptimalPolicy(a)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.NewWorld(b, rand.New(rand.NewSource(1)))
	if err := p.Run(w); err == nil {
		t.Fatal("running on a different instance must error")
	}
}

func TestOptimalPolicyRefusesHuge(t *testing.T) {
	q := make([][]float64, 4)
	for i := range q {
		q[i] = make([]float64, 16)
		for j := range q[i] {
			q[i][j] = 0.5
		}
	}
	ins, err := model.New(4, 16, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalPolicy(ins); err == nil {
		t.Fatal("16 jobs × 4 machines must be refused")
	}
}

// TestOptimalBeatsHeuristics: on a specialist instance the optimal policy
// must (weakly) beat any policy; check against the trivial one.
func TestOptimalBeatsHeuristics(t *testing.T) {
	q := [][]float64{
		{0.1, 0.9, 0.9},
		{0.9, 0.1, 0.9},
	}
	ins, err := model.New(2, 3, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := OptimalPolicy(ins)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.MonteCarlo(ins, trivialPolicy{}, 30000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value() > res.Summary.Mean+3*res.Summary.Sem {
		t.Fatalf("optimal %.4f worse than trivial policy %.4f", p.Value(), res.Summary.Mean)
	}
}
