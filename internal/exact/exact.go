// Package exact computes the true optimal expected makespan E[T_OPT] of
// small SUU instances by dynamic programming over job subsets — the
// approach Malewicz used for constant machines and constant dag width
// (the paper's reference [12]). It provides ground truth for measuring
// real approximation ratios in the F/exact experiment: LP bounds only
// upper-bound the ratio, the DP pins it down.
//
// States are successor-closed sets S of uncompleted jobs (if j is
// uncompleted, every successor of j is too). For a machine→eligible-job
// action a, each eligible job j fails the step with probability
// f_j(a) = Π_{i: a(i)=j} q_ij independently, so
//
//	E[S] = min_a ( 1 + Σ_{∅≠c⊆elig} P(c|a)·E[S∖c] ) / (1 − P(∅|a)),
//
// where P(c|a) is the probability that exactly the set c completes.
// The recursion is exponential in n and |elig|^m in actions; Optimal
// refuses instances whose estimated work exceeds a budget instead of
// silently hanging.
package exact

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// workBudget caps the estimated number of inner-loop operations.
const workBudget = 200_000_000

// Optimal returns E[T_OPT] for the instance. It errors when the state or
// action space is too large (keep n ≤ ~12 with few machines, or chains
// with small width — a narrow DAG of 30 jobs is fine).
func Optimal(ins *model.Instance) (float64, error) {
	n, m := ins.N, ins.M
	if n > 30 {
		return 0, fmt.Errorf("exact: n = %d too large (max 30)", n)
	}
	// Successor masks for closure checks and eligibility.
	succs := make([]uint32, n)
	preds := make([]uint32, n)
	if ins.Prec != nil {
		for u := 0; u < n; u++ {
			for _, v := range ins.Prec.Succs(u) {
				succs[u] |= 1 << uint(v)
				preds[v] |= 1 << uint(u)
			}
		}
	}
	full := uint32(1)<<uint(n) - 1

	// Estimate work: closed states × actions × outcome subsets. The DAG
	// width bounds every eligible set (no antichain is larger), and for
	// chain-class instances the closed-state count is the product of
	// (chain length + 1) rather than 2^n — a length-28 chain has width 1
	// and only 29 states.
	width, err := widthOf(ins)
	if err != nil {
		return 0, err
	}
	est := stateBound(ins) * math.Pow(float64(max(width, 1)), float64(m)) * math.Pow(2, float64(width))
	if est > workBudget {
		return 0, fmt.Errorf("exact: estimated work %.3g exceeds budget %d (n=%d m=%d width=%d)",
			est, int64(workBudget), n, m, width)
	}

	memo := make(map[uint32]float64, 1<<uint(n))
	memo[0] = 0
	var solve func(s uint32) (float64, error)
	solve = func(s uint32) (float64, error) {
		if v, ok := memo[s]; ok {
			return v, nil
		}
		elig := eligibleSet(s, preds)
		if elig == 0 {
			return 0, fmt.Errorf("exact: state %b has no eligible jobs", s)
		}
		var eligJobs []int
		for j := 0; j < n; j++ {
			if elig&(1<<uint(j)) != 0 {
				eligJobs = append(eligJobs, j)
			}
		}
		k := len(eligJobs)
		// Enumerate machine→job assignments as base-k counters.
		assign := make([]int, m)
		fail := make([]float64, k)
		best := math.Inf(1)
		for {
			for t := range fail {
				fail[t] = 1
			}
			for i, ai := range assign {
				fail[ai] *= ins.Q[i][eligJobs[ai]]
			}
			// Expected-time contribution of this action.
			val, err := actionValue(s, eligJobs, fail, solve)
			if err != nil {
				return 0, err
			}
			if val < best {
				best = val
			}
			// Next assignment.
			i := 0
			for ; i < m; i++ {
				assign[i]++
				if assign[i] < k {
					break
				}
				assign[i] = 0
			}
			if i == m {
				break
			}
		}
		memo[s] = best
		return best, nil
	}
	return solve(full)
}

// actionValue computes (1 + Σ_{c≠∅} P(c)·E[S∖c]) / (1 − P(∅)) for the
// action with per-eligible-job failure probabilities fail. Returns +Inf
// when the action makes no progress (all fail probabilities 1).
func actionValue(s uint32, eligJobs []int, fail []float64, solve func(uint32) (float64, error)) (float64, error) {
	k := len(eligJobs)
	pStay := 1.0
	for _, f := range fail {
		pStay *= f
	}
	if pStay >= 1-1e-15 {
		return math.Inf(1), nil
	}
	num := 1.0
	// Iterate completing subsets c over the eligible jobs.
	for c := uint32(1); c < 1<<uint(k); c++ {
		p := 1.0
		t := s
		for bit := 0; bit < k; bit++ {
			if c&(1<<uint(bit)) != 0 {
				p *= 1 - fail[bit]
				t &^= 1 << uint(eligJobs[bit])
			} else {
				p *= fail[bit]
			}
		}
		if p == 0 {
			continue
		}
		sub, err := solve(t)
		if err != nil {
			return 0, err
		}
		num += p * sub
	}
	return num / (1 - pStay), nil
}

// widthOf returns the precedence width (n for independent jobs).
func widthOf(ins *model.Instance) (int, error) {
	if ins.Prec == nil {
		return ins.N, nil
	}
	return ins.Prec.Width()
}

// stateBound bounds the number of successor-closed remaining-job sets.
// For chain-class precedence the closed sets factor per chain (a closed
// set keeps a suffix of each chain), giving Π(len+1); otherwise 2^n.
func stateBound(ins *model.Instance) float64 {
	if chains, err := ins.Chains(); err == nil {
		prod := 1.0
		for _, c := range chains {
			prod *= float64(len(c) + 1)
			if prod > 1e18 {
				return prod
			}
		}
		return prod
	}
	return math.Pow(2, float64(ins.N))
}

// eligibleSet returns the jobs of s whose predecessors are all outside s.
func eligibleSet(s uint32, preds []uint32) uint32 {
	var e uint32
	for j := range preds {
		bit := uint32(1) << uint(j)
		if s&bit != 0 && preds[j]&s == 0 {
			e |= bit
		}
	}
	return e
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
