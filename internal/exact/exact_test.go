package exact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/sim"
)

func mustNew(t *testing.T, m, n int, q [][]float64, g *dag.DAG) *model.Instance {
	t.Helper()
	ins, err := model.New(m, n, q, g)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestSingleJobSingleMachine(t *testing.T) {
	// Geometric: E[T] = 1/(1-q).
	for _, q := range []float64{0.1, 0.5, 0.9} {
		ins := mustNew(t, 1, 1, [][]float64{{q}}, nil)
		got, err := Optimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 - q)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("q=%g: got %g, want %g", q, got, want)
		}
	}
}

func TestSingleJobManyMachines(t *testing.T) {
	// Optimal assigns all machines: E[T] = 1/(1-q1·q2·q3).
	ins := mustNew(t, 3, 1, [][]float64{{0.9}, {0.8}, {0.7}}, nil)
	got, err := Optimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.9*0.8*0.7)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestTwoJobsOneMachine(t *testing.T) {
	// One machine, two identical jobs: E = 2/(1-q) (work them in either
	// order; switching gains nothing).
	const q = 0.6
	ins := mustNew(t, 1, 2, [][]float64{{q, q}}, nil)
	got, err := Optimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / (1 - q)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestChainAdditivity(t *testing.T) {
	// Chain j0 -> j1, one machine: expectations add.
	g := dag.New(2)
	g.MustEdge(0, 1)
	ins := mustNew(t, 1, 2, [][]float64{{0.5, 0.25}}, g)
	got, err := Optimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	want := 1/(1-0.5) + 1/(1-0.25)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestTwoJobsTwoMachinesSymmetric(t *testing.T) {
	// Two machines, two jobs, all q identical. Working distinct jobs
	// dominates doubling on one. Let p = 1-q; from state {0,1}:
	// E2 = 1 + q²E2 + 2pq·E1, E1 = 1/(1-q²).
	const q = 0.5
	ins := mustNew(t, 2, 2, [][]float64{{q, q}, {q, q}}, nil)
	got, err := Optimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	e1 := 1 / (1 - q*q)
	e2 := (1 + 2*(1-q)*q*e1) / (1 - q*q)
	if math.Abs(got-e2) > 1e-9 {
		t.Fatalf("got %g, want %g", got, e2)
	}
	if got >= 2/(1-q) {
		t.Fatalf("parallel optimum %g should beat sequential %g", got, 2/(1-q))
	}
}

// TestDPLowerBoundsSimulatedPolicies: no policy can beat the DP optimum.
func TestDPLowerBoundsSimulatedPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := make([][]float64, 2)
	for i := range q {
		q[i] = make([]float64, 4)
		for j := range q[i] {
			q[i][j] = 0.2 + 0.6*rng.Float64()
		}
	}
	ins := mustNew(t, 2, 4, q, nil)
	opt, err := Optimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.MonteCarlo(ins, trivialPolicy{}, 20000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Allow 3 standard errors of slack.
	if res.Summary.Mean < opt-3*res.Summary.Sem {
		t.Fatalf("simulated policy mean %.4f beats DP optimum %.4f", res.Summary.Mean, opt)
	}
}

type trivialPolicy struct{}

func (trivialPolicy) Name() string { return "solo-sequential" }
func (trivialPolicy) Run(w *sim.World) error {
	for !w.AllDone() {
		for _, j := range w.EligibleJobs() {
			if _, err := w.SoloAll(j); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestOptimalRefusesHugeInstances(t *testing.T) {
	q := make([][]float64, 1)
	q[0] = make([]float64, 25)
	for j := range q[0] {
		q[0][j] = 0.5
	}
	ins := mustNew(t, 1, 25, q, nil)
	if _, err := Optimal(ins); err == nil {
		t.Fatal("n=25 must be refused")
	}
	// Wide instance with many machines: action space blows up.
	q2 := make([][]float64, 6)
	for i := range q2 {
		q2[i] = make([]float64, 14)
		for j := range q2[i] {
			q2[i][j] = 0.5
		}
	}
	ins2 := mustNew(t, 6, 14, q2, nil)
	if _, err := Optimal(ins2); err == nil {
		t.Fatal("14 jobs × 6 machines must be refused")
	}
}

func TestDeepChainIsCheap(t *testing.T) {
	// A chain has width 1: eligible sets stay tiny, so a long chain is
	// fine despite 2^n states... the closed sets of a chain are only n+1.
	n := 18
	g := dag.New(n)
	q := make([][]float64, 2)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = 0.5
		}
	}
	for j := 0; j+1 < n; j++ {
		g.MustEdge(j, j+1)
	}
	ins := mustNew(t, 2, n, q, g)
	got, err := Optimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) / (1 - 0.25)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("got %g, want %g", got, want)
	}
}
