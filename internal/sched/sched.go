// Package sched defines the schedule artifacts the algorithms produce:
// integral machine→job assignments (the rounded LP solutions of Lemmas 2
// and 6) and finite oblivious schedules (Section 2), plus the accounting —
// load, length, log mass — the analyses are stated in.
package sched

import (
	"fmt"

	"repro/internal/model"
)

// Assignment is an integral assignment x[i][j]: machine i runs job j for
// X[i][j] unit steps. It is the combinatorial object produced by rounding
// (LP1)/(LP2); it becomes a schedule via Serialize.
type Assignment struct {
	M, N int
	X    [][]int64
}

// NewAssignment returns an all-zero assignment. The rows share one flat
// backing array (three allocations total instead of m+2), which matters
// because every cache-miss rounding in a Monte Carlo run builds one.
func NewAssignment(m, n int) *Assignment {
	flat := make([]int64, m*n)
	x := make([][]int64, m)
	for i := range x {
		x[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return &Assignment{M: m, N: n, X: x}
}

// Load returns machine i's load Σ_j x_ij.
func (a *Assignment) Load(i int) int64 {
	var s int64
	for _, v := range a.X[i] {
		s += v
	}
	return s
}

// MaxLoad returns the maximum machine load, which is the length of the
// serialized oblivious schedule.
func (a *Assignment) MaxLoad() int64 {
	var mx int64
	for i := 0; i < a.M; i++ {
		if l := a.Load(i); l > mx {
			mx = l
		}
	}
	return mx
}

// Mass returns job j's log mass Σ_i ℓ_ij·x_ij under the given log failures.
func (a *Assignment) Mass(j int, ell [][]float64) float64 {
	s := 0.0
	for i := 0; i < a.M; i++ {
		if a.X[i][j] > 0 {
			s += ell[i][j] * float64(a.X[i][j])
		}
	}
	return s
}

// JobLength returns d_j = max_i x_ij, the paper's length of job j's
// assignment (Section 4).
func (a *Assignment) JobLength(j int) int64 {
	var mx int64
	for i := 0; i < a.M; i++ {
		if a.X[i][j] > mx {
			mx = a.X[i][j]
		}
	}
	return mx
}

// Validate checks internal consistency against an instance.
func (a *Assignment) Validate(ins *model.Instance) error {
	if a.M != ins.M || a.N != ins.N {
		return fmt.Errorf("sched: assignment is %dx%d, instance is %dx%d", a.M, a.N, ins.M, ins.N)
	}
	for i := range a.X {
		for j, v := range a.X[i] {
			if v < 0 {
				return fmt.Errorf("sched: negative assignment x[%d][%d] = %d", i, j, v)
			}
		}
	}
	return nil
}

// Run is a contiguous stretch of steps one machine spends on one job.
type Run struct {
	Job   int
	Steps int64
}

// Oblivious is a finite oblivious schedule (Section 2): for each machine, a
// fixed sequence of runs executed regardless of which jobs have completed
// (machines assigned to completed jobs simply idle). Length is the number
// of timesteps; machines whose runs end earlier idle until Length. An
// Oblivious is immutable once built and safe to share across goroutines;
// Serialize precomputes the job set so Jobs is allocation-free on the
// simulator's repeated-pass hot path.
type Oblivious struct {
	M      int
	Runs   [][]Run
	Length int64

	jobs []int // job set in first-appearance order; nil if built by hand
}

// Serialize turns an assignment into an oblivious schedule: machine i runs
// its assigned jobs back to back in ascending job order (the order is
// immaterial to the guarantees; Section 3 says "in arbitrary order"). All
// runs share one flat backing array, so serialization costs a constant
// number of allocations regardless of assignment density.
func (a *Assignment) Serialize() *Oblivious {
	o := &Oblivious{M: a.M, Runs: make([][]Run, a.M)}
	total := 0
	for i := 0; i < a.M; i++ {
		for j := 0; j < a.N; j++ {
			if a.X[i][j] > 0 {
				total++
			}
		}
	}
	flat := make([]Run, 0, total)
	seen := make([]bool, a.N)
	o.jobs = make([]int, 0, a.N)
	for i := 0; i < a.M; i++ {
		var t int64
		start := len(flat)
		for j := 0; j < a.N; j++ {
			if a.X[i][j] > 0 {
				flat = append(flat, Run{Job: j, Steps: a.X[i][j]})
				t += a.X[i][j]
				if !seen[j] {
					seen[j] = true
					o.jobs = append(o.jobs, j)
				}
			}
		}
		o.Runs[i] = flat[start:len(flat):len(flat)]
		if t > o.Length {
			o.Length = t
		}
	}
	return o
}

// Jobs returns the jobs that appear in the schedule, in first-appearance
// order. For serialized schedules the list is precomputed and shared —
// callers must not mutate it.
func (o *Oblivious) Jobs() []int {
	if o.jobs != nil {
		return o.jobs
	}
	seen := make(map[int]bool)
	var jobs []int
	for _, runs := range o.Runs {
		for _, r := range runs {
			if !seen[r.Job] {
				seen[r.Job] = true
				jobs = append(jobs, r.Job)
			}
		}
	}
	return jobs
}

// MassPerPass returns each scheduled job's log mass from one full pass of
// the schedule.
func (o *Oblivious) MassPerPass(ell [][]float64) map[int]float64 {
	mass := make(map[int]float64)
	for i, runs := range o.Runs {
		for _, r := range runs {
			mass[r.Job] += ell[i][r.Job] * float64(r.Steps)
		}
	}
	return mass
}

// Validate checks structural sanity: nonnegative runs, job ids in range,
// machine timelines within Length.
func (o *Oblivious) Validate(n int) error {
	for i, runs := range o.Runs {
		var t int64
		for _, r := range runs {
			if r.Job < 0 || r.Job >= n {
				return fmt.Errorf("sched: machine %d schedules job %d (have %d jobs)", i, r.Job, n)
			}
			if r.Steps <= 0 {
				return fmt.Errorf("sched: machine %d has run of %d steps on job %d", i, r.Steps, r.Job)
			}
			t += r.Steps
		}
		if t > o.Length {
			return fmt.Errorf("sched: machine %d timeline %d exceeds length %d", i, t, o.Length)
		}
	}
	return nil
}

// StepAssignments expands the schedule into per-step machine→job vectors
// (assign[t][i] = job or -1). Quadratic in Length·M; intended for tests and
// the coin-flip reference simulator only.
func (o *Oblivious) StepAssignments() [][]int {
	out := make([][]int, o.Length)
	for t := range out {
		row := make([]int, o.M)
		for i := range row {
			row[i] = -1
		}
		out[t] = row
	}
	for i, runs := range o.Runs {
		var t int64
		for _, r := range runs {
			for s := int64(0); s < r.Steps; s++ {
				out[t+s][i] = r.Job
			}
			t += r.Steps
		}
	}
	return out
}
