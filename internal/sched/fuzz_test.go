package sched

import (
	"encoding/json"
	"testing"

	"repro/internal/model"
)

// FuzzFingerprint fuzzes the fingerprint through the wire format: any
// bytes that decode to a valid instance must fingerprint identically after
// an encode→decode round trip (the content-addressing contract the
// service's cache correctness rests on), must never produce the zero
// fingerprint, and — when the decoded precedence graph exists but has no
// edges — must stay bit-equal to the nil-graph form of the same problem.
// The committed corpus under testdata/fuzz is generated from
// internal/scenario (go run ./internal/scenario/gencorpus).
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte(`{"m":1,"n":1,"q":[[0.5]]}`))
	f.Add([]byte(`{"m":2,"n":2,"q":[[0,1],[1,0.25]],"edges":[[0,1]]}`))
	f.Add([]byte(`{"m":1,"n":2,"q":[[0.9,0.1]],"edges":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ins model.Instance
		if err := json.Unmarshal(data, &ins); err != nil {
			return // not a valid instance; decode rejection is its own target
		}
		fp := FingerprintInstance(&ins)
		if fp.IsZero() {
			t.Fatalf("valid instance hashed to the zero fingerprint: %s", data)
		}
		out, err := json.Marshal(&ins)
		if err != nil {
			t.Fatalf("instance decoded from %q does not re-encode: %v", data, err)
		}
		var back model.Instance
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoding is not decodable: %v (encoded %s)", err, out)
		}
		if fp2 := FingerprintInstance(&back); fp2 != fp {
			t.Fatalf("fingerprint changed across a round trip: %v vs %v (input %s)", fp, fp2, data)
		}
		if ins.Prec != nil && ins.Prec.Edges() == 0 {
			bare := ins
			bare.Prec = nil
			if fp3 := FingerprintInstance(&bare); fp3 != fp {
				t.Fatalf("zero-edge graph fingerprints differently from nil graph: %v vs %v", fp, fp3)
			}
		}
	})
}
