package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
)

// Fingerprint is a canonical 128-bit content hash of an instance: a stable
// identity for (m, n, q, prec) that survives serialization round-trips.
// It is what makes cross-request caching content-addressed — two clients
// POSTing byte-for-byte different JSON that decodes to the same instance
// coalesce onto one cache entry — where the in-process LP caches key on
// the *model.Instance pointer and so only deduplicate within one decoded
// instance's lifetime.
//
// The hash is not cryptographic: it defends against accidental collisions
// (2⁻¹²⁸ random, verified empirically by the distinctness tests), not
// against adversarial instance construction.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether f is the zero fingerprint (no real instance
// hashes to it in practice; the zero value means "not computed").
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// fpVersion is mixed in first so any future change to the hashed byte
// layout changes every fingerprint instead of silently aliasing old ones.
const fpVersion = 0x5355_5546_5031 // "SUUFP1"

// fpEdgeMarker separates the q matrix from the edge list in the absorbed
// stream, so an instance with edges can never alias an edge-free instance
// whose q bits happen to continue the same way.
const fpEdgeMarker = 0xed6e_5e70_a1a7_0001

// fpState is a pair of independently-mixed 64-bit absorb streams; the two
// lanes use different multiplicative constants and injections so a word
// that collides one lane leaves the other distinct.
type fpState struct {
	a, b uint64
}

func (s *fpState) word(w uint64) {
	s.a = fpMix((s.a ^ w) * 0x9e3779b97f4a7c15)
	s.b = fpMix((s.b + (w<<23 | w>>41)) * 0xc2b2ae3d27d4eb4f)
}

// fpMix is the SplitMix64 finalizer.
func fpMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FingerprintInstance computes the canonical fingerprint of ins. The hash
// covers exactly the instance content: m, n, every q_ij (IEEE-754 bits, in
// row-major order), and the precedence edge set in sorted order — so the
// result is independent of edge insertion order and of any serialization
// detail, and two instances compare equal iff they describe the same SUU
// problem (up to q bit-equality; JSON round-trips floats exactly).
func FingerprintInstance(ins *model.Instance) Fingerprint {
	st := fpState{a: fpVersion, b: ^uint64(fpVersion)}
	st.word(uint64(ins.M))
	st.word(uint64(ins.N))
	for i := range ins.Q {
		for _, q := range ins.Q[i] {
			st.word(math.Float64bits(q))
		}
	}
	// A nil Prec and a non-nil zero-edge Prec describe the same problem
	// (both classify independent), so the edge section is hashed only
	// when edges exist — otherwise the two forms would never share a
	// cache entry.
	if ins.Prec != nil && ins.Prec.Edges() > 0 {
		edges := make([][2]int, 0, ins.Prec.Edges())
		for u := 0; u < ins.Prec.N(); u++ {
			for _, v := range ins.Prec.Succs(u) {
				edges = append(edges, [2]int{u, v})
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		st.word(fpEdgeMarker)
		for _, e := range edges {
			st.word(uint64(uint32(e[0]))<<32 | uint64(uint32(e[1])))
		}
	}
	return Fingerprint{
		Hi: fpMix(st.a ^ (st.b<<32 | st.b>>32)),
		Lo: fpMix((st.b ^ st.a) + 0x9e3779b97f4a7c15),
	}
}
