package sched

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/model"
)

func mustInstance(t *testing.T, m, n int, q [][]float64, prec *dag.DAG) *model.Instance {
	t.Helper()
	ins, err := model.New(m, n, q, prec)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func randQ(rng *rand.Rand, m, n int) [][]float64 {
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = 0.05 + 0.9*rng.Float64()
		}
	}
	return q
}

func TestFingerprintDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := randQ(rng, 4, 6)
	prec := dag.New(6)
	for _, e := range [][2]int{{0, 2}, {1, 2}, {2, 5}, {3, 4}} {
		if err := prec.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	a := mustInstance(t, 4, 6, q, prec)
	// Same content built independently (fresh slices, fresh DAG with edges
	// inserted in a different order) must fingerprint identically.
	q2 := randQ(rand.New(rand.NewSource(1)), 4, 6)
	prec2 := dag.New(6)
	for _, e := range [][2]int{{3, 4}, {2, 5}, {1, 2}, {0, 2}} {
		if err := prec2.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	b := mustInstance(t, 4, 6, q2, prec2)
	if FingerprintInstance(a) != FingerprintInstance(b) {
		t.Fatal("same content, different fingerprints (edge order should not matter)")
	}
	if FingerprintInstance(a) != FingerprintInstance(a) {
		t.Fatal("fingerprint not deterministic")
	}
	if FingerprintInstance(a).IsZero() {
		t.Fatal("fingerprint is zero")
	}

	// nil Prec and a non-nil zero-edge Prec describe the same (independent)
	// problem and must share a fingerprint.
	q3 := randQ(rand.New(rand.NewSource(9)), 3, 5)
	noPrec := mustInstance(t, 3, 5, q3, nil)
	emptyPrec := mustInstance(t, 3, 5, q3, dag.New(5))
	if FingerprintInstance(noPrec) != FingerprintInstance(emptyPrec) {
		t.Fatal("nil Prec and empty Prec fingerprint differently")
	}
}

func TestFingerprintSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prec := dag.New(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 6}} {
		if err := prec.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, ins := range []*model.Instance{
		mustInstance(t, 3, 8, randQ(rng, 3, 8), nil),
		mustInstance(t, 5, 8, randQ(rng, 5, 8), prec),
	} {
		want := FingerprintInstance(ins)
		for round := 0; round < 3; round++ {
			data, err := json.Marshal(ins)
			if err != nil {
				t.Fatal(err)
			}
			var back model.Instance
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if got := FingerprintInstance(&back); got != want {
				t.Fatalf("round %d: fingerprint changed across JSON round-trip: %v vs %v", round, got, want)
			}
			ins = &back
		}
	}
}

// TestFingerprintCollisionResistance perturbs an instance in every way a
// request could differ — one q bit, shape, transposed shape, edge set —
// and checks each perturbation lands on a distinct fingerprint, then
// hashes a large random population and requires all-distinct.
func TestFingerprintCollisionResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 6, 9
	q := randQ(rng, m, n)
	base := mustInstance(t, m, n, q, nil)
	seen := map[Fingerprint]string{FingerprintInstance(base): "base"}
	record := func(name string, ins *model.Instance) {
		fp := FingerprintInstance(ins)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %q vs %q (%v)", name, prev, fp)
		}
		seen[fp] = name
	}

	// One-ULP change in one entry.
	q2 := randQ(rand.New(rand.NewSource(3)), m, n)
	q2[3][4] = math.Nextafter(q2[3][4], 1)
	record("one-ulp", mustInstance(t, m, n, q2, nil))

	// Two entries swapped (same multiset of values).
	q3 := randQ(rand.New(rand.NewSource(3)), m, n)
	q3[0][0], q3[0][1] = q3[0][1], q3[0][0]
	record("swapped-pair", mustInstance(t, m, n, q3, nil))

	// Same flat values, transposed shape.
	flat := make([]float64, 0, m*n)
	for i := range q {
		flat = append(flat, q[i]...)
	}
	qt := make([][]float64, n)
	for i := range qt {
		qt[i] = flat[i*m : (i+1)*m]
	}
	record("transposed", mustInstance(t, n, m, qt, nil))

	// Same q, one edge added; then a different edge with the same count.
	p1 := dag.New(n)
	if err := p1.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	record("edge-1-2", mustInstance(t, m, n, q, p1))
	p2 := dag.New(n)
	if err := p2.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	record("edge-1-3", mustInstance(t, m, n, q, p2))

	// Random population: 2000 instances over varied shapes, all distinct.
	for i := 0; i < 2000; i++ {
		mm := 1 + rng.Intn(8)
		nn := 1 + rng.Intn(12)
		record("", mustInstance(t, mm, nn, randQ(rng, mm, nn), nil))
	}
	if len(seen) != 2006 {
		t.Fatalf("population size %d, want 2006", len(seen))
	}
}

func TestFingerprintString(t *testing.T) {
	fp := Fingerprint{Hi: 0xdead, Lo: 0xbeef}
	if got := fp.String(); got != "000000000000dead000000000000beef" {
		t.Fatalf("String() = %q", got)
	}
	if !(Fingerprint{}).IsZero() {
		t.Fatal("zero value not IsZero")
	}
}
