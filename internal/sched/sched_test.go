package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestAssignmentAccounting(t *testing.T) {
	a := NewAssignment(2, 3)
	a.X[0][0] = 2
	a.X[0][2] = 1
	a.X[1][0] = 1
	a.X[1][1] = 4
	if a.Load(0) != 3 || a.Load(1) != 5 {
		t.Fatalf("loads %d %d", a.Load(0), a.Load(1))
	}
	if a.MaxLoad() != 5 {
		t.Fatalf("maxload %d", a.MaxLoad())
	}
	if a.JobLength(0) != 2 || a.JobLength(1) != 4 || a.JobLength(2) != 1 {
		t.Fatal("job lengths wrong")
	}
	ell := [][]float64{{1, 2, 3}, {0.5, 1, 2}}
	// Mass(0) = 1*2 + 0.5*1 = 2.5
	if m := a.Mass(0, ell); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("mass %g", m)
	}
}

func TestAssignmentValidate(t *testing.T) {
	ins, err := model.New(2, 2, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssignment(2, 2)
	if err := a.Validate(ins); err != nil {
		t.Fatal(err)
	}
	a.X[0][0] = -1
	if err := a.Validate(ins); err == nil {
		t.Fatal("negative entry must fail validation")
	}
	b := NewAssignment(1, 2)
	if err := b.Validate(ins); err == nil {
		t.Fatal("dimension mismatch must fail validation")
	}
}

func TestSerializeStructure(t *testing.T) {
	a := NewAssignment(2, 3)
	a.X[0][1] = 2
	a.X[0][0] = 1
	a.X[1][2] = 5
	o := a.Serialize()
	if o.Length != 5 {
		t.Fatalf("length %d, want 5", o.Length)
	}
	if err := o.Validate(3); err != nil {
		t.Fatal(err)
	}
	// Machine 0 runs job 0 then job 1 (ascending job order).
	if len(o.Runs[0]) != 2 || o.Runs[0][0].Job != 0 || o.Runs[0][1].Job != 1 {
		t.Fatalf("machine 0 runs: %+v", o.Runs[0])
	}
	jobs := o.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs %v", jobs)
	}
}

func TestMassPerPass(t *testing.T) {
	a := NewAssignment(1, 2)
	a.X[0][0] = 3
	ell := [][]float64{{2, 1}}
	mass := a.Serialize().MassPerPass(ell)
	if math.Abs(mass[0]-6) > 1e-12 || mass[1] != 0 {
		t.Fatalf("mass %v", mass)
	}
}

func TestObliviousValidateErrors(t *testing.T) {
	o := &Oblivious{M: 1, Runs: [][]Run{{{Job: 5, Steps: 1}}}, Length: 1}
	if err := o.Validate(3); err == nil {
		t.Fatal("job out of range must fail")
	}
	o = &Oblivious{M: 1, Runs: [][]Run{{{Job: 0, Steps: 0}}}, Length: 1}
	if err := o.Validate(3); err == nil {
		t.Fatal("zero-step run must fail")
	}
	o = &Oblivious{M: 1, Runs: [][]Run{{{Job: 0, Steps: 5}}}, Length: 1}
	if err := o.Validate(3); err == nil {
		t.Fatal("timeline exceeding length must fail")
	}
}

// TestStepAssignmentsRoundTrip: expanding a serialized assignment into steps
// must recover exactly x_ij machine-steps per pair.
func TestStepAssignmentsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(4), 1+rng.Intn(5)
		a := NewAssignment(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.X[i][j] = int64(rng.Intn(4))
			}
		}
		o := a.Serialize()
		if int64(len(o.StepAssignments())) != o.Length {
			return false
		}
		count := NewAssignment(m, n)
		for _, assign := range o.StepAssignments() {
			for i, j := range assign {
				if j >= 0 {
					count.X[i][j]++
				}
			}
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if count.X[i][j] != a.X[i][j] {
					t.Logf("seed %d: x[%d][%d] %d != %d", seed, i, j, count.X[i][j], a.X[i][j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
