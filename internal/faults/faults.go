// Package faults injects failures into the planning service on purpose:
// request-level latency, errors, and panics via an http.Handler
// middleware, and compute-level stalls, errors, and panics via a hook the
// planner runs at its solve checkpoints. Every decision comes from one
// seeded deterministic stream, so a chaos run is reproducible — the same
// seed and the same arrival order fail the same requests.
//
// Injected failures are marked in-band, and only in-band: middleware 503s
// carry the X-Suu-Injected header, and compute errors are typed
// (InjectedError) so the serving layer can mirror the same header onto the
// 500 it writes. A load harness must classify on that header alone — body
// text is not a marker, and an organic failure whose message happens to
// contain the word "injected" counts as organic. Injected panics are
// indistinguishable from real ones by design — that is the point of
// injecting them: middleware panics kill the connection (the client sees a
// retryable transport error), compute panics exercise the planner's panic
// isolation and surface as unmarked 500s.
package faults

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Header marks an injected failure response.
const Header = "X-Suu-Injected"

// InjectedError is the typed error injected compute failures return. It
// travels the planner's error path like any compute error, and the HTTP
// layer recognizes it by its InjectedFault method (a marker interface, so
// the serving path never imports the chaos tooling) and mirrors Header
// onto the 5xx it writes.
type InjectedError struct{ Cause string }

func (e *InjectedError) Error() string { return "injected fault: " + e.Cause }

// InjectedFault marks the error as deliberately injected.
func (e *InjectedError) InjectedFault() bool { return true }

// Config sets per-decision probabilities (0..1) and magnitudes. The zero
// value injects nothing.
type Config struct {
	// Seed makes the fault stream deterministic; 0 means seed 1.
	Seed int64

	// HTTP middleware faults, applied per request in this order: latency,
	// then error, then panic.
	LatencyP   float64       // probability of injected latency
	Latency    time.Duration // injected latency magnitude (uniform 0.5×..1.5×)
	ErrorP     float64       // probability of an injected 503
	PanicP     float64       // probability of an injected handler panic
	HTTPMethod string        // if set, only requests with this method are faulted (POST keeps probes clean)
	// HTTPPathPrefix, if set, faults only requests under this path — the
	// peer-fault mode: scope an injector to /v1/store/ and only the
	// replication traffic suffers while client traffic stays clean.
	HTTPPathPrefix string

	// Compute-hook faults, applied per planner checkpoint.
	StallP       float64       // probability of an injected slow-solve stall
	Stall        time.Duration // stall magnitude (uniform 0.5×..1.5×)
	ComputeErrP  float64       // probability of an injected compute error
	ComputePanic float64       // probability of an injected compute panic
}

// Injector is a seeded fault source. All methods are safe for concurrent
// use; the stream is a single SplitMix64 behind a mutex, so concurrency
// changes interleaving but never the marginal rates.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	state uint64

	latencies     atomic.Uint64
	httpErrors    atomic.Uint64
	httpPanics    atomic.Uint64
	stalls        atomic.Uint64
	computeErrors atomic.Uint64
	computePanics atomic.Uint64
}

// Snapshot is the injector's ledger: what it actually did, for reconciling
// a chaos run's client-side error counts.
type Snapshot struct {
	Latencies     uint64 `json:"latencies"`
	HTTPErrors    uint64 `json:"http_errors"`
	HTTPPanics    uint64 `json:"http_panics"`
	Stalls        uint64 `json:"stalls"`
	ComputeErrors uint64 `json:"compute_errors"`
	ComputePanics uint64 `json:"compute_panics"`
}

// New builds an injector. A nil return means cfg injects nothing — callers
// can wire it unconditionally and pay nothing when chaos is off.
func New(cfg Config) *Injector {
	if cfg.LatencyP <= 0 && cfg.ErrorP <= 0 && cfg.PanicP <= 0 &&
		cfg.StallP <= 0 && cfg.ComputeErrP <= 0 && cfg.ComputePanic <= 0 {
		return nil
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 1
	}
	return &Injector{cfg: cfg, state: seed}
}

// next is SplitMix64: tiny, seedable, and plenty for Bernoulli draws.
func (in *Injector) next() uint64 {
	in.mu.Lock()
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	in.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws a Bernoulli(p).
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(in.next()>>11)/(1<<53) < p
}

// jitter returns a duration uniform in [0.5×d, 1.5×d].
func (in *Injector) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	u := float64(in.next()>>11) / (1 << 53)
	return time.Duration((0.5 + u) * float64(d))
}

// Wrap is the chaos middleware: latency, then error, then panic, each by
// its own draw. A nil injector returns next unchanged.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.cfg.HTTPMethod != "" && r.Method != in.cfg.HTTPMethod {
			next.ServeHTTP(w, r)
			return
		}
		if in.cfg.HTTPPathPrefix != "" && !strings.HasPrefix(r.URL.Path, in.cfg.HTTPPathPrefix) {
			next.ServeHTTP(w, r)
			return
		}
		if in.roll(in.cfg.LatencyP) {
			in.latencies.Add(1)
			time.Sleep(in.jitter(in.cfg.Latency))
		}
		if in.roll(in.cfg.ErrorP) {
			in.httpErrors.Add(1)
			w.Header().Set(Header, "error")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error": "injected fault: unavailable"}`)
			return
		}
		if in.roll(in.cfg.PanicP) {
			in.httpPanics.Add(1)
			// net/http recovers handler panics per connection but the
			// response dies with it: the client sees a closed/reset
			// connection, the canonical retryable transport failure.
			panic("injected fault: handler panic")
		}
		next.ServeHTTP(w, r)
	})
}

// ComputeHook returns the planner checkpoint hook: stall, then error, then
// panic. A nil injector returns nil so the planner pays no call.
func (in *Injector) ComputeHook() func() error {
	if in == nil {
		return nil
	}
	return func() error {
		if in.roll(in.cfg.StallP) {
			in.stalls.Add(1)
			time.Sleep(in.jitter(in.cfg.Stall))
		}
		if in.roll(in.cfg.ComputeErrP) {
			in.computeErrors.Add(1)
			return &InjectedError{Cause: "compute error"}
		}
		if in.roll(in.cfg.ComputePanic) {
			in.computePanics.Add(1)
			panic("injected fault: compute panic")
		}
		return nil
	}
}

// Snapshot reads the ledger. Safe on a nil injector (all zeros).
func (in *Injector) Snapshot() Snapshot {
	if in == nil {
		return Snapshot{}
	}
	return Snapshot{
		Latencies:     in.latencies.Load(),
		HTTPErrors:    in.httpErrors.Load(),
		HTTPPanics:    in.httpPanics.Load(),
		Stalls:        in.stalls.Load(),
		ComputeErrors: in.computeErrors.Load(),
		ComputePanics: in.computePanics.Load(),
	}
}
