package faults

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DiskConfig sets the disk-fault plan. The zero value injects nothing.
// Write faults model a crash: once the torn-write cut fires, every later
// write fails too — a process does not keep appending after the power
// goes out. Read faults model media rot: bits flip and tails vanish
// underneath an otherwise healthy process.
type DiskConfig struct {
	// Seed makes the read-fault stream deterministic; 0 means seed 1.
	Seed int64

	// TornWrite cuts the write stream at TornWriteAtByte, a global byte
	// offset across all faulted writes: bytes before the cut reach disk,
	// bytes at or after it are lost, and every subsequent write fails.
	// Sweeping the cut across every offset is the crash-recovery
	// property test.
	TornWrite       bool
	TornWriteAtByte int64

	// ENOSPC fails any write that would push total written bytes past
	// ENOSPCAfterBytes with a disk-full error (nothing partial: the
	// graceful-degradation case, not the corruption case).
	ENOSPC           bool
	ENOSPCAfterBytes int64

	// BitFlipP flips one uniformly random bit per read at this
	// probability — the checksum quarantine's natural predator.
	BitFlipP float64
	// ShortReadP zeroes a uniformly random tail of the read buffer at
	// this probability.
	ShortReadP float64
}

// DiskInjector produces the store's DiskConfig.WriteFault / ReadFault
// hooks from one seeded stream. Safe for concurrent use.
type DiskInjector struct {
	cfg DiskConfig

	mu      sync.Mutex
	state   uint64
	written int64 // global bytes accepted so far
	crashed bool  // torn cut fired: all writes fail from here on

	tornWrites atomic.Uint64
	enospcs    atomic.Uint64
	bitFlips   atomic.Uint64
	shortReads atomic.Uint64
}

// DiskSnapshot is the disk injector's ledger.
type DiskSnapshot struct {
	TornWrites uint64 `json:"torn_writes"`
	ENOSPCs    uint64 `json:"enospcs"`
	BitFlips   uint64 `json:"bit_flips"`
	ShortReads uint64 `json:"short_reads"`
}

// NewDiskInjector builds a disk injector; nil when cfg injects nothing.
func NewDiskInjector(cfg DiskConfig) *DiskInjector {
	if !cfg.TornWrite && !cfg.ENOSPC && cfg.BitFlipP <= 0 && cfg.ShortReadP <= 0 {
		return nil
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 1
	}
	return &DiskInjector{cfg: cfg, state: seed}
}

func (di *DiskInjector) next() uint64 {
	di.state += 0x9e3779b97f4a7c15
	z := di.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (di *DiskInjector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(di.next()>>11)/(1<<53) < p
}

// WriteFault returns the store hook deciding each record append's fate.
// Nil on a nil injector or when no write faults are configured, so the
// store pays nothing.
func (di *DiskInjector) WriteFault() func(rec []byte) (int, error) {
	if di == nil || (!di.cfg.TornWrite && !di.cfg.ENOSPC) {
		return nil
	}
	return func(rec []byte) (int, error) {
		di.mu.Lock()
		defer di.mu.Unlock()
		if di.crashed {
			return 0, fmt.Errorf("injected fault: disk gone after torn write")
		}
		n := int64(len(rec))
		if di.cfg.ENOSPC && di.written+n > di.cfg.ENOSPCAfterBytes {
			di.enospcs.Add(1)
			return 0, fmt.Errorf("injected fault: no space left on device")
		}
		if di.cfg.TornWrite && di.written+n > di.cfg.TornWriteAtByte {
			keep := di.cfg.TornWriteAtByte - di.written
			if keep < 0 {
				keep = 0
			}
			di.written += keep
			di.crashed = true
			di.tornWrites.Add(1)
			return int(keep), fmt.Errorf("injected fault: torn write at byte %d", di.cfg.TornWriteAtByte)
		}
		di.written += n
		return len(rec), nil
	}
}

// ReadFault returns the store hook corrupting read buffers in place: one
// random bit flip and/or a zeroed random tail, each by its own draw. Nil
// when no read faults are configured.
func (di *DiskInjector) ReadFault() func(b []byte) {
	if di == nil || (di.cfg.BitFlipP <= 0 && di.cfg.ShortReadP <= 0) {
		return nil
	}
	return func(b []byte) {
		if len(b) == 0 {
			return
		}
		di.mu.Lock()
		flip := di.roll(di.cfg.BitFlipP)
		var flipAt uint64
		if flip {
			flipAt = di.next()
		}
		short := di.roll(di.cfg.ShortReadP)
		var shortAt uint64
		if short {
			shortAt = di.next()
		}
		di.mu.Unlock()
		if flip {
			bit := flipAt % uint64(len(b)*8)
			b[bit/8] ^= 1 << (bit % 8)
			di.bitFlips.Add(1)
		}
		if short {
			from := int(shortAt % uint64(len(b)))
			for i := from; i < len(b); i++ {
				b[i] = 0
			}
			di.shortReads.Add(1)
		}
	}
}

// Snapshot reads the ledger. Safe on a nil injector (all zeros).
func (di *DiskInjector) Snapshot() DiskSnapshot {
	if di == nil {
		return DiskSnapshot{}
	}
	return DiskSnapshot{
		TornWrites: di.tornWrites.Load(),
		ENOSPCs:    di.enospcs.Load(),
		BitFlips:   di.bitFlips.Load(),
		ShortReads: di.shortReads.Load(),
	}
}
