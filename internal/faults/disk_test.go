package faults

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/store"
)

func TestDiskInjectorNilWhenIdle(t *testing.T) {
	if di := NewDiskInjector(DiskConfig{}); di != nil {
		t.Fatal("zero config should build no injector")
	}
	var di *DiskInjector
	if di.WriteFault() != nil || di.ReadFault() != nil {
		t.Fatal("nil injector must produce nil hooks")
	}
	if di.Snapshot() != (DiskSnapshot{}) {
		t.Fatal("nil snapshot")
	}
}

func TestDiskInjectorTornWriteCrashSemantics(t *testing.T) {
	di := NewDiskInjector(DiskConfig{TornWrite: true, TornWriteAtByte: 25})
	wf := di.WriteFault()
	// First write fits entirely under the cut.
	if n, err := wf(make([]byte, 10)); n != 10 || err != nil {
		t.Fatalf("write 1: %d %v", n, err)
	}
	// Second write straddles the cut: 15 of 20 bytes land, then the crash.
	n, err := wf(make([]byte, 20))
	if n != 15 || err == nil {
		t.Fatalf("write 2: %d %v", n, err)
	}
	// The disk is gone: every later write fails with nothing written.
	for i := 0; i < 3; i++ {
		if n, err := wf(make([]byte, 4)); n != 0 || err == nil {
			t.Fatalf("post-crash write: %d %v", n, err)
		}
	}
	if s := di.Snapshot(); s.TornWrites != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestDiskInjectorENOSPC(t *testing.T) {
	di := NewDiskInjector(DiskConfig{ENOSPC: true, ENOSPCAfterBytes: 30})
	wf := di.WriteFault()
	if n, err := wf(make([]byte, 30)); n != 30 || err != nil {
		t.Fatalf("under budget: %d %v", n, err)
	}
	n, err := wf(make([]byte, 1))
	if n != 0 || err == nil || !strings.Contains(err.Error(), "no space") {
		t.Fatalf("over budget: %d %v", n, err)
	}
	// ENOSPC is not a crash: a smaller write... still over, but the error
	// repeats rather than cascading into the torn-write failure mode.
	if _, err := wf(make([]byte, 1)); err == nil {
		t.Fatal("still full")
	}
	if s := di.Snapshot(); s.ENOSPCs != 2 || s.TornWrites != 0 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestDiskInjectorReadFaults(t *testing.T) {
	di := NewDiskInjector(DiskConfig{Seed: 7, BitFlipP: 1})
	rf := di.ReadFault()
	orig := bytes.Repeat([]byte{0xaa}, 64)
	b := append([]byte(nil), orig...)
	rf(b)
	diff := 0
	for i := range b {
		for bit := 0; bit < 8; bit++ {
			if (b[i]^orig[i])>>bit&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit flips: %d, want exactly 1", diff)
	}

	di2 := NewDiskInjector(DiskConfig{Seed: 7, ShortReadP: 1})
	rf2 := di2.ReadFault()
	b2 := append([]byte(nil), orig...)
	rf2(b2)
	cut := len(b2)
	for i, c := range b2 {
		if c == 0 {
			cut = i
			break
		}
	}
	for i := cut; i < len(b2); i++ {
		if b2[i] != 0 {
			t.Fatalf("short read left byte %d nonzero", i)
		}
	}
	if s := di2.Snapshot(); s.ShortReads != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

// TestDiskInjectorAgainstStore plugs the injector into a real disk store:
// the crash cuts the log mid-record and recovery still reopens to the
// committed prefix — the integration the property test sweeps in full.
func TestDiskInjectorAgainstStore(t *testing.T) {
	dir := t.TempDir()
	di := NewDiskInjector(DiskConfig{TornWrite: true, TornWriteAtByte: 150})
	d, err := store.Open(dir, store.DiskConfig{
		Fsync:      store.FsyncNever,
		WriteFault: di.WriteFault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	val := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 40) } // 64B framed
	var committed []int
	for i := 0; i < 6; i++ {
		if err := d.Put(ctx, store.Key{Hi: uint64(i + 1), Lo: 9}, val(i)); err == nil {
			committed = append(committed, i)
		}
	}
	d.Close()
	if len(committed) != 2 { // 150/64 = 2 whole records before the cut
		t.Fatalf("committed %v", committed)
	}
	if s := di.Snapshot(); s.TornWrites != 1 {
		t.Fatalf("snapshot %+v", s)
	}

	d2, err := store.Open(dir, store.DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, i := range committed {
		v, _, err := d2.Get(ctx, store.Key{Hi: uint64(i + 1), Lo: 9})
		if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("committed record %d: %v", i, err)
		}
	}
	if _, _, err := d2.Get(ctx, store.Key{Hi: 3, Lo: 9}); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("torn record: %v", err)
	}
	if st := d2.Stats(); st.CorruptDropped != 1 || st.Entries != 2 {
		t.Fatalf("recovery stats %+v", st)
	}
}
