package faults

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 42}) // a seed alone injects nothing
	if in != nil {
		t.Fatal("zero-rate config should build a nil injector")
	}
	// Every method is nil-safe: Wrap is identity, ComputeHook absent,
	// Snapshot zero — callers wire the injector unconditionally.
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusTeapot) })
	rec := httptest.NewRecorder()
	in.Wrap(next).ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/plan", nil))
	if rec.Code != http.StatusTeapot {
		t.Errorf("nil Wrap should be the identity, got status %d", rec.Code)
	}
	if in.ComputeHook() != nil {
		t.Error("nil injector should return a nil compute hook")
	}
	if in.Snapshot() != (Snapshot{}) {
		t.Errorf("nil Snapshot = %+v, want zero", in.Snapshot())
	}
}

// computeDecisions runs n hook calls and encodes each outcome.
func computeDecisions(in *Injector, n int) string {
	hook := in.ComputeHook()
	var b strings.Builder
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if recover() != nil {
					b.WriteByte('P')
				}
			}()
			if hook() != nil {
				b.WriteByte('E')
			} else {
				b.WriteByte('.')
			}
		}()
	}
	return b.String()
}

func TestSeededDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, ComputeErrP: 0.3, ComputePanic: 0.1}
	a := computeDecisions(New(cfg), 500)
	b := computeDecisions(New(cfg), 500)
	if a != b {
		t.Fatal("same seed and call order must yield the same fault sequence")
	}
	cfg.Seed = 8
	if c := computeDecisions(New(cfg), 500); c == a {
		t.Fatal("a different seed should yield a different fault sequence")
	}
	if !strings.Contains(a, "E") || !strings.Contains(a, "P") || !strings.Contains(a, ".") {
		t.Errorf("500 draws at 30%%/10%% should show every outcome, got %.40s...", a)
	}
}

func TestHTTPRatesRoughlyHonored(t *testing.T) {
	in := New(Config{Seed: 3, ErrorP: 0.2})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h := in.Wrap(next)
	const trials = 2000
	injected := 0
	for i := 0; i < trials; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/plan", nil))
		if rec.Code == http.StatusServiceUnavailable {
			injected++
		}
	}
	// Bernoulli(0.2) over 2000 draws: ±5 absolute percentage points is >5σ.
	if injected < trials*15/100 || injected > trials*25/100 {
		t.Errorf("injected %d/%d ≈ %.1f%%, want ≈20%%", injected, trials, 100*float64(injected)/trials)
	}
	if got := in.Snapshot().HTTPErrors; got != uint64(injected) {
		t.Errorf("ledger says %d injected, responses say %d", got, injected)
	}
}

func TestInjectedErrorIsMarked(t *testing.T) {
	in := New(Config{ErrorP: 1})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	rec := httptest.NewRecorder()
	in.Wrap(next).ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/plan", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want an injected 503", rec.Code)
	}
	if rec.Header().Get(Header) == "" {
		t.Errorf("injected response must carry %s", Header)
	}
	if !strings.Contains(rec.Body.String(), "injected") {
		t.Errorf("injected response body must say so, got %s", rec.Body.String())
	}
}

func TestMethodFilterSparesProbes(t *testing.T) {
	in := New(Config{ErrorP: 1, PanicP: 1, HTTPMethod: http.MethodPost})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	rec := httptest.NewRecorder()
	in.Wrap(next).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET should pass the POST-only injector untouched, got %d", rec.Code)
	}
	if s := in.Snapshot(); s.HTTPErrors != 0 || s.HTTPPanics != 0 {
		t.Errorf("filtered request must not be ledgered, got %+v", s)
	}
}

func TestPanicInjection(t *testing.T) {
	in := New(Config{PanicP: 1})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	defer func() {
		if recover() == nil {
			t.Error("PanicP=1 must panic the handler")
		}
		if got := in.Snapshot().HTTPPanics; got != 1 {
			t.Errorf("http_panics = %d, want 1", got)
		}
	}()
	in.Wrap(next).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/plan", nil))
}

func TestStallInjectsLatency(t *testing.T) {
	in := New(Config{StallP: 1, Stall: 20 * time.Millisecond})
	hook := in.ComputeHook()
	start := time.Now()
	if err := hook(); err != nil {
		t.Fatal(err)
	}
	// Jitter is uniform in [0.5×, 1.5×]: at least 10ms.
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("stall lasted %v, want ≥ 10ms", d)
	}
	if got := in.Snapshot().Stalls; got != 1 {
		t.Errorf("stalls = %d, want 1", got)
	}
}
