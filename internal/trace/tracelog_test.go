package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleRecord(i int) Record {
	rec := Record{
		ID:      ID{Hi: uint64(i) + 1, Lo: uint64(i) * 7},
		Start:   1700000000e9 + int64(i),
		Op:      "plan",
		Outcome: OutcomeOK,
		Source:  "computed",
		FPHi:    0xfeed, FPLo: uint64(i),
		TotalNS: int64(i+1) * 1000,
	}
	rec.Durs[StageDecode] = 100
	rec.Counts[StageDecode] = 1
	rec.Durs[StageSolve] = int64(i) * 50
	rec.Counts[StageSolve] = uint32(i%3) + 1
	if i%4 == 3 {
		rec.Outcome = OutcomeError
		rec.Source = ""
	}
	return rec
}

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	const n = 25
	for i := 0; i < n; i++ {
		rec := sampleRecord(i)
		lw.Append(&rec)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	st := lw.Stats()
	if st.Records != n || st.Errors != 0 || st.Bytes != uint64(buf.Len()) {
		t.Fatalf("writer stats %+v, buffer %d bytes", st, buf.Len())
	}
	recs, skipped, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil || skipped != 0 {
		t.Fatalf("ReadLog err=%v skipped=%d", err, skipped)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, got := range recs {
		want := sampleRecord(i)
		if got != want {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestLogTornTail(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	for i := 0; i < 5; i++ {
		rec := sampleRecord(i)
		lw.Append(&rec)
	}
	lw.Flush()
	whole := buf.Len()
	// Truncate mid-record: every cut point must still yield the intact
	// prefix with no error (crash-mid-write tolerance).
	for cut := whole - 1; cut > whole-40 && cut > 0; cut-- {
		recs, _, err := ReadLog(bytes.NewReader(buf.Bytes()[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(recs) != 4 {
			t.Fatalf("cut=%d: read %d records, want 4 intact", cut, len(recs))
		}
	}
}

func TestLogCorruptRecordSkipped(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	for i := 0; i < 3; i++ {
		rec := sampleRecord(i)
		lw.Append(&rec)
	}
	lw.Flush()
	raw := append([]byte(nil), buf.Bytes()...)
	// Flip one payload byte in the middle record (past its 8-byte header).
	recLen := len(raw) / 3
	raw[recLen+20] ^= 0xff
	recs, skipped, err := ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(recs) != 2 {
		t.Fatalf("skipped=%d records=%d, want 1 skipped and 2 intact", skipped, len(recs))
	}
}

func TestLogGarbageLengthStopsScan(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	rec := sampleRecord(0)
	lw.Append(&rec)
	lw.Flush()
	raw := append([]byte(nil), buf.Bytes()...)
	raw = append(raw, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4) // absurd length
	recs, skipped, err := ReadLog(bytes.NewReader(raw))
	if err != nil || len(recs) != 1 || skipped != 1 {
		t.Fatalf("recs=%d skipped=%d err=%v", len(recs), skipped, err)
	}
}

func TestOpenLogAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.log")
	for round := 0; round < 2; round++ {
		lw, err := OpenLog(path)
		if err != nil {
			t.Fatal(err)
		}
		rec := sampleRecord(round)
		lw.Append(&rec)
		if err := lw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, skipped, err := ReadLog(f)
	if err != nil || skipped != 0 || len(recs) != 2 {
		t.Fatalf("recs=%d skipped=%d err=%v", len(recs), skipped, err)
	}
}
