package trace

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

func captureLog(t *testing.T, level Level, fn func()) string {
	t.Helper()
	var buf bytes.Buffer
	SetOutput(&buf)
	SetLevel(level)
	t.Cleanup(func() {
		SetOutput(os.Stderr)
		SetLevel(LevelInfo)
	})
	fn()
	return buf.String()
}

func TestLogxFormat(t *testing.T) {
	out := captureLog(t, LevelInfo, func() {
		Info("serving", "addr", "127.0.0.1:8080", "workers", 8,
			"rate", 0.5, "chaos", false, "drain", 5*time.Second,
			"err", errors.New("boom boom"), "trace", "-")
	})
	line := strings.TrimSuffix(out, "\n")
	if strings.Contains(line, "\n") {
		t.Fatalf("one event must be one line: %q", out)
	}
	for _, want := range []string{
		"level=info", "msg=serving", "addr=127.0.0.1:8080", "workers=8",
		"rate=0.5", "chaos=false", "drain=5s", `err="boom boom"`, "trace=-", "ts=",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestLogxLevels(t *testing.T) {
	out := captureLog(t, LevelWarn, func() {
		Debug("d")
		Info("i")
		Warn("w")
		Error("e")
	})
	if strings.Contains(out, "msg=d") || strings.Contains(out, "msg=i") {
		t.Fatalf("suppressed levels leaked: %q", out)
	}
	if !strings.Contains(out, "msg=w") || !strings.Contains(out, "msg=e") {
		t.Fatalf("enabled levels missing: %q", out)
	}
}

func TestLogxQuoting(t *testing.T) {
	out := captureLog(t, LevelInfo, func() {
		Info("has spaces and = signs", "k", `va"l`)
	})
	if !strings.Contains(out, `msg="has spaces and = signs"`) {
		t.Fatalf("message not quoted: %q", out)
	}
	if !strings.Contains(out, `k="va\"l"`) {
		t.Fatalf("value not quoted: %q", out)
	}
}

func TestLevelFromString(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError,
	} {
		got, ok := LevelFromString(s)
		if !ok || got != want {
			t.Fatalf("LevelFromString(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := LevelFromString("loud"); ok {
		t.Fatal("accepted unknown level")
	}
}
