// Package trace is the observability spine of the serving stack: a
// zero-allocation-in-steady-state per-request trace context, a leveled
// key=value logger, a bounded in-memory recorder behind /debug/traces,
// and an append-only CRC-framed binary trace log.
//
// A request entering the HTTP layer calls Tracer.Begin, which hands out
// a pooled *Ctx carrying a 128-bit trace ID and fixed-capacity per-stage
// accumulators (durations and counts indexed by Stage — aggregated, not
// an unbounded span list, so a 256-item batch costs the same as a single
// request). The Ctx is threaded through admission, the flight table, the
// store tiers, the LP engine, and the frame encoder; every *Ctx method is
// nil-safe, so library callers that never traced pay a nil check and
// nothing else.
//
// Keeping a trace is a head-based sampling decision (Config.Sample)
// overridden for requests that matter: errors, degraded fallbacks, and
// the slowest-N are always kept when the recorder is enabled. A kept
// trace lands in the ring buffer (served by /debug/traces), in the
// binary trace log if one is attached, and — when sampled or forced —
// in the X-Suu-Trace response header, which clients parse to attribute
// their observed latency to server stages.
//
// Computations may outlive the request that started them (detached
// singleflight leaders): Ctx is reference-counted, stage recording is
// mutex-guarded, and the Ctx returns to the pool only when the last
// holder releases it.
package trace

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented segment of a request's journey.
// Stages are aggregates, not spans: a batch that decodes 64 instances
// records StageDecode with count 64 and the summed duration.
type Stage uint8

const (
	// StageDecode is request-body and instance decoding (including
	// decode-cache hits) in the HTTP handler.
	StageDecode Stage = iota
	// StageQueue is time spent waiting for a worker slot under
	// admission control.
	StageQueue
	// StageFlight is time a coalesced follower spent waiting on the
	// singleflight leader's computation.
	StageFlight
	// StageStoreMem is durable-store memory-tier read time (hits).
	StageStoreMem
	// StageStoreDisk is durable-store disk-tier read time (hits).
	StageStoreDisk
	// StageStorePeer is durable-store peer-fetch read time (hits).
	StageStorePeer
	// StageStoreMiss is time spent probing every store tier and
	// finding nothing.
	StageStoreMiss
	// StageSolve is the LP solve + rounding workspace call (or a
	// Monte Carlo simulation chunk for estimates).
	StageSolve
	// StageRound is rounded-assignment serialization into the
	// response shape.
	StageRound
	// StageEncode is canonical-frame JSON encoding (cold encodes
	// only; spliced cache hits never re-encode).
	StageEncode
	// StageDegrade is the LP-free greedy fallback computation under
	// brownout.
	StageDegrade

	// NumStages is the size of per-stage arrays.
	NumStages = int(StageDegrade) + 1
)

var stageNames = [NumStages]string{
	"decode", "queue", "flight",
	"store.mem", "store.disk", "store.peer", "store.miss",
	"solve", "round", "encode", "degrade",
}

// String returns the canonical stage name used in /metrics, the
// X-Suu-Trace header, /debug/traces, and the binary trace log.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "stage(" + strconv.Itoa(int(s)) + ")"
}

// StageNames returns the canonical names in stage-index order.
func StageNames() [NumStages]string { return stageNames }

// StageByName maps a canonical name back to its Stage.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Outcome and source labels shared by the header, the recorder, and the
// binary log. Sources mirror the batch envelope's source field.
const (
	OutcomeOK       = "ok"
	OutcomeError    = "error"
	OutcomeRejected = "rejected"
	OutcomeCanceled = "canceled"
)

// Wire headers.
const (
	// ResponseHeader carries the trace ID and compact stage summary
	// back to the client: "<32 hex id>;src=<source>;<stage>=<µs>;...".
	ResponseHeader = "X-Suu-Trace"
	// IDHeader propagates a trace ID on internal hops (peer store
	// fetches, replication fan-out) so a fleet drill can follow one
	// request across replicas.
	IDHeader = "X-Suu-Trace-Id"
)

// ID is a 128-bit trace identifier.
type ID struct{ Hi, Lo uint64 }

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

const hexDigits = "0123456789abcdef"

func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string {
	var buf [32]byte
	b := appendHex64(buf[:0], id.Hi)
	b = appendHex64(b, id.Lo)
	return string(b)
}

// ParseID parses the 32-hex-digit form produced by ID.String.
func ParseID(s string) (ID, bool) {
	if len(s) != 32 {
		return ID{}, false
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return ID{}, false
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return ID{}, false
	}
	return ID{Hi: hi, Lo: lo}, true
}

// splitmix64 is the same mixer the store and fault layers use; applied
// to a counter it yields uniform, unique-per-process trace IDs without
// touching a CSPRNG on the hot path.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Ctx is one request's trace: an ID plus per-stage aggregated timings.
// All methods are safe on a nil receiver (no-ops), and concurrent use
// is safe: stage recording may happen from a detached computation
// goroutine while the HTTP goroutine finishes the request.
type Ctx struct {
	id      ID
	start   time.Time
	sampled bool
	op      string

	mu      sync.Mutex
	durs    [NumStages]int64 // nanoseconds
	counts  [NumStages]uint32
	outcome string
	source  string
	peer    string
	fpHi    uint64
	fpLo    uint64

	refs atomic.Int32
	t    *Tracer
}

// ID returns the trace ID (zero on nil).
func (c *Ctx) ID() ID {
	if c == nil {
		return ID{}
	}
	return c.id
}

// IDString returns the 32-hex trace ID, or "-" on nil — safe to pass
// straight to a log call.
func (c *Ctx) IDString() string {
	if c == nil {
		return "-"
	}
	return c.id.String()
}

// Sampled reports whether this trace won the head-sampling roll.
func (c *Ctx) Sampled() bool { return c != nil && c.sampled }

// Op returns the operation label passed to Begin.
func (c *Ctx) Op() string {
	if c == nil {
		return ""
	}
	return c.op
}

// Start returns when the trace began.
func (c *Ctx) Start() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.start
}

// Add records d against stage s.
func (c *Ctx) Add(s Stage, d time.Duration) {
	if c == nil || int(s) >= NumStages {
		return
	}
	c.mu.Lock()
	c.durs[s] += int64(d)
	c.counts[s]++
	c.mu.Unlock()
}

// SetOutcome records the terminal outcome ("ok", "error", "rejected",
// "canceled"). The last writer wins.
func (c *Ctx) SetOutcome(o string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.outcome = o
	c.mu.Unlock()
}

// SetSource records how the payload was served (cached / computed /
// coalesced / degraded / batch).
func (c *Ctx) SetSource(src string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.source = src
	c.mu.Unlock()
}

// SetPeer records which replica served a peer store hit.
func (c *Ctx) SetPeer(p string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.peer = p
	c.mu.Unlock()
}

// SetFingerprint records the content-address of the instance.
func (c *Ctx) SetFingerprint(hi, lo uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.fpHi, c.fpLo = hi, lo
	c.mu.Unlock()
}

// Retain takes an additional reference; a detached computation that may
// outlive the request must Retain before spawning and Release when done.
func (c *Ctx) Retain() {
	if c != nil {
		c.refs.Add(1)
	}
}

// Release drops a reference; the Ctx returns to its pool at zero. The
// caller must not touch the Ctx after releasing its reference.
func (c *Ctx) Release() {
	if c == nil {
		return
	}
	if c.refs.Add(-1) == 0 {
		c.t.put(c)
	}
}

// forced reports whether this trace must be kept regardless of the
// sampling roll: errors and degraded fallbacks are always interesting.
func (c *Ctx) forced() bool {
	return (c.outcome != "" && c.outcome != OutcomeOK) || c.source == "degraded"
}

// ShouldHeader reports whether the response should carry X-Suu-Trace:
// sampled traces always, plus forced ones (errors, degraded).
func (c *Ctx) ShouldHeader() bool {
	if c == nil {
		return false
	}
	if c.sampled {
		return true
	}
	c.mu.Lock()
	f := c.forced()
	c.mu.Unlock()
	return f
}

// HeaderValue renders the compact stage summary:
//
//	<32 hex id>;src=<source>;total=<µs>;<stage>=<µs>;...
//
// Stage durations are integer microseconds; stages with zero count are
// omitted. Stages with count > 1 render as <stage>=<µs>x<count>.
func (c *Ctx) HeaderValue() string {
	if c == nil {
		return ""
	}
	var buf [256]byte
	b := appendHex64(buf[:0], c.id.Hi)
	b = appendHex64(b, c.id.Lo)
	c.mu.Lock()
	if c.source != "" {
		b = append(b, ";src="...)
		b = append(b, c.source...)
	}
	b = append(b, ";total="...)
	b = strconv.AppendInt(b, time.Since(c.start).Microseconds(), 10)
	for i := 0; i < NumStages; i++ {
		if c.counts[i] == 0 {
			continue
		}
		b = append(b, ';')
		b = append(b, stageNames[i]...)
		b = append(b, '=')
		b = strconv.AppendInt(b, c.durs[i]/1e3, 10)
		if c.counts[i] > 1 {
			b = append(b, 'x')
			b = strconv.AppendUint(b, uint64(c.counts[i]), 10)
		}
	}
	c.mu.Unlock()
	return string(b)
}

// Summary is the parsed form of an X-Suu-Trace header value.
type Summary struct {
	ID      string
	Source  string
	TotalUS int64
	// DurUS holds per-stage microseconds indexed by Stage.
	DurUS [NumStages]int64
	// Counts holds per-stage counts indexed by Stage.
	Counts [NumStages]uint32
}

// ParseHeader parses an X-Suu-Trace value produced by HeaderValue.
// Unknown fields are skipped, so the format can grow.
func ParseHeader(v string) (Summary, bool) {
	var s Summary
	if v == "" {
		return s, false
	}
	// First field is the bare trace ID.
	rest := v
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		s.ID, rest = rest[:i], rest[i+1:]
	} else {
		s.ID, rest = rest, ""
	}
	if len(s.ID) != 32 {
		return Summary{}, false
	}
	for rest != "" {
		var field string
		if i := strings.IndexByte(rest, ';'); i >= 0 {
			field, rest = rest[:i], rest[i+1:]
		} else {
			field, rest = rest, ""
		}
		eq := strings.IndexByte(field, '=')
		if eq < 0 {
			continue
		}
		key, val := field[:eq], field[eq+1:]
		switch key {
		case "src":
			s.Source = val
		case "total":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.TotalUS = n
			}
		default:
			st, ok := StageByName(key)
			if !ok {
				continue
			}
			count := uint32(1)
			if x := strings.IndexByte(val, 'x'); x >= 0 {
				if n, err := strconv.ParseUint(val[x+1:], 10, 32); err == nil {
					count = uint32(n)
				}
				val = val[:x]
			}
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.DurUS[st] = n
				s.Counts[st] = count
			}
		}
	}
	return s, true
}

// Config configures a Tracer.
type Config struct {
	// Sample is the head-based sampling probability in [0, 1]. Errors,
	// degraded responses, and slowest-N qualifiers are kept regardless.
	Sample float64
	// Ring is the /debug/traces ring-buffer capacity; 0 disables the
	// recorder (and slowest-N tracking).
	Ring int
	// SlowN is how many slowest traces to retain (default 32 when the
	// ring is enabled).
	SlowN int
	// Log, if non-nil, receives one binary record per kept trace.
	Log *LogWriter
}

// Tracer mints and retires trace contexts. A Tracer with Sample == 0,
// Ring == 0, and no Log is disabled: Begin returns nil and every
// downstream call no-ops — the library default costs nothing.
type Tracer struct {
	enabled   bool
	threshold uint64 // sample decision: keep when mixed id.Lo < threshold
	rec       *Recorder
	log       *LogWriter

	seq  atomic.Uint64
	seed uint64

	pool sync.Pool

	sampled atomic.Uint64
	forced  atomic.Uint64
	begun   atomic.Uint64
}

// NewTracer builds a Tracer. A nil-config-equivalent (all zero) Tracer
// is valid and disabled.
func NewTracer(cfg Config) *Tracer {
	t := &Tracer{
		seed: splitmix64(uint64(time.Now().UnixNano())),
		log:  cfg.Log,
	}
	switch {
	case cfg.Sample >= 1:
		t.threshold = ^uint64(0)
	case cfg.Sample > 0:
		t.threshold = uint64(cfg.Sample * float64(1<<63) * 2)
	}
	if cfg.Ring > 0 {
		slowN := cfg.SlowN
		if slowN <= 0 {
			slowN = 32
		}
		t.rec = NewRecorder(cfg.Ring, slowN)
	}
	t.enabled = t.threshold > 0 || t.rec != nil || t.log != nil
	t.pool.New = func() any { return &Ctx{t: t} }
	return t
}

// Enabled reports whether Begin returns live contexts.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Recorder returns the ring recorder, or nil when disabled.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Log returns the attached binary log writer, or nil.
func (t *Tracer) Log() *LogWriter {
	if t == nil {
		return nil
	}
	return t.log
}

// Begin starts a trace for one request. Returns nil when the tracer is
// disabled; every *Ctx method tolerates that.
func (t *Tracer) Begin(op string) *Ctx {
	if t == nil || !t.enabled {
		return nil
	}
	t.begun.Add(1)
	c := t.pool.Get().(*Ctx)
	n := t.seq.Add(1)
	c.id = ID{Hi: splitmix64(t.seed + n), Lo: splitmix64(t.seed ^ (n << 1) ^ 0xa5a5a5a5a5a5a5a5)}
	c.start = time.Now()
	c.op = op
	c.sampled = c.id.Lo < t.threshold
	if c.sampled {
		t.sampled.Add(1)
	}
	c.refs.Store(1)
	return c
}

// put resets and pools a retired Ctx.
func (t *Tracer) put(c *Ctx) {
	c.durs = [NumStages]int64{}
	c.counts = [NumStages]uint32{}
	c.outcome, c.source, c.peer, c.op = "", "", "", ""
	c.fpHi, c.fpLo = 0, 0
	c.id = ID{}
	c.sampled = false
	t.pool.Put(c)
}

// Finish closes out a request's trace: decides whether to keep it
// (sampled ∨ forced ∨ slowest-N), hands it to the recorder and the
// binary log, and releases the caller's reference. Detached retained
// holders may still record stages afterward; those late stages are
// simply not part of the kept record.
func (t *Tracer) Finish(c *Ctx) {
	if t == nil || c == nil {
		return
	}
	total := time.Since(c.start)
	c.mu.Lock()
	forced := c.forced()
	keep := c.sampled || forced
	var rec Record
	needRec := t.rec != nil || t.log != nil
	if needRec {
		rec = Record{
			ID:      c.id,
			Start:   c.start.UnixNano(),
			Op:      c.op,
			Outcome: c.outcome,
			Source:  c.source,
			Peer:    c.peer,
			FPHi:    c.fpHi,
			FPLo:    c.fpLo,
			TotalNS: int64(total),
			Durs:    c.durs,
			Counts:  c.counts,
		}
		if rec.Outcome == "" {
			rec.Outcome = OutcomeOK
		}
	}
	c.mu.Unlock()
	if forced {
		t.forced.Add(1)
	}
	if needRec {
		slow := false
		if t.rec != nil {
			slow = t.rec.Observe(&rec, keep)
		}
		if t.log != nil && (keep || slow) {
			t.log.Append(&rec)
		}
	}
	c.Release()
}

// Stats is a snapshot of tracer-level counters for /metrics.
type Stats struct {
	Begun   uint64 `json:"begun"`
	Sampled uint64 `json:"sampled"`
	Forced  uint64 `json:"forced"`
}

// Stats returns the tracer's counters (zero value when nil/disabled).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Begun:   t.begun.Load(),
		Sampled: t.sampled.Load(),
		Forced:  t.forced.Load(),
	}
}

// Context propagation: a *Ctx rides inside a request's context so deep
// layers (the store stack) can annotate it, and a bare ID rides on
// async hops (replication fan-out) that must not retain the pooled Ctx.

type ctxKey struct{}
type idKey struct{}

// NewContext returns ctx carrying tc.
func NewContext(ctx context.Context, tc *Ctx) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext returns the *Ctx carried by ctx, or nil.
func FromContext(ctx context.Context) *Ctx {
	tc, _ := ctx.Value(ctxKey{}).(*Ctx)
	return tc
}

// WithID returns ctx carrying a bare trace ID (value type — safe to
// hold across async boundaries after the originating Ctx is pooled).
func WithID(ctx context.Context, id ID) context.Context {
	if id.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, idKey{}, id)
}

// IDFromContext extracts a trace ID from ctx: a live *Ctx wins, then a
// bare ID.
func IDFromContext(ctx context.Context) ID {
	if tc := FromContext(ctx); tc != nil {
		return tc.id
	}
	id, _ := ctx.Value(idKey{}).(ID)
	return id
}
