package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Binary trace log: the record half of record/replay. Framing matches
// the durable store's segment log discipline —
//
//	[4B little-endian payload length][4B CRC32C of payload][payload]
//
// — so a torn tail (crash mid-write) truncates cleanly and a corrupt
// record is detected, skipped, and counted rather than served.
//
// Payload layout (version 1, little-endian):
//
//	u8  version
//	u8  op code        u8 outcome code   u8 source code
//	u64 id.Hi          u64 id.Lo
//	u64 fp.Hi          u64 fp.Lo
//	i64 start unixnano i64 total ns
//	u8  nstages, then per stage: u8 stage, u32 count, i64 dur ns

const logVersion = 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Small closed code tables keep records compact; unknown strings map
// to 0 ("?") rather than failing.
var opCodes = []string{"?", "plan", "estimate", "batch"}
var outcomeCodes = []string{"?", OutcomeOK, OutcomeError, OutcomeRejected, OutcomeCanceled}
var sourceCodes = []string{"", "cached", "computed", "coalesced", "degraded", "batch"}

func code(table []string, s string) uint8 {
	for i, v := range table {
		if v == s {
			return uint8(i)
		}
	}
	return 0
}

func decode(table []string, c uint8) string {
	if int(c) < len(table) {
		return table[c]
	}
	return table[0]
}

// maxLogRecord bounds a single record; anything longer is corrupt.
const maxLogRecord = 4096

// logFlushInterval bounds how stale the on-disk log can be while records
// sit in the write buffer: an operator tailing the file sees a kept trace
// within about a second, not whenever 32 KB of them have accumulated.
const logFlushInterval = time.Second

// LogWriter appends trace records to an io.Writer behind a mutex.
type LogWriter struct {
	mu        sync.Mutex
	w         *bufio.Writer
	c         io.Closer
	buf       []byte
	lastFlush time.Time

	records atomic.Uint64
	bytes   atomic.Uint64
	errs    atomic.Uint64
}

// NewLogWriter wraps w; if w is also an io.Closer, Close closes it.
func NewLogWriter(w io.Writer) *LogWriter {
	lw := &LogWriter{w: bufio.NewWriterSize(w, 1<<15)}
	if c, ok := w.(io.Closer); ok {
		lw.c = c
	}
	return lw
}

// OpenLog opens (creating or appending) a trace log file.
func OpenLog(path string) (*LogWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: opening log: %w", err)
	}
	return NewLogWriter(f), nil
}

// Append writes one record. Errors are counted, not returned — the
// trace log must never fail a request.
func (lw *LogWriter) Append(rec *Record) {
	if lw == nil {
		return
	}
	lw.mu.Lock()
	b := lw.buf[:0]
	b = append(b, logVersion,
		code(opCodes, rec.Op),
		code(outcomeCodes, rec.Outcome),
		code(sourceCodes, rec.Source))
	b = binary.LittleEndian.AppendUint64(b, rec.ID.Hi)
	b = binary.LittleEndian.AppendUint64(b, rec.ID.Lo)
	b = binary.LittleEndian.AppendUint64(b, rec.FPHi)
	b = binary.LittleEndian.AppendUint64(b, rec.FPLo)
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.Start))
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.TotalNS))
	nstages := 0
	for i := 0; i < NumStages; i++ {
		if rec.Counts[i] > 0 {
			nstages++
		}
	}
	b = append(b, uint8(nstages))
	for i := 0; i < NumStages; i++ {
		if rec.Counts[i] == 0 {
			continue
		}
		b = append(b, uint8(i))
		b = binary.LittleEndian.AppendUint32(b, rec.Counts[i])
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.Durs[i]))
	}
	lw.buf = b // keep the grown buffer

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(b)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(b, crcTable))
	_, err1 := lw.w.Write(hdr[:])
	_, err2 := lw.w.Write(b)
	if now := time.Now(); now.Sub(lw.lastFlush) >= logFlushInterval {
		lw.lastFlush = now
		if ferr := lw.w.Flush(); err2 == nil {
			err2 = ferr
		}
	}
	lw.mu.Unlock()
	if err1 != nil || err2 != nil {
		lw.errs.Add(1)
		return
	}
	lw.records.Add(1)
	lw.bytes.Add(uint64(8 + len(b)))
}

// Flush pushes buffered records to the underlying writer.
func (lw *LogWriter) Flush() error {
	if lw == nil {
		return nil
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Flush()
}

// Close flushes and closes the underlying writer if it is closable.
func (lw *LogWriter) Close() error {
	if lw == nil {
		return nil
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	err := lw.w.Flush()
	if lw.c != nil {
		if cerr := lw.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// LogStats snapshots the writer's ledger.
type LogStats struct {
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes"`
	Errors  uint64 `json:"errors"`
}

// Stats returns the writer's counters (zero value when nil).
func (lw *LogWriter) Stats() LogStats {
	if lw == nil {
		return LogStats{}
	}
	return LogStats{Records: lw.records.Load(), Bytes: lw.bytes.Load(), Errors: lw.errs.Load()}
}

// ReadLog decodes every intact record from r. A torn tail (short read
// mid-record) ends the scan cleanly; a complete record with a bad CRC
// or malformed payload is skipped and counted. Returns the records,
// the number skipped, and any I/O error other than EOF.
func ReadLog(r io.Reader) (recs []Record, skipped int, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, skipped, nil // torn tail
			}
			return recs, skipped, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxLogRecord {
			// Length is garbage: we cannot resync, stop here.
			return recs, skipped + 1, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, skipped, nil // torn tail
			}
			return recs, skipped, err
		}
		if crc32.Checksum(payload, crcTable) != want {
			skipped++
			continue
		}
		rec, ok := decodeLogRecord(payload)
		if !ok {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
}

func decodeLogRecord(b []byte) (Record, bool) {
	var rec Record
	if len(b) < 53 || b[0] != logVersion {
		return rec, false
	}
	rec.Op = decode(opCodes, b[1])
	rec.Outcome = decode(outcomeCodes, b[2])
	rec.Source = decode(sourceCodes, b[3])
	rec.ID.Hi = binary.LittleEndian.Uint64(b[4:])
	rec.ID.Lo = binary.LittleEndian.Uint64(b[12:])
	rec.FPHi = binary.LittleEndian.Uint64(b[20:])
	rec.FPLo = binary.LittleEndian.Uint64(b[28:])
	rec.Start = int64(binary.LittleEndian.Uint64(b[36:]))
	rec.TotalNS = int64(binary.LittleEndian.Uint64(b[44:]))
	nstages := int(b[52])
	off := 53
	for i := 0; i < nstages; i++ {
		if off+13 > len(b) {
			return rec, false
		}
		st := int(b[off])
		if st >= NumStages {
			return rec, false
		}
		rec.Counts[st] = binary.LittleEndian.Uint32(b[off+1:])
		rec.Durs[st] = int64(binary.LittleEndian.Uint64(b[off+5:]))
		off += 13
	}
	return rec, off == len(b)
}
