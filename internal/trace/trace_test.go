package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDStringParseRoundTrip(t *testing.T) {
	ids := []ID{
		{},
		{Hi: 1, Lo: 2},
		{Hi: 0xdeadbeefcafebabe, Lo: 0x0123456789abcdef},
		{Hi: ^uint64(0), Lo: ^uint64(0)},
	}
	for _, id := range ids {
		s := id.String()
		if len(s) != 32 {
			t.Fatalf("ID %v renders %d chars: %q", id, len(s), s)
		}
		got, ok := ParseID(s)
		if !ok || got != id {
			t.Fatalf("ParseID(%q) = %v, %v; want %v", s, got, ok, id)
		}
	}
	if _, ok := ParseID("nothex"); ok {
		t.Fatal("ParseID accepted a short non-hex string")
	}
	if _, ok := ParseID(strings.Repeat("g", 32)); ok {
		t.Fatal("ParseID accepted non-hex digits")
	}
}

func TestDisabledTracerIsFree(t *testing.T) {
	tr := NewTracer(Config{})
	if tr.Enabled() {
		t.Fatal("zero-config tracer should be disabled")
	}
	tc := tr.Begin("plan")
	if tc != nil {
		t.Fatal("disabled tracer handed out a context")
	}
	// Every nil-receiver method must be a no-op, not a panic.
	tc.Add(StageSolve, time.Millisecond)
	tc.SetOutcome(OutcomeError)
	tc.SetSource("cached")
	tc.SetPeer("http://x")
	tc.SetFingerprint(1, 2)
	tc.Retain()
	tc.Release()
	if tc.ShouldHeader() || tc.HeaderValue() != "" || tc.IDString() != "-" {
		t.Fatal("nil Ctx leaked state")
	}
	tr.Finish(tc)
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	tc := tr.Begin("plan")
	if tc == nil || !tc.Sampled() {
		t.Fatal("sample=1 must yield a sampled context")
	}
	tc.Add(StageDecode, 1500*time.Microsecond)
	tc.Add(StageSolve, 2*time.Millisecond)
	tc.Add(StageSolve, 3*time.Millisecond)
	tc.Add(StageEncode, 250*time.Microsecond)
	tc.SetSource("computed")
	hv := tc.HeaderValue()
	sum, ok := ParseHeader(hv)
	if !ok {
		t.Fatalf("ParseHeader(%q) failed", hv)
	}
	if sum.ID != tc.ID().String() {
		t.Fatalf("header ID %q != ctx ID %q", sum.ID, tc.ID())
	}
	if sum.Source != "computed" {
		t.Fatalf("source = %q", sum.Source)
	}
	if sum.DurUS[StageDecode] != 1500 {
		t.Fatalf("decode µs = %d, want 1500", sum.DurUS[StageDecode])
	}
	if sum.DurUS[StageSolve] != 5000 || sum.Counts[StageSolve] != 2 {
		t.Fatalf("solve = %dµs x%d, want 5000 x2", sum.DurUS[StageSolve], sum.Counts[StageSolve])
	}
	if sum.Counts[StageQueue] != 0 {
		t.Fatal("unobserved stage leaked into the header")
	}
	if sum.TotalUS < 0 {
		t.Fatalf("total = %d", sum.TotalUS)
	}
	tr.Finish(tc)

	if _, ok := ParseHeader(""); ok {
		t.Fatal("ParseHeader accepted empty value")
	}
	if _, ok := ParseHeader("tooshort;src=x"); ok {
		t.Fatal("ParseHeader accepted malformed ID")
	}
	// Unknown fields are skipped, not fatal.
	sum2, ok := ParseHeader(strings.Repeat("a", 32) + ";future=1;src=cached")
	if !ok || sum2.Source != "cached" {
		t.Fatalf("forward-compat parse failed: %+v %v", sum2, ok)
	}
}

func TestForcedKeepsErrorsAndDegraded(t *testing.T) {
	tr := NewTracer(Config{Ring: 8}) // sample=0: only forced traces kept
	tc := tr.Begin("plan")
	if tc.Sampled() {
		t.Fatal("sample=0 context must not be sampled")
	}
	if tc.ShouldHeader() {
		t.Fatal("ok outcome with sample=0 should not emit a header")
	}
	tc.SetOutcome(OutcomeError)
	if !tc.ShouldHeader() {
		t.Fatal("error outcome must force the header")
	}
	tr.Finish(tc)

	tc = tr.Begin("plan")
	tc.SetSource("degraded")
	if !tc.ShouldHeader() {
		t.Fatal("degraded source must force the header")
	}
	tr.Finish(tc)

	tc = tr.Begin("plan")
	tr.Finish(tc) // ok, unsampled: only slowest-N can keep it

	st := tr.Stats()
	if st.Begun != 3 || st.Forced != 2 || st.Sampled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	recent := tr.Recorder().Recent(0, "", "")
	if len(recent) != 2 {
		t.Fatalf("ring kept %d records, want the 2 forced ones", len(recent))
	}
	if got := tr.Recorder().Recent(0, "", OutcomeError); len(got) != 1 {
		t.Fatalf("outcome filter returned %d", len(got))
	}
	// Slowest-N saw all three (slow tracking ignores sampling).
	if got := tr.Recorder().Slowest(); len(got) != 3 {
		t.Fatalf("slowest kept %d, want 3", len(got))
	}
}

func TestRecorderRingAndSlowest(t *testing.T) {
	r := NewRecorder(4, 3)
	for i := 1; i <= 10; i++ {
		rec := Record{ID: ID{Lo: uint64(i)}, Op: "plan", Outcome: OutcomeOK, TotalNS: int64(i) * 1000}
		r.Observe(&rec, true)
	}
	recent := r.Recent(0, "", "")
	if len(recent) != 4 {
		t.Fatalf("ring holds %d", len(recent))
	}
	// Newest first: 10, 9, 8, 7.
	for i, want := range []uint64{10, 9, 8, 7} {
		if recent[i].ID.Lo != want {
			t.Fatalf("recent[%d] = %d, want %d", i, recent[i].ID.Lo, want)
		}
	}
	slow := r.Slowest()
	if len(slow) != 3 {
		t.Fatalf("slowest holds %d", len(slow))
	}
	for i, want := range []uint64{10, 9, 8} {
		if slow[i].ID.Lo != want {
			t.Fatalf("slowest[%d] = %d, want %d", i, slow[i].ID.Lo, want)
		}
	}
	// A fast request no longer qualifies once the slow list is full.
	fast := Record{ID: ID{Lo: 99}, TotalNS: 1}
	if r.Observe(&fast, false) {
		t.Fatal("fast trace entered the slow list")
	}
	st := r.Stats()
	if st.Kept != 10 || st.Overwritten != 6 || st.RingCap != 4 || st.SlowCap != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SlowKept < 3 {
		t.Fatalf("slow kept = %d", st.SlowKept)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec := Record{ID: ID{Hi: uint64(g), Lo: uint64(i)}, Op: "plan", Outcome: OutcomeOK, TotalNS: int64(i)}
				r.Observe(&rec, i%3 == 0)
				if i%17 == 0 {
					r.Recent(8, "plan", "")
					r.Slowest()
					r.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Slowest()); got != 8 {
		t.Fatalf("slowest holds %d, want 8", got)
	}
}

func TestCtxRefcountAndReuse(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	tc := tr.Begin("plan")
	id1 := tc.ID()
	tc.Retain() // simulated detached computation
	tr.Finish(tc)
	// The detached holder can still record safely.
	tc.Add(StageSolve, time.Millisecond)
	tc.Release()

	tc2 := tr.Begin("plan")
	if tc2.ID() == id1 {
		t.Fatal("reused Ctx kept its old ID")
	}
	tc2.mu.Lock()
	for i, c := range tc2.counts {
		if c != 0 || tc2.durs[i] != 0 {
			t.Fatalf("reused Ctx kept stage state at %d", i)
		}
	}
	tc2.mu.Unlock()
	if tc2.Op() != "plan" || tc2.outcome != "" || tc2.source != "" {
		t.Fatal("reused Ctx kept labels")
	}
	tr.Finish(tc2)
}

func TestTracerUniqueIDs(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		tc := tr.Begin("plan")
		id := tc.ID()
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero ID %v at %d", id, i)
		}
		seen[id] = true
		tr.Finish(tc)
	}
}

func TestSamplingRate(t *testing.T) {
	tr := NewTracer(Config{Sample: 0.25})
	sampled := 0
	const n = 20000
	for i := 0; i < n; i++ {
		tc := tr.Begin("plan")
		if tc.Sampled() {
			sampled++
		}
		tr.Finish(tc)
	}
	frac := float64(sampled) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("sample=0.25 kept %.3f", frac)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	tc := tr.Begin("plan")
	ctx := NewContext(context.Background(), tc)
	if FromContext(ctx) != tc {
		t.Fatal("FromContext lost the Ctx")
	}
	if IDFromContext(ctx) != tc.ID() {
		t.Fatal("IDFromContext mismatch via Ctx")
	}
	// Bare ID survives after the Ctx would be pooled.
	id := tc.ID()
	ctx2 := WithID(context.Background(), id)
	if IDFromContext(ctx2) != id {
		t.Fatal("IDFromContext mismatch via bare ID")
	}
	if !IDFromContext(context.Background()).IsZero() {
		t.Fatal("empty context yielded an ID")
	}
	tr.Finish(tc)
}

func BenchmarkBeginFinishUnsampled(b *testing.B) {
	tr := NewTracer(Config{Ring: 512})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := tr.Begin("plan")
		tc.Add(StageDecode, time.Microsecond)
		tc.Add(StageSolve, time.Microsecond)
		tr.Finish(tc)
	}
}
