package trace

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled, structured logging for the daemon and the service layer: one
// line per event, "ts=<RFC3339> level=<l> msg=<quoted> k=v k=v ...".
// This replaces the ad-hoc log.Printf calls so every operational line
// is grep-able by key — in particular trace=<id> ties log lines to
// /debug/traces records and X-Suu-Trace headers.

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// LevelFromString parses "debug", "info", "warn", "error".
func LevelFromString(s string) (Level, bool) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return LevelInfo, false
}

var (
	logLevel atomic.Int32 // Level; default LevelInfo
	logMu    sync.Mutex
	logOut   io.Writer = os.Stderr
)

func init() { logLevel.Store(int32(LevelInfo)) }

// SetLevel sets the global minimum level.
func SetLevel(l Level) { logLevel.Store(int32(l)) }

// SetOutput redirects log output (default os.Stderr).
func SetOutput(w io.Writer) {
	logMu.Lock()
	logOut = w
	logMu.Unlock()
}

// Debug, Info, Warn, Error emit one structured line when the level is
// enabled. kv is alternating key, value pairs; values are rendered with
// %v and quoted only when they contain spaces, quotes, or '='.
func Debug(msg string, kv ...any) { emit(LevelDebug, msg, kv...) }
func Info(msg string, kv ...any)  { emit(LevelInfo, msg, kv...) }
func Warn(msg string, kv ...any)  { emit(LevelWarn, msg, kv...) }
func Error(msg string, kv ...any) { emit(LevelError, msg, kv...) }

// Fatal logs at error level and exits the process.
func Fatal(msg string, kv ...any) {
	emitAlways(msg, kv...)
	os.Exit(1)
}

func emit(l Level, msg string, kv ...any) {
	if int32(l) < logLevel.Load() {
		return
	}
	write(l, msg, kv...)
}

func emitAlways(msg string, kv ...any) { write(LevelError, msg, kv...) }

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '"', '=', '\n', '\t':
			return true
		}
	}
	return false
}

func appendValue(b []byte, v any) []byte {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case error:
		s = x.Error()
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case bool:
		return strconv.AppendBool(b, x)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case time.Duration:
		s = x.String()
	default:
		s = fmt.Sprintf("%v", v)
	}
	if needsQuote(s) {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}

func write(l Level, msg string, kv ...any) {
	b := make([]byte, 0, 160)
	b = append(b, "ts="...)
	b = time.Now().UTC().AppendFormat(b, time.RFC3339)
	b = append(b, " level="...)
	b = append(b, l.String()...)
	b = append(b, " msg="...)
	b = appendValue(b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ' ')
		if k, ok := kv[i].(string); ok {
			b = append(b, k...)
		} else {
			b = append(b, fmt.Sprintf("%v", kv[i])...)
		}
		b = append(b, '=')
		b = appendValue(b, kv[i+1])
	}
	b = append(b, '\n')
	logMu.Lock()
	logOut.Write(b)
	logMu.Unlock()
}
