package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Record is one finished request's trace, fixed-size except for the
// small label strings — cheap to copy by value into the ring.
type Record struct {
	ID      ID
	Start   int64 // UnixNano
	Op      string
	Outcome string
	Source  string
	Peer    string
	FPHi    uint64
	FPLo    uint64
	TotalNS int64
	Durs    [NumStages]int64
	Counts  [NumStages]uint32
}

// Recorder keeps the most recent kept traces in a bounded ring and the
// slowest-N traces (regardless of sampling) in a small sorted list.
// Every access is guarded by one mutex; the hot path for an unkept,
// not-slow trace is a single atomic load.
type Recorder struct {
	mu   sync.Mutex
	ring []Record
	next int
	full bool

	slow    []Record // ascending by TotalNS; len <= slowCap
	slowCap int
	// slowMin caches slow[0].TotalNS once the list is full so the
	// common "not slow enough" case skips the mutex entirely.
	slowMin atomic.Int64

	kept        atomic.Uint64
	overwritten atomic.Uint64
	slowKept    atomic.Uint64
}

// NewRecorder builds a recorder with the given ring capacity and
// slowest-N capacity (both must be > 0).
func NewRecorder(ringCap, slowCap int) *Recorder {
	if ringCap < 1 {
		ringCap = 1
	}
	if slowCap < 1 {
		slowCap = 1
	}
	r := &Recorder{ring: make([]Record, ringCap), slowCap: slowCap}
	r.slowMin.Store(-1) // not full: everything qualifies
	return r
}

// Observe offers a finished trace. keep puts it in the recent ring;
// slowest-N qualification is checked for every trace regardless of
// keep (the slowest requests are interesting precisely when sampling
// would have dropped them). Returns whether the trace entered the
// slowest-N list.
func (r *Recorder) Observe(rec *Record, keep bool) (slow bool) {
	qualifies := rec.TotalNS > r.slowMin.Load()
	if !keep && !qualifies {
		return false
	}
	r.mu.Lock()
	if keep {
		if r.full {
			r.overwritten.Add(1)
		}
		r.ring[r.next] = *rec
		r.next++
		if r.next == len(r.ring) {
			r.next, r.full = 0, true
		}
		r.kept.Add(1)
	}
	if qualifies {
		// Re-check under the lock (slowMin may have moved).
		if len(r.slow) < r.slowCap || rec.TotalNS > r.slow[0].TotalNS {
			slow = true
			r.slowKept.Add(1)
			i := 0
			for i < len(r.slow) && r.slow[i].TotalNS < rec.TotalNS {
				i++
			}
			if len(r.slow) < r.slowCap {
				r.slow = append(r.slow, Record{})
				copy(r.slow[i+1:], r.slow[i:])
				r.slow[i] = *rec
			} else {
				// Evict the fastest (index 0), shift, insert.
				copy(r.slow[:i-1], r.slow[1:i])
				r.slow[i-1] = *rec
			}
			if len(r.slow) == r.slowCap {
				r.slowMin.Store(r.slow[0].TotalNS)
			}
		}
	}
	r.mu.Unlock()
	return slow
}

// Recent returns up to limit kept traces, newest first, optionally
// filtered by op and/or outcome (empty string matches all).
func (r *Recorder) Recent(limit int, op, outcome string) []Record {
	if limit <= 0 {
		limit = len(r.ring)
	}
	out := make([]Record, 0, min(limit, len(r.ring)))
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.ring)
	}
	for i := 0; i < n && len(out) < limit; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.ring)
		}
		rec := &r.ring[idx]
		if (op == "" || rec.Op == op) && (outcome == "" || rec.Outcome == outcome) {
			out = append(out, *rec)
		}
	}
	r.mu.Unlock()
	return out
}

// Slowest returns the slowest-N traces, slowest first.
func (r *Recorder) Slowest() []Record {
	r.mu.Lock()
	out := make([]Record, len(r.slow))
	for i := range r.slow {
		out[i] = r.slow[len(r.slow)-1-i]
	}
	r.mu.Unlock()
	return out
}

// RecorderStats snapshots the recorder's ledger.
type RecorderStats struct {
	RingCap     int    `json:"ring_cap"`
	SlowCap     int    `json:"slow_cap"`
	Kept        uint64 `json:"kept"`
	Overwritten uint64 `json:"overwritten"`
	SlowKept    uint64 `json:"slow_kept"`
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	return RecorderStats{
		RingCap:     len(r.ring),
		SlowCap:     r.slowCap,
		Kept:        r.kept.Load(),
		Overwritten: r.overwritten.Load(),
		SlowKept:    r.slowKept.Load(),
	}
}

// StageView is one stage of a RecordView.
type StageView struct {
	Stage string  `json:"stage"`
	Count uint32  `json:"count"`
	MS    float64 `json:"ms"`
}

// RecordView is the JSON shape /debug/traces serves.
type RecordView struct {
	ID          string      `json:"id"`
	Time        string      `json:"time"`
	Op          string      `json:"op"`
	Outcome     string      `json:"outcome"`
	Source      string      `json:"source,omitempty"`
	Peer        string      `json:"peer,omitempty"`
	Fingerprint string      `json:"fingerprint,omitempty"`
	TotalMS     float64     `json:"total_ms"`
	Stages      []StageView `json:"stages"`
}

// View renders the record for JSON exposition.
func (rec *Record) View() RecordView {
	v := RecordView{
		ID:      rec.ID.String(),
		Time:    time.Unix(0, rec.Start).UTC().Format(time.RFC3339Nano),
		Op:      rec.Op,
		Outcome: rec.Outcome,
		Source:  rec.Source,
		Peer:    rec.Peer,
		TotalMS: float64(rec.TotalNS) / 1e6,
	}
	if rec.FPHi != 0 || rec.FPLo != 0 {
		v.Fingerprint = ID{Hi: rec.FPHi, Lo: rec.FPLo}.String()
	}
	for i := 0; i < NumStages; i++ {
		if rec.Counts[i] == 0 {
			continue
		}
		v.Stages = append(v.Stages, StageView{
			Stage: Stage(i).String(),
			Count: rec.Counts[i],
			MS:    float64(rec.Durs[i]) / 1e6,
		})
	}
	return v
}
