package rounding

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// chainSets builds a deterministic SEM-style re-solve chain: the full job
// set, then survivor subsets with ~30% retention per round.
func chainSets(ins *model.Instance, rounds int) [][]int {
	rng := rand.New(rand.NewSource(99))
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	sets := [][]int{jobs}
	for r := 1; r < rounds; r++ {
		var surv []int
		for _, j := range sets[r-1] {
			if rng.Float64() < 0.3 {
				surv = append(surv, j)
			}
		}
		if len(surv) == 0 {
			break
		}
		sets = append(sets, surv)
	}
	return sets
}

// BenchmarkLP1SolveSparse pins the flagship solve — the n=128/m=32
// full-set LP1, solved cold on the default (sparse revised simplex)
// engine. CI holds its ns/op against the committed baseline
// (.github/bench-baseline.txt): this is the solve the LU-factorized basis
// and candidate pricing turned from ~250 ms (dense tableau) into
// single-digit milliseconds, and a regression here means the sparse engine
// rotted.
func BenchmarkLP1SolveSparse(b *testing.B) {
	cell := workload.Spec{Family: "uniform", M: 32, N: 128, Seed: 9}
	ins, err := workload.Generate(cell)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ws.solveLP1(ins, jobs, 0.5, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundLP1 measures the full rounding path — LP solve plus the
// grouping/flow rounding — on one workspace, extending the allocs/op
// coverage to roundByFlow: with the group window, flow network, and edge
// list threaded through the workspace, steady-state allocations are only
// the escaping result (Solution + Assignment).
func BenchmarkRoundLP1(b *testing.B) {
	cell := workload.Spec{Family: "uniform", M: 16, N: 64, Seed: 9}
	ins, err := workload.Generate(cell)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.roundLP1(ins, jobs, 0.5, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLP1Solve pins the LP engine itself on the large Table-1 cells:
// one iteration solves a whole SEM re-solve chain (full set at L=1/2, then
// shrinking survivor subsets at doubling targets). The cold arm rebuilds a
// dense tableau from scratch per solve (the pre-workspace engine); the
// warm arm reuses one workspace and warm-starts every link after the first.
func BenchmarkLP1Solve(b *testing.B) {
	for _, cell := range workload.Table1LargeCells() {
		cell.Seed = 9
		ins, err := workload.Generate(cell)
		if err != nil {
			b.Fatal(err)
		}
		sets := chainSets(ins, 4)
		b.Run(fmt.Sprintf("cold/n=%d/m=%d", cell.N, cell.M), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := 0.5
				for _, jobs := range sets {
					if _, _, err := SolveLP1(ins, jobs, l); err != nil {
						b.Fatal(err)
					}
					l *= 2
				}
			}
		})
		b.Run(fmt.Sprintf("warm/n=%d/m=%d", cell.N, cell.M), func(b *testing.B) {
			b.ReportAllocs()
			ws := NewWorkspace()
			for i := 0; i < b.N; i++ {
				ws.Begin()
				l := 0.5
				for _, jobs := range sets {
					_, _, basis, err := ws.solveLP1(ins, jobs, l, true)
					if err != nil {
						b.Fatal(err)
					}
					ws.advanceChain(ins, jobs, l, basis)
					l *= 2
				}
			}
		})
	}
}
