package rounding

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/sched"
)

// LP2Result is a rounded solution of (LP2) for disjoint chains (Section 4).
// The chains may cover only a subset of the instance's jobs (SUU-T solves
// one (LP2) per decomposition block); uncovered jobs get no assignment.
type LP2Result struct {
	// Assignment gives every covered job log mass ≥ 1 (capped ℓ′=min(ℓ,1)).
	Assignment *sched.Assignment
	// JobLength is d̂_j = max(1, max_i x̂_ij) for covered jobs, 0 otherwise.
	JobLength []int64
	// TFrac is the LP optimum t*, which Lemma 5 lower-bounds against
	// O(E[T_OPT]).
	TFrac float64
	// Load is the max machine load of the rounded assignment.
	Load int64
	// Repairs counts post-rounding fix-up steps (0 in practice).
	Repairs int
	// Basis is the LP solver's optimal basis for the relaxation (see
	// lp.Solution.Basis), recorded so SUU-T's next decomposition block can
	// seed its machine rows from this one (the LP2 cross-block warm chain;
	// see Workspace).
	Basis []int
}

// SolveLP2 solves the relaxation of (LP2):
//
//	min t  s.t.  Σ_i ℓ′_ij x_ij ≥ 1 (j covered),  Σ_j x_ij ≤ t (i),
//	             Σ_{j∈C_k} d_j ≤ t (C_k),  x_ij ≤ d_j,  d_j ≥ 1,  x ≥ 0,
//
// with ℓ′ = min(ℓ, 1). The d_j ≥ 1 bound is folded in by the substitution
// d_j = 1 + e_j, e_j ≥ 0, which spares n artificial variables. It returns
// the fractional x*[i][pos] and d*[pos] indexed by position in the
// flattened chain order, the flattened job list, and t*. One-shot callers
// only; hot paths hold a Workspace.
func SolveLP2(ins *model.Instance, chains []dag.Chain) ([][]float64, []float64, []int, float64, error) {
	return NewWorkspace().solveLP2(ins, chains)
}

// buildLP2 assembles the (LP2) relaxation for the given chains into the
// workspace's reusable Problem (sharing the LP1 build arenas — a workspace
// builds one problem at a time). Row order: cover rows (one per job, in
// flattened chain order), machine rows, chain rows, then the x ≤ d cap
// rows. Variables: x_{i,pos} at i*k+pos, e_pos at m*k+pos (d = 1+e), t
// last. It returns the flattened job list, which aliases a workspace arena
// valid until the next build.
func (ws *Workspace) buildLP2(ins *model.Instance, chains []dag.Chain) (*lp.Problem, []int, error) {
	m := ins.M
	jobs := ws.lp2Jobs[:0]
	for _, c := range chains {
		for _, j := range c {
			if j < 0 || j >= ins.N {
				return nil, nil, fmt.Errorf("rounding: chain job %d out of range", j)
			}
			jobs = append(jobs, j)
		}
	}
	ws.lp2Jobs = jobs
	k := len(jobs)
	if k == 0 {
		return nil, nil, nil
	}
	if cap(ws.newPos) < ins.N {
		ws.newPos = make([]int32, ins.N)
	}
	posOf := ws.newPos[:ins.N]
	for j := range posOf {
		posOf[j] = -1
	}
	for pos, j := range jobs {
		if posOf[j] >= 0 {
			return nil, nil, fmt.Errorf("rounding: job %d appears in two chains", j)
		}
		posOf[j] = int32(pos)
	}
	xv := func(i, pos int) int { return i*k + pos }
	ev := func(pos int) int { return m*k + pos }
	tv := m*k + k
	nv := m*k + k + 1
	// Exact term count so the arena never reallocates mid-build: cover
	// rows (≤ m terms each), machine rows (k+1), chain rows (len+1), cap
	// rows (2 each).
	nt := m*(k+1) + 3*m*k + len(chains)
	for _, c := range chains {
		nt += len(c)
	}
	p := &ws.prob
	p.NumVars = nv
	ws.cbuf = growFloats(ws.cbuf, nv)
	p.C = ws.cbuf
	p.C[tv] = 1
	p.Cons = p.Cons[:0]
	if cap(ws.terms) < nt {
		ws.terms = make([]lp.Term, 0, nt)
	}
	arena := ws.terms[:0]
	for pos, j := range jobs {
		start := len(arena)
		for i := 0; i < m; i++ {
			if l := math.Min(ins.L[i][j], 1); l > 0 {
				arena = append(arena, lp.Term{Var: xv(i, pos), Coef: l})
			}
		}
		if len(arena) == start {
			return nil, nil, fmt.Errorf("rounding: job %d has zero log failure on every machine", j)
		}
		p.AddConstraint(arena[start:len(arena):len(arena)], lp.GE, 1)
	}
	for i := 0; i < m; i++ {
		start := len(arena)
		for pos := 0; pos < k; pos++ {
			arena = append(arena, lp.Term{Var: xv(i, pos), Coef: 1})
		}
		arena = append(arena, lp.Term{Var: tv, Coef: -1})
		p.AddConstraint(arena[start:len(arena):len(arena)], lp.LE, 0)
	}
	for _, c := range chains {
		start := len(arena)
		for _, j := range c {
			arena = append(arena, lp.Term{Var: ev(int(posOf[j])), Coef: 1})
		}
		arena = append(arena, lp.Term{Var: tv, Coef: -1})
		// Σ (1+e_j) ≤ t  ⇔  Σ e_j − t ≤ −|C_k|.
		p.AddConstraint(arena[start:len(arena):len(arena)], lp.LE, -float64(len(c)))
	}
	for i := 0; i < m; i++ {
		for pos := 0; pos < k; pos++ {
			start := len(arena)
			// x_ij ≤ d_j = 1 + e_j.
			arena = append(arena, lp.Term{Var: xv(i, pos), Coef: 1}, lp.Term{Var: ev(pos), Coef: -1})
			p.AddConstraint(arena[start:len(arena):len(arena)], lp.LE, 1)
		}
	}
	ws.terms = arena[:0]
	return p, jobs, nil
}

// solveLP2 solves the (LP2) relaxation on the workspace's solver,
// warm-started from the LP2 cross-block chain when one is recorded. SUU-T
// solves one (LP2) per forest-decomposition block on the same machine set;
// the blocks' job sets are disjoint, so job columns carry nothing across,
// but the machine rows do: the previous block's machine-row basics (slack
// vs t) are remapped onto this block's machine rows and every other row
// defaults to its own slack/artificial, exactly the Workspace treatment
// SEM's LP1 rounds get. Correctness never depends on the hint — the solver
// falls back to a cold solve on any trouble. Advancing the chain is the
// caller's job (advanceLP2), so cache hits can advance it identically.
func (ws *Workspace) solveLP2(ins *model.Instance, chains []dag.Chain) ([][]float64, []float64, []int, float64, error) {
	m := ins.M
	p, jobs, err := ws.buildLP2(ins, chains)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	k := len(jobs)
	if k == 0 {
		// No solve happened; clear the last-basis slot so an empty block
		// can never publish a previous block's basis through LP2Result.
		ws.lp2LastBasis = nil
		return make([][]float64, m), nil, nil, 0, nil
	}
	var sol *lp.Solution
	if ws.lp2Compatible(ins) {
		sol, err = ws.solver.SolveWarm(p, ws.buildLP2Hint(ins, chains, k))
	} else {
		sol, err = ws.solver.Solve(p)
	}
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("rounding: LP2 solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, nil, nil, 0, fmt.Errorf("rounding: LP2 status %v", sol.Status)
	}
	x := make([][]float64, m)
	for i := 0; i < m; i++ {
		x[i] = sol.X[i*k : (i+1)*k]
	}
	ev := func(pos int) int { return m*k + pos }
	dstar := make([]float64, k)
	for pos := 0; pos < k; pos++ {
		dstar[pos] = 1 + sol.X[ev(pos)]
	}
	ws.lp2LastBasis = sol.Basis
	return x, dstar, jobs, sol.Obj, nil
}

// lp2Compatible reports whether the LP2 chain can seed a solve on this
// instance: same instance (hence same machine set) and a recorded basis.
func (ws *Workspace) lp2Compatible(ins *model.Instance) bool {
	return ws.lp2Ins == ins && len(ws.lp2Basis) > 0
}

// buildLP2Hint remaps the previous block's machine-row basis entries onto
// the new block's rows: machine row i keeps its basic column when that was
// its own slack or the t variable; every other row (cover, chain, cap —
// all tied to departed jobs) gets NoHint and defaults to its initial
// slack/artificial.
func (ws *Workspace) buildLP2Hint(ins *model.Instance, chains []dag.Chain, k int) []int {
	m := ins.M
	prevK := ws.lp2K
	prevTv := m*prevK + prevK
	nRows := k + m + len(chains) + m*k
	hint := resizeInts(ws.hint, nRows)
	ws.hint = hint
	for r := range hint {
		hint[r] = lp.NoHint
	}
	tv := m*k + k
	for i := 0; i < m; i++ {
		e := ws.lp2Basis[prevK+i]
		switch {
		case e == prevTv:
			hint[k+i] = tv
		case e != lp.NoHint && e < 0:
			if rr := -1 - e; rr >= prevK && rr < prevK+m {
				hint[k+i] = -1 - (k + (rr - prevK))
			}
		}
	}
	return hint
}

// BeginLP2 resets the LP2 cross-block chain. Call it before the first
// block of an independent block sequence (SUU-T does, once per trial) so
// chain state never leaks between Monte Carlo trials.
func (ws *Workspace) BeginLP2() {
	ws.lp2Ins = nil
	ws.lp2Basis = nil
	ws.lp2K = 0
	ws.lp2Hash = 0
}

// advanceLP2 records a solved block as the new chain tail so the next
// block's machine rows can warm-start from it. An empty basis (empty
// block) resets the chain instead.
func (ws *Workspace) advanceLP2(ins *model.Instance, basis []int, k int, chainsHash uint64) {
	if len(basis) == 0 || k == 0 {
		ws.BeginLP2()
		return
	}
	ws.lp2Ins = ins
	ws.lp2Basis = basis
	ws.lp2K = k
	ws.lp2Hash = mix2(ws.lp2Hash, chainsHash)
}

// lp2KeyHash is the cache-key hash for solving this chain structure as the
// next block of the workspace's LP2 chain. With no chain history it equals
// the plain structure hash, so a sequence's first (cold, deterministic)
// block shares its cache entry with standalone SUU-C callers.
func (ws *Workspace) lp2KeyHash(chainsHash uint64) uint64 {
	if ws.lp2Hash != 0 {
		return mix2(ws.lp2Hash, chainsHash)
	}
	return chainsHash
}

// RoundLP2 implements Lemma 6: the Lemma 2 rounding with per-job edge
// capacities ⌈6d*_j⌉ in the flow network, which keeps every chain's total
// length within a constant factor of t*.
func RoundLP2(ins *model.Instance, chains []dag.Chain) (*LP2Result, error) {
	return roundLP2(ins, chains, NewWorkspace())
}

func roundLP2(ins *model.Instance, chains []dag.Chain, ws *Workspace) (*LP2Result, error) {
	xfrac, dstar, jobs, tstar, err := ws.solveLP2(ins, chains)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return &LP2Result{
			Assignment: sched.NewAssignment(ins.M, ins.N),
			JobLength:  make([]int64, ins.N),
		}, nil
	}
	edgeCap := func(pos, i int) int64 {
		return int64(math.Ceil(6*dstar[pos] - capEps))
	}
	asn, repairs, err := roundByFlow(ins, jobs, 1, xfrac, tstar, edgeCap, &ws.flow)
	if err != nil {
		return nil, err
	}
	dl := make([]int64, ins.N)
	for _, j := range jobs {
		dl[j] = asn.JobLength(j)
		if dl[j] < 1 {
			dl[j] = 1
		}
	}
	return &LP2Result{
		Assignment: asn,
		JobLength:  dl,
		TFrac:      tstar,
		Load:       asn.MaxLoad(),
		Repairs:    repairs,
		Basis:      ws.lp2LastBasis,
	}, nil
}
