package rounding

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/sched"
)

// LP2Result is a rounded solution of (LP2) for disjoint chains (Section 4).
// The chains may cover only a subset of the instance's jobs (SUU-T solves
// one (LP2) per decomposition block); uncovered jobs get no assignment.
type LP2Result struct {
	// Assignment gives every covered job log mass ≥ 1 (capped ℓ′=min(ℓ,1)).
	Assignment *sched.Assignment
	// JobLength is d̂_j = max(1, max_i x̂_ij) for covered jobs, 0 otherwise.
	JobLength []int64
	// TFrac is the LP optimum t*, which Lemma 5 lower-bounds against
	// O(E[T_OPT]).
	TFrac float64
	// Load is the max machine load of the rounded assignment.
	Load int64
	// Repairs counts post-rounding fix-up steps (0 in practice).
	Repairs int
}

// SolveLP2 solves the relaxation of (LP2):
//
//	min t  s.t.  Σ_i ℓ′_ij x_ij ≥ 1 (j covered),  Σ_j x_ij ≤ t (i),
//	             Σ_{j∈C_k} d_j ≤ t (C_k),  x_ij ≤ d_j,  d_j ≥ 1,  x ≥ 0,
//
// with ℓ′ = min(ℓ, 1). The d_j ≥ 1 bound is folded in by the substitution
// d_j = 1 + e_j, e_j ≥ 0, which spares n artificial variables. It returns
// the fractional x*[i][pos] and d*[pos] indexed by position in the
// flattened chain order, the flattened job list, and t*.
func SolveLP2(ins *model.Instance, chains []dag.Chain) ([][]float64, []float64, []int, float64, error) {
	return solveLP2(ins, chains, lp.NewSolver())
}

// solveLP2 is SolveLP2 on the given solver workspace, so cache-miss
// computes inside a Monte Carlo worker reuse the worker's tableau.
func solveLP2(ins *model.Instance, chains []dag.Chain, sv *lp.Solver) ([][]float64, []float64, []int, float64, error) {
	m := ins.M
	var jobs []int
	seen := make(map[int]bool)
	for _, c := range chains {
		for _, j := range c {
			if j < 0 || j >= ins.N {
				return nil, nil, nil, 0, fmt.Errorf("rounding: chain job %d out of range", j)
			}
			if seen[j] {
				return nil, nil, nil, 0, fmt.Errorf("rounding: job %d appears in two chains", j)
			}
			seen[j] = true
			jobs = append(jobs, j)
		}
	}
	k := len(jobs)
	if k == 0 {
		return make([][]float64, m), nil, nil, 0, nil
	}
	posOf := make(map[int]int, k)
	for pos, j := range jobs {
		posOf[j] = pos
	}
	// Variables: x_{i,pos} at i*k+pos, e_pos at m*k+pos (d = 1+e), t last.
	xv := func(i, pos int) int { return i*k + pos }
	ev := func(pos int) int { return m*k + pos }
	tv := m*k + k
	p := lp.NewProblem(m*k + k + 1)
	p.C[tv] = 1
	for pos, j := range jobs {
		var terms []lp.Term
		for i := 0; i < m; i++ {
			if l := math.Min(ins.L[i][j], 1); l > 0 {
				terms = append(terms, lp.Term{Var: xv(i, pos), Coef: l})
			}
		}
		if len(terms) == 0 {
			return nil, nil, nil, 0, fmt.Errorf("rounding: job %d has zero log failure on every machine", j)
		}
		p.AddConstraint(terms, lp.GE, 1)
	}
	for i := 0; i < m; i++ {
		terms := make([]lp.Term, 0, k+1)
		for pos := 0; pos < k; pos++ {
			terms = append(terms, lp.Term{Var: xv(i, pos), Coef: 1})
		}
		terms = append(terms, lp.Term{Var: tv, Coef: -1})
		p.AddConstraint(terms, lp.LE, 0)
	}
	for _, c := range chains {
		terms := make([]lp.Term, 0, len(c)+1)
		for _, j := range c {
			terms = append(terms, lp.Term{Var: ev(posOf[j]), Coef: 1})
		}
		terms = append(terms, lp.Term{Var: tv, Coef: -1})
		// Σ (1+e_j) ≤ t  ⇔  Σ e_j − t ≤ −|C_k|.
		p.AddConstraint(terms, lp.LE, -float64(len(c)))
	}
	for i := 0; i < m; i++ {
		for pos := 0; pos < k; pos++ {
			// x_ij ≤ d_j = 1 + e_j.
			p.AddConstraint([]lp.Term{{Var: xv(i, pos), Coef: 1}, {Var: ev(pos), Coef: -1}}, lp.LE, 1)
		}
	}
	sol, err := sv.Solve(p)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("rounding: LP2 solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, nil, nil, 0, fmt.Errorf("rounding: LP2 status %v", sol.Status)
	}
	x := make([][]float64, m)
	for i := 0; i < m; i++ {
		x[i] = sol.X[i*k : (i+1)*k]
	}
	dstar := make([]float64, k)
	for pos := 0; pos < k; pos++ {
		dstar[pos] = 1 + sol.X[ev(pos)]
	}
	return x, dstar, jobs, sol.Obj, nil
}

// RoundLP2 implements Lemma 6: the Lemma 2 rounding with per-job edge
// capacities ⌈6d*_j⌉ in the flow network, which keeps every chain's total
// length within a constant factor of t*.
func RoundLP2(ins *model.Instance, chains []dag.Chain) (*LP2Result, error) {
	return roundLP2(ins, chains, lp.NewSolver())
}

func roundLP2(ins *model.Instance, chains []dag.Chain, sv *lp.Solver) (*LP2Result, error) {
	xfrac, dstar, jobs, tstar, err := solveLP2(ins, chains, sv)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return &LP2Result{
			Assignment: sched.NewAssignment(ins.M, ins.N),
			JobLength:  make([]int64, ins.N),
		}, nil
	}
	edgeCap := func(pos, i int) int64 {
		return int64(math.Ceil(6*dstar[pos] - capEps))
	}
	asn, repairs, err := roundByFlow(ins, jobs, 1, xfrac, tstar, edgeCap)
	if err != nil {
		return nil, err
	}
	dl := make([]int64, ins.N)
	for _, j := range jobs {
		dl[j] = asn.JobLength(j)
		if dl[j] < 1 {
			dl[j] = 1
		}
	}
	return &LP2Result{
		Assignment: asn,
		JobLength:  dl,
		TFrac:      tstar,
		Load:       asn.MaxLoad(),
		Repairs:    repairs,
	}, nil
}
