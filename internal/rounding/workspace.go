package rounding

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/sched"
)

// Workspace is a per-goroutine LP engine for the paper's relaxations. It
// owns a reusable lp.Solver (one flat tableau, grown monotonically — see
// package lp), arenas for building the LP1/LP2 constraint rows without
// per-solve allocation, and the warm-start chain state for SEM's
// shrinking-subset / doubling-target re-solves.
//
// The warm chain works like this: after each LP1 solve the workspace
// remembers (instance, job list, target L, optimal basis). When the next
// solve asks for a subset of those jobs at target 2L — exactly how
// SUU-I-SEM's round k+1 relates to round k — the previous basis is
// remapped onto the new problem's columns (departed job columns dropped,
// cover and machine rows re-indexed) and handed to lp.Solver.SolveWarm,
// which skips phase 1 and repairs feasibility with dual pivots. Any other
// request solves cold. Begin resets the chain; call it at the start of
// each independent solve sequence (SEM does, once per subproblem) so state
// never leaks between Monte Carlo trials.
//
// A Workspace is not safe for concurrent use. Monte Carlo workers should
// each hold one for their whole trial stream; WorkspacePool hands them out.
type Workspace struct {
	solver *lp.Solver

	// problem-build arenas, reused across solves
	prob  lp.Problem
	cbuf  []float64
	terms []lp.Term
	hint  []int

	// warm chain: the previous LP1 solve this workspace can extend
	chainIns   *model.Instance
	chainJobs  []int
	chainL     float64
	chainBasis []int
	chainHash  uint64
	chainPos   []int32 // job id -> position in chainJobs, -1 otherwise
	newPos     []int32 // scratch: job id -> position in the current solve

	// LP2 cross-block warm chain (see solveLP2): the previous forest-
	// decomposition block this workspace solved, whose machine-row basis
	// seeds the next block's solve.
	lp2Ins       *model.Instance
	lp2Basis     []int
	lp2K         int    // previous block's flattened job count
	lp2Hash      uint64 // block-sequence history, keys chained cache entries
	lp2Jobs      []int  // flattened-job-list arena for buildLP2
	lp2LastBasis []int  // basis recorded by the most recent solveLP2

	// flow is the rounding scratch (group buffers, flow network, edge
	// list) roundByFlow reuses across trials.
	flow roundScratch
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{solver: lp.NewSolver()}
}

// Solver exposes the underlying LP solver (diagnostics: warm/cold counts).
func (ws *Workspace) Solver() *lp.Solver { return ws.solver }

// Begin resets the warm chain. Call it before the first solve of an
// independent re-solve sequence; solves before the next chain link is
// recorded run cold.
func (ws *Workspace) Begin() {
	if ws.chainIns != nil {
		for _, j := range ws.chainJobs {
			ws.chainPos[j] = -1
		}
	}
	ws.chainIns = nil
	ws.chainJobs = ws.chainJobs[:0]
	ws.chainBasis = nil
	ws.chainL = 0
	ws.chainHash = 0
}

// buildLP1 assembles the LP1(jobs, L) relaxation into the workspace's
// reusable Problem. The constraint structure matches SolveLP1's doc
// comment: variables x_{i,pos} at i*k+pos, t at m*k; cover rows first,
// then machine rows.
func (ws *Workspace) buildLP1(ins *model.Instance, jobs []int, L float64) (*lp.Problem, error) {
	k := len(jobs)
	m := ins.M
	nv := m*k + 1
	// Exact term count: one per positive capped rate, plus the machine
	// rows' k+1 terms each — so the arena never reallocates mid-build and
	// every constraint's Terms slice stays valid.
	nt := m * (k + 1)
	for _, j := range jobs {
		if j < 0 || j >= ins.N {
			return nil, fmt.Errorf("rounding: job %d out of range", j)
		}
		for i := 0; i < m; i++ {
			if math.Min(ins.L[i][j], L) > 0 {
				nt++
			}
		}
	}
	p := &ws.prob
	p.NumVars = nv
	ws.cbuf = growFloats(ws.cbuf, nv)
	p.C = ws.cbuf
	p.C[m*k] = 1
	p.Cons = p.Cons[:0]
	if cap(ws.terms) < nt {
		ws.terms = make([]lp.Term, 0, nt)
	}
	arena := ws.terms[:0]
	for pos, j := range jobs {
		start := len(arena)
		for i := 0; i < m; i++ {
			if l := math.Min(ins.L[i][j], L); l > 0 {
				arena = append(arena, lp.Term{Var: i*k + pos, Coef: l})
			}
		}
		if len(arena) == start {
			return nil, fmt.Errorf("rounding: job %d has zero log failure on every machine", j)
		}
		p.AddConstraint(arena[start:len(arena):len(arena)], lp.GE, L)
	}
	for i := 0; i < m; i++ {
		start := len(arena)
		for pos := 0; pos < k; pos++ {
			arena = append(arena, lp.Term{Var: i*k + pos, Coef: 1})
		}
		arena = append(arena, lp.Term{Var: m * k, Coef: -1})
		p.AddConstraint(arena[start:len(arena):len(arena)], lp.LE, 0)
	}
	ws.terms = arena[:0]
	return p, nil
}

// solveLP1 solves the LP1(jobs, L) relaxation on the workspace's solver.
// With warm true it warm-starts from the chain when (jobs, L) extends it
// (jobs ⊆ previous jobs, L = 2·previous L); correctness never depends on
// the hint — the solver falls back to a cold solve on any trouble. The
// returned x rows alias the Solution and stay valid until the caller drops
// them; the basis is what advanceChain and LP1Result.Basis carry.
func (ws *Workspace) solveLP1(ins *model.Instance, jobs []int, L float64, warm bool) ([][]float64, float64, []int, error) {
	if L <= 0 {
		return nil, 0, nil, fmt.Errorf("rounding: target L = %g must be positive", L)
	}
	k := len(jobs)
	if k == 0 {
		return make([][]float64, ins.M), 0, nil, nil
	}
	p, err := ws.buildLP1(ins, jobs, L)
	if err != nil {
		return nil, 0, nil, err
	}
	var sol *lp.Solution
	if warm && ws.chainCompatible(ins, jobs, L) {
		sol, err = ws.solver.SolveWarm(p, ws.buildHint(ins, jobs))
	} else {
		sol, err = ws.solver.Solve(p)
	}
	if err != nil {
		return nil, 0, nil, fmt.Errorf("rounding: LP1 solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, 0, nil, fmt.Errorf("rounding: LP1 status %v", sol.Status)
	}
	m := ins.M
	x := make([][]float64, m)
	for i := 0; i < m; i++ {
		x[i] = sol.X[i*k : (i+1)*k]
	}
	return x, sol.Obj, sol.Basis, nil
}

// chainCompatible reports whether (jobs, L) is the next link of the warm
// chain: same instance, jobs a subset of the chain's, target doubled.
func (ws *Workspace) chainCompatible(ins *model.Instance, jobs []int, L float64) bool {
	if ws.chainIns != ins || len(ws.chainBasis) == 0 || len(jobs) > len(ws.chainJobs) {
		return false
	}
	if d := L - 2*ws.chainL; d > 1e-12*L || d < -1e-12*L {
		return false
	}
	for _, j := range jobs {
		if ws.chainPos[j] < 0 {
			return false
		}
	}
	return true
}

// buildHint remaps the chain's basis onto the new problem's encoding:
// surviving jobs keep their columns and cover rows under new positions,
// departed jobs' entries become NoHint, machine rows shift with k, and the
// t variable maps to the new t.
func (ws *Workspace) buildHint(ins *model.Instance, jobs []int) []int {
	m := ins.M
	prevK, k := len(ws.chainJobs), len(jobs)
	if cap(ws.newPos) < ins.N {
		ws.newPos = make([]int32, ins.N)
	}
	np := ws.newPos[:ins.N]
	ws.newPos = np
	for _, j := range ws.chainJobs {
		np[j] = -1
	}
	for pos, j := range jobs {
		np[j] = int32(pos)
	}
	hint := resizeInts(ws.hint, k+m)
	ws.hint = hint
	tPrev := m * prevK
	for r := range hint {
		var prevRow int
		if r < k {
			prevRow = int(ws.chainPos[jobs[r]])
		} else {
			prevRow = prevK + (r - k)
		}
		e := ws.chainBasis[prevRow]
		h := lp.NoHint
		switch {
		case e == tPrev:
			h = m * k
		case e >= 0:
			i, pos := e/prevK, e%prevK
			if p2 := np[ws.chainJobs[pos]]; p2 >= 0 {
				h = i*k + int(p2)
			}
		default:
			rr := -1 - e
			if rr < prevK {
				if p2 := np[ws.chainJobs[rr]]; p2 >= 0 {
					h = -1 - int(p2)
				}
			} else if rr < prevK+m {
				h = -1 - (k + (rr - prevK))
			}
		}
		hint[r] = h
	}
	return hint
}

// advanceChain records (jobs, L, basis) as the new chain tail so the next
// solve on a subset at 2L can warm-start. A nil basis (empty job set)
// resets the chain instead — there is nothing to extend.
func (ws *Workspace) advanceChain(ins *model.Instance, jobs []int, L float64, basis []int) {
	if len(basis) == 0 || len(jobs) == 0 {
		ws.Begin()
		return
	}
	nextHash := chainMix(ws.chainHash, hashJobs(jobs), L)
	switch {
	case cap(ws.chainPos) < ins.N:
		ws.chainPos = make([]int32, ins.N)
		for i := range ws.chainPos {
			ws.chainPos[i] = -1
		}
	case ws.chainIns == ins:
		ws.chainPos = ws.chainPos[:ins.N]
		for _, j := range ws.chainJobs {
			ws.chainPos[j] = -1
		}
	default:
		ws.chainPos = ws.chainPos[:ins.N]
		for i := range ws.chainPos {
			ws.chainPos[i] = -1
		}
	}
	ws.chainJobs = append(ws.chainJobs[:0], jobs...)
	for pos, j := range jobs {
		ws.chainPos[j] = int32(pos)
	}
	ws.chainIns = ins
	ws.chainL = L
	ws.chainBasis = basis
	ws.chainHash = nextHash
}

// chainKeyHash is the cache-key hash for solving (jobs, …) as the next
// link of the current chain. With no chain history it equals the plain
// hashJobs key, so a chain's first (cold, deterministic) solve shares its
// cache entry with non-chained callers of the same subproblem.
func (ws *Workspace) chainKeyHash(jobs []int) uint64 {
	h := hashJobs(jobs)
	if ws.chainHash != 0 {
		h = mix2(ws.chainHash, h)
	}
	return h
}

// roundLP1 solves (warm-aware when warm is set) and applies the Lemma 2
// rounding; the result carries the LP basis for chain advancement.
func (ws *Workspace) roundLP1(ins *model.Instance, jobs []int, L float64, warm bool) (*LP1Result, error) {
	if len(jobs) == 0 {
		return &LP1Result{Assignment: sched.NewAssignment(ins.M, ins.N)}, nil
	}
	x, tstar, basis, err := ws.solveLP1(ins, jobs, L, warm)
	if err != nil {
		return nil, err
	}
	asn, repairs, err := roundByFlow(ins, jobs, L, x, tstar, nil, &ws.flow)
	if err != nil {
		return nil, err
	}
	return &LP1Result{
		Assignment: asn,
		TFrac:      tstar,
		Length:     asn.MaxLoad(),
		Repairs:    repairs,
		Basis:      basis,
	}, nil
}

// WorkspacePool hands out Workspaces to concurrent Monte Carlo workers.
// The zero value is ready to use; policies embed one next to their caches
// so each worker's trial stream reuses one solver workspace end to end.
type WorkspacePool struct {
	p sync.Pool
}

// Get returns a workspace, creating one if the pool is empty.
func (wp *WorkspacePool) Get() *Workspace {
	if ws, ok := wp.p.Get().(*Workspace); ok {
		return ws
	}
	return NewWorkspace()
}

// Put returns a workspace to the pool.
func (wp *WorkspacePool) Put(ws *Workspace) {
	if ws != nil {
		wp.p.Put(ws)
	}
}

// growFloats returns buf resized to n, zeroed, reusing its backing array
// when capacity allows.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// resizeInts returns buf resized to n WITHOUT zeroing reused capacity
// (unlike package lp's growInts) — the caller must overwrite every entry.
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
