// Package rounding implements the paper's LP relaxations and their
// roundings: (LP1) with Lemma 2 for independent jobs, and (LP2) with
// Lemma 6 for disjoint chains. Both roundings share the same skeleton —
// cap log failures at the target, group machines by powers of two,
// inflate-and-floor the group assignments, and extract an integral
// assignment as an integral maximum flow — and both come with defensive
// post-condition checks (mass and load) that repair any floating-point
// slop greedily, counting how often that was needed (never, in practice).
//
// Solving happens on per-goroutine Workspaces (one reusable lp.Solver
// tableau plus problem-build arenas); SEM's shrinking-subset/doubling-
// target round re-solves warm-start from the previous round's basis via
// the workspace's chain (see Workspace), and Cache memoizes rounded
// results under bounded, fixed-size keys.
package rounding

import (
	"fmt"
	"math"

	"repro/internal/maxflow"
	"repro/internal/model"
	"repro/internal/sched"
)

// capEps guards floor/ceil of LP values against floating-point slop:
// floor(6·2.9999999996) must be 18, not 17.
const capEps = 1e-7

// LP1Result is a rounded solution of LP1(jobs, L).
type LP1Result struct {
	// Assignment gives x̂_ij over the full instance (zero outside jobs).
	Assignment *sched.Assignment
	// TFrac is the optimal value t* of the LP relaxation, a lower bound
	// on tLP1 and hence (for L=1/2, all jobs) within O(1) of E[T_OPT]
	// by Lemma 1.
	TFrac float64
	// Length is the serialized schedule length, max machine load of the
	// rounded assignment (≤ ⌈6t*⌉ + repairs).
	Length int64
	// Repairs counts greedy post-rounding fix-up steps (0 in practice).
	Repairs int
	// Basis is the LP solver's optimal basis for the relaxation (see
	// lp.Solution.Basis), recorded so SEM can warm-start the next round's
	// re-solve. Nil when produced by a path that does not record it.
	Basis []int
}

// SolveLP1 solves the LP relaxation of LP1(jobs, L) from Section 3:
//
//	min t  s.t.  Σ_i ℓ′_ij·x_ij ≥ L (j ∈ jobs),  Σ_j x_ij ≤ t (i),  x ≥ 0,
//
// with ℓ′ = min(ℓ, L). It returns the fractional assignment x*[i][pos]
// (pos indexes the jobs slice) and t*. One-shot callers only; hot paths
// hold a Workspace (see workspace.go) so the tableau is reused.
func SolveLP1(ins *model.Instance, jobs []int, L float64) ([][]float64, float64, error) {
	x, tstar, _, err := NewWorkspace().solveLP1(ins, jobs, L, false)
	return x, tstar, err
}

// RoundLP1 implements Lemma 2: it solves the relaxation and rounds it to an
// integral assignment giving every job in jobs log mass at least L (under
// the capped ℓ′) with machine loads at most ⌈6t*⌉.
func RoundLP1(ins *model.Instance, jobs []int, L float64) (*LP1Result, error) {
	if len(jobs) == 0 {
		return &LP1Result{Assignment: sched.NewAssignment(ins.M, ins.N)}, nil
	}
	xfrac, tstar, err := SolveLP1(ins, jobs, L)
	if err != nil {
		return nil, err
	}
	return RoundFractional(ins, jobs, L, xfrac, tstar)
}

// RoundFractional applies the Lemma 2 rounding to an externally-computed
// fractional solution (x indexed [machine][position in jobs]) whose machine
// loads are at most tfrac. It is how approximate solvers (the MWU engine)
// plug into the same rounding pipeline as the exact simplex.
func RoundFractional(ins *model.Instance, jobs []int, L float64, xfrac [][]float64, tfrac float64) (*LP1Result, error) {
	if len(jobs) == 0 {
		return &LP1Result{Assignment: sched.NewAssignment(ins.M, ins.N)}, nil
	}
	asn, repairs, err := roundByFlow(ins, jobs, L, xfrac, tfrac, nil, nil)
	if err != nil {
		return nil, err
	}
	return &LP1Result{
		Assignment: asn,
		TFrac:      tfrac,
		Length:     asn.MaxLoad(),
		Repairs:    repairs,
	}, nil
}

// RoundFractionalNaive rounds an externally-computed fractional solution by
// independent per-entry ceilings (x̂ = ⌈6x⌉ where x > 0) — the ablation
// baseline for Lemma 2. Spread-out solutions (like the MWU engine's)
// inflate machine loads by up to one step per positive entry.
func RoundFractionalNaive(ins *model.Instance, jobs []int, L float64, xfrac [][]float64, tfrac float64) (*LP1Result, error) {
	asn := sched.NewAssignment(ins.M, ins.N)
	for i := 0; i < ins.M; i++ {
		for pos, j := range jobs {
			if xfrac[i][pos] > 1e-12 {
				asn.X[i][j] = int64(math.Ceil(6*xfrac[i][pos] - capEps))
			}
		}
	}
	repairs, err := repairMass(ins, jobs, L, asn)
	if err != nil {
		return nil, err
	}
	return &LP1Result{Assignment: asn, TFrac: tfrac, Length: asn.MaxLoad(), Repairs: repairs}, nil
}

// repairMass greedily tops up any job whose capped mass fell below L,
// returning the number of added steps (0 in practice for valid inputs).
func repairMass(ins *model.Instance, jobs []int, L float64, asn *sched.Assignment) (int, error) {
	repairs := 0
	for _, j := range jobs {
		mass, best, bestL := 0.0, -1, 0.0
		for i := 0; i < ins.M; i++ {
			l := math.Min(ins.L[i][j], L)
			mass += l * float64(asn.X[i][j])
			if l > bestL {
				best, bestL = i, l
			}
		}
		if mass+1e-9 >= L {
			continue
		}
		if best < 0 {
			return repairs, fmt.Errorf("rounding: job %d unroundable", j)
		}
		steps := int64(math.Ceil((L - mass) / bestL))
		asn.X[best][j] += steps
		repairs += int(steps)
	}
	return repairs, nil
}

// groupOf buckets a capped log failure by ⌊log₂ ℓ′⌋.
func groupOf(l float64) int {
	return int(math.Floor(math.Log2(l) + 1e-12))
}

// roundScratch is the reusable state of roundByFlow: the group-sum window
// and entry list, the flow network, and the edge list. Threaded through
// rounding.Workspace so the Monte Carlo trial loop's rounding path stops
// allocating (the returned Assignment is the one allocation left — results
// are cached and shared across trials, so their storage must escape).
type roundScratch struct {
	ent   []groupEntry
	acc   []float64
	graph maxflow.Graph
	edges []flowEdge
}

// groupEntry is one (job position, power-of-two group) sum, emitted in
// pos-major, group-ascending order — the same order the pre-workspace
// implementation produced by sorting its map keys, so integral flows (and
// hence assignments) are byte-identical.
type groupEntry struct {
	pos, g int32
	sum    float64
}

type flowEdge struct {
	id  int32
	i   int32
	pos int32
}

// roundByFlow performs the shared grouping + flow rounding of Lemmas 2
// and 6. edgeCap, if non-nil, bounds the per-(job,machine) assignment (the
// ⌈6d*_j⌉ caps of Lemma 6); nil means uncapacitated (Lemma 2). scratch may
// be nil (one-shot callers); hot paths pass their workspace's.
func roundByFlow(ins *model.Instance, jobs []int, L float64, xfrac [][]float64, tstar float64, edgeCap func(pos, i int) int64, scratch *roundScratch) (*sched.Assignment, int, error) {
	m := ins.M
	if scratch == nil {
		scratch = &roundScratch{}
	}

	// Group the fractional assignment: D[pos][g] = Σ over machines i with
	// ⌊log₂ ℓ′_ij⌋ = g of x*_{i,pos}. The group range is data-bounded
	// (ℓ′ ∈ (0, L]), so a dense window indexed g−gmin replaces the old
	// map: pass 1 finds the range, pass 2 accumulates one job at a time
	// (machine-ascending, matching the map version's addition order) and
	// emits nonzero sums in group order.
	gmin, gmax := 0, 0
	haveRange := false
	for pos, j := range jobs {
		for i := 0; i < m; i++ {
			if xfrac[i][pos] <= 0 {
				continue
			}
			l := math.Min(ins.L[i][j], L)
			if l <= 0 {
				continue
			}
			g := groupOf(l)
			if !haveRange {
				gmin, gmax, haveRange = g, g, true
			} else if g < gmin {
				gmin = g
			} else if g > gmax {
				gmax = g
			}
		}
	}
	width := 0
	if haveRange {
		width = gmax - gmin + 1
	}
	acc := growFloats(scratch.acc, width)
	scratch.acc = acc
	ent := scratch.ent[:0]
	for pos, j := range jobs {
		for i := 0; i < m; i++ {
			if xfrac[i][pos] <= 0 {
				continue
			}
			l := math.Min(ins.L[i][j], L)
			if l <= 0 {
				continue
			}
			acc[groupOf(l)-gmin] += xfrac[i][pos]
		}
		for g := 0; g < width; g++ {
			if acc[g] != 0 {
				ent = append(ent, groupEntry{pos: int32(pos), g: int32(g + gmin), sum: acc[g]})
				acc[g] = 0
			}
		}
	}
	scratch.ent = ent

	// Build the flow network: s → u_{j,g} → v_i → w.
	// Node ids: s=0, w=1, machines 2..m+1, groups m+2...
	// Edge count upper bound: one per machine to the sink, plus per group
	// node one source edge and at most m machine edges.
	g := &scratch.graph
	g.Reset(2 + m + len(ent))
	g.Reserve(m + len(ent)*(1+m))
	const s, w = 0, 1
	machineNode := func(i int) int { return 2 + i }
	loadCap := int64(math.Ceil(6*tstar - capEps))
	if loadCap < 0 {
		loadCap = 0
	}
	for i := 0; i < m; i++ {
		if _, err := g.AddEdge(machineNode(i), w, loadCap); err != nil {
			return nil, 0, err
		}
	}
	edges := scratch.edges[:0]
	next := 2 + m
	var want int64 // total source capacity; the lemma guarantees it routes
	for _, key := range ent {
		capV := int64(math.Floor(6*key.sum + capEps))
		if capV <= 0 {
			continue
		}
		node := next
		next++
		if _, err := g.AddEdge(s, node, capV); err != nil {
			return nil, 0, err
		}
		want += capV
		j := jobs[key.pos]
		for i := 0; i < m; i++ {
			l := math.Min(ins.L[i][j], L)
			if l <= 0 || groupOf(l) != int(key.g) {
				continue
			}
			c := maxflow.Inf
			if edgeCap != nil {
				c = edgeCap(int(key.pos), i)
			}
			if c <= 0 {
				continue
			}
			id, err := g.AddEdge(node, machineNode(i), c)
			if err != nil {
				return nil, 0, err
			}
			edges = append(edges, flowEdge{int32(id), int32(i), key.pos})
		}
	}
	scratch.edges = edges
	got := g.MaxFlow(s, w)
	_ = want // got may fall short only through float slop; repairs below cover it.

	asn := sched.NewAssignment(m, ins.N)
	for _, e := range edges {
		asn.X[e.i][jobs[e.pos]] += g.Flow(int(e.id))
	}

	// Post-conditions (Lemma 2): every job has capped mass ≥ L. Repair any
	// shortfall greedily on the job's most effective machine.
	repairs := 0
	for _, j := range jobs {
		mass := 0.0
		best, bestL := -1, 0.0
		for i := 0; i < m; i++ {
			l := math.Min(ins.L[i][j], L)
			mass += l * float64(asn.X[i][j])
			if l > bestL {
				best, bestL = i, l
			}
		}
		if mass+1e-9 >= L {
			continue
		}
		if best < 0 {
			return nil, repairs, fmt.Errorf("rounding: job %d unroundable (no positive rate)", j)
		}
		steps := int64(math.Ceil((L - mass) / bestL))
		asn.X[best][j] += steps
		repairs += int(steps)
	}
	_ = got
	return asn, repairs, nil
}
