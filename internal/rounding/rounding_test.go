package rounding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/model"
)

func randomInstance(rng *rand.Rand, m, n int, g *dag.DAG) *model.Instance {
	q := make([][]float64, m)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = 0.02 + 0.96*rng.Float64()
		}
	}
	ins, err := model.New(m, n, q, g)
	if err != nil {
		panic(err)
	}
	return ins
}

func TestSolveLP1SingleJob(t *testing.T) {
	// One machine, one job, q=0.5 (ℓ=1), L=1/2: ℓ'=1/2, so x ≥ 1 ⇒ t*=1.
	ins, err := model.New(1, 1, [][]float64{{0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, tstar, err := SolveLP1(ins, []int{0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tstar-1) > 1e-6 || math.Abs(x[0][0]-1) > 1e-6 {
		t.Fatalf("t*=%g x=%g, want 1, 1", tstar, x[0][0])
	}
}

func TestSolveLP1SplitsLoad(t *testing.T) {
	// Two identical machines, two identical jobs with ℓ = L = 1:
	// each job needs one step; optimum t* = 1 (machine i takes job i).
	ins, err := model.New(2, 2, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, tstar, err := SolveLP1(ins, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tstar-1) > 1e-6 {
		t.Fatalf("t* = %g, want 1", tstar)
	}
}

func TestSolveLP1Errors(t *testing.T) {
	ins, _ := model.New(1, 1, [][]float64{{0.5}}, nil)
	if _, _, err := SolveLP1(ins, []int{0}, 0); err == nil {
		t.Fatal("L=0 must error")
	}
	if _, _, err := SolveLP1(ins, []int{5}, 1); err == nil {
		t.Fatal("bad job must error")
	}
}

func checkLP1Post(t *testing.T, ins *model.Instance, jobs []int, L float64, r *LP1Result) {
	t.Helper()
	inSet := make(map[int]bool)
	for _, j := range jobs {
		inSet[j] = true
	}
	for _, j := range jobs {
		mass := 0.0
		for i := 0; i < ins.M; i++ {
			mass += math.Min(ins.L[i][j], L) * float64(r.Assignment.X[i][j])
		}
		if mass+1e-6 < L {
			t.Fatalf("job %d rounded mass %g < L=%g", j, mass, L)
		}
	}
	for j := 0; j < ins.N; j++ {
		if inSet[j] {
			continue
		}
		for i := 0; i < ins.M; i++ {
			if r.Assignment.X[i][j] != 0 {
				t.Fatalf("job %d outside subset has assignment", j)
			}
		}
	}
	loadBound := int64(math.Ceil(6*r.TFrac-1e-7)) + int64(r.Repairs)
	for i := 0; i < ins.M; i++ {
		if l := r.Assignment.Load(i); l > loadBound {
			t.Fatalf("machine %d load %d exceeds ⌈6t*⌉+repairs = %d (t*=%g)",
				i, l, loadBound, r.TFrac)
		}
	}
}

func TestRoundLP1PostConditions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(5), 1+rng.Intn(8)
		ins := randomInstance(rng, m, n, nil)
		// Random subset and a target from the SEM doubling family.
		var jobs []int
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				jobs = append(jobs, j)
			}
		}
		if len(jobs) == 0 {
			jobs = []int{0}
		}
		L := math.Pow(2, float64(rng.Intn(5)-1)) // 1/2 .. 8
		r, err := RoundLP1(ins, jobs, L)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		checkLP1Post(t, ins, jobs, L, r)
		if r.Repairs > 0 {
			t.Logf("seed %d: %d repairs (unexpected but tolerated)", seed, r.Repairs)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundLP1EmptySubset(t *testing.T) {
	ins, _ := model.New(1, 2, [][]float64{{0.5, 0.5}}, nil)
	r, err := RoundLP1(ins, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length != 0 || r.TFrac != 0 {
		t.Fatalf("empty subset should be trivial, got %+v", r)
	}
}

func TestRoundLP1HeterogeneousMachines(t *testing.T) {
	// Specialist structure: machine i is good at job i, terrible at the
	// other. The LP must route each job to its specialist; load stays ~1.
	q := [][]float64{
		{0.01, 0.999},
		{0.999, 0.01},
	}
	ins, err := model.New(2, 2, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RoundLP1(ins, []int{0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkLP1Post(t, ins, []int{0, 1}, 0.5, r)
	if r.TFrac > 1+1e-6 {
		t.Fatalf("t* = %g; specialists should give t* ≤ 1", r.TFrac)
	}
}

func TestCacheHitsAndEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ins := randomInstance(rng, 3, 5, nil)
	c := NewCache()
	a, err := c.RoundLP1(ins, []int{0, 1, 2, 3, 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.RoundLP1(ins, []int{0, 1, 2, 3, 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache should return the identical result")
	}
	if c.Len() != 1 {
		t.Fatalf("cache len %d", c.Len())
	}
	// Different L is a different key.
	if _, err := c.RoundLP1(ins, []int{0, 1, 2, 3, 4}, 1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache len %d", c.Len())
	}
	// Nil cache passes through.
	var nilCache *Cache
	if _, err := nilCache.RoundLP1(ins, []int{0}, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveRoundingLoadBlowup(t *testing.T) {
	// A spread-out fractional optimum: many jobs, one fast machine and
	// many mediocre ones. Naive per-entry ceiling inflates load well
	// beyond the flow rounding on at least some machine.
	rng := rand.New(rand.NewSource(9))
	m, n := 6, 24
	ins := randomInstance(rng, m, n, nil)
	jobs := make([]int, n)
	for j := range jobs {
		jobs[j] = j
	}
	flow, err := RoundLP1(ins, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RoundLP1Naive(ins, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkLP1Post(t, ins, jobs, 0.5, flow)
	// Naive must still satisfy mass, but its load bound is weaker.
	for _, j := range jobs {
		mass := 0.0
		for i := 0; i < m; i++ {
			mass += math.Min(ins.L[i][j], 0.5) * float64(naive.Assignment.X[i][j])
		}
		if mass+1e-6 < 0.5 {
			t.Fatalf("naive rounding broke mass for job %d", j)
		}
	}
	if naive.Length < flow.Length {
		t.Logf("note: naive length %d < flow length %d on this instance",
			naive.Length, flow.Length)
	}
}

func chainsOf(n, per int) (*dag.DAG, []dag.Chain) {
	g := dag.New(n)
	var chains []dag.Chain
	for s := 0; s < n; s += per {
		var c dag.Chain
		for j := s; j < s+per && j < n; j++ {
			if j > s {
				g.MustEdge(j-1, j)
			}
			c = append(c, j)
		}
		chains = append(chains, c)
	}
	return g, chains
}

func TestRoundLP2PostConditions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		per := 1 + rng.Intn(4)
		nc := 1 + rng.Intn(4)
		n := per * nc
		g, chains := chainsOf(n, per)
		ins := randomInstance(rng, m, n, g)
		r, err := RoundLP2(ins, chains)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Mass ≥ 1 under capped ℓ'.
		for j := 0; j < n; j++ {
			mass := 0.0
			for i := 0; i < m; i++ {
				mass += math.Min(ins.L[i][j], 1) * float64(r.Assignment.X[i][j])
			}
			if mass+1e-6 < 1 {
				t.Logf("seed %d: job %d mass %g < 1", seed, j, mass)
				return false
			}
		}
		// Load ≤ ⌈6t*⌉ + repairs.
		bound := int64(math.Ceil(6*r.TFrac-1e-7)) + int64(r.Repairs)
		for i := 0; i < m; i++ {
			if r.Assignment.Load(i) > bound {
				t.Logf("seed %d: load %d > %d", seed, r.Assignment.Load(i), bound)
				return false
			}
		}
		// Chain length ≤ 7t* + repairs (Lemma 6's accounting).
		for _, c := range chains {
			var sum int64
			for _, j := range c {
				if r.JobLength[j] < 1 {
					t.Logf("seed %d: job %d length %d < 1", seed, j, r.JobLength[j])
					return false
				}
				sum += r.JobLength[j]
			}
			if float64(sum) > 7*r.TFrac+float64(r.Repairs)+1e-6 {
				t.Logf("seed %d: chain length %d > 7t*=%g", seed, sum, 7*r.TFrac)
				return false
			}
		}
		// Per-job length cap from the flow edge capacities.
		for j := 0; j < n; j++ {
			if r.Assignment.JobLength(j) > r.JobLength[j] {
				t.Logf("seed %d: job %d length inconsistent", seed, j)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundLP2Errors(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(1)), 2, 4, nil)
	// Duplicate job.
	if _, err := RoundLP2(ins, []dag.Chain{{0, 1}, {1, 2, 3}}); err == nil {
		t.Fatal("duplicate job must error")
	}
	// Out of range.
	if _, err := RoundLP2(ins, []dag.Chain{{0, 1, 2, 7}}); err == nil {
		t.Fatal("out-of-range job must error")
	}
}

func TestRoundLP2Subset(t *testing.T) {
	// Chains covering only jobs {0,1}: job 2 and 3 must stay unassigned
	// (this is how SUU-T rounds one decomposition block at a time).
	ins := randomInstance(rand.New(rand.NewSource(4)), 2, 4, nil)
	r, err := RoundLP2(ins, []dag.Chain{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if r.Assignment.X[i][2] != 0 || r.Assignment.X[i][3] != 0 {
			t.Fatal("uncovered jobs must have zero assignment")
		}
	}
	if r.JobLength[2] != 0 || r.JobLength[3] != 0 {
		t.Fatal("uncovered jobs must have zero length")
	}
	if r.JobLength[0] < 1 || r.JobLength[1] < 1 {
		t.Fatal("covered jobs must have length ≥ 1")
	}
	// Empty chain list is trivial.
	r2, err := RoundLP2(ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Load != 0 {
		t.Fatal("empty chains should yield empty assignment")
	}
}

func TestLP2CacheReuse(t *testing.T) {
	g, chains := chainsOf(4, 2)
	ins := randomInstance(rand.New(rand.NewSource(6)), 2, 4, g)
	c := NewLP2Cache()
	a, err := c.RoundLP2(ins, chains)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.RoundLP2(ins, chains)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("LP2 cache should return the identical result")
	}
	var nilCache *LP2Cache
	if _, err := nilCache.RoundLP2(ins, chains); err != nil {
		t.Fatal(err)
	}
}

func TestLP2LowerBoundSanity(t *testing.T) {
	// A chain of length 5 with perfect machines still needs ≥ 5 steps:
	// t* must be at least the chain length.
	g, chains := chainsOf(5, 5)
	q := [][]float64{{0.01, 0.01, 0.01, 0.01, 0.01}}
	ins, err := model.New(1, 5, q, g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, tstar, err := SolveLP2(ins, chains)
	if err != nil {
		t.Fatal(err)
	}
	if tstar < 5-1e-6 {
		t.Fatalf("t* = %g < chain length 5", tstar)
	}
}

func TestGroupOf(t *testing.T) {
	cases := []struct {
		l    float64
		want int
	}{
		{1, 0}, {0.5, -1}, {0.25, -2}, {2, 1}, {3, 1}, {0.75, -1},
	}
	for _, c := range cases {
		if got := groupOf(c.l); got != c.want {
			t.Errorf("groupOf(%g) = %d, want %d", c.l, got, c.want)
		}
	}
}
