package rounding

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/workload"
)

// forestBlocks generates a forest instance and its heavy-path
// decomposition — the exact block sequence SUU-T runs (LP2) over.
func forestBlocks(t *testing.T, seed int64) (*model.Instance, [][]dag.Chain) {
	t.Helper()
	ins, err := workload.Generate(workload.Spec{Family: "forest", M: 8, N: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ins.Prec.DecomposeForest()
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][]dag.Chain
	for _, b := range raw {
		blocks = append(blocks, []dag.Chain(b))
	}
	return ins, blocks
}

// TestLP2CrossBlockWarmMatchesCold drives one workspace through a forest
// decomposition's block sequence — SUU-T's exact access pattern — with the
// LP2 cross-block warm chain engaged, and checks every block's t* against
// a cold standalone solve of the identical block. The warm path must
// actually be attempted on the non-first blocks (lp2Compatible), or the
// test proves nothing.
func TestLP2CrossBlockWarmMatchesCold(t *testing.T) {
	for seed := int64(3); seed < 6; seed++ {
		ins, blocks := forestBlocks(t, seed)
		if len(blocks) < 2 {
			continue
		}
		ws := NewWorkspace()
		ws.BeginLP2()
		attempts := 0
		for bi, block := range blocks {
			if len(block) == 0 {
				continue
			}
			before := ws.solver.WarmSolves + ws.solver.WarmFallbacks
			_, _, jobs, tWarm, err := ws.solveLP2(ins, block)
			if err != nil {
				t.Fatalf("seed %d block %d: %v", seed, bi, err)
			}
			if ws.solver.WarmSolves+ws.solver.WarmFallbacks > before {
				attempts++
			}
			k := len(jobs)
			h, _ := hashChains(block)
			ws.advanceLP2(ins, ws.lp2LastBasis, k, h)
			_, _, _, tCold, err := NewWorkspace().solveLP2(ins, block)
			if err != nil {
				t.Fatalf("seed %d block %d cold: %v", seed, bi, err)
			}
			if diff := math.Abs(tWarm - tCold); diff > 1e-6*(1+math.Abs(tCold)) {
				t.Fatalf("seed %d block %d: chained t* = %.9g, cold t* = %.9g (diff %g)",
					seed, bi, tWarm, tCold, diff)
			}
		}
		if attempts == 0 {
			t.Fatalf("seed %d: LP2 warm path never attempted across %d blocks", seed, len(blocks))
		}
	}
}

// TestLP2ChainedCacheDeterministic: replaying a block sequence through
// RoundLP2Ws — cold, populating the cache, then from the cache — must give
// byte-identical assignments, the property SUU-T's Monte Carlo determinism
// across worker counts rests on.
func TestLP2ChainedCacheDeterministic(t *testing.T) {
	ins, blocks := forestBlocks(t, 4)
	if len(blocks) < 2 {
		t.Skip("decomposition produced a single block")
	}
	run := func(c *LP2Cache) []*LP2Result {
		ws := NewWorkspace()
		ws.BeginLP2()
		var out []*LP2Result
		for _, block := range blocks {
			r, err := c.RoundLP2Ws(ws, ins, block)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
		return out
	}
	base := run(nil)
	cache := NewLP2Cache()
	first := run(cache)  // populates the cache
	second := run(cache) // replays from the cache
	for bi := range blocks {
		for _, other := range [][]*LP2Result{first, second} {
			a, b := base[bi].Assignment, other[bi].Assignment
			for i := 0; i < a.M; i++ {
				for j := 0; j < a.N; j++ {
					if a.X[i][j] != b.X[i][j] {
						t.Fatalf("block %d: assignment diverges at machine %d job %d: %d vs %d",
							bi, i, j, a.X[i][j], b.X[i][j])
					}
				}
			}
		}
	}
}
