package rounding

// Cross-request concurrency audit (PR 4): the service layer drives one
// Cache and one WorkspacePool from many concurrent requests. These tests
// hammer that sharing directly — the package-level half of the audit
// whose policy-level half lives in internal/core/concurrent_test.go.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestConcurrentCacheAndPool(t *testing.T) {
	ins, err := workload.IndependentUniform(rand.New(rand.NewSource(9)), 4, 12, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	var pool WorkspacePool

	fullSet := make([]int, ins.N)
	for j := range fullSet {
		fullSet[j] = j
	}
	// A handful of fixed subsets so goroutines collide on keys constantly.
	subsets := [][]int{fullSet, {0, 1, 2}, {3, 4, 5, 6}, {0, 2, 4, 6, 8, 10}, {7, 8, 9, 10, 11}}

	// Reference values computed serially first.
	want := make([]float64, len(subsets))
	for i, jobs := range subsets {
		r, err := RoundLP1(ins, jobs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.TFrac
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				jobs := subsets[(g+i)%len(subsets)]
				ws := pool.Get()
				ws.Begin()
				r, err := cache.RoundLP1Ws(ws, ins, jobs, 0.5)
				pool.Put(ws)
				if err != nil {
					errCh <- err
					return
				}
				if r.TFrac != want[(g+i)%len(subsets)] {
					t.Errorf("goroutine %d iter %d: t* = %v, serial reference %v", g, i, r.TFrac, want[(g+i)%len(subsets)])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if cache.Len() == 0 || cache.Len() > cache.Cap() {
		t.Fatalf("cache len %d outside (0, %d]", cache.Len(), cache.Cap())
	}
}

func TestConcurrentLP2Cache(t *testing.T) {
	ins, err := workload.Chains(rand.New(rand.NewSource(10)), 4, 12, 4, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	chains, err := ins.Chains()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RoundLP2(ins, chains)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewLP2Cache()
	var pool WorkspacePool
	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ws := pool.Get()
				ws.BeginLP2()
				r, err := cache.RoundLP2Ws(ws, ins, chains)
				pool.Put(ws)
				if err != nil {
					errCh <- err
					return
				}
				if r.TFrac != ref.TFrac {
					t.Errorf("t* = %v, serial reference %v", r.TFrac, ref.TFrac)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
