package rounding

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// shrinkChain drives a workspace through SEM's exact access pattern —
// solve on a job set, drop a random subset, double the target — and at
// every link compares the (possibly warm-started) objective against a cold
// solve of the identical problem.
func shrinkChain(t *testing.T, ins *model.Instance, rng *rand.Rand, rounds int) (warm, total int) {
	t.Helper()
	ws := NewWorkspace()
	ws.Begin()
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	L := 0.5
	for round := 1; round <= rounds && len(jobs) > 0; round++ {
		warmBefore := ws.Solver().WarmSolves
		_, tstar, basis, err := ws.solveLP1(ins, jobs, L, true)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if ws.Solver().WarmSolves > warmBefore {
			warm++
		}
		total++
		_, tcold, err := SolveLP1(ins, jobs, L)
		if err != nil {
			t.Fatalf("round %d cold: %v", round, err)
		}
		if diff := math.Abs(tstar - tcold); diff > 1e-6*(1+math.Abs(tcold)) {
			t.Fatalf("round %d (k=%d, L=%g): warm t* = %.9g, cold t* = %.9g (diff %g)",
				round, len(jobs), L, tstar, tcold, diff)
		}
		ws.advanceChain(ins, jobs, L, basis)
		// Survivors: each job kept with probability 0.35 (SEM's doubly
		// exponential survivor decay is even steeper; this keeps chains
		// alive a few rounds longer to exercise more warm links).
		var surv []int
		for _, j := range jobs {
			if rng.Float64() < 0.35 {
				surv = append(surv, j)
			}
		}
		jobs = surv
		L *= 2
	}
	return warm, total
}

// TestWarmMatchesColdAcrossFamilies is the LP1 warm-start property test:
// across shrinking-subset/doubling-target chains on every Table-1 family —
// including the degenerate specialist family, whose exactly-tied rates
// make every warm install land on a massively degenerate face — the
// warm-started solve's t* must match the cold solve's to 1e-6, and the
// warm path must actually engage, or the test proves nothing.
func TestWarmMatchesColdAcrossFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	warm, total := 0, 0
	for _, family := range []string{"uniform", "skill", "specialist", "specialist-degen", "volunteer"} {
		for rep := 0; rep < 3; rep++ {
			ins, err := workload.Generate(workload.Spec{
				Family: family, M: 8, N: 24, Seed: int64(100*rep + 7), Groups: 4,
			})
			if err != nil {
				t.Fatalf("%s: %v", family, err)
			}
			w, n := shrinkChain(t, ins, rng, 5)
			warm += w
			total += n
		}
	}
	if warm == 0 {
		t.Fatalf("warm path never engaged across %d chain links", total)
	}
	t.Logf("warm solves on %d of %d chain links", warm, total)
}

// TestChainedRoundingDeterministic: RoundLP1Chained must give byte-identical
// assignments for identical chains, with or without a cache in between —
// the property Monte Carlo determinism across worker counts rests on.
func TestChainedRoundingDeterministic(t *testing.T) {
	ins, err := workload.Generate(workload.Spec{Family: "uniform", M: 6, N: 18, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	chain := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17},
		{1, 4, 7, 11, 16},
		{4, 11},
	}
	run := func(c *Cache) []*LP1Result {
		ws := NewWorkspace()
		ws.Begin()
		var out []*LP1Result
		L := 0.5
		for _, jobs := range chain {
			r, err := c.RoundLP1Chained(ws, ins, jobs, L)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
			L *= 2
		}
		return out
	}
	base := run(nil)
	cache := NewCache()
	first := run(cache)  // populates the cache
	second := run(cache) // replays from the cache
	for li := range chain {
		for _, other := range [][]*LP1Result{first, second} {
			a, b := base[li].Assignment, other[li].Assignment
			for i := 0; i < ins.M; i++ {
				for j := 0; j < ins.N; j++ {
					if a.X[i][j] != b.X[i][j] {
						t.Fatalf("link %d: assignment diverges at machine %d job %d: %d vs %d",
							li, i, j, a.X[i][j], b.X[i][j])
					}
				}
			}
		}
	}
}

// TestCacheBounded hammers the cache with random per-trial job subsets —
// SEM's insertion pattern over a long Monte Carlo run — and asserts the
// entry count stays bounded and the pinned full-set entry survives.
func TestCacheBounded(t *testing.T) {
	ins, err := workload.Generate(workload.Spec{Family: "uniform", M: 4, N: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const capEntries = 64
	c := NewCacheCap(capEntries)
	ws := NewWorkspace()
	full := make([]int, ins.N)
	for j := range full {
		full[j] = j
	}
	if _, err := c.RoundLP1Ws(ws, ins, full, 0.5); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	jobs := make([]int, 0, ins.N)
	for trial := 0; trial < 10000; trial++ {
		jobs = jobs[:0]
		for j := 0; j < ins.N; j++ {
			if rng.Intn(2) == 0 {
				jobs = append(jobs, j)
			}
		}
		if len(jobs) == 0 {
			jobs = append(jobs, rng.Intn(ins.N))
		}
		// Random doubling targets reduce cross-trial key collisions so the
		// stress actually exercises eviction.
		l := math.Pow(2, float64(rng.Intn(6)-1))
		if _, err := c.RoundLP1Ws(ws, ins, jobs, l); err != nil {
			t.Fatal(err)
		}
		if got := c.Len(); got > capEntries {
			t.Fatalf("trial %d: cache grew to %d entries, cap %d", trial, got, capEntries)
		}
	}
	// The pinned full-set entry must have survived every eviction sweep.
	key := cacheKey{ins: ins, l: 0.5, n: ins.N, h: hashJobs(full)}
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if !ok || !e.pinned {
		t.Fatalf("pinned full-set entry evicted (present=%v)", ok)
	}
	if c.Len() < capEntries/2 {
		t.Fatalf("cache ended at %d entries — eviction is discarding far more than it should", c.Len())
	}
}

// TestHashJobsDistinct: distinct subsets must get distinct keys — a
// collision silently aliases two LP results. 64 mixed bits make collisions
// astronomically unlikely; this guards against a mixing bug, not bad luck.
func TestHashJobsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := make(map[uint64]string)
	record := func(jobs []int) {
		h := hashJobs(jobs)
		enc := ""
		for _, j := range jobs {
			enc += string(rune(j+1)) + ","
		}
		if prev, ok := seen[h]; ok && prev != enc {
			t.Fatalf("hash collision: %q and %q both map to %#x", prev, enc, h)
		}
		seen[h] = enc
	}
	// Adjacent subsets (off-by-one ids, swapped neighbors) and random ones.
	for n := 1; n <= 12; n++ {
		jobs := make([]int, n)
		for i := range jobs {
			jobs[i] = i
		}
		record(jobs)
		for i := range jobs {
			jobs[i]++
			record(jobs)
			jobs[i]--
		}
	}
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(20)
		jobs := make([]int, n)
		for i := range jobs {
			jobs[i] = rng.Intn(256)
		}
		record(jobs)
	}
}

// TestCacheSharesBasisWithPlainEntries: a chain's first link must share
// its cache entry with plain RoundLP1Ws callers of the same subproblem
// (it is the same cold, deterministic solve), and every cached entry must
// carry a basis so chains can always be seeded from hits.
func TestCacheSharesBasisWithPlainEntries(t *testing.T) {
	ins, err := workload.Generate(workload.Spec{Family: "uniform", M: 4, N: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	full := make([]int, ins.N)
	for j := range full {
		full[j] = j
	}
	c := NewCache()
	plain, err := c.RoundLP1Ws(NewWorkspace(), ins, full, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Basis) == 0 {
		t.Fatal("plain cache compute recorded no basis")
	}
	ws := NewWorkspace()
	ws.Begin()
	chained, err := c.RoundLP1Chained(ws, ins, full, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if chained != plain {
		t.Fatal("chain's first link did not reuse the plain cache entry")
	}
	if c.Len() != 1 {
		t.Fatalf("expected 1 shared entry, cache holds %d", c.Len())
	}
}
