package rounding

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/sched"
)

// Cache memoizes RoundLP1 results. The first SUU-I-SEM round and the whole
// of SUU-I-OBL solve LP1 on the full job set with a fixed target, which is
// identical across Monte Carlo trials; caching it removes the dominant LP
// cost from every trial after the first. Keys include the instance
// identity, the exact job subset, and the target, so later (random) subsets
// are cached too — harmless, occasionally useful. Safe for concurrent use.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*LP1Result
}

type cacheKey struct {
	ins  *model.Instance
	l    float64
	jobs string
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*LP1Result)}
}

// RoundLP1 returns the memoized rounding for (ins, jobs, L), computing it on
// first use. Results are shared; callers must not mutate them.
func (c *Cache) RoundLP1(ins *model.Instance, jobs []int, L float64) (*LP1Result, error) {
	if c == nil {
		return RoundLP1(ins, jobs, L)
	}
	key := cacheKey{ins: ins, l: L, jobs: encodeJobs(jobs)}
	c.mu.Lock()
	if r, ok := c.m[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	// Compute outside the lock: concurrent misses may duplicate work but
	// never block each other on a multi-second LP solve.
	r, err := RoundLP1(ins, jobs, L)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
	return r, nil
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func encodeJobs(jobs []int) string {
	var b strings.Builder
	for _, j := range jobs {
		b.WriteString(strconv.Itoa(j))
		b.WriteByte(',')
	}
	return b.String()
}

// LP2Cache memoizes RoundLP2 results. SUU-C's LP2 assignment depends only
// on the instance and its chain structure — not on any random outcome — so
// one solve serves every Monte Carlo trial. Safe for concurrent use.
type LP2Cache struct {
	mu sync.Mutex
	m  map[lp2Key]*LP2Result
}

type lp2Key struct {
	ins    *model.Instance
	chains string
}

// NewLP2Cache returns an empty cache.
func NewLP2Cache() *LP2Cache {
	return &LP2Cache{m: make(map[lp2Key]*LP2Result)}
}

// RoundLP2 returns the memoized rounding for (ins, chains), computing it on
// first use. Results are shared; callers must not mutate them.
func (c *LP2Cache) RoundLP2(ins *model.Instance, chains []dag.Chain) (*LP2Result, error) {
	if c == nil {
		return RoundLP2(ins, chains)
	}
	var b strings.Builder
	for _, ch := range chains {
		for _, j := range ch {
			b.WriteString(strconv.Itoa(j))
			b.WriteByte(',')
		}
		b.WriteByte(';')
	}
	key := lp2Key{ins: ins, chains: b.String()}
	c.mu.Lock()
	if r, ok := c.m[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	r, err := RoundLP2(ins, chains)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
	return r, nil
}

// RoundLP1Naive is the ablation baseline for Lemma 2: solve the relaxation
// exactly, then round each fractional assignment up independently
// (x̂ = ⌈6x*⌉ wherever x* > 0) instead of routing a flow. Exported for the
// A/rounding experiment.
func RoundLP1Naive(ins *model.Instance, jobs []int, L float64) (*LP1Result, error) {
	if len(jobs) == 0 {
		return &LP1Result{Assignment: sched.NewAssignment(ins.M, ins.N)}, nil
	}
	xfrac, tstar, err := SolveLP1(ins, jobs, L)
	if err != nil {
		return nil, err
	}
	return RoundFractionalNaive(ins, jobs, L, xfrac, tstar)
}
