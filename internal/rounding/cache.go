package rounding

import (
	"math"
	"sync"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/sched"
)

// DefaultCacheCap is the entry bound NewCache applies. SEM inserts every
// random per-trial surviving-job subset it solves, so an unbounded cache
// grows for the whole life of a long Monte Carlo run; a few hundred
// entries capture all the reuse that actually occurs (full-set solves and
// the small-n subset collisions) while bounding memory.
const DefaultCacheCap = 512

// Cache memoizes RoundLP1 results. The first SUU-I-SEM round and the whole
// of SUU-I-OBL solve LP1 on the full job set with a fixed target, which is
// identical across Monte Carlo trials; caching it removes the dominant LP
// cost from every trial after the first. Later (random) subset solves are
// cached too, keyed by the warm-start chain that produced them (see
// RoundLP1Chained), so repeated survivor patterns — common at small n —
// are also free after first sight.
//
// The cache is bounded: full-set entries (the deterministic, expensive,
// shared-by-every-trial solves) are pinned, everything else is evicted in
// cheap map-order sweeps once the cap is reached. Values are pure
// functions of their keys, so eviction can never change a result, only
// cost a recompute. Safe for concurrent use.
type Cache struct {
	mu  sync.Mutex
	m   map[cacheKey]cacheEntry
	cap int
}

type cacheEntry struct {
	res    *LP1Result
	pinned bool
}

// cacheKey is a fixed-size comparable key: instance identity, target, job
// count, and a 64-bit hash of the job ids (plus warm-chain history for
// chained entries). Replacing the old comma-joined string key removes a
// string build + allocation from every lookup in the trial hot path; a
// hash collision would silently alias two subsets, but at 64 mixed bits
// the chance is negligible against the ~thousands of entries a run sees.
type cacheKey struct {
	ins *model.Instance
	l   float64
	n   int
	h   uint64
}

// NewCache returns an empty cache with the default entry bound.
func NewCache() *Cache { return NewCacheCap(DefaultCacheCap) }

// NewCacheCap returns an empty cache bounded to roughly cap entries
// (pinned full-set entries may exceed it; they are few and deterministic).
// Non-positive caps fall back to DefaultCacheCap.
func NewCacheCap(cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCacheCap
	}
	return &Cache{m: make(map[cacheKey]cacheEntry), cap: cap}
}

func (c *Cache) lookup(key cacheKey) (*LP1Result, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	return e.res, ok
}

// store inserts the entry, sweeping out unpinned entries in map order when
// the cap is hit. Map iteration starts at a random bucket, so the sweep is
// an O(evicted) pseudo-random eviction — cheap, and harmless to
// correctness because every value is recomputable from its key.
func (c *Cache) store(key cacheKey, r *LP1Result, pinned bool) {
	c.mu.Lock()
	if len(c.m) >= c.cap {
		target := c.cap - c.cap/8
		for k, e := range c.m {
			if len(c.m) < target {
				break
			}
			if !e.pinned {
				delete(c.m, k)
			}
		}
	}
	c.m[key] = cacheEntry{res: r, pinned: pinned}
	c.mu.Unlock()
}

// RoundLP1 returns the memoized rounding for (ins, jobs, L), computing it
// on first use with a throwaway workspace. Results are shared; callers
// must not mutate them.
func (c *Cache) RoundLP1(ins *model.Instance, jobs []int, L float64) (*LP1Result, error) {
	if c == nil {
		return RoundLP1(ins, jobs, L)
	}
	return c.RoundLP1Ws(NewWorkspace(), ins, jobs, L)
}

// RoundLP1Ws is RoundLP1 computing misses on the caller's workspace (cold
// solve — the workspace's warm chain is not consulted, so the cached value
// is a pure function of the key).
func (c *Cache) RoundLP1Ws(ws *Workspace, ins *model.Instance, jobs []int, L float64) (*LP1Result, error) {
	if c == nil {
		return ws.roundLP1(ins, jobs, L, false)
	}
	key := cacheKey{ins: ins, l: L, n: len(jobs), h: hashJobs(jobs)}
	if r, ok := c.lookup(key); ok {
		return r, nil
	}
	// Compute outside the lock: concurrent misses may duplicate work but
	// never block each other on a multi-second LP solve.
	r, err := ws.roundLP1(ins, jobs, L, false)
	if err != nil {
		return nil, err
	}
	c.store(key, r, len(jobs) == ins.N)
	return r, nil
}

// RoundLP1Chained returns the rounding for (ins, jobs, L) solved as the
// next link of ws's warm chain, and advances the chain past it. The cache
// key includes the chain history, so an entry is only reused by trials
// whose whole re-solve chain matches — which makes the cached value a
// deterministic function of the key even though warm and cold solves may
// legitimately land on different optimal vertices. A chain's first link
// has no history and shares its entry with RoundLP1Ws callers.
func (c *Cache) RoundLP1Chained(ws *Workspace, ins *model.Instance, jobs []int, L float64) (*LP1Result, error) {
	if c == nil {
		r, err := ws.roundLP1(ins, jobs, L, true)
		if err != nil {
			return nil, err
		}
		ws.advanceChain(ins, jobs, L, r.Basis)
		return r, nil
	}
	key := cacheKey{ins: ins, l: L, n: len(jobs), h: ws.chainKeyHash(jobs)}
	if r, ok := c.lookup(key); ok {
		ws.advanceChain(ins, jobs, L, r.Basis)
		return r, nil
	}
	r, err := ws.roundLP1(ins, jobs, L, true)
	if err != nil {
		return nil, err
	}
	c.store(key, r, ws.chainHash == 0 && len(jobs) == ins.N)
	ws.advanceChain(ins, jobs, L, r.Basis)
	return r, nil
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap reports the entry bound.
func (c *Cache) Cap() int { return c.cap }

// FNV-1a constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashJobs is FNV-1a over the little-endian bytes of each job id, finished
// with a SplitMix64-style avalanche so short id lists still spread over
// the whole key space.
func hashJobs(jobs []int) uint64 {
	h := uint64(fnvOffset64)
	for _, j := range jobs {
		v := uint64(uint32(j))
		h = (h ^ (v & 0xff)) * fnvPrime64
		h = (h ^ ((v >> 8) & 0xff)) * fnvPrime64
		h = (h ^ ((v >> 16) & 0xff)) * fnvPrime64
		h = (h ^ ((v >> 24) & 0xff)) * fnvPrime64
	}
	return mix64(h)
}

// mix64 is the SplitMix64 finalizer, a strong 64→64 bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix2 combines two hashes order-dependently.
func mix2(a, b uint64) uint64 {
	return mix64(a ^ (b + 0x9e3779b97f4a7c15))
}

// chainMix folds one solved chain link (its job-set hash and target) into
// the running chain hash.
func chainMix(chain, jobsHash uint64, l float64) uint64 {
	return mix64(mix2(chain, jobsHash) ^ math.Float64bits(l))
}

// LP2Cache memoizes RoundLP2 results. SUU-C's LP2 assignment depends only
// on the instance, its chain structure, and (under SUU-T's cross-block
// warm chain) the sequence of blocks solved before it — never on a random
// outcome — so one solve serves every Monte Carlo trial, and the set of
// distinct (block, history) pairs per instance is tiny (one per SUU-T
// decomposition block), so no bound is needed. Keys mix in the workspace's
// LP2 chain history the way LP1's chained keys do, which keeps every
// trial's rounding a deterministic function of its block sequence even
// though warm and cold solves may land on different optimal vertices.
// Safe for concurrent use.
type LP2Cache struct {
	mu sync.Mutex
	m  map[lp2Key]*LP2Result
}

// lp2Key hashes the chain structure (ids with per-chain separators) the
// same way cacheKey hashes job subsets.
type lp2Key struct {
	ins *model.Instance
	n   int // total jobs across chains
	h   uint64
}

func hashChains(chains []dag.Chain) (uint64, int) {
	h := uint64(fnvOffset64)
	n := 0
	for _, ch := range chains {
		for _, j := range ch {
			v := uint64(uint32(j))
			h = (h ^ (v & 0xff)) * fnvPrime64
			h = (h ^ ((v >> 8) & 0xff)) * fnvPrime64
			h = (h ^ ((v >> 16) & 0xff)) * fnvPrime64
			h = (h ^ ((v >> 24) & 0xff)) * fnvPrime64
			n++
		}
		h = (h ^ 0x1ff) * fnvPrime64 // chain separator, outside the id byte range
	}
	return mix64(h), n
}

// NewLP2Cache returns an empty cache.
func NewLP2Cache() *LP2Cache {
	return &LP2Cache{m: make(map[lp2Key]*LP2Result)}
}

// RoundLP2 returns the memoized rounding for (ins, chains), computing it on
// first use. Results are shared; callers must not mutate them.
func (c *LP2Cache) RoundLP2(ins *model.Instance, chains []dag.Chain) (*LP2Result, error) {
	if c == nil {
		return RoundLP2(ins, chains)
	}
	return c.RoundLP2Ws(NewWorkspace(), ins, chains)
}

// RoundLP2Ws is RoundLP2 computing misses on the caller's workspace — a
// Monte Carlo worker's LP2 miss reuses its trial stream's solver — solved
// as the next block of the workspace's LP2 warm chain, which it advances
// past the block (on hits too, from the cached basis, so a trial's chain
// state is identical whether its blocks computed or hit).
func (c *LP2Cache) RoundLP2Ws(ws *Workspace, ins *model.Instance, chains []dag.Chain) (*LP2Result, error) {
	h, n := hashChains(chains)
	if c == nil {
		r, err := roundLP2(ins, chains, ws)
		if err != nil {
			return nil, err
		}
		ws.advanceLP2(ins, r.Basis, n, h)
		return r, nil
	}
	key := lp2Key{ins: ins, n: n, h: ws.lp2KeyHash(h)}
	c.mu.Lock()
	if r, ok := c.m[key]; ok {
		c.mu.Unlock()
		ws.advanceLP2(ins, r.Basis, n, h)
		return r, nil
	}
	c.mu.Unlock()
	r, err := roundLP2(ins, chains, ws)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
	ws.advanceLP2(ins, r.Basis, n, h)
	return r, nil
}

// RoundLP1Naive is the ablation baseline for Lemma 2: solve the relaxation
// exactly, then round each fractional assignment up independently
// (x̂ = ⌈6x*⌉ wherever x* > 0) instead of routing a flow. Exported for the
// A/rounding experiment.
func RoundLP1Naive(ins *model.Instance, jobs []int, L float64) (*LP1Result, error) {
	if len(jobs) == 0 {
		return &LP1Result{Assignment: sched.NewAssignment(ins.M, ins.N)}, nil
	}
	xfrac, tstar, err := SolveLP1(ins, jobs, L)
	if err != nil {
		return nil, err
	}
	return RoundFractionalNaive(ins, jobs, L, xfrac, tstar)
}
