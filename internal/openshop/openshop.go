// Package openshop converts a fractional machine-time matrix into a
// preemptive timetable in which no job runs on two machines at once — the
// Lawler–Labetoulle construction the paper's Appendix C relies on for
// R|pmtn|C_max. The matrix is padded to a doubly balanced square matrix
// and decomposed Birkhoff–von-Neumann-style: each extraction finds a
// perfect matching on the positive entries (it exists by Hall's theorem
// for doubly balanced matrices) and runs it for the minimum matched value.
// The resulting schedule has makespan exactly the horizon
// max(max row sum, max column sum).
package openshop

import (
	"fmt"
	"math"

	"repro/internal/matching"
)

// Segment is one piece of the preemptive timetable: for Duration time
// units, machine i processes JobOf[i] (or idles when JobOf[i] < 0).
type Segment struct {
	Duration float64
	JobOf    []int
}

// tolerance below which residual entries count as zero.
const eps = 1e-9

// Decompose builds a preemptive timetable for the m×n machine-time matrix
// u: machine i must spend u[i][j] time on job j, no machine working two
// jobs at once (by construction) and no job on two machines at once (the
// matching property). horizon must be at least every row and column sum;
// the schedule finishes exactly at the horizon (trailing idle time is
// represented in the segments).
func Decompose(u [][]float64, horizon float64) ([]Segment, error) {
	m := len(u)
	if m == 0 {
		return nil, fmt.Errorf("openshop: empty matrix")
	}
	n := len(u[0])
	rowSum := make([]float64, m)
	colSum := make([]float64, n)
	for i := range u {
		if len(u[i]) != n {
			return nil, fmt.Errorf("openshop: ragged matrix row %d", i)
		}
		for j, v := range u[i] {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("openshop: u[%d][%d] = %v", i, j, v)
			}
			rowSum[i] += v
			colSum[j] += v
		}
	}
	for i, rs := range rowSum {
		if rs > horizon+1e-6 {
			return nil, fmt.Errorf("openshop: machine %d load %g exceeds horizon %g", i, rs, horizon)
		}
	}
	for j, cs := range colSum {
		if cs > horizon+1e-6 {
			return nil, fmt.Errorf("openshop: job %d time %g exceeds horizon %g", j, cs, horizon)
		}
	}

	// Pad to an s×s doubly balanced matrix with all row/col sums = horizon:
	//
	//	[ u           diag(rowSlack) ]
	//	[ diag(colSlack)    B        ]
	//
	// where B has row sums colSum and column sums rowSum (northwest-corner
	// filling). Rows ≥ m are dummy machines; columns ≥ n are dummy jobs.
	s := m + n
	d := make([][]float64, s)
	for i := range d {
		d[i] = make([]float64, s)
	}
	for i := 0; i < m; i++ {
		copy(d[i][:n], u[i])
		d[i][n+i] = math.Max(horizon-rowSum[i], 0)
	}
	for j := 0; j < n; j++ {
		d[m+j][j] = math.Max(horizon-colSum[j], 0)
	}
	rowNeed := append([]float64(nil), colSum...) // bottom rows need colSum
	colNeed := append([]float64(nil), rowSum...) // right cols need rowSum
	ci := 0
	for rj := 0; rj < n; rj++ {
		for rowNeed[rj] > eps && ci < m {
			b := math.Min(rowNeed[rj], colNeed[ci])
			d[m+rj][n+ci] += b
			rowNeed[rj] -= b
			colNeed[ci] -= b
			if colNeed[ci] <= eps {
				ci++
			}
		}
	}

	var segments []Segment
	maxIter := s*s + 2*s + 16
	remaining := horizon
	for iter := 0; remaining > eps; iter++ {
		if iter > maxIter {
			return nil, fmt.Errorf("openshop: decomposition did not converge (%g left of %g)", remaining, horizon)
		}
		bg := matching.NewBipartite(s, s)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				if d[i][j] > eps {
					bg.AddEdge(i, j)
				}
			}
		}
		match, size := bg.MaxMatching()
		if size < s {
			return nil, fmt.Errorf("openshop: no perfect matching (%d/%d) — numeric imbalance", size, s)
		}
		delta := remaining
		for i := 0; i < s; i++ {
			if d[i][match[i]] < delta {
				delta = d[i][match[i]]
			}
		}
		if delta <= eps {
			return nil, fmt.Errorf("openshop: degenerate extraction δ=%g", delta)
		}
		seg := Segment{Duration: delta, JobOf: make([]int, m)}
		for i := 0; i < m; i++ {
			if j := match[i]; j < n {
				seg.JobOf[i] = j
			} else {
				seg.JobOf[i] = -1
			}
		}
		for i := 0; i < s; i++ {
			d[i][match[i]] -= delta
			if d[i][match[i]] < eps {
				d[i][match[i]] = 0
			}
		}
		segments = append(segments, seg)
		remaining -= delta
	}
	return segments, nil
}

// Validate checks a timetable against its source matrix: per-pair totals
// match u within tol, and no job appears twice in a segment. Used by tests
// and defensive callers.
func Validate(u [][]float64, segments []Segment, tol float64) error {
	m := len(u)
	if m == 0 {
		return fmt.Errorf("openshop: empty matrix")
	}
	n := len(u[0])
	got := make([][]float64, m)
	for i := range got {
		got[i] = make([]float64, n)
	}
	for si, seg := range segments {
		if seg.Duration <= 0 {
			return fmt.Errorf("openshop: segment %d has duration %g", si, seg.Duration)
		}
		seen := make(map[int]bool)
		for i, j := range seg.JobOf {
			if j < 0 {
				continue
			}
			if j >= n {
				return fmt.Errorf("openshop: segment %d schedules job %d (have %d)", si, j, n)
			}
			if seen[j] {
				return fmt.Errorf("openshop: segment %d runs job %d on two machines", si, j)
			}
			seen[j] = true
			got[i][j] += seg.Duration
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(got[i][j]-u[i][j]) > tol {
				return fmt.Errorf("openshop: pair (%d,%d) got %g, want %g", i, j, got[i][j], u[i][j])
			}
		}
	}
	return nil
}
