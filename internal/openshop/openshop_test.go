package openshop

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposeTiny(t *testing.T) {
	// 2 machines, 2 jobs; machine 0 must split between both jobs.
	u := [][]float64{
		{1, 1},
		{0, 1},
	}
	segs, err := Decompose(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(u, segs, 1e-6); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range segs {
		total += s.Duration
	}
	if math.Abs(total-2) > 1e-6 {
		t.Fatalf("total duration %g, want horizon 2", total)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(nil, 1); err == nil {
		t.Fatal("empty matrix must error")
	}
	if _, err := Decompose([][]float64{{1, 2}, {3}}, 10); err == nil {
		t.Fatal("ragged matrix must error")
	}
	if _, err := Decompose([][]float64{{-1}}, 1); err == nil {
		t.Fatal("negative entry must error")
	}
	if _, err := Decompose([][]float64{{5}}, 1); err == nil {
		t.Fatal("row sum above horizon must error")
	}
	if _, err := Decompose([][]float64{{3}, {3}}, 4); err == nil {
		t.Fatal("column sum above horizon must error")
	}
}

func TestDecomposeZeroMatrix(t *testing.T) {
	u := [][]float64{{0, 0}, {0, 0}}
	segs, err := Decompose(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(u, segs, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeRandomized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(5), 1+rng.Intn(6)
		u := make([][]float64, m)
		for i := range u {
			u[i] = make([]float64, n)
			for j := range u[i] {
				if rng.Float64() < 0.7 {
					u[i][j] = rng.Float64() * 4
				}
			}
		}
		// Horizon: max of row/col sums (the LL makespan), plus slack
		// sometimes.
		horizon := 0.0
		colSum := make([]float64, n)
		for i := range u {
			rs := 0.0
			for j, v := range u[i] {
				rs += v
				colSum[j] += v
			}
			horizon = math.Max(horizon, rs)
		}
		for _, cs := range colSum {
			horizon = math.Max(horizon, cs)
		}
		if horizon == 0 {
			horizon = 1
		}
		if rng.Intn(2) == 0 {
			horizon *= 1.3
		}
		segs, err := Decompose(u, horizon)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := Validate(u, segs, 1e-6); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		total := 0.0
		for _, s := range segs {
			total += s.Duration
		}
		if math.Abs(total-horizon) > 1e-6 {
			t.Logf("seed %d: total %g != horizon %g", seed, total, horizon)
			return false
		}
		// Segment count is bounded by the padded matrix's support.
		if len(segs) > (m+n)*(m+n)+2*(m+n)+16 {
			t.Logf("seed %d: %d segments", seed, len(segs))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
