// Package maxflow implements Dinic's maximum-flow algorithm with integer
// capacities. An integral maximum flow is exactly what Lemmas 2 and 6 of the
// paper need: Ford–Fulkerson integrality turns the fractional LP assignment
// into an integral machine→job assignment without losing more than constant
// factors in load or mass.
package maxflow

import (
	"fmt"
	"math"
)

// Inf is the capacity used for uncapacitated edges.
const Inf = int64(math.MaxInt64 / 4)

// Graph is a flow network on vertices 0..n-1. Adjacency is stored as
// per-vertex linked lists threaded through flat edge arrays (head/tail/
// next), so AddEdge never allocates per vertex — graph construction is
// three amortized slice appends total, which matters because the Lemma 2
// rounding builds a fresh network per Monte Carlo trial. Lists preserve
// insertion order, so traversal (and hence the integral flow found) is
// identical to a slice-of-slices adjacency. The zero value is unusable;
// construct with New.
type Graph struct {
	n    int
	head []int32 // first edge id per vertex, -1 if none
	tail []int32 // last edge id per vertex (for ordered append)
	next []int32 // next edge id within the same vertex's list, -1 ends
	to   []int32
	cap  []int64 // residual capacity
	// level and iter are scratch for Dinic; iter holds each vertex's
	// current-arc edge id; queue is the BFS ring buffer.
	level []int32
	iter  []int32
	queue []int32
}

// New returns an empty flow network on n vertices.
func New(n int) *Graph {
	g := &Graph{}
	g.Reset(n)
	return g
}

// Reset reinitializes the graph to n vertices with no edges, keeping every
// backing array for reuse. A hot loop that builds one network per trial
// (the Lemma 2 rounding) holds a Graph in its workspace and Resets it
// instead of allocating a fresh one.
func (g *Graph) Reset(n int) {
	g.n = n
	if cap(g.head) < n {
		g.head = make([]int32, n)
		g.tail = make([]int32, n)
		g.level = make([]int32, n)
		g.iter = make([]int32, n)
	}
	g.head = g.head[:n]
	g.tail = g.tail[:n]
	g.level = g.level[:n]
	g.iter = g.iter[:n]
	for i := range g.head {
		g.head[i] = -1
		g.tail[i] = -1
	}
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	g.next = g.next[:0]
}

// Reserve pre-sizes the edge arrays for the given number of AddEdge calls,
// eliminating growth reallocations when the caller knows the edge count.
func (g *Graph) Reserve(edges int) {
	if cap(g.to)-len(g.to) >= 2*edges {
		return
	}
	grow := func(a []int32) []int32 {
		b := make([]int32, len(a), len(a)+2*edges)
		copy(b, a)
		return b
	}
	g.to = grow(g.to)
	g.next = grow(g.next)
	c := make([]int64, len(g.cap), len(g.cap)+2*edges)
	copy(c, g.cap)
	g.cap = c
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u->v with the given capacity and returns its
// identifier, usable with Flow after a MaxFlow call. The reverse edge is
// created automatically with zero capacity.
func (g *Graph) AddEdge(u, v int, capacity int64) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("maxflow: negative capacity %d on edge (%d,%d)", capacity, u, v)
	}
	id := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.cap = append(g.cap, capacity, 0)
	g.next = append(g.next, -1, -1)
	g.link(u, int32(id))
	g.link(v, int32(id+1))
	return id, nil
}

// link appends edge id to vertex u's adjacency list, keeping insertion
// order.
func (g *Graph) link(u int, id int32) {
	if g.tail[u] < 0 {
		g.head[u] = id
	} else {
		g.next[g.tail[u]] = id
	}
	g.tail[u] = id
}

// Flow returns the amount of flow routed through edge id by the last MaxFlow
// call (the reverse edge's residual capacity).
func (g *Graph) Flow(id int) int64 { return g.cap[id^1] }

// Capacity returns the remaining (residual) capacity of edge id.
func (g *Graph) Capacity(id int) int64 { return g.cap[id] }

// MaxFlow computes the maximum s-t flow. It may be called once per graph
// (capacities are consumed).
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	for g.bfs(s, t) {
		copy(g.iter, g.head)
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// bfs builds the level graph; reports whether t is reachable.
func (g *Graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	if cap(g.queue) < g.n {
		g.queue = make([]int32, 0, g.n)
	}
	queue := g.queue[:0]
	queue = append(queue, int32(s))
	g.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for id := g.head[v]; id >= 0; id = g.next[id] {
			if g.cap[id] > 0 && g.level[g.to[id]] < 0 {
				g.level[g.to[id]] = g.level[v] + 1
				queue = append(queue, g.to[id])
			}
		}
	}
	return g.level[t] >= 0
}

// dfs sends a blocking-flow augmentation of at most up units from v to t,
// resuming each vertex at its current arc (iter).
func (g *Graph) dfs(v, t int, up int64) int64 {
	if v == t {
		return up
	}
	for id := g.iter[v]; id >= 0; id = g.next[id] {
		g.iter[v] = id
		w := int(g.to[id])
		if g.cap[id] <= 0 || g.level[w] != g.level[v]+1 {
			continue
		}
		d := g.dfs(w, t, min64(up, g.cap[id]))
		if d > 0 {
			g.cap[id] -= d
			g.cap[id^1] += d
			return d
		}
	}
	g.iter[v] = -1
	g.level[v] = -1
	return 0
}

// MinCut returns the source side of a minimum s-t cut after MaxFlow has run:
// the set of vertices reachable from s in the residual graph.
func (g *Graph) MinCut(s int) []bool {
	side := make([]bool, g.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for id := g.head[v]; id >= 0; id = g.next[id] {
			w := int(g.to[id])
			if g.cap[id] > 0 && !side[w] {
				side[w] = true
				stack = append(stack, w)
			}
		}
	}
	return side
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
