package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t testing.TB, g *Graph, u, v int, c int64) int {
	t.Helper()
	id, err := g.AddEdge(u, v, c)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSmallNetwork(t *testing.T) {
	// Classic CLRS example; max flow 23.
	g := New(6)
	mustEdge(t, g, 0, 1, 16)
	mustEdge(t, g, 0, 2, 13)
	mustEdge(t, g, 1, 2, 10)
	mustEdge(t, g, 2, 1, 4)
	mustEdge(t, g, 1, 3, 12)
	mustEdge(t, g, 3, 2, 9)
	mustEdge(t, g, 2, 4, 14)
	mustEdge(t, g, 4, 3, 7)
	mustEdge(t, g, 3, 5, 20)
	mustEdge(t, g, 4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Fatalf("max flow = %d, want 23", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 5)
	mustEdge(t, g, 2, 3, 5)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Fatalf("max flow = %d, want 0", f)
	}
}

func TestSelfFlow(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1, 5)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Fatalf("max flow s==t = %d, want 0", f)
	}
}

func TestEdgeErrors(t *testing.T) {
	g := New(2)
	if _, err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := g.AddEdge(0, 1, -1); err == nil {
		t.Fatal("want negative-capacity error")
	}
}

func TestFlowPerEdge(t *testing.T) {
	g := New(4)
	a := mustEdge(t, g, 0, 1, 3)
	b := mustEdge(t, g, 0, 2, 2)
	c := mustEdge(t, g, 1, 3, 2)
	d := mustEdge(t, g, 2, 3, 3)
	if f := g.MaxFlow(0, 3); f != 4 {
		t.Fatalf("max flow = %d, want 4", f)
	}
	if g.Flow(a) != 2 || g.Flow(b) != 2 || g.Flow(c) != 2 || g.Flow(d) != 2 {
		t.Fatalf("edge flows %d %d %d %d, want 2 2 2 2",
			g.Flow(a), g.Flow(b), g.Flow(c), g.Flow(d))
	}
}

// edmondsKarp is an independent reference implementation for cross-checking.
func edmondsKarp(n int, edges [][3]int64, s, t int) int64 {
	capm := make([][]int64, n)
	for i := range capm {
		capm[i] = make([]int64, n)
	}
	for _, e := range edges {
		capm[e[0]][e[1]] += e[2]
	}
	var total int64
	for {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] < 0 {
			v := queue[0]
			queue = queue[1:]
			for w := 0; w < n; w++ {
				if parent[w] < 0 && capm[v][w] > 0 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
		if parent[t] < 0 {
			return total
		}
		aug := int64(1 << 60)
		for v := t; v != s; v = parent[v] {
			if capm[parent[v]][v] < aug {
				aug = capm[parent[v]][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			capm[parent[v]][v] -= aug
			capm[v][parent[v]] += aug
		}
		total += aug
	}
}

func TestAgainstEdmondsKarp(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		ne := rng.Intn(3 * n)
		g := New(n)
		var edges [][3]int64
		ids := make([]int, 0, ne)
		for k := 0; k < ne; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(20))
			edges = append(edges, [3]int64{int64(u), int64(v), c})
			id, err := g.AddEdge(u, v, c)
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		s, sink := 0, n-1
		got := g.MaxFlow(s, sink)
		want := edmondsKarp(n, edges, s, sink)
		if got != want {
			t.Logf("seed %d: dinic %d, edmonds-karp %d", seed, got, want)
			return false
		}
		// Flow conservation at internal vertices.
		net := make([]int64, n)
		for k, id := range ids {
			fl := g.Flow(id)
			if fl < 0 || fl > edges[k][2] {
				t.Logf("seed %d: edge flow %d outside [0,%d]", seed, fl, edges[k][2])
				return false
			}
			net[edges[k][0]] -= fl
			net[edges[k][1]] += fl
		}
		for v := 0; v < n; v++ {
			if v == s || v == sink {
				continue
			}
			if net[v] != 0 {
				t.Logf("seed %d: conservation violated at %d (net %d)", seed, v, net[v])
				return false
			}
		}
		if net[sink] != got || net[s] != -got {
			t.Logf("seed %d: endpoint flow mismatch", seed)
			return false
		}
		// Max-flow = min-cut.
		side := g.MinCut(s)
		if side[sink] {
			t.Logf("seed %d: sink on source side of cut", seed)
			return false
		}
		var cut int64
		for k := range edges {
			if side[edges[k][0]] && !side[edges[k][1]] {
				cut += edges[k][2]
			}
		}
		if cut != got {
			t.Logf("seed %d: cut %d != flow %d", seed, cut, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeCapacities(t *testing.T) {
	g := New(3)
	a := mustEdge(t, g, 0, 1, Inf)
	mustEdge(t, g, 1, 2, 1000000)
	if f := g.MaxFlow(0, 2); f != 1000000 {
		t.Fatalf("max flow = %d, want 1000000", f)
	}
	if g.Flow(a) != 1000000 {
		t.Fatalf("edge flow %d", g.Flow(a))
	}
}
