package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// tkey and tval generate deterministic, distinct test records; values vary
// in length so record boundaries land at irregular offsets.
func tkey(i int) Key {
	return Key{Hi: mix(uint64(i) + 1), Lo: mix(uint64(i)*2654435761 + 99)}
}

func tval(i int) []byte {
	n := 5 + (i*13)%57
	b := make([]byte, n)
	x := mix(uint64(i) ^ 0xabcdef)
	for j := range b {
		x = mix(x)
		b[j] = byte(x)
	}
	return b
}

func mustPut(t *testing.T, d *Disk, i int) {
	t.Helper()
	if err := d.Put(context.Background(), tkey(i), tval(i)); err != nil {
		t.Fatalf("put %d: %v", i, err)
	}
}

func mustGet(t *testing.T, d *Disk, i int) {
	t.Helper()
	v, tier, err := d.Get(context.Background(), tkey(i))
	if err != nil {
		t.Fatalf("get %d: %v", i, err)
	}
	if tier != TierDisk {
		t.Fatalf("get %d: tier %q", i, tier)
	}
	if !bytes.Equal(v, tval(i)) {
		t.Fatalf("get %d: payload mismatch", i)
	}
}

func TestDiskRoundtripReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskConfig{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		mustPut(t, d, i)
	}
	// Idempotent re-put: content-addressed, so a duplicate is a skip, not
	// a second record.
	if err := d.Put(context.Background(), tkey(0), tval(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustGet(t, d, i)
	}
	st := d.Stats()
	if st.Entries != n || st.Puts != n || st.PutSkips != 1 {
		t.Fatalf("stats %+v, want entries=%d puts=%d skips=1", st, n, n)
	}
	if _, _, err := d.Get(context.Background(), Key{Hi: 1, Lo: 2}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < n; i++ {
		mustGet(t, d2, i)
	}
	st = d2.Stats()
	if st.Entries != n || st.CorruptDropped != 0 {
		t.Fatalf("reopen stats %+v", st)
	}
}

// TestDiskTornWriteEveryOffset is the crash-recovery property test: a
// write torn at EVERY possible byte offset must reopen to exactly the
// committed prefix — every fully-written record byte-identical, the torn
// record (if any bytes of it landed) dropped and counted exactly once,
// and nothing else.
func TestDiskTornWriteEveryOffset(t *testing.T) {
	const n = 10
	// Frame geometry: record i occupies [cum[i], cum[i+1]) in cumulative
	// record-append bytes (the segment adds an 8-byte magic before them,
	// which the fault hook never sees).
	cum := make([]int64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + recHdrSize + int64(len(tval(i)))
	}
	total := cum[n]
	root := t.TempDir()

	for c := int64(0); c <= total; c++ {
		dir := filepath.Join(root, fmt.Sprintf("cut-%04d", c))
		var written int64
		crashed := false
		cfg := DiskConfig{
			Fsync: FsyncNever,
			WriteFault: func(rec []byte) (int, error) {
				if crashed {
					return 0, errors.New("crashed")
				}
				if written+int64(len(rec)) <= c {
					written += int64(len(rec))
					return len(rec), nil
				}
				keep := c - written
				written = c
				crashed = true
				return int(keep), errors.New("torn write (simulated crash)")
			},
		}
		d, err := Open(dir, cfg)
		if err != nil {
			t.Fatalf("cut %d: open: %v", c, err)
		}
		sawErr := false
		for i := 0; i < n; i++ {
			if err := d.Put(context.Background(), tkey(i), tval(i)); err != nil {
				sawErr = true
			}
		}
		d.Close()
		if (c < total) != sawErr {
			t.Fatalf("cut %d: crash error seen=%v", c, sawErr)
		}

		d2, err := Open(dir, DiskConfig{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", c, err)
		}
		wantDropped := uint64(0)
		for i := 0; i < n; i++ {
			k := tkey(i)
			switch {
			case cum[i+1] <= c: // fully committed before the cut
				v, _, err := d2.Get(context.Background(), k)
				if err != nil {
					t.Fatalf("cut %d: committed record %d lost: %v", c, i, err)
				}
				if !bytes.Equal(v, tval(i)) {
					t.Fatalf("cut %d: committed record %d corrupted", c, i)
				}
			default:
				if _, _, err := d2.Get(context.Background(), k); !errors.Is(err, ErrNotFound) {
					t.Fatalf("cut %d: uncommitted record %d: %v", c, i, err)
				}
				// The record straddling the cut left torn bytes on disk
				// exactly when the cut is strictly inside its frame.
				if cum[i] < c && c < cum[i+1] {
					wantDropped = 1
				}
			}
		}
		if got := d2.Stats().CorruptDropped; got != wantDropped {
			t.Fatalf("cut %d: corrupt_dropped=%d, want %d", c, got, wantDropped)
		}
		d2.Close()
		os.RemoveAll(dir) // keep the temp root small across ~700 iterations
	}
}

// TestDiskBitFlipQuarantine pins the read-path contract: a flipped bit is
// detected by the checksum, the record is quarantined (a miss, counted),
// and no Get ever returns wrong bytes. The media is untouched by read
// faults, so a clean reopen sees every record again.
func TestDiskBitFlipQuarantine(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskConfig{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		mustPut(t, d, i)
	}
	d.Close()

	flipping := true
	d2, err := Open(dir, DiskConfig{
		ReadFault: func(b []byte) {
			if flipping && len(b) > 0 {
				b[len(b)/2] ^= 0x10
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, _, err := d2.Get(context.Background(), tkey(i))
		if err == nil {
			// The flip must never slip through as a successful read of
			// wrong bytes.
			if !bytes.Equal(v, tval(i)) {
				t.Fatalf("get %d returned corrupt payload", i)
			}
			t.Fatalf("get %d succeeded through a bit flip", i)
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	st := d2.Stats()
	if st.CorruptDropped != n {
		t.Fatalf("corrupt_dropped=%d, want %d", st.CorruptDropped, n)
	}
	if st.Entries != 0 {
		t.Fatalf("entries=%d after quarantine, want 0", st.Entries)
	}
	// Quarantined means unindexed: the next read of the same key is a
	// plain miss, not another quarantine.
	if _, _, err := d2.Get(context.Background(), tkey(0)); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.CorruptDropped != n {
		t.Fatalf("re-read re-quarantined: %d", st.CorruptDropped)
	}
	flipping = false
	d2.Close()

	d3, err := Open(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	for i := 0; i < n; i++ {
		mustGet(t, d3, i)
	}
}

// TestDiskCorruptRecordOnDisk flips a byte inside one complete on-disk
// frame: the rebuild must skip exactly that record (counted) and index
// everything around it.
func TestDiskCorruptRecordOnDisk(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskConfig{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var off int64 = 8 // segment magic
	victim := 3
	var victimOff int64
	for i := 0; i < n; i++ {
		if i == victim {
			victimOff = off
		}
		mustPut(t, d, i)
		off += recHdrSize + int64(len(tval(i)))
	}
	d.Close()

	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[victimOff+recHdrSize+2] ^= 0x40 // payload byte of the victim
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	st := d2.Stats()
	if st.CorruptDropped != 1 || st.Entries != n-1 {
		t.Fatalf("stats %+v, want 1 dropped, %d entries", st, n-1)
	}
	for i := 0; i < n; i++ {
		if i == victim {
			if _, _, err := d2.Get(context.Background(), tkey(i)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("victim: %v", err)
			}
			continue
		}
		mustGet(t, d2, i)
	}
}

// TestDiskGarbageTail pins the torn-tail rule end-to-end: junk appended
// after the last record is truncated on reopen, counted once, and costs
// no committed data.
func TestDiskGarbageTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskConfig{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		mustPut(t, d, i)
	}
	d.Close()

	f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := Open(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if st := d2.Stats(); st.CorruptDropped != 1 || st.Entries != n {
		t.Fatalf("stats %+v", st)
	}
	for i := 0; i < n; i++ {
		mustGet(t, d2, i)
	}
}

func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several of them.
	d, err := Open(dir, DiskConfig{Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		mustPut(t, d, i)
	}
	before := d.Stats()
	if before.Segments < 2 {
		t.Fatalf("want multiple segments, got %d", before.Segments)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Compactions != 1 {
		t.Fatalf("compactions=%d", after.Compactions)
	}
	if after.Entries != n {
		t.Fatalf("entries=%d after compact", after.Entries)
	}
	for i := 0; i < n; i++ {
		mustGet(t, d, i)
	}
	d.Close()

	d2, err := Open(dir, DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if st := d2.Stats(); st.Entries != n || st.CorruptDropped != 0 {
		t.Fatalf("reopen after compact: %+v", st)
	}
	for i := 0; i < n; i++ {
		mustGet(t, d2, i)
	}
}

func TestDiskENOSPC(t *testing.T) {
	dir := t.TempDir()
	var budget int64 = 200
	d, err := Open(dir, DiskConfig{
		Fsync: FsyncAlways,
		WriteFault: func(rec []byte) (int, error) {
			if budget < int64(len(rec)) {
				return 0, errors.New("no space left on device (simulated)")
			}
			budget -= int64(len(rec))
			return len(rec), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok, failed int
	for i := 0; i < 20; i++ {
		if err := d.Put(context.Background(), tkey(i), tval(i)); err != nil {
			failed++
		} else {
			ok++
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("ok=%d failed=%d, want both", ok, failed)
	}
	st := d.Stats()
	if st.PutErrors != uint64(failed) || st.Entries != ok {
		t.Fatalf("stats %+v, want %d errors %d entries", st, failed, ok)
	}
	// The store stays readable while full.
	for i := 0; i < 20; i++ {
		if _, _, err := d.Get(context.Background(), tkey(i)); err == nil {
			ok--
		}
	}
	if ok != 0 {
		t.Fatalf("readable entries do not match successful puts")
	}
	d.Close()
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"", FsyncInterval, true},
		{"sometimes", "", false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %q, %v", tc.in, got, err)
		}
	}
}

func TestKeyStringParse(t *testing.T) {
	k := Key{Hi: 0xdeadbeefcafe1234, Lo: 0x0123456789abcdef}
	s := k.String()
	if len(s) != 32 {
		t.Fatalf("len %d", len(s))
	}
	got, err := ParseKey(s)
	if err != nil || got != k {
		t.Fatalf("roundtrip %v %v", got, err)
	}
	if _, err := ParseKey("nope"); err == nil {
		t.Fatal("want error")
	}
}
