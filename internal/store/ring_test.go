package store

import (
	"testing"
)

// TestRingOwnershipProperties pins what replication correctness rests on:
// every replica derives identical owners from an identical peer list
// (regardless of list order), owners are distinct, and keys spread across
// the fleet rather than piling onto one peer.
func TestRingOwnershipProperties(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	var r1, r2 hashRing
	for _, p := range peers {
		r1.add(p)
	}
	// Insertion order must not matter.
	for i := len(peers) - 1; i >= 0; i-- {
		r2.add(peers[i])
	}

	primary := map[string]int{}
	const keys = 2000
	for i := 0; i < keys; i++ {
		k := tkey(i)
		h := mix(k.Hi ^ mix(k.Lo))
		o1 := r1.ownersOf(h, 2)
		o2 := r2.ownersOf(h, 2)
		if len(o1) != 2 || len(o2) != 2 {
			t.Fatalf("key %d: owners %v / %v", i, o1, o2)
		}
		if o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("key %d: ownership depends on insertion order: %v vs %v", i, o1, o2)
		}
		if o1[0] == o1[1] {
			t.Fatalf("key %d: duplicate owner %v", i, o1)
		}
		primary[o1[0]]++
	}
	for _, p := range peers {
		if primary[p] < keys/10 {
			t.Fatalf("peer %s owns only %d/%d keys as primary — ring badly skewed: %v",
				p, primary[p], keys, primary)
		}
	}

	// Replication clamped to the fleet: asking for more owners than peers
	// returns every peer once.
	all := r1.ownersOf(12345, 5)
	if len(all) != len(peers) {
		t.Fatalf("owners %v", all)
	}
	seen := map[string]bool{}
	for _, o := range all {
		if seen[o] {
			t.Fatalf("duplicate in %v", all)
		}
		seen[o] = true
	}
}
