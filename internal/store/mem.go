package store

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Mem is the in-memory backend: a byte-budgeted sharded LRU, the
// service's response-cache design (power-of-two shards picked by mixed
// key bits, intrusive recency list per shard) re-based on opaque []byte
// values so it can sit in a tier stack.
type Mem struct {
	shards []memShard
	mask   uint64

	hits, misses, puts, putSkips atomic.Uint64
}

type memShard struct {
	mu       sync.Mutex
	entries  map[Key]*list.Element
	order    *list.List // front = most recent
	bytes    int64
	maxBytes int64
}

type memEntry struct {
	key Key
	val []byte
}

// NewMem builds a mem store with maxBytes of payload budget spread over
// power-of-two shards (16 when shards <= 0).
func NewMem(maxBytes int64, shards int) *Mem {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	m := &Mem{shards: make([]memShard, n), mask: uint64(n - 1)}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range m.shards {
		m.shards[i].entries = make(map[Key]*list.Element)
		m.shards[i].order = list.New()
		m.shards[i].maxBytes = per
	}
	return m
}

func (m *Mem) shardOf(k Key) *memShard {
	return &m.shards[mix(k.Hi^mix(k.Lo))&m.mask]
}

// Name implements PlanStore.
func (m *Mem) Name() string { return "mem" }

// Get implements PlanStore. The returned slice is the interned value;
// callers must not mutate it.
func (m *Mem) Get(_ context.Context, k Key) ([]byte, string, error) {
	s := m.shardOf(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		m.misses.Add(1)
		return nil, "", ErrNotFound
	}
	s.order.MoveToFront(el)
	v := el.Value.(*memEntry).val
	s.mu.Unlock()
	m.hits.Add(1)
	return v, TierMem, nil
}

// GetLocal implements PlanStore; mem is always local.
func (m *Mem) GetLocal(ctx context.Context, k Key) ([]byte, string, error) {
	return m.Get(ctx, k)
}

// Put implements PlanStore: insert-if-absent with LRU eviction to budget.
func (m *Mem) Put(_ context.Context, k Key, v []byte) error {
	s := m.shardOf(k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		m.putSkips.Add(1)
		return nil
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	s.entries[k] = s.order.PushFront(&memEntry{key: k, val: cp})
	s.bytes += int64(len(cp))
	for s.bytes > s.maxBytes && s.order.Len() > 1 {
		back := s.order.Back()
		e := back.Value.(*memEntry)
		s.order.Remove(back)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.val))
	}
	s.mu.Unlock()
	m.puts.Add(1)
	return nil
}

// PutLocal implements PlanStore.
func (m *Mem) PutLocal(ctx context.Context, k Key, v []byte) error {
	return m.Put(ctx, k, v)
}

// Keys implements PlanStore.
func (m *Mem) Keys(limit int) []Key {
	var out []Key
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			out = append(out, k)
			if limit > 0 && len(out) >= limit {
				s.mu.Unlock()
				return out
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Stats implements PlanStore.
func (m *Mem) Stats() Stats {
	st := Stats{
		Hits:     m.hits.Load(),
		Misses:   m.misses.Load(),
		Puts:     m.puts.Load(),
		PutSkips: m.putSkips.Load(),
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.BytesLive += s.bytes
		s.mu.Unlock()
	}
	return st
}

// WaitWarm implements PlanStore; mem has nothing to recover.
func (m *Mem) WaitWarm(context.Context) error { return nil }

// Close implements PlanStore.
func (m *Mem) Close() error { return nil }
