package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// errHandoffFull rejects a hint past the per-peer queue cap.
var errHandoffFull = errors.New("store: handoff queue full")

// handoffQueue is one peer's hinted-handoff backlog: writes that should
// have replicated to the peer while it was down, held until the drain
// loop delivers them. The queue lives in memory and, when dir is set,
// appends through to a per-peer file in the segment-record framing so a
// restart re-queues undelivered hints. Delivery is at-least-once —
// content addressing makes redelivery a no-op — and the file only resets
// once the whole backlog has drained, so a crash mid-drain re-delivers
// rather than loses.
type handoffQueue struct {
	mu    sync.Mutex
	items []fanoutItem
	head  int // items[:head] are delivered, awaiting the file reset
	cap   int
	path  string // "" = memory only
	f     *os.File
}

// openHandoffQueue loads (or creates) peer's queue under dir.
func openHandoffQueue(dir, peer string, capacity int) (*handoffQueue, error) {
	hq := &handoffQueue{cap: capacity}
	if dir == "" {
		return hq, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(peer))
	hq.path = filepath.Join(dir, fmt.Sprintf("handoff-%016x.log", h.Sum64()))
	buf, err := os.ReadFile(hq.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(hq.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	hq.f = f
	if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
		if err := hq.resetFile(); err != nil {
			f.Close()
			return nil, err
		}
		return hq, nil
	}
	// Replay undelivered hints; a torn or corrupt tail ends the replay
	// (hints are best-effort — losing one costs a read-through later).
	off := int64(len(segMagic))
	for off < int64(len(buf)) {
		k, payload, n, perr := parseRecord(buf[off:])
		if perr != nil {
			break
		}
		v := make([]byte, len(payload))
		copy(v, payload)
		hq.items = append(hq.items, fanoutItem{k: k, v: v})
		off += n
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, err
	}
	return hq, nil
}

func (hq *handoffQueue) resetFile() error {
	if hq.f == nil {
		return nil
	}
	if err := hq.f.Truncate(0); err != nil {
		return err
	}
	_, err := hq.f.WriteAt([]byte(segMagic), 0)
	return err
}

// enqueue appends a hint, rejecting past the cap. Duplicate keys are
// collapsed — re-delivering the same content twice is pointless.
func (hq *handoffQueue) enqueue(k Key, v []byte) error {
	hq.mu.Lock()
	defer hq.mu.Unlock()
	for _, it := range hq.items[hq.head:] {
		if it.k == k {
			return nil
		}
	}
	if len(hq.items)-hq.head >= hq.cap {
		return errHandoffFull
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	hq.items = append(hq.items, fanoutItem{k: k, v: cp})
	if hq.f != nil {
		// Best-effort append at the logical end of the file. File offset
		// bookkeeping: the file holds every item in hq.items (delivered
		// head included, until the reset), in order.
		if st, err := hq.f.Stat(); err == nil {
			hq.f.WriteAt(appendRecord(nil, k, cp), st.Size())
		}
	}
	return nil
}

// peek returns the oldest undelivered hint.
func (hq *handoffQueue) peek() (Key, []byte, bool) {
	hq.mu.Lock()
	defer hq.mu.Unlock()
	if hq.head >= len(hq.items) {
		return Key{}, nil, false
	}
	it := hq.items[hq.head]
	return it.k, it.v, true
}

// pop marks the oldest hint delivered; when the backlog empties the
// backing file resets in one truncate (the crash-safe point — before it,
// a restart re-delivers everything, which is harmless).
func (hq *handoffQueue) pop() {
	hq.mu.Lock()
	defer hq.mu.Unlock()
	if hq.head < len(hq.items) {
		hq.head++
	}
	if hq.head == len(hq.items) {
		hq.items = hq.items[:0]
		hq.head = 0
		hq.resetFile()
	}
}

// depth is the undelivered count.
func (hq *handoffQueue) depth() int {
	hq.mu.Lock()
	defer hq.mu.Unlock()
	return len(hq.items) - hq.head
}

func (hq *handoffQueue) close() error {
	hq.mu.Lock()
	defer hq.mu.Unlock()
	if hq.f == nil {
		return nil
	}
	hq.f.Sync()
	err := hq.f.Close()
	hq.f = nil
	return err
}
