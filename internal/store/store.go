package store

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
)

// Key is a 128-bit content address. The service derives it from the full
// request key (instance fingerprint plus every result-determining
// parameter), so a stored value is a pure function of its Key — two
// replicas can never hold conflicting values for the same Key, which is
// what makes replication here conflict-free: writes are idempotent,
// re-puts are no-ops, and "newest wins" never has to be decided.
//
// Like sched.Fingerprint, the address defends against accidental
// collisions (2⁻¹²⁸), not adversarial construction.
type Key struct {
	Hi, Lo uint64
}

// IsZero reports the zero key ("not computed"); real keys never are.
func (k Key) IsZero() bool { return k.Hi == 0 && k.Lo == 0 }

// String renders the key as 32 hex digits — the peer protocol's wire form.
func (k Key) String() string {
	var b [16]byte
	putU64(b[:8], k.Hi)
	putU64(b[8:], k.Lo)
	return hex.EncodeToString(b[:])
}

// ParseKey inverts String.
func ParseKey(s string) (Key, error) {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 16 {
		return Key{}, fmt.Errorf("store: bad key %q", s)
	}
	return Key{Hi: getU64(b[:8]), Lo: getU64(b[8:])}, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * (7 - i)))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// ErrNotFound reports a key the store (and, for replicated stores, every
// reachable owner) does not hold.
var ErrNotFound = errors.New("store: not found")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Tier names, returned by Get so callers can meter per-tier hit counts and
// latencies without knowing the stack's composition.
const (
	TierMem  = "mem"
	TierDisk = "disk"
	TierPeer = "peer"
)

// PlanStore is the multi-backend storage interface for finished plan and
// estimate payloads, in the style of fabbench's db iface and pebble-bench's
// pluggable Database: mem (sharded LRU), disk (append-only checksummed
// segment log), and replicated (consistent-hash peer routing over either)
// all serve it, and Tiered layers them.
//
// Values are opaque bytes owned by the caller; implementations must not
// retain or mutate the slice passed to Put after returning, and callers
// must not mutate the slice returned by Get (disk returns fresh copies;
// mem returns its interned value).
type PlanStore interface {
	// Name identifies the backend ("mem", "disk", "replicated", "tiered").
	Name() string
	// Get returns the value for k and the tier that served it (TierMem,
	// TierDisk, or TierPeer), or ErrNotFound. A replicated store falls
	// through to peer fetch on local miss (read-through) and warms its
	// local tier with what it finds.
	Get(ctx context.Context, k Key) (val []byte, tier string, err error)
	// GetLocal is Get restricted to this node's own tiers — the peer
	// protocol serves it, so one replica asking another can never cascade
	// into a fetch storm.
	GetLocal(ctx context.Context, k Key) (val []byte, tier string, err error)
	// Put stores k's value. Content addressing makes it idempotent: a key
	// already present is a cheap no-op (first write wins; the values are
	// byte-identical by construction). A replicated store also fans the
	// write out to the key's owner peers asynchronously (write-behind),
	// queueing hinted handoff for owners that are down.
	Put(ctx context.Context, k Key, v []byte) error
	// PutLocal is Put restricted to this node (no replication fan-out) —
	// the write half of the peer protocol.
	PutLocal(ctx context.Context, k Key, v []byte) error
	// Keys samples up to limit locally-held keys (anti-entropy's seed;
	// order unspecified). limit <= 0 means all.
	Keys(limit int) []Key
	// Stats reads the cumulative ledger, merged across wrapped tiers.
	Stats() Stats
	// WaitWarm blocks until the store is ready to serve a fleet: the disk
	// index is rebuilt (done by Open) and the replicated startup
	// anti-entropy pass has completed. mem and disk return immediately.
	WaitWarm(ctx context.Context) error
	// Close flushes (final fsync), stops background work, and closes the
	// whole stack, wrapped tiers included.
	Close() error
}

// Stats is the cumulative ledger every backend keeps; wrapping stores
// merge their own counters with their children's. All counters are
// monotone over the store's lifetime.
type Stats struct {
	// Entries is live keys held locally (gauge, not a counter).
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	// PutSkips counts idempotent re-puts of an already-held key.
	PutSkips  uint64 `json:"put_skips"`
	PutErrors uint64 `json:"put_errors"`
	// CorruptDropped counts records quarantined instead of served: torn
	// tails and implausible framing at open, CRC mismatches at open or at
	// read time. A quarantined record is counted, skipped, and (at read
	// time) unindexed — never returned, never fatal.
	CorruptDropped uint64 `json:"corrupt_dropped"`
	// Replication ledger: fan-out writes queued as hinted handoff because
	// an owner peer was down, handoff records later delivered, handoff
	// records dropped at the queue cap, read-through peer fetches and
	// their failures, and keys pulled by the startup anti-entropy pass.
	HandoffQueued     uint64 `json:"handoff_queued"`
	HandoffDrained    uint64 `json:"handoff_drained"`
	HandoffDropped    uint64 `json:"handoff_dropped"`
	PeerFetches       uint64 `json:"peer_fetches"`
	PeerFetchFails    uint64 `json:"peer_fetch_fails"`
	AntiEntropyPulled uint64 `json:"anti_entropy_pulled"`
	// Disk ledger.
	BytesLive   int64  `json:"bytes_live"`
	BytesTotal  int64  `json:"bytes_total"`
	Segments    int    `json:"segments"`
	Compactions uint64 `json:"compactions"`
}

// merge folds o into s.
func (s *Stats) merge(o Stats) {
	s.Entries += o.Entries
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Puts += o.Puts
	s.PutSkips += o.PutSkips
	s.PutErrors += o.PutErrors
	s.CorruptDropped += o.CorruptDropped
	s.HandoffQueued += o.HandoffQueued
	s.HandoffDrained += o.HandoffDrained
	s.HandoffDropped += o.HandoffDropped
	s.PeerFetches += o.PeerFetches
	s.PeerFetchFails += o.PeerFetchFails
	s.AntiEntropyPulled += o.AntiEntropyPulled
	s.BytesLive += o.BytesLive
	s.BytesTotal += o.BytesTotal
	s.Segments += o.Segments
	s.Compactions += o.Compactions
}

// Tiered chains stores into read-through/write-behind layers: Get tries
// each tier in order and promotes a hit into every tier above it; Put
// writes through all tiers. The first tier is the fastest (mem), the last
// the most durable (disk or replicated).
type Tiered struct {
	tiers []PlanStore
}

// NewTiered layers the given stores, first = top.
func NewTiered(tiers ...PlanStore) *Tiered {
	return &Tiered{tiers: tiers}
}

// Name implements PlanStore.
func (t *Tiered) Name() string { return "tiered" }

// Get implements PlanStore: read-through with promotion.
func (t *Tiered) Get(ctx context.Context, k Key) ([]byte, string, error) {
	for i, ps := range t.tiers {
		v, tier, err := ps.Get(ctx, k)
		if err != nil {
			continue
		}
		for j := 0; j < i; j++ {
			_ = t.tiers[j].PutLocal(ctx, k, v) // promotion is best-effort
		}
		return v, tier, nil
	}
	return nil, "", ErrNotFound
}

// GetLocal implements PlanStore: like Get but no tier may leave the node.
func (t *Tiered) GetLocal(ctx context.Context, k Key) ([]byte, string, error) {
	for _, ps := range t.tiers {
		if v, tier, err := ps.GetLocal(ctx, k); err == nil {
			return v, tier, nil
		}
	}
	return nil, "", ErrNotFound
}

// Put implements PlanStore: write-through to every tier; the first error
// (deepest tier wins reporting) surfaces, but every tier is attempted.
func (t *Tiered) Put(ctx context.Context, k Key, v []byte) error {
	var firstErr error
	for _, ps := range t.tiers {
		if err := ps.Put(ctx, k, v); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PutLocal implements PlanStore.
func (t *Tiered) PutLocal(ctx context.Context, k Key, v []byte) error {
	var firstErr error
	for _, ps := range t.tiers {
		if err := ps.PutLocal(ctx, k, v); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Keys implements PlanStore: the deepest tier holds the most complete set.
func (t *Tiered) Keys(limit int) []Key {
	if len(t.tiers) == 0 {
		return nil
	}
	return t.tiers[len(t.tiers)-1].Keys(limit)
}

// Stats implements PlanStore.
func (t *Tiered) Stats() Stats {
	var s Stats
	for _, ps := range t.tiers {
		s.merge(ps.Stats())
	}
	return s
}

// WaitWarm implements PlanStore: every tier must be warm.
func (t *Tiered) WaitWarm(ctx context.Context) error {
	for _, ps := range t.tiers {
		if err := ps.WaitWarm(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close implements PlanStore.
func (t *Tiered) Close() error {
	var firstErr error
	for _, ps := range t.tiers {
		if err := ps.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PeerView returns the node-local face of ps for serving the peer
// protocol: a Replicated store unwraps to its local tiers (a peer's
// request must never cascade into another peer fetch), everything else
// already is node-local.
func PeerView(ps PlanStore) PlanStore {
	if l, ok := ps.(interface{ Local() PlanStore }); ok {
		return l.Local()
	}
	return ps
}

// mix is the SplitMix64 finalizer, the package's shared avalanche.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
