package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy says when the disk store makes appended records durable.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every committed record: a record that Put
	// returned nil for survives power loss. Slowest; the safe default
	// for anything that cares about machine crashes.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a timer (default 100ms): an OS crash can
	// lose the last interval's records, never corrupt older ones.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the OS: a process crash loses
	// nothing (the page cache survives), a machine crash loses unsynced
	// tails. The rebuild's torn-tail truncation makes even that safe.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy maps a flag string to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("store: unknown fsync policy %q (want always|interval|never)", s)
}

// DiskConfig configures Open.
type DiskConfig struct {
	Fsync         FsyncPolicy   // default FsyncInterval
	FsyncInterval time.Duration // default 100ms
	// SegmentBytes rolls the active segment once it exceeds this size
	// (default 8 MiB). Compaction granularity, not a correctness knob.
	SegmentBytes int64
	// CompactBytes arms auto-compaction: once total log bytes exceed it
	// and more than half are dead (quarantined or superseded), Put
	// compacts inline. 0 means auto-compaction off (Compact still works).
	CompactBytes int64
	// WriteFault, when set, intercepts every record append for fault
	// injection: it returns how many of the framed bytes to actually
	// write and an error to surface. The partial bytes ARE written —
	// that is the point: a torn write leaves a torn tail on disk.
	WriteFault func(rec []byte) (int, error)
	// ReadFault, when set, may mutate the freshly-read record bytes
	// before checksum verification — bit flips and short reads land here.
	ReadFault func(b []byte)
}

// Disk is the durable backend: an append-only segment log under one
// directory, with the framing and quarantine rules in record.go. Open
// rebuilds the full key index by scanning every segment, truncating torn
// tails and counting (never dying on) corrupt records, so a store that
// was killed mid-write always reopens to exactly its committed prefix.
type Disk struct {
	dir string
	cfg DiskConfig

	mu       sync.RWMutex // guards index, segs, sizes, dirty, closed
	index    map[Key]recLoc
	segs     map[int]*segment
	activeID int
	live     int64 // framed bytes reachable from the index
	total    int64 // bytes on disk, dead records and headers included
	dirty    bool  // unsynced appends (interval policy)
	closed   bool

	puts, putSkips, putErrors atomic.Uint64
	hits, misses              atomic.Uint64
	corruptDropped            atomic.Uint64
	compactions               atomic.Uint64

	stopSync chan struct{}
	syncDone chan struct{}
}

type recLoc struct {
	seg int
	off int64
	n   int64
}

type segment struct {
	id   int
	f    *os.File
	size int64
}

func segName(id int) string { return fmt.Sprintf("seg-%06d.log", id) }

// Open rebuilds a Disk store from dir, creating it if needed. The scan is
// the recovery path: per segment, records parse in order until the first
// torn frame (truncated away, counted once — some bytes of it were on
// disk) or implausible length (framing lost, the rest of the segment is
// truncated, counted once); a complete frame with a bad checksum is
// skipped and counted, and the scan continues at the next frame.
func Open(dir string, cfg DiskConfig) (*Disk, error) {
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncInterval
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = 100 * time.Millisecond
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Disk{
		dir:      dir,
		cfg:      cfg,
		index:    make(map[Key]recLoc),
		segs:     make(map[int]*segment),
		stopSync: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := d.scanSegment(id); err != nil {
			d.closeFiles()
			return nil, err
		}
	}
	if len(ids) > 0 && d.segs[ids[len(ids)-1]] != nil {
		d.activeID = ids[len(ids)-1]
	} else if err := d.rollLocked(); err != nil {
		d.closeFiles()
		return nil, err
	}
	if cfg.Fsync == FsyncInterval {
		go d.syncLoop()
	} else {
		close(d.syncDone)
	}
	return d, nil
}

func listSegments(dir string) ([]int, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, de := range names {
		n := de.Name()
		if !strings.HasPrefix(n, "seg-") || !strings.HasSuffix(n, ".log") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(n, "seg-"), ".log"))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// scanSegment replays one segment into the index. Duplicate keys keep the
// first location seen — values are content-addressed, so any copy is the
// right copy, and a crash between compaction's copy and its delete just
// leaves content-identical duplicates.
func (d *Disk) scanSegment(id int) error {
	path := filepath.Join(d.dir, segName(id))
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	seg := &segment{id: id, f: f}
	if len(buf) < len(segMagic) {
		// Torn before the header finished: no record was ever committed
		// here, so resetting to an empty segment loses nothing.
		if err := d.resetSegment(seg); err != nil {
			f.Close()
			return err
		}
		d.segs[id] = seg
		d.total += seg.size
		return nil
	}
	if string(buf[:len(segMagic)]) != segMagic {
		// Not our file format: move the whole file out of the scan path
		// rather than guess at its framing.
		f.Close()
		d.corruptDropped.Add(1)
		return os.Rename(path, path+".bad")
	}
	off := int64(len(segMagic))
	for off < int64(len(buf)) {
		k, _, n, perr := parseRecord(buf[off:])
		switch perr {
		case nil:
			if _, dup := d.index[k]; !dup {
				d.index[k] = recLoc{seg: id, off: off, n: n}
				d.live += n
			}
			off += n
		case errBadCRC:
			d.corruptDropped.Add(1)
			off += n
		default: // errTorn, errBadLen: framing ends here
			d.corruptDropped.Add(1)
			if terr := f.Truncate(off); terr != nil {
				f.Close()
				return terr
			}
			buf = buf[:off]
		}
	}
	seg.size = int64(len(buf))
	d.segs[id] = seg
	d.total += seg.size
	return nil
}

// resetSegment truncates seg to a bare magic header.
func (d *Disk) resetSegment(seg *segment) error {
	if err := seg.f.Truncate(0); err != nil {
		return err
	}
	if _, err := seg.f.WriteAt([]byte(segMagic), 0); err != nil {
		return err
	}
	seg.size = int64(len(segMagic))
	return nil
}

// rollLocked creates a fresh active segment with the next unused id.
func (d *Disk) rollLocked() error {
	id := d.activeID + 1
	for d.segs[id] != nil {
		id++
	}
	seg, err := d.newSegment(id)
	if err != nil {
		return err
	}
	d.segs[id] = seg
	d.activeID = id
	d.total += seg.size
	return nil
}

func (d *Disk) newSegment(id int) (*segment, error) {
	f, err := os.OpenFile(filepath.Join(d.dir, segName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return &segment{id: id, f: f, size: int64(len(segMagic))}, nil
}

// Name implements PlanStore.
func (d *Disk) Name() string { return "disk" }

// Get implements PlanStore: locate, read, re-verify the checksum. A
// record that fails verification at read time (latent bit rot) is
// quarantined on the spot — dropped from the index, counted, reported as
// a miss — so a corrupt byte can surface as a recompute but never as a
// wrong answer.
func (d *Disk) Get(_ context.Context, k Key) ([]byte, string, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, "", ErrClosed
	}
	loc, ok := d.index[k]
	if !ok {
		d.mu.RUnlock()
		d.misses.Add(1)
		return nil, "", ErrNotFound
	}
	// The read happens under RLock so compaction (which holds the write
	// lock while it closes and deletes segment files) cannot race it.
	seg := d.segs[loc.seg]
	buf := make([]byte, loc.n)
	_, err := seg.f.ReadAt(buf, loc.off)
	if err == nil && d.cfg.ReadFault != nil {
		d.cfg.ReadFault(buf)
	}
	var payload []byte
	if err == nil {
		var gotK Key
		gotK, payload, _, err = parseRecord(buf)
		if err == nil && gotK != k {
			err = errBadCRC
		}
	}
	d.mu.RUnlock()
	if err != nil {
		d.quarantine(k, loc)
		return nil, "", ErrNotFound
	}
	d.hits.Add(1)
	return payload, TierDisk, nil
}

// quarantine drops k from the index after a failed read-time verify.
func (d *Disk) quarantine(k Key, loc recLoc) {
	d.mu.Lock()
	if cur, ok := d.index[k]; ok && cur == loc {
		delete(d.index, k)
		d.live -= loc.n
		d.corruptDropped.Add(1)
	}
	d.mu.Unlock()
	d.misses.Add(1)
}

// GetLocal implements PlanStore; disk is always local.
func (d *Disk) GetLocal(ctx context.Context, k Key) ([]byte, string, error) {
	return d.Get(ctx, k)
}

// Put implements PlanStore: append one framed record to the active
// segment, then apply the fsync policy. Idempotent on a present key.
func (d *Disk) Put(_ context.Context, k Key, v []byte) error {
	if len(v) > maxPayload {
		return fmt.Errorf("store: payload %d exceeds max %d", len(v), maxPayload)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, ok := d.index[k]; ok {
		d.putSkips.Add(1)
		return nil
	}
	if seg := d.segs[d.activeID]; seg.size >= d.cfg.SegmentBytes {
		if err := d.rollLocked(); err != nil {
			d.putErrors.Add(1)
			return err
		}
	}
	seg := d.segs[d.activeID]
	rec := appendRecord(nil, k, v)
	wn := len(rec)
	var werr error
	if d.cfg.WriteFault != nil {
		wn, werr = d.cfg.WriteFault(rec)
		if wn > len(rec) {
			wn = len(rec)
		}
	}
	n, err := seg.f.WriteAt(rec[:wn], seg.size)
	seg.size += int64(n)
	d.total += int64(n)
	if werr == nil {
		werr = err
	}
	if werr != nil || n < len(rec) {
		// A torn append: the partial frame stays on disk (exactly what a
		// crash leaves) but is never indexed, so this process keeps
		// serving the committed prefix and the next Open truncates it.
		d.putErrors.Add(1)
		if werr == nil {
			werr = fmt.Errorf("store: short write (%d of %d bytes)", n, len(rec))
		}
		return werr
	}
	d.index[k] = recLoc{seg: seg.id, off: seg.size - int64(len(rec)), n: int64(len(rec))}
	d.live += int64(len(rec))
	d.puts.Add(1)
	switch d.cfg.Fsync {
	case FsyncAlways:
		if err := seg.f.Sync(); err != nil {
			d.putErrors.Add(1)
			return err
		}
	case FsyncInterval:
		d.dirty = true
	}
	if d.cfg.CompactBytes > 0 && d.total > d.cfg.CompactBytes && d.total-d.live > d.total/2 {
		return d.compactLocked()
	}
	return nil
}

// PutLocal implements PlanStore.
func (d *Disk) PutLocal(ctx context.Context, k Key, v []byte) error {
	return d.Put(ctx, k, v)
}

// Keys implements PlanStore.
func (d *Disk) Keys(limit int) []Key {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Key, 0, len(d.index))
	for k := range d.index {
		out = append(out, k)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Compact rewrites all live records into fresh segments and deletes the
// old files. Crash-safe by construction: the copies are written and
// synced before any delete, and a crash in between leaves harmless
// content-identical duplicates for the next scan to dedupe.
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.compactLocked()
}

func (d *Disk) compactLocked() error {
	// Stage 1: read back every live record, verifying checksums (rot
	// found here is quarantined like any read-time failure).
	type liveRec struct {
		k   Key
		rec []byte
	}
	recs := make([]liveRec, 0, len(d.index))
	for k, loc := range d.index {
		buf := make([]byte, loc.n)
		if _, err := d.segs[loc.seg].f.ReadAt(buf, loc.off); err != nil {
			d.corruptDropped.Add(1)
			continue
		}
		if _, err := verifyRecord(buf); err != nil {
			d.corruptDropped.Add(1)
			continue
		}
		recs = append(recs, liveRec{k: k, rec: buf})
	}
	// Stage 2: write the survivors into brand-new segments, entirely off
	// to the side — the store's visible state is untouched until the new
	// files are durable, so any error here aborts with nothing lost.
	newSegs := make(map[int]*segment)
	newIndex := make(map[Key]recLoc, len(recs))
	var newLive, newTotal int64
	nextID := d.activeID
	abort := func(err error) error {
		for id, seg := range newSegs {
			seg.f.Close()
			os.Remove(filepath.Join(d.dir, segName(id)))
		}
		return err
	}
	roll := func() (*segment, error) {
		nextID++
		for d.segs[nextID] != nil || newSegs[nextID] != nil {
			nextID++
		}
		seg, err := d.newSegment(nextID)
		if err != nil {
			return nil, err
		}
		newSegs[nextID] = seg
		newTotal += seg.size
		return seg, nil
	}
	seg, err := roll()
	if err != nil {
		return abort(err)
	}
	for _, lr := range recs {
		if seg.size >= d.cfg.SegmentBytes {
			if seg, err = roll(); err != nil {
				return abort(err)
			}
		}
		n, err := seg.f.WriteAt(lr.rec, seg.size)
		seg.size += int64(n)
		newTotal += int64(n)
		if err != nil {
			return abort(err)
		}
		newIndex[lr.k] = recLoc{seg: seg.id, off: seg.size - int64(n), n: int64(n)}
		newLive += int64(n)
	}
	for _, s := range newSegs {
		if err := s.f.Sync(); err != nil {
			return abort(err)
		}
	}
	// Stage 3, the point of no return: the new segments are durable, so
	// swap them in and delete the old files.
	old := d.segs
	d.segs, d.index = newSegs, newIndex
	d.live, d.total = newLive, newTotal
	d.activeID = nextID
	for id, s := range old {
		s.f.Close()
		os.Remove(filepath.Join(d.dir, segName(id)))
	}
	d.compactions.Add(1)
	return nil
}

// Stats implements PlanStore.
func (d *Disk) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return Stats{
		Entries:        len(d.index),
		Hits:           d.hits.Load(),
		Misses:         d.misses.Load(),
		Puts:           d.puts.Load(),
		PutSkips:       d.putSkips.Load(),
		PutErrors:      d.putErrors.Load(),
		CorruptDropped: d.corruptDropped.Load(),
		BytesLive:      d.live,
		BytesTotal:     d.total,
		Segments:       len(d.segs),
		Compactions:    d.compactions.Load(),
	}
}

// WaitWarm implements PlanStore; Open already rebuilt the index.
func (d *Disk) WaitWarm(context.Context) error { return nil }

func (d *Disk) syncLoop() {
	defer close(d.syncDone)
	t := time.NewTicker(d.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stopSync:
			return
		case <-t.C:
			d.mu.Lock()
			if d.dirty && !d.closed {
				d.dirty = false
				if seg, ok := d.segs[d.activeID]; ok {
					seg.f.Sync()
				}
			}
			d.mu.Unlock()
		}
	}
}

// Close implements PlanStore: final sync, stop the sync loop, close files.
func (d *Disk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	var firstErr error
	for _, seg := range d.segs {
		if err := seg.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.mu.Unlock()
	close(d.stopSync)
	<-d.syncDone
	d.mu.Lock()
	d.closeFiles()
	d.mu.Unlock()
	return firstErr
}

func (d *Disk) closeFiles() {
	for _, seg := range d.segs {
		seg.f.Close()
	}
}
