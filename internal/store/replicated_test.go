package store

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
)

// swapHandler lets a test bring one replica's peer endpoint up and down
// without restarting its listener.
type swapHandler struct {
	mu   sync.Mutex
	h    http.Handler
	down bool
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) setDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h, down := s.h, s.down
	s.mu.Unlock()
	if down || h == nil {
		http.Error(w, `{"error":"replica down"}`, http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testCluster struct {
	urls  []string
	swaps []*swapHandler
	nodes []*Replicated
}

// newTestCluster brings up n replicas over httptest servers, each a
// Replicated over its own Mem, fully meshed. prefill seeds node i's local
// store before the node (and its anti-entropy pass) starts.
func newTestCluster(t *testing.T, n, replication int, prefill func(i int, m *Mem)) *testCluster {
	t.Helper()
	c := &testCluster{}
	for i := 0; i < n; i++ {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		c.swaps = append(c.swaps, sw)
		c.urls = append(c.urls, srv.URL)
	}
	for i := 0; i < n; i++ {
		m := NewMem(1<<22, 4)
		if prefill != nil {
			prefill(i, m)
		}
		rep, err := NewReplicated(m, ReplicatedConfig{
			Self:          c.urls[i],
			Peers:         c.urls,
			Replication:   replication,
			DrainInterval: 25 * time.Millisecond,
			OpTimeout:     2 * time.Second,
			Client: client.New(client.Config{
				MaxAttempts:      1,
				AttemptTimeout:   2 * time.Second,
				BreakerThreshold: -1, // the test toggles peers up/down faster than a cooldown
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rep.Close() })
		c.nodes = append(c.nodes, rep)
		c.swaps[i].set(PeerHandler(PeerView(rep)))
	}
	// Let every startup anti-entropy pass finish before the test starts
	// mutating state, so a late pull cannot race the scenario.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, nd := range c.nodes {
		if err := nd.WaitWarm(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// eventually polls cond for up to 5s — replication is asynchronous by
// design, so the tests assert convergence, not immediacy.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicatedFanoutAndReadThrough(t *testing.T) {
	c := newTestCluster(t, 3, 2, nil)
	ctx := context.Background()

	const keys = 30
	for i := 0; i < keys; i++ {
		if err := c.nodes[0].Put(ctx, tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Async fan-out: every ring owner eventually holds every key locally.
	eventually(t, "fan-out to all owners", func() bool {
		for i := 0; i < keys; i++ {
			for _, owner := range c.nodes[0].owners(tkey(i)) {
				for j, u := range c.urls {
					if u != owner {
						continue
					}
					if _, _, err := c.nodes[j].GetLocal(ctx, tkey(i)); err != nil {
						return false
					}
				}
			}
		}
		return true
	})

	// Read-through: every node serves every key with identical bytes,
	// fetching from a peer when it is not an owner.
	for j := range c.nodes {
		for i := 0; i < keys; i++ {
			v, tier, err := c.nodes[j].Get(ctx, tkey(i))
			if err != nil {
				t.Fatalf("node %d key %d: %v", j, i, err)
			}
			if !bytes.Equal(v, tval(i)) {
				t.Fatalf("node %d key %d: wrong bytes (tier %s)", j, i, tier)
			}
		}
		// The write-behind promotion made every key local; a second pass
		// never leaves the node.
		fetches := c.nodes[j].peerFetches.Load()
		for i := 0; i < keys; i++ {
			if _, _, err := c.nodes[j].Get(ctx, tkey(i)); err != nil {
				t.Fatalf("node %d key %d second read: %v", j, i, err)
			}
		}
		if got := c.nodes[j].peerFetches.Load(); got != fetches {
			t.Fatalf("node %d re-read went to peers: %d -> %d", j, fetches, got)
		}
	}
}

func TestReplicatedHandoffQueueAndDrain(t *testing.T) {
	c := newTestCluster(t, 3, 2, nil)
	ctx := context.Background()

	// Take node 2 down, then write keys it owns from node 0: the fan-out
	// must detour into its hint queue instead of losing the writes.
	c.swaps[2].setDown(true)
	var owned []int
	for i := 0; i < 200 && len(owned) < 5; i++ {
		for _, o := range c.nodes[0].owners(tkey(i)) {
			if o == c.urls[2] {
				owned = append(owned, i)
				break
			}
		}
	}
	if len(owned) < 5 {
		t.Fatalf("ring gave node 2 only %d of 200 keys", len(owned))
	}
	for _, i := range owned {
		if err := c.nodes[0].Put(ctx, tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "hints queued for the dead peer", func() bool {
		return c.nodes[0].handoffQueued.Load() >= uint64(len(owned))
	})
	for _, i := range owned {
		if _, _, err := c.nodes[2].GetLocal(ctx, tkey(i)); err == nil {
			t.Fatalf("key %d reached a down replica", i)
		}
	}

	// Recovery: the drain loop delivers the backlog and the keys appear.
	c.swaps[2].setDown(false)
	eventually(t, "handoff drain to the recovered peer", func() bool {
		for _, i := range owned {
			if _, _, err := c.nodes[2].GetLocal(ctx, tkey(i)); err != nil {
				return false
			}
		}
		return true
	})
	if got := c.nodes[0].handoffDrained.Load(); got < uint64(len(owned)) {
		t.Fatalf("handoff_drained=%d, want >= %d", got, len(owned))
	}
	for _, i := range owned {
		v, _, err := c.nodes[2].GetLocal(ctx, tkey(i))
		if err != nil || !bytes.Equal(v, tval(i)) {
			t.Fatalf("key %d after drain: %v", i, err)
		}
	}
}

func TestReplicatedAntiEntropyWarm(t *testing.T) {
	// Replication 3 on a 3-node fleet: every node owns every key. Nodes 0
	// and 1 start with the data; node 2 starts empty and must pull what it
	// owns before declaring itself warm.
	const keys = 20
	c := newTestCluster(t, 3, 3, func(i int, m *Mem) {
		if i == 2 {
			return
		}
		for k := 0; k < keys; k++ {
			_ = m.Put(context.Background(), tkey(k), tval(k))
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.nodes[2].WaitWarm(ctx); err != nil {
		t.Fatal(err)
	}
	st := c.nodes[2].Stats()
	if st.AntiEntropyPulled != keys {
		t.Fatalf("anti_entropy_pulled=%d, want %d", st.AntiEntropyPulled, keys)
	}
	for k := 0; k < keys; k++ {
		v, _, err := c.nodes[2].GetLocal(context.Background(), tkey(k))
		if err != nil || !bytes.Equal(v, tval(k)) {
			t.Fatalf("key %d after warm-up: %v", k, err)
		}
	}
}

func TestReplicatedPutSurvivesDeadPeerAndCloseIsClean(t *testing.T) {
	c := newTestCluster(t, 2, 2, nil)
	ctx := context.Background()
	c.swaps[1].setDown(true)
	// Writes never block or fail on a dead peer: local durability first,
	// replication is strictly asynchronous.
	for i := 0; i < 10; i++ {
		if err := c.nodes[0].Put(ctx, tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.nodes[0].GetLocal(ctx, tkey(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Close with a backlog still queued must not hang or error.
	if err := c.nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent close.
	if err := c.nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
}
