// Package store is the durable, replicated plan store under the suud
// fleet: content-addressed storage for finished plan and estimate
// payloads, with a mem tier (sharded byte-LRU), a disk tier (append-only
// checksummed segment log), and a replicated tier (consistent hashing
// over a static replica set), composable via Tiered. The service layers
// it under its typed response LRU as read-through/write-behind tiers.
//
// # Consistency model
//
// A Key is a 128-bit digest of everything that determines the answer, so
// a value is a pure function of its key: replicas can never disagree,
// every write of a key carries the same bytes, and replication needs no
// versioning, no conflict resolution, and no read-repair ordering.
// Idempotence is the whole protocol — hinted handoff may deliver twice,
// anti-entropy may race a fan-out, a crashed compaction may leave
// duplicate records, and all of it is harmless by construction. The
// operational stance mirrors the paper's: every stored byte and every
// peer is a prediction that may be wrong, and the system's job is to
// keep making progress when it is.
//
// # Durability (disk tier)
//
// Records append to segment files framed as
// [len][crc32c][keyHi][keyLo][payload]; the checksum covers key and
// payload. Fsync policy decides the crash window: FsyncAlways means a
// nil Put survives power loss; FsyncInterval (default) bounds machine-
// crash loss to the last interval; FsyncNever still survives process
// crashes (the page cache persists) and stays *consistent* under machine
// crashes — the rebuild just sees a shorter committed prefix.
//
// # Quarantine
//
// A quarantined record is one the store refuses to serve because its
// bytes cannot be trusted: a torn tail (crash mid-append), an implausible
// length field (framing lost), or a checksum mismatch (bit rot), found
// either at the open-time rebuild or on a read. Quarantine means counted
// in Stats.CorruptDropped and treated as a miss — the worst outcome of
// corruption is a recompute, never a wrong answer and never a crash.
// Only the damaged record is lost; everything before and (for CRC
// failures) after it keeps serving.
//
// # Replication, handoff, and warm-up
//
// Each key has R owners on a consistent-hash ring over the static peer
// set. A local miss reads through the remote owners and warms the local
// tiers; a local write fans out to the owners asynchronously. An owner
// that is down gets its writes as hints in a per-peer queue (persisted
// to disk when configured) that drains when it returns — at-least-once
// delivery, bounded by a cap that drops (and counts) overflow rather
// than block the write path. On startup a replica rebuilds its disk
// index, then runs one anti-entropy pass pulling the keys it owns but
// missed while down; WaitWarm gates /readyz on both, so a rebooting
// replica never claims ready while cold. Handoff and anti-entropy are
// best-effort accelerators: the correctness backstop is always the
// read-through path plus recompute.
package store
