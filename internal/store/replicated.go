package store

import (
	"context"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/trace"
)

// ReplicatedConfig configures NewReplicated.
type ReplicatedConfig struct {
	// Self is this node's own peer base URL; it must appear in Peers so
	// the ring can tell which owners are remote.
	Self string
	// Peers is the static replica set (base URLs, self included).
	Peers []string
	// Replication is how many ring owners each key has (default
	// min(2, len(Peers))). Owners ≥ the full set pins every key
	// everywhere.
	Replication int
	// Client is the resilient HTTP client used for all peer traffic; a
	// default one (short attempt timeout, per-peer breakers) is built
	// when nil.
	Client *client.Client
	// HandoffDir, when set, persists each peer's hinted-handoff queue to
	// disk so hints survive a restart; empty keeps them in memory only.
	HandoffDir string
	// HandoffCap bounds each peer's queue (default 4096); writes past it
	// are dropped and counted, never blocked on.
	HandoffCap int
	// DrainInterval is how often queued hints are retried (default 1s).
	DrainInterval time.Duration
	// AntiEntropyKeys caps how many keys the startup pass pulls per peer
	// (default 4096).
	AntiEntropyKeys int
	// OpTimeout bounds one background peer operation — fan-out put,
	// handoff delivery, anti-entropy step (default 5s).
	OpTimeout time.Duration
}

// Replicated routes keys over a static replica set by consistent hashing
// (64 virtual nodes per peer) on top of a node-local store. Reads fall
// through to the key's remote owners on local miss and warm the local
// tiers with what they find; writes land locally first and fan out to the
// owners asynchronously (write-behind), detouring through a per-peer
// hinted-handoff queue whenever an owner is down and draining it on
// recovery. A startup anti-entropy pass pulls the keys this node owns but
// missed while it was dead; /readyz waits for it via WaitWarm.
//
// Because values are content-addressed, all of this is conflict-free:
// delivering a hint twice, racing a fan-out with an anti-entropy pull, or
// crashing mid-drain can only ever re-write identical bytes.
type Replicated struct {
	local PlanStore
	cfg   ReplicatedConfig
	ring  hashRing
	self  string
	peers map[string]*peerClient // remote peers only, by normalized URL

	fanout   chan fanoutItem
	handoffs map[string]*handoffQueue

	warm     chan struct{}
	warmErr  error
	stop     chan struct{}
	workerWG sync.WaitGroup

	handoffQueued     atomic.Uint64
	handoffDrained    atomic.Uint64
	handoffDropped    atomic.Uint64
	peerFetches       atomic.Uint64
	peerFetchFails    atomic.Uint64
	antiEntropyPulled atomic.Uint64
	closed            atomic.Bool
}

type fanoutItem struct {
	k Key
	v []byte
	// id is the originating request's trace ID (zero when untraced): the
	// fan-out runs long after that request finished, so only the value-
	// typed ID crosses the channel, never a live trace context.
	id trace.ID
}

// NewReplicated wraps local with the replication layer and starts its
// background work (fan-out workers, handoff drainer, anti-entropy pass).
func NewReplicated(local PlanStore, cfg ReplicatedConfig) (*Replicated, error) {
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Peers) {
		cfg.Replication = len(cfg.Peers)
	}
	if cfg.HandoffCap <= 0 {
		cfg.HandoffCap = 4096
	}
	if cfg.DrainInterval <= 0 {
		cfg.DrainInterval = time.Second
	}
	if cfg.AntiEntropyKeys <= 0 {
		cfg.AntiEntropyKeys = 4096
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = client.New(client.Config{
			MaxAttempts:    2,
			AttemptTimeout: 2 * time.Second,
			BaseBackoff:    50 * time.Millisecond,
		})
	}
	r := &Replicated{
		local:    local,
		cfg:      cfg,
		self:     normPeer(cfg.Self),
		peers:    make(map[string]*peerClient),
		fanout:   make(chan fanoutItem, 256),
		handoffs: make(map[string]*handoffQueue),
		warm:     make(chan struct{}),
		stop:     make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, p := range cfg.Peers {
		p = normPeer(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.ring.add(p)
		if p != r.self {
			r.peers[p] = newPeerClient(p, cfg.Client)
			hq, err := openHandoffQueue(cfg.HandoffDir, p, cfg.HandoffCap)
			if err != nil {
				return nil, err
			}
			r.handoffs[p] = hq
		}
	}
	for i := 0; i < 2; i++ {
		r.workerWG.Add(1)
		go r.fanoutWorker()
	}
	r.workerWG.Add(1)
	go r.drainLoop()
	go r.antiEntropy()
	return r, nil
}

func normPeer(p string) string { return strings.TrimRight(strings.TrimSpace(p), "/") }

// Local exposes the node-local stack (PeerView unwraps through this).
func (r *Replicated) Local() PlanStore { return r.local }

// Name implements PlanStore.
func (r *Replicated) Name() string { return "replicated" }

// owners returns the key's replica owners in ring order.
func (r *Replicated) owners(k Key) []string {
	return r.ring.ownersOf(mix(k.Hi^mix(k.Lo)), r.cfg.Replication)
}

// Get implements PlanStore: local first, then each remote owner in ring
// order. A remote hit is written behind into the local stack so the next
// read is local.
func (r *Replicated) Get(ctx context.Context, k Key) ([]byte, string, error) {
	if v, tier, err := r.local.Get(ctx, k); err == nil {
		return v, tier, nil
	}
	for _, owner := range r.owners(k) {
		pc, ok := r.peers[owner]
		if !ok { // self
			continue
		}
		r.peerFetches.Add(1)
		v, err := pc.get(ctx, k)
		if err == nil {
			// The fetch was answered by this owner: stamp it on the trace
			// so /debug/traces shows which replica served the bytes.
			trace.FromContext(ctx).SetPeer(owner)
			_ = r.local.Put(ctx, k, v)
			return v, TierPeer, nil
		}
		if err != ErrNotFound {
			r.peerFetchFails.Add(1)
		}
	}
	return nil, "", ErrNotFound
}

// GetLocal implements PlanStore: the peer-protocol read — never leaves
// the node.
func (r *Replicated) GetLocal(ctx context.Context, k Key) ([]byte, string, error) {
	return r.local.Get(ctx, k)
}

// Put implements PlanStore: durable locally first, then an async fan-out
// to the key's remote owners. The caller never waits on a peer.
func (r *Replicated) Put(ctx context.Context, k Key, v []byte) error {
	err := r.local.Put(ctx, k, v)
	if r.closed.Load() {
		return err
	}
	select {
	case r.fanout <- fanoutItem{k: k, v: v, id: trace.IDFromContext(ctx)}:
	default:
		// Fan-out backlog is full: skip straight to the hint queues so
		// the write path stays non-blocking.
		r.queueHints(k, v, r.remoteOwners(k))
	}
	return err
}

// PutLocal implements PlanStore: the peer-protocol write — no fan-out,
// or replication would amplify every write around the ring.
func (r *Replicated) PutLocal(ctx context.Context, k Key, v []byte) error {
	return r.local.Put(ctx, k, v)
}

func (r *Replicated) remoteOwners(k Key) []string {
	var out []string
	for _, o := range r.owners(k) {
		if _, ok := r.peers[o]; ok {
			out = append(out, o)
		}
	}
	return out
}

func (r *Replicated) fanoutWorker() {
	defer r.workerWG.Done()
	for {
		select {
		case <-r.stop:
			return
		case it := <-r.fanout:
			for _, owner := range r.remoteOwners(it.k) {
				ctx, cancel := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
				err := r.peers[owner].put(trace.WithID(ctx, it.id), it.k, it.v)
				cancel()
				if err != nil {
					r.queueHints(it.k, it.v, []string{owner})
				}
			}
		}
	}
}

// queueHints records k/v as a hint for each named peer.
func (r *Replicated) queueHints(k Key, v []byte, owners []string) {
	for _, owner := range owners {
		hq := r.handoffs[owner]
		if hq == nil {
			continue
		}
		switch hq.enqueue(k, v) {
		case nil:
			r.handoffQueued.Add(1)
		case errHandoffFull:
			r.handoffDropped.Add(1)
		}
	}
}

func (r *Replicated) drainLoop() {
	defer r.workerWG.Done()
	t := time.NewTicker(r.cfg.DrainInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			for owner, hq := range r.handoffs {
				r.drainPeer(owner, hq)
			}
		}
	}
}

// drainPeer retries one peer's queued hints in order, stopping at the
// first delivery failure (the peer is still down; the ticker returns).
func (r *Replicated) drainPeer(owner string, hq *handoffQueue) {
	pc := r.peers[owner]
	for {
		k, v, ok := hq.peek()
		if !ok {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
		err := pc.put(ctx, k, v)
		cancel()
		if err != nil {
			return
		}
		hq.pop()
		r.handoffDrained.Add(1)
	}
}

// antiEntropy is the startup pass: ask each remote peer for a key sample,
// pull the keys this node owns but does not hold, then declare the store
// warm. Peer failures are skipped — a dead peer must not hold up
// readiness; its data arrives later via read-through or its own recovery.
func (r *Replicated) antiEntropy() {
	defer close(r.warm)
	for _, pc := range r.peers {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
		ks, err := pc.keys(ctx, r.cfg.AntiEntropyKeys)
		cancel()
		if err != nil {
			continue
		}
		for _, k := range ks {
			select {
			case <-r.stop:
				return
			default:
			}
			if !r.ownsSelf(k) {
				continue
			}
			if _, _, err := r.local.Get(context.Background(), k); err == nil {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
			v, err := pc.get(ctx, k)
			cancel()
			if err != nil {
				continue
			}
			if r.local.Put(context.Background(), k, v) == nil {
				r.antiEntropyPulled.Add(1)
			}
		}
	}
}

func (r *Replicated) ownsSelf(k Key) bool {
	for _, o := range r.owners(k) {
		if o == r.self {
			return true
		}
	}
	return false
}

// Keys implements PlanStore.
func (r *Replicated) Keys(limit int) []Key { return r.local.Keys(limit) }

// Stats implements PlanStore: the local stack's ledger plus the
// replication ledger.
func (r *Replicated) Stats() Stats {
	s := r.local.Stats()
	s.HandoffQueued += r.handoffQueued.Load()
	s.HandoffDrained += r.handoffDrained.Load()
	s.HandoffDropped += r.handoffDropped.Load()
	s.PeerFetches += r.peerFetches.Load()
	s.PeerFetchFails += r.peerFetchFails.Load()
	s.AntiEntropyPulled += r.antiEntropyPulled.Load()
	return s
}

// WaitWarm implements PlanStore: blocks until the local stack is warm and
// the startup anti-entropy pass has finished (or ctx expires).
func (r *Replicated) WaitWarm(ctx context.Context) error {
	if err := r.local.WaitWarm(ctx); err != nil {
		return err
	}
	select {
	case <-r.warm:
		return r.warmErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close implements PlanStore: stop background work, persist what the
// hint queues hold, close the local stack.
func (r *Replicated) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	close(r.stop)
	r.workerWG.Wait()
	var firstErr error
	for _, hq := range r.handoffs {
		if err := hq.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := r.local.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// hashRing is a consistent-hash ring with virtual nodes: each peer hashes
// to ringVnodes points, a key belongs to the first distinct peers at or
// clockwise of its point. Static membership — rebalancing is out of
// scope; what matters is that every replica computes identical ownership
// from the identical peer list.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	peer string
}

const ringVnodes = 64

func (h *hashRing) add(peer string) {
	f := fnv.New64a()
	f.Write([]byte(peer))
	base := f.Sum64()
	for i := 0; i < ringVnodes; i++ {
		h.points = append(h.points, ringPoint{hash: mix(base + uint64(i)*0x9e3779b97f4a7c15), peer: peer})
	}
	sort.Slice(h.points, func(a, b int) bool { return h.points[a].hash < h.points[b].hash })
}

// ownersOf walks clockwise from hash collecting n distinct peers.
func (h *hashRing) ownersOf(hash uint64, n int) []string {
	if len(h.points) == 0 || n <= 0 {
		return nil
	}
	start := sort.Search(len(h.points), func(i int) bool { return h.points[i].hash >= hash })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(h.points) && len(out) < n; i++ {
		p := h.points[(start+i)%len(h.points)]
		if !seen[p.peer] {
			seen[p.peer] = true
			out = append(out, p.peer)
		}
	}
	return out
}
