package store

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func TestMemLRUEviction(t *testing.T) {
	// One shard so the LRU order is global and the budget is exact.
	m := NewMem(100, 1)
	ctx := context.Background()
	val := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 40) }
	for i := 0; i < 3; i++ {
		if err := m.Put(ctx, tkey(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 3×40 = 120 > 100: the oldest entry is gone, the two newest remain.
	if _, _, err := m.Get(ctx, tkey(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest entry survived: %v", err)
	}
	for i := 1; i < 3; i++ {
		v, tier, err := m.Get(ctx, tkey(i))
		if err != nil || tier != TierMem || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d: %v %q", i, err, tier)
		}
	}
	st := m.Stats()
	if st.Entries != 2 || st.BytesLive != 80 {
		t.Fatalf("stats %+v", st)
	}

	// Recency matters: touch key 1, insert key 3, key 2 is now the victim.
	if _, _, err := m.Get(ctx, tkey(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ctx, tkey(3), val(3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Get(ctx, tkey(2)); !errors.Is(err, ErrNotFound) {
		t.Fatal("LRU victim was not the least recently used")
	}
	if _, _, err := m.Get(ctx, tkey(1)); err != nil {
		t.Fatal("recently used entry evicted")
	}
}

func TestMemDupPutAndKeys(t *testing.T) {
	m := NewMem(1<<20, 4)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := m.Put(ctx, tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Put(ctx, tkey(4), tval(4)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Puts != 10 || st.PutSkips != 1 || st.Entries != 10 {
		t.Fatalf("stats %+v", st)
	}
	if got := m.Keys(0); len(got) != 10 {
		t.Fatalf("keys %d", len(got))
	}
	if got := m.Keys(3); len(got) != 3 {
		t.Fatalf("limited keys %d", len(got))
	}
}
