package store

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/client"
)

// Peer wire protocol: three POST-JSON endpoints a replica mounts under
// /v1/store/ and serves from its node-local view (PeerView), so a peer's
// request can never cascade into another peer fetch.
//
//	POST /v1/store/get  {"key":"<32 hex>"}            → 200 {"value":"<base64>"} | 404
//	POST /v1/store/put  {"key":"<32 hex>","value":..} → 204
//	POST /v1/store/keys {"limit":N}                   → 200 {"keys":["<32 hex>",...]}
const (
	peerGetPath  = "/v1/store/get"
	peerPutPath  = "/v1/store/put"
	peerKeysPath = "/v1/store/keys"
)

type peerGetRequest struct {
	Key string `json:"key"`
}

type peerGetResponse struct {
	Value []byte `json:"value"` // encoding/json base64s []byte
}

type peerPutRequest struct {
	Key   string `json:"key"`
	Value []byte `json:"value"`
}

type peerKeysRequest struct {
	Limit int `json:"limit"`
}

type peerKeysResponse struct {
	Keys []string `json:"keys"`
}

// PeerHandler serves the peer protocol over ps — pass PeerView(store) so
// a replicated store answers from its local tiers only.
func PeerHandler(ps PlanStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(peerGetPath, func(w http.ResponseWriter, r *http.Request) {
		var req peerGetRequest
		if !decodePeerBody(w, r, &req) {
			return
		}
		k, err := ParseKey(req.Key)
		if err != nil {
			peerError(w, http.StatusBadRequest, err)
			return
		}
		v, _, err := ps.GetLocal(r.Context(), k)
		if err != nil {
			peerError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&peerGetResponse{Value: v})
	})
	mux.HandleFunc(peerPutPath, func(w http.ResponseWriter, r *http.Request) {
		var req peerPutRequest
		if !decodePeerBody(w, r, &req) {
			return
		}
		k, err := ParseKey(req.Key)
		if err != nil || len(req.Value) == 0 {
			peerError(w, http.StatusBadRequest, fmt.Errorf("store: bad put request"))
			return
		}
		if err := ps.PutLocal(r.Context(), k, req.Value); err != nil {
			peerError(w, http.StatusInsufficientStorage, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc(peerKeysPath, func(w http.ResponseWriter, r *http.Request) {
		var req peerKeysRequest
		if !decodePeerBody(w, r, &req) {
			return
		}
		ks := ps.Keys(req.Limit)
		out := peerKeysResponse{Keys: make([]string, len(ks))}
		for i, k := range ks {
			out.Keys[i] = k.String()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&out)
	})
	return mux
}

func decodePeerBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		peerError(w, http.StatusMethodNotAllowed, fmt.Errorf("store: POST only"))
		return false
	}
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		peerError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func peerError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// peerClient is the replicated tier's view of one remote replica, backed
// by the resilient internal/client (retries, per-target breaker).
type peerClient struct {
	base string // http://host:port, no trailing slash
	c    *client.Client
}

func newPeerClient(base string, c *client.Client) *peerClient {
	return &peerClient{base: strings.TrimRight(base, "/"), c: c}
}

// get fetches k from the peer. ErrNotFound means the peer answered and
// does not hold k; any other error means the peer was unreachable.
func (p *peerClient) get(ctx context.Context, k Key) ([]byte, error) {
	body, _ := json.Marshal(&peerGetRequest{Key: k.String()})
	res, err := p.c.Do(ctx, p.base+peerGetPath, body)
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case http.StatusOK:
		var out peerGetResponse
		if err := json.Unmarshal(res.Body, &out); err != nil {
			return nil, err
		}
		if len(out.Value) == 0 {
			return nil, fmt.Errorf("store: peer returned empty value")
		}
		return out.Value, nil
	case http.StatusNotFound:
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("store: peer get: status %d", res.Status)
}

// put delivers k/v to the peer.
func (p *peerClient) put(ctx context.Context, k Key, v []byte) error {
	body, _ := json.Marshal(&peerPutRequest{Key: k.String(), Value: v})
	res, err := p.c.Do(ctx, p.base+peerPutPath, body)
	if err != nil {
		return err
	}
	if res.Status != http.StatusNoContent && res.Status != http.StatusOK {
		return fmt.Errorf("store: peer put: status %d", res.Status)
	}
	return nil
}

// keys samples the peer's locally-held key set.
func (p *peerClient) keys(ctx context.Context, limit int) ([]Key, error) {
	body, _ := json.Marshal(&peerKeysRequest{Limit: limit})
	res, err := p.c.Do(ctx, p.base+peerKeysPath, body)
	if err != nil {
		return nil, err
	}
	if res.Status != http.StatusOK {
		return nil, fmt.Errorf("store: peer keys: status %d", res.Status)
	}
	var out peerKeysResponse
	if err := json.Unmarshal(res.Body, &out); err != nil {
		return nil, err
	}
	ks := make([]Key, 0, len(out.Keys))
	for _, s := range out.Keys {
		k, err := ParseKey(s)
		if err != nil {
			continue
		}
		ks = append(ks, k)
	}
	return ks, nil
}
