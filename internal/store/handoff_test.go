package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestHandoffPersistReplay(t *testing.T) {
	dir := t.TempDir()
	hq, err := openHandoffQueue(dir, "http://peer-a:1", 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := hq.enqueue(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	if hq.depth() != 3 {
		t.Fatalf("depth %d", hq.depth())
	}
	if err := hq.close(); err != nil {
		t.Fatal(err)
	}

	// A restart replays the undelivered backlog in order.
	hq2, err := openHandoffQueue(dir, "http://peer-a:1", 16)
	if err != nil {
		t.Fatal(err)
	}
	if hq2.depth() != 3 {
		t.Fatalf("replayed depth %d", hq2.depth())
	}
	for i := 0; i < 3; i++ {
		k, v, ok := hq2.peek()
		if !ok || k != tkey(i) || !bytes.Equal(v, tval(i)) {
			t.Fatalf("hint %d mismatch", i)
		}
		hq2.pop()
	}
	if _, _, ok := hq2.peek(); ok {
		t.Fatal("queue should be empty")
	}
	hq2.close()

	// Full drain reset the file: a third open starts empty.
	hq3, err := openHandoffQueue(dir, "http://peer-a:1", 16)
	if err != nil {
		t.Fatal(err)
	}
	if hq3.depth() != 0 {
		t.Fatalf("post-drain depth %d", hq3.depth())
	}
	hq3.close()
}

func TestHandoffCapDedupeAndTornTail(t *testing.T) {
	dir := t.TempDir()
	hq, err := openHandoffQueue(dir, "http://peer-b:2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := hq.enqueue(tkey(0), tval(0)); err != nil {
		t.Fatal(err)
	}
	// A duplicate key collapses silently.
	if err := hq.enqueue(tkey(0), tval(0)); err != nil || hq.depth() != 1 {
		t.Fatalf("dedupe: %v depth=%d", err, hq.depth())
	}
	if err := hq.enqueue(tkey(1), tval(1)); err != nil {
		t.Fatal(err)
	}
	if err := hq.enqueue(tkey(2), tval(2)); !errors.Is(err, errHandoffFull) {
		t.Fatalf("over cap: %v", err)
	}
	hq.close()

	// Torn tail on the hint file: replay keeps the good prefix only.
	var path string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		path = filepath.Join(dir, e.Name())
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3, 4, 5})
	f.Close()
	hq2, err := openHandoffQueue(dir, "http://peer-b:2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if hq2.depth() != 2 {
		t.Fatalf("torn-tail replay depth %d", hq2.depth())
	}
	hq2.close()
}
