package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Segment log framing. A segment file starts with an 8-byte magic and is
// followed by records:
//
//	[payloadLen u32 LE][crc32c u32 LE][keyHi u64 LE][keyLo u64 LE][payload]
//
// The CRC (Castagnoli, the checksum SSDs and filesystems use for the same
// job) covers key bytes + payload, so a flipped bit anywhere in either is
// detected — CRC32C catches all single- and double-bit errors and any
// burst under 32 bits, and everything else with probability 1-2⁻³². A
// record is "committed" exactly when its final payload byte is on disk;
// any shorter prefix is a torn tail the rebuild truncates away.
const (
	segMagic   = "suustor1"
	recHdrSize = 4 + 4 + 8 + 8
	// maxPayload bounds the length field so a corrupt frame cannot make
	// the rebuild attempt a giant allocation or skip past real records.
	maxPayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes k/v framed for the segment log onto buf.
func appendRecord(buf []byte, k Key, v []byte) []byte {
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(v)))
	binary.LittleEndian.PutUint64(hdr[8:16], k.Hi)
	binary.LittleEndian.PutUint64(hdr[16:24], k.Lo)
	crc := crc32.Update(0, castagnoli, hdr[8:24])
	crc = crc32.Update(crc, castagnoli, v)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, v...)
}

// recordSize is the framed size of a payload of n bytes.
func recordSize(n int) int64 { return int64(recHdrSize + n) }

// parseRecord reads one record from b. Returns the key, the payload
// (aliasing b), and the framed size consumed. Errors:
//
//	errTorn    — b ends before the frame does (a torn tail)
//	errBadLen  — the length field is implausible (> maxPayload): framing
//	             is lost and nothing after this point can be trusted
//	errBadCRC  — the frame is complete but the checksum disagrees
func parseRecord(b []byte) (k Key, payload []byte, n int64, err error) {
	if len(b) < recHdrSize {
		return Key{}, nil, 0, errTorn
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > maxPayload {
		return Key{}, nil, 0, errBadLen
	}
	n = recordSize(int(plen))
	if int64(len(b)) < n {
		return Key{}, nil, 0, errTorn
	}
	k = Key{
		Hi: binary.LittleEndian.Uint64(b[8:16]),
		Lo: binary.LittleEndian.Uint64(b[16:24]),
	}
	payload = b[recHdrSize:n]
	crc := crc32.Update(0, castagnoli, b[8:24])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.LittleEndian.Uint32(b[4:8]) {
		return Key{}, nil, n, errBadCRC
	}
	return k, payload, n, nil
}

// verifyRecord re-checks an already-parsed frame at read time (the
// quarantine-on-read path): same CRC over key bytes + payload.
func verifyRecord(b []byte) (payload []byte, err error) {
	if len(b) < recHdrSize {
		return nil, errTorn
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if recordSize(int(plen)) != int64(len(b)) {
		return nil, errBadLen
	}
	payload = b[recHdrSize:]
	crc := crc32.Update(0, castagnoli, b[8:24])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, errBadCRC
	}
	return payload, nil
}

var (
	errTorn   = fmt.Errorf("store: torn record")
	errBadLen = fmt.Errorf("store: implausible record length")
	errBadCRC = fmt.Errorf("store: checksum mismatch")
)
