package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastCfg keeps backoff negligible so retry tests run in milliseconds.
func fastCfg() Config {
	return Config{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        1,
	}
}

// scriptServer serves the scripted status codes in order (sticking on the
// last one) and records each request's X-Suu-Attempt header.
func scriptServer(t *testing.T, statuses ...int) (*httptest.Server, *[]string) {
	t.Helper()
	var mu sync.Mutex
	var attempts []string
	n := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts = append(attempts, r.Header.Get(AttemptHeader))
		code := statuses[n]
		if n < len(statuses)-1 {
			n++
		}
		mu.Unlock()
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"status": %d}`, code)
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

func TestRetriesTransientStatusesToSuccess(t *testing.T) {
	ts, attempts := scriptServer(t, http.StatusServiceUnavailable, http.StatusTooManyRequests, http.StatusOK)
	c := New(fastCfg())
	res, err := c.Do(context.Background(), ts.URL, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Attempts != 3 {
		t.Fatalf("status=%d attempts=%d, want 200 after 3 tries", res.Status, res.Attempts)
	}
	if got := *attempts; len(got) != 3 || got[0] != "1" || got[1] != "2" || got[2] != "3" {
		t.Errorf("X-Suu-Attempt sequence %v, want [1 2 3]", got)
	}
	if m := c.Snapshot(); m.Calls != 1 || m.Retries != 2 {
		t.Errorf("metrics %+v, want 1 call with 2 retries", m)
	}
}

func TestNonRetryableStatusesReturnFirstAttempt(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusInternalServerError} {
		t.Run(fmt.Sprint(code), func(t *testing.T) {
			ts, attempts := scriptServer(t, code)
			c := New(fastCfg())
			res, err := c.Do(context.Background(), ts.URL, []byte("{}"))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != code || res.Attempts != 1 {
				t.Fatalf("status=%d attempts=%d, want %d on the first try", res.Status, res.Attempts, code)
			}
			if len(*attempts) != 1 {
				t.Errorf("server saw %d requests, want exactly 1", len(*attempts))
			}
		})
	}
}

func TestExhaustedRetriesReturnTheHeldResponse(t *testing.T) {
	ts, _ := scriptServer(t, http.StatusServiceUnavailable)
	cfg := fastCfg()
	cfg.BreakerThreshold = -1 // the breaker would trip mid-loop otherwise
	c := New(cfg)
	res, err := c.Do(context.Background(), ts.URL, []byte("{}"))
	if err != nil {
		t.Fatal("out of attempts with a response in hand should not error:", err)
	}
	if res.Status != http.StatusServiceUnavailable || res.Attempts != 3 {
		t.Fatalf("status=%d attempts=%d, want the final 503 after 3 tries", res.Status, res.Attempts)
	}
}

func TestRetryAfterStretchesBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(AttemptHeader) == "1" {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	c := New(fastCfg())
	start := time.Now()
	res, err := c.Do(context.Background(), ts.URL, []byte("{}"))
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retry fired after %v; Retry-After: 1 should stretch the 1ms backoff to ~1s", elapsed)
	}
	if m := c.Snapshot(); m.RetryAfterWaits != 1 {
		t.Errorf("retry_after_waits = %d, want 1", m.RetryAfterWaits)
	}
}

// rtFunc lets tests script the transport.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func okResponse() *http.Response {
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(`{}`)),
	}
}

func TestTransportErrorRetriesThenSucceeds(t *testing.T) {
	calls := 0
	cfg := fastCfg()
	cfg.Transport = rtFunc(func(r *http.Request) (*http.Response, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("connection reset")
		}
		return okResponse(), nil
	})
	c := New(cfg)
	res, err := c.Do(context.Background(), "http://suud.test/v1/plan", []byte("{}"))
	if err != nil || res.Status != http.StatusOK || res.Attempts != 2 {
		t.Fatalf("res=%+v err=%v, want 200 on attempt 2", res, err)
	}
	if m := c.Snapshot(); m.ConnErrors != 1 {
		t.Errorf("conn_errors = %d, want 1", m.ConnErrors)
	}
}

func TestInjectedHeaderMarksResult(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxAttempts = 1
	cfg.Transport = rtFunc(func(r *http.Request) (*http.Response, error) {
		resp := okResponse()
		resp.StatusCode = http.StatusInternalServerError
		resp.Header.Set(InjectedHeader, "error")
		return resp, nil
	})
	c := New(cfg)
	res, err := c.Do(context.Background(), "http://suud.test/v1/plan", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected {
		t.Error("X-Suu-Injected response should mark Result.Injected")
	}
}

// TestBreakerLifecycle walks the full state machine with a stubbed clock:
// consecutive failures trip it, open fast-fails without touching the
// transport, the cooldown admits one half-open probe, a probe success
// closes, a probe failure reopens.
func TestBreakerLifecycle(t *testing.T) {
	var failing bool
	transportCalls := 0
	cfg := Config{
		MaxAttempts:      1,
		BaseBackoff:      time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Transport: rtFunc(func(r *http.Request) (*http.Response, error) {
			transportCalls++
			if failing {
				return nil, errors.New("connection refused")
			}
			return okResponse(), nil
		}),
	}
	c := New(cfg)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	do := func() (*Result, error) { return c.Do(context.Background(), "http://suud.test/v1/plan", []byte("{}")) }

	failing = true
	for i := 0; i < 2; i++ {
		if _, err := do(); err == nil {
			t.Fatal("failing transport should error")
		}
	}
	if m := c.Snapshot(); m.BreakerOpens != 1 {
		t.Fatalf("breaker_opens = %d after %d consecutive failures, want 1", m.BreakerOpens, 2)
	}

	// Open: fast-fail, transport untouched.
	before := transportCalls
	if _, err := do(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker: err = %v, want ErrBreakerOpen", err)
	}
	if transportCalls != before {
		t.Error("open breaker must not touch the transport")
	}
	if m := c.Snapshot(); m.BreakerFastFails != 1 {
		t.Errorf("breaker_fast_fails = %d, want 1", m.BreakerFastFails)
	}

	// Cooldown over: one probe allowed; its success closes the breaker.
	now = now.Add(time.Minute)
	failing = false
	if res, err := do(); err != nil || res.Status != http.StatusOK {
		t.Fatalf("half-open probe should pass: res=%+v err=%v", res, err)
	}
	if res, err := do(); err != nil || res.Status != http.StatusOK {
		t.Fatalf("closed breaker should serve normally: res=%+v err=%v", res, err)
	}

	// Reopen, then fail the probe: the breaker reopens and fast-fails again.
	failing = true
	for i := 0; i < 2; i++ {
		do()
	}
	now = now.Add(time.Minute)
	if _, err := do(); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe should reach the transport and fail organically, got %v", err)
	}
	if _, err := do(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("failed probe should reopen the breaker, got %v", err)
	}
	if m := c.Snapshot(); m.BreakerOpens != 3 {
		t.Errorf("breaker_opens = %d, want 3 (initial, refail, failed probe)", m.BreakerOpens)
	}
}

func TestBreakerDisabled(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxAttempts = 1
	cfg.BreakerThreshold = -1
	cfg.Transport = rtFunc(func(r *http.Request) (*http.Response, error) {
		return nil, errors.New("connection refused")
	})
	c := New(cfg)
	for i := 0; i < 20; i++ {
		if _, err := c.Do(context.Background(), "http://suud.test/v1/plan", []byte("{}")); errors.Is(err, ErrBreakerOpen) {
			t.Fatal("disabled breaker must never open")
		}
	}
	if m := c.Snapshot(); m.BreakerOpens != 0 {
		t.Errorf("breaker_opens = %d with the breaker disabled, want 0", m.BreakerOpens)
	}
}

func TestContextCancelsBetweenAttempts(t *testing.T) {
	ts, _ := scriptServer(t, http.StatusServiceUnavailable)
	cfg := fastCfg()
	cfg.BaseBackoff = 10 * time.Second // the backoff is where cancellation must bite
	cfg.MaxBackoff = 10 * time.Second
	c := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Do(ctx, ts.URL, []byte("{}")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancellation should interrupt the backoff sleep, not wait it out")
	}
}
