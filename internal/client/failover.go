package client

import (
	"context"
	"fmt"
	"time"
)

// DoAny POSTs body (JSON) to any of several equivalent replicas, with the
// same retry contract as Do but a rotating target choice: attempt k
// prefers urls[(k-1) mod len(urls)] and scans forward past targets whose
// circuit breaker is open, so a dead replica costs one connection error
// at most once per cooldown and every retry lands somewhere else. The
// planning service is content-addressed and replicated, which is what
// makes "any replica" correct — every target returns the same answer.
//
// With a single URL this is exactly Do. With every breaker open the call
// fails fast with ErrBreakerOpen, like Do does.
func (c *Client) DoAny(ctx context.Context, urls []string, body []byte) (*Result, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("client: no urls")
	}
	if len(urls) == 1 {
		return c.Do(ctx, urls[0], body)
	}
	c.calls.Add(1)
	targets := make([]string, len(urls))
	for i, u := range urls {
		t, err := targetOf(u)
		if err != nil {
			return nil, fmt.Errorf("client: bad url: %w", err)
		}
		targets[i] = t
	}
	var lastErr error
	res := &Result{}
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			wait := c.backoff(attempt, retryAfterOf(res.Header))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// Rotate the preferred replica with the attempt number, then take
		// the first whose breaker admits the call.
		var (
			url    string
			br     *breaker
			chosen = -1
		)
		for i := 0; i < len(urls); i++ {
			j := (attempt - 1 + i) % len(urls)
			b := c.breakerFor(targets[j])
			if b.allow(c) {
				url, br, chosen = urls[j], b, j
				break
			}
			c.breakerFastFails.Add(1)
		}
		if chosen < 0 {
			// Every replica's breaker is open. Cooldowns outlast backoffs,
			// so fail the call fast rather than spin the attempt loop.
			return nil, fmt.Errorf("%w: all %d replicas", ErrBreakerOpen, len(urls))
		}
		res.Attempts = attempt
		status, header, respBody, err := c.attempt(ctx, url, body, attempt)
		if err != nil {
			c.connErrors.Add(1)
			br.failure(c)
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			res.Header = nil
			continue
		}
		res.Status, res.Header, res.Body = status, header, respBody
		res.Injected = header.Get(InjectedHeader) != ""
		if retryableStatus(status) {
			br.failure(c)
			lastErr = fmt.Errorf("client: status %d from %s", status, targets[chosen])
			continue
		}
		br.success()
		return res, nil
	}
	if res.Status != 0 {
		return res, nil
	}
	return nil, lastErr
}
