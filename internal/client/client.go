// Package client is the resilient HTTP client for the suud planning
// service, shared by suuload and the examples. It retries exactly the
// failures that are safe and useful to retry — transport/connection
// errors and 429/503 responses (planning is idempotent and those statuses
// mean "try again later") — with capped exponential backoff under full
// jitter, honoring the server's Retry-After when it is larger. 4xx and
// plain 5xx never retry: the former will fail identically, the latter is
// an organic server bug the caller should see. A per-target circuit
// breaker trips after consecutive failures and admits a single half-open
// probe per cooldown, so a dead or drowning target costs a fast error
// instead of a connect timeout per request.
//
// Each attempt carries X-Suu-Attempt (1-based), which the server meters
// as retries_observed — the two ends of a chaos run reconcile through it.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// AttemptHeader is the 1-based attempt number each request carries.
const AttemptHeader = "X-Suu-Attempt"

// InjectedHeader marks a server response produced by fault injection
// (mirrors faults.Header without importing it: the client must not depend
// on the chaos tooling).
const InjectedHeader = "X-Suu-Injected"

// ErrBreakerOpen fails a call fast because the target's breaker is open.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// Config tunes the client. Zero values take the documented defaults.
type Config struct {
	// MaxAttempts bounds total tries per call, first included (default 3;
	// 1 disables retries).
	MaxAttempts int
	// AttemptTimeout bounds each try (default 10s). The call's ctx still
	// bounds the whole call, retries and backoff included.
	AttemptTimeout time.Duration
	// BaseBackoff seeds the exponential schedule: try k backs off uniform
	// in [0, min(MaxBackoff, BaseBackoff·2^(k-1))] — full jitter (default
	// 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (default 2s).
	MaxBackoff time.Duration
	// Seed makes the jitter stream deterministic; 0 means seed 1.
	Seed int64
	// BreakerThreshold trips a target's breaker after this many
	// consecutive failed calls (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// one half-open probe (default 1s).
	BreakerCooldown time.Duration
	// Transport overrides the underlying RoundTripper (tests; default
	// http.DefaultTransport).
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	return c
}

// Result is one call's outcome: the final attempt's response (any status)
// plus the retry ledger the load harness reconciles.
type Result struct {
	Status   int
	Header   http.Header
	Body     []byte
	Attempts int  // tries consumed, ≥ 1
	Injected bool // final response carried X-Suu-Injected
	// Trace is the raw X-Suu-Trace value of the final response, "" when
	// the server did not keep the trace. Parse with trace.ParseHeader to
	// attribute this call's latency to server stages.
	Trace string
}

// Metrics is the client's cumulative ledger.
type Metrics struct {
	Calls            uint64 `json:"calls"`
	Retries          uint64 `json:"retries"` // attempts beyond each call's first
	ConnErrors       uint64 `json:"conn_errors"`
	RetryAfterWaits  uint64 `json:"retry_after_waits"` // backoffs stretched by a Retry-After header
	BreakerOpens     uint64 `json:"breaker_opens"`     // closed/half-open → open transitions
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
}

// Client is safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu       sync.Mutex
	rng      uint64
	breakers map[string]*breaker

	calls            atomic.Uint64
	retries          atomic.Uint64
	connErrors       atomic.Uint64
	retryAfterWaits  atomic.Uint64
	breakerOpens     atomic.Uint64
	breakerFastFails atomic.Uint64

	// now is stubbed by breaker tests.
	now func() time.Time
}

// New builds a client.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 1
	}
	return &Client{
		cfg: cfg,
		// No Client.Timeout: the per-attempt context carries the bound, so
		// one slow attempt cannot eat the whole call's budget bookkeeping.
		http:     &http.Client{Transport: cfg.Transport},
		rng:      seed,
		breakers: make(map[string]*breaker),
		now:      time.Now,
	}
}

// Snapshot reads the ledger.
func (c *Client) Snapshot() Metrics {
	return Metrics{
		Calls:            c.calls.Load(),
		Retries:          c.retries.Load(),
		ConnErrors:       c.connErrors.Load(),
		RetryAfterWaits:  c.retryAfterWaits.Load(),
		BreakerOpens:     c.breakerOpens.Load(),
		BreakerFastFails: c.breakerFastFails.Load(),
	}
}

// next is SplitMix64 under the client's mutex.
func (c *Client) next() uint64 {
	c.mu.Lock()
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	c.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff is the sleep before try k (k ≥ 2): full jitter over the capped
// exponential ceiling, stretched to honor retryAfter when the server asked
// for more patience than the schedule would give.
func (c *Client) backoff(k int, retryAfter time.Duration) time.Duration {
	ceil := c.cfg.BaseBackoff << uint(k-2)
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	u := float64(c.next()>>11) / (1 << 53)
	d := time.Duration(u * float64(ceil))
	if retryAfter > d {
		c.retryAfterWaits.Add(1)
		d = retryAfter
	}
	return d
}

// retryAfterOf parses a delay-seconds Retry-After (the only form suud
// emits); absent or HTTP-date forms yield 0.
func retryAfterOf(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	s, err := strconv.Atoi(v)
	if err != nil || s < 0 {
		return 0
	}
	return time.Duration(s) * time.Second
}

// retryableStatus reports whether a status is worth retrying: 429 (shed
// load) and 503 (unavailable/draining). Other statuses — including plain
// 500s — surface to the caller.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Do POSTs body (JSON) to rawURL, retrying per the package contract. The
// returned Result holds the final attempt's response whatever its status;
// err is non-nil only when no response was obtained at all (every attempt
// hit a transport error, the breaker was open, or ctx expired).
func (c *Client) Do(ctx context.Context, rawURL string, body []byte) (*Result, error) {
	c.calls.Add(1)
	target, err := targetOf(rawURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad url: %w", err)
	}
	br := c.breakerFor(target)
	var lastErr error
	res := &Result{}
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			wait := c.backoff(attempt, retryAfterOf(res.Header))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if !br.allow(c) {
			c.breakerFastFails.Add(1)
			lastErr = fmt.Errorf("%w: %s", ErrBreakerOpen, target)
			// An open breaker fails the call, not the attempt loop: the
			// cooldown is longer than any backoff would be.
			return nil, lastErr
		}
		res.Attempts = attempt
		status, header, respBody, err := c.attempt(ctx, rawURL, body, attempt)
		if err != nil {
			c.connErrors.Add(1)
			br.failure(c)
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			res.Header = nil // no Retry-After to honor next round
			continue
		}
		res.Status, res.Header, res.Body = status, header, respBody
		res.Injected = header.Get(InjectedHeader) != ""
		res.Trace = header.Get(trace.ResponseHeader)
		if retryableStatus(status) {
			br.failure(c)
			lastErr = fmt.Errorf("client: status %d from %s", status, target)
			continue
		}
		br.success()
		return res, nil
	}
	if res.Status != 0 {
		// Out of attempts but holding a (retryable-status) response: give
		// the caller the response, not an error — it says 429/503 itself.
		return res, nil
	}
	return nil, lastErr
}

// attempt runs one try under its own timeout.
func (c *Client) attempt(ctx context.Context, rawURL string, body []byte, attempt int) (int, http.Header, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rawURL, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(AttemptHeader, strconv.Itoa(attempt))
	// A caller already inside a traced request (a peer fetch, a relay)
	// propagates its trace ID so the fleet's logs and rings join up.
	if id := trace.IDFromContext(ctx); !id.IsZero() {
		req.Header.Set(trace.IDHeader, id.String())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		// A response whose body dies mid-read is a transport failure: the
		// caller cannot use a truncated JSON document.
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, b, nil
}

func targetOf(rawURL string) (string, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return "", err
	}
	if u.Host == "" {
		return "", fmt.Errorf("url %q has no host", rawURL)
	}
	return u.Host, nil
}

// breaker is a per-target circuit breaker: closed until BreakerThreshold
// consecutive failures, then open for BreakerCooldown, then half-open —
// one probe allowed; its success closes the breaker, its failure reopens.
type breaker struct {
	mu       sync.Mutex
	fails    int
	state    int // 0 closed, 1 open, 2 half-open (probe out)
	openedAt time.Time
}

func (c *Client) breakerFor(target string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[target]
	if !ok {
		b = &breaker{}
		c.breakers[target] = b
	}
	return b
}

func (b *breaker) allow(c *Client) bool {
	if c.cfg.BreakerThreshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case 0:
		return true
	case 1:
		if c.now().Sub(b.openedAt) >= c.cfg.BreakerCooldown {
			b.state = 2 // this caller is the half-open probe
			return true
		}
		return false
	default: // half-open with a probe already out
		return false
	}
}

func (b *breaker) failure(c *Client) {
	if c.cfg.BreakerThreshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == 2 || (b.state == 0 && b.fails >= c.cfg.BreakerThreshold) {
		b.state = 1
		b.openedAt = c.now()
		c.breakerOpens.Add(1)
	}
}

func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.state = 0
	b.mu.Unlock()
}
