package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// replicaServer always answers with code and counts its hits.
func replicaServer(t *testing.T, code int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(code)
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestDoAnyFailsOverToHealthyReplica(t *testing.T) {
	bad, badHits := replicaServer(t, http.StatusServiceUnavailable)
	good, goodHits := replicaServer(t, http.StatusOK)
	c := New(fastCfg())
	res, err := c.DoAny(context.Background(), []string{bad.URL, good.URL}, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status %d", res.Status)
	}
	if badHits.Load() != 1 || goodHits.Load() != 1 {
		t.Fatalf("hits bad=%d good=%d, want one attempt each", badHits.Load(), goodHits.Load())
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts %d", res.Attempts)
	}
}

func TestDoAnyPrefersFirstURLWhenHealthy(t *testing.T) {
	a, aHits := replicaServer(t, http.StatusOK)
	b, bHits := replicaServer(t, http.StatusOK)
	c := New(fastCfg())
	for i := 0; i < 3; i++ {
		res, err := c.DoAny(context.Background(), []string{a.URL, b.URL}, []byte("{}"))
		if err != nil || res.Status != http.StatusOK {
			t.Fatalf("call %d: %v %v", i, err, res)
		}
	}
	if aHits.Load() != 3 || bHits.Load() != 0 {
		t.Fatalf("hits a=%d b=%d, want all on the preferred replica", aHits.Load(), bHits.Load())
	}
}

func TestDoAnyConnErrorFailover(t *testing.T) {
	// A replica that is not even listening: conn error, not a status.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	good, goodHits := replicaServer(t, http.StatusOK)
	c := New(fastCfg())
	res, err := c.DoAny(context.Background(), []string{deadURL, good.URL}, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || goodHits.Load() != 1 {
		t.Fatalf("status=%d good_hits=%d", res.Status, goodHits.Load())
	}
	if snap := c.Snapshot(); snap.ConnErrors == 0 {
		t.Fatalf("conn errors unrecorded: %+v", snap)
	}
}

func TestDoAnySkipsOpenBreakers(t *testing.T) {
	bad, _ := replicaServer(t, http.StatusServiceUnavailable)
	good, goodHits := replicaServer(t, http.StatusOK)
	cfg := fastCfg()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Minute
	c := New(cfg)
	// Trip the bad replica's breaker.
	for i := 0; i < 2; i++ {
		c.Do(context.Background(), bad.URL, []byte("{}"))
	}
	goodHits.Store(0)
	res, err := c.DoAny(context.Background(), []string{bad.URL, good.URL}, []byte("{}"))
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("%v %v", err, res)
	}
	// The open breaker was skipped without an attempt: first try lands on
	// the healthy replica.
	if res.Attempts != 1 || goodHits.Load() != 1 {
		t.Fatalf("attempts=%d good_hits=%d", res.Attempts, goodHits.Load())
	}

	// Every breaker open: fail fast, no attempts spent.
	c2 := New(cfg)
	for i := 0; i < 2; i++ {
		c2.Do(context.Background(), bad.URL, []byte("{}"))
	}
	if _, err := c2.DoAny(context.Background(), []string{bad.URL}, []byte("{}")); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("all-open: %v", err)
	}
}

func TestDoAnyDegenerateInputs(t *testing.T) {
	c := New(fastCfg())
	if _, err := c.DoAny(context.Background(), nil, nil); err == nil {
		t.Fatal("no URLs should error")
	}
	good, _ := replicaServer(t, http.StatusOK)
	res, err := c.DoAny(context.Background(), []string{good.URL}, []byte("{}"))
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("single URL: %v %v", err, res)
	}
}
