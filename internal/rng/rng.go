// Package rng provides the simulator's random source: SplitMix64, a tiny
// (one uint64 of state) generator with a 2⁶⁴ period and excellent
// statistical quality for Monte Carlo use. Its two properties matter here:
//
//   - Reseeding is O(1) state assignment, so a pooled World can be rewound
//     to "trial i" by writing a single word — no per-trial allocation. The
//     standard library's rand.NewSource allocates and warms a ~4.9 KB
//     lagged-Fibonacci table per source, which dominated the simulator's
//     per-trial cost before this package existed.
//   - Every seed gives an independent-looking stream (the output function
//     is a strong 64→64 bit mixer), so seeding trial i with seed+i yields
//     streams that are deterministic per trial and independent of how
//     trials are spread over workers.
//
// SplitMix64 implements math/rand.Source64, so it can back a *rand.Rand
// for code that wants the full standard-library API (the World hands such
// a wrapper to policies via Rng()).
package rng

import "math/rand"

// SplitMix64 is Steele, Lea & Flood's SplitMix64 generator (the stream
// splitter of Java's SplittableRandom, also used to seed xoshiro).
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

var _ rand.Source64 = (*SplitMix64)(nil)

// New returns a generator seeded with seed.
func New(seed int64) *SplitMix64 {
	return &SplitMix64{state: uint64(seed)}
}

// Seed resets the generator to the stream identified by seed. It is O(1)
// and allocation-free, which is what makes per-trial reseeding of pooled
// simulation state cheap. Implements rand.Source.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next value of the stream. Implements rand.Source64.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15 // golden-ratio increment (Weyl sequence)
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit value. Implements rand.Source.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1) using the top 53 bits, the
// conventional full-precision mapping. Note that a *rand.Rand wrapping
// this source does NOT call it — rand.Rand derives Float64 from Int63 —
// so the simulator's draws use the standard library's mapping; this
// method serves callers using the source directly.
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1.0p-53
}
