package rng

import (
	"math"
	"math/rand"
	"testing"
)

// TestDeterminism: the same seed must reproduce the same stream, and Seed
// must rewind an already-used generator.
func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	first := New(7).Uint64()
	a.Seed(7)
	if got := a.Uint64(); got != first {
		t.Fatalf("Seed(7) then Uint64 = %d, fresh New(7) gives %d", got, first)
	}
}

// TestSeedsIndependent: nearby seeds (the seed+i trial scheme) must not
// produce correlated streams. A weak mixer would show near-identical
// first outputs for adjacent seeds.
func TestSeedsIndependent(t *testing.T) {
	seen := make(map[uint64]int64)
	for seed := int64(0); seed < 10_000; seed++ {
		v := New(seed).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d share first output %d", prev, seed, v)
		}
		seen[v] = seed
	}
}

// TestFloat64Range: Float64 stays in [0,1) and has a plausible mean.
func TestFloat64Range(t *testing.T) {
	s := New(1)
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of %d draws = %v, want ≈0.5", n, mean)
	}
}

// TestBitBalance: each output bit should be set about half the time.
func TestBitBalance(t *testing.T) {
	s := New(3)
	const n = 100_000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.5) > 0.01 {
			t.Fatalf("bit %d set %.3f of the time, want ≈0.5", b, frac)
		}
	}
}

// TestBacksRandRand: SplitMix64 must work as a rand.Source64 behind the
// standard *rand.Rand, deterministically per seed.
func TestBacksRandRand(t *testing.T) {
	r1 := rand.New(New(11))
	r2 := rand.New(New(11))
	for i := 0; i < 100; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatalf("rand.Rand over SplitMix64 not deterministic at draw %d", i)
		}
	}
	r3 := rand.New(New(12))
	if got, other := rand.New(New(11)).Int63n(1<<40), r3.Int63n(1<<40); got == other {
		t.Log("seeds 11 and 12 coincided on one draw (possible but unlikely)")
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64ViaRand(b *testing.B) {
	r := rand.New(New(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
