package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trace"
)

// Service errors. The HTTP layer maps ErrBadRequest-wrapped errors to 400,
// ErrOverloaded to 429, and ErrShuttingDown to 503; everything else is a
// 500.
var (
	ErrOverloaded      = errors.New("service: queue full")
	ErrShuttingDown    = errors.New("service: shutting down")
	ErrBadRequest      = errors.New("service: bad request")
	errFlightAbandoned = errors.New("service: in-flight computation abandoned")
	// errAbandoned ends a detached computation whose every caller has given
	// up (deadline expired or disconnected) before it reached a worker slot
	// or its next solve checkpoint. It never reaches a live caller: the
	// flight is orphaned off the table before the computation sees it.
	errAbandoned = errors.New("service: computation abandoned by every caller")
)

// overloadError is ErrOverloaded with an adaptive Retry-After hint derived
// from the live queue and the measured per-unit compute cost. errors.Is
// still matches ErrOverloaded through Unwrap.
type overloadError struct {
	retryAfter time.Duration
}

func (e *overloadError) Error() string { return ErrOverloaded.Error() }
func (e *overloadError) Unwrap() error { return ErrOverloaded }

// badRequestf wraps ErrBadRequest with detail.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Brownout policies: what an eligible plan request gets when admission
// pressure crosses Config.BrownoutThreshold. See Config.DegradedPolicy.
const (
	// DegradeNever keeps the PR 4 behavior: a full line rejects with 429.
	DegradeNever = "reject"
	// DegradeIndependent serves independent-class plan requests a cheap
	// LP-free fallback under pressure; chains still reject.
	DegradeIndependent = "independent"
	// DegradeAll serves every plannable class the fallback under pressure.
	DegradeAll = "all"
)

// maxDeadlineMS bounds every client deadline knob at 24h: far beyond any
// real deadline, and small enough that the nanosecond conversion can never
// overflow into an already-expired context.
const maxDeadlineMS = 24 * 60 * 60 * 1000

// withDeadlineMS derives the request context a client deadline bounds.
// ms ≤ 0 (absent) leaves ctx alone; the returned cancel is always safe to
// defer.
func withDeadlineMS(ctx context.Context, ms int64) (context.Context, context.CancelFunc) {
	if ms <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}

// validDeadlineMS rejects out-of-range client deadlines.
func validDeadlineMS(ms int64) error {
	if ms < 0 || ms > maxDeadlineMS {
		return badRequestf("deadline_ms %d outside [0, %d]", ms, int64(maxDeadlineMS))
	}
	return nil
}

// Config sizes the planner. Zero values take the documented defaults.
type Config struct {
	// Workers bounds concurrent plan/estimate computations (default
	// GOMAXPROCS). Each computation borrows one rounding.Workspace.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; request
	// QueueDepth+1 is rejected with ErrOverloaded (default 4×Workers).
	QueueDepth int
	// CacheCap bounds total cached responses across shards (default 4096).
	CacheCap int
	// CacheShards is the shard count, rounded up to a power of two
	// (default 16).
	CacheShards int
	// MaxTrials is the per-request Monte Carlo trial budget; estimate
	// requests above it are rejected as bad requests (default 10000).
	MaxTrials int
	// DefaultTrials is used when an estimate request omits trials
	// (default 200).
	DefaultTrials int
	// TrialWorkers is the Monte Carlo worker count per estimate request
	// (default 2: request-level parallelism comes from Workers, so
	// per-request fan-out stays modest to avoid oversubscription).
	TrialWorkers int
	// ProgressChunk is the trial batch size between streamed progress
	// callbacks (default 64).
	ProgressChunk int
	// MaxBatchItems bounds the item count of one /v1/plan/batch request
	// (default 256). Larger batches are a bad request, not an overload:
	// the client should split them.
	MaxBatchItems int
	// MaxItemCost bounds the admission cost of a single batch item, in
	// units of the reference instance size (see itemCost; default 64,
	// i.e. n·m up to 64×1024). An item over it gets a per-item error —
	// one oversized instance must not poison its batch.
	MaxItemCost int
	// DegradedPolicy selects the brownout behavior when admission pressure
	// crosses BrownoutThreshold: DegradeNever (default) keeps rejecting
	// with 429; DegradeIndependent serves independent plan requests the
	// LP-free list-schedule fallback; DegradeAll serves every plannable
	// class the fallback. Estimates never degrade — a degraded sample
	// would be silently wrong, while a degraded plan is openly marked.
	DegradedPolicy string
	// BrownoutThreshold is the queue-pressure fraction (queued/QueueDepth)
	// at which eligible plan requests start degrading instead of queueing
	// (default 1.0: degrade only where the old behavior would 429).
	BrownoutThreshold float64
	// ComputeHook, if non-nil, runs at every compute checkpoint (before an
	// LP solve, between Monte Carlo chunks). An error return fails the
	// computation; a panic exercises the panic-isolation path. It exists
	// for fault injection (internal/faults) and tests.
	ComputeHook func() error
	// Store, if non-nil, is the durable/replicated tier under the
	// response LRU: compute closures read through it before taking a
	// worker slot and persist what they compute; Warmup waits for its
	// recovery (disk index rebuild, anti-entropy) before /readyz flips.
	// The planner does not own its lifecycle — whoever built the store
	// closes it, after Planner.Close.
	Store store.PlanStore
	// DecodeCacheBytes bounds the raw-key bytes of the decoded-instance
	// cache the HTTP layer resolves request instances through (default
	// 32 MiB; see decodecache.go). The cache cannot be disabled — it is
	// byte-verified, so it only ever changes performance, not results.
	DecodeCacheBytes int64
	// TraceSample is the head-based request-trace sampling probability in
	// [0, 1]. Errors, degraded responses, and slowest-N qualifiers are
	// always kept when tracing is enabled. The default 0 together with
	// TraceRing 0 and no TraceLog disables tracing entirely — library
	// callers and benchmarks pay nothing.
	TraceSample float64
	// TraceRing is the /debug/traces ring-buffer capacity; 0 disables the
	// recorder (and slowest-N tracking).
	TraceRing int
	// TraceSlowN is how many slowest traces to retain when TraceRing > 0
	// (default 32).
	TraceSlowN int
	// TraceLog, if non-nil, receives one CRC-framed binary record per
	// kept trace (see internal/trace). The planner does not own its
	// lifecycle — whoever opened it closes it, after Planner.Close.
	TraceLog *trace.LogWriter
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 10000
	}
	if c.DefaultTrials <= 0 {
		c.DefaultTrials = 200
	}
	if c.DefaultTrials > c.MaxTrials {
		// A tight -max-trials must not make trial-less requests
		// unserveable against the larger default.
		c.DefaultTrials = c.MaxTrials
	}
	if c.TrialWorkers <= 0 {
		c.TrialWorkers = 2
	}
	if c.ProgressChunk <= 0 {
		c.ProgressChunk = 64
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.MaxItemCost <= 0 {
		c.MaxItemCost = 64
	}
	switch c.DegradedPolicy {
	case DegradeIndependent, DegradeAll:
	default:
		// Unknown strings fall back to the safe pre-brownout behavior;
		// cmd/suud validates the flag loudly before building a Config.
		c.DegradedPolicy = DegradeNever
	}
	if c.BrownoutThreshold <= 0 || c.BrownoutThreshold > 1 {
		c.BrownoutThreshold = 1
	}
	return c
}

// Planner is the concurrent scheduling service core: it admits requests
// up to a queue bound, coalesces duplicates in flight, serves repeats
// from a sharded LRU cache, and computes misses on a bounded worker pool
// of pooled LP workspaces. Cross-request reuse lives entirely in the
// response LRU and the flight group, both keyed by content fingerprint;
// the policies' LP caches are request-scoped (see policies below), so a
// finished computation retains nothing.
type Planner struct {
	cfg     Config
	metrics *Metrics
	cache   *planCache
	decode  *decodeCache
	tracer  *trace.Tracer
	flight  flightGroup
	pool    rounding.WorkspacePool
	// policies maps each policy name to a factory building a fresh
	// instance with fresh LP caches. Each estimate computation gets its
	// own: the LP caches key on the *model.Instance pointer, and only
	// trials within one computation share that pointer — so per-request
	// caches capture all the reuse there is, while planner-lifetime ones
	// would only pin every decoded instance (and its LP results) forever.
	policies map[string]func() sim.Policy

	slots  chan struct{}
	queued atomic.Int64

	// readiness, distinct from liveness: ready flips on after Warmup and
	// off at BeginDrain, so a load balancer stops routing before Shutdown
	// starts refusing.
	ready    atomic.Bool
	draining atomic.Bool

	// unitCostNS is an EWMA of observed compute nanoseconds per admission
	// cost unit (itemCost), stored as float64 bits. It prices the adaptive
	// Retry-After hint: backlog units × cost per unit ÷ workers.
	unitCostNS atomic.Uint64

	// lifecycle: a mutex-guarded unit count instead of a sync.WaitGroup,
	// because begin() may Add while Close() waits — a combination
	// WaitGroup documents as misuse when the counter can touch zero.
	lmu       sync.Mutex
	units     int // admitted requests + detached computations in flight
	closing   bool
	drained   chan struct{}
	drainedup bool // drained already closed
}

// NewPlanner builds a planner. Policy instances are built per estimate
// computation (see Planner.policies); cross-request reuse of finished
// work is the fingerprint-keyed response cache's job.
func NewPlanner(cfg Config) *Planner {
	cfg = cfg.withDefaults()
	return &Planner{
		cfg:     cfg,
		metrics: newMetrics(),
		cache:   newPlanCache(cfg.CacheCap, cfg.CacheShards),
		decode:  newDecodeCache(cfg.DecodeCacheBytes),
		tracer: trace.NewTracer(trace.Config{
			Sample: cfg.TraceSample,
			Ring:   cfg.TraceRing,
			SlowN:  cfg.TraceSlowN,
			Log:    cfg.TraceLog,
		}),
		slots:   make(chan struct{}, cfg.Workers),
		drained: make(chan struct{}),
		policies: map[string]func() sim.Policy{
			"sem": func() sim.Policy { return &core.SEM{Cache: rounding.NewCache()} },
			"obl": func() sim.Policy { return &core.OBL{Cache: rounding.NewCache()} },
			"chains": func() sim.Policy {
				return &core.Chains{
					LP1Cache: rounding.NewCache(),
					LP2Cache: rounding.NewLP2Cache(),
				}
			},
			"forest": func() sim.Policy {
				return &core.Forest{Engine: &core.Chains{
					LP1Cache: rounding.NewCache(),
					LP2Cache: rounding.NewLP2Cache(),
				}}
			},
			"layered": func() sim.Policy {
				return &core.Layered{Inner: &core.SEM{Cache: rounding.NewCache()}}
			},
			"greedy":         func() sim.Policy { return baseline.Greedy{} },
			"greedy-prec":    func() sim.Policy { return baseline.GreedyPrec{} },
			"sequential":     func() sim.Policy { return baseline.Sequential{} },
			"eligible-split": func() sim.Policy { return baseline.EligibleSplit{} },
		},
	}
}

// Config returns the resolved configuration.
func (p *Planner) Config() Config { return p.cfg }

// Tracer returns the planner's request tracer (never nil; disabled when
// no Trace* config was set).
func (p *Planner) Tracer() *trace.Tracer { return p.tracer }

// obsStage closes one stage span: the elapsed time lands on the request's
// trace context and in the per-stage latency histogram. Stage metrics are
// recorded only for traced requests — library calls and Warmup never
// create a Ctx — so within one /metrics document the stage sums stay
// attributable to the requests the endpoint histograms counted.
func (p *Planner) obsStage(tc *trace.Ctx, s trace.Stage, start time.Time) {
	if tc == nil {
		return
	}
	d := time.Since(start)
	tc.Add(s, d)
	p.metrics.observeStage(s, d)
}

// Metrics returns the current metrics snapshot.
func (p *Planner) Metrics() MetricsSnapshot {
	s := p.metrics.snapshot(p.cache)
	s.RetryAfterS = p.retryAfter().Seconds()
	if p.cfg.Store != nil {
		st := p.cfg.Store.Stats()
		s.StoreEntries = st.Entries
		s.StoreCorrupt = st.CorruptDropped
		s.StoreHandoffQueued = st.HandoffQueued
		s.StoreHandoffDrain = st.HandoffDrained
		s.StoreHandoffDrop = st.HandoffDropped
		s.StoreAntiEntropy = st.AntiEntropyPulled
	}
	if p.tracer.Enabled() {
		ts := p.tracer.Stats()
		s.Traced = ts.Begun
		s.TraceSampled = ts.Sampled
		s.TraceForced = ts.Forced
		if rec := p.tracer.Recorder(); rec != nil {
			rs := rec.Stats()
			s.TraceRingKept = rs.Kept
			s.TraceSlowKept = rs.SlowKept
		}
		if lg := p.tracer.Log(); lg != nil {
			ls := lg.Stats()
			s.TraceLogRecords = ls.Records
			s.TraceLogBytes = ls.Bytes
		}
	}
	return s
}

// Close stops admitting requests and waits for every in-flight unit —
// admitted requests and detached computations — to drain. Safe to call
// more than once.
func (p *Planner) Close() {
	p.draining.Store(true)
	p.lmu.Lock()
	p.closing = true
	if p.units == 0 && !p.drainedup {
		p.drainedup = true
		close(p.drained)
	}
	p.lmu.Unlock()
	<-p.drained
}

// ShuttingDown reports whether Close has been called.
func (p *Planner) ShuttingDown() bool {
	p.lmu.Lock()
	defer p.lmu.Unlock()
	return p.closing
}

// Warmup primes the workspace pool and LP engines with one tiny plan, then
// marks the planner ready. /readyz reports not-ready until it runs: a
// replica that has not yet paged in its solve path serves its first real
// request with a cold-start latency spike a balancer should not see.
func (p *Planner) Warmup() error {
	ins, err := model.New(2, 2, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, nil)
	if err != nil {
		return err
	}
	if _, err := p.computePlan(ins, sched.FingerprintInstance(ins), 0.5, dag.ClassIndependent, nil, nil); err != nil {
		return err
	}
	// A replica with a store also waits for it to be fleet-worthy — disk
	// index rebuilt, startup anti-entropy done — before claiming ready:
	// a rebooting node must come up warm, not merely alive.
	if p.cfg.Store != nil {
		if err := p.cfg.Store.WaitWarm(context.Background()); err != nil {
			return err
		}
	}
	p.ready.Store(true)
	return nil
}

// BeginDrain marks the planner not ready without refusing work. Call it
// before http.Server.Shutdown: the balancer sees /readyz flip and stops
// routing while in-flight (and straggler) requests still complete.
func (p *Planner) BeginDrain() { p.draining.Store(true) }

// Ready reports whether the planner should receive new traffic: warmed up,
// not draining, not shut down.
func (p *Planner) Ready() bool {
	return p.ready.Load() && !p.draining.Load() && !p.ShuttingDown()
}

// begin admits a request into the planner's in-flight set.
func (p *Planner) begin() error {
	p.lmu.Lock()
	if p.closing {
		p.lmu.Unlock()
		return ErrShuttingDown
	}
	p.units++
	p.lmu.Unlock()
	p.metrics.inflight.Add(1)
	return nil
}

func (p *Planner) end() {
	p.metrics.inflight.Add(-1)
	p.untrack()
}

// track registers a detached computation with the drain count. Only call
// it while already holding a unit (the caller's begin) — that ordering is
// what lets the count rise during Close without a zero crossing.
func (p *Planner) track() {
	p.lmu.Lock()
	p.units++
	p.lmu.Unlock()
}

func (p *Planner) untrack() {
	p.lmu.Lock()
	p.units--
	if p.closing && p.units == 0 && !p.drainedup {
		p.drainedup = true
		close(p.drained)
	}
	p.lmu.Unlock()
}

// acquireFlight takes a worker slot for c's computation, failing fast with
// ErrOverloaded when the waiting line is already QueueDepth deep — the 429
// path that keeps the backlog (and therefore p99) bounded under overload.
// A computation admitted into the line waits for a slot until either one
// frees or every caller abandons the flight (c.abandoned closes): a plan
// nobody is waiting for must not keep burning queue and pool capacity.
// Work with live followers keeps waiting — one impatient caller never
// cancels a shared result.
func (p *Planner) acquireFlight(c *flightCall) error {
	if q := p.queued.Add(1); int(q) > p.cfg.QueueDepth {
		p.queued.Add(-1)
		return p.overloaded()
	}
	var abandoned <-chan struct{}
	if c != nil {
		abandoned = c.abandoned
	}
	select {
	case p.slots <- struct{}{}:
		p.queued.Add(-1)
		return nil
	case <-abandoned:
		p.queued.Add(-1)
		p.metrics.deadlineAbandoned.Add(1)
		return errAbandoned
	}
}

func (p *Planner) release() { <-p.slots }

// pressure is the admission line's fill fraction. It counts only work
// waiting for the planner's pool — cache hits bypass it entirely, so
// brownout sheds exactly the load that LP compute is drowning under.
func (p *Planner) pressure() float64 {
	return float64(p.queued.Load()) / float64(p.cfg.QueueDepth)
}

// degradeAllowed reports whether the configured brownout policy lets a
// plan request of this class be served the LP-free fallback.
func (p *Planner) degradeAllowed(class dag.Class) bool {
	switch p.cfg.DegradedPolicy {
	case DegradeAll:
		return true
	case DegradeIndependent:
		return class == dag.ClassIndependent
	default:
		return false
	}
}

// shouldDegrade is the brownout decision for a plan request: policy allows
// the class and pressure has crossed the threshold.
func (p *Planner) shouldDegrade(class dag.Class) bool {
	return p.degradeAllowed(class) && p.pressure() >= p.cfg.BrownoutThreshold
}

// observeUnitCost folds one computation's wall time into the EWMA that
// prices Retry-After hints. units is the computation's admission cost
// (itemCost).
func (p *Planner) observeUnitCost(units int, d time.Duration) {
	if units <= 0 || d <= 0 {
		return
	}
	per := float64(d) / float64(units)
	for {
		old := p.unitCostNS.Load()
		next := per
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*per
		}
		if p.unitCostNS.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfter estimates when the backlog will have drained enough for a
// retry to be admitted: queued cost units × compute time per unit ÷ pool
// width, clamped to [1s, 30s]. Before any computation has priced the EWMA
// it falls back to the old constant 1s.
func (p *Planner) retryAfter() time.Duration {
	per := math.Float64frombits(p.unitCostNS.Load())
	q := float64(p.queued.Load())
	d := time.Duration(q * per / float64(p.cfg.Workers))
	if d < time.Second {
		return time.Second
	}
	if d > 30*time.Second {
		return 30 * time.Second
	}
	return d
}

func (p *Planner) overloaded() error {
	return &overloadError{retryAfter: p.retryAfter()}
}

// checkpoint is the solve-boundary stop inside a detached computation: an
// abandoned one (every caller gone) ends before its next expensive phase,
// and the injected ComputeHook (chaos) gets its shot at failing or
// stalling the compute. abandoned may be nil (warmup, degraded serves).
// A chaos-injected failure logs the active trace ID so the fault can be
// tied back to the request that absorbed it.
func (p *Planner) checkpoint(abandoned <-chan struct{}, tc *trace.Ctx) error {
	select {
	case <-abandoned:
		p.metrics.deadlineAbandoned.Add(1)
		return errAbandoned
	default:
	}
	if h := p.cfg.ComputeHook; h != nil {
		if err := h(); err != nil {
			trace.Warn("compute fault injected", "trace", tc.IDString(), "err", err)
			return err
		}
	}
	return nil
}

// spawn runs fn on a detached, drain-tracked goroutine and lands the
// flight with its result. A panic in fn is recovered into an error — one
// poisoned request must 500 its own callers, not crash the server (the
// detached goroutine is outside net/http's per-connection recover) — and
// the flight always finishes, so followers never wait on a dead leader.
// tc (may be nil) is retained across the goroutine: the computation can
// outlive the request that started it, and the pooled Ctx must not be
// recycled under it.
func (p *Planner) spawn(key requestKey, c *flightCall, tc *trace.Ctx, fn func() (any, error)) {
	p.track()
	tc.Retain()
	go func() {
		defer p.untrack()
		defer tc.Release()
		var v any
		err := errFlightAbandoned
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("service: computation panicked: %v", r)
					trace.Error("computation panicked", "trace", tc.IDString(), "panic", fmt.Sprintf("%v", r))
				}
			}()
			v, err = fn()
		}()
		p.flight.finish(key, c, v, err)
	}()
}

// runShared executes fn at most once per key across concurrent callers.
// The computation runs on a detached goroutine (spawn) that survives
// caller cancellation: coalesced followers and the cache still want the
// result when the leader's client disconnects, so a leader hang-up must
// not poison the flight with its context error. The caller waits under
// its own ctx; a caller that gives up leaves the flight, and only when the
// LAST caller leaves is the computation abandoned — it then stops at its
// next checkpoint (slot wait, solve boundary, Monte Carlo chunk) instead
// of running to completion, so deadline-expired work stops burning pool
// slots. Work any live follower still wants runs to completion and lands
// in the cache.
//
// A new leader re-checks the response cache (an uncounted peek — the
// caller already recorded its miss) before spawning fn: a racing flight
// for the same key may have landed between this caller's cache miss and
// its join, and recomputing its cached result would waste a worker slot.
// A peek hit finishes the flight inline and returns fromCache=true so
// callers label and meter the response as cache-served, not computed.
//
// onProgress, if non-nil and this caller leads, observes the progress fn
// emits. Progress flows through a channel drained by this (caller)
// goroutine, so onProgress never runs on the detached computation
// goroutine — it may touch the caller's ResponseWriter, which dies with
// the caller.
func (p *Planner) runShared(ctx context.Context, key requestKey, onProgress func(Progress), tc *trace.Ctx, fn func(fl *flightCall, emit func(Progress)) (any, error)) (v any, err error, follower, fromCache bool) {
	c, follower := p.flight.join(key)
	var progCh chan Progress
	if follower {
		// A coalesced follower's wait on the leader is its whole story:
		// meter it as the flight stage.
		defer p.obsStage(tc, trace.StageFlight, time.Now())
	}
	if !follower {
		if cv, ok := p.cache.peek(key); ok {
			p.flight.finish(key, c, cv, nil)
			return cv, nil, false, true
		}
		emit := func(Progress) {}
		if onProgress != nil {
			ch := make(chan Progress, 8)
			progCh = ch
			emit = func(pr Progress) {
				select {
				case ch <- pr:
				default: // progress is best-effort; never block the compute
				}
			}
		}
		p.spawn(key, c, tc, func() (any, error) { return fn(c, emit) })
	}
	for {
		select {
		case pr := <-progCh:
			onProgress(pr)
		case <-c.done:
			// Deliver progress that landed in the channel before the
			// flight finished, in order, so callers see every chunk
			// boundary.
			for progCh != nil {
				select {
				case pr := <-progCh:
					onProgress(pr)
				default:
					progCh = nil
				}
			}
			return c.val, c.err, follower, false
		case <-ctx.Done():
			p.flight.leave(key, c)
			return nil, ctx.Err(), follower, false
		}
	}
}

// shareServed meters and labels a response served from shared work rather
// than this request's own computation — a coalesced follower
// (coalescedFlight) or a leader's late cache peek. Both count in the
// coalesced bucket: each such caller already recorded a cache miss, so
// the reported hit rate stays ≤ 1.
func (p *Planner) shareServed(cf *cachedFrame, coalescedFlight bool) served {
	p.metrics.coalesced.Add(1)
	if coalescedFlight {
		return served{cf: cf, coalesced: true}
	}
	return served{cf: cf, cached: true}
}

// PlanRun is one run of a planned schedule on the wire.
type PlanRun struct {
	Job   int   `json:"job"`
	Steps int64 `json:"steps"`
}

// PlanRequest asks for an LP-rounded oblivious schedule.
type PlanRequest struct {
	Instance *model.Instance `json:"instance"`
	// Target is the per-job log-mass target L of LP1 (independent
	// instances only; default 1/2, the Lemma 1/2 choice).
	Target float64 `json:"target,omitempty"`
	// DeadlineMS is the client's deadline for this request. Past it the
	// server stops working on the request (unless coalesced followers
	// still want the result) and the caller gets a 408. It never enters
	// the cache key: two requests differing only in patience want the
	// same plan.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// PlanResponse is the rounded schedule. Independent instances get the
// LP1(J, L) rounding (Lemma 2); chain instances get the LP2 rounding
// (Lemma 6). Responses are shared between callers; treat as immutable.
type PlanResponse struct {
	Fingerprint string      `json:"fingerprint"`
	Class       string      `json:"class"`
	M           int         `json:"m"`
	N           int         `json:"n"`
	Target      float64     `json:"target,omitempty"`
	TStar       float64     `json:"tstar"`
	LowerBound  float64     `json:"lower_bound,omitempty"`
	Length      int64       `json:"length"`
	Machines    [][]PlanRun `json:"machines"`
	Cached      bool        `json:"cached"`
	Coalesced   bool        `json:"coalesced,omitempty"`
	// Degraded marks a brownout fallback: a greedy list schedule served
	// under overload instead of the LP rounding. Degraded plans carry no
	// TStar/LowerBound certificate and are never cached — a retry after
	// the storm gets the real plan.
	Degraded bool `json:"degraded,omitempty"`
}

// Plan computes (or serves from cache) the rounded schedule for req.
func (p *Planner) Plan(ctx context.Context, req *PlanRequest) (*PlanResponse, error) {
	sv, err := p.planServe(ctx, req, nil)
	if err != nil {
		return nil, err
	}
	return sv.planResponse(), nil
}

// planServe is Plan for the zero-copy path: it resolves the request to the
// shared pre-encoded frame plus this caller's serving flags, without ever
// materializing a flag-bearing struct copy. The HTTP layer splices the
// frame straight into the response. tc, if non-nil, is the request's
// trace context; the planner records stage spans onto it.
func (p *Planner) planServe(ctx context.Context, req *PlanRequest, tc *trace.Ctx) (served, error) {
	if err := p.begin(); err != nil {
		return served{}, err
	}
	defer p.end()
	start := time.Now()
	sv, err := p.plan(ctx, req, tc)
	p.metrics.observe(kindPlan, time.Since(start), err)
	return sv, err
}

// validatePlan resolves req into its effective parameters: the instance,
// the normalized target (defaulted to the Lemma 1/2 choice, zeroed for
// chains where LP2 has no target knob), and the precedence class. Both the
// single and the batch endpoints go through it, so an item in a batch is
// accepted or rejected by exactly the rules /v1/plan applies.
func (p *Planner) validatePlan(req *PlanRequest) (ins *model.Instance, target float64, class dag.Class, err error) {
	if req == nil || req.Instance == nil {
		return nil, 0, 0, badRequestf("missing instance")
	}
	if err := validDeadlineMS(req.DeadlineMS); err != nil {
		return nil, 0, 0, err
	}
	ins = req.Instance
	target = req.Target
	if target == 0 {
		target = 0.5
	}
	if math.IsNaN(target) || target < 0 || target > model.LogFailCap {
		// NaN must be rejected explicitly: as a map key it never equals
		// itself, so it would leak singleflight entries and plant
		// unfindable cache entries.
		return nil, 0, 0, badRequestf("target %g outside (0, %g]", target, model.LogFailCap)
	}
	class = ins.Class()
	if class != dag.ClassIndependent && class != dag.ClassChains {
		return nil, 0, 0, badRequestf("planning supports independent and chain instances; got class %v (use /v1/estimate with policy forest or layered)", class)
	}
	if class == dag.ClassChains {
		// LP2 has no target knob: normalize before keying, so the same
		// chain instance under different targets shares one cache entry
		// and one flight instead of recomputing an identical schedule.
		target = 0
	}
	return ins, target, class, nil
}

func (p *Planner) plan(ctx context.Context, req *PlanRequest, tc *trace.Ctx) (served, error) {
	ins, target, class, err := p.validatePlan(req)
	if err != nil {
		return served{}, err
	}
	ctx, cancel := withDeadlineMS(ctx, req.DeadlineMS)
	defer cancel()
	fp := sched.FingerprintInstance(ins)
	tc.SetFingerprint(fp.Hi, fp.Lo)
	key := requestKey{fp: fp, kind: kindPlan, target: target}
	if v, ok := p.cache.get(key); ok {
		return served{cf: v.(*cachedFrame), cached: true}, nil
	}
	// Brownout: past the pressure threshold an eligible request skips the
	// line (and the flight table — degraded answers are never shared or
	// cached) and gets the cheap fallback immediately.
	if p.shouldDegrade(class) {
		return p.degradedServe(ins, fp, target, class, tc)
	}
	v, err, shared, fromCache := p.runShared(ctx, key, nil, tc, func(fl *flightCall, _ func(Progress)) (any, error) {
		// Read through the durable store before burning a worker slot:
		// a plan any replica ever computed is a deserialization, not a
		// solve. Coalesced followers ride the same lookup.
		if sv, ok := p.storeGet(key, tc); ok {
			return storeServed{val: sv}, nil
		}
		qstart := time.Now()
		if err := p.acquireFlight(fl); err != nil {
			return nil, err
		}
		p.obsStage(tc, trace.StageQueue, qstart)
		defer p.release()
		resp, err := p.computePlan(ins, fp, target, class, fl.abandoned, tc)
		if err != nil {
			return nil, err
		}
		cf, err := p.encodeFrame(resp, tc)
		if err != nil {
			return nil, err
		}
		p.metrics.plansComputed.Add(1)
		p.cache.put(key, cf)
		p.storePut(key, cf, tc)
		return cf, nil
	})
	if err != nil {
		// The line filled between the pressure check and admission; under
		// a degrade policy the fallback still beats a 429.
		if errors.Is(err, ErrOverloaded) && p.degradeAllowed(class) {
			return p.degradedServe(ins, fp, target, class, tc)
		}
		return served{}, err
	}
	if sv, ok := v.(storeServed); ok {
		// Store-served responses count as shared work: this caller
		// recorded an LRU miss but computed nothing.
		v, fromCache = sv.val, true
	}
	cf := v.(*cachedFrame)
	if shared || fromCache {
		return p.shareServed(cf, shared), nil
	}
	return served{cf: cf}, nil
}

// degradedServe wraps the brownout fallback in a one-off frame. Degraded
// plans are never cached or shared, so their encode is a per-request cold
// encode — metered, like every other cold encode.
func (p *Planner) degradedServe(ins *model.Instance, fp sched.Fingerprint, target float64, class dag.Class, tc *trace.Ctx) (served, error) {
	dstart := time.Now()
	resp := p.degradedPlan(ins, fp, target, class)
	p.obsStage(tc, trace.StageDegrade, dstart)
	cf, err := p.encodeFrame(resp, tc)
	if err != nil {
		return served{}, err
	}
	return served{cf: cf}, nil
}

// computePlan runs the rounding on a pooled workspace. The checkpoint
// before the solve is the last stop for abandoned work (and the chaos
// hook); a solve that starts always finishes — LP solves are finite and
// their result is worth caching even if every caller has gone.
func (p *Planner) computePlan(ins *model.Instance, fp sched.Fingerprint, target float64, class dag.Class, abandoned <-chan struct{}, tc *trace.Ctx) (*PlanResponse, error) {
	if err := p.checkpoint(abandoned, tc); err != nil {
		return nil, err
	}
	start := time.Now()
	ws := p.pool.Get()
	defer p.pool.Put(ws)
	resp := &PlanResponse{
		Fingerprint: fp.String(),
		Class:       class.String(),
		M:           ins.M,
		N:           ins.N,
		Target:      target,
	}
	var asn *sched.Assignment
	switch class {
	case dag.ClassIndependent:
		jobs := make([]int, ins.N)
		for j := range jobs {
			jobs[j] = j
		}
		ws.Begin()
		// The nil cache runs the rounding directly on ws; response-level
		// caching is the planner's sharded LRU, so a second memo layer
		// here would only hold duplicates.
		r, err := (*rounding.Cache)(nil).RoundLP1Ws(ws, ins, jobs, target)
		if err != nil {
			return nil, err
		}
		asn = r.Assignment
		resp.TStar = r.TFrac
		if target == 0.5 {
			// Lemma 1: E[T_OPT] ≥ max(t*/2, 1) at L = 1/2.
			resp.LowerBound = r.TFrac / 2
			if resp.LowerBound < 1 {
				resp.LowerBound = 1
			}
		}
	case dag.ClassChains:
		chains, err := ins.Chains()
		if err != nil {
			return nil, err
		}
		ws.BeginLP2()
		r, err := (*rounding.LP2Cache)(nil).RoundLP2Ws(ws, ins, chains)
		if err != nil {
			return nil, err
		}
		asn = r.Assignment
		resp.TStar = r.TFrac
	}
	// The LP solve and its rounding are fused inside the workspace Round
	// call, so StageSolve covers both; StageRound is the rounded
	// assignment's serialization into the wire shape.
	p.obsStage(tc, trace.StageSolve, start)
	rstart := time.Now()
	resp.Machines = serializeRuns(asn, &resp.Length)
	p.obsStage(tc, trace.StageRound, rstart)
	p.observeUnitCost(itemCost(ins), time.Since(start))
	return resp, nil
}

// serializeRuns converts an assignment into the wire run lists, recording
// the schedule length into *length.
func serializeRuns(asn *sched.Assignment, length *int64) [][]PlanRun {
	o := asn.Serialize()
	*length = o.Length
	machines := make([][]PlanRun, len(o.Runs))
	for i, runs := range o.Runs {
		row := make([]PlanRun, len(runs))
		for k, r := range runs {
			row[k] = PlanRun{Job: r.Job, Steps: r.Steps}
		}
		machines[i] = row
	}
	return machines
}

// EstimateRequest asks for a Monte Carlo makespan estimate.
type EstimateRequest struct {
	Instance *model.Instance `json:"instance"`
	// Policy is one of sem, obl, chains, forest, layered, greedy,
	// greedy-prec, sequential, eligible-split, or auto/"" (pick by
	// precedence class).
	Policy string `json:"policy,omitempty"`
	// Trials is the Monte Carlo budget (default DefaultTrials, capped at
	// MaxTrials).
	Trials int `json:"trials,omitempty"`
	// Seed makes the estimate reproducible; trial i runs on stream seed+i.
	Seed int64 `json:"seed,omitempty"`
	// Stream asks the HTTP layer for NDJSON progress lines.
	Stream bool `json:"stream,omitempty"`
	// DeadlineMS is the client's deadline; see PlanRequest.DeadlineMS.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// EstimateResponse summarizes the makespan sample.
type EstimateResponse struct {
	Fingerprint string  `json:"fingerprint"`
	Policy      string  `json:"policy"`
	Trials      int     `json:"trials"`
	Seed        int64   `json:"seed"`
	Mean        float64 `json:"mean"`
	Std         float64 `json:"std"`
	Sem         float64 `json:"sem"`
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
	Median      float64 `json:"median"`
	P90         float64 `json:"p90"`
	Cached      bool    `json:"cached"`
	Coalesced   bool    `json:"coalesced,omitempty"`
}

// Progress reports a streamed estimate's partial state.
type Progress struct {
	Done  int     `json:"done"`
	Total int     `json:"total"`
	Mean  float64 `json:"mean"`
}

// classRank orders precedence classes by generality.
func classRank(c dag.Class) int {
	switch {
	case c == dag.ClassIndependent:
		return 0
	case c == dag.ClassChains:
		return 1
	case c.IsForest(): // out-, in-, and mixed forests: SUU-T territory
		return 2
	default:
		return 3
	}
}

// maxClassRank is the most general class each policy accepts (runtime
// checks inside the policies would reject too, but pre-checking turns the
// mistake into a clean 400 instead of a mid-computation failure).
var maxClassRank = map[string]int{
	"sem":            0,
	"obl":            0,
	"greedy":         0,
	"chains":         1,
	"forest":         2,
	"layered":        3,
	"greedy-prec":    3,
	"sequential":     3,
	"eligible-split": 3,
}

// resolvePolicy picks the policy factory for a request.
func (p *Planner) resolvePolicy(name string, class dag.Class) (string, func() sim.Policy, error) {
	if name == "" || name == "auto" {
		switch classRank(class) {
		case 0:
			name = "sem"
		case 1:
			name = "chains"
		case 2:
			name = "forest"
		default:
			name = "layered"
		}
	}
	newPol, ok := p.policies[name]
	if !ok {
		return "", nil, badRequestf("unknown policy %q", name)
	}
	if classRank(class) > maxClassRank[name] {
		return "", nil, badRequestf("policy %q does not support precedence class %v", name, class)
	}
	return name, newPol, nil
}

// Estimate computes (or serves from cache) the Monte Carlo estimate for
// req. onProgress, if non-nil, observes partial means while the estimate
// computes; cache hits and coalesced requests skip straight to the result.
func (p *Planner) Estimate(ctx context.Context, req *EstimateRequest, onProgress func(Progress)) (*EstimateResponse, error) {
	sv, err := p.estimateServe(ctx, req, onProgress, nil)
	if err != nil {
		return nil, err
	}
	return sv.estimateResponse(), nil
}

// estimateServe is Estimate for the zero-copy path; see planServe.
func (p *Planner) estimateServe(ctx context.Context, req *EstimateRequest, onProgress func(Progress), tc *trace.Ctx) (served, error) {
	if err := p.begin(); err != nil {
		return served{}, err
	}
	defer p.end()
	start := time.Now()
	sv, err := p.estimate(ctx, req, onProgress, tc)
	p.metrics.observe(kindEstimate, time.Since(start), err)
	return sv, err
}

// estimateParams validates req and resolves it into its effective
// parameters. ValidateEstimate exposes exactly these checks so the HTTP
// layer can reject a bad stream request before committing a 200.
func (p *Planner) estimateParams(req *EstimateRequest) (trials int, name string, newPol func() sim.Policy, err error) {
	if req == nil || req.Instance == nil {
		return 0, "", nil, badRequestf("missing instance")
	}
	if err := validDeadlineMS(req.DeadlineMS); err != nil {
		return 0, "", nil, err
	}
	trials = req.Trials
	if trials == 0 {
		trials = p.cfg.DefaultTrials
	}
	if trials < 0 {
		return 0, "", nil, badRequestf("trials %d must be positive", trials)
	}
	if trials > p.cfg.MaxTrials {
		return 0, "", nil, badRequestf("trials %d over the per-request budget %d", trials, p.cfg.MaxTrials)
	}
	name, newPol, err = p.resolvePolicy(req.Policy, req.Instance.Class())
	if err != nil {
		return 0, "", nil, err
	}
	return trials, name, newPol, nil
}

// ValidateEstimate reports whether req would pass Estimate's validation,
// without computing anything.
func (p *Planner) ValidateEstimate(req *EstimateRequest) error {
	_, _, _, err := p.estimateParams(req)
	return err
}

func (p *Planner) estimate(ctx context.Context, req *EstimateRequest, onProgress func(Progress), tc *trace.Ctx) (served, error) {
	trials, name, newPol, err := p.estimateParams(req)
	if err != nil {
		return served{}, err
	}
	ctx, cancel := withDeadlineMS(ctx, req.DeadlineMS)
	defer cancel()
	ins := req.Instance
	fp := sched.FingerprintInstance(ins)
	tc.SetFingerprint(fp.Hi, fp.Lo)
	key := requestKey{fp: fp, kind: kindEstimate, policy: name, trials: trials, seed: req.Seed}
	if v, ok := p.cache.get(key); ok {
		return served{cf: v.(*cachedFrame), cached: true}, nil
	}
	v, err, shared, fromCache := p.runShared(ctx, key, onProgress, tc, func(fl *flightCall, emit func(Progress)) (any, error) {
		if sv, ok := p.storeGet(key, tc); ok {
			return storeServed{val: sv}, nil
		}
		qstart := time.Now()
		if err := p.acquireFlight(fl); err != nil {
			return nil, err
		}
		p.obsStage(tc, trace.StageQueue, qstart)
		defer p.release()
		resp, err := p.computeEstimate(ins, fp, name, newPol(), trials, req.Seed, fl.abandoned, emit, tc)
		if err != nil {
			return nil, err
		}
		cf, err := p.encodeFrame(resp, tc)
		if err != nil {
			return nil, err
		}
		p.cache.put(key, cf)
		p.storePut(key, cf, tc)
		return cf, nil
	})
	if err != nil {
		return served{}, err
	}
	if sv, ok := v.(storeServed); ok {
		v, fromCache = sv.val, true
	}
	cf := v.(*cachedFrame)
	if shared || fromCache {
		return p.shareServed(cf, shared), nil
	}
	return served{cf: cf}, nil
}

// computeEstimate runs the Monte Carlo in ProgressChunk batches. Batch b
// starts at trial offset o and seeds its stream with seed+o, so the
// concatenated sample is byte-identical to one unchunked MonteCarlo call —
// chunking changes progress granularity, never the estimate. It runs on a
// detached goroutine; each chunk boundary is a checkpoint, so an estimate
// every caller abandoned stops there instead of burning the rest of its
// trial budget. pol is this computation's own instance: its LP caches
// warm up across the request's trials (which all share ins) and die with
// the computation.
func (p *Planner) computeEstimate(ins *model.Instance, fp sched.Fingerprint, name string, pol sim.Policy, trials int, seed int64, abandoned <-chan struct{}, emit func(Progress), tc *trace.Ctx) (*EstimateResponse, error) {
	all := make([]float64, 0, trials)
	for done := 0; done < trials; {
		if err := p.checkpoint(abandoned, tc); err != nil {
			return nil, err
		}
		c := p.cfg.ProgressChunk
		if rest := trials - done; c > rest {
			c = rest
		}
		cstart := time.Now()
		res, err := sim.MonteCarlo(ins, pol, c, seed+int64(done), p.cfg.TrialWorkers)
		p.obsStage(tc, trace.StageSolve, cstart)
		if err != nil {
			return nil, fmt.Errorf("estimate with %s: %w", name, err)
		}
		all = append(all, res.Makespans...)
		done += c
		if done < trials {
			emit(Progress{Done: done, Total: trials, Mean: stats.Mean(all)})
		}
	}
	s := stats.Summarize(all)
	return &EstimateResponse{
		Fingerprint: fp.String(),
		Policy:      name,
		Trials:      trials,
		Seed:        seed,
		Mean:        s.Mean,
		Std:         s.Std,
		Sem:         s.Sem,
		Min:         s.Min,
		Max:         s.Max,
		Median:      s.Median,
		P90:         s.P90,
	}, nil
}
