package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// LoadConfig describes one suuload run against a running suud.
type LoadConfig struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8650.
	BaseURL string
	// BaseURLs, when set, runs fleet mode: each arrival is offered to the
	// replicas in a per-request rotation (spreading load evenly), and the
	// retrying client fails over across them — an arrival only errors when
	// every replica refuses it. BaseURL may be empty when BaseURLs is set;
	// if both are set, BaseURL is prepended.
	BaseURLs []string
	// Mode is "open" (arrivals at Rate regardless of completions — the
	// honest way to measure a service, per the fabbench/open-vs-closed
	// literature: closed loops hide queueing delay by self-throttling) or
	// "closed" (Concurrency workers issue back-to-back).
	Mode string
	// Arrival is "poisson" (exponential inter-arrivals) or "fixed"
	// (deterministic period); open mode only.
	Arrival string
	// Rate is the open-mode offered load in requests/second.
	Rate float64
	// Concurrency is the closed-mode worker count and the open-mode
	// in-flight cap (beyond it arrivals are counted dropped, not issued —
	// the harness refuses to turn into an unbounded goroutine pile).
	Concurrency int
	// Duration bounds the issuing phase; in-flight requests then drain.
	Duration time.Duration
	// Op is "plan", "estimate", or "plan-batch".
	Op string
	// BatchSize is the mean items per plan-batch request (default 8).
	BatchSize int
	// BatchDist draws each batch's size: "fixed" (every batch is
	// BatchSize) or "uniform" (uniform on [1, 2·BatchSize−1], mean
	// BatchSize). plan-batch only.
	BatchDist string
	// ItemRate, when positive, offers load in items/second instead of
	// requests/second: the request rate becomes ItemRate / BatchSize.
	// This is how batch and single runs are compared at equal offered
	// item rate. Open-mode plan-batch only.
	ItemRate float64
	// Specs are the instances to cycle through round-robin. Repeats are
	// the point: they measure the server's content-addressed cache.
	Specs []workload.Spec
	// Trials for estimate ops (0 = server default).
	Trials int
	// Seed drives the arrival process.
	Seed int64
	// Timeout is the per-attempt client timeout (default 30s).
	Timeout time.Duration
	// MaxAttempts is the retrying client's total tries per request
	// (default 1: no retries — measurement runs should see raw failures;
	// chaos runs turn retries on).
	MaxAttempts int
}

// LoadReport is the measured outcome. Latencies are seconds and are
// per-request — for plan-batch, per batch. Item accounting reconciles by
// construction: ItemsIssued counts the items of every request actually
// sent, and each of those items ends in ItemsDone or ItemsErrors (a
// request-level failure counts all its items as errors; a 200 batch
// splits its items by per-item status). For single-item ops the item
// fields mirror the request fields, so single and batch runs compare
// directly at the item level.
type LoadReport struct {
	Mode            string  `json:"mode"`
	Op              string  `json:"op"`
	Arrival         string  `json:"arrival,omitempty"`
	OfferedRate     float64 `json:"offered_rate_rps,omitempty"`
	OfferedItemRate float64 `json:"offered_item_rate_rps,omitempty"`
	BatchSize       int     `json:"batch_size,omitempty"`
	BatchDist       string  `json:"batch_dist,omitempty"`
	DurationS       float64 `json:"duration_s"`
	Issued          uint64  `json:"issued"` // requests actually sent; Issued = Done + Errors after the drain
	Done            uint64  `json:"done"`
	Errors          uint64  `json:"errors"`
	Rejected        uint64  `json:"rejected"` // server 429s, a subset of Errors
	Dropped         uint64  `json:"dropped"`  // open-mode arrivals over the in-flight cap, never issued
	ItemsIssued     uint64  `json:"items_issued"`
	ItemsDone       uint64  `json:"items_done"`
	ItemsErrors     uint64  `json:"items_errors"`
	Throughput      float64 `json:"throughput_rps"`
	ItemThroughput  float64 `json:"item_throughput_rps"`
	// Wire-cost ledger: BytesRead sums every response body the harness
	// read (and discarded), across successes and failures alike, and
	// BytesPerSec normalizes it over the run — items/s can stay flat while
	// a serving change silently doubles payload bytes, so the wire cost is
	// reported next to the item throughput it pays for.
	BytesRead   uint64  `json:"bytes_read"`
	BytesPerSec float64 `json:"bytes_rps"`
	// Resilience ledger. Degraded splits Done (and ItemsDegraded splits
	// ItemsDone): those requests succeeded but carried the brownout
	// fallback. InjectedErrors and OrganicServerErrors split the 5xx part
	// of Errors by whether the response was marked injected (X-Suu-Injected
	// or an "injected" body) — a chaos run asserts the organic half is
	// zero. Retries/ConnErrors/BreakerOpens come off the retrying client.
	Degraded            uint64 `json:"degraded"`
	ItemsDegraded       uint64 `json:"items_degraded"`
	InjectedErrors      uint64 `json:"injected_errors"`
	OrganicServerErrors uint64 `json:"organic_5xx"`
	Retries             uint64 `json:"retries"`
	ConnErrors          uint64 `json:"conn_errors"`
	BreakerOpens        uint64 `json:"breaker_opens"`

	LatMean       float64          `json:"lat_mean_s"`
	LatP50        float64          `json:"lat_p50_s"`
	LatP95        float64          `json:"lat_p95_s"`
	LatP99        float64          `json:"lat_p99_s"`
	LatMax        float64          `json:"lat_max_s"`
	ServerMetrics *MetricsSnapshot `json:"server_metrics,omitempty"`

	// Fleet mode: one post-run snapshot per replica (nil slot for an
	// unreachable replica — a killed one stays in the ledger), and the
	// fleet-wide effectiveness numbers. FleetHitRate counts every request
	// answered without a fresh computation anywhere — LRU hits, coalesced
	// flights, and store tiers — over all lookups; FleetStoreHits is the
	// disk+peer share of that; FleetPlansComputed is the total number of
	// plans any replica actually computed, the denominator of the "how much
	// work did replication save" question.
	Fleet              []*MetricsSnapshot `json:"fleet,omitempty"`
	FleetHitRate       float64            `json:"fleet_hit_rate,omitempty"`
	FleetStoreHits     uint64             `json:"fleet_store_hits,omitempty"`
	FleetPlansComputed uint64             `json:"fleet_plans_computed,omitempty"`

	// Server-side attribution, parsed from the X-Suu-Trace headers of
	// traced responses (run suud with -trace-sample 1 for full coverage).
	// TracedBySource counts traced responses per serving source (cached /
	// computed / coalesced / degraded / batch); ServerStageSeconds breaks
	// the server's time down as source → stage → total seconds, and
	// ServerTotalSeconds is each source's total server-side time — the
	// difference between client latency and these is the network plus
	// client-side cost, now measurable per source instead of guessed.
	TracedResponses    uint64                        `json:"traced_responses,omitempty"`
	TracedBySource     map[string]uint64             `json:"traced_by_source,omitempty"`
	ServerStageSeconds map[string]map[string]float64 `json:"server_stage_seconds,omitempty"`
	ServerTotalSeconds map[string]float64            `json:"server_total_seconds,omitempty"`
	// ServerVersion is the target's /version document (first replica),
	// so every saved report names the build it measured.
	ServerVersion *VersionInfo `json:"server_version,omitempty"`

	// Latencies is the merged histogram backing the quantiles above.
	Latencies *stats.Histogram `json:"-"`
}

// loadSources is the serving-source vocabulary the attribution tables are
// keyed by, in display order.
var loadSources = [nLoadSources]string{"cached", "computed", "coalesced", "degraded", "batch"}

const nLoadSources = 5

func loadSourceIndex(src string) int {
	for i, s := range loadSources {
		if s == src {
			return i
		}
	}
	return -1
}

// loadWorkerState is one issuing goroutine's recorder; kept per-worker so
// the hot path never contends, merged into the report at the end.
type loadWorkerState struct {
	hist *stats.Histogram
	// Per-source server-side attribution in microseconds, accumulated
	// from parsed X-Suu-Trace headers.
	traced  [nLoadSources]uint64
	stageUS [nLoadSources][trace.NumStages]int64
	totalUS [nLoadSources]int64
}

// observeTrace folds one response's trace header into the worker ledger.
func (ws *loadWorkerState) observeTrace(hdr string) {
	sum, ok := trace.ParseHeader(hdr)
	if !ok {
		return
	}
	si := loadSourceIndex(sum.Source)
	if si < 0 {
		return
	}
	ws.traced[si]++
	ws.totalUS[si] += sum.TotalUS
	for st := 0; st < trace.NumStages; st++ {
		ws.stageUS[si][st] += sum.DurUS[st]
	}
}

// RunLoad drives the configured load and reports. The context cancels the
// run early (in-flight requests still drain).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	bases := make([]string, 0, 1+len(cfg.BaseURLs))
	if cfg.BaseURL != "" {
		bases = append(bases, cfg.BaseURL)
	}
	bases = append(bases, cfg.BaseURLs...)
	if len(bases) == 0 {
		return nil, fmt.Errorf("service: load needs a base URL")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("service: load needs at least one instance spec")
	}
	if cfg.Mode == "" {
		cfg.Mode = "open"
	}
	if cfg.Mode != "open" && cfg.Mode != "closed" {
		return nil, fmt.Errorf("service: load mode %q (want open or closed)", cfg.Mode)
	}
	if cfg.Arrival == "" {
		cfg.Arrival = "poisson"
	}
	if cfg.Arrival != "poisson" && cfg.Arrival != "fixed" {
		return nil, fmt.Errorf("service: arrival %q (want poisson or fixed)", cfg.Arrival)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Op == "" {
		cfg.Op = "plan"
	}
	if cfg.Op != "plan" && cfg.Op != "estimate" && cfg.Op != "plan-batch" {
		return nil, fmt.Errorf("service: op %q (want plan, estimate, or plan-batch)", cfg.Op)
	}
	if cfg.Op == "plan-batch" {
		if cfg.BatchSize <= 0 {
			cfg.BatchSize = 8
		}
		if cfg.BatchDist == "" {
			cfg.BatchDist = "fixed"
		}
		if cfg.BatchDist != "fixed" && cfg.BatchDist != "uniform" {
			return nil, fmt.Errorf("service: batch dist %q (want fixed or uniform)", cfg.BatchDist)
		}
		if cfg.ItemRate > 0 {
			if cfg.Mode != "open" {
				return nil, fmt.Errorf("service: item-rate pacing needs open mode")
			}
			// Offer items, not requests: both distributions have mean
			// BatchSize, so this hits the configured item rate in
			// expectation.
			cfg.Rate = cfg.ItemRate / float64(cfg.BatchSize)
		}
	} else if cfg.BatchSize > 0 || cfg.BatchDist != "" || cfg.ItemRate > 0 {
		return nil, fmt.Errorf("service: batch options need op plan-batch, got %q", cfg.Op)
	}
	if cfg.Mode == "open" && cfg.Rate <= 0 {
		return nil, fmt.Errorf("service: open mode needs rate > 0, got %g", cfg.Rate)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}

	// Pre-generate and pre-marshal every request body: the harness must
	// not spend its issuing budget on instance generation or JSON
	// encoding, or measured latency drifts with client cost.
	instances := make([]*PlanRequest, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("service: generating spec %d: %w", i, err)
		}
		instances[i] = &PlanRequest{Instance: ins}
	}
	var path string
	var bodies [][]byte
	var bodyItems []uint64 // items per body, parallel to bodies
	{
		var err error
		switch cfg.Op {
		case "plan":
			path = "/v1/plan"
			bodies = make([][]byte, len(instances))
			for i, req := range instances {
				if bodies[i], err = json.Marshal(req); err != nil {
					return nil, fmt.Errorf("service: marshaling spec %d: %w", i, err)
				}
			}
		case "estimate":
			path = "/v1/estimate"
			bodies = make([][]byte, len(instances))
			for i, req := range instances {
				er := &EstimateRequest{Instance: req.Instance, Trials: cfg.Trials, Seed: 1}
				if bodies[i], err = json.Marshal(er); err != nil {
					return nil, fmt.Errorf("service: marshaling spec %d: %w", i, err)
				}
			}
		case "plan-batch":
			// A pool of pre-built batches: sizes drawn from the configured
			// distribution, items cycling the specs round-robin across
			// bodies so every spec appears regardless of batch boundaries.
			path = "/v1/plan/batch"
			nBodies := 4 * len(instances)
			if nBodies < 32 {
				nBodies = 32
			}
			bodies = make([][]byte, nBodies)
			bodyItems = make([]uint64, nBodies)
			sizeSrc := rng.New(cfg.Seed + 0xba7c)
			next := 0
			lastSize := 0
			for b := range bodies {
				size := cfg.BatchSize
				if cfg.BatchDist == "uniform" {
					// Antithetic pairs: body 2k draws uniform[1, 2B−1],
					// body 2k+1 takes its mirror 2B−draw, so the pool's
					// mean size is exactly BatchSize and the reported
					// offered item rate (request rate × BatchSize) is the
					// rate actually offered, not off by the pool's
					// sampling error. nBodies is even (a multiple of 4).
					if b%2 == 0 {
						size = 1 + int(sizeSrc.Uint64()%uint64(2*cfg.BatchSize-1))
						lastSize = size
					} else {
						size = 2*cfg.BatchSize - lastSize
					}
				}
				items := make([]PlanRequest, size)
				for k := range items {
					items[k] = *instances[next%len(instances)]
					next++
				}
				if bodies[b], err = json.Marshal(&BatchPlanRequest{Items: items}); err != nil {
					return nil, fmt.Errorf("service: marshaling batch body %d: %w", b, err)
				}
				bodyItems[b] = uint64(size)
			}
		}
	}
	// Fleet mode pre-builds every rotation of the replica URL list:
	// request i prefers replica i mod n but hands the retrying client the
	// whole ring, so failover costs an attempt, not an error. Precomputing
	// keeps the per-arrival hot path allocation-free.
	urls := make([]string, len(bases))
	for i, b := range bases {
		urls[i] = b + path
	}
	rotations := make([][]string, len(urls))
	for r := range rotations {
		rot := make([]string, len(urls))
		for i := range urls {
			rot[i] = urls[(r+i)%len(urls)]
		}
		rotations[r] = rot
	}

	transport := &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}
	// FetchMetrics and other plain GETs share the pooled transport.
	plainClient := &http.Client{Timeout: cfg.Timeout, Transport: transport}
	suu := client.New(client.Config{
		MaxAttempts:    cfg.MaxAttempts,
		AttemptTimeout: cfg.Timeout,
		Seed:           cfg.Seed + 0xc11e,
		Transport:      transport,
	})

	var issued, done, errs, rejected, dropped atomic.Uint64
	var itemsIssued, itemsDone, itemsErr, bytesRead atomic.Uint64
	var degraded, itemsDegraded, injectedErrs, organic5xx atomic.Uint64
	workers := make([]loadWorkerState, cfg.Concurrency)
	for i := range workers {
		workers[i].hist = stats.NewLatencyHistogram()
	}

	batchOp := cfg.Op == "plan-batch"
	issue := func(ws *loadWorkerState, idx int) {
		items := uint64(1)
		if batchOp {
			items = bodyItems[idx]
		}
		itemsIssued.Add(items)
		start := time.Now()
		res, err := suu.DoAny(ctx, rotations[idx%len(rotations)], bodies[idx])
		lat := time.Since(start).Seconds()
		if err != nil {
			// No response at all: every attempt died on the wire (or the
			// breaker was open). The client's own ledger has the split.
			errs.Add(1)
			itemsErr.Add(items)
			return
		}
		bytesRead.Add(uint64(len(res.Body)))
		if res.Status != http.StatusOK {
			errs.Add(1)
			itemsErr.Add(items) // a failed request delivered none of its items
			switch {
			case res.Status == http.StatusTooManyRequests:
				rejected.Add(1)
			case res.Status >= 500:
				// Ledger injected separately from organic: injected faults
				// announce themselves (header or an "injected" body); any
				// other 5xx is the server's own bug and a chaos run must
				// report it as such.
				if res.Injected || bytes.Contains(res.Body, []byte("injected")) {
					injectedErrs.Add(1)
				} else {
					organic5xx.Add(1)
				}
			}
			return
		}
		if res.Trace != "" {
			ws.observeTrace(res.Trace)
		}
		if batchOp {
			// Split the batch's items by the per-item statuses the
			// envelope summarizes; ok + errors = size, so the item ledger
			// reconciles exactly like the request ledger.
			var sum struct {
				OK       uint64 `json:"ok"`
				Errors   uint64 `json:"errors"`
				Degraded uint64 `json:"degraded"`
			}
			if derr := json.Unmarshal(res.Body, &sum); derr != nil {
				errs.Add(1)
				itemsErr.Add(items)
				return
			}
			itemsDone.Add(sum.OK)
			itemsErr.Add(sum.Errors)
			if sum.Degraded > 0 {
				degraded.Add(1)
				itemsDegraded.Add(sum.Degraded)
			}
		} else {
			itemsDone.Add(1)
			if cfg.Op == "plan" {
				var pr struct {
					Degraded bool `json:"degraded"`
				}
				if json.Unmarshal(res.Body, &pr) == nil && pr.Degraded {
					degraded.Add(1)
					itemsDegraded.Add(1)
				}
			}
		}
		ws.hist.Observe(lat)
		done.Add(1)
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()

	if cfg.Mode == "closed" {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := &workers[w]
				for i := w; runCtx.Err() == nil; i += cfg.Concurrency {
					issued.Add(1)
					issue(ws, i%len(bodies))
				}
			}(w)
		}
		wg.Wait()
	} else {
		// Open loop: a dispatcher paces arrivals from the configured
		// process; each arrival grabs a free worker slot or is dropped.
		slots := make(chan int, cfg.Concurrency)
		for w := 0; w < cfg.Concurrency; w++ {
			slots <- w
		}
		src := rng.New(cfg.Seed + 0x10ad)
		period := float64(time.Second) / cfg.Rate
		interArrival := func() time.Duration {
			if cfg.Arrival == "fixed" {
				return time.Duration(period)
			}
			// Exponential inter-arrival via inverse CDF; the SplitMix
			// draw is uniform in [0,1).
			u := float64(src.Uint64()>>11) / (1 << 53)
			return time.Duration(period * -math.Log(1-u))
		}
		// Arrivals follow an absolute-deadline schedule (fire i at
		// start + Σ inter-arrivals), not timer-chaining: resetting a
		// timer after each fire would add per-arrival dispatch latency to
		// every gap and systematically under-offer the configured rate.
		// A late wakeup fires immediately and catches up.
		var wg sync.WaitGroup
		deadline := time.Now()
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	dispatch:
		for i := 0; ; i++ {
			deadline = deadline.Add(interArrival())
			wait := time.Until(deadline)
			if wait < 0 {
				wait = 0
			}
			timer.Reset(wait)
			select {
			case <-runCtx.Done():
				break dispatch
			case <-timer.C:
				select {
				case w := <-slots:
					// Count issued only once a slot is held: dropped
					// arrivals never reach the server, and keeping them
					// out of issued lets Issued = Done + Errors reconcile
					// after the drain.
					issued.Add(1)
					wg.Add(1)
					go func(w, i int) {
						defer wg.Done()
						issue(&workers[w], i%len(bodies))
						slots <- w
					}(w, i)
				default:
					dropped.Add(1)
				}
			}
		}
		wg.Wait()
	}
	elapsed := time.Since(start).Seconds()

	merged := stats.NewLatencyHistogram()
	var traced [nLoadSources]uint64
	var stageUS [nLoadSources][trace.NumStages]int64
	var totalUS [nLoadSources]int64
	for i := range workers {
		if err := merged.Merge(workers[i].hist); err != nil {
			return nil, err
		}
		for si := range loadSources {
			traced[si] += workers[i].traced[si]
			totalUS[si] += workers[i].totalUS[si]
			for st := 0; st < trace.NumStages; st++ {
				stageUS[si][st] += workers[i].stageUS[si][st]
			}
		}
	}
	cm := suu.Snapshot()
	rep := &LoadReport{
		Mode:                cfg.Mode,
		Op:                  cfg.Op,
		DurationS:           elapsed,
		Issued:              issued.Load(),
		Done:                done.Load(),
		Errors:              errs.Load(),
		Rejected:            rejected.Load(),
		Dropped:             dropped.Load(),
		ItemsIssued:         itemsIssued.Load(),
		ItemsDone:           itemsDone.Load(),
		ItemsErrors:         itemsErr.Load(),
		Degraded:            degraded.Load(),
		ItemsDegraded:       itemsDegraded.Load(),
		InjectedErrors:      injectedErrs.Load(),
		OrganicServerErrors: organic5xx.Load(),
		Retries:             cm.Retries,
		ConnErrors:          cm.ConnErrors,
		BreakerOpens:        cm.BreakerOpens,
		Throughput:          float64(done.Load()) / elapsed,
		ItemThroughput:      float64(itemsDone.Load()) / elapsed,
		BytesRead:           bytesRead.Load(),
		BytesPerSec:         float64(bytesRead.Load()) / elapsed,
		Latencies:           merged,
	}
	if batchOp {
		rep.BatchSize = cfg.BatchSize
		rep.BatchDist = cfg.BatchDist
	}
	if cfg.Mode == "open" {
		rep.Arrival = cfg.Arrival
		rep.OfferedRate = cfg.Rate
		rep.OfferedItemRate = cfg.Rate
		if batchOp {
			rep.OfferedItemRate = cfg.Rate * float64(cfg.BatchSize)
		}
	}
	for si, src := range loadSources {
		if traced[si] == 0 {
			continue
		}
		rep.TracedResponses += traced[si]
		if rep.TracedBySource == nil {
			rep.TracedBySource = make(map[string]uint64)
			rep.ServerStageSeconds = make(map[string]map[string]float64)
			rep.ServerTotalSeconds = make(map[string]float64)
		}
		rep.TracedBySource[src] = traced[si]
		rep.ServerTotalSeconds[src] = float64(totalUS[si]) / 1e6
		stages := make(map[string]float64)
		for st := 0; st < trace.NumStages; st++ {
			if stageUS[si][st] > 0 {
				stages[trace.Stage(st).String()] = float64(stageUS[si][st]) / 1e6
			}
		}
		rep.ServerStageSeconds[src] = stages
	}
	if merged.N() > 0 {
		rep.LatMean = merged.Mean()
		rep.LatP50 = merged.Quantile(0.50)
		rep.LatP95 = merged.Quantile(0.95)
		rep.LatP99 = merged.Quantile(0.99)
		rep.LatMax = merged.Max()
	}
	// Best-effort server-side view (hit rate, in-flight peaks) to pair
	// with the client-side latencies. ServerMetrics stays the first
	// replica's snapshot so single-replica consumers read the same field
	// they always did; fleet mode adds the per-replica list and the
	// fleet-wide aggregates on top.
	if snap, err := FetchMetrics(ctx, plainClient, bases[0]); err == nil {
		rep.ServerMetrics = snap
	}
	if vi, err := FetchVersion(ctx, plainClient, bases[0]); err == nil {
		rep.ServerVersion = vi
	}
	if len(bases) > 1 {
		rep.Fleet = make([]*MetricsSnapshot, len(bases))
		var lookups, notComputed uint64
		for i, b := range bases {
			snap, err := FetchMetrics(ctx, plainClient, b)
			if err != nil {
				continue // replica down (maybe on purpose); nil marks it
			}
			rep.Fleet[i] = snap
			lookups += snap.CacheHits + snap.CacheMisses
			notComputed += snap.CacheHits + snap.Coalesced + snap.StoreDiskHits + snap.StorePeerHits
			rep.FleetStoreHits += snap.StoreDiskHits + snap.StorePeerHits
			rep.FleetPlansComputed += snap.PlansComputed
		}
		if lookups > 0 {
			rep.FleetHitRate = float64(notComputed) / float64(lookups)
		}
	}
	return rep, nil
}

// FetchVersion GETs and decodes /version.
func FetchVersion(ctx context.Context, client *http.Client, baseURL string) (*VersionInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/version", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: /version status %d", resp.StatusCode)
	}
	var vi VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&vi); err != nil {
		return nil, err
	}
	return &vi, nil
}

// FetchMetrics GETs and decodes /metrics.
func FetchMetrics(ctx context.Context, client *http.Client, baseURL string) (*MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: /metrics status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
