package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// LoadConfig describes one suuload run against a running suud.
type LoadConfig struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8650.
	BaseURL string
	// Mode is "open" (arrivals at Rate regardless of completions — the
	// honest way to measure a service, per the fabbench/open-vs-closed
	// literature: closed loops hide queueing delay by self-throttling) or
	// "closed" (Concurrency workers issue back-to-back).
	Mode string
	// Arrival is "poisson" (exponential inter-arrivals) or "fixed"
	// (deterministic period); open mode only.
	Arrival string
	// Rate is the open-mode offered load in requests/second.
	Rate float64
	// Concurrency is the closed-mode worker count and the open-mode
	// in-flight cap (beyond it arrivals are counted dropped, not issued —
	// the harness refuses to turn into an unbounded goroutine pile).
	Concurrency int
	// Duration bounds the issuing phase; in-flight requests then drain.
	Duration time.Duration
	// Op is "plan" or "estimate".
	Op string
	// Specs are the instances to cycle through round-robin. Repeats are
	// the point: they measure the server's content-addressed cache.
	Specs []workload.Spec
	// Trials for estimate ops (0 = server default).
	Trials int
	// Seed drives the arrival process.
	Seed int64
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
}

// LoadReport is the measured outcome. Latencies are seconds.
type LoadReport struct {
	Mode          string           `json:"mode"`
	Op            string           `json:"op"`
	Arrival       string           `json:"arrival,omitempty"`
	OfferedRate   float64          `json:"offered_rate_rps,omitempty"`
	DurationS     float64          `json:"duration_s"`
	Issued        uint64           `json:"issued"` // requests actually sent; Issued = Done + Errors after the drain
	Done          uint64           `json:"done"`
	Errors        uint64           `json:"errors"`
	Rejected      uint64           `json:"rejected"` // server 429s, a subset of Errors
	Dropped       uint64           `json:"dropped"`  // open-mode arrivals over the in-flight cap, never issued
	Throughput    float64          `json:"throughput_rps"`
	LatMean       float64          `json:"lat_mean_s"`
	LatP50        float64          `json:"lat_p50_s"`
	LatP95        float64          `json:"lat_p95_s"`
	LatP99        float64          `json:"lat_p99_s"`
	LatMax        float64          `json:"lat_max_s"`
	ServerMetrics *MetricsSnapshot `json:"server_metrics,omitempty"`

	// Latencies is the merged histogram backing the quantiles above.
	Latencies *stats.Histogram `json:"-"`
}

// loadWorkerState is one issuing goroutine's recorder; kept per-worker so
// the hot path never contends, merged into the report at the end.
type loadWorkerState struct {
	hist *stats.Histogram
}

// RunLoad drives the configured load and reports. The context cancels the
// run early (in-flight requests still drain).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("service: load needs a base URL")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("service: load needs at least one instance spec")
	}
	if cfg.Mode == "" {
		cfg.Mode = "open"
	}
	if cfg.Mode != "open" && cfg.Mode != "closed" {
		return nil, fmt.Errorf("service: load mode %q (want open or closed)", cfg.Mode)
	}
	if cfg.Arrival == "" {
		cfg.Arrival = "poisson"
	}
	if cfg.Arrival != "poisson" && cfg.Arrival != "fixed" {
		return nil, fmt.Errorf("service: arrival %q (want poisson or fixed)", cfg.Arrival)
	}
	if cfg.Mode == "open" && cfg.Rate <= 0 {
		return nil, fmt.Errorf("service: open mode needs rate > 0, got %g", cfg.Rate)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Op == "" {
		cfg.Op = "plan"
	}
	if cfg.Op != "plan" && cfg.Op != "estimate" {
		return nil, fmt.Errorf("service: op %q (want plan or estimate)", cfg.Op)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}

	// Pre-generate and pre-marshal every request body: the harness must
	// not spend its issuing budget on instance generation or JSON
	// encoding, or measured latency drifts with client cost.
	bodies := make([][]byte, len(cfg.Specs))
	var path string
	for i, spec := range cfg.Specs {
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("service: generating spec %d: %w", i, err)
		}
		switch cfg.Op {
		case "plan":
			path = "/v1/plan"
			bodies[i], err = json.Marshal(&PlanRequest{Instance: ins})
		case "estimate":
			path = "/v1/estimate"
			bodies[i], err = json.Marshal(&EstimateRequest{Instance: ins, Trials: cfg.Trials, Seed: 1})
		}
		if err != nil {
			return nil, fmt.Errorf("service: marshaling spec %d: %w", i, err)
		}
	}
	url := cfg.BaseURL + path

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}

	var issued, done, errs, rejected, dropped atomic.Uint64
	workers := make([]loadWorkerState, cfg.Concurrency)
	for i := range workers {
		workers[i].hist = stats.NewLatencyHistogram()
	}

	issue := func(ws *loadWorkerState, body []byte) {
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		lat := time.Since(start).Seconds()
		if err != nil {
			errs.Add(1)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs.Add(1)
			if resp.StatusCode == http.StatusTooManyRequests {
				rejected.Add(1)
			}
			return
		}
		ws.hist.Observe(lat)
		done.Add(1)
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()

	if cfg.Mode == "closed" {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := &workers[w]
				for i := w; runCtx.Err() == nil; i += cfg.Concurrency {
					issued.Add(1)
					issue(ws, bodies[i%len(bodies)])
				}
			}(w)
		}
		wg.Wait()
	} else {
		// Open loop: a dispatcher paces arrivals from the configured
		// process; each arrival grabs a free worker slot or is dropped.
		slots := make(chan int, cfg.Concurrency)
		for w := 0; w < cfg.Concurrency; w++ {
			slots <- w
		}
		src := rng.New(cfg.Seed + 0x10ad)
		period := float64(time.Second) / cfg.Rate
		interArrival := func() time.Duration {
			if cfg.Arrival == "fixed" {
				return time.Duration(period)
			}
			// Exponential inter-arrival via inverse CDF; the SplitMix
			// draw is uniform in [0,1).
			u := float64(src.Uint64()>>11) / (1 << 53)
			return time.Duration(period * -math.Log(1-u))
		}
		// Arrivals follow an absolute-deadline schedule (fire i at
		// start + Σ inter-arrivals), not timer-chaining: resetting a
		// timer after each fire would add per-arrival dispatch latency to
		// every gap and systematically under-offer the configured rate.
		// A late wakeup fires immediately and catches up.
		var wg sync.WaitGroup
		deadline := time.Now()
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	dispatch:
		for i := 0; ; i++ {
			deadline = deadline.Add(interArrival())
			wait := time.Until(deadline)
			if wait < 0 {
				wait = 0
			}
			timer.Reset(wait)
			select {
			case <-runCtx.Done():
				break dispatch
			case <-timer.C:
				select {
				case w := <-slots:
					// Count issued only once a slot is held: dropped
					// arrivals never reach the server, and keeping them
					// out of issued lets Issued = Done + Errors reconcile
					// after the drain.
					issued.Add(1)
					wg.Add(1)
					go func(w, i int) {
						defer wg.Done()
						issue(&workers[w], bodies[i%len(bodies)])
						slots <- w
					}(w, i)
				default:
					dropped.Add(1)
				}
			}
		}
		wg.Wait()
	}
	elapsed := time.Since(start).Seconds()

	merged := stats.NewLatencyHistogram()
	for i := range workers {
		if err := merged.Merge(workers[i].hist); err != nil {
			return nil, err
		}
	}
	rep := &LoadReport{
		Mode:       cfg.Mode,
		Op:         cfg.Op,
		DurationS:  elapsed,
		Issued:     issued.Load(),
		Done:       done.Load(),
		Errors:     errs.Load(),
		Rejected:   rejected.Load(),
		Dropped:    dropped.Load(),
		Throughput: float64(done.Load()) / elapsed,
		Latencies:  merged,
	}
	if cfg.Mode == "open" {
		rep.Arrival = cfg.Arrival
		rep.OfferedRate = cfg.Rate
	}
	if merged.N() > 0 {
		rep.LatMean = merged.Mean()
		rep.LatP50 = merged.Quantile(0.50)
		rep.LatP95 = merged.Quantile(0.95)
		rep.LatP99 = merged.Quantile(0.99)
		rep.LatMax = merged.Max()
	}
	// Best-effort server-side view (hit rate, in-flight peaks) to pair
	// with the client-side latencies.
	if snap, err := FetchMetrics(ctx, client, cfg.BaseURL); err == nil {
		rep.ServerMetrics = snap
	}
	return rep, nil
}

// FetchMetrics GETs and decodes /metrics.
func FetchMetrics(ctx context.Context, client *http.Client, baseURL string) (*MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: /metrics status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
