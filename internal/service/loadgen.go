package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// LoadConfig describes one suuload run against a running suud.
type LoadConfig struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8650.
	BaseURL string
	// BaseURLs, when set, runs fleet mode: each arrival is offered to the
	// replicas in a per-request rotation (spreading load evenly), and the
	// retrying client fails over across them — an arrival only errors when
	// every replica refuses it. BaseURL may be empty when BaseURLs is set;
	// if both are set, BaseURL is prepended.
	BaseURLs []string
	// Mode is "open" (arrivals at Rate regardless of completions — the
	// honest way to measure a service, per the fabbench/open-vs-closed
	// literature: closed loops hide queueing delay by self-throttling) or
	// "closed" (Concurrency workers issue back-to-back).
	Mode string
	// Arrival is "poisson" (exponential inter-arrivals) or "fixed"
	// (deterministic period); open mode only.
	Arrival string
	// Rate is the open-mode offered load in requests/second.
	Rate float64
	// Concurrency is the closed-mode worker count and the open-mode
	// in-flight cap (beyond it arrivals are counted dropped, not issued —
	// the harness refuses to turn into an unbounded goroutine pile).
	Concurrency int
	// Duration bounds the issuing phase; in-flight requests then drain.
	Duration time.Duration
	// Op is "plan", "estimate", or "plan-batch".
	Op string
	// BatchSize is the mean items per plan-batch request (default 8).
	BatchSize int
	// BatchDist draws each batch's size: "fixed" (every batch is
	// BatchSize) or "uniform" (uniform on [1, 2·BatchSize−1], mean
	// BatchSize). plan-batch only.
	BatchDist string
	// ItemRate, when positive, offers load in items/second instead of
	// requests/second: the request rate becomes ItemRate / BatchSize.
	// This is how batch and single runs are compared at equal offered
	// item rate. Open-mode plan-batch only.
	ItemRate float64
	// Specs are the instances arrivals draw from (see Popularity; the
	// default cycles them round-robin). Repeats are the point: they
	// measure the server's content-addressed cache.
	Specs []workload.Spec
	// Trials for estimate ops (0 = server default).
	Trials int
	// Seed drives the arrival process.
	Seed int64
	// Timeout is the per-attempt client timeout (default 30s).
	Timeout time.Duration
	// MaxAttempts is the retrying client's total tries per request
	// (default 1: no retries — measurement runs should see raw failures;
	// chaos runs turn retries on).
	MaxAttempts int
	// Curve shapes open-mode offered load over time: "" or "constant"
	// (stationary at Rate), "constant:<rps>", "linstep:<from>:<to>:<ramp>"
	// (linear ramp then hold), or "switching:<hi>:<lo>:<period>" (square
	// wave). The dispatcher inverts the curve's cumulative rate, so the
	// offered count over the run matches the curve's integral exactly.
	Curve string
	// Popularity picks which pre-built body each arrival requests: "" or
	// "roundrobin" (cycle, the historical behavior), or "zipf:<s>" over
	// the body pool with index 0 hottest. Seeded from Seed.
	Popularity string
	// RecordPath, when set, appends one framed binary record per issued
	// request (issue time, op, body index, batch size, latency, outcome,
	// serving source) plus a header that lets a replay rebuild the
	// identical bodies from the file alone.
	RecordPath string
	// ReplayPath re-issues a recorded trace: the op, spec catalog, batch
	// shape, and seed come from the recording's header, and arrivals
	// follow the recorded schedule scaled by ReplaySpeed. Mode, Arrival,
	// Rate, Curve, Popularity, Specs, and Duration are ignored.
	ReplayPath string
	// ReplaySpeed scales the replayed schedule (2 = twice as fast;
	// 0 means 1).
	ReplaySpeed float64
}

// LoadReport is the measured outcome. Latencies are seconds and are
// per-request — for plan-batch, per batch. Item accounting reconciles by
// construction: ItemsIssued counts the items of every request actually
// sent, and each of those items ends in ItemsDone or ItemsErrors (a
// request-level failure counts all its items as errors; a 200 batch
// splits its items by per-item status). For single-item ops the item
// fields mirror the request fields, so single and batch runs compare
// directly at the item level.
type LoadReport struct {
	Mode            string  `json:"mode"`
	Op              string  `json:"op"`
	Arrival         string  `json:"arrival,omitempty"`
	Curve           string  `json:"curve,omitempty"`
	Popularity      string  `json:"popularity,omitempty"`
	OfferedRate     float64 `json:"offered_rate_rps,omitempty"`
	OfferedItemRate float64 `json:"offered_item_rate_rps,omitempty"`
	BatchSize       int     `json:"batch_size,omitempty"`
	BatchDist       string  `json:"batch_dist,omitempty"`
	// DurationS is the issuing window — run start to the last arrival
	// offered — and DrainS is the extra time spent waiting for in-flight
	// requests to finish. Throughput, ItemThroughput, and BytesPerSec
	// divide by the issuing window only: dividing by window+drain (the
	// old behavior) let one slow straggler deflate every reported rate.
	DurationS      float64 `json:"duration_s"`
	DrainS         float64 `json:"drain_s"`
	Issued         uint64  `json:"issued"` // requests actually sent; Issued = Done + Errors after the drain
	Done           uint64  `json:"done"`
	Errors         uint64  `json:"errors"`
	Rejected       uint64  `json:"rejected"` // server 429s, a subset of Errors
	Dropped        uint64  `json:"dropped"`  // open-mode arrivals over the in-flight cap, never issued
	ItemsIssued    uint64  `json:"items_issued"`
	ItemsDone      uint64  `json:"items_done"`
	ItemsErrors    uint64  `json:"items_errors"`
	Throughput     float64 `json:"throughput_rps"`
	ItemThroughput float64 `json:"item_throughput_rps"`
	// Wire-cost ledger: BytesRead sums every response body the harness
	// read (and discarded), across successes and failures alike, and
	// BytesPerSec normalizes it over the run — items/s can stay flat while
	// a serving change silently doubles payload bytes, so the wire cost is
	// reported next to the item throughput it pays for.
	BytesRead   uint64  `json:"bytes_read"`
	BytesPerSec float64 `json:"bytes_rps"`
	// Resilience ledger. Degraded splits Done (and ItemsDegraded splits
	// ItemsDone): those requests succeeded but carried the brownout
	// fallback. InjectedErrors and OrganicServerErrors split the 5xx part
	// of Errors by the X-Suu-Injected response header — the only injected
	// marker; an organic failure whose message happens to contain the word
	// "injected" counts as organic. A chaos run asserts the organic half
	// is zero. Retries/ConnErrors/BreakerOpens come off the retrying
	// client.
	Degraded            uint64 `json:"degraded"`
	ItemsDegraded       uint64 `json:"items_degraded"`
	InjectedErrors      uint64 `json:"injected_errors"`
	OrganicServerErrors uint64 `json:"organic_5xx"`
	Retries             uint64 `json:"retries"`
	ConnErrors          uint64 `json:"conn_errors"`
	BreakerOpens        uint64 `json:"breaker_opens"`
	// Record/replay ledger: Recorded counts trace records written (one
	// per issued request), RecordErrors counts swallowed write failures,
	// and ReplaySpeed is the schedule scale of a replay run.
	Recorded     uint64  `json:"recorded,omitempty"`
	RecordErrors uint64  `json:"record_errors,omitempty"`
	ReplaySpeed  float64 `json:"replay_speed,omitempty"`

	LatMean       float64          `json:"lat_mean_s"`
	LatP50        float64          `json:"lat_p50_s"`
	LatP95        float64          `json:"lat_p95_s"`
	LatP99        float64          `json:"lat_p99_s"`
	LatMax        float64          `json:"lat_max_s"`
	ServerMetrics *MetricsSnapshot `json:"server_metrics,omitempty"`

	// Fleet mode: one post-run snapshot per replica (nil slot for an
	// unreachable replica — a killed one stays in the ledger), and the
	// fleet-wide effectiveness numbers. FleetHitRate counts every request
	// answered without a fresh computation anywhere — LRU hits, coalesced
	// flights, and store tiers — over all lookups; FleetStoreHits is the
	// disk+peer share of that; FleetPlansComputed is the total number of
	// plans any replica actually computed, the denominator of the "how much
	// work did replication save" question.
	Fleet              []*MetricsSnapshot `json:"fleet,omitempty"`
	FleetHitRate       float64            `json:"fleet_hit_rate,omitempty"`
	FleetStoreHits     uint64             `json:"fleet_store_hits,omitempty"`
	FleetPlansComputed uint64             `json:"fleet_plans_computed,omitempty"`

	// Server-side attribution, parsed from the X-Suu-Trace headers of
	// traced responses (run suud with -trace-sample 1 for full coverage).
	// TracedBySource counts traced responses per serving source (cached /
	// computed / coalesced / degraded / batch); ServerStageSeconds breaks
	// the server's time down as source → stage → total seconds, and
	// ServerTotalSeconds is each source's total server-side time — the
	// difference between client latency and these is the network plus
	// client-side cost, now measurable per source instead of guessed.
	TracedResponses    uint64                        `json:"traced_responses,omitempty"`
	TracedBySource     map[string]uint64             `json:"traced_by_source,omitempty"`
	ServerStageSeconds map[string]map[string]float64 `json:"server_stage_seconds,omitempty"`
	ServerTotalSeconds map[string]float64            `json:"server_total_seconds,omitempty"`
	// ServerVersion is the target's /version document (first replica),
	// so every saved report names the build it measured.
	ServerVersion *VersionInfo `json:"server_version,omitempty"`

	// Latencies is the merged histogram backing the quantiles above.
	Latencies *stats.Histogram `json:"-"`
}

// loadSources is the serving-source vocabulary the attribution tables are
// keyed by, in display order.
var loadSources = [nLoadSources]string{"cached", "computed", "coalesced", "degraded", "batch"}

const nLoadSources = 5

func loadSourceIndex(src string) int {
	for i, s := range loadSources {
		if s == src {
			return i
		}
	}
	return -1
}

// loadWorkerState is one issuing goroutine's recorder; kept per-worker so
// the hot path never contends, merged into the report at the end.
type loadWorkerState struct {
	hist *stats.Histogram
	// Per-source server-side attribution in microseconds, accumulated
	// from parsed X-Suu-Trace headers.
	traced  [nLoadSources]uint64
	stageUS [nLoadSources][trace.NumStages]int64
	totalUS [nLoadSources]int64
}

// observeTrace folds one parsed trace summary into the worker ledger.
func (ws *loadWorkerState) observeTrace(sum trace.Summary) {
	si := loadSourceIndex(sum.Source)
	if si < 0 {
		return
	}
	ws.traced[si]++
	ws.totalUS[si] += sum.TotalUS
	for st := 0; st < trace.NumStages; st++ {
		ws.stageUS[si][st] += sum.DurUS[st]
	}
}

// rotationOf picks the preferred-replica rotation for one arrival. Every
// block of n consecutive arrivals covers each replica exactly once (the
// even spread fleet warmth comparisons rely on), but the block's phase is
// a SplitMix64 hash of the block number, so the choice is decorrelated
// from any periodic body sequence. Deriving the rotation from the body
// index (the old behavior) pinned each spec to one replica whenever the
// body count was a multiple of the replica count — round-robin over 8
// specs against 2 replicas sent every even spec to replica 0, silently
// doubling the apparent per-replica cache hit rate.
func rotationOf(arrival uint64, seed int64, n int) int {
	if n <= 1 {
		return 0
	}
	x := arrival/uint64(n) + uint64(seed)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int((arrival + x) % uint64(n))
}

// RunLoad drives the configured load and reports. The context cancels the
// run early (in-flight requests still drain).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	bases := make([]string, 0, 1+len(cfg.BaseURLs))
	if cfg.BaseURL != "" {
		bases = append(bases, cfg.BaseURL)
	}
	bases = append(bases, cfg.BaseURLs...)
	if len(bases) == 0 {
		return nil, fmt.Errorf("service: load needs a base URL")
	}
	var replay *traffic.Trace
	if cfg.ReplayPath != "" {
		if cfg.RecordPath == cfg.ReplayPath {
			return nil, fmt.Errorf("service: record and replay cannot share a path")
		}
		tr, err := traffic.OpenTrace(cfg.ReplayPath)
		if err != nil {
			return nil, err
		}
		if len(tr.Requests) == 0 {
			return nil, fmt.Errorf("service: replay trace %s has no requests", cfg.ReplayPath)
		}
		if cfg.ReplaySpeed == 0 {
			cfg.ReplaySpeed = 1
		}
		if !(cfg.ReplaySpeed > 0) || math.IsInf(cfg.ReplaySpeed, 1) {
			return nil, fmt.Errorf("service: replay speed %g (want finite > 0)", cfg.ReplaySpeed)
		}
		// The recording's header rebuilds the exact bodies the trace
		// indexes into; the caller's shape flags do not apply. Duration
		// becomes the recording's own issuing window, scaled — the
		// caller's context still cancels a replay early.
		h := tr.Header
		cfg.Mode, cfg.Arrival, cfg.Curve, cfg.Popularity = "open", "replay", "", ""
		cfg.Op, cfg.Specs, cfg.Seed = h.Op, h.Specs, h.Seed
		cfg.BatchSize, cfg.BatchDist, cfg.Rate, cfg.ItemRate = h.BatchSize, h.BatchDist, 0, 0
		cfg.Duration = time.Duration(float64(tr.Duration())/cfg.ReplaySpeed) + time.Second
		replay = tr
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("service: load needs at least one instance spec")
	}
	if cfg.Mode == "" {
		cfg.Mode = "open"
	}
	if cfg.Mode != "open" && cfg.Mode != "closed" {
		return nil, fmt.Errorf("service: load mode %q (want open or closed)", cfg.Mode)
	}
	if replay == nil {
		if cfg.Arrival == "" {
			cfg.Arrival = "poisson"
		}
		if cfg.Arrival != "poisson" && cfg.Arrival != "fixed" {
			return nil, fmt.Errorf("service: arrival %q (want poisson or fixed)", cfg.Arrival)
		}
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Op == "" {
		cfg.Op = "plan"
	}
	if cfg.Op != "plan" && cfg.Op != "estimate" && cfg.Op != "plan-batch" {
		return nil, fmt.Errorf("service: op %q (want plan, estimate, or plan-batch)", cfg.Op)
	}
	if cfg.Op == "plan-batch" {
		if cfg.BatchSize <= 0 {
			cfg.BatchSize = 8
		}
		if cfg.BatchDist == "" {
			cfg.BatchDist = "fixed"
		}
		if cfg.BatchDist != "fixed" && cfg.BatchDist != "uniform" {
			return nil, fmt.Errorf("service: batch dist %q (want fixed or uniform)", cfg.BatchDist)
		}
		if cfg.ItemRate > 0 {
			if cfg.Mode != "open" {
				return nil, fmt.Errorf("service: item-rate pacing needs open mode")
			}
			// Offer items, not requests: both distributions have mean
			// BatchSize, so this hits the configured item rate in
			// expectation.
			cfg.Rate = cfg.ItemRate / float64(cfg.BatchSize)
		}
	} else if cfg.BatchSize > 0 || cfg.BatchDist != "" || cfg.ItemRate > 0 {
		return nil, fmt.Errorf("service: batch options need op plan-batch, got %q", cfg.Op)
	}
	// The rate curve subsumes the old "open mode needs rate > 0" check:
	// the default curve is constant at cfg.Rate and ParseCurve rejects a
	// nonpositive rate. A constant spelled as "constant:<rps>" overrides
	// cfg.Rate so the offered-rate report stays truthful.
	var curve traffic.RateCurve
	if replay == nil {
		switch {
		case cfg.Mode == "open":
			c, err := traffic.ParseCurve(cfg.Curve, cfg.Rate)
			if err != nil {
				return nil, err
			}
			if cv, ok := c.(traffic.Constant); ok {
				cfg.Rate = cv.RPS
			} else if cfg.ItemRate > 0 {
				return nil, fmt.Errorf("service: item-rate pacing needs a constant curve, got %q", cfg.Curve)
			}
			curve = c
		case cfg.Curve != "" && cfg.Curve != "constant":
			return nil, fmt.Errorf("service: rate curve %q needs open mode", cfg.Curve)
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}

	// Pre-generate and pre-marshal every request body: the harness must
	// not spend its issuing budget on instance generation or JSON
	// encoding, or measured latency drifts with client cost.
	instances := make([]*PlanRequest, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		ins, err := workload.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("service: generating spec %d: %w", i, err)
		}
		instances[i] = &PlanRequest{Instance: ins}
	}
	var path string
	var bodies [][]byte
	var bodyItems []uint64 // items per body, parallel to bodies
	{
		var err error
		switch cfg.Op {
		case "plan":
			path = "/v1/plan"
			bodies = make([][]byte, len(instances))
			for i, req := range instances {
				if bodies[i], err = json.Marshal(req); err != nil {
					return nil, fmt.Errorf("service: marshaling spec %d: %w", i, err)
				}
			}
		case "estimate":
			path = "/v1/estimate"
			bodies = make([][]byte, len(instances))
			for i, req := range instances {
				er := &EstimateRequest{Instance: req.Instance, Trials: cfg.Trials, Seed: 1}
				if bodies[i], err = json.Marshal(er); err != nil {
					return nil, fmt.Errorf("service: marshaling spec %d: %w", i, err)
				}
			}
		case "plan-batch":
			// A pool of pre-built batches: sizes drawn from the configured
			// distribution, items cycling the specs round-robin across
			// bodies so every spec appears regardless of batch boundaries.
			path = "/v1/plan/batch"
			nBodies := 4 * len(instances)
			if nBodies < 32 {
				nBodies = 32
			}
			bodies = make([][]byte, nBodies)
			bodyItems = make([]uint64, nBodies)
			sizeSrc := rng.New(cfg.Seed + 0xba7c)
			next := 0
			lastSize := 0
			for b := range bodies {
				size := cfg.BatchSize
				if cfg.BatchDist == "uniform" {
					// Antithetic pairs: body 2k draws uniform[1, 2B−1],
					// body 2k+1 takes its mirror 2B−draw, so the pool's
					// mean size is exactly BatchSize and the reported
					// offered item rate (request rate × BatchSize) is the
					// rate actually offered, not off by the pool's
					// sampling error. nBodies is even (a multiple of 4).
					if b%2 == 0 {
						size = 1 + int(sizeSrc.Uint64()%uint64(2*cfg.BatchSize-1))
						lastSize = size
					} else {
						size = 2*cfg.BatchSize - lastSize
					}
				}
				items := make([]PlanRequest, size)
				for k := range items {
					items[k] = *instances[next%len(instances)]
					next++
				}
				if bodies[b], err = json.Marshal(&BatchPlanRequest{Items: items}); err != nil {
					return nil, fmt.Errorf("service: marshaling batch body %d: %w", b, err)
				}
				bodyItems[b] = uint64(size)
			}
		}
	}
	// Popularity draws over the pre-built body pool (for plan-batch, over
	// batches rather than specs — the batch bodies already cycle every
	// spec). Replay has no distribution to draw: the trace is the draw.
	var pop traffic.Popularity
	if replay == nil {
		p, err := traffic.ParsePopularity(cfg.Popularity, len(bodies), cfg.Seed+0x909)
		if err != nil {
			return nil, err
		}
		pop = p
	}
	var recorder *traffic.Recorder
	if cfg.RecordPath != "" {
		hdr := traffic.Header{
			Op:          cfg.Op,
			Specs:       cfg.Specs,
			BatchSize:   cfg.BatchSize,
			BatchDist:   cfg.BatchDist,
			Seed:        cfg.Seed,
			StartUnixNS: time.Now().UnixNano(),
		}
		switch {
		case replay != nil:
			// Label a re-recorded replay by its provenance; the schedule
			// in the records is what a future replay uses, so the curve
			// string is documentation, not configuration.
			hdr.Curve = fmt.Sprintf("replay:%gx:%s", cfg.ReplaySpeed, replay.Header.Curve)
			hdr.Popularity = replay.Header.Popularity
		case curve != nil:
			hdr.Curve = curve.String()
			hdr.Popularity = pop.String()
		default:
			hdr.Popularity = pop.String()
		}
		rec, err := traffic.Create(cfg.RecordPath, hdr)
		if err != nil {
			return nil, err
		}
		recorder = rec
	}
	// Fleet mode pre-builds every rotation of the replica URL list:
	// each arrival prefers one replica (see rotationOf) but hands the
	// retrying client the whole ring, so failover costs an attempt, not an
	// error. Precomputing keeps the per-arrival hot path allocation-free.
	urls := make([]string, len(bases))
	for i, b := range bases {
		urls[i] = b + path
	}
	rotations := make([][]string, len(urls))
	for r := range rotations {
		rot := make([]string, len(urls))
		for i := range urls {
			rot[i] = urls[(r+i)%len(urls)]
		}
		rotations[r] = rot
	}

	transport := &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}
	// FetchMetrics and other plain GETs share the pooled transport.
	plainClient := &http.Client{Timeout: cfg.Timeout, Transport: transport}
	suu := client.New(client.Config{
		MaxAttempts:    cfg.MaxAttempts,
		AttemptTimeout: cfg.Timeout,
		Seed:           cfg.Seed + 0xc11e,
		Transport:      transport,
	})

	var issued, done, errs, rejected, dropped atomic.Uint64
	var itemsIssued, itemsDone, itemsErr, bytesRead atomic.Uint64
	var degraded, itemsDegraded, injectedErrs, organic5xx atomic.Uint64
	workers := make([]loadWorkerState, cfg.Concurrency)
	for i := range workers {
		workers[i].hist = stats.NewLatencyHistogram()
	}

	batchOp := cfg.Op == "plan-batch"
	// rel is the arrival's scheduled offset from run start — computed by
	// the dispatcher, not measured in the worker, so the recorded
	// schedule is strictly ordered and free of dispatch jitter: a replay
	// of a recording re-issues the exact same sequence.
	issue := func(ws *loadWorkerState, arrival uint64, idx int, rel time.Duration) {
		items := uint64(1)
		if batchOp {
			items = bodyItems[idx]
		}
		itemsIssued.Add(items)
		start := time.Now()
		res, err := suu.DoAny(ctx, rotations[rotationOf(arrival, cfg.Seed, len(rotations))], bodies[idx])
		latD := time.Since(start)
		lat := latD.Seconds()
		outcome, source := "ok", ""
		if recorder != nil {
			defer func() {
				recorder.Append(&traffic.Request{
					Rel:     rel,
					Latency: latD,
					Op:      cfg.Op,
					Outcome: outcome,
					Source:  source,
					Spec:    uint32(idx),
					Items:   uint32(items),
				})
			}()
		}
		if err != nil {
			// No response at all: every attempt died on the wire (or the
			// breaker was open). The client's own ledger has the split.
			errs.Add(1)
			itemsErr.Add(items)
			outcome = "error"
			return
		}
		bytesRead.Add(uint64(len(res.Body)))
		if res.Status != http.StatusOK {
			errs.Add(1)
			itemsErr.Add(items) // a failed request delivered none of its items
			outcome = "error"
			switch {
			case res.Status == http.StatusTooManyRequests:
				rejected.Add(1)
				outcome = "rejected"
			case res.Status >= 500:
				// Ledger injected separately from organic, on the
				// X-Suu-Injected header alone: injected faults must
				// announce themselves in-band, and matching on body text
				// misfiled any organic failure whose message happened to
				// contain the word "injected".
				if res.Injected {
					injectedErrs.Add(1)
				} else {
					organic5xx.Add(1)
				}
			}
			return
		}
		if res.Trace != "" {
			if sum, ok := trace.ParseHeader(res.Trace); ok {
				source = sum.Source
				ws.observeTrace(sum)
			}
		}
		if batchOp {
			// Split the batch's items by the per-item statuses the
			// envelope summarizes; ok + errors = size, so the item ledger
			// reconciles exactly like the request ledger.
			var sum struct {
				OK       uint64 `json:"ok"`
				Errors   uint64 `json:"errors"`
				Degraded uint64 `json:"degraded"`
			}
			if derr := json.Unmarshal(res.Body, &sum); derr != nil {
				errs.Add(1)
				itemsErr.Add(items)
				outcome = "error"
				return
			}
			itemsDone.Add(sum.OK)
			itemsErr.Add(sum.Errors)
			if sum.Degraded > 0 {
				degraded.Add(1)
				itemsDegraded.Add(sum.Degraded)
			}
		} else {
			itemsDone.Add(1)
			if cfg.Op == "plan" {
				var pr struct {
					Degraded bool `json:"degraded"`
				}
				if json.Unmarshal(res.Body, &pr) == nil && pr.Degraded {
					degraded.Add(1)
					itemsDegraded.Add(1)
				}
			}
		}
		ws.hist.Observe(lat)
		done.Add(1)
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var issuingS float64
	startWall := time.Now()

	if cfg.Mode == "closed" {
		var wg sync.WaitGroup
		var arrivals atomic.Uint64
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := &workers[w]
				for runCtx.Err() == nil {
					a := arrivals.Add(1) - 1
					issued.Add(1)
					issue(ws, a, pop.Next(), time.Since(startWall))
				}
			}(w)
		}
		<-runCtx.Done()
		issuingS = time.Since(startWall).Seconds()
		wg.Wait()
	} else {
		// Open loop: a dispatcher paces arrivals from the configured
		// process; each arrival grabs a free worker slot or is dropped.
		slots := make(chan int, cfg.Concurrency)
		for w := 0; w < cfg.Concurrency; w++ {
			slots <- w
		}
		src := rng.New(cfg.Seed + 0x10ad)
		units := func() float64 {
			if cfg.Arrival == "fixed" {
				return 1
			}
			// Exp(1) draw via inverse CDF; the SplitMix draw is uniform
			// in [0,1). Pushed through the curve's cumulative rate this
			// is the time-change construction of an inhomogeneous
			// Poisson process.
			u := float64(src.Uint64()>>11) / (1 << 53)
			return -math.Log(1 - u)
		}
		// Arrivals follow an absolute-deadline schedule (fire arrival a
		// at start + curve⁻¹(Σ units), or at its recorded offset for
		// replay), not timer-chaining: resetting a timer after each fire
		// would add per-arrival dispatch latency to every gap and
		// systematically under-offer the configured shape. A late wakeup
		// fires immediately and catches up.
		var wg sync.WaitGroup
		virtual := time.Duration(0)
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	dispatch:
		for a := uint64(0); ; a++ {
			var idx int
			var rel time.Duration
			if replay != nil {
				if a >= uint64(len(replay.Requests)) {
					break dispatch
				}
				r := &replay.Requests[a]
				if int(r.Spec) >= len(bodies) {
					// A record pointing outside the body pool its own
					// header defines: corrupt or hand-edited. Skip it —
					// it was never issuable.
					dropped.Add(1)
					continue
				}
				idx = int(r.Spec)
				rel = time.Duration(float64(r.Rel) / cfg.ReplaySpeed)
			} else {
				virtual = curve.Advance(virtual, units())
				idx = pop.Next()
				rel = virtual
			}
			wait := time.Until(startWall.Add(rel))
			if wait < 0 {
				wait = 0
			}
			timer.Reset(wait)
			select {
			case <-runCtx.Done():
				break dispatch
			case <-timer.C:
				select {
				case w := <-slots:
					// Count issued only once a slot is held: dropped
					// arrivals never reach the server, and keeping them
					// out of issued lets Issued = Done + Errors reconcile
					// after the drain.
					issued.Add(1)
					wg.Add(1)
					go func(w int, a uint64, idx int, rel time.Duration) {
						defer wg.Done()
						issue(&workers[w], a, idx, rel)
						slots <- w
					}(w, a, idx, rel)
				default:
					dropped.Add(1)
				}
			}
		}
		issuingS = time.Since(startWall).Seconds()
		wg.Wait()
	}
	totalS := time.Since(startWall).Seconds()

	merged := stats.NewLatencyHistogram()
	var traced [nLoadSources]uint64
	var stageUS [nLoadSources][trace.NumStages]int64
	var totalUS [nLoadSources]int64
	for i := range workers {
		if err := merged.Merge(workers[i].hist); err != nil {
			return nil, err
		}
		for si := range loadSources {
			traced[si] += workers[i].traced[si]
			totalUS[si] += workers[i].totalUS[si]
			for st := 0; st < trace.NumStages; st++ {
				stageUS[si][st] += workers[i].stageUS[si][st]
			}
		}
	}
	cm := suu.Snapshot()
	rep := &LoadReport{
		Mode:                cfg.Mode,
		Op:                  cfg.Op,
		DurationS:           issuingS,
		DrainS:              totalS - issuingS,
		Issued:              issued.Load(),
		Done:                done.Load(),
		Errors:              errs.Load(),
		Rejected:            rejected.Load(),
		Dropped:             dropped.Load(),
		ItemsIssued:         itemsIssued.Load(),
		ItemsDone:           itemsDone.Load(),
		ItemsErrors:         itemsErr.Load(),
		Degraded:            degraded.Load(),
		ItemsDegraded:       itemsDegraded.Load(),
		InjectedErrors:      injectedErrs.Load(),
		OrganicServerErrors: organic5xx.Load(),
		Retries:             cm.Retries,
		ConnErrors:          cm.ConnErrors,
		BreakerOpens:        cm.BreakerOpens,
		Throughput:          float64(done.Load()) / issuingS,
		ItemThroughput:      float64(itemsDone.Load()) / issuingS,
		BytesRead:           bytesRead.Load(),
		BytesPerSec:         float64(bytesRead.Load()) / issuingS,
		Latencies:           merged,
	}
	if recorder != nil {
		recs, recErrs := recorder.Stats()
		if err := recorder.Close(); err != nil {
			recErrs++
		}
		rep.Recorded = recs
		rep.RecordErrors = recErrs
	}
	if batchOp {
		rep.BatchSize = cfg.BatchSize
		rep.BatchDist = cfg.BatchDist
	}
	if cfg.Mode == "open" {
		rep.Arrival = cfg.Arrival
		if replay != nil {
			rep.ReplaySpeed = cfg.ReplaySpeed
			rep.Curve = replay.Header.Curve
			rep.Popularity = replay.Header.Popularity
			if issuingS > 0 {
				// A replay's offered rate is whatever the recording
				// offered, scaled: measured, not configured.
				rep.OfferedRate = float64(issued.Load()+dropped.Load()) / issuingS
			}
		} else {
			rep.Curve = curve.String()
			rep.Popularity = pop.String()
			// The mean of r(t) over the window, so shaped curves report
			// the rate they actually offered instead of a flag value.
			rep.OfferedRate = traffic.Integral(curve, cfg.Duration) / cfg.Duration.Seconds()
		}
		rep.OfferedItemRate = rep.OfferedRate
		if batchOp {
			rep.OfferedItemRate = rep.OfferedRate * float64(cfg.BatchSize)
		}
	} else {
		rep.Popularity = pop.String()
	}
	for si, src := range loadSources {
		if traced[si] == 0 {
			continue
		}
		rep.TracedResponses += traced[si]
		if rep.TracedBySource == nil {
			rep.TracedBySource = make(map[string]uint64)
			rep.ServerStageSeconds = make(map[string]map[string]float64)
			rep.ServerTotalSeconds = make(map[string]float64)
		}
		rep.TracedBySource[src] = traced[si]
		rep.ServerTotalSeconds[src] = float64(totalUS[si]) / 1e6
		stages := make(map[string]float64)
		for st := 0; st < trace.NumStages; st++ {
			if stageUS[si][st] > 0 {
				stages[trace.Stage(st).String()] = float64(stageUS[si][st]) / 1e6
			}
		}
		rep.ServerStageSeconds[src] = stages
	}
	if merged.N() > 0 {
		rep.LatMean = merged.Mean()
		rep.LatP50 = merged.Quantile(0.50)
		rep.LatP95 = merged.Quantile(0.95)
		rep.LatP99 = merged.Quantile(0.99)
		rep.LatMax = merged.Max()
	}
	// Best-effort server-side view (hit rate, in-flight peaks) to pair
	// with the client-side latencies. ServerMetrics stays the first
	// replica's snapshot so single-replica consumers read the same field
	// they always did; fleet mode adds the per-replica list and the
	// fleet-wide aggregates on top.
	if snap, err := FetchMetrics(ctx, plainClient, bases[0]); err == nil {
		rep.ServerMetrics = snap
	}
	if vi, err := FetchVersion(ctx, plainClient, bases[0]); err == nil {
		rep.ServerVersion = vi
	}
	if len(bases) > 1 {
		rep.Fleet = make([]*MetricsSnapshot, len(bases))
		var lookups, notComputed uint64
		for i, b := range bases {
			snap, err := FetchMetrics(ctx, plainClient, b)
			if err != nil {
				continue // replica down (maybe on purpose); nil marks it
			}
			rep.Fleet[i] = snap
			lookups += snap.CacheHits + snap.CacheMisses
			notComputed += snap.CacheHits + snap.Coalesced + snap.StoreDiskHits + snap.StorePeerHits
			rep.FleetStoreHits += snap.StoreDiskHits + snap.StorePeerHits
			rep.FleetPlansComputed += snap.PlansComputed
		}
		if lookups > 0 {
			rep.FleetHitRate = float64(notComputed) / float64(lookups)
		}
	}
	return rep, nil
}

// FetchVersion GETs and decodes /version.
func FetchVersion(ctx context.Context, client *http.Client, baseURL string) (*VersionInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/version", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: /version status %d", resp.StatusCode)
	}
	var vi VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&vi); err != nil {
		return nil, err
	}
	return &vi, nil
}

// FetchMetrics GETs and decodes /metrics.
func FetchMetrics(ctx context.Context, client *http.Client, baseURL string) (*MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: /metrics status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
