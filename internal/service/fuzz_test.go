package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzPlanRequestDecode throws arbitrary bytes at the real /v1/plan and
// /v1/plan/batch handlers: the server must never panic (a panic in a
// detached computation would escape net/http's per-connection recover) and
// must never 5xx — every rejection is a typed 4xx carrying a JSON error
// body, and every acceptance a 200. The body cap is lowered so mutated
// inputs cannot grow instances past what a fuzz exec should solve; the
// committed corpus under testdata/fuzz is generated from internal/scenario
// (go run ./internal/scenario/gencorpus).
func FuzzPlanRequestDecode(f *testing.F) {
	f.Add([]byte(`{"instance":{"m":2,"n":2,"q":[[0.5,0],[1,0.25]]}}`))
	f.Add([]byte(`{"instance":{"m":1,"n":1,"q":[[2.5]]}}`))
	f.Add([]byte(`{"items":[{"instance":{"m":1,"n":1,"q":[[0.5]]}},{}]}`))
	f.Add([]byte(`{"instance":{"m":1,"n":1,"q":[[0.5]]},"target":1e999}`))
	f.Add([]byte(`not json at all`))

	p := smallPlanner(func(c *Config) { c.Workers = 2; c.QueueDepth = 64; c.CacheCap = 256 })
	srv := NewServer(p)
	srv.maxBody = 64 << 10

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, path := range []string{"/v1/plan", "/v1/plan/batch"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
			case http.StatusBadRequest, http.StatusRequestTimeout,
				http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
				var eb errorBody
				if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
					t.Fatalf("%s: %d without a JSON error body: %q (input %q)", path, rec.Code, rec.Body.Bytes(), data)
				}
			default:
				t.Fatalf("%s: untyped status %d: %q (input %q)", path, rec.Code, rec.Body.Bytes(), data)
			}
		}
	})
}
