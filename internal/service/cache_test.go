package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sched"
)

func fpOf(i int) sched.Fingerprint {
	return sched.Fingerprint{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i) + 1}
}

func planKeyN(i int) requestKey {
	return requestKey{fp: fpOf(i), kind: kindPlan, target: 0.5}
}

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(4, 1) // one shard, cap 4: eviction order fully observable
	for i := 0; i < 4; i++ {
		c.put(planKeyN(i), i)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Touch 0 so 1 becomes LRU, then overflow.
	if v, ok := c.get(planKeyN(0)); !ok || v.(int) != 0 {
		t.Fatal("lost entry 0")
	}
	c.put(planKeyN(4), 4)
	if c.Len() != 4 {
		t.Fatalf("Len after eviction = %d", c.Len())
	}
	if _, ok := c.get(planKeyN(1)); ok {
		t.Fatal("entry 1 should have been the LRU victim")
	}
	for _, want := range []int{0, 2, 3, 4} {
		if v, ok := c.get(planKeyN(want)); !ok || v.(int) != want {
			t.Fatalf("entry %d missing after eviction", want)
		}
	}
	// Refreshing an existing key replaces the value without growing.
	c.put(planKeyN(4), 44)
	if v, _ := c.get(planKeyN(4)); v.(int) != 44 {
		t.Fatal("put did not refresh existing entry")
	}
	if c.Len() != 4 {
		t.Fatalf("Len after refresh = %d", c.Len())
	}
}

func TestPlanCacheDistinguishesParams(t *testing.T) {
	c := newPlanCache(64, 4)
	fp := fpOf(7)
	keys := []requestKey{
		{fp: fp, kind: kindPlan, target: 0.5},
		{fp: fp, kind: kindPlan, target: 1},
		{fp: fp, kind: kindEstimate, policy: "sem", trials: 100, seed: 1},
		{fp: fp, kind: kindEstimate, policy: "sem", trials: 100, seed: 2},
		{fp: fp, kind: kindEstimate, policy: "sem", trials: 200, seed: 1},
		{fp: fp, kind: kindEstimate, policy: "obl", trials: 100, seed: 1},
	}
	for i, k := range keys {
		c.put(k, i)
	}
	for i, k := range keys {
		v, ok := c.get(k)
		if !ok || v.(int) != i {
			t.Fatalf("key %d aliased or lost (got %v, %v)", i, v, ok)
		}
	}
}

func TestPlanCacheHitMissCounters(t *testing.T) {
	c := newPlanCache(8, 2)
	c.put(planKeyN(1), 1)
	c.get(planKeyN(1))
	c.get(planKeyN(2))
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d", h, m)
	}
}

// TestPlanCacheConcurrentRefresh hammers ONE key with concurrent put
// refreshes and gets — the in-place e.val refresh path raced with get's
// read before the value was copied out under the shard lock.
func TestPlanCacheConcurrentRefresh(t *testing.T) {
	c := newPlanCache(4, 1)
	k := planKeyN(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if g%2 == 0 {
					c.put(k, i)
				} else if v, ok := c.get(k); ok {
					_ = v.(int) // a torn read would panic here under -race
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPlanCacheConcurrent hammers a small cache from many goroutines with
// overlapping keys; -race is the assertion, plus internal list sanity.
func TestPlanCacheConcurrent(t *testing.T) {
	c := newPlanCache(32, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := planKeyN(i % 100)
				if i%3 == 0 {
					c.put(k, fmt.Sprintf("g%d-%d", g, i))
				} else {
					c.get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 32+len(c.shards) {
		t.Fatalf("cache overflowed its cap: %d entries", n)
	}
	// Every shard's list length must agree with its map.
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		n := 0
		for e := s.head; e != nil; e = e.next {
			n++
		}
		if n != len(s.entries) {
			t.Errorf("shard %d: list %d entries, map %d", si, n, len(s.entries))
		}
		s.mu.Unlock()
	}
}
