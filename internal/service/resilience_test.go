package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/sched"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestBrownoutDegradesUnderPressure: past the pressure threshold an
// eligible plan request gets the LP-free fallback — marked degraded, no
// certificate, never cached — and once pressure clears the same request
// computes the real plan from scratch.
func TestBrownoutDegradesUnderPressure(t *testing.T) {
	p := smallPlanner(func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 4
		c.DegradedPolicy = DegradeIndependent
		c.BrownoutThreshold = 0.5
	})
	defer p.Close()
	req := testInstance(t, "uniform", 4, 8, 101)

	p.queued.Add(2) // pressure 2/4 = threshold
	resp, err := p.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("expected a degraded fallback under pressure")
	}
	if resp.TStar != 0 || resp.LowerBound != 0 {
		t.Errorf("degraded plan must carry no certificate, got tstar=%v lower=%v", resp.TStar, resp.LowerBound)
	}
	if resp.Length <= 0 || len(resp.Machines) != req.Instance.M {
		t.Errorf("degraded plan is not a schedule: length=%d machines=%d", resp.Length, len(resp.Machines))
	}
	key := requestKey{fp: sched.FingerprintInstance(req.Instance), kind: kindPlan, target: 0.5}
	if _, ok := p.cache.peek(key); ok {
		t.Error("degraded plan must never enter the response cache")
	}
	if got := p.Metrics().Degraded; got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	p.queued.Add(-2) // storm over
	full, err := p.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if full.Degraded || full.Cached || full.TStar <= 0 {
		t.Errorf("post-storm plan should be a fresh full computation, got %+v", full)
	}
}

// TestOverloadPolicyGates pins the admission-failure net: a full line
// rejects with 429 under DegradeNever, serves the fallback under
// DegradeIndependent — but only for independent instances; chains still
// reject because their fallback is not policy-eligible.
func TestOverloadPolicyGates(t *testing.T) {
	cases := []struct {
		name, policy, family string
		wantDegraded         bool
	}{
		{"reject-policy", DegradeNever, "uniform", false},
		{"independent-eligible", DegradeIndependent, "uniform", true},
		{"chains-not-eligible", DegradeIndependent, "chains", false},
		{"all-covers-chains", DegradeAll, "chains", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := smallPlanner(func(c *Config) {
				c.Workers = 1
				c.QueueDepth = 1
				c.DegradedPolicy = tc.policy
			})
			p.slots <- struct{}{} // the only worker is busy
			p.queued.Add(1)       // and the line is full
			req := testInstance(t, tc.family, 4, 8, 7)
			resp, err := p.Plan(context.Background(), req)
			if tc.wantDegraded {
				if err != nil {
					t.Fatalf("want a degraded fallback, got error %v", err)
				}
				if !resp.Degraded {
					t.Fatalf("want degraded, got %+v", resp)
				}
			} else {
				if !errors.Is(err, ErrOverloaded) {
					t.Fatalf("want ErrOverloaded, got resp=%v err=%v", resp, err)
				}
			}
			p.queued.Add(-1)
			<-p.slots
			p.Close()
		})
	}
}

// TestAdaptiveRetryAfter: the 429 hint is queued units × the EWMA-priced
// per-unit compute cost ÷ workers, clamped to [1s, 30s], and reaches the
// client via the Retry-After header.
func TestAdaptiveRetryAfter(t *testing.T) {
	p := smallPlanner(func(c *Config) { c.Workers = 1 })
	defer p.Close()
	if got := p.retryAfter(); got != time.Second {
		t.Fatalf("unpriced retryAfter = %v, want the 1s floor", got)
	}

	p.observeUnitCost(1, 2*time.Second) // seeds the EWMA at 2s/unit
	p.queued.Add(4)
	defer p.queued.Add(-4)
	if got := p.retryAfter(); got != 8*time.Second {
		t.Fatalf("retryAfter = %v, want 8s (4 units × 2s ÷ 1 worker)", got)
	}

	rec := httptest.NewRecorder()
	writeError(rec, p.overloaded())
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "8" {
		t.Errorf("Retry-After %q, want 8", got)
	}

	// A plain ErrOverloaded (no overloadError wrapper) keeps the old 1s.
	rec = httptest.NewRecorder()
	writeError(rec, ErrOverloaded)
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("plain-overload Retry-After %q, want 1", got)
	}

	// Heavy backlogs clamp at 30s, and /metrics surfaces the live hint.
	p.observeUnitCost(1, 100*time.Second)
	if got := p.retryAfter(); got != 30*time.Second {
		t.Errorf("retryAfter = %v, want the 30s clamp", got)
	}
	if got := p.Metrics().RetryAfterS; got != 30 {
		t.Errorf("metrics retry_after_hint_s = %v, want 30", got)
	}
}

// TestDeadlinePropagation: a plan whose client deadline expires while the
// pool is busy gets a 408, the stranded computation is abandoned at its
// slot-wait checkpoint, and the queue charge is refunded.
func TestDeadlinePropagation(t *testing.T) {
	ts, p := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueDepth = 8 })
	p.slots <- struct{}{} // the only worker stays busy for the whole test

	req := testInstance(t, "uniform", 4, 8, 55)
	req.DeadlineMS = 60
	resp, body := postJSON(t, ts, "/v1/plan", req)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d (%s), want 408", resp.StatusCode, body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for p.Metrics().Abandoned != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned = %d, want 1", p.Metrics().Abandoned)
		}
		time.Sleep(time.Millisecond)
	}
	if q := p.queued.Load(); q != 0 {
		t.Errorf("queued = %d after abandonment, want 0 (charge refunded)", q)
	}
	key := requestKey{fp: sched.FingerprintInstance(req.Instance), kind: kindPlan, target: 0.5}
	if _, ok := p.cache.peek(key); ok {
		t.Error("abandoned computation must not land in the cache")
	}
	<-p.slots
	p.Close()
}

// TestRetriesObserved: the server meters X-Suu-Attempt ≥ 2 as a retry;
// first attempts do not count.
func TestRetriesObserved(t *testing.T) {
	ts, p := newTestServer(t, nil)
	req := testInstance(t, "uniform", 4, 8, 3)
	for _, attempt := range []int{1, 2, 3} {
		hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", strings.NewReader(mustJSON(t, req)))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Suu-Attempt", strconv.Itoa(attempt))
		resp, err := ts.Client().Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := p.Metrics().RetriesSeen; got != 2 {
		t.Errorf("retries_observed = %d, want 2 (attempts 2 and 3)", got)
	}
}

// TestReadyzLifecycle: /readyz is 503 until Warmup, 200 while serving,
// and 503 again once drain begins — while /healthz stays 200 (liveness).
func TestReadyzLifecycle(t *testing.T) {
	ts, p := newTestServer(t, nil)
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Status string `json:"status"`
		}
		_ = jsonDecode(resp, &body)
		return resp.StatusCode, body.Status
	}

	if code, status := get("/readyz"); code != http.StatusServiceUnavailable || status != "not-ready" {
		t.Fatalf("pre-warmup readyz = %d %q, want 503 not-ready", code, status)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("pre-warmup healthz should be 200 (alive), got %d", code)
	}
	if err := p.Warmup(); err != nil {
		t.Fatal(err)
	}
	if code, status := get("/readyz"); code != http.StatusOK || status != "ready" {
		t.Fatalf("post-warmup readyz = %d %q, want 200 ready", code, status)
	}
	p.BeginDrain()
	if code, status := get("/readyz"); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("draining readyz = %d %q, want 503 draining", code, status)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz must stay 200 during drain (BeginDrain refuses nothing), got %d", code)
	}
	// BeginDrain flips routing, not serving: requests still complete.
	if resp, body := postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 4, 8, 9)); resp.StatusCode != http.StatusOK {
		t.Errorf("plan during drain = %d (%s), want 200", resp.StatusCode, body)
	}
	p.Close()
}

// TestUnsolvableMapsTo422: the typed LP bailout is a semantic rejection of
// the instance, not a server bug.
func TestUnsolvableMapsTo422(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, fmt.Errorf("computing plan: %w", lp.ErrUnsolvable))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unsolvable") {
		t.Errorf("body should name the cause, got %s", rec.Body.String())
	}
}

// TestBatchBrownoutDegraded: under pressure a batch's eligible miss groups
// take the fallback — tagged per item, counted in the envelope and in
// /metrics, where the five-way item ledger still reconciles.
func TestBatchBrownoutDegraded(t *testing.T) {
	p := smallPlanner(func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 4
		c.DegradedPolicy = DegradeIndependent
		c.BrownoutThreshold = 0.5
	})
	defer p.Close()
	a := testInstance(t, "uniform", 4, 8, 201)
	b := testInstance(t, "uniform", 4, 8, 202)

	p.queued.Add(2)
	resp, err := p.PlanBatch(context.Background(), &BatchPlanRequest{
		Items: []PlanRequest{*a, *a, *b},
	})
	p.queued.Add(-2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded != 3 || resp.OK != 3 || resp.Errors != 0 {
		t.Fatalf("envelope degraded=%d ok=%d errors=%d, want 3/3/0", resp.Degraded, resp.OK, resp.Errors)
	}
	if resp.CostUnits != 0 {
		t.Errorf("degraded fallbacks are free, cost_units = %d", resp.CostUnits)
	}
	for i, item := range resp.Items {
		if item.Source != sourceDegraded || !item.Plan.Degraded {
			t.Errorf("item %d: source=%q degraded=%v, want degraded fallback", i, item.Source, item.Plan.Degraded)
		}
	}
	snap := p.Metrics()
	if snap.BatchDegraded != 3 {
		t.Errorf("batch_items_degraded = %d, want 3", snap.BatchDegraded)
	}
	if sum := snap.BatchCached + snap.BatchComputed + snap.BatchShared + snap.BatchDegraded + snap.BatchErrors; sum != snap.BatchItems {
		t.Errorf("batch item ledger does not reconcile: %d buckets vs %d items", sum, snap.BatchItems)
	}
}

// TestShutdownUnderFire is the drain torture test: a chaos ComputeHook
// errors and panics through a burst of concurrent cold requests, every
// accepted request still reaches a terminal response, drain refuses
// stragglers with 503, the flight table empties, and no goroutines leak.
func TestShutdownUnderFire(t *testing.T) {
	var hookCalls atomic.Uint64
	p := NewPlanner(Config{
		Workers: 2, QueueDepth: 64, CacheCap: 64, CacheShards: 2,
		ComputeHook: func() error {
			switch n := hookCalls.Add(1); {
			case n%5 == 0:
				panic("injected chaos panic")
			case n%3 == 0:
				return errors.New("injected chaos error")
			}
			return nil
		},
	})
	ts := httptest.NewServer(NewServer(p))
	before := runtime.NumGoroutine()

	const requests = 40
	statuses := make([]int, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		req := testInstance(t, "uniform", 4, 8, 1000+int64(i)) // all cold, all distinct
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts, "/v1/plan", req)
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var ok, failed int
	for i, code := range statuses {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusInternalServerError:
			failed++ // hook error or recovered panic, isolated to its callers
		default:
			t.Errorf("request %d: status %d, want 200 or 500", i, code)
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("burst should see both outcomes under chaos: ok=%d failed=%d", ok, failed)
	}

	ts.Close()
	p.Close()
	if _, err := p.Plan(context.Background(), testInstance(t, "uniform", 4, 8, 9999)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-close plan: err = %v, want ErrShuttingDown", err)
	}
	p.flight.mu.Lock()
	inFlight := len(p.flight.m)
	p.flight.mu.Unlock()
	if inFlight != 0 {
		t.Errorf("flight table holds %d entries after Close, want 0", inFlight)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before the burst, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
