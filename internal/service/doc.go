// Package service turns the SUU library into a concurrent planning
// service: the request/response half of cmd/suud.
//
// The pieces, in request order:
//
//   - Planner accepts plan requests (LP-rounded oblivious schedules) and
//     estimate requests (Monte Carlo makespan distributions) and runs them
//     on a bounded worker pool. Each computation borrows a
//     rounding.Workspace from a shared pool, so the LP engine's
//     zero-allocation steady state — built for Monte Carlo workers —
//     carries over to request serving unchanged.
//   - Admission control sits in front of the pool: at most QueueDepth
//     requests may be queued or running; request QueueDepth+1 is rejected
//     immediately with ErrOverloaded (HTTP 429) instead of building an
//     unbounded goroutine backlog. Load shedding this early keeps p99
//     bounded when the offered load exceeds capacity — the property the
//     suuload open-loop harness exists to measure.
//   - Duplicate in-flight requests coalesce: requests are content-addressed
//     by sched.Fingerprint (a canonical 128-bit hash of (m, n, q, prec)),
//     and a singleflight group keyed by (fingerprint, kind, params) lets
//     one computation serve every concurrent caller asking the same
//     question.
//   - Finished responses land in a sharded, bounded LRU cache under the
//     same content-addressed keys, so repeated instances — the common case
//     for a planner fronting a fleet of similar workloads — are served
//     from memory. Shards each carry their own lock; the cache is exercised
//     under -race by the package tests.
//   - Batches amortize the HTTP and JSON overhead: /v1/plan/batch
//     (Planner.PlanBatch) takes a list of plan items per request and
//     resolves each independently — cache hits immediately, duplicates
//     deduped within the batch by fingerprint before any flight
//     registration, the rest fanned across the same worker pool and
//     coalesced against in-flight singles and other batches. Items fail
//     individually (validation, per-item cost budget, compute errors, a
//     missed DeadlineMS in partial-results mode), never the batch; item
//     payloads are the canonical cached values, with the serving source
//     ("cached"/"computed"/"coalesced") in the per-item envelope. Batch
//     admission is the first cut of cost-model backpressure: each
//     to-be-computed item charges ⌈n·m/1024⌉ units (1 unit = the n=64,
//     m=16 reference) against the same queue budget single requests count
//     against, so a batch of heavy instances sheds load like the many
//     requests it is.
//   - Metrics counts everything (hits, misses, coalesced, rejected,
//     in-flight, per-item batch outcomes, a batch-size distribution) and
//     records per-endpoint latency in stats.Histogram; Server exposes it
//     all as JSON on /metrics next to /healthz, /readyz, /v1/plan,
//     /v1/plan/batch, and /v1/estimate (which can stream NDJSON progress).
//     Within one /metrics document the batch item counters reconcile
//     exactly (items = cached + computed + coalesced + degraded + errors)
//     and cache_hit_rate ≤ 1 holds with per-item batch accounting folded
//     in.
//
// # Resilience
//
// Overload has two regimes. Below Config.BrownoutThreshold (a fraction of
// QueueDepth) the service rejects excess load with 429 and an adaptive
// Retry-After computed from live queue depth times a smoothed per-unit
// compute cost — the hint tracks how long the backlog actually takes to
// drain. Above the threshold, Config.DegradedPolicy may switch eligible
// requests to graceful degradation: instead of a 429 they receive a cheap
// LP-free greedy fallback plan (internal/baseline list scheduling) marked
// "degraded": true with no certificate (TStar and LowerBound zero).
// Degraded plans never enter the response cache and never register in the
// flight table — they are emergency output, not the canonical answer.
// DegradeIndependent limits fallbacks to independent-job instances, where
// greedy list scheduling is a principled approximation; DegradeAll extends
// them to precedence-constrained instances whose fallback ignores chain
// order (openly uncertified); DegradeNever keeps pure rejection.
//
// Requests may carry DeadlineMS, a client-side give-up hint. The deadline
// becomes a per-request context deadline, and the computation it admitted
// checks for abandonment at checkpoints (while queued for a worker slot,
// before an LP solve, between Monte Carlo chunks). A computation every
// waiter has abandoned stops early and refunds its queue charge — unless
// other callers coalesced onto it, in which case it runs to completion for
// them. A started LP solve always finishes and caches: solves are the
// expensive indivisible unit, so their work is never thrown away.
//
// Config.ComputeHook is the fault-injection seam: the planner calls it at
// every compute checkpoint, and internal/faults supplies hooks that stall,
// error, or panic at seeded-deterministic rates. Panics — injected or real
// — are isolated per computation and surface as errors to every waiter,
// never as a crashed process.
//
// Lifecycle: /readyz is distinct from /healthz. It reports 503 until
// Planner.Warmup() has pushed one tiny plan through the full stack, and
// flips back to 503 the moment BeginDrain() or Close() starts shutdown —
// before the listener closes — so load balancers stop routing while
// in-flight requests drain. Every accepted request reaches a terminal
// response during drain; Close waits for detached work.
//
// Responses handed out by the Planner are shared (cached and coalesced
// callers receive the same pointers); callers must treat them as
// immutable. The HTTP layer never mutates them — and, on hits, never
// re-serializes them either (see Wire format).
//
// # Wire format
//
// Every plan and estimate payload is served from a canonical frame: the
// compact (non-indented) json.Marshal encoding of the response struct
// with the serving flags (Cached, Coalesced) false, produced exactly once
// when the response is computed. The response LRU, the in-flight
// coalescing table, and the durable store all carry the frame next to the
// decoded struct (cachedFrame), so the same bytes flow through every
// tier:
//
//   - /v1/plan and /v1/estimate write the frame directly, splicing the
//     caller's serving flags over the constant-size "cached":false tail —
//     a cache or coalesced hit performs zero json.Marshal of the payload.
//   - /v1/plan/batch streams a hand-written envelope and copies each
//     item's pre-encoded frame verbatim; item payloads are byte-identical
//     to the canonical encoding regardless of how the item was resolved.
//   - The durable store persists the frame inside its envelope
//     (json.RawMessage, never re-marshaled), so a disk or peer hit
//     re-enters the zero-copy path with the exact bytes the original
//     computation produced.
//
// The contract this buys: payload bytes are byte-stable across the single
// endpoint, the batch endpoint, and store round-trips — byte-for-byte
// reproducible for a given instance and parameters — which makes
// responses content-addressable and proxy-cacheable. Single-plan and
// error responses carry an exact Content-Length (sized writes, no
// chunking); batch and streaming-estimate responses stream through pooled
// fixed-size buffers, so response memory cost is bounded by the buffer,
// not the batch. /metrics splits payload_bytes_served by
// encoded_cache/cold_encode, counts frames_spliced and cold_encodes, and
// distributes encode cost in the encode_ns histogram.
//
// The request side mirrors this: the HTTP handlers capture each request's
// instance as raw JSON and resolve it through a byte-keyed
// decoded-instance LRU (decodecache.go) — a repeated instance is decoded
// once, ever, with a byte-for-byte comparison guarding every hit, so the
// cache can only change performance, never results.
// instance_decode_hits / instance_decode_misses in /metrics ledger it.
//
// # Observability
//
// Every request the HTTP layer accepts can carry a trace context
// (internal/trace): a 128-bit ID plus per-stage duration/count
// aggregates for the pipeline stages — decode, queue, flight,
// store.mem, store.disk, store.peer, store.miss, solve, round, encode,
// degrade. Contexts are pooled and refcounted; with tracing disabled
// (Config.TraceSample == 0 and no ring/log), Tracer.Begin returns nil
// and every downstream call is a nil-check — the library default, and
// what keeps the zero-copy serving benchmarks at their committed
// allocation counts.
//
// The same trace data surfaces four ways, all views of one ledger:
//
//   - /metrics grows a "stages" map of per-stage latency summaries plus
//     trace counters (traced, sampled, forced, ring/slow kept, log
//     records/bytes). GET /metrics?format=prom renders the identical
//     snapshot as Prometheus text exposition (suu_ prefix, counters as
//     _total, latencies as summaries with quantile labels and _sum/_count,
//     stages as one suu_stage_seconds{stage="..."} family). Because stage
//     observation happens only for traced requests and inside the same
//     endpoint clock, the stage _sum lines (decode excepted — it is
//     measured in the handler, before the planner's clock starts)
//     reconcile against the endpoint latency _sum within one scrape.
//   - Sampled responses carry an X-Suu-Trace header: the trace ID, the
//     serving source (cached/computed/coalesced/degraded/batch), the
//     total, and each nonzero stage as <stage>=<µs>[x<count>]. The client
//     surfaces it as Result.Trace; suuload parses it
//     (trace.ParseHeader) into a per-source server-side attribution table
//     — where server time went, split by how the request was served.
//   - /debug/traces serves a ring of recent traces and a slowest-N list
//     (filterable by op and outcome), and Config.TraceLog appends every
//     kept trace to a CRC-framed binary log (trace.ReadLog decodes it,
//     tolerating torn tails) — the record half of record/replay.
//   - Requests between replicas propagate the ID: peer store fetches and
//     replication fan-out stamp X-Suu-Trace-Id, so a fleet-wide search
//     for one ID finds every hop it touched.
//
// Head sampling (Config.TraceSample) decides at Begin; errors, degraded
// responses, and entries into the slowest-N list are force-kept, so the
// traces most worth reading survive any sampling rate.
package service
