package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// tracedServer is newTestServer with always-on tracing: every request is
// sampled, the ring and slowest lists are enabled.
func tracedServer(t *testing.T, extra func(*Config)) (*httptest.Server, *Planner) {
	t.Helper()
	return newTestServer(t, func(cfg *Config) {
		cfg.TraceSample = 1
		cfg.TraceRing = 64
		cfg.TraceSlowN = 8
		if extra != nil {
			extra(cfg)
		}
	})
}

func getJSON(t *testing.T, ts *httptest.Server, path string, dst any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, dst); err != nil {
		t.Fatalf("GET %s: decoding %s: %v", path, body, err)
	}
}

// TestTraceHeaderAttribution pins the client-facing attribution contract:
// a sampled request's response carries X-Suu-Trace with the trace ID, the
// serving source, and per-stage timings; a repeat of the same request is
// attributed to the cache with no solve stage.
func TestTraceHeaderAttribution(t *testing.T) {
	ts, _ := tracedServer(t, nil)
	req := testInstance(t, "uniform", 4, 12, 311)

	resp, body := postJSON(t, ts, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	hdr := resp.Header.Get(trace.ResponseHeader)
	if hdr == "" {
		t.Fatal("sampled request carried no X-Suu-Trace header")
	}
	sum, ok := trace.ParseHeader(hdr)
	if !ok {
		t.Fatalf("unparseable header %q", hdr)
	}
	if len(sum.ID) != 32 || sum.ID == strings.Repeat("0", 32) {
		t.Fatalf("bad trace ID in %q", hdr)
	}
	if sum.Source != "computed" {
		t.Fatalf("first serve source %q, want computed (header %q)", sum.Source, hdr)
	}
	if sum.TotalUS <= 0 {
		t.Fatalf("non-positive total in %q", hdr)
	}
	for _, st := range []trace.Stage{trace.StageDecode, trace.StageSolve, trace.StageRound, trace.StageEncode} {
		if sum.Counts[st] == 0 {
			t.Errorf("computed plan missing stage %v in %q", st, hdr)
		}
	}

	resp2, _ := postJSON(t, ts, "/v1/plan", req)
	sum2, ok := trace.ParseHeader(resp2.Header.Get(trace.ResponseHeader))
	if !ok {
		t.Fatalf("unparseable header %q", resp2.Header.Get(trace.ResponseHeader))
	}
	if sum2.Source != "cached" {
		t.Fatalf("repeat serve source %q, want cached", sum2.Source)
	}
	if sum2.ID == sum.ID {
		t.Fatal("two requests shared one trace ID")
	}
	if sum2.Counts[trace.StageSolve] != 0 {
		t.Fatal("cache hit reported a solve stage")
	}
}

// TestTraceHeaderOnlyWhenKept pins the sampling gate: with sampling off
// (but the recorder on), a successful request gets no header — but a
// failing request is forced and still carries one.
func TestTraceHeaderOnlyWhenKept(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config) {
		cfg.TraceSample = 0
		cfg.TraceRing = 8
	})
	req := testInstance(t, "uniform", 4, 8, 99)
	resp, _ := postJSON(t, ts, "/v1/plan", req)
	if h := resp.Header.Get(trace.ResponseHeader); h != "" {
		t.Fatalf("unsampled success carried header %q", h)
	}
	// A malformed body fails decode: outcome=error forces the trace.
	r2, err := ts.Client().Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if h := r2.Header.Get(trace.ResponseHeader); h == "" {
		t.Fatal("failed request carried no forced trace header")
	}
}

// TestTraceStagesReconcile pins the attribution ledger inside one
// /metrics document: every stage recorded outside the HTTP handler
// (everything but decode) is covered by the endpoint latency sums,
// and the stage map names only canonical stages.
func TestTraceStagesReconcile(t *testing.T) {
	ts, p := tracedServer(t, nil)
	for seed := int64(0); seed < 4; seed++ {
		req := testInstance(t, "uniform", 4, 10, seed)
		if resp, body := postJSON(t, ts, "/v1/plan", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	// One cache hit and one estimate widen the stage mix.
	postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 4, 10, 0))
	est := testInstance(t, "uniform", 4, 10, 1)
	postJSON(t, ts, "/v1/estimate", map[string]any{"instance": est.Instance, "trials": 50})

	snap := p.Metrics()
	if len(snap.Stages) == 0 {
		t.Fatal("no stage attribution in snapshot")
	}
	known := make(map[string]bool)
	for _, name := range trace.StageNames() {
		known[name] = true
	}
	endpointSum := snap.PlanLatency.Sum + snap.EstLatency.Sum + snap.BatchLatency.Sum
	var stageSum float64
	for name, l := range snap.Stages {
		if !known[name] {
			t.Errorf("unknown stage %q in snapshot", name)
		}
		if l.Count == 0 || l.Sum < 0 {
			t.Errorf("stage %q: empty snapshot %+v", name, l)
		}
		if name != "decode" {
			stageSum += l.Sum
		}
	}
	if stageSum > endpointSum {
		t.Fatalf("stage sums %.6fs exceed endpoint sums %.6fs", stageSum, endpointSum)
	}
	for _, want := range []string{"decode", "solve", "round", "encode"} {
		if _, ok := snap.Stages[want]; !ok {
			t.Errorf("stage %q missing from snapshot (have %v)", want, snap.Stages)
		}
	}
	if snap.Traced == 0 || snap.TraceSampled == 0 || snap.TraceRingKept == 0 {
		t.Fatalf("trace ledger empty: traced=%d sampled=%d kept=%d",
			snap.Traced, snap.TraceSampled, snap.TraceRingKept)
	}
}

// TestDebugTracesEndpoint pins /debug/traces: kept traces are listed
// newest-first, filters work, the slowest list is populated, and the
// recorder ledger reconciles with the tracer's.
func TestDebugTracesEndpoint(t *testing.T) {
	ts, _ := tracedServer(t, nil)
	for seed := int64(0); seed < 3; seed++ {
		postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 4, 8, seed))
	}
	est := testInstance(t, "uniform", 4, 8, 7)
	postJSON(t, ts, "/v1/estimate", map[string]any{"instance": est.Instance, "trials": 50})

	var body struct {
		Enabled bool `json:"enabled"`
		Tracer  struct {
			Begun   uint64 `json:"begun"`
			Sampled uint64 `json:"sampled"`
		} `json:"tracer"`
		Recorder struct {
			Kept     uint64 `json:"kept"`
			SlowKept uint64 `json:"slow_kept"`
		} `json:"recorder"`
		Slowest []struct {
			ID      string  `json:"id"`
			Op      string  `json:"op"`
			TotalMS float64 `json:"total_ms"`
		} `json:"slowest"`
		Recent []struct {
			ID      string `json:"id"`
			Op      string `json:"op"`
			Outcome string `json:"outcome"`
		} `json:"recent"`
	}
	getJSON(t, ts, "/debug/traces", &body)
	if !body.Enabled {
		t.Fatal("tracing reported disabled")
	}
	if body.Tracer.Begun != 4 || body.Tracer.Sampled != 4 {
		t.Fatalf("tracer ledger %+v, want 4 begun and sampled", body.Tracer)
	}
	if body.Recorder.Kept != 4 || len(body.Recent) != 4 {
		t.Fatalf("kept=%d recent=%d, want 4", body.Recorder.Kept, len(body.Recent))
	}
	if len(body.Slowest) == 0 || body.Recorder.SlowKept == 0 {
		t.Fatal("slowest-N list empty")
	}
	for i := 1; i < len(body.Slowest); i++ {
		if body.Slowest[i].TotalMS > body.Slowest[i-1].TotalMS {
			t.Fatal("slowest list not ordered slowest-first")
		}
	}
	if body.Recent[0].Op != "estimate" {
		t.Fatalf("recent[0].op = %q, want the estimate (newest first)", body.Recent[0].Op)
	}

	var filtered struct {
		Recent []struct {
			Op string `json:"op"`
		} `json:"recent"`
	}
	getJSON(t, ts, "/debug/traces?op=plan&n=2", &filtered)
	if len(filtered.Recent) != 2 {
		t.Fatalf("op=plan&n=2 returned %d traces", len(filtered.Recent))
	}
	for _, r := range filtered.Recent {
		if r.Op != "plan" {
			t.Fatalf("op filter leaked %q", r.Op)
		}
	}
}

// TestVersionEndpoint pins /version: build identification a load run can
// stamp into its report.
func TestVersionEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	var vi VersionInfo
	getJSON(t, ts, "/version", &vi)
	if vi.GoVersion == "" || !strings.HasPrefix(vi.GoVersion, "go") {
		t.Fatalf("go_version %q", vi.GoVersion)
	}
	if vi.GOMAXPROCS < 1 || vi.NumCPU < 1 {
		t.Fatalf("gomaxprocs=%d num_cpu=%d", vi.GOMAXPROCS, vi.NumCPU)
	}
	if vi.OS == "" || vi.Arch == "" {
		t.Fatalf("os=%q arch=%q", vi.OS, vi.Arch)
	}
}

// checkPromExposition validates Prometheus text-format discipline and
// returns every sample: each non-comment line is `name{labels} value`,
// every sampled family was declared by a preceding TYPE line, and no
// value fails to parse. CI's smoke scrape relies on this checker (via
// TestPromExposition) as the format oracle.
func checkPromExposition(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	declared := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[3])
			}
			declared[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			if _, err := strconv.ParseFloat(valStr, 64); err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
			}
			name = series[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := declared[family]; !ok {
			if _, ok := declared[name]; !ok {
				t.Fatalf("line %d: sample %q has no TYPE declaration", ln+1, name)
			}
		}
		v, _ := strconv.ParseFloat(valStr, 64)
		samples[series] = v
	}
	return samples
}

// TestPromExposition pins /metrics?format=prom: the document parses
// under the format checker and its counters agree with the JSON view.
func TestPromExposition(t *testing.T) {
	ts, p := tracedServer(t, nil)
	for seed := int64(0); seed < 3; seed++ {
		postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 4, 8, seed))
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := checkPromExposition(t, body)

	snap := p.Metrics()
	if got := samples["suu_plans_total"]; got != float64(snap.Plans) {
		t.Fatalf("suu_plans_total %v, snapshot says %d", got, snap.Plans)
	}
	if got := samples["suu_traced_total"]; got < 3 {
		t.Fatalf("suu_traced_total %v, want >= 3", got)
	}
	if _, ok := samples[`suu_stage_seconds_count{stage="solve"}`]; !ok {
		keys := make([]string, 0)
		for k := range samples {
			if strings.HasPrefix(k, "suu_stage_seconds") {
				keys = append(keys, k)
			}
		}
		t.Fatalf("no solve stage summary; stage series: %v", keys)
	}
	if _, ok := samples[`suu_plan_latency_seconds{quantile="0.99"}`]; !ok {
		t.Fatal("plan latency summary missing quantile lines")
	}
}

// TestTraceLogEndToEnd pins the binary trace log wired through Config:
// served requests land in the log as decodable records carrying the
// stages the header reported.
func TestTraceLogEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	lw := trace.NewLogWriter(&buf)
	ts, _ := tracedServer(t, func(cfg *Config) { cfg.TraceLog = lw })
	ids := make(map[string]bool)
	for seed := int64(0); seed < 3; seed++ {
		resp, _ := postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 4, 8, seed))
		sum, ok := trace.ParseHeader(resp.Header.Get(trace.ResponseHeader))
		if !ok {
			t.Fatalf("unparseable header %q", resp.Header.Get(trace.ResponseHeader))
		}
		ids[sum.ID] = true
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := trace.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil || skipped != 0 {
		t.Fatalf("ReadLog err=%v skipped=%d", err, skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("log has %d records, want 3", len(recs))
	}
	for _, rec := range recs {
		if !ids[rec.ID.String()] {
			t.Fatalf("log record %s not among served trace IDs %v", rec.ID, ids)
		}
		if rec.Op != "plan" || rec.Outcome != trace.OutcomeOK {
			t.Fatalf("record %+v", rec)
		}
		if rec.Counts[trace.StageEncode] == 0 && rec.Counts[trace.StageDecode] == 0 {
			t.Fatalf("record carries no stages: %+v", rec)
		}
	}
}

// TestBatchTraceHeader pins batch attribution: one trace covers the whole
// batch, stage counts aggregate across items (decode counts every item),
// and the source is the batch envelope label.
func TestBatchTraceHeader(t *testing.T) {
	ts, _ := tracedServer(t, nil)
	items := make([]map[string]any, 0, 3)
	for seed := int64(0); seed < 3; seed++ {
		req := testInstance(t, "uniform", 4, 8, seed)
		items = append(items, map[string]any{"instance": req.Instance})
	}
	resp, body := postJSON(t, ts, "/v1/plan/batch", map[string]any{"items": items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	sum, ok := trace.ParseHeader(resp.Header.Get(trace.ResponseHeader))
	if !ok {
		t.Fatalf("unparseable batch header %q", resp.Header.Get(trace.ResponseHeader))
	}
	if sum.Source != "batch" {
		t.Fatalf("batch source %q", sum.Source)
	}
	if sum.Counts[trace.StageSolve] < 3 {
		t.Fatalf("batch of 3 computed items reported %d solve spans (header %q)",
			sum.Counts[trace.StageSolve], resp.Header.Get(trace.ResponseHeader))
	}
}
