package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestRunLoadValidation(t *testing.T) {
	ctx := context.Background()
	specs := []workload.Spec{{Family: "uniform", M: 2, N: 4, Seed: 1}}
	cases := []LoadConfig{
		{},                    // no URL
		{BaseURL: "http://x"}, // no specs
		{BaseURL: "http://x", Specs: specs, Mode: "sideways"},
		{BaseURL: "http://x", Specs: specs, Arrival: "bursty"},
		{BaseURL: "http://x", Specs: specs, Mode: "open", Rate: 0},
		{BaseURL: "http://x", Specs: specs, Mode: "closed", Op: "delete"},
	}
	for i, cfg := range cases {
		if _, err := RunLoad(ctx, cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

// TestRunLoadOpenLoop is the in-process end-to-end smoke: suud's handler
// under a real HTTP listener, driven by the open-loop harness at a low
// rate, must finish with zero errors, nonzero throughput, p99 recorded,
// and a warm cache (the two specs repeat across arrivals).
func TestRunLoadOpenLoop(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "open",
		Arrival:     "poisson",
		Rate:        150,
		Duration:    700 * time.Millisecond,
		Concurrency: 32,
		Op:          "plan",
		Specs: []workload.Spec{
			{Family: "uniform", M: 4, N: 16, Seed: 1},
			{Family: "uniform", M: 4, N: 16, Seed: 2},
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d of %d issued", rep.Errors, rep.Issued)
	}
	if rep.Done == 0 || rep.Throughput <= 0 {
		t.Fatalf("no completed requests: %+v", rep)
	}
	// After the drain every issued request resolved one way or the other;
	// dropped arrivals never count as issued.
	if rep.Issued != rep.Done+rep.Errors {
		t.Fatalf("issued=%d does not reconcile with done=%d + errors=%d (dropped=%d)",
			rep.Issued, rep.Done, rep.Errors, rep.Dropped)
	}
	if rep.LatP99 <= 0 || rep.LatP99 < rep.LatP50 {
		t.Fatalf("latency quantiles broken: p50=%g p99=%g", rep.LatP50, rep.LatP99)
	}
	if rep.ServerMetrics == nil {
		t.Fatal("server metrics not fetched")
	}
	if rep.ServerMetrics.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate %g on repeated instances", rep.ServerMetrics.CacheHitRate)
	}
	if rep.Latencies.N() != rep.Done {
		t.Fatalf("histogram n=%d, done=%d", rep.Latencies.N(), rep.Done)
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "closed",
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
		Op:          "estimate",
		Trials:      10,
		Specs:       []workload.Spec{{Family: "uniform", M: 3, N: 8, Seed: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Done == 0 {
		t.Fatalf("closed loop: %+v", rep)
	}
	if rep.Mode != "closed" || rep.Op != "estimate" {
		t.Fatalf("report labels: %+v", rep)
	}
}
