package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestRunLoadValidation(t *testing.T) {
	ctx := context.Background()
	specs := []workload.Spec{{Family: "uniform", M: 2, N: 4, Seed: 1}}
	cases := []LoadConfig{
		{},                    // no URL
		{BaseURL: "http://x"}, // no specs
		{BaseURL: "http://x", Specs: specs, Mode: "sideways"},
		{BaseURL: "http://x", Specs: specs, Arrival: "bursty"},
		{BaseURL: "http://x", Specs: specs, Mode: "open", Rate: 0},
		{BaseURL: "http://x", Specs: specs, Mode: "closed", Op: "delete"},
		{BaseURL: "http://x", Specs: specs, Op: "plan", BatchSize: 4},                                           // batch knobs without batch op
		{BaseURL: "http://x", Specs: specs, Op: "plan-batch", BatchDist: "zipf", Rate: 10},                      // unknown distribution
		{BaseURL: "http://x", Specs: specs, Op: "plan-batch", Mode: "closed", ItemRate: 10, Rate: 10},           // item pacing is open-mode
		{BaseURL: "http://x", Specs: specs, Mode: "open", Rate: 10, Curve: "sawtooth:1:2:3s"},                   // unknown curve
		{BaseURL: "http://x", Specs: specs, Mode: "closed", Curve: "switching:10:1:1s"},                         // shaped curve needs open mode
		{BaseURL: "http://x", Specs: specs, Mode: "open", Rate: 10, Popularity: "pareto:1"},                     // unknown popularity
		{BaseURL: "http://x", Specs: specs, Op: "plan-batch", ItemRate: 10, Rate: 10, Curve: "linstep:1:20:1s"}, // item pacing needs a constant curve
		{BaseURL: "http://x", Specs: specs, ReplayPath: "/nonexistent/run.trace"},                               // unreadable trace
		{BaseURL: "http://x", Specs: specs, ReplayPath: "/tmp/run.trace", RecordPath: "/tmp/run.trace"},         // record over the replay source
	}
	for i, cfg := range cases {
		if _, err := RunLoad(ctx, cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

// TestRunLoadOpenLoop is the in-process end-to-end smoke: suud's handler
// under a real HTTP listener, driven by the open-loop harness at a low
// rate, must finish with zero errors, nonzero throughput, p99 recorded,
// and a warm cache (the two specs repeat across arrivals).
func TestRunLoadOpenLoop(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "open",
		Arrival:     "poisson",
		Rate:        150,
		Duration:    700 * time.Millisecond,
		Concurrency: 32,
		Op:          "plan",
		Specs: []workload.Spec{
			{Family: "uniform", M: 4, N: 16, Seed: 1},
			{Family: "uniform", M: 4, N: 16, Seed: 2},
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d of %d issued", rep.Errors, rep.Issued)
	}
	if rep.Done == 0 || rep.Throughput <= 0 {
		t.Fatalf("no completed requests: %+v", rep)
	}
	// After the drain every issued request resolved one way or the other;
	// dropped arrivals never count as issued.
	if rep.Issued != rep.Done+rep.Errors {
		t.Fatalf("issued=%d does not reconcile with done=%d + errors=%d (dropped=%d)",
			rep.Issued, rep.Done, rep.Errors, rep.Dropped)
	}
	if rep.LatP99 <= 0 || rep.LatP99 < rep.LatP50 {
		t.Fatalf("latency quantiles broken: p50=%g p99=%g", rep.LatP50, rep.LatP99)
	}
	if rep.ServerMetrics == nil {
		t.Fatal("server metrics not fetched")
	}
	if rep.ServerMetrics.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate %g on repeated instances", rep.ServerMetrics.CacheHitRate)
	}
	if rep.Latencies.N() != rep.Done {
		t.Fatalf("histogram n=%d, done=%d", rep.Latencies.N(), rep.Done)
	}
}

// TestRunLoadBatchMode drives plan-batch end to end at an item-paced open
// loop: uniform batch sizes, zero errors, and an item ledger that
// reconciles exactly (items_issued = items_done + items_errors) with the
// request ledger and the server's own batch counters.
func TestRunLoadBatchMode(t *testing.T) {
	ts, _ := newTestServer(t, func(c *Config) { c.QueueDepth = 256 })
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "open",
		Arrival:     "fixed",
		ItemRate:    400,
		BatchSize:   4,
		BatchDist:   "uniform",
		Duration:    700 * time.Millisecond,
		Concurrency: 32,
		Op:          "plan-batch",
		Specs: []workload.Spec{
			{Family: "uniform", M: 4, N: 16, Seed: 1},
			{Family: "uniform", M: 4, N: 16, Seed: 2},
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.ItemsErrors != 0 || rep.Done == 0 {
		t.Fatalf("batch load: %+v", rep)
	}
	if rep.OfferedRate != 100 || rep.OfferedItemRate != 400 { // 400 items/s ÷ size 4
		t.Fatalf("pacing: offered=%g offered_items=%g", rep.OfferedRate, rep.OfferedItemRate)
	}
	if rep.Issued != rep.Done+rep.Errors || rep.ItemsIssued != rep.ItemsDone+rep.ItemsErrors {
		t.Fatalf("ledgers do not reconcile: %+v", rep)
	}
	if rep.ItemsDone <= rep.Done { // uniform sizes on [1,7] mean >1 item/request
		t.Fatalf("items_done=%d not above done=%d", rep.ItemsDone, rep.Done)
	}
	if rep.ItemThroughput <= rep.Throughput {
		t.Fatalf("item throughput %g not above request throughput %g", rep.ItemThroughput, rep.Throughput)
	}
	if rep.BatchSize != 4 || rep.BatchDist != "uniform" || rep.Op != "plan-batch" {
		t.Fatalf("labels: %+v", rep)
	}
	sm := rep.ServerMetrics
	if sm == nil {
		t.Fatal("server metrics not fetched")
	}
	if sm.Batches != rep.Done || sm.BatchItems != rep.ItemsDone {
		t.Fatalf("server sees %d batches / %d items; client did %d / %d",
			sm.Batches, sm.BatchItems, rep.Done, rep.ItemsDone)
	}
	if sm.BatchItems != sm.BatchCached+sm.BatchComputed+sm.BatchShared+sm.BatchErrors {
		t.Fatalf("server batch accounting does not reconcile: %+v", sm)
	}
	if sm.CacheHitRate <= 0 || sm.CacheHitRate > 1 {
		t.Fatalf("hit rate %g", sm.CacheHitRate)
	}
	if sm.BatchSizes.Mean <= 1 || sm.BatchLatency.P99 <= 0 {
		t.Fatalf("batch histograms: %+v / %+v", sm.BatchSizes, sm.BatchLatency)
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "closed",
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
		Op:          "estimate",
		Trials:      10,
		Specs:       []workload.Spec{{Family: "uniform", M: 3, N: 8, Seed: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Done == 0 {
		t.Fatalf("closed loop: %+v", rep)
	}
	if rep.Mode != "closed" || rep.Op != "estimate" {
		t.Fatalf("report labels: %+v", rep)
	}
}

// TestRunLoadTraceAttribution drives a fully sampled server and pins the
// client-side attribution ledger: every completed request parsed into a
// per-source stage table, sources split cached from computed, and server
// time never exceeds client-observed time. The server's build info rides
// along.
func TestRunLoadTraceAttribution(t *testing.T) {
	ts, _ := tracedServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "closed",
		Duration:    400 * time.Millisecond,
		Concurrency: 4,
		Op:          "plan",
		Specs: []workload.Spec{
			{Family: "uniform", M: 4, N: 12, Seed: 1},
			{Family: "uniform", M: 4, N: 12, Seed: 2},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Done == 0 {
		t.Fatalf("done=%d errors=%d", rep.Done, rep.Errors)
	}
	if rep.TracedResponses != rep.Done {
		t.Fatalf("traced %d of %d completed requests at sample=1", rep.TracedResponses, rep.Done)
	}
	if rep.TracedBySource["computed"] == 0 || rep.TracedBySource["cached"] == 0 {
		t.Fatalf("source split missing cached or computed: %v", rep.TracedBySource)
	}
	var n uint64
	for _, c := range rep.TracedBySource {
		n += c
	}
	if n != rep.TracedResponses {
		t.Fatalf("by-source counts %v sum to %d, traced %d", rep.TracedBySource, n, rep.TracedResponses)
	}
	comp := rep.ServerStageSeconds["computed"]
	if comp["solve"] <= 0 || comp["encode"] <= 0 {
		t.Fatalf("computed stage table missing solve/encode: %v", comp)
	}
	if cached := rep.ServerStageSeconds["cached"]; cached["solve"] != 0 {
		t.Fatalf("cached requests charged solve time: %v", cached)
	}
	totalServer := 0.0
	for _, s := range rep.ServerTotalSeconds {
		totalServer += s
	}
	clientTotal := rep.LatMean * float64(rep.Done)
	if totalServer <= 0 || totalServer > clientTotal*1.05 {
		t.Fatalf("server seconds %.6f vs client seconds %.6f", totalServer, clientTotal)
	}
	if rep.ServerVersion == nil || rep.ServerVersion.GoVersion == "" {
		t.Fatal("server version not fetched")
	}
}
