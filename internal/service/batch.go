package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/trace"
)

// refItemWork is the n·m product of the reference batch item (the n=64,
// m=16 cell the service benchmarks center on): one admission cost unit.
// The LP1 behind a plan has n·m+1 variables, so n·m is the natural
// first-cut proxy for expected compute cost — ROADMAP's "weigh requests,
// not count them" backpressure, seeded here for the batch path.
const refItemWork = 64 * 16

// itemCost converts an instance's size into admission cost units:
// ⌈n·m/refItemWork⌉, at least 1. A batch charges the sum over its
// to-be-computed items against the queue budget, so ten large instances
// consume the capacity of ten, not of one request.
func itemCost(ins *model.Instance) int {
	c := (ins.N*ins.M + refItemWork - 1) / refItemWork
	if c < 1 {
		c = 1
	}
	return c
}

// BatchPlanRequest asks for rounded schedules for a list of instances in
// one round trip. Items are independent: each is validated, admitted, and
// computed (or served from cache / coalesced) on its own, and one bad item
// yields a per-item error, never a failed batch.
type BatchPlanRequest struct {
	Items []PlanRequest `json:"items"`
	// DeadlineMS, when positive, turns on partial-results mode: items
	// still unfinished after the deadline report a per-item error while
	// finished items return normally. A computation the deadline strands
	// keeps running only while some other caller still wants it; work
	// nobody waits for stops at its next checkpoint instead of burning a
	// pool slot.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Batch item serving sources.
const (
	sourceCached    = "cached"    // served from the response LRU
	sourceComputed  = "computed"  // this batch led the computation
	sourceCoalesced = "coalesced" // served off shared work: an in-flight request or an intra-batch duplicate
	sourceDegraded  = "degraded"  // brownout fallback: LP-free list schedule, never cached
)

// BatchItemResult is one item's outcome. Exactly one of Plan or Error is
// set. Plan payloads are the canonical cached values — their Cached and
// Coalesced flags are always false; how the item was served is the
// envelope's Source, which (unlike the payload) depends on request order
// and cache state.
type BatchItemResult struct {
	Status string        `json:"status"` // "ok" or "error"
	Source string        `json:"source,omitempty"`
	Plan   *PlanResponse `json:"plan,omitempty"`
	Error  string        `json:"error,omitempty"`
	// frame is Plan's canonical pre-encoded payload, shared with the
	// response LRU; the HTTP layer splices it into the batch envelope
	// instead of re-marshaling Plan. Library callers read Plan and never
	// see it (unexported, invisible to encoding/json).
	frame []byte
}

// BatchPlanResponse is the per-item results plus the batch's own
// accounting: Size = OK + Errors and OK = Cached + Computed + Coalesced +
// Degraded always reconcile. CostUnits is what admission charged for the
// computed items (cache hits, rejected items, and degraded fallbacks are
// free).
type BatchPlanResponse struct {
	Size      int               `json:"size"`
	OK        int               `json:"ok"`
	Errors    int               `json:"errors"`
	Cached    int               `json:"cached"`
	Computed  int               `json:"computed"`
	Coalesced int               `json:"coalesced"`
	Degraded  int               `json:"degraded"`
	CostUnits int               `json:"cost_units"`
	Items     []BatchItemResult `json:"items"`
}

// batchGroup is one unique requestKey's worth of batch items: idxs are the
// item positions sharing the key (intra-batch duplicates dedupe here,
// before any flight registration), cost its admission charge.
type batchGroup struct {
	key    requestKey
	idxs   []int
	cost   int
	ins    *model.Instance
	fp     sched.Fingerprint
	target float64
	class  dag.Class

	val    any
	err    error
	source string
}

// PlanBatch computes (or serves from cache) rounded schedules for every
// item of req. Batch-level errors are reserved for the request itself
// (malformed envelope, overload, shutdown, a gone client); anything wrong
// with an individual item — validation, an over-budget instance, a compute
// failure, a missed deadline — comes back as that item's error.
func (p *Planner) PlanBatch(ctx context.Context, req *BatchPlanRequest) (*BatchPlanResponse, error) {
	return p.planBatchServe(ctx, req, nil)
}

// planBatchServe is PlanBatch with the request's trace context; the HTTP
// layer passes its Ctx, library callers go through PlanBatch with nil.
func (p *Planner) planBatchServe(ctx context.Context, req *BatchPlanRequest, tc *trace.Ctx) (*BatchPlanResponse, error) {
	if err := p.begin(); err != nil {
		return nil, err
	}
	defer p.end()
	start := time.Now()
	resp, err := p.planBatch(ctx, req, tc)
	p.metrics.observeBatch(time.Since(start), resp, err)
	return resp, err
}

func (p *Planner) planBatch(ctx context.Context, req *BatchPlanRequest, tc *trace.Ctx) (*BatchPlanResponse, error) {
	if req == nil || len(req.Items) == 0 {
		return nil, badRequestf("batch needs at least one item")
	}
	if len(req.Items) > p.cfg.MaxBatchItems {
		return nil, badRequestf("batch of %d items over the cap %d (split the batch)", len(req.Items), p.cfg.MaxBatchItems)
	}
	if err := validDeadlineMS(req.DeadlineMS); err != nil {
		return nil, err
	}

	items := make([]BatchItemResult, len(req.Items))

	// Validate every item and dedupe by content key: duplicate items —
	// within the batch or across different decodings of the same instance —
	// collapse onto one group before anything touches the flight table.
	groups := make(map[requestKey]*batchGroup)
	var order []*batchGroup
	for i := range req.Items {
		ins, target, class, err := p.validatePlan(&req.Items[i])
		if err != nil {
			items[i] = BatchItemResult{Status: "error", Error: err.Error()}
			continue
		}
		fp := sched.FingerprintInstance(ins)
		key := requestKey{fp: fp, kind: kindPlan, target: target}
		g, ok := groups[key]
		if !ok {
			g = &batchGroup{key: key, cost: itemCost(ins), ins: ins, fp: fp, target: target, class: class}
			groups[key] = g
			order = append(order, g)
		}
		g.idxs = append(g.idxs, i)
	}

	// Pass 1 — peek the cache (uncounted: if admission rejects the batch
	// below, no response is delivered and no hit may be claimed) and price
	// the remaining work. Under brownout pressure, eligible miss groups
	// take the degraded fallback here — free of admission charge, exactly
	// like the single path.
	var misses []*batchGroup
	totalCost := 0
	degradeNow := p.pressure() >= p.cfg.BrownoutThreshold
	for _, g := range order {
		if v, ok := p.cache.peek(g.key); ok {
			g.val, g.source = v, sourceCached
			continue
		}
		if g.cost > p.cfg.MaxItemCost {
			g.err = badRequestf("item cost %d units (n=%d, m=%d) over the per-item budget %d", g.cost, g.ins.N, g.ins.M, p.cfg.MaxItemCost)
			continue
		}
		if degradeNow && p.degradeAllowed(g.class) {
			// Tag now, mint after admission settles: if the batch's
			// non-degradable remainder rejects below, no response is
			// delivered and no degraded serve may be counted.
			g.source = sourceDegraded
			continue
		}
		misses = append(misses, g)
		totalCost += g.cost
	}

	// Admission weighs items, not requests: the batch charges the summed
	// cost of its to-be-computed items against the same queue budget
	// single requests count against. A batch whose own cost exceeds the
	// budget is still admittable — but only against an empty enough line
	// (otherwise it could never run at all). If the line filled between
	// the pressure check and here, degrade-eligible groups take the
	// fallback and only the remainder re-tries admission.
	if totalCost > 0 {
		if q := p.queued.Add(int64(totalCost)); q > int64(max(p.cfg.QueueDepth, totalCost)) {
			p.queued.Add(-int64(totalCost))
			var keep []*batchGroup
			kept := 0
			for _, g := range misses {
				if !p.degradeAllowed(g.class) {
					keep = append(keep, g)
					kept += g.cost
				}
			}
			if kept == totalCost {
				// Nothing degradable; the whole batch rejects as before.
				return nil, fmt.Errorf("%w (batch of %d cost units)", p.overloaded(), totalCost)
			}
			if kept > 0 {
				if q := p.queued.Add(int64(kept)); q > int64(max(p.cfg.QueueDepth, kept)) {
					p.queued.Add(-int64(kept))
					return nil, fmt.Errorf("%w (batch of %d cost units)", p.overloaded(), kept)
				}
			}
			// The remainder is admitted (or empty): the eligible groups
			// take the fallback.
			for _, g := range misses {
				if p.degradeAllowed(g.class) {
					g.source = sourceDegraded
				}
			}
			misses, totalCost = keep, kept
		}
	}

	// The batch is fully admitted; mint the degraded fallbacks tagged
	// above. Building them after admission keeps the degraded-serve
	// counter equal to fallbacks actually delivered.
	for _, g := range order {
		if g.source == sourceDegraded {
			dstart := time.Now()
			resp := p.degradedPlan(g.ins, g.fp, g.target, g.class)
			p.obsStage(tc, trace.StageDegrade, dstart)
			cf, err := p.encodeFrame(resp, tc)
			if err != nil {
				g.err, g.source = err, ""
				continue
			}
			g.val = cf
		}
	}

	// The batch is admitted: now record per-item cache accounting. Misses
	// land before any coalesced counts can (the fan-out below), keeping
	// coalesced ≤ misses — and the reported hit rate ≤ 1 — within any one
	// /metrics document.
	for _, g := range order {
		switch {
		case g.source == sourceCached:
			p.cache.hits.Add(uint64(len(g.idxs)))
		case g.err == nil:
			p.cache.misses.Add(uint64(len(g.idxs)))
		}
	}

	// Fan the misses across the worker pool, one resolver per unique key.
	// Resolvers coalesce against in-flight singles and other batches
	// through the same flight table the single path uses.
	dctx := ctx
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	var wg sync.WaitGroup
	for _, g := range misses {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			p.resolveBatchGroup(dctx, g, tc)
		}(g)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The client is gone; the response has no reader. Each resolver
		// already left its flight: work other callers still want runs to
		// completion and lands in the cache, the rest stops at its next
		// checkpoint.
		return nil, err
	}

	resp := &BatchPlanResponse{Size: len(req.Items), CostUnits: totalCost, Items: items}
	for _, g := range order {
		if g.err != nil {
			for _, i := range g.idxs {
				items[i] = BatchItemResult{Status: "error", Error: g.err.Error()}
			}
			continue
		}
		cf := g.val.(*cachedFrame)
		plan := cf.val.(*PlanResponse)
		for k, i := range g.idxs {
			src := g.source
			if src == sourceComputed && k > 0 {
				src = sourceCoalesced // intra-batch duplicate of the computed item
			}
			items[i] = BatchItemResult{Status: "ok", Source: src, Plan: plan, frame: cf.frame}
		}
	}
	coalescedItems := 0
	for i := range items {
		switch {
		case items[i].Status == "error":
			resp.Errors++
			continue
		case items[i].Source == sourceCached:
			resp.Cached++
		case items[i].Source == sourceComputed:
			resp.Computed++
		case items[i].Source == sourceDegraded:
			resp.Degraded++
		default:
			resp.Coalesced++
			coalescedItems++
		}
		resp.OK++
	}
	// Items served off shared work (flight followers, raced-cache peeks,
	// intra-batch duplicates) recorded a miss above but recomputed
	// nothing; fold them into the shared-work bucket exactly like the
	// single path's markShared.
	if coalescedItems > 0 {
		p.metrics.coalesced.Add(uint64(coalescedItems))
	}
	return resp, nil
}

// resolveBatchGroup serves one unique uncached key: join the flight as a
// follower, or lead — re-checking the cache for a raced flight first, then
// computing on a worker slot via a detached, panic-isolated spawn. The
// group's admission charge is released the moment it is known not to be
// queued work anymore (follower join, raced-cache hit, or slot acquired).
func (p *Planner) resolveBatchGroup(ctx context.Context, g *batchGroup, tc *trace.Ctx) {
	c, follower := p.flight.join(g.key)
	if follower {
		p.queued.Add(-int64(g.cost)) // someone else computes; nothing queued
		g.source = sourceCoalesced
		fstart := time.Now()
		p.await(ctx, g, c)
		p.obsStage(tc, trace.StageFlight, fstart)
		return
	}
	if v, ok := p.cache.peek(g.key); ok {
		// A racing flight landed between our peek in pass 1 and the join.
		p.flight.finish(g.key, c, v, nil)
		p.queued.Add(-int64(g.cost))
		g.val, g.source = v, sourceCoalesced
		return
	}
	if v, ok := p.storeGet(g.key, tc); ok {
		// The durable store holds this plan (this node's disk, or a
		// peer's): serve it without a slot, exactly like the raced-cache
		// path — it recorded a miss but computes nothing.
		p.flight.finish(g.key, c, v, nil)
		p.queued.Add(-int64(g.cost))
		g.val, g.source = v, sourceCoalesced
		return
	}
	ins, fp, target, class, cost := g.ins, g.fp, g.target, g.class, g.cost
	p.spawn(g.key, c, tc, func() (any, error) {
		// Block for a worker slot (admission already charged the line) —
		// unless every caller abandons the flight first, in which case the
		// queued charge is refunded and the work never starts.
		qstart := time.Now()
		select {
		case p.slots <- struct{}{}:
		case <-c.abandoned:
			p.queued.Add(-int64(cost))
			p.metrics.deadlineAbandoned.Add(1)
			return nil, errAbandoned
		}
		p.queued.Add(-int64(cost))
		p.obsStage(tc, trace.StageQueue, qstart)
		defer p.release()
		resp, err := p.computePlan(ins, fp, target, class, c.abandoned, tc)
		if err != nil {
			return nil, err
		}
		cf, err := p.encodeFrame(resp, tc)
		if err != nil {
			return nil, err
		}
		p.metrics.plansComputed.Add(1)
		p.cache.put(g.key, cf)
		p.storePut(g.key, cf, tc)
		return cf, nil
	})
	g.source = sourceComputed
	p.await(ctx, g, c)
}

// await waits for the group's flight under the batch's (possibly
// deadline-bounded) context. A deadline expiry becomes this item's error
// and leaves the flight: with other callers still attached the detached
// computation runs to completion and lands in the cache; stranded alone,
// it stops at its next checkpoint.
func (p *Planner) await(ctx context.Context, g *batchGroup, c *flightCall) {
	select {
	case <-c.done:
		g.val, g.err = c.val, c.err
		if sv, ok := g.val.(storeServed); ok {
			// The flight we coalesced onto was answered from the store.
			g.val = sv.val
		}
	case <-ctx.Done():
		p.flight.leave(g.key, c)
		g.err = fmt.Errorf("item unfinished at the batch deadline: %w", ctx.Err())
	}
}
