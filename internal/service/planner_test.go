package service

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testInstance(t *testing.T, family string, m, n int, seed int64) *PlanRequest {
	t.Helper()
	ins, err := workload.Generate(workload.Spec{Family: family, M: m, N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return &PlanRequest{Instance: ins}
}

func smallPlanner(extra func(*Config)) *Planner {
	cfg := Config{Workers: 2, QueueDepth: 8, CacheCap: 64, CacheShards: 2,
		MaxTrials: 500, DefaultTrials: 20, TrialWorkers: 2, ProgressChunk: 8}
	if extra != nil {
		extra(&cfg)
	}
	return NewPlanner(cfg)
}

func TestPlanMatchesDirectRounding(t *testing.T) {
	p := smallPlanner(nil)
	req := testInstance(t, "uniform", 4, 10, 7)
	resp, err := p.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]int, req.Instance.N)
	for j := range jobs {
		jobs[j] = j
	}
	direct, err := rounding.RoundLP1(req.Instance, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TStar != direct.TFrac {
		t.Errorf("tstar %v vs direct %v", resp.TStar, direct.TFrac)
	}
	o := direct.Assignment.Serialize()
	if resp.Length != o.Length {
		t.Errorf("length %d vs direct %d", resp.Length, o.Length)
	}
	wantLower := direct.TFrac / 2
	if wantLower < 1 {
		wantLower = 1
	}
	if resp.LowerBound != wantLower {
		t.Errorf("lower bound %v, want %v", resp.LowerBound, wantLower)
	}
	if len(resp.Machines) != req.Instance.M {
		t.Fatalf("machines rows = %d", len(resp.Machines))
	}
	for i, runs := range o.Runs {
		if len(resp.Machines[i]) != len(runs) {
			t.Fatalf("machine %d: %d runs vs direct %d", i, len(resp.Machines[i]), len(runs))
		}
		for k, r := range runs {
			if got := resp.Machines[i][k]; got.Job != r.Job || got.Steps != r.Steps {
				t.Fatalf("machine %d run %d: %+v vs %+v", i, k, got, r)
			}
		}
	}
	if resp.Class != "independent" || resp.Cached {
		t.Errorf("class %q cached %v", resp.Class, resp.Cached)
	}
}

func TestPlanChainsUsesLP2(t *testing.T) {
	p := smallPlanner(nil)
	req := testInstance(t, "chains", 4, 12, 3)
	resp, err := p.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	chains, err := req.Instance.Chains()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := rounding.RoundLP2(req.Instance, chains)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TStar != direct.TFrac {
		t.Errorf("tstar %v vs direct LP2 %v", resp.TStar, direct.TFrac)
	}
	if want := direct.Assignment.Serialize().Length; resp.Length != want {
		t.Errorf("length %d vs %d", resp.Length, want)
	}
	if resp.Class != "chains" || resp.LowerBound != 0 {
		t.Errorf("class %q lower %v", resp.Class, resp.LowerBound)
	}
}

func TestPlanSecondCallHitsCache(t *testing.T) {
	p := smallPlanner(nil)
	// Same content decoded into two distinct instances: the fingerprint,
	// not the pointer, must address the cache.
	reqA := testInstance(t, "uniform", 4, 8, 1)
	reqB := testInstance(t, "uniform", 4, 8, 1)
	a, err := p.Plan(context.Background(), reqA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Plan(context.Background(), reqB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cached || !b.Cached {
		t.Fatalf("cached flags: first %v second %v", a.Cached, b.Cached)
	}
	if a.TStar != b.TStar || a.Fingerprint != b.Fingerprint {
		t.Fatal("cached response differs")
	}
	snap := p.Metrics()
	if snap.CacheHits != 1 || snap.Plans != 2 {
		t.Fatalf("metrics: %+v", snap)
	}
}

func TestEstimateMatchesMonteCarlo(t *testing.T) {
	p := smallPlanner(nil)
	req := testInstance(t, "uniform", 4, 10, 11)
	got, err := p.Estimate(context.Background(), &EstimateRequest{
		Instance: req.Instance, Policy: "sem", Trials: 40, Seed: 3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: a fresh policy and a different worker count must produce
	// the identical sample (the engine is deterministic in (i, seed)).
	ref, err := sim.MonteCarlo(req.Instance, freshPolicy("sem"), 40, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := ref.Summary
	if got.Mean != s.Mean || got.Median != s.Median || got.Min != s.Min || got.Max != s.Max {
		t.Fatalf("estimate %+v differs from direct Monte Carlo %+v", got, s)
	}
}

// freshPolicy builds a throwaway policy instance outside any planner.
func freshPolicy(name string) sim.Policy {
	return NewPlanner(Config{}).policies[name]()
}

// TestEstimatePolicyPerComputation pins the request-scoped policy
// contract: every estimate that actually computes builds a fresh policy
// from the factory (so its LP caches die with the computation), while
// response-cache hits build nothing.
func TestEstimatePolicyPerComputation(t *testing.T) {
	p := smallPlanner(nil)
	var built atomic.Int32
	p.policies["counted"] = func() sim.Policy {
		built.Add(1)
		return freshPolicy("sem")
	}
	ins := testInstance(t, "uniform", 3, 6, 8).Instance
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := p.Estimate(context.Background(), &EstimateRequest{
			Instance: ins, Policy: "counted", Trials: 5, Seed: seed,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := built.Load(); got != 3 {
		t.Fatalf("policy built %d times for 3 uncached estimates", got)
	}
	// A repeat hits the response cache: no computation, no new policy.
	if _, err := p.Estimate(context.Background(), &EstimateRequest{
		Instance: ins, Policy: "counted", Trials: 5, Seed: 1,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if got := built.Load(); got != 3 {
		t.Fatalf("response-cache hit built a policy (%d builds total)", got)
	}
}

// TestEstimateDoesNotRetainInstance is the unbounded-growth regression:
// with planner-lifetime policies, the LP caches (keyed by instance
// pointer, full-set entries pinned) retained every distinct estimated
// instance forever. After an estimate finishes, nothing in the planner
// may keep the decoded instance reachable — the response cache and
// flight group key by content fingerprint, and the policy (with its
// caches and workspace pool) is request-scoped.
func TestEstimateDoesNotRetainInstance(t *testing.T) {
	p := smallPlanner(nil)
	collected := make(chan struct{})
	err := func() error {
		ins, err := workload.Generate(workload.Spec{Family: "uniform", M: 3, N: 6, Seed: 123})
		if err != nil {
			return err
		}
		runtime.SetFinalizer(ins, func(*model.Instance) { close(collected) })
		_, err = p.Estimate(context.Background(), &EstimateRequest{
			Instance: ins, Policy: "sem", Trials: 5, Seed: 1,
		}, nil)
		return err
	}()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatal("instance still reachable after its estimate finished: the planner retains it")
}

func TestEstimateChunkingInvariant(t *testing.T) {
	reqA := testInstance(t, "uniform", 3, 8, 5)
	reqB := testInstance(t, "uniform", 3, 8, 5)
	fine := smallPlanner(func(c *Config) { c.ProgressChunk = 7 })
	coarse := smallPlanner(func(c *Config) { c.ProgressChunk = 1000 })
	er := &EstimateRequest{Policy: "obl", Trials: 33, Seed: 9}
	ra := *er
	ra.Instance = reqA.Instance
	rb := *er
	rb.Instance = reqB.Instance
	a, err := fine.Estimate(context.Background(), &ra, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coarse.Estimate(context.Background(), &rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Std != b.Std || a.Median != b.Median {
		t.Fatalf("chunk size changed the estimate: %+v vs %+v", a, b)
	}
}

func TestEstimateProgress(t *testing.T) {
	p := smallPlanner(func(c *Config) { c.ProgressChunk = 10 })
	req := testInstance(t, "uniform", 3, 6, 2)
	var progress []Progress
	resp, err := p.Estimate(context.Background(), &EstimateRequest{
		Instance: req.Instance, Trials: 35, Seed: 1,
	}, func(pr Progress) { progress = append(progress, pr) })
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != 3 { // after 10, 20, 30; 35 is the final result
		t.Fatalf("progress calls = %d (%+v)", len(progress), progress)
	}
	for i, pr := range progress {
		if pr.Done != (i+1)*10 || pr.Total != 35 || pr.Mean <= 0 {
			t.Fatalf("progress %d = %+v", i, pr)
		}
	}
	if resp.Trials != 35 {
		t.Fatalf("resp trials = %d", resp.Trials)
	}
}

func TestRequestValidation(t *testing.T) {
	p := smallPlanner(nil)
	ctx := context.Background()
	indep := testInstance(t, "uniform", 3, 6, 1).Instance
	forest := testInstance(t, "forest", 3, 10, 1).Instance

	if _, err := p.Plan(ctx, &PlanRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("missing instance: %v", err)
	}
	if _, err := p.Plan(ctx, &PlanRequest{Instance: indep, Target: -1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative target: %v", err)
	}
	// NaN never equals itself as a map key: letting it through would leak
	// singleflight entries and plant unfindable cache entries.
	if _, err := p.Plan(ctx, &PlanRequest{Instance: indep, Target: math.NaN()}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("NaN target: %v", err)
	}
	if _, err := p.Plan(ctx, &PlanRequest{Instance: forest}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("forest plan: %v", err)
	}
	if _, err := p.Estimate(ctx, &EstimateRequest{Instance: indep, Policy: "nope"}, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown policy: %v", err)
	}
	if _, err := p.Estimate(ctx, &EstimateRequest{Instance: indep, Trials: 501}, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("over-budget trials: %v", err)
	}
	if _, err := p.Estimate(ctx, &EstimateRequest{Instance: indep, Trials: -5}, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative trials: %v", err)
	}
	if _, err := p.Estimate(ctx, &EstimateRequest{Instance: forest, Policy: "sem"}, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("sem on forest: %v", err)
	}
	// Auto policy resolves by class and works on every class.
	if resp, err := p.Estimate(ctx, &EstimateRequest{Instance: forest, Trials: 5}, nil); err != nil {
		t.Errorf("auto on forest: %v", err)
	} else if resp.Policy != "forest" {
		t.Errorf("auto resolved to %q", resp.Policy)
	}

	// A MaxTrials below the default clamps DefaultTrials: trial-less
	// requests must stay serveable.
	tight := NewPlanner(Config{MaxTrials: 150})
	if got := tight.Config().DefaultTrials; got != 150 {
		t.Errorf("DefaultTrials = %d with MaxTrials 150", got)
	}
}

// gatePolicy blocks every trial until the gate closes, making in-flight
// states deterministic for the coalescing and shutdown tests.
type gatePolicy struct {
	entered chan struct{} // receives one token per Run that reached the gate
	gate    chan struct{}
}

func (g *gatePolicy) Name() string { return "gate" }

func (g *gatePolicy) Run(w *sim.World) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	for _, j := range w.Remaining() {
		if _, err := w.SoloAll(j); err != nil {
			return err
		}
	}
	return nil
}

func TestEstimateCoalescesDuplicates(t *testing.T) {
	p := smallPlanner(nil)
	gp := &gatePolicy{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	p.policies["gate"] = func() sim.Policy { return gp }
	ins := testInstance(t, "uniform", 3, 5, 4).Instance
	req := &EstimateRequest{Instance: ins, Policy: "gate", Trials: 4, Seed: 1}

	type out struct {
		resp *EstimateResponse
		err  error
	}
	outs := make(chan out, 2)
	go func() {
		r, err := p.Estimate(context.Background(), req, nil)
		outs <- out{r, err}
	}()
	<-gp.entered // leader is mid-computation
	go func() {
		r, err := p.Estimate(context.Background(), req, nil)
		outs <- out{r, err}
	}()
	// Wait until the follower has attached to the leader's flight.
	key := requestKey{fp: sched.FingerprintInstance(ins), kind: kindEstimate, policy: "gate", trials: 4, seed: 1}
	for {
		p.flight.mu.Lock()
		c := p.flight.m[key]
		dups := 0
		if c != nil {
			dups = c.dups
		}
		p.flight.mu.Unlock()
		if dups == 1 {
			break
		}
		runtime.Gosched()
	}
	close(gp.gate)
	a, b := <-outs, <-outs
	if a.err != nil || b.err != nil {
		t.Fatalf("errors: %v / %v", a.err, b.err)
	}
	if a.resp.Mean != b.resp.Mean {
		t.Fatal("coalesced responses differ")
	}
	if a.resp.Coalesced == b.resp.Coalesced {
		t.Fatalf("want exactly one coalesced response, got %v/%v", a.resp.Coalesced, b.resp.Coalesced)
	}
	snap := p.Metrics()
	if snap.Coalesced != 1 {
		t.Fatalf("coalesced counter = %d", snap.Coalesced)
	}
	// Both callers missed the LRU, but the follower was served off the
	// leader's flight: the reported hit rate counts it as served-from-
	// shared-work, not as a plain miss.
	if snap.CacheHits != 0 || snap.CacheMisses != 2 || snap.CacheHitRate != 0.5 {
		t.Fatalf("hit-rate accounting: hits=%d misses=%d rate=%v",
			snap.CacheHits, snap.CacheMisses, snap.CacheHitRate)
	}
}

// TestRunSharedLeaderServesRacedCache pins the leader's late cache
// re-check: when an identical flight landed between a caller's cache miss
// and its join, the new leader serves the cached result (flagged
// fromCache so the endpoints label it cached) instead of recomputing —
// and the uncounted peek leaves the hit/miss counters alone (the caller
// already recorded its miss).
func TestRunSharedLeaderServesRacedCache(t *testing.T) {
	p := smallPlanner(nil)
	key := requestKey{kind: kindPlan, target: 0.25}
	want := &PlanResponse{Fingerprint: "raced"}
	p.cache.put(key, want)
	v, err, shared, fromCache := p.runShared(context.Background(), key, nil, nil, func(*flightCall, func(Progress)) (any, error) {
		t.Error("computation ran despite a cached result for its key")
		return nil, errors.New("unreachable")
	})
	if err != nil || shared || !fromCache || v.(*PlanResponse) != want {
		t.Fatalf("v=%v err=%v shared=%v fromCache=%v", v, err, shared, fromCache)
	}
	if h, m := p.cache.hits.Load(), p.cache.misses.Load(); h != 0 || m != 0 {
		t.Fatalf("peek touched the counters: hits=%d misses=%d", h, m)
	}
	// The inline finish removed the flight: a fresh caller leads again.
	if _, follower := p.flight.join(key); follower {
		t.Fatal("flight entry leaked after the peek-served finish")
	}
}

// TestFollowerSurvivesLeaderCancellation pins the detached-computation
// contract: the leader's client disconnecting must not poison the flight
// for coalesced followers.
func TestFollowerSurvivesLeaderCancellation(t *testing.T) {
	p := smallPlanner(nil)
	gp := &gatePolicy{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	p.policies["gate"] = func() sim.Policy { return gp }
	ins := testInstance(t, "uniform", 3, 5, 61).Instance
	req := &EstimateRequest{Instance: ins, Policy: "gate", Trials: 4, Seed: 1}
	key := requestKey{fp: sched.FingerprintInstance(ins), kind: kindEstimate, policy: "gate", trials: 4, seed: 1}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := p.Estimate(leaderCtx, req, nil)
		leaderErr <- err
	}()
	<-gp.entered // computation is running

	followerOut := make(chan *EstimateResponse, 1)
	followerErrCh := make(chan error, 1)
	go func() {
		r, err := p.Estimate(context.Background(), req, nil)
		followerOut <- r
		followerErrCh <- err
	}()
	for { // wait until the follower attached
		p.flight.mu.Lock()
		c := p.flight.m[key]
		dups := 0
		if c != nil {
			dups = c.dups
		}
		p.flight.mu.Unlock()
		if dups >= 1 {
			break
		}
		runtime.Gosched()
	}

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v", err)
	}
	close(gp.gate) // computation finishes after the leader is gone
	if err := <-followerErrCh; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if r := <-followerOut; r == nil || r.Trials != 4 {
		t.Fatalf("follower response: %+v", r)
	}
	p.Close() // the detached computation must be drained by now
}

func TestAdmissionControl(t *testing.T) {
	p := smallPlanner(func(c *Config) { c.Workers = 1; c.QueueDepth = 1 })
	p.slots <- struct{}{} // occupy the only worker from outside

	reqA := testInstance(t, "uniform", 3, 5, 21)
	reqB := testInstance(t, "uniform", 3, 5, 22)
	errCh := make(chan error, 1)
	go func() {
		_, err := p.Plan(context.Background(), reqA)
		errCh <- err
	}()
	for p.queued.Load() != 1 {
		runtime.Gosched()
	}
	// The line is full: a different request must bounce immediately.
	if _, err := p.Plan(context.Background(), reqB); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if snap := p.Metrics(); snap.Rejected != 1 {
		t.Fatalf("rejected counter = %d", snap.Rejected)
	}
	<-p.slots // free the worker; the queued request completes
	if err := <-errCh; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}

	// A caller whose client gives up gets its context error immediately;
	// with nobody else attached, the computation is abandoned at its
	// slot-wait checkpoint — the queue charge is refunded without a worker
	// slot ever being consumed, the flight table is cleared, and nothing
	// lands in the cache. (Work with live followers still completes: see
	// TestFollowerSurvivesLeaderCancellation.)
	p2 := smallPlanner(func(c *Config) { c.Workers = 1; c.QueueDepth = 2 })
	p2.slots <- struct{}{} // keep the only worker busy for the whole test
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p2.Plan(ctx, reqB); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for p2.Metrics().Abandoned != 1 {
		runtime.Gosched()
	}
	if q := p2.queued.Load(); q != 0 {
		t.Fatalf("abandonment did not refund the queue charge: queued=%d", q)
	}
	key := requestKey{fp: sched.FingerprintInstance(reqB.Instance), kind: kindPlan, target: 0.5}
	if _, ok := p2.cache.get(key); ok {
		t.Fatal("abandoned computation landed in the cache")
	}
	p2.flight.mu.Lock()
	flights := len(p2.flight.m)
	p2.flight.mu.Unlock()
	if flights != 0 {
		t.Fatalf("flight table has %d entries after abandonment", flights)
	}
	// The abandoned wait is a cancellation, not a server error.
	if snap := p2.Metrics(); snap.Canceled != 1 || snap.Errors != 0 {
		t.Fatalf("canceled/errors = %d/%d", snap.Canceled, snap.Errors)
	}
	<-p2.slots
	p2.Close() // the detached goroutine must have untracked itself
}

func TestCloseDrainsInFlight(t *testing.T) {
	p := smallPlanner(nil)
	gp := &gatePolicy{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	p.policies["gate"] = func() sim.Policy { return gp }
	ins := testInstance(t, "uniform", 3, 5, 31).Instance

	respCh := make(chan error, 1)
	go func() {
		_, err := p.Estimate(context.Background(), &EstimateRequest{
			Instance: ins, Policy: "gate", Trials: 2, Seed: 1,
		}, nil)
		respCh <- err
	}()
	<-gp.entered

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	// Close is underway: new requests bounce, the in-flight one lives.
	for !p.ShuttingDown() {
		runtime.Gosched()
	}
	if _, err := p.Plan(context.Background(), testInstance(t, "uniform", 3, 5, 32)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("want ErrShuttingDown, got %v", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned with a request still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(gp.gate)
	if err := <-respCh; err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight request drained")
	}
}

// TestPlannerConcurrentMixed fires overlapping plans and estimates from
// many goroutines through one planner — the -race exercise for the
// sharded cache, the flight group, and the per-request policies, with a cache
// small enough to force eviction mid-run.
func TestPlannerConcurrentMixed(t *testing.T) {
	p := smallPlanner(func(c *Config) {
		c.Workers = 4
		c.QueueDepth = 256
		c.CacheCap = 8
		c.CacheShards = 2
	})
	instances := make([]*PlanRequest, 6)
	for i := range instances {
		instances[i] = testInstance(t, "uniform", 3, 6, int64(100+i))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				ins := instances[(g+i)%len(instances)].Instance
				if i%2 == 0 {
					if _, err := p.Plan(context.Background(), &PlanRequest{Instance: ins}); err != nil {
						errCh <- err
						return
					}
				} else {
					if _, err := p.Estimate(context.Background(), &EstimateRequest{
						Instance: ins, Policy: "sem", Trials: 6, Seed: int64(i % 3),
					}, nil); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	snap := p.Metrics()
	if snap.CacheHits == 0 {
		t.Error("no cache hits across 96 overlapping requests")
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight = %d after drain", snap.InFlight)
	}
}
