package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// The durable store sits under the response LRU as a read-through /
// write-behind tier: a compute closure checks it after the LRU misses and
// before burning a worker slot, and persists what it computes. The store
// holds the same canonical values the LRU does, serialized; its Key is a
// content address derived from the full requestKey, so every node in a
// fleet derives identical keys for identical requests.

// storeServed wraps a flight value that was answered from the store
// rather than computed, so callers downstream of runShared can label it
// served-from-shared-work (it cost no compute) without new plumbing.
type storeServed struct{ val any }

// storeKeyOf derives the 128-bit content address for a request: two
// differently-salted SplitMix64 lanes over the fingerprint and every
// result-determining parameter. Unlike requestKey.hash (a shard selector
// where collisions are harmless), both lanes absorb the full policy
// string and the full seed — a collision here would serve a wrong
// payload, so the address must separate everything the result depends on.
func storeKeyOf(k requestKey) store.Key {
	pf := uint64(0xcbf29ce484222325) // FNV-1a over the policy name
	for i := 0; i < len(k.policy); i++ {
		pf = (pf ^ uint64(k.policy[i])) * 0x100000001b3
	}
	hi := fpMixLocal(k.fp.Hi ^ 0x9e3779b97f4a7c15)
	hi = fpMixLocal(hi ^ k.fp.Lo)
	hi = fpMixLocal(hi ^ uint64(k.kind))
	hi = fpMixLocal(hi ^ math.Float64bits(k.target))
	hi = fpMixLocal(hi ^ uint64(k.trials))
	hi = fpMixLocal(hi ^ uint64(k.seed))
	hi = fpMixLocal(hi ^ pf)
	lo := fpMixLocal(k.fp.Lo ^ 0xbf58476d1ce4e5b9)
	lo = fpMixLocal(lo ^ k.fp.Hi)
	lo = fpMixLocal(lo ^ uint64(k.kind)<<8)
	lo = fpMixLocal(lo ^ math.Float64bits(k.target)<<1 ^ math.Float64bits(k.target)>>63)
	lo = fpMixLocal(lo ^ uint64(k.seed)<<16 ^ uint64(k.trials))
	lo = fpMixLocal(lo ^ pf<<1)
	return store.Key{Hi: hi, Lo: lo}
}

// storedEnvelope frames a persisted response: a version, the request
// kind, and the canonical payload frame — the same bytes the response LRU
// splices into responses, persisted verbatim so a disk or peer hit skips
// re-encoding exactly like an LRU hit. The kind check on decode means a
// (vanishingly unlikely) key collision between a plan and an estimate
// degrades to a store miss, never a mistyped response.
type storedEnvelope struct {
	V    int             `json:"v"`
	Kind uint8           `json:"kind"`
	Body json.RawMessage `json:"body"`
}

const storedEnvelopeV = 1

// encodeStored wraps an already-canonical payload frame; the payload is
// never re-marshaled (json.RawMessage passes through verbatim).
func encodeStored(kind uint8, frame json.RawMessage) ([]byte, error) {
	return json.Marshal(&storedEnvelope{V: storedEnvelopeV, Kind: kind, Body: frame})
}

// decodeStored validates the envelope and rebuilds the cachedFrame: the
// struct is decoded once (library callers need it), and the Body bytes —
// byte-identical to what encodeStored persisted — become the serving
// frame, so a store hit re-enters the zero-copy path with no encode.
func decodeStored(kind uint8, b []byte) (*cachedFrame, error) {
	var env storedEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, err
	}
	if env.V != storedEnvelopeV || env.Kind != kind {
		return nil, fmt.Errorf("stored envelope v%d kind %d does not match request kind %d", env.V, env.Kind, kind)
	}
	switch kind {
	case kindPlan:
		resp := &PlanResponse{}
		if err := json.Unmarshal(env.Body, resp); err != nil {
			return nil, err
		}
		return newCachedFrame(resp, env.Body), nil
	case kindEstimate:
		resp := &EstimateResponse{}
		if err := json.Unmarshal(env.Body, resp); err != nil {
			return nil, err
		}
		return newCachedFrame(resp, env.Body), nil
	}
	return nil, fmt.Errorf("unknown stored kind %d", kind)
}

// storeGet reads through the store for key. On a hit the canonical value
// also lands in the response LRU, so the next request for the key never
// reaches the store at all. Runs under context.Background(): the store's
// own timeouts bound a peer fetch, and a result is worth caching even if
// this caller's deadline is about to expire (same reasoning as detached
// computations). The request's trace rides along two ways: the tier that
// answered becomes a stage span (store.mem / store.disk / store.peer, or
// store.miss when every tier came up empty), and the trace context — and
// through it the bare trace ID — flows into the store stack so a peer
// fetch carries X-Suu-Trace-Id across the fleet.
func (p *Planner) storeGet(key requestKey, tc *trace.Ctx) (*cachedFrame, bool) {
	st := p.cfg.Store
	if st == nil {
		return nil, false
	}
	start := time.Now()
	b, tier, err := st.Get(trace.NewContext(context.Background(), tc), storeKeyOf(key))
	if err != nil {
		p.metrics.storeMisses.Add(1)
		p.obsStage(tc, trace.StageStoreMiss, start)
		return nil, false
	}
	elapsed := time.Since(start)
	v, err := decodeStored(key.kind, b)
	if err != nil {
		// Undecodable content is a quarantine case the checksum cannot
		// catch (e.g. a schema change): miss, recompute, overwrite.
		p.metrics.storeMisses.Add(1)
		p.obsStage(tc, trace.StageStoreMiss, start)
		return nil, false
	}
	p.metrics.observeStore(tier, elapsed)
	if tc != nil {
		stage := trace.StageStoreMem
		switch tier {
		case store.TierDisk:
			stage = trace.StageStoreDisk
		case store.TierPeer:
			stage = trace.StageStorePeer
		}
		tc.Add(stage, elapsed)
		p.metrics.observeStage(stage, elapsed)
	}
	p.cache.put(key, v)
	return v, true
}

// storePut persists a freshly computed response — its pre-encoded frame,
// so the payload is marshaled exactly once per computation across LRU,
// disk, and peers. Degraded brownout fallbacks never persist — they are
// placeholders a retry should replace, and writing one would let a moment
// of overload haunt every replica from disk (the durable mirror of
// "degraded plans are never cached"). Errors are counted, not surfaced: a
// full or failing store degrades the fleet to compute-only, it does not
// fail requests.
func (p *Planner) storePut(key requestKey, cf *cachedFrame, tc *trace.Ctx) {
	st := p.cfg.Store
	if st == nil {
		return
	}
	if pr, ok := cf.val.(*PlanResponse); ok && pr.Degraded {
		return
	}
	b, err := encodeStored(key.kind, cf.frame)
	if err != nil {
		p.metrics.storePutErrors.Add(1)
		return
	}
	// Only the bare trace ID crosses into the put: the fan-out to peers
	// is asynchronous and must never hold the pooled trace context.
	if err := st.Put(trace.WithID(context.Background(), tc.ID()), storeKeyOf(key), b); err != nil {
		p.metrics.storePutErrors.Add(1)
		trace.Warn("store put failed", "trace", tc.IDString(), "err", err)
	}
}
