package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/lp"
	"repro/internal/store"
	"repro/internal/trace"
)

// maxBodyBytes bounds request bodies. An n=1024, m=256 instance is ~5 MB
// of JSON; 64 MB leaves generous headroom without letting one request
// swallow the heap.
const maxBodyBytes = 64 << 20

// ErrRequestTooLarge marks a body over maxBodyBytes; the HTTP layer maps
// it to 413 so clients see the limit instead of a generic decode failure.
var ErrRequestTooLarge = errors.New("service: request body too large")

// Server is the HTTP face of a Planner: /v1/plan, /v1/estimate, /healthz,
// /readyz, /metrics. It implements http.Handler; lifecycle (listening,
// TLS, graceful shutdown) belongs to the caller's http.Server.
type Server struct {
	planner *Planner
	mux     *http.ServeMux
	maxBody int64 // request body cap in bytes; tests lower it to hit the 413 path cheaply
}

// NewServer wraps a planner.
func NewServer(p *Planner) *Server {
	s := &Server{planner: p, mux: http.NewServeMux(), maxBody: maxBodyBytes}
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/plan/batch", s.handlePlanBatch)
	s.mux.HandleFunc("/v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("/version", s.handleVersion)
	if p.cfg.Store != nil {
		// Peer protocol for the replicated plan store: other replicas
		// read and write this node's local tiers here. Served from the
		// node-local view, so one peer's request never fans out again.
		s.mux.Handle("/v1/store/", store.PeerHandler(store.PeerView(p.cfg.Store)))
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON serves the non-payload documents (errors, metrics, health)
// as one sized write: the body is staged in a pooled buffer so
// Content-Length is exact and small responses avoid chunked framing.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, "encoding response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes()) // nothing useful to do about a dead client
}

// writePayload serves a single plan/estimate response zero-copy: the
// pre-encoded canonical frame with this caller's serving flags spliced
// over its constant-size tail, behind an exact Content-Length. The frame
// bytes are shared with the cache and never mutated.
func (s *Server) writePayload(w http.ResponseWriter, sv served) {
	buf := getBuf()
	defer putBuf(buf)
	appendServed(buf, sv)
	buf.WriteByte('\n')
	s.planner.metrics.addPayloadBytes(buf.Len(), sv.cached || sv.coalesced)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// writeError maps planner errors onto status codes. Context cancellations
// mean the client is gone; the write is best-effort.
//
// Retry semantics, as a retrying client should read them: 429 and 503
// carry Retry-After and are safe to retry (planning is idempotent); 422
// means the instance is beyond what any engine here can solve — retrying
// the same request is useless; 4xx never retries; 408 means the server
// gave up at the client's own deadline.
// injectedHeader mirrors faults.Header without importing the chaos
// tooling into the serving path, the same way the client package mirrors
// it on the read side.
const injectedHeader = "X-Suu-Injected"

// injectedFault is the marker interface deliberately injected errors
// implement (internal/faults.InjectedError). Marking the response
// in-band is what lets a harness split injected from organic 5xx without
// grepping body text.
type injectedFault interface{ InjectedFault() bool }

func writeError(w http.ResponseWriter, err error) {
	var inj injectedFault
	if errors.As(err, &inj) && inj.InjectedFault() {
		w.Header().Set(injectedHeader, "compute")
	}
	switch {
	case errors.Is(err, ErrRequestTooLarge):
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.Is(err, ErrOverloaded):
		// Adaptive hint: backlog cost units × measured seconds per unit ÷
		// pool width (see Planner.retryAfter), carried by the overloadError
		// the admission path builds. A plain ErrOverloaded (tests, future
		// call sites) falls back to the old constant 1s.
		retry := 1.0
		var oe *overloadError
		if errors.As(err, &oe) {
			retry = oe.retryAfter.Seconds()
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry))))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, lp.ErrUnsolvable):
		// The sparse engine failed and the dense fallback refused the size:
		// deterministic for this instance, so 422 (don't retry), not 500.
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusRequestTimeout, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// traceOutcome maps a serving error onto the trace outcome vocabulary:
// overload and drain rejections are "rejected", the client walking away
// is "canceled", everything else (bad requests included) is "error".
func traceOutcome(err error) string {
	switch {
	case err == nil:
		return trace.OutcomeOK
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShuttingDown):
		return trace.OutcomeRejected
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return trace.OutcomeCanceled
	default:
		return trace.OutcomeError
	}
}

// sourceOf labels how a single-request serve was answered, matching the
// batch endpoint's source vocabulary.
func sourceOf(sv served) string {
	if pr, ok := sv.cf.val.(*PlanResponse); ok && pr.Degraded {
		return sourceDegraded
	}
	switch {
	case sv.coalesced:
		return sourceCoalesced
	case sv.cached:
		return sourceCached
	}
	return sourceComputed
}

// traceServed stamps a successful serve's outcome and source on the trace
// and, when the trace is kept, emits the X-Suu-Trace header the client
// parses for stage attribution. Must run before the payload write starts.
func (s *Server) traceServed(w http.ResponseWriter, tc *trace.Ctx, source string) {
	if tc == nil {
		return
	}
	tc.SetOutcome(trace.OutcomeOK)
	tc.SetSource(source)
	if tc.ShouldHeader() {
		w.Header().Set(trace.ResponseHeader, tc.HeaderValue())
	}
}

// traceError closes out a failed request: the non-ok outcome force-keeps
// the trace, the header still goes out so clients can attribute failures,
// and errors that will surface as 500s are logged with the trace ID.
func (s *Server) traceError(w http.ResponseWriter, tc *trace.Ctx, err error) {
	out := traceOutcome(err)
	tc.SetOutcome(out)
	if tc.ShouldHeader() {
		w.Header().Set(trace.ResponseHeader, tc.HeaderValue())
	}
	if out == trace.OutcomeError &&
		!errors.Is(err, ErrBadRequest) && !errors.Is(err, ErrRequestTooLarge) &&
		!errors.Is(err, lp.ErrUnsolvable) {
		trace.Error("request failed", "trace", tc.IDString(), "op", tc.Op(), "err", err)
	}
	writeError(w, err)
}

// observeAttempt meters retries a well-behaved client confesses to via the
// X-Suu-Attempt header (1-based attempt number; ≥ 2 is a retry).
func (s *Server) observeAttempt(r *http.Request) {
	if v := r.Header.Get("X-Suu-Attempt"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 2 {
			s.planner.metrics.retriesObserved.Add(1)
		}
	}
}

// decodeRequest reads one JSON document into dst, rejecting trailing
// garbage so malformed batches fail loudly instead of half-running.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body over %d bytes", ErrRequestTooLarge, mbe.Limit)
		}
		return badRequestf("decoding request: %v", err)
	}
	if dec.More() {
		return badRequestf("trailing data after request document")
	}
	return nil
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use POST"})
		return false
	}
	return true
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.observeAttempt(r)
	tc := s.planner.tracer.Begin("plan")
	defer s.planner.tracer.Finish(tc)
	dstart := time.Now()
	var wp wirePlanRequest
	if err := s.decodeRequest(w, r, &wp); err != nil {
		s.traceError(w, tc, err)
		return
	}
	req, err := s.planner.resolvePlanItem(&wp)
	s.planner.obsStage(tc, trace.StageDecode, dstart)
	if err != nil {
		s.traceError(w, tc, err)
		return
	}
	sv, err := s.planner.planServe(r.Context(), req, tc)
	if err != nil {
		s.traceError(w, tc, err)
		return
	}
	s.traceServed(w, tc, sourceOf(sv))
	s.writePayload(w, sv)
}

// handlePlanBatch serves /v1/plan/batch: many plan items in one request,
// with per-item status. The HTTP status reflects the batch envelope only —
// a 200 may carry items that individually failed; inspect each item's
// "status" (and the top-level "errors" count).
func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.observeAttempt(r)
	tc := s.planner.tracer.Begin("batch")
	defer s.planner.tracer.Finish(tc)
	dstart := time.Now()
	var wb wireBatchRequest
	if err := s.decodeRequest(w, r, &wb); err != nil {
		s.traceError(w, tc, err)
		return
	}
	req := BatchPlanRequest{Items: make([]PlanRequest, len(wb.Items)), DeadlineMS: wb.DeadlineMS}
	for i := range wb.Items {
		item, err := s.planner.resolvePlanItem(&wb.Items[i])
		if err != nil {
			// Exactly the typed-decode behavior: one malformed instance
			// fails the whole document as a bad request, not per-item.
			s.planner.obsStage(tc, trace.StageDecode, dstart)
			s.traceError(w, tc, err)
			return
		}
		req.Items[i] = *item
	}
	s.planner.obsStage(tc, trace.StageDecode, dstart)
	resp, err := s.planner.planBatchServe(r.Context(), &req, tc)
	if err != nil {
		s.traceError(w, tc, err)
		return
	}
	// A batch that minted brownout fallbacks is labeled degraded (and
	// force-kept); otherwise the envelope source is just "batch" — the
	// per-item mix lives in the stage counts and the envelope counters.
	source := "batch"
	if resp.Degraded > 0 {
		source = sourceDegraded
	}
	s.traceServed(w, tc, source)
	// Batch responses are machine-consumed and carry one payload per item;
	// compact encoding keeps the wire cost of a big batch proportional to
	// its content, not to pretty-printing (indentation roughly doubles an
	// n=64 plan payload).
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.writeBatch(w, resp)
}

// writeBatch streams the batch envelope: header fields first, then each
// item's pre-encoded payload frame copied straight into the response —
// the whole document is never materialized, so a 256-item batch costs one
// pooled 32 KB buffer, not a megabyte of assembled JSON. The byte layout
// matches what json.Marshal(resp) produced before (batch item payloads
// always carry serving flags false; the envelope's source field is where
// how-served lives), so decoded responses are identical.
func (s *Server) writeBatch(w http.ResponseWriter, resp *BatchPlanResponse) {
	bw := getBufio(w)
	defer putBufio(bw)
	var scratch [20]byte
	writeField := func(name string, n int, first bool) {
		if !first {
			_ = bw.WriteByte(',')
		}
		_ = bw.WriteByte('"')
		_, _ = bw.WriteString(name)
		_, _ = bw.WriteString(`":`)
		_, _ = bw.Write(strconv.AppendInt(scratch[:0], int64(n), 10))
	}
	_ = bw.WriteByte('{')
	writeField("size", resp.Size, true)
	writeField("ok", resp.OK, false)
	writeField("errors", resp.Errors, false)
	writeField("cached", resp.Cached, false)
	writeField("computed", resp.Computed, false)
	writeField("coalesced", resp.Coalesced, false)
	writeField("degraded", resp.Degraded, false)
	writeField("cost_units", resp.CostUnits, false)
	_, _ = bw.WriteString(`,"items":[`)
	m := s.planner.metrics
	for i := range resp.Items {
		if i > 0 {
			_ = bw.WriteByte(',')
		}
		it := &resp.Items[i]
		if it.Status != "ok" {
			_, _ = bw.WriteString(`{"status":"error","error":`)
			msg, _ := json.Marshal(it.Error) // errors are rare; alloc is fine
			_, _ = bw.Write(msg)
			_ = bw.WriteByte('}')
			continue
		}
		_, _ = bw.WriteString(`{"status":"ok","source":"`)
		_, _ = bw.WriteString(it.Source)
		_, _ = bw.WriteString(`","plan":`)
		frame := it.frame
		if frame == nil {
			// Hand-assembled responses (tests, future callers) without a
			// frame fall back to a cold encode.
			frame, _ = json.Marshal(it.Plan)
		}
		_, _ = bw.Write(frame)
		_ = bw.WriteByte('}')
		// Per item, so frames_spliced reconciles with the batch item
		// counters: spliced = cached + coalesced items, cold = computed +
		// degraded.
		m.addPayloadBytes(len(frame), it.Source == sourceCached || it.Source == sourceCoalesced)
	}
	_, _ = bw.WriteString("]}\n")
	_ = bw.Flush()
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.observeAttempt(r)
	tc := s.planner.tracer.Begin("estimate")
	defer s.planner.tracer.Finish(tc)
	dstart := time.Now()
	var we wireEstimateRequest
	if err := s.decodeRequest(w, r, &we); err != nil {
		s.traceError(w, tc, err)
		return
	}
	ins, err := s.planner.decodeInstance(we.Instance)
	s.planner.obsStage(tc, trace.StageDecode, dstart)
	if err != nil {
		s.traceError(w, tc, err)
		return
	}
	req := EstimateRequest{Instance: ins, Policy: we.Policy, Trials: we.Trials,
		Seed: we.Seed, Stream: we.Stream, DeadlineMS: we.DeadlineMS}
	if !req.Stream {
		sv, err := s.planner.estimateServe(r.Context(), &req, nil, tc)
		if err != nil {
			s.traceError(w, tc, err)
			return
		}
		s.traceServed(w, tc, sourceOf(sv))
		s.writePayload(w, sv)
		return
	}
	s.streamEstimate(w, r, &req, tc)
}

// estimateEvent is one NDJSON line of a streamed estimate: progress lines
// carry only progress, the final line carries the result.
type estimateEvent struct {
	Progress *Progress         `json:"progress,omitempty"`
	Result   *EstimateResponse `json:"result,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// streamEstimate runs the estimate with progress flushed as NDJSON.
// Validation runs before the 200 status line goes out, so malformed
// requests still get real 4xx codes; only errors that arise mid-compute
// (overload, shutdown, engine failures) surface as a final
// {"error": ...} line — the price of streaming over plain HTTP.
func (s *Server) streamEstimate(w http.ResponseWriter, r *http.Request, req *EstimateRequest, tc *trace.Ctx) {
	if err := s.planner.ValidateEstimate(req); err != nil {
		s.traceError(w, tc, err)
		return
	}
	// Stage timings are not known before the 200 goes out, so a sampled
	// stream carries only the trace ID; the stages still land in /metrics
	// and the recorder.
	if tc != nil && tc.Sampled() {
		w.Header().Set(trace.ResponseHeader, tc.IDString())
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Each NDJSON line is staged in a pooled buffer and written in one
	// call — per-event encoder allocations stay off the stream's hot path.
	flushLine := func(buf *bytes.Buffer) {
		_, _ = w.Write(buf.Bytes())
		putBuf(buf)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit := func(ev estimateEvent) {
		buf := getBuf()
		_ = json.NewEncoder(buf).Encode(ev)
		flushLine(buf)
	}
	sv, err := s.planner.estimateServe(r.Context(), req, func(pr Progress) {
		p := pr
		emit(estimateEvent{Progress: &p})
	}, tc)
	if err != nil {
		tc.SetOutcome(traceOutcome(err))
		emit(estimateEvent{Error: err.Error()})
		return
	}
	tc.SetOutcome(trace.OutcomeOK)
	tc.SetSource(sourceOf(sv))
	// The result line splices the pre-encoded frame into the event
	// envelope — a cache-hit stream serves its payload with zero Marshal.
	buf := getBuf()
	buf.WriteString(`{"result":`)
	n := buf.Len()
	appendServed(buf, sv)
	s.planner.metrics.addPayloadBytes(buf.Len()-n, sv.cached || sv.coalesced)
	buf.WriteString("}\n")
	flushLine(buf)
}

// healthBody is what /healthz serves.
type healthBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.planner.Metrics()
	status := "ok"
	code := http.StatusOK
	if s.planner.ShuttingDown() {
		status = "shutting-down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthBody{Status: status, UptimeSeconds: snap.UptimeSeconds})
}

// handleReadyz serves readiness, distinct from /healthz liveness: a
// replica is ready only after Warmup and before BeginDrain/Close. Flip it
// (via Planner.BeginDrain) before http.Server.Shutdown so balancers stop
// routing during the graceful drain instead of eating connection errors.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.planner.Ready() {
		writeJSON(w, http.StatusOK, healthBody{Status: "ready", UptimeSeconds: s.planner.Metrics().UptimeSeconds})
		return
	}
	status := "not-ready"
	if s.planner.draining.Load() || s.planner.ShuttingDown() {
		status = "draining"
	}
	writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: status, UptimeSeconds: s.planner.Metrics().UptimeSeconds})
}

// handleMetrics serves the snapshot as JSON, or as Prometheus text
// exposition with ?format=prom — both rendered from one snapshot call,
// so the two views of an instant agree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.planner.Metrics()
	if r.URL.Query().Get("format") == "prom" {
		body := promMetrics(snap)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// String renders a snapshot compactly for operator logs.
func (sn MetricsSnapshot) String() string {
	return fmt.Sprintf("plans=%d estimates=%d batches=%d batch_items=%d hit_rate=%.2f coalesced=%d rejected=%d degraded=%d abandoned=%d retries_seen=%d errors=%d inflight=%d plan_p99=%.2fms batch_p99=%.2fms",
		sn.Plans, sn.Estimates, sn.Batches, sn.BatchItems, sn.CacheHitRate, sn.Coalesced, sn.Rejected, sn.Degraded, sn.Abandoned, sn.RetriesSeen, sn.Errors, sn.InFlight, sn.PlanLatency.P99*1e3, sn.BatchLatency.P99*1e3)
}
